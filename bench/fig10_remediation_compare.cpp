// Figure 10: vulnerable amplifier pool sizes relative to their own peaks,
// aligned on weeks since publicity began — NTP monlist vs NTP version vs
// open DNS resolvers — plus §6.1 subgroup remediation and §6.2/§6.3.
//
// Paper shape: monlist collapses (−92% over 15 weeks) dramatically faster
// than version (−19% over 9) and DNS open resolvers (essentially flat over
// a year; 33.9M at peak; CPE-bound). Regional remediation: NA 97% ... SA
// 63%. Effects: amplifiers-per-victim falls ~10x while packets-per-
// remaining-amplifier rises ~10x.
#include <cstdio>

#include "common.h"
#include "core/remediation_analysis.h"
#include "dns/resolver.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 10: pool remediation comparison", opt);

  bench::StudyPipeline pipeline(opt);
  pipeline.run();

  // Pool series: monlist from the census, version from weekly version
  // passes, DNS from the resolver-pool model.
  std::vector<std::uint64_t> monlist_counts;
  for (const auto& row : pipeline.census->rows()) {
    monlist_counts.push_back(row.ips);
  }
  scan::Prober vprober(*pipeline.world, net::Ipv4Address(198, 51, 100, 7));
  std::vector<std::uint64_t> version_counts;
  for (int vweek = 0; vweek < (opt.quick ? 4 : 9); ++vweek) {
    version_counts.push_back(
        vprober.run_version_sample(vweek, [](const scan::VersionObservation&) {})
            .responders_total);
  }
  dns::ResolverPoolConfig dns_cfg;
  dns_cfg.peak_size = 33900000 / opt.scale;
  dns_cfg.seed = opt.seed ^ 0xd45ULL;
  // §6.2: ~9.2% of the NTP amplifier IPs are ALSO open resolvers — the
  // badly mismanaged boxes run everything.
  util::Rng co_rng(opt.seed ^ 0xc057ULL);
  for (const auto ai : pipeline.world->amplifier_indices()) {
    if (co_rng.chance(0.092)) {
      dns_cfg.co_hosted.push_back(
          pipeline.world->servers()[ai].home_address);
    }
  }
  const dns::ResolverPool dns_pool(pipeline.world->registry(), dns_cfg, 60);
  std::vector<std::uint64_t> dns_counts;
  for (int week = 0; week < 52; ++week) {
    dns_counts.push_back(dns_pool.open_count(week));
  }

  const auto monlist = core::make_pool_series("NTP monlist", monlist_counts);
  const auto version = core::make_pool_series("NTP version", version_counts);
  const auto dns_series = core::make_pool_series("DNS open resolvers",
                                                 dns_counts);

  util::TextTable table({"weeks since publicity", "monlist", "version",
                         "DNS resolvers"});
  for (std::size_t w = 0; w < 52; w += 2) {
    auto cell = [&](const core::PoolSeries& s) -> std::string {
      return w < s.relative_to_peak.size()
                 ? util::fixed(s.relative_to_peak[w] * 100.0, 0) + "%"
                 : "-";
    };
    if (w < monlist.relative_to_peak.size() ||
        w < dns_series.relative_to_peak.size()) {
      table.add_row({std::to_string(w), cell(monlist), cell(version),
                     cell(dns_series)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("peaks: monlist %s, version %s, DNS %s"
              "   (paper: 1.4M / 4.9M / 33.9M, scaled)\n\n",
              util::si_count(static_cast<double>(monlist.peak)).c_str(),
              util::si_count(static_cast<double>(version.peak)).c_str(),
              util::si_count(static_cast<double>(dns_series.peak)).c_str());

  // §6.1 subgroup remediation.
  const auto levels = core::level_reduction(*pipeline.census);
  std::printf("level reduction: IPs %.0f%%, /24 %.0f%%, blocks %.0f%%, "
              "ASes %.0f%%   (paper: 92/72/59/55)\n",
              levels.ips_pct, levels.slash24_pct, levels.blocks_pct,
              levels.asns_pct);
  std::printf("regional remediation (paper: NA 97, OC 93, EU 89, AS 84, "
              "AF 77, SA 63):\n");
  for (const auto& row : core::continent_reduction(*pipeline.census)) {
    std::printf("  %-14s %5.1f%%\n", net::to_string(row.continent),
                row.remediated_pct);
  }

  // §6.2 pool overlap.
  std::vector<net::Ipv4Address> monlist_ips;
  for (const auto& [addr, _] : pipeline.census->mega_roster()) {
    monlist_ips.push_back(addr);  // roster is a subset; add full pool below
  }
  monlist_ips.clear();
  for (const auto ai : pipeline.world->amplifier_indices()) {
    monlist_ips.push_back(pipeline.world->servers()[ai].home_address);
  }
  std::vector<net::Ipv4Address> resolver_ips;
  resolver_ips.reserve(dns_pool.resolvers().size());
  for (const auto& r : dns_pool.resolvers()) resolver_ips.push_back(r.address);
  const auto overlap = core::pool_overlap(monlist_ips, resolver_ips);
  std::printf("\nNTP-amplifier / open-resolver IP overlap: %llu (%.1f%% of "
              "amplifiers; paper: ~9.2%%)\n",
              static_cast<unsigned long long>(overlap.intersection),
              overlap.fraction_of_first * 100.0);

  // §6.3 effects.
  const auto effect =
      core::remediation_effect(*pipeline.census, *pipeline.victims);
  std::printf("\nremediation effect (first -> last sample):\n");
  std::printf("  amplifiers per victim:   %.1f -> %.1f   (paper: ~10x drop)\n",
              effect.front().amplifiers_per_victim,
              effect.back().amplifiers_per_victim);
  std::printf("  packets per amplifier:   %s -> %s   (paper: ~10x rise)\n",
              util::si_count(effect.front().packets_per_amplifier).c_str(),
              util::si_count(effect.back().packets_per_amplifier).c_str());
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
