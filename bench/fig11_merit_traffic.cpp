// Figure 11: aggregate NTP volume at Merit over three months (Dec 2013 -
// Mar 2014), split by direction (UDP sport=123 vs dport=123).
//
// Paper shape: NTP is a negligible fraction of Merit's 15-25 Gbps on a
// normal day; attacks become visible in the third week of December with an
// almost instantaneous rise, peaks exceeding 200 MB/s, and sustained
// elevation through the window (Merit hosted ~50 abused amplifiers).
#include <algorithm>
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 11: Merit NTP traffic (3 months)", opt);

  bench::RegionalRun regional(opt);
  regional.run(30, opt.quick ? 90 : 121);

  const util::SimTime start = 30 * util::kSecondsPerDay;
  const util::SimTime end =
      (opt.quick ? 90 : 121) * util::kSecondsPerDay;
  const auto egress = regional.merit->volume_series(
      start, end, util::kSecondsPerDay, telemetry::is_ntp_source);
  const auto ingress = regional.merit->volume_series(
      start, end, util::kSecondsPerDay, telemetry::is_ntp_dest);

  bench::print_volume_series("UDP sport=123 (amplifier egress):", egress);
  bench::print_volume_series("UDP dport=123 (triggers + scans in):", ingress);

  // Onset detection: first day egress exceeds 20x the early baseline.
  double baseline = 1.0;
  for (std::size_t d = 0; d < 14 && d < egress.bytes.size(); ++d) {
    baseline = std::max(baseline, egress.bytes[d]);
  }
  int onset = -1;
  double peak_rate = 0.0;
  for (std::size_t d = 0; d < egress.bytes.size(); ++d) {
    peak_rate = std::max(peak_rate,
                         egress.bytes[d] / util::kSecondsPerDay);
    if (onset < 0 && egress.bytes[d] > baseline * 20) {
      onset = 30 + static_cast<int>(d);
    }
  }
  std::printf("attack onset at Merit: %s   (paper: third week of December)\n",
              onset >= 0 ? util::to_string(util::date_from_sim_time(
                                               static_cast<util::SimTime>(
                                                   onset) *
                                               util::kSecondsPerDay))
                               .c_str()
                         : "not detected");
  std::printf("peak daily-average egress: %s/s   (paper: spikes above "
              "200 MB/s on a regional ISP)\n",
              util::bytes_str(peak_rate).c_str());
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
