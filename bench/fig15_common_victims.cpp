// Figure 15: victims common to Merit and FRGP — traffic toward the shared
// targets as seen from both vantage points.
//
// Paper shape: 291 victims were attacked via amplifiers at *both* sites
// (clear evidence of coordinated amplifier use), though the common-target
// volumes are fairly low compared to each site's top victims.
#include <cstdio>

#include "common.h"
#include "core/local_view.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 15: common Merit/FRGP victims", opt);

  bench::RegionalRun regional(opt);
  const int from = 80, to = opt.quick ? 100 : 115;
  regional.run(from, to);

  core::LocalForensics merit_view(*regional.merit,
                                  regional.world->registry());
  core::LocalForensics frgp_view(*regional.frgp, regional.world->registry());

  const auto common =
      core::LocalForensics::common_victims(merit_view, frgp_view);
  std::printf("victims at Merit: %llu, at FRGP: %llu, common: %zu"
              "   (paper: 13386 / 5659 / 291 at full scale)\n\n",
              static_cast<unsigned long long>(
                  merit_view.unique_victim_count()),
              static_cast<unsigned long long>(frgp_view.unique_victim_count()),
              common.size());

  const util::SimTime start = from * util::kSecondsPerDay;
  const util::SimTime end = to * util::kSecondsPerDay;
  double merit_total = 0.0, frgp_total = 0.0;
  std::vector<double> merit_series, frgp_series;
  for (const auto& victim : common) {
    const auto ms = merit_view.victim_volume(victim, start, end,
                                             util::kSecondsPerDay);
    const auto fs = frgp_view.victim_volume(victim, start, end,
                                            util::kSecondsPerDay);
    if (merit_series.empty()) {
      merit_series.assign(ms.bytes.size(), 0.0);
      frgp_series.assign(fs.bytes.size(), 0.0);
    }
    for (std::size_t b = 0; b < ms.bytes.size(); ++b) {
      merit_series[b] += ms.bytes[b];
      merit_total += ms.bytes[b];
    }
    for (std::size_t b = 0; b < fs.bytes.size(); ++b) {
      frgp_series[b] += fs.bytes[b];
      frgp_total += fs.bytes[b];
    }
  }
  if (!common.empty()) {
    std::printf("volume to common victims, Merit vantage: %s   %s\n",
                util::bytes_str(merit_total).c_str(),
                util::log_sparkline(merit_series).c_str());
    std::printf("volume to common victims, FRGP vantage:  %s   %s\n",
                util::bytes_str(frgp_total).c_str(),
                util::log_sparkline(frgp_series).c_str());
    std::printf("\ncommon-victim volumes are modest relative to each site's "
                "top victims,\nas the paper observed; their existence shows "
                "coordinated amplifier use.\n");
  } else {
    std::printf("no common victims at this scale; lower --scale and rerun\n");
  }
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
