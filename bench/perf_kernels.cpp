// Micro/meso performance benchmarks (google-benchmark) over the hot
// kernels the reproduction pipeline leans on: prefix-trie lookups, mode 6/7
// wire (de)serialization, monitor-table updates, checksum, the event queue,
// the GORCOLv3 artifact codec (varint kernel, delta transform, block
// codec), and a full single-amplifier probe round trip.
#include <benchmark/benchmark.h>

#include "net/packet.h"
#include "net/prefix_trie.h"
#include "net/registry.h"
#include "ntp/mode6.h"
#include "ntp/mode7.h"
#include "ntp/monlist.h"
#include "ntp/server.h"
#include "scan/prober.h"
#include "sim/attack.h"
#include "sim/event_queue.h"
#include "sim/world.h"
#include "util/block_codec.h"
#include "util/bytes.h"
#include "util/columnar.h"
#include "util/rng.h"

namespace gorilla {
namespace {

void BM_PrefixTrieLookup(benchmark::State& state) {
  util::Rng rng(1);
  net::PrefixTrie<std::uint32_t> trie;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0));
       ++i) {
    trie.insert(net::Prefix(net::Ipv4Address{
                                static_cast<std::uint32_t>(rng.next())},
                            static_cast<int>(rng.uniform_int(12, 24))),
                i);
  }
  std::uint64_t x = 12345;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(
        trie.lookup(net::Ipv4Address{static_cast<std::uint32_t>(x >> 32)}));
  }
}
BENCHMARK(BM_PrefixTrieLookup)->Arg(1000)->Arg(100000);

void BM_RegistryAsnLookup(benchmark::State& state) {
  net::RegistryConfig cfg;
  cfg.num_ases = 5000;
  const net::Registry registry(cfg);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.asn_of(registry.random_address(rng)));
  }
}
BENCHMARK(BM_RegistryAsnLookup);

void BM_MonlistSerialize(benchmark::State& state) {
  std::vector<ntp::MonitorEntry> entries(
      static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = net::Ipv4Address{static_cast<std::uint32_t>(i + 1)};
    entries[i].count = static_cast<std::uint32_t>(i * 7);
  }
  for (auto _ : state) {
    const auto packets =
        ntp::make_monlist_response(entries, ntp::Implementation::kXntpd);
    std::size_t bytes = 0;
    for (const auto& p : packets) bytes += ntp::serialize(p).size();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonlistSerialize)->Arg(6)->Arg(60)->Arg(600);

void BM_MonlistParseReassemble(benchmark::State& state) {
  std::vector<ntp::MonitorEntry> entries(600);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = net::Ipv4Address{static_cast<std::uint32_t>(i + 1)};
  }
  std::vector<std::vector<std::uint8_t>> wire;
  for (const auto& p :
       ntp::make_monlist_response(entries, ntp::Implementation::kXntpd)) {
    wire.push_back(ntp::serialize(p));
  }
  for (auto _ : state) {
    std::vector<ntp::Mode7Packet> parsed;
    parsed.reserve(wire.size());
    for (const auto& w : wire) {
      parsed.push_back(*ntp::parse_mode7_packet(w));
    }
    benchmark::DoNotOptimize(ntp::reassemble_monlist(parsed));
  }
  state.SetItemsProcessed(state.iterations() * 600);
}
BENCHMARK(BM_MonlistParseReassemble);

void BM_MonitorObserve(benchmark::State& state) {
  ntp::MonitorTable table;
  std::uint64_t x = 99;
  util::SimTime now = 0;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1;
    table.observe(net::Ipv4Address{static_cast<std::uint32_t>(
                      (x >> 32) % static_cast<std::uint32_t>(state.range(0)))},
                  123, 3, 4, ++now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonitorObserve)->Arg(100)->Arg(10000);

void BM_MonlistDump(benchmark::State& state) {
  // dump() is the §4 victimology hot loop: every weekly probe renders every
  // responding amplifier's table. Populate with distinct last_seen values
  // (the common case — the recency list is already totally ordered, so the
  // tie-break sort never fires) and measure the render.
  ntp::MonitorTable table;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; ++i) {
    table.observe(net::Ipv4Address{0x0a000000u + i}, 123, 7, 2,
                  static_cast<util::SimTime>(i + 1));
  }
  const net::Ipv4Address local(10, 0, 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.dump(100000, local));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonlistDump)->Arg(6)->Arg(60)->Arg(600);

void BM_ReadvarRoundTrip(benchmark::State& state) {
  ntp::SystemVariables vars;
  vars.version = "ntpd 4.2.6p5@1.2349-o Tue May 10 2011";
  vars.system = "Linux/2.6.32";
  vars.processor = "x86_64";
  for (auto _ : state) {
    const auto frags = ntp::make_readvar_response(vars, 1);
    std::vector<ntp::ControlPacket> parsed;
    for (const auto& f : frags) {
      parsed.push_back(*ntp::parse_control_packet(ntp::serialize(f)));
    }
    benchmark::DoNotOptimize(ntp::reassemble_readvar(parsed));
  }
}
BENCHMARK(BM_ReadvarRoundTrip);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      q.schedule_at((i * 7919) % 100000, [&fired] { ++fired; });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000);

void BM_EventQueueDrain(benchmark::State& state) {
  // Drain cost with fat actions: each event owns a payload big enough that
  // copying it out of the heap (what priority_queue::top() used to force on
  // every pop) dwarfs the heap bookkeeping. The queue moves events out of
  // the heap on pop, so this measures the intended drain path.
  const auto n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    sim::EventQueue q;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      std::vector<std::uint64_t> payload(64,
                                         static_cast<std::uint64_t>(i));
      q.schedule_at((i * 7919) % 100000,
                    [&sum, payload = std::move(payload)] {
                      sum += payload.front();
                    });
    }
    state.ResumeTiming();
    q.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueDrain)->Arg(1000)->Arg(100000);

// --- GORCOLv3 artifact codec kernels (BM_ColumnarCodec family): the
// varint decode kernel, the delta transform, and the block codec that
// together set record/replay artifact throughput.

void BM_ColumnarCodecVarintDecode(benchmark::State& state) {
  // A realistic column: zigzagged small deltas with the occasional big
  // outlier, decoded back with the shared unrolled kernel.
  util::ColumnWriter w;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(3);
  for (std::uint64_t i = 0; i < n; ++i) {
    w.put_varint(rng.next() % (i % 97 == 0 ? (1ull << 40) : 1000));
  }
  const std::vector<std::uint8_t>& buf = w.buffer();
  for (auto _ : state) {
    std::size_t pos = 0;
    std::uint64_t sum = 0;
    while (pos < buf.size()) {
      std::uint64_t v = 0;
      const int used = util::decode_varint(buf, pos, v);
      if (used == 0) break;
      pos += static_cast<std::size_t>(used);
      sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_ColumnarCodecVarintDecode)->Arg(100000);

void BM_ColumnarCodecDeltaTransform(benchmark::State& state) {
  // The v3 encode-side transform on a monotone address column: delta +
  // zigzag + varint append.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::int64_t> addresses(n);
  util::Rng rng(4);
  std::int64_t cursor = 0;
  for (auto& a : addresses) {
    cursor += static_cast<std::int64_t>(rng.next() % 4096);
    a = cursor;
  }
  for (auto _ : state) {
    util::ColumnWriter w;
    std::int64_t prev = 0;
    for (const std::int64_t a : addresses) {
      w.put_zigzag(a - prev);
      prev = a;
    }
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ColumnarCodecDeltaTransform)->Arg(100000);

void BM_ColumnarCodecBlockCompress(benchmark::State& state) {
  // Delta-transformed column bytes (what v3 actually feeds the codec).
  util::ColumnWriter w;
  util::Rng rng(5);
  for (int i = 0; i < state.range(0); ++i) {
    w.put_zigzag(static_cast<std::int64_t>(rng.next() % 64) - 32);
  }
  const std::vector<std::uint8_t>& raw = w.buffer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::block_compress(raw).size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_ColumnarCodecBlockCompress)->Arg(300000);

void BM_ColumnarCodecBlockDecompress(benchmark::State& state) {
  util::ColumnWriter w;
  util::Rng rng(6);
  for (int i = 0; i < state.range(0); ++i) {
    w.put_zigzag(static_cast<std::int64_t>(rng.next() % 64) - 32);
  }
  const std::vector<std::uint8_t> stored = util::block_compress(w.buffer());
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(util::block_decompress(stored, out));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ColumnarCodecBlockDecompress)->Arg(300000);

void BM_ServerProbeRoundTrip(benchmark::State& state) {
  ntp::NtpServerConfig cfg;
  cfg.address = net::Ipv4Address(10, 0, 0, 1);
  cfg.sysvars.system = "linux";
  ntp::NtpServer server(cfg);
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0));
       ++i) {
    server.monitor().observe(net::Ipv4Address{0x14000000u + i}, 123, 3, 4,
                             i);
  }
  net::UdpPacket probe;
  probe.src = net::Ipv4Address(198, 51, 100, 7);
  probe.dst = cfg.address;
  probe.src_port = 57915;
  probe.dst_port = net::kNtpPort;
  probe.payload = ntp::serialize(ntp::make_monlist_request());
  util::SimTime now = 1000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle(probe, ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerProbeRoundTrip)->Arg(5)->Arg(600);

// --- Meso benchmarks: the macro paths the study pipeline spends its time
// in (small worlds so a full google-benchmark repetition loop stays sane).

void BM_WorldBuild(benchmark::State& state) {
  for (auto _ : state) {
    sim::WorldConfig cfg;
    cfg.scale = static_cast<std::uint32_t>(state.range(0));
    cfg.registry.num_ases = 2000;
    sim::World world(cfg);
    benchmark::DoNotOptimize(world.servers().size());
  }
}
BENCHMARK(BM_WorldBuild)->Arg(400)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_AttackDay(benchmark::State& state) {
  sim::WorldConfig cfg;
  cfg.scale = 200;
  cfg.registry.num_ases = 2000;
  sim::World world(cfg);
  sim::AttackEngine attacks(world, sim::AttackEngineConfig{}, {});
  int day = 95;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacks.run_day(day).size());
    if (++day > 130) day = 95;  // stay in the busy window
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttackDay)->Unit(benchmark::kMillisecond);

void BM_WeeklyMonlistSample(benchmark::State& state) {
  sim::WorldConfig cfg;
  cfg.scale = 400;
  cfg.registry.num_ases = 2000;
  sim::World world(cfg);
  scan::Prober prober(world, net::Ipv4Address(198, 51, 100, 7));
  for (auto _ : state) {
    std::uint64_t responders =
        prober
            .run_monlist_sample(0,
                                [](const scan::AmplifierObservation&) {})
            .responders;
    benchmark::DoNotOptimize(responders);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              world.amplifier_indices().size()));
}
BENCHMARK(BM_WeeklyMonlistSample)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gorilla

BENCHMARK_MAIN();
