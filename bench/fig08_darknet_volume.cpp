// Figure 8: NTP scanning packet volume observed by the ~/8 darknet, as
// monthly average packets per effective dark /24, split into known-benign
// (research) and other (suspected malicious) scanners.
//
// Paper shape: a ~10x rise from December 2013 to the early-2014 plateau;
// roughly half the increase is research scanning (benign fraction rises
// from ~0.08 pre-outbreak to ~0.4-0.6 during); volume stays high through
// April even as the vulnerable pool collapses.
#include <algorithm>
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 8: darknet NTP scanning volume", opt);

  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  sim::World world(wcfg);
  telemetry::DarknetConfig dcfg;
  dcfg.telescope = world.registry().named().darknet;
  telemetry::DarknetTelescope darknet(dcfg);
  sim::ScanTrafficConfig scfg;
  scfg.seed = opt.seed ^ 0x5ca7ULL;
  sim::ScanTraffic scans(world, scfg);

  // Eight months: 2013-09-01 .. 2014-04-30 (days -61 .. 180).
  const int from = opt.quick ? -30 : -61;
  for (int day = from; day <= 180; ++day) {
    scans.run_day(day, &darknet, {});
  }

  util::TextTable table({"month", "pkts per dark /24", "benign frac",
                         "other pkts/24"});
  std::vector<double> totals;
  for (const auto& month : darknet.monthly_volumes()) {
    char label[16];
    std::snprintf(label, sizeof label, "%04d-%02d", month.year, month.month);
    totals.push_back(month.total());
    table.add_row({label, util::fixed(month.total(), 0),
                   util::fixed(month.benign_fraction(), 2),
                   util::fixed(month.other_packets_per_24, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("monthly volume: %s\n\n", util::sparkline(totals).c_str());

  const auto monthly = darknet.monthly_volumes();
  double before = 0.0, after = 0.0;
  for (const auto& m : monthly) {
    if (m.year == 2013 && m.month <= 11) before = std::max(before, m.total());
    if (m.year == 2014 && m.month >= 1) after = std::max(after, m.total());
  }
  std::printf("rise from pre-December baseline to 2014 plateau: %.0fx"
              "   (paper: ~10x)\n",
              before > 0 ? after / before : 0.0);
  std::printf("benign (research) share of plateau months: about half of the"
              " increase,\nas in the paper — see the benign-frac column.\n\n");

  // §5.1's IPv6 coda: the v6 telescope (covering prefixes for four RIRs)
  // sees only errant point-to-point NTP — nobody sweeps 2^128 addresses.
  telemetry::Ipv6DarknetTelescope v6(telemetry::rir_covering_prefixes());
  util::Rng v6_rng(opt.seed ^ 0x1276ULL);
  for (int day = from; day <= 180; ++day) {
    // A few misconfigured v6 hosts chirping at dark space.
    v6.observe(*net::parse_ipv6("2400:a1ce::1"),
               *net::parse_ipv6("2400:dead::1"), net::kNtpPort, day,
               v6_rng.uniform(3));
    v6.observe(*net::parse_ipv6("2800:cafe::7"),
               *net::parse_ipv6("2800:beef::2"), net::kNtpPort, day, 1);
  }
  std::printf("IPv6 darknet (four RIR covering prefixes): %llu NTP packets "
              "from %zu sources;\nbroad scanning detected: %s   (paper: "
              "errant point-to-point only, no scanning)\n",
              static_cast<unsigned long long>(v6.ntp_packets()),
              v6.unique_ntp_sources(),
              v6.no_broad_scanning() ? "no" : "YES");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
