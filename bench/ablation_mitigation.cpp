// Ablation: how much did the community response actually matter?
//
// §6.4 asks why remediation happened so fast (CERT notifications, operator
// self-interest) but cannot establish causality from observational data.
// A simulator can ask the counterfactuals directly. Four worlds, identical
// except for the mitigation regime:
//   A. paper       — the calibrated remediation hazards (what happened)
//   B. no-notify   — hazards at 40% speed (no notification campaign;
//                     Kührer et al. credit notifications with speeding
//                     remediation)
//   C. no-response — nobody patches at all
//   D. rate-limit  — no patching, but every amplifier deploys a mode 7
//                     rate limit (Merit's interim mitigation, §7.1)
// Reported per world: amplifier pool at the last sample, total victim
// packets witnessed, and the 95th-percentile per-victim packet count late
// in the study.
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

struct Outcome {
  std::uint64_t pool_first = 0;
  std::uint64_t pool_last = 0;
  std::uint64_t victim_packets = 0;
  std::uint64_t emitted_bytes = 0;  ///< attack bytes amplifiers sent
  double late_p95 = 0.0;
  std::uint64_t victims = 0;
};

Outcome run_world(const bench::Options& opt, double remediation_speed,
                  std::uint32_t rate_limit_per_minute) {
  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  wcfg.remediation_speed = remediation_speed;
  sim::World world(wcfg);

  if (rate_limit_per_minute > 0) {
    for (const auto ai : world.amplifier_indices()) {
      if (auto* server = world.detailed(ai)) {
        server->set_mode7_rate_limit(rate_limit_per_minute);
      }
    }
  }

  core::AmplifierCensus census(world.registry(), world.pbl());
  core::VictimAnalysis victims(world.registry(), world.pbl());
  sim::AttackEngineConfig acfg;
  acfg.seed = opt.seed ^ 0xa77acdULL;
  sim::AttackEngine attacks(world, acfg, {});
  sim::ScanTrafficConfig scfg;
  scfg.seed = opt.seed ^ 0x5ca7ULL;
  sim::ScanTraffic scans(world, scfg);
  scan::Prober prober(world, net::Ipv4Address(198, 51, 100, 7));

  const int weeks = opt.quick ? 8 : 15;
  int day = 40;
  for (int week = 0; week < weeks; ++week) {
    const int sample_day = 70 + week * 7;
    for (; day <= sample_day; ++day) attacks.run_day(day);
    scans.seed_monitor_tables(week);
    const auto date = util::onp_sample_dates()[static_cast<std::size_t>(week)];
    census.begin_sample(week, date);
    victims.begin_sample(week, date);
    prober.run_monlist_sample(week,
                              [&](const scan::AmplifierObservation& obs) {
                                census.add(obs);
                                victims.add(obs);
                              });
    census.end_sample();
    victims.end_sample();
  }

  Outcome out;
  out.pool_first = census.rows().front().ips;
  out.pool_last = census.rows().back().ips;
  out.victim_packets = victims.total_packets();
  out.emitted_bytes = attacks.totals().response_bytes;
  out.late_p95 = victims.rows().back().packets_p95;
  out.victims = victims.unique_victims();
  return out;
}

int run(const bench::Options& opt) {
  bench::print_header(
      "Ablation (§6.4): value of the community response", opt);

  struct Scenario {
    const char* name;
    double speed;
    std::uint32_t rate_limit;
  };
  const Scenario scenarios[] = {
      {"A. paper remediation", 1.0, 0},
      {"B. no notification campaign (40% speed)", 0.4, 0},
      {"C. no community response", 0.0, 0},
      {"D. no patching, mode7 rate-limited", 0.0, 60},
  };

  util::TextTable table({"scenario", "pool first", "pool last",
                         "witnessed pkts", "emitted volume",
                         "late p95/victim", "victims"});
  Outcome baseline{};
  for (const auto& s : scenarios) {
    const auto o = run_world(opt, s.speed, s.rate_limit);
    if (s.speed == 1.0) baseline = o;
    table.add_row({s.name, std::to_string(o.pool_first),
                   std::to_string(o.pool_last),
                   util::si_count(static_cast<double>(o.victim_packets)),
                   util::bytes_str(static_cast<double>(o.emitted_bytes)),
                   util::si_count(o.late_p95),
                   std::to_string(o.victims)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "reading: remediation (A) removes ~90%% of the pool and most of the\n"
      "emitted attack volume; without the notification campaign (B) both\n"
      "stay substantially higher; with no response at all (C) the full pool\n"
      "keeps reflecting through April. Rate-limiting alone (D) leaves the\n"
      "pool and the *witnessed* spoofed-trigger counts untouched (monlist\n"
      "still logs every trigger) but collapses the volume amplifiers can\n"
      "emit — exactly why Merit deployed it as an interim measure (§7.1).\n"
      "The paper's observational claim that mitigation drove the decline\n"
      "(§6) is causally consistent with the model.\n");
  (void)baseline;
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 80));
}
