// Figure 12: aggregate NTP volume at CSU and FRGP (UDP sport/dport=123).
//
// Paper shape: attacks appear ~a month after Merit; volumes an order of
// magnitude below Merit's; CSU secures its nine servers on January 24 and
// its egress drops back to pre-attack levels within the day, while other
// FRGP networks keep reflecting through February. The largest ingress
// spike (Feb 10) ran 23 minutes near 3 GB/s for ~514 GB.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "core/local_view.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 12: CSU/FRGP NTP traffic (3 months)", opt);

  bench::RegionalRun regional(opt);
  const int to_day = opt.quick ? 95 : 121;
  regional.run(30, to_day);

  const util::SimTime start = 30 * util::kSecondsPerDay;
  const util::SimTime end = to_day * util::kSecondsPerDay;
  const auto csu_egress = regional.csu->volume_series(
      start, end, util::kSecondsPerDay, telemetry::is_ntp_source);
  const auto frgp_egress = regional.frgp->volume_series(
      start, end, util::kSecondsPerDay, telemetry::is_ntp_source);
  const auto frgp_ingress = regional.frgp->volume_series(
      start, end, util::kSecondsPerDay, [](const telemetry::FlowRecord& f) {
        return f.src_port == net::kNtpPort && f.dst_port != net::kNtpPort;
      });

  bench::print_volume_series("CSU egress (sport=123):", csu_egress);
  bench::print_volume_series("FRGP egress (sport=123):", frgp_egress);

  // CSU remediation check: egress after Jan 24 (day 84) vs before.
  double before = 0.0, after = 0.0;
  for (std::size_t d = 0; d < csu_egress.bytes.size(); ++d) {
    const int day = 30 + static_cast<int>(d);
    if (day >= 55 && day < 84) before = std::max(before, csu_egress.bytes[d]);
    if (day >= 86) after = std::max(after, csu_egress.bytes[d]);
  }
  std::printf("CSU peak egress before Jan 24: %s/day; after: %s/day"
              "   (paper: back to pre-attack levels once secured)\n",
              util::bytes_str(before).c_str(),
              util::bytes_str(after).c_str());

  // Largest FRGP-directed attack (ingress spike).
  core::LocalForensics frgp_view(*regional.frgp,
                                 regional.world->registry());
  const auto victims = frgp_view.victims();
  if (!victims.empty()) {
    const auto& worst = victims.front();
    std::printf("largest attack on an FRGP host: %s over %.0f min"
                "   (paper: 514 GB in 23 min at ~3 GB/s)\n",
                util::bytes_str(static_cast<double>(worst.bytes)).c_str(),
                worst.duration_hours * 60.0);
  }
  std::printf("FRGP keeps reflecting after CSU patched: %s\n",
              frgp_egress.bytes.back() > 10 * 1e6 ? "yes (as in the paper)"
                                                  : "no");
  (void)frgp_ingress;
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
