// §4.4 cross-dataset validation: the February 10th OVH/CloudFlare attack.
//
// CloudFlare published the 1,297 ASes that hosted the amplifiers used in
// the ~400 Gbps attack; 1,291 of them also appeared in the ONP census, and
// those ASes carried 60% of ALL victim packets the study measured — the
// paper's strongest independent check that its monlist-table methodology
// sees real attacks. We rerun that check: the scripted OVH event plays the
// role of the disclosed attack; its amplifier-AS list is "published"; the
// census and victimology are rebuilt from probes alone and intersected.
#include <cstdio>
#include <set>

#include "common.h"
#include "core/remediation_analysis.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("§4.4 validation: the disclosed OVH attack vs the "
                      "census", opt);

  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  sim::World world(wcfg);
  core::AmplifierCensus census(world.registry(), world.pbl());
  core::VictimAnalysis victims(world.registry(), world.pbl());
  sim::AttackEngineConfig acfg;
  acfg.seed = opt.seed ^ 0xa77acdULL;
  sim::AttackEngine attacks(world, acfg, {});
  sim::ScanTrafficConfig scfg;
  scfg.seed = opt.seed ^ 0x5ca7ULL;
  sim::ScanTraffic scans(world, scfg);
  scan::Prober prober(world, net::Ipv4Address(198, 51, 100, 7));

  const int weeks = opt.quick ? 8 : 15;
  int day = 40;
  for (int week = 0; week < weeks; ++week) {
    const int sample_day = 70 + week * 7;
    for (; day <= sample_day; ++day) attacks.run_day(day);
    scans.seed_monitor_tables(week);
    const auto date = util::onp_sample_dates()[static_cast<std::size_t>(week)];
    census.begin_sample(week, date);
    victims.begin_sample(week, date);
    prober.run_monlist_sample(week,
                              [&](const scan::AmplifierObservation& obs) {
                                census.add(obs);
                                victims.add(obs);
                              });
    census.end_sample();
    victims.end_sample();
  }

  // The victim's CDN "publishes" the amplifier ASes of the disclosed event.
  const auto& events = attacks.scripted_events();
  if (events.empty()) {
    std::printf("no scripted event in this horizon (use >= 5 weeks)\n");
    return 0;
  }
  std::set<net::Asn> published_set;
  net::Ipv4Address event_victim = events.front().victim;
  for (const auto& event : events) {
    for (const auto amp : event.amplifiers) {
      if (const auto asn = world.registry().asn_of(
              world.servers()[amp].home_address)) {
        published_set.insert(*asn);
      }
    }
  }
  std::vector<net::Asn> published(published_set.begin(), published_set.end());

  const auto v = core::validate_published_as_list(published, victims);
  std::printf("disclosed event: %zu attack days against %s (the OVH "
              "analogue), %zu amplifier ASes published\n\n",
              events.size(), net::to_string(event_victim).c_str(),
              published.size());
  std::printf("published ASes also seen in our census: %zu of %zu (%.1f%%)"
              "   (paper: 1291 of 1297, 99.5%%)\n",
              v.overlapping_ases, v.published_ases,
              v.overlap_fraction * 100.0);
  std::printf("share of ALL victim packets carried by those ASes: %.0f%%"
              "   (paper: 60%%)\n\n",
              v.packet_share_of_total * 100.0);

  // And the victim-side check: the disclosed target should top the
  // victim-AS ranking (paper: OVH is #1 of 11,558; CloudFlare ranks 18th).
  const auto top = victims.top_victim_ases(3);
  const auto event_asn = world.registry().asn_of(event_victim);
  std::printf("victim-AS ranking check: disclosed target's AS is #%s\n",
              !top.empty() && event_asn && top[0].first == *event_asn
                  ? "1 (as in the paper)"
                  : "NOT 1");
  std::printf("\ncross-dataset agreement is what the paper leans on for\n"
              "confidence in the monlist methodology; it reproduces here\n"
              "because the tables really do witness the attack traffic.\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
