// Figure 16: scanners observed at both Merit and CSU, over time.
//
// Paper shape: only 42 common scanner IPs across the two sites, and most
// of those are research projects — open, aggressive, whole-space sweeps
// get seen everywhere, while malicious scanning is spread thin in time and
// space, so two distinct sites rarely catch the same malicious scanner.
// §7.2's TTL fingerprint: scanning traffic is Linux-built (mode TTL 54),
// spoofed attack triggers are Windows-built (mode TTL 109).
#include <cstdio>

#include "common.h"
#include "core/local_view.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 16: common Merit/CSU scanners + TTL profile",
                      opt);

  bench::RegionalRun regional(opt);
  regional.run(30, opt.quick ? 80 : 95);

  core::LocalForensics merit_view(*regional.merit,
                                  regional.world->registry());
  core::LocalForensics csu_view(*regional.csu, regional.world->registry());

  const auto merit_scanners = merit_view.scanners();
  const auto csu_scanners = csu_view.scanners();
  const auto common =
      core::LocalForensics::common_scanners(merit_view, csu_view);
  std::printf("scanners at Merit: %zu, at CSU: %zu, common: %zu"
              "   (paper: 42 common IPs, mostly research)\n\n",
              merit_scanners.size(), csu_scanners.size(), common.size());

  std::printf("common scanners (research sweeps see every site):\n");
  for (std::size_t i = 0; i < common.size() && i < 12; ++i) {
    std::printf("  %s\n", net::to_string(common[i]).c_str());
  }

  const auto merit_ttl = merit_view.ttl_profile();
  std::printf("\nTTL inference at Merit (§7.2):\n");
  if (merit_ttl.scanner_mode_ttl) {
    std::printf("  scanning traffic mode TTL: %d -> Linux-built scanners"
                "   (paper: 54)\n",
                static_cast<int>(*merit_ttl.scanner_mode_ttl));
  }
  if (merit_ttl.attack_mode_ttl) {
    std::printf("  spoofed trigger mode TTL:  %d -> Windows botnet nodes"
                "   (paper: 109)\n",
                static_cast<int>(*merit_ttl.attack_mode_ttl));
  }
  std::printf("\nscanning is open and centralized; attack spoofing is "
              "botnet-distributed —\nthe division of labor the paper "
              "inferred from these TTLs.\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
