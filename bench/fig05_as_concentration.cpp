// Figure 5: CDF of aggregate victim packets by autonomous system, for
// amplifier-side and victim-side attribution.
//
// Paper shape: heavy concentration — the top 100 amplifier ASes originate
// 60% of victim packets; victims are even more concentrated, with the top
// 100 victim ASes receiving 75%. (16,687 amplifier ASes; 11,558 victim
// ASes in total.)
#include <cstdio>

#include "common.h"
#include "core/stats.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 5: victim-packet concentration by AS", opt);

  bench::StudyPipeline pipeline(opt);
  pipeline.run();

  const auto victim_packets = pipeline.victims->victim_as_packets();
  const auto amp_packets = pipeline.victims->amplifier_as_packets();

  // The paper's x-axis is AS rank; print the CDF at log-spaced ranks.
  // Note: our world holds ~registry-config ASes, so the paper's "top 100"
  // anchor corresponds to roughly top-100/scale-adjusted rank here.
  util::TextTable table({"AS rank", "amplifier-AS CDF", "victim-AS CDF"});
  for (std::size_t rank = 1;
       rank <= std::max(victim_packets.size(), amp_packets.size());
       rank *= 2) {
    table.add_row({std::to_string(rank),
                   util::fixed(core::top_k_share(amp_packets, rank), 3),
                   util::fixed(core::top_k_share(victim_packets, rank), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("amplifier ASes seen: %zu   victim ASes seen: %zu\n",
              pipeline.victims->amplifier_as_count(),
              pipeline.victims->victim_as_count());
  const double amp100 = core::top_k_share(amp_packets, 100);
  const double vic100 = core::top_k_share(victim_packets, 100);
  std::printf("top-100 amplifier ASes carry: %.0f%%   (paper: 60%%)\n",
              amp100 * 100.0);
  std::printf("top-100 victim ASes receive:  %.0f%%   (paper: 75%%)\n",
              vic100 * 100.0);
  std::printf("victims more concentrated than amplifiers: %s\n",
              vic100 >= amp100 ? "yes (as in the paper)" : "NO");

  const auto top = pipeline.victims->top_victim_ases(3);
  std::printf("\ntop victim ASes (paper: OVH first, hosting-dominated):\n");
  for (const auto& [asn, packets] : top) {
    const auto& info = pipeline.world->registry().as_info(asn);
    std::printf("  AS%-6u %-22s %-12s %s packets\n", asn, info.name.c_str(),
                net::to_string(info.category),
                util::si_count(static_cast<double>(packets)).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
