// Table 4: top 20 UDP ports seen at victims across all amplifier/victim
// pairs, with common-use labels.
//
// Paper shape: port 80 leads at .362 (not a UDP service port — attackers
// pick it hoping it passes filters), the NTP port 123 is second at .238,
// and at least ten of the top twenty are game-associated (Xbox Live,
// Minecraft, Steam, Runescape, ...) — the "game wars" finding.
#include <cstdio>

#include <map>

#include "common.h"

namespace gorilla {
namespace {

const std::map<std::uint16_t, const char*>& port_labels() {
  static const std::map<std::uint16_t, const char*> kLabels = {
      {80, "None. via TCP:HTTP (g)"}, {123, "NTP server port"},
      {3074, "XBox Live (g)"},        {50557, "Unknown"},
      {53, "DNS; XBox Live (g)"},     {25565, "Minecraft (g)"},
      {19, "chargen protocol"},       {22, "None. via TCP:SSH"},
      {5223, "Playstation (g); other"},
      {27015, "Steam/e.g. Half-Life (g)"},
      {43594, "Runescape (g)"},       {9987, "TeamSpeak3 (g)"},
      {8080, "None. via TCP:HTTP alt."},
      {6005, "Unknown"},              {7777, "Several games (g); other"},
      {2052, "Star Wars (g)"},        {1025, "Win RPC; other"},
      {1026, "Win RPC; other"},       {88, "XBox Live (g)"},
      {90, "DNSIX (military)"},
  };
  return kLabels;
}

int run(const bench::Options& opt) {
  bench::print_header("Table 4: top 20 attacked ports", opt);

  bench::StudyPipeline pipeline(opt);
  pipeline.run();

  const auto ports = pipeline.victims->top_ports(20);
  util::TextTable table({"Rank", "Attacked Port", "Fraction",
                         "Common UDP Use"});
  double game_fraction = 0.0;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const auto it = port_labels().find(ports[i].first);
    const char* label = it != port_labels().end() ? it->second : "other";
    if (std::string(label).find("(g)") != std::string::npos) {
      game_fraction += ports[i].second;
    }
    table.add_row({std::to_string(i + 1), std::to_string(ports[i].first),
                   util::fixed(ports[i].second, 3), label});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("port 80 tops the table: %s   (paper: .362)\n",
              !ports.empty() && ports[0].first == 80
                  ? "yes (as in the paper)"
                  : "NO");
  std::printf("game-labeled ports in top 20 carry: %.1f%% of pairs"
              "   (paper: >=15%%, more counting port 80)\n",
              game_fraction * 100.0);
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
