// §3.4 follow-up: the April-June mega-amplifier watch.
//
// The paper kept probing, twice daily, the ~250K IPs that had answered
// monlist in any March 2014 sample. Findings it reports: responders fell
// from ~60K to ~15K over the period; nine IPs (from seven ASNs, all
// geolocated to one country) replied with >10,000 packets (>=5 MB) at
// least once; the largest sent >20M packets on each of a dozen samples;
// on May 31 one box sent 23M packets (>100 GB) in the first hour after a
// single probe. This bench reruns that watch.
#include <algorithm>
#include <cstdio>
#include <set>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("§3.4 follow-up: April-June mega-amplifier watch",
                      opt);

  // Build the world and replay the study proper (needed so the monitor
  // tables and remediation state reach their April condition), collecting
  // the watch list on the way: every server that answered a March monlist
  // sample (weeks 8..11 anchor Mar 07 - Mar 28).
  // The watch list needs the March samples, so the pipeline always runs
  // the full fifteen weeks; --quick only shortens the watch itself.
  bench::Options full = opt;
  full.quick = false;
  bench::StudyPipeline pipeline(full);
  std::set<std::uint32_t> march_seen;
  pipeline.extra_visitor = [&](int week,
                               const scan::AmplifierObservation& o) {
    if (week >= 8 && week <= 11) march_seen.insert(o.server_index);
  };
  pipeline.run();
  std::vector<std::uint32_t> march_targets(march_seen.begin(),
                                           march_seen.end());
  std::printf("watch list: %zu IPs that answered in March   (paper: 250K, "
              "scaled = %llu)\n\n",
              march_targets.size(),
              static_cast<unsigned long long>(250000 / opt.scale));

  // Twice-daily probes April 2 (day 152) - June 13 (day 224).
  scan::Prober watcher(*pipeline.world, net::Ipv4Address(198, 51, 100, 9));
  util::TextTable table({"date", "responders", "mega replies (>5MB)"});
  std::map<std::uint32_t, std::uint64_t> big_repliers;  // server -> max bytes
  std::map<std::uint32_t, int> big_reply_samples;
  std::uint64_t biggest_single = 0;
  util::Date biggest_date{};
  std::vector<double> responder_series;

  const int last_day = opt.quick ? 190 : 224;
  for (int day = 152; day <= last_day; ++day) {
    for (int half = 0; half < 2; ++half) {
      const util::SimTime now =
          static_cast<util::SimTime>(day) * util::kSecondsPerDay +
          (half == 0 ? 6 : 18) * util::kSecondsPerHour;
      const int week = (day - 70) / 7;
      std::uint64_t megas_this_pass = 0;
      const auto summary = watcher.probe_targets(
          march_targets, week, now,
          [&](const scan::AmplifierObservation& o) {
            if (o.response_wire_bytes >= 5'000'000) {
              ++megas_this_pass;
              auto& best = big_repliers[o.server_index];
              best = std::max(best, o.response_wire_bytes);
              ++big_reply_samples[o.server_index];
              if (o.response_wire_bytes > biggest_single) {
                biggest_single = o.response_wire_bytes;
                biggest_date = util::date_from_sim_time(now);
              }
            }
          });
      if (half == 0) {
        responder_series.push_back(
            static_cast<double>(summary.responders));
        if (day % 7 == 3) {
          table.add_row({util::to_string(util::date_from_sim_time(now)),
                         std::to_string(summary.responders),
                         std::to_string(megas_this_pass)});
        }
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("responders: %s\n\n",
              util::sparkline(responder_series).c_str());

  const double first = responder_series.front();
  const double last = responder_series.back();
  std::printf("watch-list responders first->last: %.0f -> %.0f"
              "   (paper: ~60K -> ~15K, i.e. ~4x decline)\n",
              first, last);

  std::printf("\nIPs that ever replied with >5 MB: %zu   (paper: 9, from 7 "
              "ASNs)\n",
              big_repliers.size());
  std::set<net::Asn> mega_asns;
  std::set<std::string> mega_regions;
  util::TextTable megas({"amplifier", "ASN", "region", "largest reply",
                         "samples >5MB"});
  std::size_t shown = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(
      big_repliers.begin(), big_repliers.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [server, bytes] : ranked) {
    const auto addr = pipeline.world->servers()[server].home_address;
    const auto asn = pipeline.world->registry().asn_of(addr);
    std::string region = "?";
    if (asn) {
      mega_asns.insert(*asn);
      region = net::to_string(
          pipeline.world->registry().as_info(*asn).continent);
      mega_regions.insert(region);
    }
    if (shown++ < 9) {
      megas.add_row({net::to_string(addr),
                     asn ? "AS" + std::to_string(*asn) : "-", region,
                     util::bytes_str(static_cast<double>(bytes)),
                     std::to_string(big_reply_samples[server])});
    }
  }
  std::printf("%s\n", megas.to_string().c_str());
  std::printf("distinct ASNs: %zu; regions: %zu"
              "   (paper: 7 ASNs, all geolocated to Japan)\n",
              mega_asns.size(), mega_regions.size());
  std::printf("largest single reply: %s on %s"
              "   (paper: 23M packets, >100 GB in an hour, on May 31)\n",
              util::bytes_str(static_cast<double>(biggest_single)).c_str(),
              util::to_string(biggest_date).c_str());
  std::printf("\nrepeat offenders (multiple >5MB samples) confirm the fault "
              "is systematic,\nnot transient — the paper's conclusion before "
              "JPCERT notification ended it.\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
