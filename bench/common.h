// Shared harness support for the per-figure/table bench binaries.
//
// Every bench binary regenerates one of the paper's tables or figures from
// a fresh simulated study. Common knobs: --scale N (population divisor,
// default 40 for full-pipeline benches), --seed N. Output is deterministic
// for a given (scale, seed) — and invariant under --jobs N and under
// --record/--replay round-trips; all engine diagnostics (phase wall times,
// record/replay notes) go to stderr so stdout stays byte-comparable.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/amplifiers.h"
#include "core/victims.h"
#include "scan/prober.h"
#include "sim/attack.h"
#include "sim/scanner.h"
#include "sim/sharded_executor.h"
#include "sim/world.h"
#include "study/analysis_sink.h"
#include "study/bus.h"
#include "study/collector_sink.h"
#include "study/recorder.h"
#include "telemetry/darknet.h"
#include "telemetry/flow.h"
#include "telemetry/traffic.h"
#include "util/csv.h"
#include "util/format.h"
#include "util/thread_pool.h"

namespace gorilla::bench {

struct Options {
  std::uint32_t scale = 40;
  std::uint64_t seed = util::Rng::kDefaultSeed;
  bool quick = false;  ///< --quick halves the horizon for smoke runs
  std::string csv_dir;  ///< --csv DIR: also drop machine-readable series
  /// --jobs N: worker threads for the sharded study engine (1 = the
  /// sequential engine; must be >= 1). Output is bit-identical for every
  /// value.
  int jobs = 1;
  std::string record;  ///< --record PATH: save the study's event stream
  std::string replay;  ///< --replay PATH: skip simulation, replay a stream
  /// --artifact-version 2|3: container format for --record. 3 (default,
  /// GORCOLv3) is delta-transformed and block-compressed; 2 keeps the
  /// legacy uncompressed GORCOLv2 layout for size comparisons. Replay
  /// reads any version regardless of this flag.
  int artifact_version = 3;
  /// --checkpoint N: while recording, flush a durable snapshot of the
  /// stream every N complete sample weeks (atomic rename over the --record
  /// path). 0 = only the final save.
  int checkpoint_weeks = 0;
  /// --resume: before simulating, consume the longest valid prefix of the
  /// --record artifact (complete weeks only), fast-forward the world
  /// through those weeks, and continue live — stdout is byte-identical to
  /// an uninterrupted run.
  bool resume = false;
  /// --mem-report: at exit, print the util::MemStats registry (per-
  /// subsystem live/peak bytes + process peak RSS) to stderr. Stderr so
  /// stdout stays byte-comparable across flag combinations.
  bool mem_report = false;
};

/// Writes a CSV artifact into opt.csv_dir when set (no-op otherwise);
/// returns true when a file was written.
bool maybe_write_csv(const Options& opt, const std::string& name,
                     const util::CsvDocument& doc);

/// Parses --scale/--seed/--quick; exits with usage on unknown flags
/// (ignores google-benchmark style flags so mixed invocation works).
[[nodiscard]] Options parse_options(int argc, char** argv,
                                    std::uint32_t default_scale = 40);

/// Prints the standard provenance header every bench emits.
void print_header(const std::string& figure, const Options& opt);

/// The full measurement pipeline most §3/§4/§6 benches share: a world that
/// lives through the study — attacks, scanning, fifteen weekly ONP monlist
/// probes — with the census and victim analyses attached.
///
/// All producers emit through a study::EventBus; run() subscribes the
/// collector and analysis sinks (plus a Recorder under --record). Under
/// --replay the simulation is skipped entirely and the recorded stream is
/// replayed into the same sinks — byte-identical output, since the artifact
/// preserves the event stream's total order. Under --jobs N the monitor
/// seeding and probe loops run on the sharded executor, also
/// byte-identically.
struct StudyPipeline {
  explicit StudyPipeline(const Options& opt, bool with_vantages = false,
                         bool with_darknet = false);
  ~StudyPipeline();

  /// Network-impairment settings threaded through the whole study (attack
  /// trigger delivery, scan traffic, prober, darknet capture). Defaults to
  /// the pristine network — every figure reproduces the seed bit-for-bit.
  /// Set fields BEFORE calling run().
  sim::ImpairmentConfig impairment;
  /// Prober retry/timeout/backoff policy (only consulted when the
  /// impairment layer is enabled).
  scan::ProbePolicy probe_policy;

  sim::WorldConfig world_config;
  std::unique_ptr<sim::World> world;
  std::unique_ptr<core::AmplifierCensus> census;
  std::unique_ptr<core::VictimAnalysis> victims;
  std::unique_ptr<telemetry::GlobalTrafficCollector> global;
  std::unique_ptr<telemetry::AttackLabelStore> labels;
  std::unique_ptr<telemetry::FlowCollector> merit;
  std::unique_ptr<telemetry::FlowCollector> frgp;
  std::unique_ptr<telemetry::FlowCollector> csu;
  std::unique_ptr<telemetry::DarknetTelescope> darknet;
  std::vector<scan::MonlistSampleSummary> summaries;

  /// Optional extra per-observation hook (e.g. named-subset counting).
  std::function<void(int week, const scan::AmplifierObservation&)>
      extra_visitor;

  /// Extra sinks subscribed to the bus for the duration of run() — the hook
  /// replay backends (study::DetectorSink, study::PcapExportSink, ...) use
  /// to ride a LIVE run and prove live-vs-replay byte identity. Sinks must
  /// outlive run(); set before calling run().
  std::vector<study::EventSink*> extra_sinks;

  /// Runs attacks+scans day-by-day and probes weekly (15 samples) — or
  /// replays a recorded stream when the options carry --replay.
  void run();

 private:
  void run_simulated(study::EventBus& bus,
                     const std::vector<telemetry::FlowCollector*>& vantages);
  void run_replayed(study::EventBus& bus);
  /// Under --resume: loads the durable prefix of the --record artifact,
  /// replays its complete weeks into `bus`, and returns that week count (0
  /// = start fresh). Exits on a header mismatch — resuming someone else's
  /// world would silently corrupt the output.
  [[nodiscard]] int resume_prefix_weeks(study::EventBus& bus,
                                        int horizon_weeks);
  [[nodiscard]] study::StudyHeader make_header() const;

  Options opt_;
  bool with_vantages_;
  bool with_darknet_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<sim::ShardedExecutor> executor_;
  std::chrono::steady_clock::time_point run_done_{};
  bool ran_ = false;
};

/// Lighter harness for the §7 regional benches: attacks and scanning with
/// the Merit/FRGP/CSU vantage collectors (and optionally the darknet), no
/// prober. Days default to Dec 1 - Mar 1 (the window Figures 11-15 plot).
/// Under --jobs N the whole window runs as parallel day shards,
/// byte-identically to --jobs 1.
struct RegionalRun {
  explicit RegionalRun(const Options& opt, bool with_darknet = false);
  ~RegionalRun();

  /// Runs [from_day, to_day); day 0 = 2013-11-01, Figure 11's window is
  /// roughly [30, 121). Honors --record/--replay like StudyPipeline (the
  /// recorded day window must match on replay).
  void run(int from_day = 30, int to_day = 121);

  std::unique_ptr<sim::World> world;
  std::unique_ptr<telemetry::FlowCollector> merit;
  std::unique_ptr<telemetry::FlowCollector> frgp;
  std::unique_ptr<telemetry::FlowCollector> csu;
  std::unique_ptr<telemetry::DarknetTelescope> darknet;
  std::unique_ptr<telemetry::GlobalTrafficCollector> global;
  std::unique_ptr<telemetry::AttackLabelStore> labels;

 private:
  Options opt_;
  bool with_darknet_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<sim::ShardedExecutor> executor_;
  std::chrono::steady_clock::time_point run_done_{};
  bool ran_ = false;
};

/// Renders a per-day byte-volume series as date rows + log sparkline.
void print_volume_series(const std::string& label,
                         const telemetry::VolumeSeries& series,
                         int row_stride_days = 7);

}  // namespace gorilla::bench
