// Table 1: per-sample amplifier and victim populations — IPs, routed
// blocks, origin ASNs, end-host counts/percentages, IPs per routed block.
//
// Paper shape (amplifiers): IPs collapse 1.4M -> 106K while the end-host
// share doubles (18.5% -> 33.5%) and IPs-per-block falls 22 -> 4 (the
// co-addressed server farms get patched first). Victims: population grows
// from 50K to a ~170K peak in mid-March before declining; end-host share
// rises 31% -> ~50%; victims spread thin (3-5 IPs per block).
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Table 1: amplifier and victim populations per sample",
                      opt);

  bench::StudyPipeline pipeline(opt);
  pipeline.run();

  std::printf("-- Global Amplifiers --\n");
  util::TextTable amp({"date", "IPs", "Blocks", "ASNs", "EndHosts", "EH%",
                       "IPs/Block"});
  for (const auto& r : pipeline.census->rows()) {
    amp.add_row({util::to_string(r.date), std::to_string(r.ips),
                 std::to_string(r.routed_blocks), std::to_string(r.asns),
                 std::to_string(r.end_hosts), util::fixed(r.end_host_pct, 1),
                 util::fixed(r.ips_per_block, 2)});
  }
  std::printf("%s\n", amp.to_string().c_str());

  std::printf("-- Global Victims --\n");
  util::TextTable vic({"date", "IPs", "Blocks", "ASNs", "EndHosts", "EH%",
                       "IPs/Block"});
  for (const auto& r : pipeline.victims->rows()) {
    vic.add_row({util::to_string(r.date), std::to_string(r.ips),
                 std::to_string(r.routed_blocks), std::to_string(r.asns),
                 std::to_string(r.end_hosts), util::fixed(r.end_host_pct, 1),
                 util::fixed(r.ips_per_block, 2)});
  }
  std::printf("%s\n", vic.to_string().c_str());

  const auto& arows = pipeline.census->rows();
  const auto& vrows = pipeline.victims->rows();
  std::printf("shape checks vs paper:\n");
  std::printf("  amplifier end-host %% first->last: %.1f -> %.1f"
              "   (paper: 18.5 -> 33.5)\n",
              arows.front().end_host_pct, arows.back().end_host_pct);
  std::printf("  amplifier IPs/block first->last:  %.1f -> %.1f"
              "   (paper: 22 -> 4)\n",
              arows.front().ips_per_block, arows.back().ips_per_block);
  std::printf("  victim end-host %% first->last:    %.1f -> %.1f"
              "   (paper: 31 -> ~50)\n",
              vrows.front().end_host_pct, vrows.back().end_host_pct);
  std::printf("  victim IPs/block stays small:     %.1f .. %.1f"
              "   (paper: 3 - 5)\n",
              vrows.front().ips_per_block, vrows.back().ips_per_block);
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
