// Table 3: worked examples of monlist tables returned by probed servers —
// (a) a normally-used server showing the ONP probe, research scanners, and
// ordinary mode 3/4 clients; (b) an attack-witnessing server whose "clients"
// are spoofed victims with enormous counts and zero interarrival.
//
// This bench drives a real ntp::NtpServer through the exact packet flow and
// prints the reassembled tables with the §4.2 classification of each row.
#include <cstdio>

#include "common.h"
#include "core/monlist_analysis.h"
#include "ntp/server.h"

namespace gorilla {
namespace {

constexpr util::SimTime kProbeTime = 70 * util::kSecondsPerDay;

ntp::NtpServer make_server(std::uint32_t addr) {
  ntp::NtpServerConfig cfg;
  cfg.address = net::Ipv4Address{addr};
  cfg.sysvars.system = "Linux/2.6.32";
  cfg.sysvars.stratum = 2;
  return ntp::NtpServer(cfg);
}

std::vector<ntp::MonitorEntry> probe_table(ntp::NtpServer& server) {
  net::UdpPacket probe;
  probe.src = net::Ipv4Address(198, 51, 100, 7);
  probe.dst = server.config().address;
  probe.src_port = 57915;
  probe.dst_port = net::kNtpPort;
  probe.timestamp = kProbeTime;
  probe.payload = ntp::serialize(ntp::make_monlist_request());
  const auto response = server.handle(probe, kProbeTime);
  std::vector<ntp::Mode7Packet> parsed;
  for (const auto& pkt : response.packets) {
    if (auto p = ntp::parse_mode7_packet(pkt.payload)) {
      parsed.push_back(std::move(*p));
    }
  }
  return ntp::reassemble_monlist(parsed).value_or(
      std::vector<ntp::MonitorEntry>{});
}

const char* class_label(const ntp::MonitorEntry& e) {
  switch (core::classify_client(e)) {
    case core::ClientClass::kNonVictim: return "normal client";
    case core::ClientClass::kScannerOrLowVolume: return "scanner/probe";
    case core::ClientClass::kVictim: return "VICTIM";
  }
  return "?";
}

void print_table(const char* title,
                 const std::vector<ntp::MonitorEntry>& entries) {
  std::printf("%s\n", title);
  util::TextTable table({"Address", "Src.Port", "Count", "Mode",
                         "Inter-arrival", "Last Seen", "classified as"});
  for (const auto& e : entries) {
    table.add_row({net::to_string(e.address), std::to_string(e.port),
                   std::to_string(e.count),
                   std::to_string(static_cast<int>(e.mode)),
                   std::to_string(e.avg_interval),
                   std::to_string(e.last_seen), class_label(e)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

int run(const bench::Options& opt) {
  bench::print_header("Table 3: monlist table examples", opt);

  // --- (a) a normally-used server ---
  auto server_a = make_server(0x0a010101);
  // A research probe seen weekly for 19 weeks (client.a1 in the paper):
  for (int week = 0; week < 19; ++week) {
    server_a.monitor().observe(
        net::Ipv4Address(141, 212, 121, 99), 10151, 6, 2,
        kProbeTime - 310 - (18 - week) * static_cast<util::SimTime>(154503));
  }
  // Two ordinary NTP clients (modes 3 and 4):
  for (int i = 0; i < 4; ++i) {
    server_a.monitor().observe(net::Ipv4Address(10, 3, 3, 3), 123, 3, 4,
                               kProbeTime - 345 - (3 - i) * 1024);
  }
  server_a.monitor().observe(net::Ipv4Address(10, 4, 4, 4), 36008, 3, 4,
                             kProbeTime - 104063);
  // A slow Internet-survey host (mode 7, spaced ~14 min):
  server_a.monitor().observe_many(net::Ipv4Address(10, 5, 5, 5), 54660, 7, 2,
                                  2, kProbeTime - 21618, kProbeTime - 20795);
  // Previous weekly ONP probes:
  for (int week = 1; week <= 6; ++week) {
    server_a.monitor().observe(net::Ipv4Address(198, 51, 100, 7), 57915, 7, 2,
                               kProbeTime - week * util::kSecondsPerWeek);
  }
  print_table("(a) monlist Table A — a normally-used server", probe_table(server_a));

  // --- (b) an attack-witnessing server ---
  auto server_b = make_server(0x0a020202);
  server_b.monitor().observe_many(net::Ipv4Address(66, 66, 66, 1), 59436, 7,
                                  2, 3358227026ULL, kProbeTime - 86400,
                                  kProbeTime);
  server_b.monitor().observe_many(net::Ipv4Address(66, 66, 66, 2), 43395, 7,
                                  2, 25361312ULL, kProbeTime - 43200,
                                  kProbeTime);
  server_b.monitor().observe_many(net::Ipv4Address(66, 66, 66, 3), 50231, 7,
                                  2, 158163232ULL, kProbeTime - 7200,
                                  kProbeTime);
  server_b.monitor().observe_many(net::Ipv4Address(66, 66, 66, 4), 80, 7, 2,
                                  2189, kProbeTime - 2100, kProbeTime - 2);
  print_table("(b) monlist Table B — spoofed victims of reflection attacks",
              probe_table(server_b));

  std::printf(
      "note the Table-3b signatures from the paper: mode 7 'clients' with\n"
      "counts in the millions-to-billions, inter-arrival ~0, and one victim\n"
      "targeted on UDP source port 80 — the most-attacked port (Table 4).\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 1));
}
