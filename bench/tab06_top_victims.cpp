// Table 6: the five most-attacked victims at Merit and CSU — origin AS,
// region, BAF, number of local amplifiers used, attack duration, and GB
// received.
//
// Paper shape: Merit's top victims absorbed 1.6-5.9 TB over 114-166-hour
// multi-day campaigns from up to 42 coordinated amplifiers, spread across
// Japan, China, the USA, and Germany; CSU's top victims (France/OVH,
// Romania, Brazil, UK) each received 10-17 GB via all nine CSU amplifiers.
#include <cstdio>

#include "common.h"
#include "core/local_view.h"

namespace gorilla {
namespace {

void print_site(const char* site, const core::LocalForensics& view,
                std::size_t n) {
  const auto victims = view.victims();
  std::printf("-- top victims of %s amplifiers (%llu victims total) --\n",
              site, static_cast<unsigned long long>(
                        view.unique_victim_count()));
  util::TextTable table({"Victim", "ASN", "Region", "BAF", "Amplifiers",
                         "Dur. Hours", "GB"});
  for (std::size_t i = 0; i < victims.size() && i < n; ++i) {
    const auto& v = victims[i];
    table.add_row({std::string(site) + "-" +
                       std::string(1, static_cast<char>('A' + i)),
                   v.asn ? "AS" + std::to_string(*v.asn) : "-",
                   v.region.empty() ? "-" : v.region,
                   util::fixed(v.baf, 0), std::to_string(v.amplifiers),
                   util::fixed(v.duration_hours, 0),
                   util::fixed(static_cast<double>(v.bytes) / 1e9, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

int run(const bench::Options& opt) {
  bench::print_header("Table 6: top-5 victims at Merit and CSU", opt);

  bench::RegionalRun regional(opt);
  regional.run(78, opt.quick ? 92 : 98);

  core::LocalForensics merit_view(*regional.merit,
                                  regional.world->registry());
  core::LocalForensics csu_view(*regional.csu, regional.world->registry());

  print_site("Merit", merit_view, 5);
  print_site("CSU", csu_view, 5);

  std::printf("paper anchors: Merit-A AS4713 Japan, BAF 105, 42 amplifiers, "
              "114 h, 5887 GB;\n"
              "               CSU-F AS16276 France (OVH), BAF 730, 9 "
              "amplifiers, 31 h, 17 GB\n");
  std::printf("note the coordinated-reflection signature: CSU victims are "
              "hit by the\nwhole nine-amplifier set at once (§7.1).\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
