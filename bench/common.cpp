#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gorilla::bench {

Options parse_options(int argc, char** argv, std::uint32_t default_scale) {
  Options opt;
  opt.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      opt.scale = static_cast<std::uint32_t>(std::strtoul(value("--scale"),
                                                          nullptr, 10));
      if (opt.scale == 0) opt.scale = 1;
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--csv") {
      opt.csv_dir = value("--csv");
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // google-benchmark flags pass through untouched.
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--scale N] [--seed N] [--quick]\n", argv[0]);
      std::exit(0);
    }
  }
  return opt;
}

bool maybe_write_csv(const Options& opt, const std::string& name,
                     const util::CsvDocument& doc) {
  if (opt.csv_dir.empty()) return false;
  const std::string path = opt.csv_dir + "/" + name;
  const bool ok = doc.write_file(path);
  std::printf("%s csv artifact: %s\n", ok ? "wrote" : "FAILED to write",
              path.c_str());
  return ok;
}

void print_header(const std::string& figure, const Options& opt) {
  std::printf("%s", util::banner(figure).c_str());
  std::printf(
      "world scale 1:%u (populations divided by %u; counts below are\n"
      "simulated-world counts — multiply by %u for paper-scale numbers),\n"
      "seed %llu\n\n",
      opt.scale, opt.scale, opt.scale,
      static_cast<unsigned long long>(opt.seed));
}

StudyPipeline::StudyPipeline(const Options& opt, bool with_vantages,
                             bool with_darknet)
    : opt_(opt), with_vantages_(with_vantages), with_darknet_(with_darknet) {
  world_config.scale = opt.scale;
  world_config.seed = opt.seed;
  world = std::make_unique<sim::World>(world_config);
  census = std::make_unique<core::AmplifierCensus>(world->registry(),
                                                   world->pbl());
  victims = std::make_unique<core::VictimAnalysis>(world->registry(),
                                                   world->pbl());
  // Global collector covers the full horizon; the measured universe is
  // the paper's 71.5 Tbps average divided by the world scale.
  global = std::make_unique<telemetry::GlobalTrafficCollector>(
      181, 71.5e12 / static_cast<double>(opt.scale));
  labels = std::make_unique<telemetry::AttackLabelStore>();
  if (with_vantages) {
    const auto& named = world->registry().named();
    merit = std::make_unique<telemetry::FlowCollector>(
        "Merit", std::vector<net::Prefix>{named.merit_space});
    frgp = std::make_unique<telemetry::FlowCollector>(
        "FRGP", std::vector<net::Prefix>{named.frgp_space});
    csu = std::make_unique<telemetry::FlowCollector>(
        "CSU", std::vector<net::Prefix>{named.csu_space});
  }
  if (with_darknet) {
    telemetry::DarknetConfig cfg;
    cfg.telescope = world->registry().named().darknet;
    darknet = std::make_unique<telemetry::DarknetTelescope>(cfg);
  }
}

void StudyPipeline::run() {
  sim::AttackSinks sinks;
  sinks.global = global.get();
  sinks.labels = labels.get();
  if (with_vantages_) {
    sinks.vantages = {merit.get(), frgp.get(), csu.get()};
  }
  sim::AttackEngineConfig attack_cfg;
  attack_cfg.seed = opt_.seed ^ 0xa77acdULL;
  attack_cfg.impairment = impairment;
  sim::AttackEngine attacks(*world, attack_cfg, sinks);
  sim::ScanTrafficConfig scan_cfg;
  scan_cfg.seed = opt_.seed ^ 0x5ca7ULL;
  scan_cfg.impairment = impairment;
  sim::ScanTraffic scans(*world, scan_cfg);
  scan::Prober prober(*world, net::Ipv4Address(198, 51, 100, 7),
                      ntp::Implementation::kXntpd, impairment,
                      probe_policy);
  if (darknet && impairment.any()) {
    darknet->set_capture_loss(impairment.request_loss, impairment.seed);
  }

  const int horizon_weeks = opt_.quick ? 8 : 15;
  int day = 0;
  for (int week = 0; week < horizon_weeks; ++week) {
    const int sample_day = 70 + week * 7;
    for (; day <= sample_day; ++day) {
      attacks.run_day(day);
      if (with_darknet_ || with_vantages_) {
        std::vector<telemetry::FlowCollector*> vantages;
        if (with_vantages_) vantages = {merit.get(), frgp.get(), csu.get()};
        scans.run_day(day, darknet.get(), vantages);
      }
    }
    scans.seed_monitor_tables(week);
    const auto date = util::onp_sample_dates()[static_cast<std::size_t>(week)];
    census->begin_sample(week, date);
    victims->begin_sample(week, date);
    summaries.push_back(prober.run_monlist_sample(
        week, [&](const scan::AmplifierObservation& obs) {
          census->add(obs);
          victims->add(obs);
          if (extra_visitor) extra_visitor(week, obs);
        }));
    census->end_sample();
    victims->end_sample();
  }
}

RegionalRun::RegionalRun(const Options& opt, bool with_darknet) : opt_(opt) {
  sim::WorldConfig cfg;
  cfg.scale = opt.scale;
  cfg.seed = opt.seed;
  world = std::make_unique<sim::World>(cfg);
  const auto& named = world->registry().named();
  merit = std::make_unique<telemetry::FlowCollector>(
      "Merit", std::vector<net::Prefix>{named.merit_space});
  frgp = std::make_unique<telemetry::FlowCollector>(
      "FRGP", std::vector<net::Prefix>{named.frgp_space});
  csu = std::make_unique<telemetry::FlowCollector>(
      "CSU", std::vector<net::Prefix>{named.csu_space});
  global = std::make_unique<telemetry::GlobalTrafficCollector>(
      181, 71.5e12 / static_cast<double>(opt.scale));
  labels = std::make_unique<telemetry::AttackLabelStore>();
  if (with_darknet) {
    telemetry::DarknetConfig dcfg;
    dcfg.telescope = named.darknet;
    darknet = std::make_unique<telemetry::DarknetTelescope>(dcfg);
  }
}

void RegionalRun::run(int from_day, int to_day) {
  sim::AttackSinks sinks;
  sinks.global = global.get();
  sinks.labels = labels.get();
  sinks.vantages = {merit.get(), frgp.get(), csu.get()};
  sim::AttackEngineConfig attack_cfg;
  attack_cfg.seed = opt_.seed ^ 0xa77acdULL;
  sim::AttackEngine attacks(*world, attack_cfg, sinks);
  sim::ScanTrafficConfig scan_cfg;
  scan_cfg.seed = opt_.seed ^ 0x5ca7ULL;
  sim::ScanTraffic scans(*world, scan_cfg);
  for (int day = from_day; day < to_day; ++day) {
    attacks.run_day(day);
    scans.run_day(day, darknet.get(), sinks.vantages);
  }
}

void print_volume_series(const std::string& label,
                         const telemetry::VolumeSeries& series,
                         int row_stride_days) {
  std::printf("%s\n", label.c_str());
  std::printf("  shape: %s\n",
              util::log_sparkline(series.bytes).c_str());
  util::TextTable table({"date", "avg rate", "bytes"});
  const auto buckets_per_day =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   util::kSecondsPerDay /
                                   std::max<util::SimTime>(1,
                                                           series.bucket_seconds)));
  const std::size_t stride =
      buckets_per_day * static_cast<std::size_t>(std::max(1, row_stride_days));
  for (std::size_t b = 0; b < series.bytes.size(); b += stride) {
    // Aggregate one day's buckets for the row.
    double day_bytes = 0.0;
    for (std::size_t k = b; k < std::min(b + buckets_per_day,
                                         series.bytes.size());
         ++k) {
      day_bytes += series.bytes[k];
    }
    const util::SimTime t =
        series.start + static_cast<util::SimTime>(b) * series.bucket_seconds;
    const double bps = day_bytes * 8.0 / static_cast<double>(
                                             util::kSecondsPerDay);
    table.add_row({util::to_string(util::date_from_sim_time(t)),
                   util::si_count(bps) + "bps", util::bytes_str(day_bytes)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace gorilla::bench
