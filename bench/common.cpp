#include "common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/fault.h"
#include "util/mem_stats.h"

namespace gorilla::bench {

namespace {

// Engine diagnostics go to stderr on purpose: stdout is the reproducible
// figure/table artifact and must stay byte-comparable across --jobs values
// and record/replay round-trips. (bench/ sits outside the gorilla_lint
// tree, so steady_clock here needs no wall-clock lint pragma.)
using EngineClock = std::chrono::steady_clock;

double seconds_between(EngineClock::time_point from,
                       EngineClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void print_phase(const char* phase, double seconds) {
  std::fprintf(stderr, "[engine] phase %-12s %8.3fs\n", phase, seconds);
}

/// Strict positive-integer flag parse: rejects non-numeric text, trailing
/// junk, zero, and negatives with a clear message instead of silently
/// clamping (a mistyped `--jobs -4` or `--scale 0x10` should not quietly
/// run something else).
long parse_positive(const char* text, const char* flag, long max_value) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v <= 0 || v > max_value) {
    std::fprintf(stderr,
                 "invalid value for %s: '%s' (expected an integer in "
                 "[1, %ld])\n",
                 flag, text, max_value);
    std::exit(2);
  }
  return v;
}

}  // namespace

Options parse_options(int argc, char** argv, std::uint32_t default_scale) {
  Options opt;
  opt.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      opt.scale = static_cast<std::uint32_t>(
          parse_positive(value("--scale"), "--scale", 1l << 30));
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--csv") {
      opt.csv_dir = value("--csv");
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<int>(parse_positive(value("--jobs"), "--jobs",
                                                 1l << 16));
    } else if (arg == "--record") {
      opt.record = value("--record");
    } else if (arg == "--artifact-version") {
      opt.artifact_version = static_cast<int>(parse_positive(
          value("--artifact-version"), "--artifact-version", 3));
      if (opt.artifact_version < 2) {
        std::fprintf(stderr, "--artifact-version must be 2 or 3 (writers "
                             "emit GORCOLv2 or GORCOLv3; v1 is read-only)\n");
        std::exit(2);
      }
    } else if (arg == "--replay") {
      opt.replay = value("--replay");
    } else if (arg == "--checkpoint") {
      opt.checkpoint_weeks = static_cast<int>(
          parse_positive(value("--checkpoint"), "--checkpoint", 1l << 16));
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--mem-report") {
      opt.mem_report = true;
      // atexit so every bench reports after its last deallocation-free
      // moment, with no per-bench plumbing; stderr keeps stdout stable.
      std::atexit(
          [] { util::MemStats::instance().report(stderr); });
    } else if (arg == "--faults") {
      const char* spec = value("--faults");
      const auto plan = util::FaultPlan::parse(spec);
      if (!plan) {
        std::fprintf(stderr, "invalid --faults spec: '%s'\n", spec);
        std::exit(2);
      }
      util::FaultPlan::install(*plan);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // google-benchmark flags pass through untouched.
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--scale N] [--seed N] [--quick] [--jobs N]\n"
          "          [--record PATH] [--replay PATH] [--csv DIR]\n"
          "          [--artifact-version 2|3] [--checkpoint WEEKS]\n"
          "          [--resume] [--faults SPEC] [--mem-report]\n",
          argv[0]);
      std::exit(0);
    }
  }
  if (opt.resume && opt.record.empty()) {
    std::fprintf(stderr, "--resume requires --record PATH (the artifact to "
                         "resume from and keep extending)\n");
    std::exit(2);
  }
  if (opt.resume && !opt.replay.empty()) {
    std::fprintf(stderr, "--resume and --replay are mutually exclusive\n");
    std::exit(2);
  }
  return opt;
}

bool maybe_write_csv(const Options& opt, const std::string& name,
                     const util::CsvDocument& doc) {
  if (opt.csv_dir.empty()) return false;
  const std::string path = opt.csv_dir + "/" + name;
  const bool ok = doc.write_file(path);
  std::printf("%s csv artifact: %s\n", ok ? "wrote" : "FAILED to write",
              path.c_str());
  return ok;
}

void print_header(const std::string& figure, const Options& opt) {
  std::printf("%s", util::banner(figure).c_str());
  std::printf(
      "world scale 1:%u (populations divided by %u; counts below are\n"
      "simulated-world counts — multiply by %u for paper-scale numbers),\n"
      "seed %llu\n\n",
      opt.scale, opt.scale, opt.scale,
      static_cast<unsigned long long>(opt.seed));
}

StudyPipeline::StudyPipeline(const Options& opt, bool with_vantages,
                             bool with_darknet)
    : opt_(opt), with_vantages_(with_vantages), with_darknet_(with_darknet) {
  const auto t0 = EngineClock::now();
  world_config.scale = opt.scale;
  world_config.seed = opt.seed;
  world = std::make_unique<sim::World>(world_config);
  census = std::make_unique<core::AmplifierCensus>(world->registry(),
                                                   world->pbl());
  victims = std::make_unique<core::VictimAnalysis>(world->registry(),
                                                   world->pbl());
  // Global collector covers the full horizon; the measured universe is
  // the paper's 71.5 Tbps average divided by the world scale.
  global = std::make_unique<telemetry::GlobalTrafficCollector>(
      181, 71.5e12 / static_cast<double>(opt.scale));
  labels = std::make_unique<telemetry::AttackLabelStore>();
  if (with_vantages) {
    const auto& named = world->registry().named();
    merit = std::make_unique<telemetry::FlowCollector>(
        "Merit", std::vector<net::Prefix>{named.merit_space});
    frgp = std::make_unique<telemetry::FlowCollector>(
        "FRGP", std::vector<net::Prefix>{named.frgp_space});
    csu = std::make_unique<telemetry::FlowCollector>(
        "CSU", std::vector<net::Prefix>{named.csu_space});
  }
  if (with_darknet) {
    telemetry::DarknetConfig cfg;
    cfg.telescope = world->registry().named().darknet;
    darknet = std::make_unique<telemetry::DarknetTelescope>(cfg);
  }
  if (opt.jobs > 1) {
    pool_ = std::make_unique<util::ThreadPool>(opt.jobs);
    executor_ = std::make_unique<sim::ShardedExecutor>(pool_.get());
  }
  print_phase("build-world", seconds_between(t0, EngineClock::now()));
}

StudyPipeline::~StudyPipeline() {
  // Everything between run() returning and the pipeline dying is the
  // bench's own analysis/printing — the third provenance phase.
  if (ran_) print_phase("analyze", seconds_between(run_done_,
                                                   EngineClock::now()));
}

study::StudyHeader StudyPipeline::make_header() const {
  study::StudyHeader header;
  header.kind = 0;
  header.scale = opt_.scale;
  header.seed = opt_.seed;
  header.quick = opt_.quick;
  header.with_vantages = with_vantages_;
  header.with_darknet = with_darknet_;
  header.param_a = opt_.quick ? 8 : 15;  // horizon weeks
  return header;
}

void StudyPipeline::run() {
  const auto t0 = EngineClock::now();
  study::CollectorSink collectors;
  collectors.global = global.get();
  collectors.labels = labels.get();
  collectors.darknet = darknet.get();
  std::vector<telemetry::FlowCollector*> vantages;
  if (with_vantages_) {
    vantages = {merit.get(), frgp.get(), csu.get()};
    collectors.vantages = vantages;
  }
  study::AnalysisSink analyses;
  analyses.census = census.get();
  analyses.victims = victims.get();
  analyses.summaries = &summaries;
  analyses.extra = extra_visitor;

  study::EventBus bus;
  bus.subscribe(&collectors);
  bus.subscribe(&analyses);
  for (study::EventSink* sink : extra_sinks) {
    if (sink != nullptr) bus.subscribe(sink);
  }

  if (darknet && impairment.any()) {
    darknet->set_capture_loss(impairment.request_loss, impairment.seed);
  }

  if (!opt_.replay.empty()) {
    run_replayed(bus);
  } else {
    run_simulated(bus, vantages);
  }
  run_done_ = EngineClock::now();
  ran_ = true;
  print_phase(opt_.replay.empty() ? "run-study" : "replay-study",
              seconds_between(t0, run_done_));
}

int StudyPipeline::resume_prefix_weeks(study::EventBus& bus,
                                       int horizon_weeks) {
  study::Replayer replayer;
  replayer.set_decode_jobs(opt_.jobs);
  study::ReplayReport report;
  if (!replayer.load_prefix(opt_.record, report)) {
    std::fprintf(stderr,
                 "[engine] resume: no usable recording at %s; starting "
                 "fresh\n",
                 opt_.record.c_str());
    return 0;
  }
  if (!(replayer.header() == make_header())) {
    std::fprintf(stderr,
                 "recording %s was made by a different harness shape "
                 "(kind/scale/seed/horizon mismatch); refusing to resume\n",
                 opt_.record.c_str());
    std::exit(2);
  }
  const int usable = std::min(replayer.complete_weeks(), horizon_weeks);
  if (usable <= 0) {
    std::fprintf(stderr,
                 "[engine] resume: %s holds no complete week; starting "
                 "fresh\n",
                 opt_.record.c_str());
    return 0;
  }
  // The bus carries the live consumers AND the fresh Recorder, so this one
  // dispatch both rebuilds the sinks' state and re-encodes the prefix —
  // the final artifact comes out byte-identical to an uninterrupted run.
  if (!replayer.replay_prefix(bus, usable, report)) {
    std::fprintf(stderr, "recording %s failed prefix validation\n",
                 opt_.record.c_str());
    std::exit(2);
  }
  std::fprintf(stderr,
               "[engine] resume: replayed %d complete week(s) "
               "(%llu events) from %s\n",
               report.weeks_complete,
               static_cast<unsigned long long>(report.events),
               opt_.record.c_str());
  return report.weeks_complete;
}

void StudyPipeline::run_simulated(
    study::EventBus& bus,
    const std::vector<telemetry::FlowCollector*>& vantages) {
  study::Recorder recorder(make_header(), opt_.artifact_version);
  const bool recording = !opt_.record.empty();
  if (recording) bus.subscribe(&recorder);

  sim::AttackEngineConfig attack_cfg;
  attack_cfg.seed = opt_.seed ^ 0xa77acdULL;
  attack_cfg.impairment = impairment;
  sim::AttackEngine attacks(*world, attack_cfg, bus);
  sim::ScanTrafficConfig scan_cfg;
  scan_cfg.seed = opt_.seed ^ 0x5ca7ULL;
  scan_cfg.impairment = impairment;
  sim::ScanTraffic scans(*world, scan_cfg);
  scan::Prober prober(*world, net::Ipv4Address(198, 51, 100, 7),
                      ntp::Implementation::kXntpd, impairment,
                      probe_policy);
  prober.set_executor(executor_.get());

  // Attack + scan days fan out as day shards on the executor (buffered
  // events merged in day order — bit-identical for any --jobs value);
  // monitor seeding and the weekly probe sample follow on the same path
  // they always used.
  sim::ScanTraffic* day_scans =
      (with_darknet_ || with_vantages_) ? &scans : nullptr;
  const int horizon_weeks = opt_.quick ? 8 : 15;

  const int start_week =
      opt_.resume ? resume_prefix_weeks(bus, horizon_weeks) : 0;

  int day = 0;
  if (start_week > 0) {
    // Fast-forward the world through the already-replayed weeks. The
    // replay above rebuilt the CONSUMER state; the world's monitor tables
    // and the prober's remediation/window state are producer-side and must
    // be recomputed by re-running those weeks against a discard bus. The
    // discard sink elects every capability, so producers burn exactly the
    // RNG draws the original run did; scans and prober are the same
    // objects the live loop continues with, keeping their cross-week state
    // continuous. (Correctness over speed: resume re-simulates, it just
    // never re-emits.)
    study::EventBus ff_bus;
    study::ConsumeAllSink discard;
    ff_bus.subscribe(&discard);
    sim::AttackEngine ff_attacks(*world, attack_cfg, ff_bus);
    for (int week = 0; week < start_week; ++week) {
      const int sample_day = 70 + week * 7;
      ff_attacks.run_days(day, sample_day + 1, executor_.get(), day_scans,
                          darknet.get(), &vantages);
      day = sample_day + 1;
      scans.seed_monitor_tables(week, executor_.get());
      (void)prober.run_monlist_sample(week, ff_bus);
    }
  }

  for (int week = start_week; week < horizon_weeks; ++week) {
    const int sample_day = 70 + week * 7;
    attacks.run_days(day, sample_day + 1, executor_.get(), day_scans,
                     darknet.get(), &vantages);
    day = sample_day + 1;
    scans.seed_monitor_tables(week, executor_.get());
    (void)prober.run_monlist_sample(week, bus);  // AnalysisSink keeps summary
    if (recording && opt_.checkpoint_weeks > 0 && week + 1 < horizon_weeks &&
        (week + 1) % opt_.checkpoint_weeks == 0) {
      // Durable mid-run snapshot (atomic rename over the --record path).
      // Failure is a warning, not an abort: losing a checkpoint only costs
      // resume granularity, never the run.
      if (recorder.checkpoint(opt_.record)) {
        std::fprintf(stderr, "[engine] checkpoint: %d week(s) durable at %s\n",
                     week + 1, opt_.record.c_str());
      } else {
        std::fprintf(stderr,
                     "[engine] warning: checkpoint at week %d failed "
                     "(continuing)\n",
                     week);
      }
    }
  }

  if (recording) {
    const bool ok = recorder.save(opt_.record);
    std::fprintf(stderr, "[engine] %s study recording: %s\n",
                 ok ? "wrote" : "FAILED to write", opt_.record.c_str());
    if (!ok) std::exit(2);
  }
}

void StudyPipeline::run_replayed(study::EventBus& bus) {
  study::Replayer replayer;
  replayer.set_decode_jobs(opt_.jobs);
  if (!replayer.load(opt_.replay)) {
    std::fprintf(stderr, "failed to load study recording: %s\n",
                 study::Replayer::describe_load_failure(opt_.replay).c_str());
    std::exit(2);
  }
  if (!(replayer.header() == make_header())) {
    std::fprintf(stderr,
                 "study recording %s was made by a different harness shape "
                 "(kind/scale/seed/horizon mismatch); refusing to replay\n",
                 opt_.replay.c_str());
    std::exit(2);
  }
  if (!replayer.replay(bus)) {
    std::fprintf(stderr, "study recording %s is truncated or corrupt\n",
                 opt_.replay.c_str());
    std::exit(2);
  }
}

RegionalRun::RegionalRun(const Options& opt, bool with_darknet)
    : opt_(opt), with_darknet_(with_darknet) {
  const auto t0 = EngineClock::now();
  sim::WorldConfig cfg;
  cfg.scale = opt.scale;
  cfg.seed = opt.seed;
  world = std::make_unique<sim::World>(cfg);
  const auto& named = world->registry().named();
  merit = std::make_unique<telemetry::FlowCollector>(
      "Merit", std::vector<net::Prefix>{named.merit_space});
  frgp = std::make_unique<telemetry::FlowCollector>(
      "FRGP", std::vector<net::Prefix>{named.frgp_space});
  csu = std::make_unique<telemetry::FlowCollector>(
      "CSU", std::vector<net::Prefix>{named.csu_space});
  global = std::make_unique<telemetry::GlobalTrafficCollector>(
      181, 71.5e12 / static_cast<double>(opt.scale));
  labels = std::make_unique<telemetry::AttackLabelStore>();
  if (with_darknet) {
    telemetry::DarknetConfig dcfg;
    dcfg.telescope = named.darknet;
    darknet = std::make_unique<telemetry::DarknetTelescope>(dcfg);
  }
  if (opt.jobs > 1) {
    pool_ = std::make_unique<util::ThreadPool>(opt.jobs);
    executor_ = std::make_unique<sim::ShardedExecutor>(pool_.get());
  }
  print_phase("build-world", seconds_between(t0, EngineClock::now()));
}

RegionalRun::~RegionalRun() {
  if (ran_) print_phase("analyze", seconds_between(run_done_,
                                                   EngineClock::now()));
}

void RegionalRun::run(int from_day, int to_day) {
  if (opt_.resume) {
    // The regional window runs as ONE run_days() fan-out whose per-day
    // monitor-size snapshots are taken at window start; splitting the
    // window would change those snapshots and the output bytes. Refuse
    // rather than resume into a subtly different world.
    std::fprintf(stderr,
                 "--resume is not supported for regional runs (the day "
                 "window is a single shard fan-out); re-run without "
                 "--resume\n");
    std::exit(2);
  }
  const auto t0 = EngineClock::now();
  study::CollectorSink collectors;
  collectors.global = global.get();
  collectors.labels = labels.get();
  collectors.darknet = darknet.get();
  const std::vector<telemetry::FlowCollector*> vantages = {
      merit.get(), frgp.get(), csu.get()};
  collectors.vantages = vantages;
  study::EventBus bus;
  bus.subscribe(&collectors);

  study::StudyHeader header;
  header.kind = 1;
  header.scale = opt_.scale;
  header.seed = opt_.seed;
  header.with_vantages = true;
  header.with_darknet = with_darknet_;
  header.param_a = from_day;
  header.param_b = to_day;

  if (!opt_.replay.empty()) {
    study::Replayer replayer;
    replayer.set_decode_jobs(opt_.jobs);
    if (!replayer.load(opt_.replay)) {
      std::fprintf(stderr, "failed to load study recording: %s\n",
                   study::Replayer::describe_load_failure(opt_.replay).c_str());
      std::exit(2);
    }
    if (!(replayer.header() == header)) {
      std::fprintf(stderr,
                   "study recording %s was made by a different harness shape "
                   "(kind/scale/seed/window mismatch); refusing to replay\n",
                   opt_.replay.c_str());
      std::exit(2);
    }
    if (!replayer.replay(bus)) {
      std::fprintf(stderr, "study recording %s is truncated or corrupt\n",
                   opt_.replay.c_str());
      std::exit(2);
    }
  } else {
    study::Recorder recorder(header, opt_.artifact_version);
    const bool recording = !opt_.record.empty();
    if (recording) bus.subscribe(&recorder);

    sim::AttackEngineConfig attack_cfg;
    attack_cfg.seed = opt_.seed ^ 0xa77acdULL;
    sim::AttackEngine attacks(*world, attack_cfg, bus);
    sim::ScanTrafficConfig scan_cfg;
    scan_cfg.seed = opt_.seed ^ 0x5ca7ULL;
    sim::ScanTraffic scans(*world, scan_cfg);
    // The whole window is one day-shard fan-out (the §7 benches are
    // attack-dominated, so this is where --jobs N pays off).
    attacks.run_days(from_day, to_day, executor_.get(), &scans, darknet.get(),
                     &vantages);
    if (recording) {
      const bool ok = recorder.save(opt_.record);
      std::fprintf(stderr, "[engine] %s study recording: %s\n",
                   ok ? "wrote" : "FAILED to write", opt_.record.c_str());
      if (!ok) std::exit(2);
    }
  }
  run_done_ = EngineClock::now();
  ran_ = true;
  print_phase(opt_.replay.empty() ? "run-study" : "replay-study",
              seconds_between(t0, run_done_));
}

void print_volume_series(const std::string& label,
                         const telemetry::VolumeSeries& series,
                         int row_stride_days) {
  std::printf("%s\n", label.c_str());
  std::printf("  shape: %s\n",
              util::log_sparkline(series.bytes).c_str());
  util::TextTable table({"date", "avg rate", "bytes"});
  const auto buckets_per_day =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   util::kSecondsPerDay /
                                   std::max<util::SimTime>(1,
                                                           series.bucket_seconds)));
  const std::size_t stride =
      buckets_per_day * static_cast<std::size_t>(std::max(1, row_stride_days));
  for (std::size_t b = 0; b < series.bytes.size(); b += stride) {
    // Aggregate one day's buckets for the row.
    double day_bytes = 0.0;
    for (std::size_t k = b; k < std::min(b + buckets_per_day,
                                         series.bytes.size());
         ++k) {
      day_bytes += series.bytes[k];
    }
    const util::SimTime t =
        series.start + static_cast<util::SimTime>(b) * series.bucket_seconds;
    const double bps = day_bytes * 8.0 / static_cast<double>(
                                             util::kSecondsPerDay);
    table.add_row({util::to_string(util::date_from_sim_time(t)),
                   util::si_count(bps) + "bps", util::bytes_str(day_bytes)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace gorilla::bench
