// §2.2 methodology check: how much does a threshold attack-labeler miss?
//
// The paper leans on a proprietary vendor labeler and warns it "is likely
// to miss some attacks — especially small ones". We run an open EWMA +
// k-sigma detector over the Merit border's NTP rate series and score it
// against the simulator's ground-truth attack records, quantifying that
// visibility bias: recall by attack size class.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "telemetry/detector.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("§2.2: attack-labeler visibility bias", opt);

  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  sim::World world(wcfg);
  const auto& named = world.registry().named();
  telemetry::FlowCollector merit("Merit", {named.merit_space});
  sim::AttackSinks sinks;
  sinks.vantages = {&merit};
  sim::AttackEngineConfig acfg;
  acfg.seed = opt.seed ^ 0xa77acdULL;
  sim::AttackEngine attacks(world, acfg, sinks);

  // Ground truth: attacks that touched Merit (any amplifier or victim in
  // its space), by size class.
  std::vector<telemetry::TruthInterval> truth_all;
  std::vector<telemetry::TruthInterval> truth_by_size[3];
  const int from = 70, to = opt.quick ? 92 : 106;
  for (int day = from; day < to; ++day) {
    for (const auto& rec : attacks.run_day(day)) {
      bool touches = merit.is_local(rec.victim);
      if (!touches) {
        for (const auto amp : rec.amplifiers) {
          if (merit.is_local(world.servers()[amp].home_address)) {
            touches = true;
            break;
          }
        }
      }
      if (!touches) continue;
      const telemetry::TruthInterval interval{rec.start, rec.end};
      truth_all.push_back(interval);
      truth_by_size[static_cast<int>(telemetry::classify_size(rec.peak_bps))]
          .push_back(interval);
    }
  }

  // The detector sees what an operator sees: the 5-minute NTP rate series.
  const util::SimTime start = from * util::kSecondsPerDay;
  const util::SimTime end = to * util::kSecondsPerDay;
  const auto series = merit.volume_series(
      start, end, 300, [](const telemetry::FlowRecord& f) {
        return f.src_port == net::kNtpPort || f.dst_port == net::kNtpPort;
      });
  telemetry::DetectorConfig dcfg;
  dcfg.floor_bps = 5e6;
  const auto detections = telemetry::detect_attacks(series, dcfg);

  util::TextTable table({"truth class", "episodes", "recall"});
  static constexpr const char* kNames[] = {"small (<2G)", "medium (2-20G)",
                                           "large (>20G)"};
  for (int s = 0; s < 3; ++s) {
    const auto q =
        telemetry::score_detections(detections, truth_by_size[s]);
    table.add_row({kNames[s], std::to_string(q.truth_count),
                   q.truth_count ? util::fixed(q.recall(), 2) : "-"});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto overall = telemetry::score_detections(detections, truth_all);
  std::printf("detected episodes: %zu; overall recall %.2f, precision %.2f\n",
              detections.size(), overall.recall(), overall.precision());
  std::printf("\nreading: recall climbs with attack size — the labeler sees\n"
              "nearly every large attack and misses many small ones, which\n"
              "is precisely the bias the paper flags before trusting Fig 2's\n"
              "relative trends (and why our Arbor-analogue feed samples\n"
              "small attacks at the lowest rate).\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
