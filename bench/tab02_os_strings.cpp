// Table 2: operating-system strings reported to the `version` command,
// for three pools — mega amplifiers, all monlist amplifiers, all NTP —
// plus the §3.3 stratum-16 and compile-year census.
//
// Paper shape: the overall pool is cisco-led (48%) with unix (31%) and
// linux (19%); monlist amplifiers are linux-led (80%); megas are linux
// (44%) and junos (36%). 19% of servers report stratum 16; 59% of build
// dates predate 2012, 13% predate 2004.
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Table 2: system strings by pool", opt);

  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  sim::World world(wcfg);
  scan::Prober prober(world, net::Ipv4Address(198, 51, 100, 7));

  core::VersionCensus all, amplifiers, mega;
  const auto date = util::onp_version_sample_dates()[0];
  all.begin_sample(0, date);
  amplifiers.begin_sample(0, date);
  mega.begin_sample(0, date);
  const auto summary = prober.run_version_sample(
      0, [&](const scan::VersionObservation& obs) {
        all.add(obs);
        const auto& traits = world.servers()[obs.server_index];
        if (traits.ever_amplifier) amplifiers.add(obs);
        if (traits.mega) mega.add(obs);
      });
  all.end_sample(summary.responders_total);
  amplifiers.end_sample(0);
  mega.end_sample(0);

  auto rows = [&](const core::VersionCensus& census, std::size_t n) {
    auto ranking = census.os_ranking();
    if (ranking.size() > n) ranking.resize(n);
    return ranking;
  };
  const auto mega_rank = rows(mega, 8);
  const auto amp_rank = rows(amplifiers, 8);
  const auto all_rank = rows(all, 8);

  util::TextTable table({"rank", "Mega OS", "%", "Amplifier OS", "%",
                         "All-NTP OS", "%"});
  for (std::size_t i = 0; i < 8; ++i) {
    auto cell = [&](const auto& ranking, bool name) -> std::string {
      if (i >= ranking.size()) return "-";
      return name ? ranking[i].first : util::fixed(ranking[i].second, 2);
    };
    table.add_row({std::to_string(i + 1), cell(mega_rank, true),
                   cell(mega_rank, false), cell(amp_rank, true),
                   cell(amp_rank, false), cell(all_rank, true),
                   cell(all_rank, false)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper leaders: mega = linux 44 / junos 36;"
              " amplifiers = linux 80 / bsd 11; all = cisco 48 / unix 31\n\n");

  std::printf("stratum 16 (unsynchronized): %.1f%% of responders"
              "   (paper: 19%%)\n",
              all.stratum16_fraction() * 100.0);
  std::printf("compile years: %.0f%% before 2004, %.0f%% before 2010, "
              "%.0f%% before 2012\n",
              all.compiled_before_fraction(2004) * 100.0,
              all.compiled_before_fraction(2010) * 100.0,
              all.compiled_before_fraction(2012) * 100.0);
  std::printf("   (paper: 13%% / 23%% / 59%%)\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
