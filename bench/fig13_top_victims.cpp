// Figure 13: time series of NTP volume toward the top-5 victims of Merit's
// amplifiers (the stacked-area plot), late January - early February.
//
// Paper shape: several multi-day coordinated campaigns; more than 35 Merit
// amplifiers used together against single victims; a diurnal pattern in
// the traffic suggesting a manual element; the larger attacks also last
// longer.
#include <cstdio>

#include "common.h"
#include "core/local_view.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 13: top-5 victims of Merit amplifiers", opt);

  bench::RegionalRun regional(opt);
  regional.run(80, opt.quick ? 100 : 110);  // Jan 20 - Feb 19

  core::LocalForensics merit_view(*regional.merit,
                                  regional.world->registry());
  const auto victims = merit_view.victims();
  const std::size_t n = std::min<std::size_t>(5, victims.size());
  if (n == 0) {
    std::printf("no qualifying victims at this scale; lower --scale\n");
    return 0;
  }

  const util::SimTime start = 80 * util::kSecondsPerDay;
  const util::SimTime end =
      (opt.quick ? 100 : 110) * util::kSecondsPerDay;
  util::TextTable table({"victim", "GB", "amplifiers", "dur (h)",
                         "volume (6h buckets)"});
  for (std::size_t i = 0; i < n; ++i) {
    const auto series = merit_view.victim_volume(
        victims[i].address, start, end, 6 * util::kSecondsPerHour);
    table.add_row({"Merit-" + std::string(1, static_cast<char>('A' + i)),
                   util::fixed(static_cast<double>(victims[i].bytes) / 1e9, 1),
                   std::to_string(victims[i].amplifiers),
                   util::fixed(victims[i].duration_hours, 0),
                   util::log_sparkline(series.bytes)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::size_t coordinated = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (victims[i].amplifiers >= 4) ++coordinated;
  }
  std::printf("top victims hit by coordinated amplifier sets (>=4 "
              "amplifiers): %zu of %zu\n",
              coordinated, n);
  std::printf("   (paper: all of the top victims; up to 42 amplifiers "
              "against one target)\n");
  // Larger attacks last longer (top half of Table 6).
  if (n >= 2) {
    std::printf("largest victim also among the longest: %s\n",
                victims[0].duration_hours >=
                        victims[n - 1].duration_hours
                    ? "yes (as in the paper)"
                    : "mixed");
  }
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
