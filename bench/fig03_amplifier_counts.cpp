// Figure 3: count of NTP monlist amplifiers over the fifteen weekly ONP
// samples, aggregated at IP, /24, routed-block, and AS level, plus the
// Merit and CSU/FRGP regional subsets. Includes the §3.1 churn findings.
//
// Paper shape: IPs fall 1.4M -> ~110K (92%), flattening after mid-March;
// coarser aggregates fall more slowly (/24 72%, blocks 59%, ASes 55%).
// Churn: 2.17M unique IPs total, first sample sees ~60%, ~half seen once.
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 3: NTP monlist amplifier population", opt);

  bench::StudyPipeline pipeline(opt);
  // Count regional-subset responders per week on the side.
  std::vector<std::uint64_t> merit_counts(15, 0), frgp_counts(15, 0);
  const auto& named = pipeline.world->registry().named();
  pipeline.extra_visitor = [&](int week,
                               const scan::AmplifierObservation& obs) {
    if (named.merit_space.contains(obs.address)) {
      ++merit_counts[static_cast<std::size_t>(week)];
    } else if (named.frgp_space.contains(obs.address)) {
      ++frgp_counts[static_cast<std::size_t>(week)];
    }
  };
  pipeline.run();

  util::TextTable table({"sample", "IPs", "/24s", "routed", "ASes", "Merit",
                         "FRGP"});
  util::CsvDocument csv(
      {"date", "ips", "slash24s", "routed_blocks", "asns", "merit", "frgp"});
  std::vector<double> ip_series;
  const auto& rows = pipeline.census->rows();
  for (const auto& row : rows) {
    ip_series.push_back(static_cast<double>(row.ips));
    const auto merit_n =
        std::to_string(merit_counts[static_cast<std::size_t>(row.week)]);
    const auto frgp_n =
        std::to_string(frgp_counts[static_cast<std::size_t>(row.week)]);
    table.add_row({util::to_short_string(row.date),
                   std::to_string(row.ips), std::to_string(row.slash24s),
                   std::to_string(row.routed_blocks),
                   std::to_string(row.asns), merit_n, frgp_n});
    csv.add_row({util::to_string(row.date), std::to_string(row.ips),
                 std::to_string(row.slash24s),
                 std::to_string(row.routed_blocks), std::to_string(row.asns),
                 merit_n, frgp_n});
  }
  bench::maybe_write_csv(opt, "fig03_amplifier_counts.csv", csv);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("IP count (log scale): %s\n\n",
              util::log_sparkline(ip_series).c_str());

  auto pct = [](std::uint64_t first, std::uint64_t last) {
    return first ? 100.0 * (1.0 - static_cast<double>(last) /
                                      static_cast<double>(first))
                 : 0.0;
  };
  std::printf("reduction first->last sample (paper in parens):\n");
  std::printf("  IPs:           %5.1f%%  (92%%)\n",
              pct(rows.front().ips, rows.back().ips));
  std::printf("  /24 subnets:   %5.1f%%  (72%%)\n",
              pct(rows.front().slash24s, rows.back().slash24s));
  std::printf("  routed blocks: %5.1f%%  (59%%)\n",
              pct(rows.front().routed_blocks, rows.back().routed_blocks));
  std::printf("  origin ASes:   %5.1f%%  (55%%)\n\n",
              pct(rows.front().asns, rows.back().asns));

  std::printf("churn (§3.1):\n");
  std::printf("  unique amplifier IPs over all samples: %llu  (paper: 2.17M/scale = %llu)\n",
              static_cast<unsigned long long>(pipeline.census->unique_ips()),
              static_cast<unsigned long long>(2166097 / opt.scale));
  std::printf("  fraction seen in first sample: %.2f  (paper: ~0.60)\n",
              pipeline.census->first_sample_fraction());
  std::printf("  fraction seen exactly once:    %.2f  (paper: ~0.5)\n",
              pipeline.census->seen_once_fraction());
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
