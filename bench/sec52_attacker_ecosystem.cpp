// §5.2: the attacker ecosystem — booters, botmasters, and their clues.
//
// The paper's §5.2 is qualitative: attacks are launched through a layered
// market (booter services hired by whoever wants the damage), scanning is
// centralized on Linux hosts while spoofed triggers come from Windows
// botnets, and the victim mix (game ports, end hosts) points at gamer
// feuds and paid take-downs. This bench surfaces the same clues from the
// simulated ecosystem's ground truth and from the traffic.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common.h"
#include "core/local_view.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("§5.2: the attacker ecosystem", opt);

  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  sim::World world(wcfg);
  const auto& named = world.registry().named();
  telemetry::FlowCollector merit("Merit", {named.merit_space});
  sim::AttackSinks sinks;
  sinks.vantages = {&merit};
  sim::AttackEngineConfig acfg;
  acfg.seed = opt.seed ^ 0xa77acdULL;
  sim::AttackEngine attacks(world, acfg, sinks);
  sim::ScanTrafficConfig scfg;
  scfg.seed = opt.seed ^ 0x5ca7ULL;
  sim::ScanTraffic scans(world, scfg);

  std::uint64_t game_port_attacks = 0, end_host_victims = 0, total = 0;
  const int from = 70, to = opt.quick ? 95 : 110;
  for (int day = from; day < to; ++day) {
    for (const auto& rec : attacks.run_day(day)) {
      ++total;
      if (rec.victim_end_host) ++end_host_victims;
      switch (rec.victim_port) {
        case 3074: case 53: case 25565: case 5223: case 27015:
        case 43594: case 9987: case 7777: case 2052: case 88:
          ++game_port_attacks;
          break;
        default:
          break;
      }
    }
    scans.run_day(day, nullptr, {&merit});
  }

  // Booter market concentration.
  const auto& per_booter = attacks.attacks_per_booter();
  std::vector<std::uint64_t> shares(per_booter.begin(), per_booter.end());
  std::sort(shares.begin(), shares.end(), std::greater<>());
  const double all = static_cast<double>(
      std::accumulate(shares.begin(), shares.end(), std::uint64_t{0}));
  double top5 = 0;
  for (std::size_t i = 0; i < 5 && i < shares.size(); ++i) {
    top5 += static_cast<double>(shares[i]);
  }
  std::printf("booter market: %zu services launched %s attacks; the top 5\n"
              "services account for %.0f%% — a concentrated gray market, as\n"
              "the booter-advertisement forums of 2014 suggest [19].\n\n",
              per_booter.size(), util::si_count(all).c_str(),
              all > 0 ? 100.0 * top5 / all : 0.0);

  std::size_t priming = 0;
  for (const auto& b : attacks.booters()) {
    if (b.primes_amplifiers) ++priming;
  }
  std::printf("services running booter-grade (priming) tooling: %zu of %zu\n",
              priming, attacks.booters().size());
  std::printf("attacks on explicit game ports: %.0f%%; victims that are end\n"
              "hosts: %.0f%% — the gamer-feud motive (§4.3.2, [18,19,31])\n\n",
              total ? 100.0 * static_cast<double>(game_port_attacks) /
                          static_cast<double>(total)
                    : 0.0,
              total ? 100.0 * static_cast<double>(end_host_victims) /
                          static_cast<double>(total)
                    : 0.0);

  // The TTL clue, recovered from traffic at the Merit vantage.
  core::LocalForensics view(merit, world.registry());
  const auto ttl = view.ttl_profile();
  if (ttl.scanner_mode_ttl && ttl.attack_mode_ttl) {
    std::printf("division of labor (TTL modes at the Merit border):\n");
    std::printf("  scanning:        TTL %d -> Linux machines, centralized "
                "list-building\n",
                static_cast<int>(*ttl.scanner_mode_ttl));
    std::printf("  spoofed triggers: TTL %d -> Windows bots, distributed "
                "attack launch\n",
                static_cast<int>(*ttl.attack_mode_ttl));
    std::printf("(paper: mode TTL 54 vs 109 at CSU, §7.2)\n");
  }
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
