// Figure 2: fraction of monthly global DDoS attacks that are NTP-based,
// per size bin (<2, 2-20, >20 Gbps) and overall.
//
// Paper shape: November 2013 is essentially NTP-free (0.07% of attacks);
// by February the *majority* of Medium (.70) and Large (.63) attacks are
// NTP; April declines below February levels as mitigation bites. Small
// attacks never exceed ~.13; the all-attacks line peaks around .22.
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header(
      "Figure 2: monthly fraction of DDoS attacks that are NTP-based", opt);

  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  sim::World world(wcfg);

  telemetry::AttackLabelStore labels;
  sim::AttackSinks sinks;
  sinks.labels = &labels;
  sim::AttackEngineConfig acfg;
  acfg.seed = opt.seed ^ 0xa77acdULL;
  sim::AttackEngine attacks(world, acfg, sinks);
  const int horizon = opt.quick ? 120 : 181;
  for (int day = 0; day < horizon; ++day) attacks.run_day(day);

  util::TextTable table({"month", "attacks", "small", "medium", "large",
                         "all"});
  const auto rollup = labels.monthly_rollup();
  for (const auto& row : rollup) {
    char month[16];
    std::snprintf(month, sizeof month, "%04d-%02d", row.year, row.month);
    table.add_row(
        {month, util::si_count(static_cast<double>(row.total)),
         util::fixed(row.ntp_fraction(telemetry::SizeClass::kSmall), 2),
         util::fixed(row.ntp_fraction(telemetry::SizeClass::kMedium), 2),
         util::fixed(row.ntp_fraction(telemetry::SizeClass::kLarge), 2),
         util::fixed(row.ntp_fraction_all(), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("paper anchors: 2013-11 all=.00; 2014-02 medium=.70 large=.63;\n"
              "               2014-04 medium=.44 large=.41 all=.18\n\n");
  // Headline checks.
  const auto* feb = &rollup.front();
  const auto* apr = &rollup.front();
  for (const auto& row : rollup) {
    if (row.year == 2014 && row.month == 2) feb = &row;
    if (row.year == 2014 && row.month == 4) apr = &row;
  }
  std::printf("February medium+large NTP majority: %s\n",
              feb->ntp_fraction(telemetry::SizeClass::kMedium) > 0.5 &&
                      feb->ntp_fraction(telemetry::SizeClass::kLarge) > 0.5
                  ? "yes (as in the paper)"
                  : "NO");
  std::printf("April decline vs February: %s\n",
              apr->ntp_fraction_all() < feb->ntp_fraction_all()
                  ? "yes (as in the paper)"
                  : "NO");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
