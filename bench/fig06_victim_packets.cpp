// Figure 6: total packets received per victim — mean, median, and 95th
// percentile per weekly sample — plus the §4.3.3 aggregate volume estimate.
//
// Paper shape: median attacks are small (300-1000 packets); the mean is
// 1-10M, dragged up by a few heavily-attacked victims; the 95th percentile
// drops two orders of magnitude after mid-February (400K-6M -> 110-200K),
// the remediation signature. Aggregate: 2.92T packets, ~1.2 PB at the
// 420-byte median response size, under-sampled by ~3.8x.
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 6: packets received per victim", opt);

  bench::StudyPipeline pipeline(opt);
  pipeline.run();

  util::TextTable table({"sample", "victims", "mean", "median", "95th pct"});
  std::vector<double> p95_series;
  for (const auto& row : pipeline.victims->rows()) {
    p95_series.push_back(row.packets_p95);
    table.add_row({util::to_short_string(row.date), std::to_string(row.ips),
                   util::si_count(row.packets_mean),
                   util::si_count(row.packets_median),
                   util::si_count(row.packets_p95)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("95th percentile (log scale): %s\n\n",
              util::log_sparkline(p95_series).c_str());

  const auto& rows = pipeline.victims->rows();
  double early_p95 = 0, late_p95 = 0;
  for (int i = 0; i < 4; ++i) {
    early_p95 += rows[static_cast<std::size_t>(i)].packets_p95;
    late_p95 += rows[rows.size() - 1 - static_cast<std::size_t>(i)].packets_p95;
  }
  std::printf("95th percentile early->late: %s -> %s (%.0fx drop; paper: "
              "~1-2 orders of magnitude)\n",
              util::si_count(early_p95 / 4).c_str(),
              util::si_count(late_p95 / 4).c_str(),
              late_p95 > 0 ? early_p95 / late_p95 : 0.0);

  const double total_packets =
      static_cast<double>(pipeline.victims->total_packets());
  std::printf("\naggregate victim packets witnessed: %s"
              "   (paper: 2.92T/scale = %s)\n",
              util::si_count(total_packets).c_str(),
              util::si_count(2.92e12 / opt.scale).c_str());
  std::printf("at the 420-byte median response: %s"
              "   (paper: ~1.2 PB/scale = %s)\n",
              util::bytes_str(total_packets * 420.0).c_str(),
              util::bytes_str(1.2e15 / opt.scale).c_str());
  std::printf("(both are lower bounds: weekly sampling sees a ~44 h window "
              "-> ~3.8x undercount, §4.2)\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
