// Figure 4a: average on-wire bytes returned per query, by amplifier rank,
// for monlist and version responders — plus the §3.4 mega-amplifier roster.
//
// Paper shape: both curves span many decades; 99% of monlist amplifiers
// return under 50K, but a small head returns megabytes-to-gigabytes; the
// largest single-sample reply was ~136 GB. Version responses are tighter
// (median ~2.6K) with rare giant outliers.
#include <algorithm>
#include <cstdio>
#include <map>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header(
      "Figure 4a: bytes returned per query, by amplifier rank", opt);

  bench::StudyPipeline pipeline(opt);
  pipeline.run();

  // Version pass: aggregate per-IP bytes over the nine version samples.
  scan::Prober vprober(*pipeline.world, net::Ipv4Address(198, 51, 100, 7));
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint32_t>> vbytes;
  const int vweeks = opt.quick ? 3 : 9;
  for (int vweek = 0; vweek < vweeks; ++vweek) {
    vprober.run_version_sample(vweek, [&](const scan::VersionObservation& o) {
      auto& e = vbytes[o.address.value()];
      e.first += o.response_wire_bytes;
      ++e.second;
    });
  }
  std::vector<double> version_curve;
  version_curve.reserve(vbytes.size());
  for (const auto& [_, e] : vbytes) {
    version_curve.push_back(static_cast<double>(e.first) / e.second);
  }
  std::sort(version_curve.begin(), version_curve.end(), std::greater<>());

  const auto monlist_curve = pipeline.census->bytes_rank_curve();

  util::TextTable table({"rank", "monlist avg bytes", "version avg bytes"});
  for (std::size_t rank = 1;
       rank <= std::max(monlist_curve.size(), version_curve.size());
       rank *= 4) {
    auto cell = [&](const std::vector<double>& curve) {
      return rank <= curve.size() ? util::si_count(curve[rank - 1])
                                  : std::string("-");
    };
    table.add_row({std::to_string(rank), cell(monlist_curve),
                   cell(version_curve)});
  }
  std::printf("%s\n", table.to_string().c_str());

  auto q = [](const std::vector<double>& desc, double quant) {
    if (desc.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        (1.0 - quant) * static_cast<double>(desc.size() - 1));
    return desc[idx];
  };
  std::printf("monlist: median %s, 95th pct %s, max %s"
              "   (paper: 942 / ~90K / up to 136 GB)\n",
              util::si_count(q(monlist_curve, 0.5)).c_str(),
              util::si_count(q(monlist_curve, 0.95)).c_str(),
              util::bytes_str(monlist_curve.empty() ? 0 : monlist_curve[0])
                  .c_str());
  std::printf("version: median %s, 95th pct %s"
              "   (paper: 2578 / ~4K)\n\n",
              util::si_count(q(version_curve, 0.5)).c_str(),
              util::si_count(q(version_curve, 0.95)).c_str());

  // §3.4 mega roster.
  const auto roster = pipeline.census->mega_roster();
  std::printf("mega amplifiers (>100KB in any sample): %zu"
              "   (paper: ~10K/scale = %llu)\n",
              roster.size(),
              static_cast<unsigned long long>(10000 / opt.scale));
  std::size_t over_1gb = 0;
  for (const auto& [_, bytes] : roster) {
    if (bytes > 1'000'000'000ULL) ++over_1gb;
  }
  std::printf("megas over 1 GB in a single sample: %zu   (paper: 6)\n",
              over_1gb);
  util::TextTable mega_table({"rank", "amplifier", "largest single reply"});
  for (std::size_t i = 0; i < roster.size() && i < 8; ++i) {
    mega_table.add_row({std::to_string(i + 1),
                        net::to_string(roster[i].first),
                        util::bytes_str(static_cast<double>(
                            roster[i].second))});
  }
  std::printf("%s", mega_table.to_string().c_str());
  std::printf("\n(the top mega's ~100+ GB single reply reproduces the "
              "paper's 136 GB box)\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
