// Figure 9: unique darknet scanner IPs per day overlaid with Merit's
// operational NTP egress volume (UDP sport=123).
//
// Paper shape: large-scale NTP scanning switches on in mid-December 2013;
// the rise in scanning *precedes* the rise in actual NTP attack traffic by
// roughly a week — the darknet-as-early-warning finding.
#include <algorithm>
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 9: darknet scanners vs Merit NTP egress", opt);

  bench::RegionalRun regional(opt, /*with_darknet=*/true);
  regional.run(20, opt.quick ? 80 : 95);  // late Nov 2013 - early Feb 2014

  const util::SimTime start = 20 * util::kSecondsPerDay;
  const util::SimTime end =
      (opt.quick ? 80 : 95) * util::kSecondsPerDay;
  const auto egress = regional.merit->volume_series(
      start, end, util::kSecondsPerDay, telemetry::is_ntp_source);
  const auto scanners = regional.darknet->unique_scanners_per_day();

  util::TextTable table({"date", "unique scanners", "Merit NTP egress"});
  std::vector<double> scanner_series, egress_series;
  int first_scan_surge = -1, first_egress_surge = -1;
  const double scan_baseline = 3.0;
  double egress_baseline = 0.0;
  for (int day = 20; day < (opt.quick ? 80 : 95); ++day) {
    const auto it = scanners.find(day);
    const double n_scanners =
        it == scanners.end() ? 0.0 : static_cast<double>(it->second);
    const double egress_bytes =
        egress.bytes[static_cast<std::size_t>(day - 20)];
    scanner_series.push_back(n_scanners);
    egress_series.push_back(egress_bytes);
    if (day < 40) egress_baseline = std::max(egress_baseline, egress_bytes);
    if (first_scan_surge < 0 && n_scanners > scan_baseline * 4) {
      first_scan_surge = day;
    }
    // Absolute floor: a lone early reflection blip on a near-zero baseline
    // is not "the attacks arriving".
    if (first_egress_surge < 0 && day >= 40 &&
        egress_bytes > std::max(10e9, egress_baseline * 10)) {
      first_egress_surge = day;
    }
    if (day % 5 == 0) {
      table.add_row({util::to_string(util::date_from_sim_time(
                         static_cast<util::SimTime>(day) *
                         util::kSecondsPerDay)),
                     util::fixed(n_scanners, 0),
                     util::bytes_str(egress_bytes) + "/day"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("scanners: %s\n", util::sparkline(scanner_series).c_str());
  std::printf("egress:   %s\n\n", util::log_sparkline(egress_series).c_str());

  if (first_scan_surge >= 0 && first_egress_surge >= 0) {
    std::printf("scanning surge begins: %s\n",
                util::to_string(util::date_from_sim_time(
                                    static_cast<util::SimTime>(
                                        first_scan_surge) *
                                    util::kSecondsPerDay))
                    .c_str());
    std::printf("attack egress surge:   %s\n",
                util::to_string(util::date_from_sim_time(
                                    static_cast<util::SimTime>(
                                        first_egress_surge) *
                                    util::kSecondsPerDay))
                    .c_str());
    std::printf("lead time: %d days   (paper: scanning precedes attacks by "
                "~1 week)\n",
                first_egress_surge - first_scan_surge);
  } else {
    std::printf("surge detection incomplete at this scale; raise --scale "
                "fidelity (lower N) and rerun\n");
  }
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
