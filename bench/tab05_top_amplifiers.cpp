// Table 5: the five worst amplifiers at Merit and at CSU — BAF (UDP
// payload ratio), unique victims contacted, and gigabytes sent.
//
// Paper shape: Merit's top amplifiers ran BAFs near 1000-1300 (primed
// tables answered with ~44 KB for 48-byte queries) and individually hit
// 1600-3000+ victims, sending up to ~5.8 TB each; CSU's nine amplifiers
// show BAFs of ~465-805 and tens-to-hundreds of victims.
#include <cstdio>

#include "common.h"
#include "core/local_view.h"

namespace gorilla {
namespace {

void print_site(const char* site, const core::LocalForensics& view,
                std::size_t n) {
  const auto amps = view.amplifiers();
  std::printf("-- top amplifiers at %s (%zu qualify) --\n", site,
              amps.size());
  util::TextTable table({"Amplifier", "BAF", "Unique victims", "GB sent"});
  for (std::size_t i = 0; i < amps.size() && i < n; ++i) {
    table.add_row({std::string(site) + "-" +
                       std::string(1, static_cast<char>('A' + i)),
                   util::fixed(amps[i].baf, 0),
                   std::to_string(amps[i].unique_victims),
                   util::fixed(static_cast<double>(amps[i].bytes_sent) / 1e9,
                               1)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

int run(const bench::Options& opt) {
  bench::print_header("Table 5: top-5 amplifiers at Merit and CSU", opt);

  bench::RegionalRun regional(opt);
  // Merit's forensic window: 12 days from Jan 25; CSU/FRGP: 19 days from
  // Jan 18. We run the union and analyze per-site.
  regional.run(78, opt.quick ? 92 : 98);

  core::LocalForensics merit_view(*regional.merit,
                                  regional.world->registry());
  core::LocalForensics csu_view(*regional.csu, regional.world->registry());

  print_site("Merit", merit_view, 5);
  print_site("CSU", csu_view, 5);

  std::printf("paper anchors: Merit-A BAF 1297 / 1966 victims / 375 GB;\n"
              "               Merit-C 1004 / 3072 / 5808 GB;"
              " CSU-F 805 / 38 / 162 GB\n");
  std::printf("(regional amplifier *counts* are absolute — 50 Merit, 9 CSU "
              "— so these\n league tables are directly comparable across "
              "world scales)\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
