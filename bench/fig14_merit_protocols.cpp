// Figure 14: all traffic at Merit by protocol (ntp, dns, http, https,
// other) across the attack window — NTP's steep rise against a stable mix —
// plus the §7.1 95th-percentile transit-billing impact.
//
// Paper shape: NTP jumps from negligible to a visible band; the attacks
// added over 2% extra transit traffic at Merit, which is billable under
// the 95th-percentile model Merit uses with its upstream.
#include <cstdio>

#include "common.h"
#include "telemetry/billing.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 14: Merit traffic by protocol + billing", opt);

  bench::RegionalRun regional(opt);
  const int from = 80, to = opt.quick ? 96 : 106;
  regional.run(from, to);

  const util::SimTime start = from * util::kSecondsPerDay;
  const util::SimTime end = to * util::kSecondsPerDay;

  // NTP from the measured flows; the web/dns/other mix is Merit's normal
  // load, modeled as a stable daily pattern around 20 Gbps aggregate.
  const auto ntp = regional.merit->volume_series(
      start, end, util::kSecondsPerDay,
      [](const telemetry::FlowRecord& f) {
        return f.src_port == net::kNtpPort || f.dst_port == net::kNtpPort;
      });
  util::Rng mix_rng(opt.seed ^ 0x1417ULL);
  util::TextTable table({"date", "ntp", "dns", "http", "https", "other"});
  const double day_bytes_20g = 20e9 / 8.0 * util::kSecondsPerDay;
  std::vector<double> ntp_series;
  for (std::size_t d = 0; d < ntp.bytes.size(); ++d) {
    const double wob = mix_rng.uniform_real(0.9, 1.1);
    ntp_series.push_back(ntp.bytes[d]);
    table.add_row(
        {util::to_string(util::date_from_sim_time(
             start + static_cast<util::SimTime>(d) * util::kSecondsPerDay)),
         util::bytes_str(ntp.bytes[d]),
         util::bytes_str(day_bytes_20g * 0.004 * wob),
         util::bytes_str(day_bytes_20g * 0.30 * wob),
         util::bytes_str(day_bytes_20g * 0.25 * wob),
         util::bytes_str(day_bytes_20g * 0.44 * wob)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("ntp (log scale): %s\n\n",
              util::log_sparkline(ntp_series).c_str());

  // Billing: 5-minute buckets; base = stable 20 Gbps with diurnal wiggle,
  // overlay = the measured NTP attack traffic.
  const util::SimTime bucket = 300;
  auto base = regional.merit->volume_series(
      start, end, bucket, [](const telemetry::FlowRecord&) { return false; });
  util::Rng diurnal(opt.seed ^ 0xb111ULL);
  for (std::size_t b = 0; b < base.bytes.size(); ++b) {
    const double hour =
        static_cast<double>((b * bucket / 3600) % 24);
    const double shape = 0.8 + 0.3 * std::sin((hour - 15.0) / 24.0 * 6.283);
    base.bytes[b] = 20e9 / 8.0 * bucket * shape *
                    diurnal.uniform_real(0.97, 1.03);
  }
  const auto overlay = regional.merit->volume_series(
      start, end, bucket, [](const telemetry::FlowRecord& f) {
        return f.src_port == net::kNtpPort || f.dst_port == net::kNtpPort;
      });
  const double increase = telemetry::billing_increase(base, overlay);
  const auto billed = telemetry::percentile_billing(base);
  std::printf("95th-percentile billed rate (base): %sbps\n",
              util::si_count(billed.billed_bps).c_str());
  std::printf("billing increase from NTP attack overlay: %.1f%%"
              "   (paper: >2%% additional traffic at Merit)\n",
              increase * 100.0);
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
