// Figure 7: time series of derived attack counts per hour from the monlist
// table data, with the daily average overlay.
//
// Paper shape: attack starts derived from count x interarrival reach back
// before the first sample; the daily average peaks on February 12th — the
// day of the CloudFlare/OVH 400 Gbps attack — and the rise/decline tracks
// the global NTP traffic curve (Figure 1). Mean 514/hr, median 280/hr.
#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>

#include "common.h"
#include "core/episodes.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 7: derived attacks per hour", opt);

  bench::StudyPipeline pipeline(opt);
  // Collect the raw per-amplifier witnesses of the peak sample (week 5,
  // 2014-02-14) for the finer-grained §4.3.4 episode reconstruction.
  std::vector<core::WitnessedAttack> peak_witnesses;
  pipeline.extra_visitor = [&](int week,
                               const scan::AmplifierObservation& obs) {
    if (week != 5) return;
    for (const auto& entry : obs.table) {
      if (auto w = core::derive_attack(entry, obs.probe_time, obs.address)) {
        peak_witnesses.push_back(*w);
      }
    }
  };
  pipeline.run();

  const auto& per_hour = pipeline.victims->attacks_per_hour();
  std::map<std::int64_t, double> per_day;
  std::vector<double> hourly;
  for (const auto& [hour, count] : per_hour) {
    per_day[hour / 24] += static_cast<double>(count);
    hourly.push_back(static_cast<double>(count));
  }

  util::TextTable table({"date", "attacks/day", "avg/hour"});
  std::vector<double> day_series;
  std::int64_t peak_day = 0;
  double peak = 0.0;
  for (const auto& [day, count] : per_day) {
    day_series.push_back(count);
    if (count > peak) {
      peak = count;
      peak_day = day;
    }
    if (day % 7 == 0) {
      table.add_row({util::to_string(util::date_from_sim_time(
                         day * util::kSecondsPerDay)),
                     util::si_count(count), util::fixed(count / 24.0, 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("daily attacks (log scale): %s\n\n",
              util::log_sparkline(day_series).c_str());

  std::sort(hourly.begin(), hourly.end());
  const double mean =
      std::accumulate(hourly.begin(), hourly.end(), 0.0) /
      static_cast<double>(std::max<std::size_t>(1, hourly.size()));
  const double median = hourly.empty() ? 0.0 : hourly[hourly.size() / 2];
  std::printf("mean %.0f/hr, median %.0f/hr"
              "   (paper full-scale: 514 / 280; divide by ~scale)\n",
              mean, median);
  std::printf("peak day: %s   (paper: 2014-02-12, the OVH/CloudFlare "
              "attack window)\n",
              util::to_string(util::date_from_sim_time(
                                  peak_day * util::kSecondsPerDay))
                  .c_str());
  std::printf("attacks derived before the first sample (2014-01-10): %s\n",
              per_day.begin()->first < 70 ? "yes (tables retain history)"
                                          : "no");

  // §4.3.4's alternative counting: merge the peak sample's witnesses into
  // campaign episodes instead of one-attack-per-victim-per-sample.
  const std::size_t victims_in_sample =
      pipeline.victims->rows()[5].ips;
  const auto episodes = core::merge_episodes(std::move(peak_witnesses));
  const auto stats = core::summarize_episodes(episodes);
  std::printf("\nepisode reconstruction for the 2014-02-14 sample:\n");
  std::printf("  one-per-victim count: %zu; merged episodes: %zu "
              "(campaigns can recur within a sample)\n",
              victims_in_sample, stats.episodes);
  std::printf("  episode duration median %s s, p95 %s s — monlist's\n"
              "  integer-second interarrival field truncates sub-second\n"
              "  trigger streams to zero, so derived durations are a floor\n"
              "  (the paper's count x interarrival arithmetic shares this)\n",
              util::compact(stats.median_duration_s).c_str(),
              util::compact(stats.p95_duration_s).c_str());
  std::printf("  amplifiers per episode: median %.0f, max %.0f"
              "   (paper: coordinated sets of 35+ at one ISP)\n",
              stats.median_amplifiers, stats.max_amplifiers);
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
