// Ablation: are the paper's headline numbers robust to a lossy data plane?
//
// The ONP scans ran over the real Internet — probes vanished, monlist dumps
// arrived with missing segments, and later ntpd builds rate-limited mode 7.
// The §3 conclusions (a ~1.6M-amplifier pool collapsing ~92% over fifteen
// weeks, monlist BAFs in the hundreds) implicitly assume that measurement
// loss does not distort those numbers. This bench sweeps the impairment
// layer's loss rate over full study pipelines — identical worlds, identical
// seeds, only the network differs — and reports how the headline figures
// move. The zero-loss row is bit-for-bit the seed pipeline; each lossy row
// is itself deterministic, so any cell can be replayed exactly.
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

struct Outcome {
  std::uint64_t pool_first = 0;
  std::uint64_t pool_last = 0;
  double reduction_pct = 0.0;
  double baf_median = 0.0;
  std::uint64_t probes_lost = 0;
  std::uint64_t retries = 0;
  std::uint64_t partial_tables = 0;
  std::uint64_t rate_limited = 0;
};

Outcome run_study(const bench::Options& opt, double loss) {
  bench::StudyPipeline pipeline(opt);
  pipeline.impairment.seed = opt.seed ^ 0x1097a11ULL;
  pipeline.impairment.request_loss = loss;
  pipeline.impairment.transient_silence_rate = loss / 2.0;
  pipeline.impairment.response_packet_loss = loss;
  pipeline.impairment.response_truncate_rate = loss / 4.0;
  if (loss > 0.0) {
    // A slice of the pool deploys interim rate limiting, as Merit did (§7.1).
    pipeline.impairment.rate_limiter_fraction = 0.02;
    pipeline.impairment.rate_limit_per_window = 4;
  }
  pipeline.run();

  Outcome out;
  const auto& rows = pipeline.census->rows();
  out.pool_first = rows.front().ips;
  out.pool_last = rows.back().ips;
  out.reduction_pct =
      out.pool_first
          ? 100.0 * (1.0 - static_cast<double>(out.pool_last) /
                               static_cast<double>(out.pool_first))
          : 0.0;
  out.baf_median = rows.front().baf.median;
  for (const auto& row : rows) out.partial_tables += row.partial_tables;
  for (const auto& s : pipeline.summaries) {
    out.probes_lost += s.probes_lost;
    out.retries += s.retries;
    out.rate_limited += s.rate_limited;
  }
  return out;
}

int run(const bench::Options& opt) {
  bench::print_header(
      "Ablation: figure robustness under network impairment", opt);

  const double losses[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  util::TextTable table({"loss rate", "pool first", "pool last",
                         "reduction", "BAF med (w0)", "lost", "retries",
                         "partial", "rate-ltd"});
  Outcome clean{};
  for (const double loss : losses) {
    const auto o = run_study(opt, loss);
    if (loss == 0.0) clean = o;
    char loss_label[16];
    std::snprintf(loss_label, sizeof loss_label, "%.0f%%", loss * 100.0);
    char reduction[16];
    std::snprintf(reduction, sizeof reduction, "%.1f%%", o.reduction_pct);
    char baf[24];
    std::snprintf(baf, sizeof baf, "%.0fx", o.baf_median);
    table.add_row({loss_label, std::to_string(o.pool_first),
                   std::to_string(o.pool_last), reduction, baf,
                   std::to_string(o.probes_lost), std::to_string(o.retries),
                   std::to_string(o.partial_tables),
                   std::to_string(o.rate_limited)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "reading: the 0%% row is the pristine seed pipeline (new counters all\n"
      "zero). With retries riding out transient loss, the measured pool and\n"
      "its ~%.0f%% collapse stay nearly flat through 10%% loss; the BAF\n"
      "median drifts down only as packet loss thins the biggest dumps\n"
      "(partial tables). rate-ltd stays zero: the weekly one-probe-per-\n"
      "target cadence never exhausts a per-window budget — limiters only\n"
      "bite under targeted re-probing (see the prober tests). The paper's\n"
      "conclusions do not hinge on a clean measurement path — which is\n"
      "good, because it did not have one.\n",
      clean.reduction_pct);
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 80));
}
