// Figure 4b: boxplots of the on-wire bandwidth amplification factor (BAF)
// of monlist amplifiers, one per weekly sample.
//
// Paper shape: the median holds steady near 4 (4.31 over the last five
// samples); the third quartile is ~15; maxima reach ~1M (and ~1B in the
// late-January samples thanks to the loop-faulted megas).
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 4b: monlist on-wire BAF per sample", opt);

  bench::StudyPipeline pipeline(opt);
  pipeline.run();

  util::TextTable table({"sample", "min", "q1", "median", "q3", "max"});
  std::vector<double> medians, q3s;
  for (const auto& row : pipeline.census->rows()) {
    const auto& b = row.baf;
    medians.push_back(b.median);
    q3s.push_back(b.q3);
    table.add_row({util::to_short_string(row.date), util::compact(b.min),
                   util::compact(b.q1), util::compact(b.median),
                   util::compact(b.q3), util::compact(b.max)});
  }
  std::printf("%s\n", table.to_string().c_str());

  double late_median = 0.0;
  const auto& rows = pipeline.census->rows();
  const std::size_t tail = std::min<std::size_t>(5, rows.size());
  for (std::size_t i = rows.size() - tail; i < rows.size(); ++i) {
    late_median += rows[i].baf.median;
  }
  late_median /= static_cast<double>(tail);
  std::printf("median BAF over last five samples: %.2f   (paper: 4.31)\n",
              late_median);
  std::printf("typical q3: %.1f   (paper: ~15)\n",
              rows[rows.size() / 2].baf.q3);
  std::printf("a quarter of amplifiers amplify >= q3; one 100 Mbps uplink\n"
              "through such amplifiers overwhelms a 1 Gbps victim (§3.2).\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
