// Figure 4c: boxplots of the on-wire BAF of `version` (mode 6) responders
// per weekly sample, 2014-02-21 .. 2014-04-18.
//
// Paper shape: a much larger pool (~4M vs ~110K) with a *tight* BAF
// distribution — quartiles ~3.5 / 4.6 / 6.9 in every sample — plus rare
// giant outliers (max up to 263M, the same loop fault as §3.4), and only
// a ~19% pool decline over the nine weeks.
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header("Figure 4c: version (mode 6) BAF per sample", opt);

  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  sim::World world(wcfg);
  scan::Prober prober(world, net::Ipv4Address(198, 51, 100, 7));
  core::VersionCensus census;

  const int vweeks = opt.quick ? 4 : 9;
  for (int vweek = 0; vweek < vweeks; ++vweek) {
    census.begin_sample(
        vweek,
        util::onp_version_sample_dates()[static_cast<std::size_t>(vweek)]);
    const auto summary = prober.run_version_sample(
        vweek,
        [&](const scan::VersionObservation& obs) { census.add(obs); });
    census.end_sample(summary.responders_total);
  }

  util::TextTable table(
      {"sample", "pool", "min", "q1", "median", "q3", "max"});
  for (const auto& row : census.rows()) {
    table.add_row({util::to_short_string(row.date),
                   util::si_count(static_cast<double>(row.responders_total)),
                   util::compact(row.baf.min), util::compact(row.baf.q1),
                   util::compact(row.baf.median), util::compact(row.baf.q3),
                   util::compact(row.baf.max)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto& rows = census.rows();
  std::printf("quartiles mid-study: %.1f / %.1f / %.1f"
              "   (paper: ~3.5 / 4.6 / 6.9, stable across samples)\n",
              rows[rows.size() / 2].baf.q1, rows[rows.size() / 2].baf.median,
              rows[rows.size() / 2].baf.q3);
  const double survival =
      static_cast<double>(rows.back().responders_total) /
      static_cast<double>(rows.front().responders_total);
  std::printf("pool change first->last: %+.0f%%   (paper: -19%%)\n",
              (survival - 1.0) * 100.0);
  std::printf("pool size vs monlist:  version pool is the far larger threat\n"
              "surface left standing once monlist is remediated (§3.3).\n");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
