// Figure 1: fraction of global Internet traffic that is NTP and DNS,
// 2013-11-01 .. 2014-05-01.
//
// Paper shape: NTP starts at ~0.001% of daily bits, climbs nearly three
// orders of magnitude to ~1% at the February 11 peak (passing DNS, which
// hovers near 0.15%), then falls back to ~0.1% by May.
#include <cstdio>

#include "common.h"

namespace gorilla {
namespace {

int run(const bench::Options& opt) {
  bench::print_header(
      "Figure 1: NTP and DNS fraction of global Internet traffic", opt);

  sim::WorldConfig wcfg;
  wcfg.scale = opt.scale;
  wcfg.seed = opt.seed;
  sim::World world(wcfg);

  const int horizon = opt.quick ? 120 : 181;
  telemetry::GlobalTrafficCollector global(
      horizon, 71.5e12 / static_cast<double>(opt.scale));
  telemetry::AttackLabelStore labels;
  sim::AttackSinks sinks;
  sinks.global = &global;
  sinks.labels = &labels;
  sim::AttackEngineConfig acfg;
  acfg.seed = opt.seed ^ 0xa77acdULL;
  sim::AttackEngine attacks(world, acfg, sinks);

  // Benign baselines: NTP time-sync chatter is a sliver; DNS hovers near
  // 0.15% of traffic; both get a small deterministic weekly wobble.
  util::Rng wobble(opt.seed ^ 0xf16001ULL);
  for (int day = 0; day < horizon; ++day) {
    const double total_day_bytes =
        global.baseline_bps() / 8.0 * util::kSecondsPerDay;
    global.add_bytes(day, telemetry::ProtocolClass::kNtp,
                     total_day_bytes * 1.0e-5 *
                         wobble.uniform_real(0.8, 1.2));
    global.add_bytes(day, telemetry::ProtocolClass::kDns,
                     total_day_bytes * 1.5e-3 *
                         wobble.uniform_real(0.9, 1.1));
    attacks.run_day(day);
  }

  util::TextTable table({"date", "NTP frac", "DNS frac"});
  util::CsvDocument csv({"date", "ntp_fraction", "dns_fraction"});
  std::vector<double> ntp_series, dns_series;
  double peak = 0.0;
  int peak_day = 0;
  for (int day = 0; day < horizon; ++day) {
    const double ntp =
        global.fraction_of_internet(day, telemetry::ProtocolClass::kNtp);
    const double dns =
        global.fraction_of_internet(day, telemetry::ProtocolClass::kDns);
    ntp_series.push_back(ntp);
    dns_series.push_back(dns);
    if (ntp > peak) {
      peak = ntp;
      peak_day = day;
    }
    const auto date = util::to_string(util::date_from_sim_time(
        static_cast<util::SimTime>(day) * util::kSecondsPerDay));
    csv.add_row({date, util::fixed(ntp, 8), util::fixed(dns, 8)});
    if (day % 7 == 0) {
      table.add_row({date, util::fixed(ntp * 100.0, 5) + "%",
                     util::fixed(dns * 100.0, 5) + "%"});
    }
  }
  bench::maybe_write_csv(opt, "fig01_global_traffic.csv", csv);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("NTP fraction (log scale): %s\n",
              util::log_sparkline(ntp_series).c_str());
  std::printf("DNS fraction (log scale): %s\n\n",
              util::log_sparkline(dns_series).c_str());

  const double start = ntp_series.front();
  const double final_frac = ntp_series.back();
  std::printf("NTP at start:   %.5f%% of Internet traffic\n", start * 100);
  std::printf("NTP at peak:    %.3f%% on %s  (paper: ~1%% on 2014-02-11)\n",
              peak * 100,
              util::to_string(util::date_from_sim_time(
                                  static_cast<util::SimTime>(peak_day) *
                                  util::kSecondsPerDay))
                  .c_str());
  std::printf("NTP at end:     %.4f%%  (paper: ~0.1%%)\n", final_frac * 100);
  std::printf("rise:           %.0fx   (paper: ~3 orders of magnitude)\n",
              peak / start);
  std::printf("NTP passes DNS: %s\n",
              peak > dns_series[static_cast<std::size_t>(peak_day)]
                  ? "yes (as in the paper)"
                  : "NO");
  return 0;
}

}  // namespace
}  // namespace gorilla

int main(int argc, char** argv) {
  return gorilla::run(gorilla::bench::parse_options(argc, argv, 40));
}
