#include "util/format.h"

#include <gtest/gtest.h>

namespace gorilla::util {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"Date", "IPs"});
  t.add_row({"2014-01-10", "1405186"});
  t.add_row({"2014-04-18", "106445"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Date"), std::string::npos);
  EXPECT_NE(out.find("1405186"), std::string::npos);
  // Every line has the same start for column 2.
  const auto header_pos = out.find("IPs");
  const auto row_pos = out.find("1405186");
  EXPECT_EQ(header_pos % (out.find('\n') + 1),
            row_pos % (out.find('\n') + 1));
}

TEST(TextTableTest, RowCountTracksRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(SiCountTest, ScalesUnits) {
  EXPECT_EQ(si_count(942), "942");
  EXPECT_EQ(si_count(106445), "106.4K");
  EXPECT_EQ(si_count(1405186), "1.41M");
  EXPECT_EQ(si_count(2.92e12), "2.92T");
}

TEST(BytesStrTest, ScalesUnits) {
  EXPECT_EQ(bytes_str(512), "512.0 B");
  EXPECT_EQ(bytes_str(514e9), "514.0 GB");
  EXPECT_EQ(bytes_str(1.2e15), "1.2 PB");
}

TEST(FixedTest, Precision) {
  EXPECT_EQ(fixed(4.309, 2), "4.31");
  EXPECT_EQ(fixed(0.001, 3), "0.001");
}

TEST(CompactTest, WideRange) {
  EXPECT_EQ(compact(0.0), "0");
  EXPECT_EQ(compact(600.0), "600");
  EXPECT_NE(compact(1e9).find("e"), std::string::npos);
}

TEST(SparklineTest, EmptySeries) {
  EXPECT_EQ(log_sparkline({}), "");
  EXPECT_EQ(sparkline({}), "");
}

TEST(SparklineTest, LengthMatchesSeries) {
  const std::vector<double> series = {1, 10, 100, 1000};
  // Each glyph is a 3-byte UTF-8 block character.
  EXPECT_EQ(log_sparkline(series).size(), series.size() * 3);
  EXPECT_EQ(sparkline(series).size(), series.size() * 3);
}

TEST(SparklineTest, MonotoneSeriesEndsHigh) {
  const std::vector<double> series = {1, 10, 100, 1000, 10000};
  const std::string s = log_sparkline(series);
  EXPECT_EQ(s.substr(s.size() - 3), "█");
  EXPECT_EQ(s.substr(0, 3), "▁");
}

TEST(SparklineTest, HandlesNonPositiveValues) {
  const std::vector<double> series = {0, 0, 5, 50};
  EXPECT_EQ(log_sparkline(series).size(), series.size() * 3);
}

TEST(SparklineTest, ConstantSeriesUniform) {
  const std::vector<double> series = {7, 7, 7};
  const std::string s = sparkline(series);
  EXPECT_EQ(s, "▁▁▁");
}

TEST(BannerTest, ContainsTitle) {
  const std::string b = banner("Figure 3");
  EXPECT_NE(b.find("Figure 3"), std::string::npos);
  EXPECT_NE(b.find("=="), std::string::npos);
}

}  // namespace
}  // namespace gorilla::util
