#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

namespace gorilla::util {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).size(), 1);
  EXPECT_EQ(ThreadPool(-5).size(), 1);
  EXPECT_EQ(ThreadPool(1).size(), 1);
  EXPECT_EQ(ThreadPool(4).size(), 4);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1);
}

TEST(ThreadPoolTest, RunsEveryJobExactlyOnce) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // The destructor drains the queue: all 1000 jobs must have run by the
    // time the pool is gone, with no explicit wait in sight.
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, JobsRunOffTheSubmittingThread) {
  std::mutex mu;
  std::set<std::thread::id> seen;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&mu, &seen] {
        const std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      });
    }
  }
  EXPECT_FALSE(seen.empty());
  EXPECT_EQ(seen.count(std::this_thread::get_id()), 0u);
  EXPECT_LE(seen.size(), 2u);
}

TEST(ThreadPoolTest, SubmitFromMultipleProducers) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    std::thread a([&pool, &counter] {
      for (int i = 0; i < 200; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
    std::thread b([&pool, &counter] {
      for (int i = 0; i < 200; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
    a.join();
    b.join();
  }
  EXPECT_EQ(counter.load(), 400);
}

TEST(ThreadPoolTest, JobsMayOutliveTheirCaptures) {
  // Move-only state owned by the job itself must survive until the worker
  // runs it (possibly after the submitting scope has exited).
  std::atomic<int> sum{0};
  {
    ThreadPool pool(2);
    for (int i = 1; i <= 10; ++i) {
      auto payload = std::make_shared<int>(i);
      pool.submit([&sum, payload] { sum.fetch_add(*payload); });
    }
  }
  EXPECT_EQ(sum.load(), 55);
}

}  // namespace
}  // namespace gorilla::util
