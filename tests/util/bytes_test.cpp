#include "util/bytes.h"

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <vector>

namespace gorilla::util {
namespace {

// --- positional loads ------------------------------------------------------

TEST(LoadTest, BigEndianValues) {
  const std::vector<std::uint8_t> buf = {0x01, 0x02, 0x03, 0x04,
                                         0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(load_u16be(buf, 0), 0x0102);
  EXPECT_EQ(load_u32be(buf, 0), 0x01020304u);
  EXPECT_EQ(load_u64be(buf, 0), 0x0102030405060708ull);
  EXPECT_EQ(load_u16be(buf, 6), 0x0708);
}

TEST(LoadTest, LittleEndianValues) {
  const std::vector<std::uint8_t> buf = {0xd4, 0xc3, 0xb2, 0xa1};
  EXPECT_EQ(load_u32le(buf, 0), 0xa1b2c3d4u);  // the pcap magic
  EXPECT_EQ(load_u16le(buf, 0), 0xc3d4);
}

TEST(LoadTest, RefusesOutOfBounds) {
  const std::vector<std::uint8_t> buf = {1, 2, 3};
  EXPECT_EQ(load_u16be(buf, 2), std::nullopt);
  EXPECT_EQ(load_u32be(buf, 0), std::nullopt);
  EXPECT_EQ(load_u64be(buf, 0), std::nullopt);
  // Offset far past the end must not wrap (offset > size guard).
  EXPECT_EQ(load_u16be(buf, static_cast<std::size_t>(-1)), std::nullopt);
}

TEST(LoadTest, ZeroLengthInput) {
  const std::span<const std::uint8_t> empty;
  EXPECT_EQ(load_u16be(empty, 0), std::nullopt);
  EXPECT_EQ(load_u32le(empty, 0), std::nullopt);
}

TEST(StoreTest, RoundTripsAndBoundsChecks) {
  std::array<std::uint8_t, 4> buf{};
  EXPECT_TRUE(store_u16be(buf, 2, 0xbeef));
  EXPECT_EQ(buf[2], 0xbe);
  EXPECT_EQ(buf[3], 0xef);
  EXPECT_EQ(load_u16be(buf, 2), 0xbeef);
  EXPECT_FALSE(store_u16be(buf, 3, 0x1234));  // would spill past the end
  EXPECT_EQ(buf[3], 0xef);                    // untouched on failure
}

// --- ByteReader ------------------------------------------------------------

TEST(ByteReaderTest, ReadsLinearly) {
  const std::vector<std::uint8_t> buf = {0xab, 0x01, 0x02, 0x03, 0x04,
                                         0x05, 0x06, 0x07, 0x08, 0x09};
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16be(), 0x0102);
  EXPECT_EQ(r.u32be(), 0x03040506u);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.consumed(), 7u);
  EXPECT_TRUE(r.ok());
}

TEST(ByteReaderTest, UnderflowIsStickyAndReturnsZero) {
  const std::vector<std::uint8_t> buf = {0xff};
  ByteReader r(buf);
  EXPECT_EQ(r.u32be(), 0u);  // short read yields 0, not a partial value
  EXPECT_TRUE(r.truncated());
  EXPECT_FALSE(r.ok());
  // The unread byte is still there, but the failure state never clears.
  EXPECT_EQ(r.u8(), 0xff);
  EXPECT_TRUE(r.truncated());
}

TEST(ByteReaderTest, ZeroLengthInput) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.ok());  // no reads yet, nothing failed
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReaderTest, TakeIsAllOrNothing) {
  const std::vector<std::uint8_t> buf = {1, 2, 3, 4};
  ByteReader r(buf);
  const auto head = r.take(3);
  ASSERT_EQ(head.size(), 3u);
  EXPECT_EQ(head[0], 1);
  const auto tail = r.take(2);  // only 1 byte left
  EXPECT_TRUE(tail.empty());
  EXPECT_TRUE(r.truncated());
}

TEST(ByteReaderTest, TakeZeroOnEmptyIsOk) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.take(0).empty());
  EXPECT_TRUE(r.ok());
}

TEST(ByteReaderTest, SkipAndPeek) {
  const std::vector<std::uint8_t> buf = {9, 8, 7};
  ByteReader r(buf);
  EXPECT_EQ(r.peek_u8(), 9);
  EXPECT_TRUE(r.skip(2));
  EXPECT_EQ(r.peek_u8(), 7);
  EXPECT_FALSE(r.skip(2));
  EXPECT_TRUE(r.truncated());
  // peek past the end is nullopt but non-sticky on a fresh reader.
  ByteReader fresh(std::span<const std::uint8_t>{});
  EXPECT_EQ(fresh.peek_u8(), std::nullopt);
  EXPECT_TRUE(fresh.ok());
}

// --- ByteWriter ------------------------------------------------------------

TEST(ByteWriterTest, RoundTripsThroughReader) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u8(0x7f);
  w.u16be(0x0102);
  w.u32be(0xdeadbeef);
  w.u64be(0x0102030405060708ull);
  w.u16le(0xc3d4);
  w.u32le(0xa1b2c3d4);
  ASSERT_EQ(buf.size(), 21u);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0x7f);
  EXPECT_EQ(r.u16be(), 0x0102);
  EXPECT_EQ(r.u32be(), 0xdeadbeefu);
  EXPECT_EQ(r.u64be(), 0x0102030405060708ull);
  EXPECT_EQ(r.u16le(), 0xc3d4);
  EXPECT_EQ(r.u32le(), 0xa1b2c3d4u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteWriterTest, FillBytesAndPadTo) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  w.bytes(payload);
  w.fill(2, 0xee);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{1, 2, 3, 0xee, 0xee}));
  w.pad_to(4);
  EXPECT_EQ(buf.size(), 8u);  // padded 5 -> 8
  w.pad_to(4);
  EXPECT_EQ(buf.size(), 8u);  // already aligned: no-op
}

TEST(ByteWriterTest, PatchBackfillsChecksumStyleFields) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u16be(0);  // placeholder
  w.u16be(0xaaaa);
  EXPECT_TRUE(w.patch_u16be(0, 0x1234));
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0x12, 0x34, 0xaa, 0xaa}));
  EXPECT_FALSE(w.patch_u16be(3, 0x5678));  // range not fully written
  EXPECT_EQ(buf[3], 0xaa);
}

// --- stream bridge ---------------------------------------------------------

TEST(StreamBridgeTest, WriteAllThenReadExactRoundTrips) {
  std::stringstream ss;
  const std::vector<std::uint8_t> out = {0x00, 0xff, 0x10, 0x20};
  EXPECT_TRUE(write_all(ss, out));
  std::vector<std::uint8_t> in(4);
  EXPECT_TRUE(read_exact(ss, in));
  EXPECT_EQ(in, out);
}

TEST(StreamBridgeTest, ReadExactRefusesShortStreams) {
  std::stringstream ss;
  const std::vector<std::uint8_t> out = {1, 2};
  EXPECT_TRUE(write_all(ss, out));
  std::vector<std::uint8_t> in(3);
  EXPECT_FALSE(read_exact(ss, in));
}

}  // namespace
}  // namespace gorilla::util
