#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace gorilla::util {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("2014-01-10"), "2014-01-10");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscapeTest, QuotesSpecialCharacters) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvRowTest, JoinsWithCommas) {
  EXPECT_EQ(csv_row({"a", "b", "c"}), "a,b,c\n");
  EXPECT_EQ(csv_row({"x,y", "z"}), "\"x,y\",z\n");
  EXPECT_EQ(csv_row({}), "\n");
}

TEST(CsvDocumentTest, BuildsDocument) {
  CsvDocument doc({"date", "ips"});
  doc.add_row({"2014-01-10", "1405186"});
  doc.add_row({"2014-04-18", "106445"});
  EXPECT_EQ(doc.row_count(), 2u);
  EXPECT_EQ(doc.to_string(),
            "date,ips\n2014-01-10,1405186\n2014-04-18,106445\n");
}

TEST(CsvDocumentTest, WritesFile) {
  const std::string path = "/tmp/gorilla_csv_test.csv";
  CsvDocument doc({"k", "v"});
  doc.add_row({"a", "1"});
  ASSERT_TRUE(doc.write_file(path));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "k,v\na,1\n");
  std::remove(path.c_str());
}

TEST(CsvDocumentTest, WriteFailureReported) {
  CsvDocument doc({"k"});
  EXPECT_FALSE(doc.write_file("/nonexistent-dir-xyz/out.csv"));
}

}  // namespace
}  // namespace gorilla::util
