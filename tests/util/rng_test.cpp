#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace gorilla::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.0), 2.0);
  }
}

TEST(RngTest, ParetoTailHeavierForSmallerAlpha) {
  Rng rng(29);
  int heavy_big = 0, light_big = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.pareto(1.0, 0.5) > 100.0) ++heavy_big;
    if (rng.pareto(1.0, 2.0) > 100.0) ++light_big;
  }
  EXPECT_GT(heavy_big, light_big * 5);
}

TEST(RngTest, PoissonMeanSmallLambda) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonMeanLargeLambda) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(41);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(43);
  std::vector<double> vals;
  for (int i = 0; i < 50001; ++i) vals.push_back(rng.lognormal(std::log(40.0), 2.0));
  std::nth_element(vals.begin(), vals.begin() + vals.size() / 2, vals.end());
  EXPECT_NEAR(vals[vals.size() / 2], 40.0, 4.0);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(47);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkDeterministic) {
  Rng p1(47), p2(47);
  Rng c1 = p1.fork(9), c2 = p2.fork(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(RngTest, SubstreamIsPureInSeedAndTag) {
  // Unlike fork(), substream() must not depend on any ambient state: the
  // same (seed, tag) yields the same stream no matter how many other
  // substreams were drawn in between — the property day/week shards rely
  // on for resume and retry bit-identity.
  Rng first = Rng::substream(0x800'1b, 42);
  for (std::uint64_t noise = 0; noise < 10; ++noise) {
    (void)Rng::substream(0x800'1b, noise).next();
  }
  Rng second = Rng::substream(0x800'1b, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(first.next(), second.next());
}

TEST(RngTest, SubstreamAttackDayAndWeeklyTagsDisjoint) {
  // The engine keys attack-day shards by day index and weekly draws by
  // 2^32 + week. The two tag families must never collide and must land on
  // unrelated streams — overlap would correlate a day's attack draws with
  // a week's scan draws.
  constexpr std::uint64_t kWeeklyBase = 1ull << 32;
  std::set<std::uint64_t> first_draws;
  constexpr int kDays = 400;
  constexpr int kWeeks = 60;
  for (int day = 0; day < kDays; ++day) {
    first_draws.insert(Rng::substream(0x800'1b, day).next());
  }
  for (int week = 0; week < kWeeks; ++week) {
    first_draws.insert(Rng::substream(0x800'1b, kWeeklyBase + week).next());
  }
  // All streams distinct: no day tag aliases a week tag (or another day).
  EXPECT_EQ(first_draws.size(), static_cast<std::size_t>(kDays + kWeeks));
}

TEST(RngTest, SubstreamNearbyTagsDecorrelated) {
  Rng a = Rng::substream(7, 1000);
  Rng b = Rng::substream(7, 1001);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SubstreamDiffersFromForkOfSameTag) {
  // fork() folds in the parent's position; substream() folds in only the
  // seed. They are different functions on purpose — proven here so a
  // refactor cannot quietly unify them.
  Rng parent(0x800'1b);
  Rng forked = parent.fork(5);
  Rng sub = Rng::substream(0x800'1b, 5);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (forked.next() == sub.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfSamplerTest, RanksWithinBounds) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(53);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 10u);
  }
}

TEST(ZipfSamplerTest, RankOneDominates) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(59);
  std::array<int, 100> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], 50000 / 10);  // top rank carries a large share
}

TEST(ZipfSamplerTest, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(WeightedSamplerTest, RespectsWeights) {
  const std::array<double, 3> w = {0.7, 0.2, 0.1};
  WeightedSampler sampler{std::span<const double>(w)};
  Rng rng(61);
  std::array<int, 3> counts{};
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / double(n), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.1, 0.02);
}

TEST(WeightedSamplerTest, ZeroWeightNeverSampled) {
  const std::array<double, 3> w = {1.0, 0.0, 1.0};
  WeightedSampler sampler{std::span<const double>(w)};
  Rng rng(67);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(sampler.sample(rng), 1u);
  }
}

TEST(WeightedSamplerTest, RejectsInvalidWeights) {
  EXPECT_THROW(WeightedSampler(std::span<const double>{}),
               std::invalid_argument);
  const std::array<double, 2> neg = {1.0, -0.5};
  EXPECT_THROW(WeightedSampler{std::span<const double>(neg)},
               std::invalid_argument);
  const std::array<double, 2> zero = {0.0, 0.0};
  EXPECT_THROW(WeightedSampler{std::span<const double>(zero)},
               std::invalid_argument);
}

// Property sweep: uniform(n) is unbiased for a range of n.
class UniformSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformSweep, MeanNearHalfRange) {
  const std::uint64_t n = GetParam();
  Rng rng(n * 7919 + 1);
  double sum = 0.0;
  constexpr int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.uniform(n));
  }
  const double expected = (static_cast<double>(n) - 1.0) / 2.0;
  EXPECT_NEAR(sum / trials, expected, static_cast<double>(n) * 0.02 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 65536));

}  // namespace
}  // namespace gorilla::util
