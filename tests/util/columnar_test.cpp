#include "util/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace gorilla::util {
namespace {

TEST(ZigzagTest, RoundTripsEdgeValues) {
  const std::int64_t values[] = {0,
                                 1,
                                 -1,
                                 63,
                                 -64,
                                 64,
                                 -65,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes map to small codes (the point of the encoding).
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
}

TEST(ColumnTest, MixedTypedRoundTrip) {
  ColumnWriter w;
  w.put_u8(0xab);
  w.put_u16(0xbeef);
  w.put_u32(0xdeadbeef);
  w.put_varint(0);
  w.put_varint(127);
  w.put_varint(128);
  w.put_varint(std::numeric_limits<std::uint64_t>::max());
  w.put_zigzag(-123456789);
  w.put_f64(-0.125);
  w.put_f64(std::numeric_limits<double>::infinity());

  ColumnReader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0xbeef);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_varint(), 0u);
  EXPECT_EQ(r.get_varint(), 127u);
  EXPECT_EQ(r.get_varint(), 128u);
  EXPECT_EQ(r.get_varint(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.get_zigzag(), -123456789);
  EXPECT_EQ(r.get_f64(), -0.125);
  EXPECT_EQ(r.get_f64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(ColumnTest, VarintBoundaryLengths) {
  // One byte up to 127, two bytes up to 16383, ten bytes for the max.
  ColumnWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(128);
  EXPECT_EQ(w.size(), 3u);
  w.put_varint(16383);
  EXPECT_EQ(w.size(), 5u);
  w.put_varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(w.size(), 15u);
}

TEST(ColumnTest, TruncatedReadIsStickyFailure) {
  ColumnWriter w;
  w.put_u32(42);
  std::vector<std::uint8_t> bytes = w.take_buffer();
  bytes.pop_back();

  ColumnReader r(bytes);
  EXPECT_EQ(r.get_u32(), 0u);
  EXPECT_FALSE(r.ok());
  // Failure is sticky: ok() never recovers, so callers that check it after
  // a batch of reads discard everything from a short column.
  (void)r.get_varint();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.get_varint(), 0u);
}

TEST(ColumnTest, UnterminatedVarintFails) {
  // Ten continuation bytes with no terminator: overlong encoding.
  const std::vector<std::uint8_t> bytes(10, 0xff);
  ColumnReader r(bytes);
  EXPECT_EQ(r.get_varint(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ColumnTest, TakeBufferLeavesWriterEmpty) {
  ColumnWriter w;
  w.put_u8(1);
  EXPECT_EQ(w.take_buffer().size(), 1u);
  EXPECT_EQ(w.size(), 0u);
}

ColumnArchive make_archive() {
  ColumnArchive archive;
  archive.header = {0x01, 0x02, 0x03};
  ColumnWriter a;
  a.put_varint(7);
  a.put_f64(3.5);
  archive.sections.emplace_back("alpha", a.take_buffer());
  archive.sections.emplace_back("empty", std::vector<std::uint8_t>{});
  ColumnWriter b;
  b.put_u32(99);
  archive.sections.emplace_back("beta", b.take_buffer());
  return archive;
}

TEST(ColumnArchiveTest, StreamRoundTripPreservesEverything) {
  const ColumnArchive archive = make_archive();
  std::stringstream ss;
  ASSERT_TRUE(archive.save(ss));
  const auto loaded = ColumnArchive::load(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header, archive.header);
  ASSERT_EQ(loaded->sections.size(), archive.sections.size());
  for (std::size_t i = 0; i < archive.sections.size(); ++i) {
    EXPECT_EQ(loaded->sections[i].first, archive.sections[i].first);
    EXPECT_EQ(loaded->sections[i].second, archive.sections[i].second);
  }
}

TEST(ColumnArchiveTest, FindLocatesSectionsByName) {
  const ColumnArchive archive = make_archive();
  ASSERT_NE(archive.find("beta"), nullptr);
  EXPECT_EQ(archive.find("beta")->size(), 4u);
  ASSERT_NE(archive.find("empty"), nullptr);
  EXPECT_TRUE(archive.find("empty")->empty());
  EXPECT_EQ(archive.find("gamma"), nullptr);
}

TEST(ColumnArchiveTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "columnar_roundtrip.gorcol";
  const ColumnArchive archive = make_archive();
  ASSERT_TRUE(archive.save_file(path));
  const auto loaded = ColumnArchive::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header, archive.header);
  EXPECT_EQ(loaded->sections.size(), archive.sections.size());
}

TEST(ColumnArchiveTest, MissingFileLoadsAsNullopt) {
  EXPECT_FALSE(
      ColumnArchive::load_file(testing::TempDir() + "no_such_file.gorcol")
          .has_value());
}

TEST(ColumnArchiveTest, BadMagicRejected) {
  std::stringstream ss;
  ASSERT_TRUE(make_archive().save(ss));
  std::string bytes = ss.str();
  bytes[0] ^= 0x20;
  std::stringstream corrupt(bytes);
  EXPECT_FALSE(ColumnArchive::load(corrupt).has_value());
}

TEST(ColumnArchiveTest, TruncationRejectedAtEveryLength) {
  std::stringstream ss;
  ASSERT_TRUE(make_archive().save(ss));
  const std::string bytes = ss.str();
  // Any strict prefix must fail to load — never a silent partial archive.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream prefix(bytes.substr(0, len));
    EXPECT_FALSE(ColumnArchive::load(prefix).has_value()) << "len=" << len;
  }
}

}  // namespace
}  // namespace gorilla::util
