#include "util/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace gorilla::util {
namespace {

TEST(ZigzagTest, RoundTripsEdgeValues) {
  const std::int64_t values[] = {0,
                                 1,
                                 -1,
                                 63,
                                 -64,
                                 64,
                                 -65,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes map to small codes (the point of the encoding).
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
}

TEST(ColumnTest, MixedTypedRoundTrip) {
  ColumnWriter w;
  w.put_u8(0xab);
  w.put_u16(0xbeef);
  w.put_u32(0xdeadbeef);
  w.put_varint(0);
  w.put_varint(127);
  w.put_varint(128);
  w.put_varint(std::numeric_limits<std::uint64_t>::max());
  w.put_zigzag(-123456789);
  w.put_f64(-0.125);
  w.put_f64(std::numeric_limits<double>::infinity());

  ColumnReader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0xbeef);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_varint(), 0u);
  EXPECT_EQ(r.get_varint(), 127u);
  EXPECT_EQ(r.get_varint(), 128u);
  EXPECT_EQ(r.get_varint(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.get_zigzag(), -123456789);
  EXPECT_EQ(r.get_f64(), -0.125);
  EXPECT_EQ(r.get_f64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(ColumnTest, VarintBoundaryLengths) {
  // One byte up to 127, two bytes up to 16383, ten bytes for the max.
  ColumnWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(128);
  EXPECT_EQ(w.size(), 3u);
  w.put_varint(16383);
  EXPECT_EQ(w.size(), 5u);
  w.put_varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(w.size(), 15u);
}

TEST(ColumnTest, TruncatedReadIsStickyFailure) {
  ColumnWriter w;
  w.put_u32(42);
  std::vector<std::uint8_t> bytes = w.take_buffer();
  bytes.pop_back();

  ColumnReader r(bytes);
  EXPECT_EQ(r.get_u32(), 0u);
  EXPECT_FALSE(r.ok());
  // Failure is sticky: ok() never recovers, so callers that check it after
  // a batch of reads discard everything from a short column.
  (void)r.get_varint();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.get_varint(), 0u);
}

TEST(ColumnTest, UnterminatedVarintFails) {
  // Ten continuation bytes with no terminator: overlong encoding.
  const std::vector<std::uint8_t> bytes(10, 0xff);
  ColumnReader r(bytes);
  EXPECT_EQ(r.get_varint(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(ColumnTest, TakeBufferLeavesWriterEmpty) {
  ColumnWriter w;
  w.put_u8(1);
  EXPECT_EQ(w.take_buffer().size(), 1u);
  EXPECT_EQ(w.size(), 0u);
}

ColumnArchive make_archive() {
  ColumnArchive archive;
  archive.header = {0x01, 0x02, 0x03};
  ColumnWriter a;
  a.put_varint(7);
  a.put_f64(3.5);
  archive.sections.emplace_back("alpha", a.take_buffer());
  archive.sections.emplace_back("empty", std::vector<std::uint8_t>{});
  ColumnWriter b;
  b.put_u32(99);
  archive.sections.emplace_back("beta", b.take_buffer());
  return archive;
}

TEST(ColumnArchiveTest, StreamRoundTripPreservesEverything) {
  const ColumnArchive archive = make_archive();
  std::stringstream ss;
  ASSERT_TRUE(archive.save(ss));
  const auto loaded = ColumnArchive::load(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header, archive.header);
  ASSERT_EQ(loaded->sections.size(), archive.sections.size());
  for (std::size_t i = 0; i < archive.sections.size(); ++i) {
    EXPECT_EQ(loaded->sections[i].name, archive.sections[i].name);
    EXPECT_EQ(loaded->sections[i].bytes, archive.sections[i].bytes);
  }
}

TEST(ColumnArchiveTest, FindLocatesSectionsByName) {
  const ColumnArchive archive = make_archive();
  ASSERT_NE(archive.find("beta"), nullptr);
  EXPECT_EQ(archive.find("beta")->bytes.size(), 4u);
  ASSERT_NE(archive.find("empty"), nullptr);
  EXPECT_TRUE(archive.find("empty")->bytes.empty());
  EXPECT_EQ(archive.find("gamma"), nullptr);
}

TEST(ColumnArchiveTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "columnar_roundtrip.gorcol";
  const ColumnArchive archive = make_archive();
  ASSERT_TRUE(archive.save_file(path));
  const auto loaded = ColumnArchive::load_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header, archive.header);
  EXPECT_EQ(loaded->sections.size(), archive.sections.size());
}

TEST(ColumnArchiveTest, MissingFileLoadsAsNullopt) {
  EXPECT_FALSE(
      ColumnArchive::load_file(testing::TempDir() + "no_such_file.gorcol")
          .has_value());
}

TEST(ColumnArchiveTest, BadMagicRejected) {
  std::stringstream ss;
  ASSERT_TRUE(make_archive().save(ss));
  std::string bytes = ss.str();
  bytes[0] ^= 0x20;
  std::stringstream corrupt(bytes);
  EXPECT_FALSE(ColumnArchive::load(corrupt).has_value());
}

TEST(ColumnArchiveTest, TruncationRejectedAtEveryLength) {
  std::stringstream ss;
  ASSERT_TRUE(make_archive().save(ss));
  const std::string bytes = ss.str();
  // Any strict prefix must fail to load — never a silent partial archive.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream prefix(bytes.substr(0, len));
    EXPECT_FALSE(ColumnArchive::load(prefix).has_value()) << "len=" << len;
  }
}

// ---- GORCOLv3: block-compressed sections, streaming readers ----

/// An archive with one section big and repetitive enough to compress into
/// several 64 KiB blocks, plus a tiny one that must stay raw.
ColumnArchive make_big_archive() {
  ColumnArchive archive;
  archive.header = {0x42};
  ColumnWriter big;
  // Period lcm(50, 31) entries ≈ 3 KB of bytes — well inside the codec's
  // 64 KiB match window, so the payload genuinely compresses.
  for (std::uint64_t i = 0; i < 60000; ++i) {
    big.put_varint(i % 50);
    big.put_zigzag(-static_cast<std::int64_t>(i % 31));
  }
  archive.sections.emplace_back("big", big.take_buffer());
  ColumnWriter tiny;
  tiny.put_u32(7);
  archive.sections.emplace_back("tiny", tiny.take_buffer());
  return archive;
}

TEST(ColumnArchiveV3Test, WriterEmitsV3ByDefaultAndV2OnRequest) {
  std::stringstream v3;
  ASSERT_TRUE(make_archive().save(v3));
  EXPECT_EQ(v3.str().substr(0, 8), "GORCOLv3");

  ColumnArchive legacy = make_archive();
  legacy.version = 2;
  std::stringstream v2;
  ASSERT_TRUE(legacy.save(v2));
  EXPECT_EQ(v2.str().substr(0, 8), "GORCOLv2");
}

TEST(ColumnArchiveV3Test, CompressedSectionRoundTripsAndShrinks) {
  const ColumnArchive archive = make_big_archive();
  std::stringstream v3;
  ASSERT_TRUE(archive.save(v3));
  ColumnArchive legacy = make_big_archive();
  legacy.version = 2;
  std::stringstream v2;
  ASSERT_TRUE(legacy.save(v2));
  // The repetitive payload must compress — that is the point of v3.
  EXPECT_LT(v3.str().size(), v2.str().size());

  const auto loaded = ColumnArchive::load(v3);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->version, 3);
  const auto* big = loaded->find("big");
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->storage, ColumnArchive::SectionStorage::kBlocks);
  EXPECT_EQ(big->raw_len, archive.sections[0].bytes.size());
  EXPECT_LT(big->bytes.size(), big->raw_len);
  // Small sections are not worth a block frame.
  const auto* tiny = loaded->find("tiny");
  ASSERT_NE(tiny, nullptr);
  EXPECT_EQ(tiny->storage, ColumnArchive::SectionStorage::kRaw);

  // Streaming reads reproduce every value without inflating the section.
  ColumnReader r = loaded->column("big");
  for (std::uint64_t i = 0; i < 60000; ++i) {
    ASSERT_EQ(r.get_varint(), i % 50) << i;
    ASSERT_EQ(r.get_zigzag(), -static_cast<std::int64_t>(i % 31)) << i;
  }
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(ColumnArchiveV3Test, CrossVersionRoundTripMatrix) {
  // The same logical archive written as v2 and v3 must read back the same
  // values; reloading a v2 file and re-saving as v3 (and vice versa) must
  // preserve everything. v1 load coverage lives in columnar_fault_test.
  const ColumnArchive original = make_big_archive();
  for (const int source_version : {2, 3}) {
    ColumnArchive out = make_big_archive();
    out.version = source_version;
    std::stringstream first_stream;
    ASSERT_TRUE(out.save(first_stream));
    auto loaded = ColumnArchive::load(first_stream);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->version, source_version);
    for (const int target_version : {2, 3}) {
      ColumnArchive copy = *loaded;
      copy.version = target_version;
      std::stringstream second_stream;
      ASSERT_TRUE(copy.save(second_stream)) << source_version << "->"
                                            << target_version;
      const auto reloaded = ColumnArchive::load(second_stream);
      ASSERT_TRUE(reloaded.has_value());
      for (const auto& want : original.sections) {
        const auto* got = reloaded->find(want.name);
        ASSERT_NE(got, nullptr) << want.name;
        ColumnReader r = reloaded->column(want.name);
        for (const std::uint8_t byte : want.bytes) {
          ASSERT_EQ(r.get_u8(), byte);
        }
        EXPECT_TRUE(r.ok());
        EXPECT_TRUE(r.at_end());
      }
    }
  }
}

TEST(ColumnArchiveV3Test, InflateIsByteIdenticalToStreaming) {
  std::stringstream ss;
  ASSERT_TRUE(make_big_archive().save(ss));
  auto streaming = ColumnArchive::load(ss);
  ASSERT_TRUE(streaming.has_value());
  ColumnArchive flat = *streaming;
  flat.inflate();
  const auto* big = flat.find("big");
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->storage, ColumnArchive::SectionStorage::kRaw);
  EXPECT_EQ(big->bytes, make_big_archive().sections[0].bytes);

  // And across a worker pool: sections decompress in parallel to the same
  // bytes (each section is independent).
  ColumnArchive pooled = *streaming;
  ThreadPool pool(3);
  pooled.inflate(&pool);
  EXPECT_EQ(pooled.sections, flat.sections);
}

TEST(ColumnArchiveV3Test, StreamingReaderFailsStickyOnDamagedBlock) {
  std::stringstream ss;
  ASSERT_TRUE(make_big_archive().save(ss));
  auto loaded = ColumnArchive::load(ss);
  ASSERT_TRUE(loaded.has_value());
  // Corrupt a byte deep in the stored block stream: reads succeed through
  // the intact prefix, then fail sticky at the damaged block.
  ColumnArchive& archive = *loaded;
  auto& stored = archive.sections[0].bytes;
  ASSERT_GT(stored.size(), 1000u);
  stored[stored.size() - 50] ^= 0x01;
  ColumnReader r = archive.column("big");
  bool failed = false;
  for (std::uint64_t i = 0; i < 60000 && !failed; ++i) {
    const std::uint64_t a = r.get_varint();
    const std::int64_t b = r.get_zigzag();
    if (!r.ok()) {
      failed = true;
    } else {
      ASSERT_EQ(a, i % 50) << i;
      ASSERT_EQ(b, -static_cast<std::int64_t>(i % 31)) << i;
    }
  }
  EXPECT_TRUE(failed);
  EXPECT_FALSE(r.ok());
  (void)r.get_u8();
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace gorilla::util
