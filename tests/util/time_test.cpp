#include "util/time.h"

#include <gtest/gtest.h>

namespace gorilla::util {
namespace {

TEST(DateTest, EpochRoundTrip) {
  EXPECT_EQ(days_from_civil(Date{1970, 1, 1}), 0);
  EXPECT_EQ(civil_from_days(0), (Date{1970, 1, 1}));
}

TEST(DateTest, KnownDates) {
  // 2013-11-01 is 16010 days after the Unix epoch.
  EXPECT_EQ(days_from_civil(Date{2013, 11, 1}), 16010);
  EXPECT_EQ(days_from_civil(Date{2014, 1, 10}) - days_from_civil(Date{2013, 11, 1}),
            70);
}

TEST(DateTest, LeapYearHandling) {
  // 2014 is not a leap year; Feb has 28 days.
  EXPECT_EQ(days_from_civil(Date{2014, 3, 1}) - days_from_civil(Date{2014, 2, 28}),
            1);
  // 2012 was a leap year.
  EXPECT_EQ(days_from_civil(Date{2012, 3, 1}) - days_from_civil(Date{2012, 2, 28}),
            2);
}

TEST(DateTest, RoundTripAcrossStudyWindow) {
  for (std::int64_t d = days_from_civil(Date{2013, 10, 1});
       d <= days_from_civil(Date{2014, 6, 30}); ++d) {
    EXPECT_EQ(days_from_civil(civil_from_days(d)), d);
  }
}

TEST(SimTimeTest, EpochIsZero) {
  EXPECT_EQ(sim_time_from_date(kSimEpochDate), 0);
  EXPECT_EQ(date_from_sim_time(0), kSimEpochDate);
}

TEST(SimTimeTest, FirstSampleDate) {
  const SimTime t = sim_time_from_date(Date{2014, 1, 10});
  EXPECT_EQ(t, 70 * kSecondsPerDay);
  EXPECT_EQ(date_from_sim_time(t), (Date{2014, 1, 10}));
  EXPECT_EQ(date_from_sim_time(t + kSecondsPerDay - 1), (Date{2014, 1, 10}));
  EXPECT_EQ(date_from_sim_time(t + kSecondsPerDay), (Date{2014, 1, 11}));
}

TEST(SimTimeTest, NegativeTimesFloorCorrectly) {
  EXPECT_EQ(date_from_sim_time(-1), (Date{2013, 10, 31}));
  EXPECT_EQ(day_index(-1), -1);
  EXPECT_EQ(day_index(-kSecondsPerDay), -1);
  EXPECT_EQ(day_index(-kSecondsPerDay - 1), -2);
}

TEST(SimTimeTest, DayIndex) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(kSecondsPerDay - 1), 0);
  EXPECT_EQ(day_index(kSecondsPerDay), 1);
}

TEST(FormattingTest, ToString) {
  EXPECT_EQ(to_string(Date{2014, 2, 7}), "2014-02-07");
  EXPECT_EQ(to_short_string(Date{2014, 2, 7}), "02-07");
}

TEST(FormattingTest, ParseValid) {
  EXPECT_EQ(parse_date("2014-04-18"), std::optional<Date>(Date{2014, 4, 18}));
}

TEST(FormattingTest, ParseRejectsMalformed) {
  EXPECT_EQ(parse_date("not-a-date"), std::nullopt);
  EXPECT_EQ(parse_date("2014-13-01"), std::nullopt);
  EXPECT_EQ(parse_date("2014-00-10"), std::nullopt);
  EXPECT_EQ(parse_date("2014-01-32"), std::nullopt);
}

TEST(OnpDatesTest, FifteenWeeklyMonlistSamples) {
  const auto& dates = onp_sample_dates();
  ASSERT_EQ(dates.size(), 15u);
  EXPECT_EQ(dates.front(), (Date{2014, 1, 10}));
  EXPECT_EQ(dates.back(), (Date{2014, 4, 18}));
  for (std::size_t i = 1; i < dates.size(); ++i) {
    EXPECT_EQ(days_from_civil(dates[i]) - days_from_civil(dates[i - 1]), 7);
  }
}

TEST(OnpDatesTest, NineVersionSamples) {
  const auto& dates = onp_version_sample_dates();
  ASSERT_EQ(dates.size(), 9u);
  EXPECT_EQ(dates.front(), (Date{2014, 2, 21}));
  EXPECT_EQ(dates.back(), (Date{2014, 4, 18}));
}

// The version samples are a strict suffix-aligned subset of monlist weeks.
TEST(OnpDatesTest, VersionSamplesAlignWithMonlistWeeks) {
  const auto& monlist = onp_sample_dates();
  const auto& version = onp_version_sample_dates();
  for (std::size_t i = 0; i < version.size(); ++i) {
    EXPECT_EQ(version[i], monlist[i + 6]);
  }
}

}  // namespace
}  // namespace gorilla::util
