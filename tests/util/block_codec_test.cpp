// Block codec contract: compress→decompress is the identity for every
// input shape we can think of (randomized differential + adversarial
// patterns), the stream is deterministic, damage is detected instead of
// decoded, and the scan/cursor views agree with the one-shot decoder.
#include "util/block_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace gorilla::util {
namespace {

std::vector<std::uint8_t> round_trip(std::span<const std::uint8_t> raw) {
  const std::vector<std::uint8_t> stored = block_compress(raw);
  std::vector<std::uint8_t> back;
  EXPECT_TRUE(block_decompress(stored, back));
  return back;
}

void expect_identity(const std::vector<std::uint8_t>& raw,
                     const std::string& what) {
  const std::vector<std::uint8_t> back = round_trip(raw);
  ASSERT_EQ(back.size(), raw.size()) << what;
  EXPECT_EQ(back, raw) << what;
}

TEST(BlockCodecTest, EmptyInputYieldsEmptyStream) {
  EXPECT_TRUE(block_compress({}).empty());
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(block_decompress({}, out));
  EXPECT_TRUE(out.empty());
  const BlockScan scan = scan_blocks({});
  EXPECT_TRUE(scan.complete);
  EXPECT_EQ(scan.blocks, 0u);
}

TEST(BlockCodecTest, AdversarialPatternsRoundTrip) {
  // Shapes chosen to stress the token format: runs (RLE-like overlapping
  // matches), literals-only noise, match/literal boundaries at the 15
  // nibble cutoffs, block-boundary straddles, and length-extension runs.
  expect_identity(std::vector<std::uint8_t>(1, 0x42), "single byte");
  expect_identity(std::vector<std::uint8_t>(3, 0xaa), "below min match");
  expect_identity(std::vector<std::uint8_t>(4, 0xaa), "exactly min match");
  expect_identity(std::vector<std::uint8_t>(19, 0x55), "match len 15 cutoff");
  expect_identity(std::vector<std::uint8_t>(273, 0x55), "match ext run");
  expect_identity(std::vector<std::uint8_t>(kBlockRawSize, 0),
                  "one full zero block");
  expect_identity(std::vector<std::uint8_t>(kBlockRawSize + 1, 0),
                  "block boundary straddle");
  expect_identity(std::vector<std::uint8_t>(3 * kBlockRawSize - 1, 0x7f),
                  "multi-block minus one");

  // Literal-length cutoffs: N incompressible bytes then a long run.
  Rng rng(1);
  for (const std::size_t lits : {14u, 15u, 16u, 269u, 270u, 271u}) {
    std::vector<std::uint8_t> mixed;
    for (std::size_t i = 0; i < lits; ++i) {
      mixed.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    mixed.insert(mixed.end(), 100, 0xee);
    expect_identity(mixed, "lits=" + std::to_string(lits));
  }

  // Periodic data at every small period (offset = period matches).
  for (std::size_t period = 1; period <= 20; ++period) {
    std::vector<std::uint8_t> wave(5000);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      wave[i] = static_cast<std::uint8_t>(i % period);
    }
    expect_identity(wave, "period=" + std::to_string(period));
  }
}

TEST(BlockCodecTest, RandomizedDifferentialIdentity) {
  // 10k random inputs sweeping size, alphabet, and repetitiveness; every
  // single one must round-trip exactly. Deterministic seed, so a failure
  // reproduces.
  Rng rng(0xb10cc0dec);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::size_t size = static_cast<std::size_t>(rng.next() % 2048);
    // Alphabet width 1..256 controls compressibility; small widths force
    // dense matching, width 256 is mostly literals.
    const std::uint64_t width = 1 + rng.next() % 256;
    std::vector<std::uint8_t> raw(size);
    for (auto& b : raw) {
      b = static_cast<std::uint8_t>(rng.next() % width);
    }
    // A third of the trials splice in a copied slice so long-range matches
    // appear at random offsets.
    if (size > 64 && trial % 3 == 0) {
      const std::size_t from = rng.next() % (size / 2);
      const std::size_t len = 1 + rng.next() % (size / 4);
      for (std::size_t i = 0; i + from + len < size && i < len; ++i) {
        raw[from + len + i] = raw[from + i];
      }
    }
    const std::vector<std::uint8_t> back = round_trip(raw);
    ASSERT_EQ(back, raw) << "trial " << trial << " size " << size;
  }
}

TEST(BlockCodecTest, CompressionIsDeterministic) {
  std::vector<std::uint8_t> raw(200000);
  Rng rng(7);
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next() % 17);
  EXPECT_EQ(block_compress(raw), block_compress(raw));
}

TEST(BlockCodecTest, RepetitiveDataActuallyShrinks) {
  std::vector<std::uint8_t> raw(100000);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>((i / 9) % 37);
  }
  const auto stored = block_compress(raw);
  EXPECT_LT(stored.size(), raw.size() / 2);
}

TEST(BlockCodecTest, IncompressibleDataExpandsOnlyByHeaders) {
  std::vector<std::uint8_t> raw(3 * kBlockRawSize);
  Rng rng(9);
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next());
  const auto stored = block_compress(raw);
  EXPECT_LE(stored.size(), raw.size() + 3 * kBlockHeaderSize);
  expect_identity(raw, "incompressible");
}

TEST(BlockCodecTest, ScanAndCursorAgreeWithDecompress) {
  std::vector<std::uint8_t> raw(kBlockRawSize * 2 + 777);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>((i * 31) % 101);
  }
  const auto stored = block_compress(raw);
  const BlockScan scan = scan_blocks(stored);
  EXPECT_TRUE(scan.complete);
  EXPECT_EQ(scan.blocks, 3u);
  EXPECT_EQ(scan.raw_prefix, raw.size());
  EXPECT_EQ(scan.stored_prefix, stored.size());

  BlockCursor cursor{std::span<const std::uint8_t>(stored)};
  std::vector<std::uint8_t> streamed;
  std::size_t blocks = 0;
  while (cursor.next(streamed)) ++blocks;
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_FALSE(cursor.damaged());
  EXPECT_EQ(blocks, 3u);
  EXPECT_EQ(streamed, raw);
}

TEST(BlockCodecTest, DamageIsDetectedAtTheDamagedBlock) {
  std::vector<std::uint8_t> raw(kBlockRawSize + 500);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>((i / 5) % 19);
  }
  auto stored = block_compress(raw);
  // Flip one byte in the LAST block's body; block 0 must survive.
  stored[stored.size() - 7] ^= 0x10;
  const BlockScan scan = scan_blocks(stored);
  EXPECT_FALSE(scan.complete);
  EXPECT_TRUE(scan.crc_failed);
  EXPECT_EQ(scan.blocks, 1u);
  EXPECT_EQ(scan.raw_prefix, kBlockRawSize);

  std::vector<std::uint8_t> out;
  EXPECT_FALSE(block_decompress(stored, out));
  ASSERT_EQ(out.size(), kBlockRawSize);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), raw.begin()));

  // Torn frames (no CRC involved) are reported as torn, not corrupt.
  const std::span<const std::uint8_t> torn(stored.data(),
                                           stored.size() - 30);
  const BlockScan torn_scan = scan_blocks(torn);
  EXPECT_FALSE(torn_scan.complete);
  EXPECT_FALSE(torn_scan.crc_failed);
  EXPECT_EQ(torn_scan.blocks, 1u);
}

TEST(BlockCodecTest, MalformedFramesAreRejectedNotDecoded) {
  // A frame whose declared body length overruns the stream.
  std::vector<std::uint8_t> bogus(kBlockHeaderSize + 2, 0);
  bogus[0] = 16;              // raw_len = 16
  bogus[4] = 200;             // body_len = 200 > remaining
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(block_decompress(bogus, out));
  // raw_len = 0 is invalid (empty blocks are never emitted).
  std::vector<std::uint8_t> zero(kBlockHeaderSize, 0);
  EXPECT_FALSE(block_decompress(zero, out));
  // Unknown method byte.
  std::vector<std::uint8_t> method(kBlockHeaderSize + 1, 0);
  method[0] = 1;   // raw_len 1
  method[4] = 1;   // body_len 1
  method[12] = 9;  // method 9 does not exist
  EXPECT_FALSE(block_decompress(method, out));
}

}  // namespace
}  // namespace gorilla::util
