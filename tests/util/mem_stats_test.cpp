#include "util/mem_stats.h"

#include <gtest/gtest.h>

namespace gorilla::util {
namespace {

TEST(MemStatsTest, CounterTracksLiveAndPeak) {
  MemStats::Counter c;
  c.add(100);
  c.add(50);
  EXPECT_EQ(c.live(), 150u);
  EXPECT_EQ(c.peak(), 150u);
  c.sub(120);
  EXPECT_EQ(c.live(), 30u);
  EXPECT_EQ(c.peak(), 150u);  // peak never falls
  c.add(10);
  EXPECT_EQ(c.live(), 40u);
  EXPECT_EQ(c.peak(), 150u);
}

TEST(MemStatsTest, ObserveIsAGauge) {
  MemStats::Counter c;
  c.observe(500);
  c.observe(200);  // gauge overwrites live...
  EXPECT_EQ(c.live(), 200u);
  EXPECT_EQ(c.peak(), 500u);  // ...but the high-water mark stays
}

TEST(MemStatsTest, RegistryHandsOutStableCounters) {
  auto& a = MemStats::instance().counter("test.mem_stats.alpha");
  auto& again = MemStats::instance().counter("test.mem_stats.alpha");
  EXPECT_EQ(&a, &again);  // same name, same counter — references are cached
  a.add(777);
  bool found = false;
  for (const auto& row : MemStats::instance().rows()) {
    if (row.subsystem == "test.mem_stats.alpha") {
      found = true;
      EXPECT_GE(row.peak_bytes, 777u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MemStatsTest, RowsAreSortedByName) {
  (void)MemStats::instance().counter("test.mem_stats.bbb");
  (void)MemStats::instance().counter("test.mem_stats.aaa");
  const auto rows = MemStats::instance().rows();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].subsystem, rows[i].subsystem);
  }
}

TEST(MemStatsTest, PeakRssIsPlausible) {
  const std::uint64_t rss = MemStats::peak_rss_bytes();
  // /proc is available on every platform this repo builds on; a test
  // process certainly uses more than 1 MB and less than 1 TB.
  EXPECT_GT(rss, std::uint64_t{1} << 20);
  EXPECT_LT(rss, std::uint64_t{1} << 40);
}

}  // namespace
}  // namespace gorilla::util
