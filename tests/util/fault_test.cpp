// FaultPlan contract: the directive grammar parses all-or-nothing, the
// sink hook turns planned global offsets into exact short-write /
// corruption actions through util::write_all, and the shard hook throws
// on exactly the planned attempt ordinals — the same plan replays the
// same failure every run.
#include "util/fault.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace gorilla::util {
namespace {

/// Installs a plan for one test and guarantees the process-global slot is
/// cleared afterwards, whatever the test body does.
struct ScopedPlan {
  explicit ScopedPlan(const FaultPlan& plan) { FaultPlan::install(plan); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
  ~ScopedPlan() { FaultPlan::clear(); }
};

TEST(FaultPlanTest, EmptySpecParsesToEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->short_write_at.has_value());
  EXPECT_FALSE(plan->corrupt_at.has_value());
  EXPECT_FALSE(plan->shard_throw_at.has_value());
}

TEST(FaultPlanTest, ParsesEveryDirective) {
  const auto plan = FaultPlan::parse("short-write@100;corrupt@7;shard-throw@3x4");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->short_write_at, 100u);
  EXPECT_EQ(plan->corrupt_at, 7u);
  EXPECT_EQ(plan->shard_throw_at, 3u);
  EXPECT_EQ(plan->shard_throw_count, 4u);
}

TEST(FaultPlanTest, ShardThrowCountDefaultsToOne) {
  const auto plan = FaultPlan::parse("shard-throw@12");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->shard_throw_at, 12u);
  EXPECT_EQ(plan->shard_throw_count, 1u);
}

TEST(FaultPlanTest, SeededCorruptOffsetIsDeterministicAndInRange) {
  const auto a = FaultPlan::parse("corrupt@rand:9001:256");
  const auto b = FaultPlan::parse("corrupt@rand:9001:256");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(a->corrupt_at.has_value());
  EXPECT_EQ(a->corrupt_at, b->corrupt_at);
  EXPECT_LT(*a->corrupt_at, 256u);
  // A different seed should (for these seeds) pick a different point.
  const auto c = FaultPlan::parse("corrupt@rand:9002:256");
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(a->corrupt_at, c->corrupt_at);
}

TEST(FaultPlanTest, MalformedSpecsRejectedWhole) {
  EXPECT_FALSE(FaultPlan::parse("bogus@1").has_value());
  EXPECT_FALSE(FaultPlan::parse("short-write").has_value());
  EXPECT_FALSE(FaultPlan::parse("short-write@").has_value());
  EXPECT_FALSE(FaultPlan::parse("short-write@12junk").has_value());
  EXPECT_FALSE(FaultPlan::parse("corrupt@rand:5").has_value());
  EXPECT_FALSE(FaultPlan::parse("corrupt@rand:5:0").has_value());
  EXPECT_FALSE(FaultPlan::parse("shard-throw@2x0").has_value());
  // One bad directive poisons the whole spec — never a partial plan.
  EXPECT_FALSE(FaultPlan::parse("short-write@1;nope").has_value());
}

TEST(FaultPlanTest, ShortWriteCutsTheSinkAtThePlannedOffset) {
  FaultPlan plan;
  plan.short_write_at = 10;
  const ScopedPlan guard(plan);

  std::ostringstream out;
  const std::vector<std::uint8_t> six(6, 0x41);
  const std::vector<std::uint8_t> eight(8, 0x42);
  EXPECT_TRUE(write_all(out, six));  // bytes [0, 6): before the fault point
  EXPECT_FALSE(write_all(out, eight));  // the cut lands mid-chunk
  EXPECT_FALSE(static_cast<bool>(out));
  // Exactly 10 bytes reached the sink — a torn write, not a clean stop.
  EXPECT_EQ(out.str().size(), 10u);
}

TEST(FaultPlanTest, CorruptFlipsExactlyOnePlannedByte) {
  FaultPlan plan;
  plan.corrupt_at = 3;
  const ScopedPlan guard(plan);

  std::ostringstream out;
  const std::vector<std::uint8_t> zeros(8, 0x00);
  EXPECT_TRUE(write_all(out, zeros));  // corruption is silent: write "succeeds"
  const std::string written = out.str();
  ASSERT_EQ(written.size(), 8u);
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(written[i]), i == 3 ? 0x5a : 0x00)
        << "byte " << i;
  }
}

TEST(FaultPlanTest, ShardThrowFiresOnPlannedOrdinalsOnly) {
  FaultPlan plan;
  plan.shard_throw_at = 2;
  plan.shard_throw_count = 2;
  const ScopedPlan guard(plan);

  for (std::uint64_t ordinal = 0; ordinal < 6; ++ordinal) {
    if (ordinal == 2 || ordinal == 3) {
      EXPECT_THROW(FaultPlan::on_shard_attempt(), FaultInjected)
          << "ordinal " << ordinal;
    } else {
      EXPECT_NO_THROW(FaultPlan::on_shard_attempt()) << "ordinal " << ordinal;
    }
  }
}

TEST(FaultPlanTest, ResetCountersRewindsBothHooks) {
  FaultPlan plan;
  plan.short_write_at = 4;
  plan.shard_throw_at = 0;
  const ScopedPlan guard(plan);

  std::ostringstream first;
  const std::vector<std::uint8_t> chunk(8, 0xcc);
  EXPECT_FALSE(write_all(first, chunk));
  EXPECT_THROW(FaultPlan::on_shard_attempt(), FaultInjected);
  EXPECT_NO_THROW(FaultPlan::on_shard_attempt());  // ordinal 1: past window

  FaultPlan::reset_counters();
  std::ostringstream second;
  EXPECT_FALSE(write_all(second, chunk));  // offset rewound: fires again
  EXPECT_EQ(second.str().size(), 4u);
  EXPECT_THROW(FaultPlan::on_shard_attempt(), FaultInjected);  // ordinal 0 again
}

TEST(FaultPlanTest, ClearedPlanMeansNoInterference) {
  FaultPlan plan;
  plan.short_write_at = 0;
  plan.shard_throw_at = 0;
  FaultPlan::install(plan);
  FaultPlan::clear();
  EXPECT_EQ(FaultPlan::active(), nullptr);

  std::ostringstream out;
  const std::vector<std::uint8_t> chunk(16, 0x7e);
  EXPECT_TRUE(write_all(out, chunk));
  EXPECT_EQ(out.str().size(), 16u);
  EXPECT_NO_THROW(FaultPlan::on_shard_attempt());
}

}  // namespace
}  // namespace gorilla::util
