// GORCOL integrity contract: the CRC framing detects corruption the v1
// format silently swallowed, the prefix loader recovers the longest run of
// intact sections from a torn file — and, for v3 block-compressed
// sections, the longest run of intact 64 KiB blocks within the damaged
// one — legacy v1/v2 artifacts still load, and save_file is atomic under
// injected short writes: the destination either keeps its previous
// contents or becomes the complete new artifact.
#include "util/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/fault.h"

namespace gorilla::util {
namespace {

struct ScopedPlan {
  explicit ScopedPlan(const FaultPlan& plan) { FaultPlan::install(plan); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
  ~ScopedPlan() { FaultPlan::clear(); }
};

ColumnArchive make_archive() {
  ColumnArchive archive;
  archive.header = {0xde, 0xad, 0x01};
  std::vector<std::uint8_t> alpha(32);
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    alpha[i] = static_cast<std::uint8_t>(i * 7);
  }
  archive.sections.emplace_back("alpha", alpha);
  archive.sections.emplace_back("empty", std::vector<std::uint8_t>{});
  archive.sections.emplace_back("beta",
                                std::vector<std::uint8_t>{9, 8, 7, 6, 5});
  return archive;
}

std::string serialize(const ColumnArchive& archive) {
  std::ostringstream out;
  EXPECT_TRUE(archive.save(out));
  return out.str();
}

std::optional<ColumnArchive> parse_prefix(const std::string& bytes,
                                          ArchiveReadReport& report) {
  std::istringstream in(bytes);
  return ColumnArchive::load_prefix(in, &report);
}

TEST(ColumnarV2Test, IntactArchiveLoadsCompleteWithCleanReport) {
  const std::string bytes = serialize(make_archive());
  ArchiveReadReport report;
  const auto loaded = parse_prefix(bytes, report);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(report.header_ok);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.sections_ok, 3u);
  EXPECT_EQ(report.crc_failures, 0u);
  EXPECT_FALSE(report.truncated_at.has_value());
  EXPECT_EQ(loaded->sections, make_archive().sections);
}

TEST(ColumnarV2Test, PayloadCorruptionFailsStrictAndEndsThePrefix) {
  std::string bytes = serialize(make_archive());
  // The beta payload is the final 5 bytes of the stream; damage one.
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);

  std::istringstream strict_in(bytes);
  EXPECT_FALSE(ColumnArchive::load(strict_in).has_value());

  ArchiveReadReport report;
  const auto loaded = parse_prefix(bytes, report);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(report.sections_ok, 2u);  // alpha + empty survive
  EXPECT_EQ(report.crc_failures, 1u);
  EXPECT_FALSE(report.complete);
  ASSERT_EQ(loaded->sections.size(), 2u);
  EXPECT_EQ(loaded->sections[0].name, "alpha");
  EXPECT_EQ(loaded->sections[1].name, "empty");
}

TEST(ColumnarV2Test, HeaderCorruptionIsFatalEvenForThePrefixLoader) {
  std::string bytes = serialize(make_archive());
  bytes[13] = static_cast<char>(bytes[13] ^ 0xff);  // inside the 3-byte header
  ArchiveReadReport report;
  EXPECT_FALSE(parse_prefix(bytes, report).has_value());
  EXPECT_EQ(report.crc_failures, 1u);
  EXPECT_FALSE(report.header_ok);
}

TEST(ColumnarV2Test, EveryTruncationYieldsAValidSectionPrefixOrNothing) {
  const std::string full = serialize(make_archive());
  const auto original = make_archive();
  for (std::size_t len = 0; len < full.size(); ++len) {
    // Strict load must reject every proper prefix...
    std::istringstream strict_in(full.substr(0, len));
    EXPECT_FALSE(ColumnArchive::load(strict_in).has_value()) << "len " << len;
    // ...while the prefix loader recovers whatever whole sections remain.
    ArchiveReadReport report;
    const auto loaded = parse_prefix(full.substr(0, len), report);
    if (!loaded.has_value()) continue;  // cut inside the magic/header zone
    EXPECT_FALSE(report.complete) << "len " << len;
    EXPECT_TRUE(report.truncated_at.has_value()) << "len " << len;
    ASSERT_LE(loaded->sections.size(), original.sections.size());
    for (std::size_t s = 0; s < loaded->sections.size(); ++s) {
      EXPECT_EQ(loaded->sections[s], original.sections[s])
          << "len " << len << " section " << s;
    }
  }
}

TEST(ColumnarV2Test, TruncationAtSectionCountYieldsHeaderOnlyArchive) {
  // A file torn right after the (verified) header — e.g. a recording killed
  // before its first section flushed — is a valid header-only archive for
  // the prefix loader, not a load failure. Bytes [19, 23) are the section
  // count for make_archive()'s 3-byte header.
  const std::string full = serialize(make_archive());
  const std::size_t header_zone = 8 + 4 + make_archive().header.size() + 4;
  for (std::size_t len = header_zone; len <= header_zone + 4; ++len) {
    ArchiveReadReport report;
    const auto loaded = parse_prefix(full.substr(0, len), report);
    ASSERT_TRUE(loaded.has_value()) << "len " << len;
    EXPECT_TRUE(report.header_ok) << "len " << len;
    EXPECT_FALSE(report.complete) << "len " << len;
    EXPECT_TRUE(loaded->sections.empty()) << "len " << len;
    EXPECT_EQ(loaded->header, make_archive().header) << "len " << len;
  }
  // Strict load still rejects all of them.
  for (std::size_t len = header_zone; len < header_zone + 4; ++len) {
    std::istringstream strict_in(full.substr(0, len));
    EXPECT_FALSE(ColumnArchive::load(strict_in).has_value()) << "len " << len;
  }
}

TEST(ColumnarV1Test, LegacyArchiveStillLoads) {
  // Hand-built GORCOLv1: magic, u32le header length, header, u32le section
  // count, then per section u8 name length, name, u64be payload length,
  // payload — no CRCs anywhere.
  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  for (const char c : std::string("GORCOLv1")) {
    w.u8(static_cast<std::uint8_t>(c));
  }
  const std::vector<std::uint8_t> header = {0xde, 0xad, 0x01};
  w.u32le(static_cast<std::uint32_t>(header.size()));
  w.bytes(header);
  w.u32le(1);  // one section
  const std::string name = "alpha";
  w.u8(static_cast<std::uint8_t>(name.size()));
  for (const char c : name) w.u8(static_cast<std::uint8_t>(c));
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  w.u64be(payload.size());
  w.bytes(payload);

  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  const auto loaded = ColumnArchive::load(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header, header);
  ASSERT_EQ(loaded->sections.size(), 1u);
  EXPECT_EQ(loaded->sections[0].name, "alpha");
  EXPECT_EQ(loaded->sections[0].bytes, payload);
}

TEST(ColumnarV2Test, WriterStillEmitsV2MagicWhenAsked) {
  ColumnArchive archive = make_archive();
  archive.version = 2;
  const std::string bytes = serialize(archive);
  EXPECT_EQ(bytes.substr(0, 8), "GORCOLv2");
}

TEST(ColumnarV2Test, SaveFileIsAtomicUnderAnInjectedShortWrite) {
  const std::string path = testing::TempDir() + "columnar_atomic.gorcol";
  const ColumnArchive original = make_archive();
  ASSERT_TRUE(original.save_file(path));

  ColumnArchive modified = make_archive();
  modified.sections[0] =
      ColumnArchive::Section("alpha", std::vector<std::uint8_t>(48, 0x11));
  {
    FaultPlan plan;
    plan.short_write_at = 20;  // tear the write mid-header-block
    const ScopedPlan guard(plan);
    EXPECT_FALSE(modified.save_file(path));
  }
  // The failed save left no temp litter and the destination untouched.
  EXPECT_FALSE(static_cast<bool>(std::ifstream(path + ".tmp")));
  const auto after_failure = ColumnArchive::load_file(path);
  ASSERT_TRUE(after_failure.has_value());
  EXPECT_EQ(after_failure->sections, original.sections);

  // With the plan cleared the same save goes through atomically.
  ASSERT_TRUE(modified.save_file(path));
  const auto after_success = ColumnArchive::load_file(path);
  ASSERT_TRUE(after_success.has_value());
  EXPECT_EQ(after_success->sections, modified.sections);
  std::remove(path.c_str());
}

TEST(ColumnarV2Test, InjectedPayloadCorruptionIsCaughtByTheCrc) {
  const std::string path = testing::TempDir() + "columnar_corrupt.gorcol";
  const ColumnArchive archive = make_archive();
  {
    FaultPlan plan;
    // The v3 alpha payload spans sink offsets [50, 82) for a 3-byte
    // header; flip a byte inside it. The write itself "succeeds" — only
    // the CRC can tell.
    plan.corrupt_at = 55;
    const ScopedPlan guard(plan);
    ASSERT_TRUE(archive.save_file(path));
  }
  EXPECT_FALSE(ColumnArchive::load_file(path).has_value());
  ArchiveReadReport report;
  const auto recovered = ColumnArchive::load_file_prefix(path, &report);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(report.crc_failures, 1u);
  EXPECT_LT(recovered->sections.size(), archive.sections.size());
  std::remove(path.c_str());
}

// ---- GORCOLv3: damage inside a block-compressed section degrades at
// block granularity, not section granularity ----

/// A tiny leading section plus a "bulk" one that compresses into several
/// 64 KiB blocks (runs of repeated bytes, so every block shrinks).
ColumnArchive make_blocky_archive() {
  ColumnArchive archive;
  archive.header = {0x33, 0x44};
  archive.sections.emplace_back("lead", std::vector<std::uint8_t>{1, 2, 3});
  std::vector<std::uint8_t> bulk(200 * 1024);
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    bulk[i] = static_cast<std::uint8_t>((i / 7) % 251);
  }
  archive.sections.emplace_back("bulk", bulk);
  return archive;
}

/// Where the bulk section's stored (compressed) bytes sit in the v3 file,
/// plus the stored size of its first block frame.
struct BulkLayout {
  std::string file;
  std::size_t payload_off = 0;
  std::size_t frame0 = 0;  ///< header + body bytes of block 0
  std::vector<std::uint8_t> raw;  ///< the original uncompressed payload
};

BulkLayout bulk_layout() {
  BulkLayout out;
  const ColumnArchive archive = make_blocky_archive();
  out.raw = archive.sections[1].bytes;
  out.file = serialize(archive);
  std::istringstream in(out.file);
  const auto loaded = ColumnArchive::load(in);
  EXPECT_TRUE(loaded.has_value());
  const auto* bulk = loaded->find("bulk");
  EXPECT_NE(bulk, nullptr);
  EXPECT_EQ(bulk->storage, ColumnArchive::SectionStorage::kBlocks);
  const std::string stored(bulk->bytes.begin(), bulk->bytes.end());
  out.payload_off = out.file.find(stored);
  EXPECT_NE(out.payload_off, std::string::npos);
  // Block frame: u32le raw_len, u32le body_len, u32le CRC, u8 method.
  out.frame0 = kBlockHeaderSize + *load_u32le(bulk->bytes, 4);
  EXPECT_GT(scan_blocks(bulk->bytes).blocks, 2u);
  return out;
}

/// The recovered partial section must replay exactly the first
/// `expect_raw` bytes of the original payload, then hit sticky failure
/// territory (at_end for the streaming reader).
void expect_prefix_reads(const ColumnArchive& archive,
                         const std::vector<std::uint8_t>& raw,
                         std::size_t expect_raw) {
  ColumnReader r = archive.column("bulk");
  for (std::size_t i = 0; i < expect_raw; ++i) {
    ASSERT_EQ(r.get_u8(), raw[i]) << i;
  }
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(ColumnarV3FaultTest, TornAtABlockBoundaryKeepsTheWholeBlocks) {
  const BulkLayout layout = bulk_layout();
  ArchiveReadReport report;
  const auto loaded = parse_prefix(
      layout.file.substr(0, layout.payload_off + layout.frame0), report);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(report.sections_ok, 1u);  // "lead"
  EXPECT_TRUE(report.partial_section);
  EXPECT_EQ(report.damaged_section, "bulk");
  ASSERT_TRUE(report.bad_block.has_value());
  EXPECT_EQ(*report.bad_block, 1u);
  ASSERT_TRUE(report.bad_block_offset.has_value());
  EXPECT_EQ(*report.bad_block_offset, layout.payload_off + layout.frame0);
  EXPECT_EQ(report.crc_failures, 0u);  // torn, not corrupt
  ASSERT_EQ(loaded->sections.size(), 2u);
  EXPECT_EQ(loaded->sections[1].raw_len, 64u * 1024u);
  expect_prefix_reads(*loaded, layout.raw, 64 * 1024);
}

TEST(ColumnarV3FaultTest, TornMidBlockKeepsTheIntactLeadingBlocks) {
  const BulkLayout layout = bulk_layout();
  // Cut 20 bytes into block 1's frame: block 0 survives, block 1 is gone.
  ArchiveReadReport report;
  const auto loaded = parse_prefix(
      layout.file.substr(0, layout.payload_off + layout.frame0 + 20), report);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(report.partial_section);
  EXPECT_EQ(report.damaged_section, "bulk");
  EXPECT_EQ(report.bad_block.value_or(99), 1u);
  EXPECT_EQ(report.bad_block_offset.value_or(0),
            layout.payload_off + layout.frame0);
  expect_prefix_reads(*loaded, layout.raw, 64 * 1024);

  // Torn inside block 0: nothing of the section survives, but the report
  // still pinpoints the damage.
  ArchiveReadReport none;
  const auto bare =
      parse_prefix(layout.file.substr(0, layout.payload_off + 5), none);
  ASSERT_TRUE(bare.has_value());
  EXPECT_FALSE(none.partial_section);
  EXPECT_EQ(none.damaged_section, "bulk");
  EXPECT_EQ(none.bad_block.value_or(99), 0u);
  EXPECT_EQ(none.bad_block_offset.value_or(1), layout.payload_off);
  ASSERT_EQ(bare->sections.size(), 1u);
  EXPECT_EQ(bare->sections[0].name, "lead");
}

TEST(ColumnarV3FaultTest, InjectedCorruptionInsideACompressedBlockBody) {
  // The corrupt@OFF fault now lands INSIDE a compressed block body: the
  // section CRC refuses the strict load, and the prefix loader narrows the
  // damage to block 1, keeping block 0's 64 KiB of payload.
  const BulkLayout layout = bulk_layout();
  const std::string path = testing::TempDir() + "columnar_blocky.gorcol";
  {
    FaultPlan plan;
    plan.corrupt_at =
        layout.payload_off + layout.frame0 + kBlockHeaderSize + 10;
    const ScopedPlan guard(plan);
    ASSERT_TRUE(make_blocky_archive().save_file(path));
  }
  EXPECT_FALSE(ColumnArchive::load_file(path).has_value());
  ArchiveReadReport report;
  const auto recovered = ColumnArchive::load_file_prefix(path, &report);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_GE(report.crc_failures, 1u);
  EXPECT_TRUE(report.partial_section);
  EXPECT_EQ(report.damaged_section, "bulk");
  EXPECT_EQ(report.bad_block.value_or(99), 1u);
  EXPECT_EQ(report.bad_block_offset.value_or(0),
            layout.payload_off + layout.frame0);
  expect_prefix_reads(*recovered, layout.raw, 64 * 1024);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gorilla::util
