// GORCOLv2 integrity contract: the CRC framing detects corruption the v1
// format silently swallowed, the prefix loader recovers the longest run of
// intact sections from a torn file, legacy v1 artifacts still load, and
// save_file is atomic under injected short writes — the destination either
// keeps its previous contents or becomes the complete new artifact.
#include "util/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/fault.h"

namespace gorilla::util {
namespace {

struct ScopedPlan {
  explicit ScopedPlan(const FaultPlan& plan) { FaultPlan::install(plan); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
  ~ScopedPlan() { FaultPlan::clear(); }
};

ColumnArchive make_archive() {
  ColumnArchive archive;
  archive.header = {0xde, 0xad, 0x01};
  std::vector<std::uint8_t> alpha(32);
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    alpha[i] = static_cast<std::uint8_t>(i * 7);
  }
  archive.sections.emplace_back("alpha", alpha);
  archive.sections.emplace_back("empty", std::vector<std::uint8_t>{});
  archive.sections.emplace_back("beta",
                                std::vector<std::uint8_t>{9, 8, 7, 6, 5});
  return archive;
}

std::string serialize(const ColumnArchive& archive) {
  std::ostringstream out;
  EXPECT_TRUE(archive.save(out));
  return out.str();
}

std::optional<ColumnArchive> parse_prefix(const std::string& bytes,
                                          ArchiveReadReport& report) {
  std::istringstream in(bytes);
  return ColumnArchive::load_prefix(in, &report);
}

TEST(ColumnarV2Test, IntactArchiveLoadsCompleteWithCleanReport) {
  const std::string bytes = serialize(make_archive());
  ArchiveReadReport report;
  const auto loaded = parse_prefix(bytes, report);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(report.header_ok);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.sections_ok, 3u);
  EXPECT_EQ(report.crc_failures, 0u);
  EXPECT_FALSE(report.truncated_at.has_value());
  EXPECT_EQ(loaded->sections, make_archive().sections);
}

TEST(ColumnarV2Test, PayloadCorruptionFailsStrictAndEndsThePrefix) {
  std::string bytes = serialize(make_archive());
  // The beta payload is the final 5 bytes of the stream; damage one.
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);

  std::istringstream strict_in(bytes);
  EXPECT_FALSE(ColumnArchive::load(strict_in).has_value());

  ArchiveReadReport report;
  const auto loaded = parse_prefix(bytes, report);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(report.sections_ok, 2u);  // alpha + empty survive
  EXPECT_EQ(report.crc_failures, 1u);
  EXPECT_FALSE(report.complete);
  ASSERT_EQ(loaded->sections.size(), 2u);
  EXPECT_EQ(loaded->sections[0].first, "alpha");
  EXPECT_EQ(loaded->sections[1].first, "empty");
}

TEST(ColumnarV2Test, HeaderCorruptionIsFatalEvenForThePrefixLoader) {
  std::string bytes = serialize(make_archive());
  bytes[13] = static_cast<char>(bytes[13] ^ 0xff);  // inside the 3-byte header
  ArchiveReadReport report;
  EXPECT_FALSE(parse_prefix(bytes, report).has_value());
  EXPECT_EQ(report.crc_failures, 1u);
  EXPECT_FALSE(report.header_ok);
}

TEST(ColumnarV2Test, EveryTruncationYieldsAValidSectionPrefixOrNothing) {
  const std::string full = serialize(make_archive());
  const auto original = make_archive();
  for (std::size_t len = 0; len < full.size(); ++len) {
    // Strict load must reject every proper prefix...
    std::istringstream strict_in(full.substr(0, len));
    EXPECT_FALSE(ColumnArchive::load(strict_in).has_value()) << "len " << len;
    // ...while the prefix loader recovers whatever whole sections remain.
    ArchiveReadReport report;
    const auto loaded = parse_prefix(full.substr(0, len), report);
    if (!loaded.has_value()) continue;  // cut inside the magic/header zone
    EXPECT_FALSE(report.complete) << "len " << len;
    EXPECT_TRUE(report.truncated_at.has_value()) << "len " << len;
    ASSERT_LE(loaded->sections.size(), original.sections.size());
    for (std::size_t s = 0; s < loaded->sections.size(); ++s) {
      EXPECT_EQ(loaded->sections[s], original.sections[s])
          << "len " << len << " section " << s;
    }
  }
}

TEST(ColumnarV2Test, TruncationAtSectionCountYieldsHeaderOnlyArchive) {
  // A file torn right after the (verified) header — e.g. a recording killed
  // before its first section flushed — is a valid header-only archive for
  // the prefix loader, not a load failure. Bytes [19, 23) are the section
  // count for make_archive()'s 3-byte header.
  const std::string full = serialize(make_archive());
  const std::size_t header_zone = 8 + 4 + make_archive().header.size() + 4;
  for (std::size_t len = header_zone; len <= header_zone + 4; ++len) {
    ArchiveReadReport report;
    const auto loaded = parse_prefix(full.substr(0, len), report);
    ASSERT_TRUE(loaded.has_value()) << "len " << len;
    EXPECT_TRUE(report.header_ok) << "len " << len;
    EXPECT_FALSE(report.complete) << "len " << len;
    EXPECT_TRUE(loaded->sections.empty()) << "len " << len;
    EXPECT_EQ(loaded->header, make_archive().header) << "len " << len;
  }
  // Strict load still rejects all of them.
  for (std::size_t len = header_zone; len < header_zone + 4; ++len) {
    std::istringstream strict_in(full.substr(0, len));
    EXPECT_FALSE(ColumnArchive::load(strict_in).has_value()) << "len " << len;
  }
}

TEST(ColumnarV1Test, LegacyArchiveStillLoads) {
  // Hand-built GORCOLv1: magic, u32le header length, header, u32le section
  // count, then per section u8 name length, name, u64be payload length,
  // payload — no CRCs anywhere.
  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  for (const char c : std::string("GORCOLv1")) {
    w.u8(static_cast<std::uint8_t>(c));
  }
  const std::vector<std::uint8_t> header = {0xde, 0xad, 0x01};
  w.u32le(static_cast<std::uint32_t>(header.size()));
  w.bytes(header);
  w.u32le(1);  // one section
  const std::string name = "alpha";
  w.u8(static_cast<std::uint8_t>(name.size()));
  for (const char c : name) w.u8(static_cast<std::uint8_t>(c));
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  w.u64be(payload.size());
  w.bytes(payload);

  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  const auto loaded = ColumnArchive::load(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header, header);
  ASSERT_EQ(loaded->sections.size(), 1u);
  EXPECT_EQ(loaded->sections[0].first, "alpha");
  EXPECT_EQ(loaded->sections[0].second, payload);
}

TEST(ColumnarV2Test, WriterEmitsV2Magic) {
  const std::string bytes = serialize(make_archive());
  EXPECT_EQ(bytes.substr(0, 8), "GORCOLv2");
}

TEST(ColumnarV2Test, SaveFileIsAtomicUnderAnInjectedShortWrite) {
  const std::string path = testing::TempDir() + "columnar_atomic.gorcol";
  const ColumnArchive original = make_archive();
  ASSERT_TRUE(original.save_file(path));

  ColumnArchive modified = make_archive();
  modified.sections[0].second.assign(64, 0x11);
  {
    FaultPlan plan;
    plan.short_write_at = 20;  // tear the write mid-header-block
    const ScopedPlan guard(plan);
    EXPECT_FALSE(modified.save_file(path));
  }
  // The failed save left no temp litter and the destination untouched.
  EXPECT_FALSE(static_cast<bool>(std::ifstream(path + ".tmp")));
  const auto after_failure = ColumnArchive::load_file(path);
  ASSERT_TRUE(after_failure.has_value());
  EXPECT_EQ(after_failure->sections, original.sections);

  // With the plan cleared the same save goes through atomically.
  ASSERT_TRUE(modified.save_file(path));
  const auto after_success = ColumnArchive::load_file(path);
  ASSERT_TRUE(after_success.has_value());
  EXPECT_EQ(after_success->sections, modified.sections);
  std::remove(path.c_str());
}

TEST(ColumnarV2Test, InjectedPayloadCorruptionIsCaughtByTheCrc) {
  const std::string path = testing::TempDir() + "columnar_corrupt.gorcol";
  const ColumnArchive archive = make_archive();
  {
    FaultPlan plan;
    // The alpha payload spans sink offsets [41, 73) for a 3-byte header;
    // flip a byte inside it. The write itself "succeeds" — only the CRC
    // can tell.
    plan.corrupt_at = 50;
    const ScopedPlan guard(plan);
    ASSERT_TRUE(archive.save_file(path));
  }
  EXPECT_FALSE(ColumnArchive::load_file(path).has_value());
  ArchiveReadReport report;
  const auto recovered = ColumnArchive::load_file_prefix(path, &report);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(report.crc_failures, 1u);
  EXPECT_LT(recovered->sections.size(), archive.sections.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gorilla::util
