#include "util/arena.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mem_stats.h"

namespace gorilla::util {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(nullptr, 1024);
  auto* a = static_cast<std::uint8_t*>(arena.allocate(100, 8));
  auto* b = static_cast<std::uint8_t*>(arena.allocate(100, 8));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  // Disjoint: writing one range never disturbs the other.
  for (int i = 0; i < 100; ++i) a[i] = 0xaa;
  for (int i = 0; i < 100; ++i) b[i] = 0x55;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0xaa);
}

TEST(ArenaTest, RefillsOnBlockExhaustionAndHonorsOversize) {
  Arena arena(nullptr, 256);
  EXPECT_EQ(arena.block_count(), 0u);
  (void)arena.allocate(200, 8);
  EXPECT_EQ(arena.block_count(), 1u);
  (void)arena.allocate(200, 8);  // does not fit the remainder
  EXPECT_EQ(arena.block_count(), 2u);
  // An oversize request gets its own dedicated block.
  (void)arena.allocate(10000, 8);
  EXPECT_EQ(arena.block_count(), 3u);
  EXPECT_GE(arena.allocated_bytes(), 256u + 256u + 10000u);
}

TEST(ArenaTest, AllocateArrayValueInitializes) {
  Arena arena;
  const std::uint64_t* xs = arena.allocate_array<std::uint64_t>(512);
  for (int i = 0; i < 512; ++i) EXPECT_EQ(xs[i], 0u);
}

TEST(ArenaTest, ChargesAndReleasesStatsCounter) {
  MemStats::Counter counter;
  {
    Arena arena(&counter, 4096);
    (void)arena.allocate(100, 8);
    EXPECT_EQ(counter.live(), arena.allocated_bytes());
    EXPECT_GE(counter.peak(), counter.live());
  }
  EXPECT_EQ(counter.live(), 0u);  // destruction returns every block
  EXPECT_GE(counter.peak(), 4096u);
}

TEST(ArenaTest, RecycledBlockIsReusedExactSize) {
  Arena arena(nullptr, 4096);
  void* a = arena.allocate(96, 8);
  (void)arena.allocate(96, 8);  // keeps `a` off the bump frontier
  const std::size_t before = arena.allocated_bytes();
  arena.recycle(a, 96);
  void* b = arena.allocate(96, 8);
  EXPECT_EQ(b, a);  // served from the free list, not the bump pointer
  EXPECT_EQ(arena.allocated_bytes(), before);
}

TEST(ArenaTest, BestFitSplitsLargerFreeBlock) {
  Arena arena(nullptr, 4096);
  void* big = arena.allocate(256, 8);
  (void)arena.allocate(16, 8);
  arena.recycle(big, 256);
  // No exact 64-class block exists: the 256 splits, front first.
  void* head = arena.allocate(64, 8);
  EXPECT_EQ(head, big);
  // The 192-byte remainder went back on a free list and serves the next
  // fits-inside request.
  void* tail = arena.allocate(192, 8);
  EXPECT_EQ(tail, static_cast<std::byte*>(big) + 64);
}

TEST(ArenaTest, RecycledStorageIsReinitializedByAllocateArray) {
  Arena arena;
  std::uint64_t* xs = arena.allocate_array<std::uint64_t>(32);
  for (int i = 0; i < 32; ++i) xs[i] = 0xdeadbeefu;
  arena.recycle_array(xs, 32);
  const std::uint64_t* ys = arena.allocate_array<std::uint64_t>(32);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ys[i], 0u);
}

TEST(ArenaTest, RequestCounterTracksOutstandingBytes) {
  MemStats::Counter blocks;
  MemStats::Counter requests;
  {
    Arena arena(&blocks, 4096, &requests);
    void* a = arena.allocate(100, 8);  // canonical 112
    EXPECT_EQ(requests.live(), 112u);
    arena.recycle(a, 100);
    EXPECT_EQ(requests.live(), 0u);
    (void)arena.allocate(32, 8);
    EXPECT_EQ(requests.live(), 32u);
    EXPECT_EQ(blocks.live(), 4096u);  // block counter is coarser
  }
  // Destruction returns blocks and zeroes any outstanding requests.
  EXPECT_EQ(blocks.live(), 0u);
  EXPECT_EQ(requests.live(), 0u);
}

TEST(ArenaTest, ConcurrentAllocationsDoNotOverlap) {
  Arena arena(nullptr, 1 << 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::uint32_t*> ptrs(kThreads * kPerThread);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::uint32_t* p = arena.allocate_array<std::uint32_t>(16);
        p[0] = static_cast<std::uint32_t>(t * kPerThread + i);
        ptrs[static_cast<std::size_t>(t * kPerThread + i)] = p;
      }
    });
  }
  for (auto& w : workers) w.join();
  // Every slot still holds its writer's tag => no two allocations aliased.
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    ASSERT_NE(ptrs[i], nullptr);
    EXPECT_EQ(ptrs[i][0], static_cast<std::uint32_t>(i));
  }
}

}  // namespace
}  // namespace gorilla::util
