#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace gorilla::net {
namespace {

TEST(Ipv4AddressTest, OctetConstruction) {
  const Ipv4Address a(192, 168, 1, 42);
  EXPECT_EQ(a.value(), 0xc0a8012au);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(1), 168);
  EXPECT_EQ(a.octet(2), 1);
  EXPECT_EQ(a.octet(3), 42);
}

TEST(Ipv4AddressTest, Ordering) {
  EXPECT_LT(Ipv4Address(1, 0, 0, 1), Ipv4Address(1, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
  EXPECT_EQ(Ipv4Address(5, 6, 7, 8), Ipv4Address{0x05060708u});
}

TEST(Ipv4AddressTest, ToString) {
  EXPECT_EQ(to_string(Ipv4Address(10, 0, 0, 1)), "10.0.0.1");
  EXPECT_EQ(to_string(Ipv4Address(255, 255, 255, 255)), "255.255.255.255");
  EXPECT_EQ(to_string(Ipv4Address{0u}), "0.0.0.0");
}

TEST(Ipv4AddressTest, ParseValid) {
  EXPECT_EQ(parse_ipv4("10.20.30.40"), Ipv4Address(10, 20, 30, 40));
  EXPECT_EQ(parse_ipv4("0.0.0.0"), Ipv4Address{0u});
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ipv4(""));
  EXPECT_FALSE(parse_ipv4("1.2.3"));
  EXPECT_FALSE(parse_ipv4("256.0.0.1"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4x"));
  EXPECT_FALSE(parse_ipv4("a.b.c.d"));
}

TEST(Ipv4AddressTest, ParseToStringRoundTrip) {
  const Ipv4Address a(172, 16, 254, 3);
  EXPECT_EQ(parse_ipv4(to_string(a)), a);
}

TEST(PrefixTest, CanonicalizesHostBits) {
  const Prefix p(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(p.base(), Ipv4Address(10, 1, 0, 0));
  EXPECT_EQ(p.length(), 16);
}

TEST(PrefixTest, Contains) {
  const Prefix p(Ipv4Address(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 255, 255)));
  EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 2, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(11, 1, 0, 0)));
}

TEST(PrefixTest, ZeroLengthContainsEverything) {
  const Prefix all(Ipv4Address{0u}, 0);
  EXPECT_TRUE(all.contains(Ipv4Address(1, 2, 3, 4)));
  EXPECT_TRUE(all.contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
}

TEST(PrefixTest, ContainsPrefix) {
  const Prefix p16(Ipv4Address(10, 1, 0, 0), 16);
  const Prefix p24(Ipv4Address(10, 1, 7, 0), 24);
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
}

TEST(PrefixTest, SizeAndAt) {
  const Prefix p(Ipv4Address(10, 1, 2, 0), 24);
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.at(0), Ipv4Address(10, 1, 2, 0));
  EXPECT_EQ(p.at(255), Ipv4Address(10, 1, 2, 255));
}

TEST(PrefixTest, Slash32IsSingleHost) {
  const Prefix p(Ipv4Address(8, 8, 8, 8), 32);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.contains(Ipv4Address(8, 8, 8, 8)));
  EXPECT_FALSE(p.contains(Ipv4Address(8, 8, 8, 9)));
}

TEST(PrefixTest, ToString) {
  EXPECT_EQ(to_string(Prefix(Ipv4Address(10, 0, 0, 0), 8)), "10.0.0.0/8");
}

TEST(PrefixTest, ParseValid) {
  const auto p = parse_prefix("192.168.0.0/16");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->base(), Ipv4Address(192, 168, 0, 0));
  EXPECT_EQ(p->length(), 16);
}

TEST(PrefixTest, ParseCanonicalizes) {
  const auto p = parse_prefix("192.168.77.5/16");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->base(), Ipv4Address(192, 168, 0, 0));
}

TEST(PrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_prefix("192.168.0.0"));
  EXPECT_FALSE(parse_prefix("192.168.0.0/33"));
  EXPECT_FALSE(parse_prefix("192.168.0.0/-1"));
  EXPECT_FALSE(parse_prefix("bogus/8"));
  EXPECT_FALSE(parse_prefix("1.2.3.4/x"));
}

TEST(PrefixTest, Slash24Of) {
  EXPECT_EQ(slash24_of(Ipv4Address(10, 1, 2, 200)),
            Prefix(Ipv4Address(10, 1, 2, 0), 24));
}

}  // namespace
}  // namespace gorilla::net
