#include "net/pcap.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ntp/mode7.h"

namespace gorilla::net {
namespace {

UdpPacket sample_packet(std::uint32_t src = 0x0a000001,
                        std::uint32_t dst = 0xc0a80101) {
  UdpPacket p;
  p.src = Ipv4Address{src};
  p.dst = Ipv4Address{dst};
  p.src_port = 57915;
  p.dst_port = kNtpPort;
  p.ttl = 54;
  p.timestamp = 12345;
  p.payload = ntp::serialize(ntp::make_monlist_request());
  return p;
}

TEST(EthernetFrameTest, RoundTrip) {
  const auto original = sample_packet();
  const auto frame = to_ethernet_frame(original);
  const auto parsed = from_ethernet_frame(frame);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src, original.src);
  EXPECT_EQ(parsed->dst, original.dst);
  EXPECT_EQ(parsed->src_port, original.src_port);
  EXPECT_EQ(parsed->dst_port, original.dst_port);
  EXPECT_EQ(parsed->ttl, original.ttl);
  EXPECT_EQ(parsed->payload, original.payload);
}

TEST(EthernetFrameTest, FrameLayout) {
  const auto frame = to_ethernet_frame(sample_packet());
  // 14 Ethernet + 20 IP + 8 UDP + 48 payload.
  EXPECT_EQ(frame.size(), 14u + 20u + 8u + 48u);
  EXPECT_EQ(frame[12], 0x08);  // EtherType IPv4
  EXPECT_EQ(frame[13], 0x00);
  EXPECT_EQ(frame[14] >> 4, 4);  // IP version
  EXPECT_EQ(frame[14 + 9], 17);  // protocol UDP
}

TEST(EthernetFrameTest, IpChecksumValidates) {
  const auto frame = to_ethernet_frame(sample_packet());
  // Checksum over the IP header (including the checksum field) must be 0.
  EXPECT_EQ(internet_checksum(
                std::span<const std::uint8_t>(frame).subspan(14, 20)),
            0u);
}

TEST(EthernetFrameTest, RejectsNonIpv4) {
  auto frame = to_ethernet_frame(sample_packet());
  frame[12] = 0x86;  // EtherType IPv6
  frame[13] = 0xdd;
  EXPECT_FALSE(from_ethernet_frame(frame));
}

TEST(EthernetFrameTest, RejectsNonUdp) {
  auto frame = to_ethernet_frame(sample_packet());
  frame[14 + 9] = 6;  // TCP
  EXPECT_FALSE(from_ethernet_frame(frame));
}

TEST(EthernetFrameTest, RejectsTruncated) {
  const auto frame = to_ethernet_frame(sample_packet());
  EXPECT_FALSE(from_ethernet_frame(
      std::span<const std::uint8_t>(frame).subspan(0, 30)));
}

TEST(PcapTest, HeaderWritten) {
  std::ostringstream out;
  PcapWriter writer(out);
  const std::string bytes = out.str();
  ASSERT_EQ(bytes.size(), 24u);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]), 0xd4);  // magic LE
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[3]), 0xa1);
}

TEST(PcapTest, WriteReadRoundTrip) {
  std::stringstream stream;
  PcapWriter writer(stream);
  std::vector<UdpPacket> sent;
  for (std::uint32_t i = 0; i < 20; ++i) {
    auto p = sample_packet(0x0a000001 + i, 0xc0a80101 + i);
    p.timestamp = 1000 + i;
    writer.write(p);
    sent.push_back(std::move(p));
  }
  EXPECT_EQ(writer.packets_written(), 20u);

  PcapReader reader(stream);
  ASSERT_TRUE(reader.valid());
  for (const auto& expected : sent) {
    const auto got = reader.next();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->src, expected.src);
    EXPECT_EQ(got->dst, expected.dst);
    EXPECT_EQ(got->timestamp, expected.timestamp);
    EXPECT_EQ(got->payload, expected.payload);
  }
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.packets_read(), 20u);
  EXPECT_EQ(reader.records_skipped(), 0u);
}

TEST(PcapTest, ReaderRejectsGarbage) {
  std::istringstream in("this is not a pcap file at all............");
  PcapReader reader(in);
  EXPECT_FALSE(reader.valid());
  EXPECT_FALSE(reader.next());
}

TEST(PcapTest, ReaderStopsOnTruncatedRecord) {
  std::stringstream stream;
  PcapWriter writer(stream);
  writer.write(sample_packet());
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 10);  // chop the last record
  std::istringstream in(bytes);
  PcapReader reader(in);
  ASSERT_TRUE(reader.valid());
  EXPECT_FALSE(reader.next());
}

TEST(PcapTest, EmptyPayloadPacket) {
  std::stringstream stream;
  PcapWriter writer(stream);
  UdpPacket p = sample_packet();
  p.payload.clear();
  writer.write(p);
  PcapReader reader(stream);
  const auto got = reader.next();
  ASSERT_TRUE(got);
  EXPECT_TRUE(got->payload.empty());
}

}  // namespace
}  // namespace gorilla::net
