#include "net/ipv6.h"

#include <gtest/gtest.h>

namespace gorilla::net {
namespace {

Ipv6Address from_groups(std::array<std::uint16_t, 8> groups) {
  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i * 2] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[i * 2 + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return Ipv6Address{bytes};
}

TEST(Ipv6AddressTest, DefaultIsUnspecified) {
  EXPECT_EQ(to_string(Ipv6Address{}), "::");
}

TEST(Ipv6AddressTest, FormatsCanonically) {
  EXPECT_EQ(to_string(from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 1})),
            "2001:db8::1");
  EXPECT_EQ(to_string(from_groups({0x2001, 0xdb8, 1, 2, 3, 4, 5, 6})),
            "2001:db8:1:2:3:4:5:6");
  EXPECT_EQ(to_string(from_groups({0, 0, 0, 0, 0, 0, 0, 1})), "::1");
  EXPECT_EQ(to_string(from_groups({0xfe80, 0, 0, 0, 0, 0, 0, 0})), "fe80::");
}

TEST(Ipv6AddressTest, CompressesLongestZeroRun) {
  // Two runs of zeros: the longer one is compressed.
  EXPECT_EQ(to_string(from_groups({0x2001, 0, 0, 1, 0, 0, 0, 1})),
            "2001:0:0:1::1");
}

TEST(Ipv6AddressTest, ParseValid) {
  EXPECT_EQ(parse_ipv6("2001:db8::1"),
            from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 1}));
  EXPECT_EQ(parse_ipv6("::"), Ipv6Address{});
  EXPECT_EQ(parse_ipv6("::1"), from_groups({0, 0, 0, 0, 0, 0, 0, 1}));
  EXPECT_EQ(parse_ipv6("fe80::"), from_groups({0xfe80, 0, 0, 0, 0, 0, 0, 0}));
  EXPECT_EQ(parse_ipv6("2001:DB8::A"),
            from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 0xa}));
  EXPECT_EQ(parse_ipv6("1:2:3:4:5:6:7:8"),
            from_groups({1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Ipv6AddressTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ipv6(""));
  EXPECT_FALSE(parse_ipv6("1:2:3"));
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(parse_ipv6("2001:db8::1::2"));
  EXPECT_FALSE(parse_ipv6("2001:db8::12345"));
  EXPECT_FALSE(parse_ipv6("g::1"));
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:"));
}

TEST(Ipv6AddressTest, RoundTrip) {
  for (const char* text : {"2001:db8::1", "::1", "fe80::1:2:3",
                           "2620:0:e00::", "1:2:3:4:5:6:7:8"}) {
    const auto parsed = parse_ipv6(text);
    ASSERT_TRUE(parsed) << text;
    EXPECT_EQ(to_string(*parsed), text);
  }
}

TEST(Ipv6PrefixTest, CanonicalizesHostBits) {
  const auto addr = *parse_ipv6("2001:db8::ff");
  const Ipv6Prefix p(addr, 32);
  EXPECT_EQ(to_string(p), "2001:db8::/32");
}

TEST(Ipv6PrefixTest, Contains) {
  const auto p = *parse_ipv6_prefix("2001:db8::/32");
  EXPECT_TRUE(p.contains(*parse_ipv6("2001:db8::1")));
  EXPECT_TRUE(p.contains(*parse_ipv6("2001:db8:ffff::")));
  EXPECT_FALSE(p.contains(*parse_ipv6("2001:db9::")));
}

TEST(Ipv6PrefixTest, ZeroLengthContainsAll) {
  const Ipv6Prefix everything(Ipv6Address{}, 0);
  EXPECT_TRUE(everything.contains(*parse_ipv6("ffff::1")));
}

TEST(Ipv6PrefixTest, NonOctetAlignedLength) {
  const auto p = *parse_ipv6_prefix("2620::/13");
  EXPECT_TRUE(p.contains(*parse_ipv6("2620::1")));
  EXPECT_TRUE(p.contains(*parse_ipv6("2627:ffff::")));
  EXPECT_FALSE(p.contains(*parse_ipv6("2628::")));
}

TEST(Ipv6PrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_ipv6_prefix("2001:db8::"));
  EXPECT_FALSE(parse_ipv6_prefix("2001:db8::/129"));
  EXPECT_FALSE(parse_ipv6_prefix("bogus/64"));
}

}  // namespace
}  // namespace gorilla::net
