#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gorilla::net {
namespace {

TEST(PrefixTrieTest, EmptyTrieHasNoMatches) {
  PrefixTrie<int> trie;
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_FALSE(trie.lookup(Ipv4Address(1, 2, 3, 4)));
}

TEST(PrefixTrieTest, ExactInsertLookup) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 42);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Address(10, 200, 3, 4)), 42);
  EXPECT_FALSE(trie.lookup(Ipv4Address(11, 0, 0, 0)));
}

TEST(PrefixTrieTest, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix(Ipv4Address(10, 1, 0, 0), 16), 2);
  trie.insert(Prefix(Ipv4Address(10, 1, 2, 0), 24), 3);
  EXPECT_EQ(trie.lookup(Ipv4Address(10, 1, 2, 3)), 3);
  EXPECT_EQ(trie.lookup(Ipv4Address(10, 1, 9, 9)), 2);
  EXPECT_EQ(trie.lookup(Ipv4Address(10, 9, 9, 9)), 1);
}

TEST(PrefixTrieTest, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address{0u}, 0), 99);
  EXPECT_EQ(trie.lookup(Ipv4Address(1, 2, 3, 4)), 99);
  EXPECT_EQ(trie.lookup(Ipv4Address(255, 0, 0, 1)), 99);
}

TEST(PrefixTrieTest, ReplaceKeepsSize) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Address(10, 0, 0, 1)), 2);
}

TEST(PrefixTrieTest, HostRoute) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(8, 8, 8, 8), 32), 7);
  EXPECT_EQ(trie.lookup(Ipv4Address(8, 8, 8, 8)), 7);
  EXPECT_FALSE(trie.lookup(Ipv4Address(8, 8, 8, 9)));
}

TEST(PrefixTrieTest, LookupEntryReportsPrefixLength) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix(Ipv4Address(10, 1, 0, 0), 16), 2);
  const auto entry = trie.lookup_entry(Ipv4Address(10, 1, 2, 3));
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->first.length(), 16);
  EXPECT_EQ(entry->second, 2);
}

TEST(PrefixTrieTest, ExactRequiresExactPrefix) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 1);
  EXPECT_EQ(trie.exact(Prefix(Ipv4Address(10, 0, 0, 0), 8)), 1);
  EXPECT_FALSE(trie.exact(Prefix(Ipv4Address(10, 0, 0, 0), 9)));
  EXPECT_FALSE(trie.exact(Prefix(Ipv4Address(10, 0, 0, 0), 7)));
}

TEST(PrefixTrieTest, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 1, 0, 0), 16), 2);
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 8), 1);
  trie.insert(Prefix(Ipv4Address(192, 168, 0, 0), 16), 3);
  std::vector<std::pair<Prefix, int>> visited;
  trie.for_each([&](const Prefix& p, int v) { visited.emplace_back(p, v); });
  ASSERT_EQ(visited.size(), 3u);
  // DFS order: parent 10/8 before child 10.1/16, both before 192.168/16.
  EXPECT_EQ(visited[0].second, 1);
  EXPECT_EQ(visited[1].second, 2);
  EXPECT_EQ(visited[2].second, 3);
}

TEST(PrefixTrieTest, DisjointSiblings) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(10, 0, 0, 0), 9), 1);   // 10.0-127
  trie.insert(Prefix(Ipv4Address(10, 128, 0, 0), 9), 2); // 10.128-255
  EXPECT_EQ(trie.lookup(Ipv4Address(10, 5, 0, 0)), 1);
  EXPECT_EQ(trie.lookup(Ipv4Address(10, 200, 0, 0)), 2);
}

// Property test: trie lookups agree with a linear scan over random data.
TEST(PrefixTrieTest, AgreesWithLinearScan) {
  util::Rng rng(12345);
  PrefixTrie<std::size_t> trie;
  std::vector<Prefix> prefixes;
  for (std::size_t i = 0; i < 500; ++i) {
    const int len = static_cast<int>(rng.uniform_int(4, 28));
    const Prefix p(Ipv4Address{static_cast<std::uint32_t>(rng.next())}, len);
    prefixes.push_back(p);
    trie.insert(p, i);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const Ipv4Address addr{static_cast<std::uint32_t>(rng.next())};
    // Linear: the longest matching prefix, latest insertion wins ties.
    std::optional<std::size_t> best;
    int best_len = -1;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      if (prefixes[i].contains(addr) &&
          (prefixes[i].length() > best_len ||
           (prefixes[i].length() == best_len))) {
        // Equal-length duplicates: the trie keeps the last inserted value.
        if (prefixes[i].length() >= best_len) {
          best = i;
          best_len = prefixes[i].length();
        }
      }
    }
    const auto got = trie.lookup(addr);
    ASSERT_EQ(got.has_value(), best.has_value()) << to_string(addr);
    if (best) {
      // Compare by prefix (length + base), not index, because duplicate
      // prefixes overwrite.
      EXPECT_EQ(prefixes[*got].length(), best_len);
      EXPECT_TRUE(prefixes[*got].contains(addr));
    }
  }
}

}  // namespace
}  // namespace gorilla::net
