#include "net/packet.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace gorilla::net {
namespace {

TEST(UdpPacketTest, IpLengthIncludesHeaders) {
  UdpPacket p;
  p.payload.assign(100, 0);
  EXPECT_EQ(p.ip_length(), 128u);
}

TEST(UdpPacketTest, OnWireBytesMatchesModel) {
  UdpPacket p;
  p.payload.assign(48, 0);
  EXPECT_EQ(p.on_wire_bytes(), on_wire_bytes_for_udp(48));
  p.payload.clear();
  EXPECT_EQ(p.on_wire_bytes(), 84u);
}

TEST(ChecksumTest, KnownVector) {
  // RFC 1071 example-style: checksum of zero data is 0xffff.
  const std::vector<std::uint8_t> zeros(8, 0);
  EXPECT_EQ(internet_checksum(zeros), 0xffff);
}

TEST(ChecksumTest, ComplementsToZero) {
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x54, 0xa6, 0xf2};
  const std::uint16_t sum = internet_checksum(data);
  // Appending the checksum makes the whole buffer sum to zero (i.e. its
  // checksum is 0).
  data.push_back(static_cast<std::uint8_t>(sum >> 8));
  data.push_back(static_cast<std::uint8_t>(sum));
  EXPECT_EQ(internet_checksum(data), 0u);
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> odd = {0x01, 0x02, 0x03};
  const std::vector<std::uint8_t> even = {0x01, 0x02, 0x03, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(ByteOrderTest, WriterReaderU16RoundTrip) {
  std::vector<std::uint8_t> buf;
  util::ByteWriter w(buf);
  w.u16be(0xbeef);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xbe);  // big-endian on the wire
  EXPECT_EQ(util::load_u16be(buf, 0), 0xbeef);
}

TEST(ByteOrderTest, WriterReaderU32RoundTrip) {
  std::vector<std::uint8_t> buf;
  util::ByteWriter w(buf);
  w.u32be(0xdeadbeef);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0xde);
  EXPECT_EQ(util::load_u32be(buf, 0), 0xdeadbeefu);
}

TEST(ByteOrderTest, LoadsRefuseTruncation) {
  const std::vector<std::uint8_t> buf = {1, 2, 3};
  EXPECT_EQ(util::load_u32be(buf, 0), std::nullopt);
  EXPECT_EQ(util::load_u16be(buf, 2), std::nullopt);
  EXPECT_EQ(util::load_u16be(buf, 1), 0x0203);
}

TEST(WellKnownPortsTest, Values) {
  EXPECT_EQ(kNtpPort, 123);
  EXPECT_EQ(kDnsPort, 53);
}

}  // namespace
}  // namespace gorilla::net
