#include "net/ethernet.h"

#include <gtest/gtest.h>

namespace gorilla::net {
namespace {

TEST(EthernetTest, MinimalQueryIs84Bytes) {
  // The paper's BAF denominator (§3.2): 64-byte minimum frame + 8-byte
  // preamble + 12-byte inter-packet gap.
  EXPECT_EQ(kMinOnWireBytes, 84u);
  EXPECT_EQ(on_wire_bytes_for_ip(0), 84u);
}

TEST(EthernetTest, SmallPacketsPadToMinimum) {
  // Anything whose frame would be under 64 bytes pads up: IP datagrams of
  // up to 46 bytes all cost 84 on-wire bytes.
  EXPECT_EQ(on_wire_bytes_for_ip(28), 84u);   // empty UDP datagram
  EXPECT_EQ(on_wire_bytes_for_ip(46), 84u);   // exactly at the boundary
  EXPECT_EQ(on_wire_bytes_for_ip(47), 85u);   // one past it
}

TEST(EthernetTest, LargePacketsScaleLinearly) {
  EXPECT_EQ(on_wire_bytes_for_ip(1000), 1000 + 14 + 4 + 8 + 12);
  EXPECT_EQ(on_wire_bytes_for_ip(1500), 1538u);  // classic full-MTU frame
}

TEST(EthernetTest, UdpHelperAddsHeaders) {
  EXPECT_EQ(on_wire_bytes_for_udp(0), on_wire_bytes_for_ip(28));
  EXPECT_EQ(on_wire_bytes_for_udp(100), on_wire_bytes_for_ip(128));
}

TEST(EthernetTest, MonlistQueryOnWireCost) {
  // The plain 48-byte mode 7 request: IP datagram 76 bytes -> frame 94 ->
  // 114 on wire.
  EXPECT_EQ(on_wire_bytes_for_udp(48), 114u);
}

TEST(EthernetTest, MonotoneInPayload) {
  std::uint64_t prev = 0;
  for (std::uint64_t payload = 0; payload < 2000; payload += 7) {
    const auto w = on_wire_bytes_for_udp(payload);
    EXPECT_GE(w, prev);
    prev = w;
  }
}

}  // namespace
}  // namespace gorilla::net
