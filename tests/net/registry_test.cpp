#include "net/registry.h"

#include <gtest/gtest.h>

#include <set>

namespace gorilla::net {
namespace {

RegistryConfig small_config() {
  RegistryConfig cfg;
  cfg.num_ases = 500;
  return cfg;
}

class RegistryTest : public ::testing::Test {
 protected:
  Registry registry_{small_config()};
};

TEST_F(RegistryTest, BuildsRequestedAsCount) {
  // 500 generated + 5 named analogues.
  EXPECT_EQ(registry_.ases().size(), 505u);
}

TEST_F(RegistryTest, EveryAsHasAtLeastOneBlock) {
  for (const auto& as_info : registry_.ases()) {
    EXPECT_FALSE(as_info.block_indices.empty()) << as_info.name;
  }
}

TEST_F(RegistryTest, BlocksDoNotOverlap) {
  // Sequential aligned allocation must produce disjoint prefixes.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  for (const auto& block : registry_.blocks()) {
    const std::uint64_t start = block.prefix.base().value();
    ranges.emplace_back(start, start + block.prefix.size());
  }
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first);
  }
}

TEST_F(RegistryTest, DarknetDisjointFromAllBlocks) {
  const auto& darknet = registry_.named().darknet;
  EXPECT_EQ(darknet.length(), 8);
  for (const auto& block : registry_.blocks()) {
    EXPECT_FALSE(darknet.contains(block.prefix))
        << to_string(block.prefix);
  }
}

TEST_F(RegistryTest, AsnLookupRoundTrip) {
  for (const auto& block : registry_.blocks()) {
    EXPECT_EQ(registry_.asn_of(block.prefix.base()), block.asn);
    EXPECT_EQ(registry_.asn_of(block.prefix.at(block.prefix.size() - 1)),
              block.asn);
  }
}

TEST_F(RegistryTest, UnallocatedSpaceHasNoAsn) {
  EXPECT_FALSE(registry_.asn_of(registry_.named().darknet.base()));
  EXPECT_FALSE(registry_.asn_of(Ipv4Address(0, 0, 0, 1)));
}

TEST_F(RegistryTest, NamedNetworksResolve) {
  const auto& named = registry_.named();
  EXPECT_EQ(registry_.asn_of(named.merit_space.base()), named.merit);
  EXPECT_EQ(registry_.asn_of(named.csu_space.base()), named.csu);
  EXPECT_EQ(registry_.as_info(named.ovh_analogue).category,
            AsCategory::kHosting);
  EXPECT_EQ(registry_.as_info(named.merit).category,
            AsCategory::kRegionalIsp);
}

TEST_F(RegistryTest, CsuInsideFrgpSpace) {
  const auto& named = registry_.named();
  EXPECT_TRUE(named.frgp_space.contains(named.csu_space));
  // But CSU is its own origin AS.
  EXPECT_NE(named.csu, named.frgp);
}

TEST_F(RegistryTest, ContinentLookup) {
  const auto& named = registry_.named();
  EXPECT_EQ(registry_.continent_of(named.merit_space.base()),
            Continent::kNorthAmerica);
  EXPECT_EQ(registry_.continent_of(named.ovh_analogue == 0
                                       ? Ipv4Address{0}
                                       : registry_
                                             .blocks()[registry_
                                                           .as_info(named.ovh_analogue)
                                                           .block_indices[0]]
                                             .prefix.base()),
            Continent::kEurope);
}

TEST_F(RegistryTest, AsInfoRejectsUnknownAsn) {
  EXPECT_THROW(static_cast<void>(registry_.as_info(0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(registry_.as_info(999999)),
               std::out_of_range);
}

TEST_F(RegistryTest, RandomAddressIsAllocated) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto addr = registry_.random_address(rng);
    EXPECT_TRUE(registry_.asn_of(addr)) << to_string(addr);
  }
}

TEST_F(RegistryTest, RandomAddressWithPredicate) {
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto addr = registry_.random_address(
        rng, [](const RoutedBlock& b) { return b.residential; });
    ASSERT_TRUE(addr);
    const auto idx = registry_.block_index_of(*addr);
    ASSERT_TRUE(idx);
    EXPECT_TRUE(registry_.blocks()[*idx].residential);
  }
}

TEST_F(RegistryTest, ImpossiblePredicateReturnsNullopt) {
  util::Rng rng(3);
  const auto addr = registry_.random_address(
      rng, [](const RoutedBlock&) { return false; }, /*max_tries=*/8);
  EXPECT_FALSE(addr);
}

TEST_F(RegistryTest, DeterministicForSeed) {
  Registry other{small_config()};
  ASSERT_EQ(other.blocks().size(), registry_.blocks().size());
  for (std::size_t i = 0; i < other.blocks().size(); ++i) {
    EXPECT_EQ(other.blocks()[i].prefix, registry_.blocks()[i].prefix);
    EXPECT_EQ(other.blocks()[i].asn, registry_.blocks()[i].asn);
  }
}

TEST_F(RegistryTest, DifferentSeedsDiffer) {
  RegistryConfig cfg = small_config();
  cfg.seed = 999;
  Registry other{cfg};
  bool any_diff = other.blocks().size() != registry_.blocks().size();
  for (std::size_t i = 0;
       !any_diff && i < std::min(other.blocks().size(),
                                 registry_.blocks().size());
       ++i) {
    any_diff = other.blocks()[i].prefix != registry_.blocks()[i].prefix;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(RegistryTest, ResidentialBlocksExist) {
  std::size_t residential = 0;
  for (const auto& b : registry_.blocks()) {
    if (b.residential) ++residential;
  }
  EXPECT_GT(residential, 10u);
  EXPECT_LT(residential, registry_.blocks().size());
}

TEST_F(RegistryTest, AllocatedAddressesMatchesBlockSum) {
  std::uint64_t sum = 0;
  for (const auto& b : registry_.blocks()) sum += b.prefix.size();
  EXPECT_EQ(registry_.allocated_addresses(), sum);
}

TEST(RegistryCategoryTest, ToStringCoversAll) {
  EXPECT_STREQ(to_string(AsCategory::kHosting), "hosting");
  EXPECT_STREQ(to_string(AsCategory::kResidentialIsp), "residential");
  EXPECT_STREQ(to_string(Continent::kSouthAmerica), "South America");
  EXPECT_STREQ(to_string(Continent::kAsia), "Asia");
}

}  // namespace
}  // namespace gorilla::net
