#include "net/pbl.h"

#include <gtest/gtest.h>

namespace gorilla::net {
namespace {

RegistryConfig small_config() {
  RegistryConfig cfg;
  cfg.num_ases = 400;
  return cfg;
}

TEST(PblTest, ListsMostResidentialSpace) {
  const Registry registry{small_config()};
  PblConfig cfg;
  cfg.residential_listing_rate = 1.0;
  cfg.false_listing_rate = 0.0;
  const PolicyBlockList pbl(registry, cfg);
  for (const auto& block : registry.blocks()) {
    EXPECT_EQ(pbl.is_end_host(block.prefix.base()), block.residential)
        << to_string(block.prefix);
  }
}

TEST(PblTest, NoiseRatesApproximatelyHold) {
  const Registry registry{small_config()};
  const PolicyBlockList pbl(registry, PblConfig{});
  std::size_t res_total = 0, res_listed = 0;
  std::size_t infra_total = 0, infra_listed = 0;
  for (const auto& block : registry.blocks()) {
    const bool listed = pbl.is_end_host(block.prefix.base());
    if (block.residential) {
      ++res_total;
      if (listed) ++res_listed;
    } else {
      ++infra_total;
      if (listed) ++infra_listed;
    }
  }
  ASSERT_GT(res_total, 0u);
  ASSERT_GT(infra_total, 0u);
  EXPECT_GT(static_cast<double>(res_listed) / static_cast<double>(res_total),
            0.85);
  EXPECT_LT(
      static_cast<double>(infra_listed) / static_cast<double>(infra_total),
      0.05);
}

TEST(PblTest, UnallocatedSpaceNotListed) {
  const Registry registry{small_config()};
  const PolicyBlockList pbl(registry, PblConfig{});
  EXPECT_FALSE(pbl.is_end_host(registry.named().darknet.base()));
  EXPECT_FALSE(pbl.is_end_host(Ipv4Address(0, 0, 0, 1)));
}

TEST(PblTest, DeterministicForSeed) {
  const Registry registry{small_config()};
  const PolicyBlockList a(registry, PblConfig{});
  const PolicyBlockList b(registry, PblConfig{});
  EXPECT_EQ(a.listed_prefixes(), b.listed_prefixes());
}

}  // namespace
}  // namespace gorilla::net
