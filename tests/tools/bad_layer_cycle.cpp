// gorilla_lint self-test fixture: must trip exactly [layer-cycle].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
//
// A file including itself is the smallest include cycle; the graph pass
// must reject it even though the edge is rank-legal (tools -> tools).
#include "tools/bad_layer_cycle.cpp"

namespace fixture {}
