// gorilla_lint self-test fixture: must trip exactly [worker-capture].
//
// The worker lambdas handed to parallel_for and submit use blanket [&]
// captures, so the racy folds over `total` are invisible at the call
// sites — the rule demands every capture be spelled out (DESIGN.md §3d
// rule 2).
#include <cstddef>
#include <vector>

namespace fixture {

struct Executor {
  template <typename Fn>
  void parallel_for(std::size_t n, std::size_t chunk, Fn fn) {
    for (std::size_t b = 0; b < n; b += chunk) {
      const std::size_t e = b + chunk < n ? b + chunk : n;
      fn(b, e);
    }
  }
};

struct Pool {
  template <typename Fn>
  void submit(Fn fn) {
    fn();
  }
};

inline long sum_in_parallel(Executor& executor, const std::vector<long>& xs) {
  long total = 0;
  executor.parallel_for(xs.size(), 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) total += xs[i];
  });
  return total;
}

inline long sum_via_pool(Pool& pool, const std::vector<long>& xs) {
  long total = 0;
  pool.submit([&] {
    for (const long x : xs) total += x;
  });
  return total;
}

}  // namespace fixture
