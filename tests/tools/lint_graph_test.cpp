// Unit tests for the gorilla-lint include-graph pass: layer-DAG rank
// checks, waivers, LINT-LAYER directives, cycle rejection, and the DOT
// artifact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace gorilla::lint {
namespace {

AnalysisResult run(std::vector<SourceDoc> docs) {
  return analyze(std::move(docs), Options{});
}

TEST(LayerBreak, UpwardIncludeFlagged) {
  const AnalysisResult r = run(
      {SourceDoc{"src/util/clock.h", "#include \"study/driver.h\"\n"},
       SourceDoc{"src/study/driver.h", "struct Driver {};\n"}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "layer-break");
  EXPECT_EQ(r.findings[0].path, "src/util/clock.h");
  EXPECT_EQ(r.findings[0].line, 1u);
  EXPECT_NE(r.findings[0].message.find("'util' to 'study'"),
            std::string::npos);
}

TEST(LayerBreak, DownwardAndSameRankAreLegal) {
  const AnalysisResult r = run(
      {SourceDoc{"src/study/driver.h", "#include \"sim/engine.h\"\n"},
       SourceDoc{"src/sim/engine.h", "#include \"scan/prober.h\"\n"},
       SourceDoc{"src/scan/prober.h", "#include \"util/clock.h\"\n"},
       SourceDoc{"src/util/clock.h", "struct Clock {};\n"}});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LayerBreak, WaivedUpwardIncludeIsQuietAndNotStale) {
  const AnalysisResult r = run(
      {SourceDoc{"src/sim/attack.h",
                 "#include \"study/events.h\"  // NOLINT(layer-break): bus\n"},
       SourceDoc{"src/study/events.h", "struct Event {};\n"}});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LayerBreak, LintLayerDirectiveOverridesPath) {
  // A fixture outside src/ can pin its layer explicitly.
  const AnalysisResult r = run(
      {SourceDoc{"tests/tools/bad_layer_break.cpp",
                 "// LINT-LAYER: sim\n#include \"study/events.h\"\n"}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "layer-break");
  EXPECT_NE(r.findings[0].message.find("'sim' to 'study'"),
            std::string::npos);
}

TEST(LayerCycle, SameRankCycleFlagged) {
  const AnalysisResult r = run(
      {SourceDoc{"src/sim/alpha.h", "#include \"scan/beta.h\"\n"},
       SourceDoc{"src/scan/beta.h", "#include \"sim/alpha.h\"\n"}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "layer-cycle");
  EXPECT_NE(r.findings[0].message.find("cycle"), std::string::npos);
}

TEST(LayerCycle, SelfIncludeIsACycle) {
  const AnalysisResult r = run(
      {SourceDoc{"src/sim/alpha.h", "#include \"sim/alpha.h\"\n"}});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "layer-cycle");
}

TEST(LayerCycle, RankViolatingEdgesAreExcludedFromCycleGraph) {
  // sim -> study is upward (waived here); study -> sim is legal downward.
  // Counting the waived upward edge in the cycle graph would make the
  // justified published-interface waiver unsatisfiable, so only the legal
  // edge participates and no cycle is reported.
  const AnalysisResult r = run(
      {SourceDoc{"src/sim/attack.h",
                 "#include \"study/events.h\"  // NOLINT(layer-break): bus\n"},
       SourceDoc{"src/study/events.h", "#include \"sim/attack.h\"\n"}});
  EXPECT_TRUE(r.findings.empty());
}

TEST(Dot, ArtifactListsLayersAndEdges) {
  const AnalysisResult r = run(
      {SourceDoc{"src/sim/engine.h", "#include \"util/clock.h\"\n"},
       SourceDoc{"src/util/clock.h", "struct Clock {};\n"}});
  EXPECT_NE(r.dot.find("digraph layers"), std::string::npos);
  EXPECT_NE(r.dot.find("\"sim\" -> \"util\""), std::string::npos);
  EXPECT_NE(r.dot.find("rank 2"), std::string::npos);
}

TEST(Dot, ViolationEdgeIsRed) {
  const AnalysisResult r = run(
      {SourceDoc{"src/util/clock.h", "#include \"study/driver.h\"\n"},
       SourceDoc{"src/study/driver.h", "struct Driver {};\n"}});
  EXPECT_NE(r.dot.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace gorilla::lint
