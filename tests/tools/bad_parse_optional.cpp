// gorilla_lint self-test fixture: must trip exactly [parse-optional].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
#include <string>

int parse_flags(const std::string& s);

int parse_flags(const std::string& s) { return s.empty() ? 0 : 1; }
