// Unit tests for the gorilla-lint v2 rule passes, driven through the
// filesystem-free analyze() entry point on in-memory documents.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace gorilla::lint {
namespace {

std::vector<Finding> run(const std::string& path, const std::string& code) {
  return analyze({SourceDoc{path, code}}, Options{}).findings;
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

TEST(FloatEq, CatchesSuffixedNegatedAndSeparatedLiterals) {
  const std::vector<Finding> fs = run("src/sim/x.cpp",
                                      "bool a(double v) { return v != 1.0f; }\n"
                                      "bool b(double v) { return v == -0.5; }\n"
                                      "bool c(double v) { return v == 1e9; }\n"
                                      "bool d(double v) { return 2'000.5 == v; }\n"
                                      "bool e(float v) { return 1.0F == v; }\n");
  EXPECT_EQ(count_rule(fs, "float-eq"), 5u);
}

TEST(FloatEq, IntegerAndHexComparisonsAreClean) {
  const std::vector<Finding> fs = run("src/sim/x.cpp",
                                      "bool a(int v) { return v == 42; }\n"
                                      "bool b(int v) { return v == 0x1e; }\n"
                                      "bool c(long v) { return v == 1'000'000; }\n");
  EXPECT_EQ(count_rule(fs, "float-eq"), 0u);
}

TEST(FloatEq, RawStringBodyDoesNotLeak) {
  const std::vector<Finding> fs = run(
      "src/sim/x.cpp",
      "const char* doc() { return R\"x(value == 1.0 and memcpy(a,b,n))x\"; }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(Waivers, NolintSuppressesAndIsNotStale) {
  const std::vector<Finding> fs = run(
      "src/sim/x.cpp",
      "bool a(double v) { return v == 1.0; }  // NOLINT(float-eq): seed\n");
  EXPECT_TRUE(fs.empty());
}

TEST(Waivers, UnusedWaiverIsAStaleFinding) {
  const std::vector<Finding> fs =
      run("src/sim/x.cpp", "bool a(int v) { return v > 0; }  // NOLINT(float-eq)\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "stale-waiver");
  EXPECT_EQ(fs[0].line, 1u);
}

TEST(Waivers, NolintInsideStringIsData) {
  // v1 read waivers off the raw line, so a string mentioning NOLINT could
  // suppress a real finding; v2 only honours comments.
  const std::vector<Finding> fs = run(
      "src/sim/x.cpp",
      "bool a(double v) { return v == 1.0 && msg(\"NOLINT(float-eq)\"); }\n");
  EXPECT_EQ(count_rule(fs, "float-eq"), 1u);
}

constexpr const char* kWorkerPrelude =
    "struct Executor {\n"
    "  template <typename Fn>\n"
    "  void parallel_for(unsigned long n, unsigned long chunk, Fn fn);\n"
    "};\n"
    "struct EventBuffer { void clear(); };\n";

TEST(ShardMutation, FlagsWriteThroughRefCapture) {
  const std::string code =
      std::string(kWorkerPrelude) +
      "void fold(Executor& e, long* out) {\n"
      "  long total = 0;\n"
      "  e.parallel_for(8, 2, [&total](unsigned long b, unsigned long n) {\n"
      "    total += (long)(b + n);\n"
      "  });\n"
      "  *out = total;\n"
      "}\n";
  const std::vector<Finding> fs = run("src/sim/x.cpp", code);
  EXPECT_EQ(count_rule(fs, "shard-mutation"), 1u);
}

TEST(ShardMutation, SanctionedBufferAndReadsAreClean) {
  const std::string code =
      std::string(kWorkerPrelude) +
      "void fold(Executor& e, const long* xs) {\n"
      "  EventBuffer events;\n"
      "  e.parallel_for(8, 2, [&events, &xs](unsigned long b, unsigned long n) {\n"
      "    if (xs[b] > (long)n) events.clear();\n"
      "  });\n"
      "}\n";
  const std::vector<Finding> fs = run("src/sim/x.cpp", code);
  EXPECT_EQ(count_rule(fs, "shard-mutation"), 0u);
}

TEST(SharedRng, FlagsDirectDrawAllowsSubstream) {
  const std::string code =
      "struct Rng {\n"
      "  Rng substream(unsigned long tag);\n"
      "  double uniform_double();\n"
      "};\n"
      "struct Executor {\n"
      "  template <typename Fn> void run_ordered(unsigned long n, Fn fn);\n"
      "};\n"
      "void spin(Executor& e, Rng& rng) {\n"
      "  e.run_ordered(4, [&rng](unsigned long day) {\n"
      "    Rng local = rng.substream(day);\n"
      "    (void)local.uniform_double();\n"
      "    (void)rng.uniform_double();\n"
      "  });\n"
      "}\n";
  const std::vector<Finding> fs = run("src/sim/x.cpp", code);
  ASSERT_EQ(count_rule(fs, "shared-rng"), 1u);
  for (const Finding& f : fs) {
    if (f.rule == "shared-rng") {
      EXPECT_EQ(f.line, 12u);
    }
  }
}

TEST(WorkerCapture, BlanketCaptureFlagged) {
  const std::string code =
      std::string(kWorkerPrelude) +
      "void fold(Executor& e) {\n"
      "  e.parallel_for(8, 2, [&](unsigned long, unsigned long) {});\n"
      "}\n";
  const std::vector<Finding> fs = run("src/sim/x.cpp", code);
  EXPECT_EQ(count_rule(fs, "worker-capture"), 1u);
}

TEST(UnorderedIter, NameDeclaredInHeaderCaughtInCpp) {
  const std::vector<Finding> fs = analyze(
      {SourceDoc{"src/core/reg.h",
                 "#include <unordered_map>\n"
                 "struct Reg { std::unordered_map<int, int> by_ip; };\n"},
       SourceDoc{"src/core/reg.cpp",
                 "#include \"core/reg.h\"\n"
                 "int sum(const Reg& r) {\n"
                 "  int total = 0;\n"
                 "  for (const auto& [k, v] : r.by_ip) total += v;\n"
                 "  return total;\n"
                 "}\n"}},
      Options{}).findings;
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1u);
}

TEST(CodecEscape, FlagsPointerWalkAndByteCursorOutsideCodecLayer) {
  const std::vector<Finding> fs =
      run("src/study/x.cpp",
          "int sum(const std::uint8_t* p, int n) {\n"
          "  const std::uint8_t* cur = p;\n"
          "  int s = 0;\n"
          "  for (int i = 0; i < n; ++i) s += *cur++;\n"
          "  return s;\n"
          "}\n");
  EXPECT_EQ(count_rule(fs, "codec-escape"), 2u);
}

TEST(CodecEscape, CodecLayerItselfIsExempt) {
  const std::string code =
      "static const std::uint8_t* cur = nullptr;\n"
      "int next() { return *cur++; }\n";
  EXPECT_EQ(count_rule(run("src/util/block_codec.cpp", code), "codec-escape"),
            0u);
  EXPECT_EQ(count_rule(run("src/util/columnar.cpp", code), "codec-escape"),
            0u);
  EXPECT_EQ(count_rule(run("src/study/x.cpp", code), "codec-escape"), 2u);
}

TEST(CodecEscape, PointerParamsAndMultiplicationAreClean) {
  const std::vector<Finding> fs =
      run("src/study/x.cpp",
          "void feed(const std::uint8_t* buf, std::size_t n);\n"
          "int scale(int a, int b) { return a * b; }\n"
          "int bump(int* counts, int i) { return counts[i] + 1; }\n");
  EXPECT_EQ(count_rule(fs, "codec-escape"), 0u);
}

TEST(Analyze, DeterministicAcrossJobCounts) {
  std::vector<SourceDoc> docs;
  for (int i = 0; i < 24; ++i) {
    docs.push_back(SourceDoc{
        "src/sim/f" + std::to_string(i) + ".cpp",
        "bool f(double v) { return v == " + std::to_string(i) + ".5; }\n"});
  }
  Options serial;
  serial.jobs = 1;
  Options parallel_opts;
  parallel_opts.jobs = 8;
  const AnalysisResult a = analyze(docs, serial);
  const AnalysisResult b = analyze(docs, parallel_opts);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].path, b.findings[i].path);
    EXPECT_EQ(a.findings[i].line, b.findings[i].line);
    EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
    EXPECT_EQ(a.findings[i].message, b.findings[i].message);
  }
}

TEST(HeavyNodeContainer, FlagsNodeContainersOnlyInsideCompactTypes) {
  const std::vector<Finding> fs = run(
      "src/ntp/x.h",
      "struct Compact {  // LINT-COMPACT\n"
      "  std::map<int, int> counts;\n"
      "  std::unordered_set<int> seen;\n"
      "  std::vector<int> flat;\n"
      "};\n"
      "struct Unmarked {\n"
      "  std::map<int, int> fine_here;\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "heavy-node-container"), 2u);
}

TEST(HeavyNodeContainer, IgnoresLookalikeNamesAndComments) {
  const std::vector<Finding> fs = run(
      "src/ntp/x.h",
      "struct Compact {  // LINT-COMPACT\n"
      "  MonitorDelta delta;          // 'list'-free user type\n"
      "  std::vector<int> monlist;    // identifier containing 'list'\n"
      "  Bitset<64> set_bits;         // identifier containing 'set'\n"
      "  // a std::map<int,int> in a comment is not a member\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "heavy-node-container"), 0u);
}

TEST(HeavyNodeContainer, WaiverSuppressesAndIsConsumed) {
  const std::vector<Finding> fs = run(
      "src/ntp/x.h",
      "struct Compact {  // LINT-COMPACT\n"
      "  std::map<int, int> cold;  // NOLINT(heavy-node-container) -- cold\n"
      "};\n");
  EXPECT_EQ(count_rule(fs, "heavy-node-container"), 0u);
  EXPECT_EQ(count_rule(fs, "stale-waiver"), 0u);
}

}  // namespace
}  // namespace gorilla::lint
