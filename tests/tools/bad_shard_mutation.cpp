// gorilla_lint self-test fixture: must trip exactly [shard-mutation].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
//
// The worker lambda spells out its captures (so worker-capture stays
// quiet) but folds into a plain vector through a by-reference capture —
// a cross-shard write the determinism contract forbids (DESIGN.md §3d
// rule 2). The EventBuffer capture is a sanctioned shard-result type and
// must NOT be reported.
#include <cstddef>
#include <vector>

namespace fixture {

struct EventBuffer {
  void clear() {}
};

struct Executor {
  template <typename Fn>
  void parallel_for(std::size_t n, std::size_t chunk, Fn fn) {
    for (std::size_t b = 0; b < n; b += chunk) {
      fn(b, b + chunk < n ? b + chunk : n);
    }
  }
};

inline void fold(Executor& executor, const std::vector<long>& xs) {
  std::vector<long> partials;
  EventBuffer events;
  executor.parallel_for(
      xs.size(), 64,
      [&partials, &events, &xs](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) partials.push_back(xs[i]);
        events.clear();
      });
  (void)partials;
}

}  // namespace fixture
