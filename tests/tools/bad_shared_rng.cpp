// gorilla_lint self-test fixture: must trip exactly [shared-rng].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
//
// One shared Rng drawn from inside a worker lambda makes the draw order
// depend on thread scheduling; the contract is a per-shard substream
// (DESIGN.md §3d rule 1). The substream derivation must NOT be reported;
// the direct shared draw must.
#include <cstddef>
#include <cstdint>

namespace fixture {

struct Rng {
  Rng substream(std::uint64_t) { return *this; }
  double uniform_double() { return 0.5; }
};

struct Executor {
  template <typename Fn>
  void run_ordered(std::size_t n, Fn fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

inline void spin(Executor& executor, Rng& rng) {
  executor.run_ordered(4, [&rng](std::size_t day) {
    Rng local = rng.substream(day);
    (void)local.uniform_double();
    (void)rng.uniform_double();
  });
}

}  // namespace fixture
