// gorilla_lint self-test fixture: must trip exactly [raw-decode].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
#include <cstdint>
#include <cstring>

std::uint16_t sneaky_decode(const std::uint8_t* buf) {
  std::uint16_t v = 0;
  std::memcpy(&v, buf, sizeof v);
  v = static_cast<std::uint16_t>((buf[0] << 8) | buf[1]);
  v = *reinterpret_cast<const std::uint16_t*>(buf);
  return v;
}
