// Unit tests for the gorilla-lint C++ lexer (tools/lint/lexer.h): token
// classification, raw-string and digit-separator handling, the scrubbed
// view, float-literal classification, and include extraction.
#include "tools/lint/lexer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gorilla::lint {
namespace {

std::vector<TokenKind> kinds(const LexedSource& src) {
  std::vector<TokenKind> out;
  out.reserve(src.tokens.size());
  for (const Token& t : src.tokens) out.push_back(t.kind);
  return out;
}

const Token* first_of(const LexedSource& src, TokenKind kind) {
  for (const Token& t : src.tokens) {
    if (t.kind == kind) return &t;
  }
  return nullptr;
}

TEST(Lexer, ClassifiesBasicTokens) {
  const LexedSource src = lex("int x = 42; // note\n");
  const std::vector<TokenKind> got = kinds(src);
  const std::vector<TokenKind> want = {TokenKind::kIdentifier,
                                       TokenKind::kIdentifier,
                                       TokenKind::kPunct, TokenKind::kNumber,
                                       TokenKind::kPunct, TokenKind::kComment};
  EXPECT_EQ(got, want);
}

TEST(Lexer, RawStringWithDelimiterIsOneToken) {
  const LexedSource src = lex(R"src(auto s = R"x(a " b )" c)x";)src");
  const Token* raw = first_of(src, TokenKind::kRawString);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(src.view(*raw), R"y(R"x(a " b )" c)x")y");
}

TEST(Lexer, RawStringBodyIsScrubbed) {
  const std::string code =
      "auto s = R\"x(memcpy and == 1.0 live here)x\";\nint after = 2;\n";
  const LexedSource src = lex(code);
  const std::string clean = scrub(src);
  EXPECT_EQ(clean.find("memcpy"), std::string::npos);
  EXPECT_EQ(clean.find("1.0"), std::string::npos);
  EXPECT_NE(clean.find("after"), std::string::npos);
  EXPECT_EQ(clean.size(), code.size());  // offsets preserved
}

TEST(Lexer, EncodingPrefixedLiterals) {
  const LexedSource src = lex("auto a = u8\"x\"; auto b = L'y'; "
                              "auto c = LR\"(z)\";");
  EXPECT_NE(first_of(src, TokenKind::kString), nullptr);
  EXPECT_NE(first_of(src, TokenKind::kCharLiteral), nullptr);
  EXPECT_NE(first_of(src, TokenKind::kRawString), nullptr);
}

TEST(Lexer, DigitSeparatorStaysInsideNumber) {
  const LexedSource src = lex("long n = 1'000'000; bool b = n > 2;");
  const Token* num = first_of(src, TokenKind::kNumber);
  ASSERT_NE(num, nullptr);
  EXPECT_EQ(src.view(*num), "1'000'000");
  // The separator must not open a char literal and swallow the rest.
  EXPECT_EQ(first_of(src, TokenKind::kCharLiteral), nullptr);
  const std::string clean = scrub(src);
  EXPECT_NE(clean.find("b = n > 2"), std::string::npos);
}

TEST(Lexer, SplicedLineCommentContinues) {
  const LexedSource src = lex("// first \\\nstill comment\nint x;\n");
  ASSERT_FALSE(src.tokens.empty());
  EXPECT_EQ(src.tokens[0].kind, TokenKind::kComment);
  const std::string clean = scrub(src);
  EXPECT_EQ(clean.find("still comment"), std::string::npos);
  EXPECT_NE(clean.find("int x"), std::string::npos);
}

TEST(Lexer, UnterminatedStringStopsAtNewline) {
  const LexedSource src = lex("auto s = \"oops\nint x = 1;\n");
  const Token* str = first_of(src, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(src.view(*str), "\"oops");
  EXPECT_NE(scrub(src).find("int x = 1"), std::string::npos);
}

TEST(Lexer, LineMapping) {
  const LexedSource src = lex("one\ntwo\nthree\n");
  EXPECT_EQ(src.line_of(0), 1u);
  EXPECT_EQ(src.line_of(4), 2u);
  EXPECT_EQ(src.line_of(8), 3u);
  EXPECT_EQ(src.line_text(2), "two");
}

TEST(IsFloatLiteral, Classification) {
  EXPECT_TRUE(is_float_literal("1.0"));
  EXPECT_TRUE(is_float_literal("1.0f"));
  EXPECT_TRUE(is_float_literal(".5"));
  EXPECT_TRUE(is_float_literal("1e9"));
  EXPECT_TRUE(is_float_literal("3E-2"));
  EXPECT_TRUE(is_float_literal("2'000.5"));
  EXPECT_TRUE(is_float_literal("0x1.8p3"));
  EXPECT_TRUE(is_float_literal("0x1p3"));
  EXPECT_FALSE(is_float_literal("42"));
  EXPECT_FALSE(is_float_literal("1'000'000"));
  EXPECT_FALSE(is_float_literal("0x1e"));   // hex digit, not an exponent
  EXPECT_FALSE(is_float_literal("0x800'1b"));
  EXPECT_FALSE(is_float_literal("1ull"));
}

TEST(FindIncludes, QuotedAngledAndCommentedOut) {
  const std::string code =
      "#include \"util/clock.h\"\n"
      "#include <vector>\n"
      "// #include \"study/driver.h\"\n"
      "  #  include \"net/socket.h\"\n";
  const LexedSource src = lex(code);
  const std::vector<IncludeDirective> incs = find_includes(src, scrub(src));
  ASSERT_EQ(incs.size(), 3u);
  EXPECT_EQ(incs[0].target, "util/clock.h");
  EXPECT_FALSE(incs[0].angled);
  EXPECT_EQ(incs[1].target, "vector");
  EXPECT_TRUE(incs[1].angled);
  EXPECT_EQ(incs[2].target, "net/socket.h");
  EXPECT_EQ(incs[2].line, 4u);
}

}  // namespace
}  // namespace gorilla::lint
