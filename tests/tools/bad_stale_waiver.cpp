// gorilla_lint self-test fixture: must trip exactly [stale-waiver].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
//
// The waiver below excuses a float comparison that no longer exists; a
// NOLINT suppressing nothing is itself a finding.
namespace fixture {

inline bool ready(int epoch) {
  return epoch > 0;  // NOLINT(float-eq)
}

}  // namespace fixture
