// gorilla_lint self-test fixture: must trip exactly [layer-break].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
//
// LINT-LAYER: sim
// This file plays a sim-layer source; its include reaches one rank up
// into study, violating the layer DAG (DESIGN.md "Static analysis v2").
#include "study/events.h"

namespace fixture {}
