// gorilla_lint self-test fixture for the v2 lexer's scrubber, with exact
// expectations pinned by LINT-EXPECT markers (scanned by --self-test).
//
// The v1 scrubber knew nothing about raw string literals (their bodies
// leaked into the code channel — the memcpy and == 1.0 below would have
// been false positives) and treated a digit separator as a char-literal
// quote (swallowing the real v == 3.5 finding after it — a false
// negative). The v2 lexer must blank the former and report the latter.
#include <string>

namespace fixture {

inline std::string doc() {
  return R"x(tolerance: value == 1.0 means exact; memcpy(dst, src, n))x";
}

inline bool at_limit(double v) {
  const double cap = 2'000.5;
  return cap < v && v == 3.5;  // LINT-EXPECT[float-eq]
}

}  // namespace fixture
