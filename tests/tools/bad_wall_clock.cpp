// gorilla_lint self-test fixture: must trip exactly [wall-clock].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
#include <chrono>
#include <cstdlib>
#include <random>

long ambient_entropy() {
  const auto t =
      std::chrono::system_clock::now().time_since_epoch().count();
  std::random_device rd;
  return static_cast<long>(t) + std::rand() + static_cast<long>(rd());
}
