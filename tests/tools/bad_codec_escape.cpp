// gorilla_lint self-test fixture: must trip exactly [codec-escape].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
#include <cstdint>
#include <vector>

std::uint64_t hand_rolled_decode(const std::vector<std::uint8_t>& buf) {
  const std::uint8_t* cursor = buf.data();
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    v = (v << 7) + *cursor++;
  }
  return v;
}
