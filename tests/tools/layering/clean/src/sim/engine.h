// Layering mini-tree (clean): sim (rank 2) includes net (rank 1) — a
// legal downward edge.
#pragma once

#include "net/socket.h"

namespace mini {
struct Engine {
  Socket wire;
};
}  // namespace mini
