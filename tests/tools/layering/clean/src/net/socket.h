// Layering mini-tree (clean): net (rank 1) includes util (rank 0) — a
// legal downward edge.
#pragma once

#include "util/clock.h"

namespace mini {
struct Socket {
  Clock opened;
};
}  // namespace mini
