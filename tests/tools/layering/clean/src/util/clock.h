// Layering mini-tree (clean): rank-0 leaf with no project includes.
#pragma once

namespace mini {
struct Clock {
  long ticks = 0;
};
}  // namespace mini
