// Layering mini-tree (clean): study (rank 3) includes sim (rank 2) — a
// legal downward edge; the whole tree is a DAG and must lint clean.
#pragma once

#include "sim/engine.h"

namespace mini {
struct Driver {
  Engine engine;
};
}  // namespace mini
