// Layering mini-tree (skiplayer): an ordinary rank-3 header; the break
// is in util/clock.h, which includes this file from below.
#pragma once

namespace mini {
struct Driver {
  int days = 0;
};
}  // namespace mini
