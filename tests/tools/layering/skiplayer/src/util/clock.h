// Layering mini-tree (skiplayer): util (rank 0) reaching up into study
// (rank 3) — the lint must report layer-break on this include.
#pragma once

#include "study/driver.h"

namespace mini {
struct Clock {
  Driver owner;
};
}  // namespace mini
