// Layering mini-tree (cycle): sim and scan share rank 2, so each edge is
// rank-legal — but together they form an include cycle the lint must
// report as layer-cycle.
#pragma once

#include "scan/beta.h"

namespace mini {
struct Alpha {
  int beta_uses = 0;
};
}  // namespace mini
