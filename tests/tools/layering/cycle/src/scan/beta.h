// Layering mini-tree (cycle): the back edge completing the sim <-> scan
// include cycle (each edge same-rank and individually legal).
#pragma once

#include "sim/alpha.h"

namespace mini {
struct Beta {
  int alpha_uses = 0;
};
}  // namespace mini
