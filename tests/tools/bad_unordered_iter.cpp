// gorilla_lint self-test fixture: must trip exactly [unordered-iter].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
#include <cstdio>
#include <unordered_map>

void dump_counts(const std::unordered_map<int, int>& histogram) {
  for (const auto& [key, value] : histogram) {
    std::printf("%d,%d\n", key, value);
  }
}
