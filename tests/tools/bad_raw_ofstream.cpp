// Lint self-test fixture: must trip raw-ofstream and nothing else.
// A durable write bypassing util::ColumnArchive::save_file / write_all —
// no atomic rename, no fsync, invisible to the fault-injection harness.
#include <fstream>
#include <string>

bool dump_report(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}
