// gorilla_lint self-test fixture: must trip exactly [float-eq].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
bool is_unset(double v) { return v == 0.0; }
bool is_unit(double v) { return 1.0 == v; }
