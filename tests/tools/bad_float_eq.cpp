// gorilla_lint self-test fixture: must trip exactly [float-eq].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
//
// Covers the literal spellings the v1 regexes missed: suffixed (1.0f,
// 1.0F), negated (-0.5), exponent-only (1e9), and digit-separated
// (2'000.5) floating-point literals, on both sides of ==/!=.
bool is_unset(double v) { return v == 0.0; }
bool is_unit(double v) { return 1.0 == v; }
bool is_full(float v) { return v != 1.0f; }
bool is_suffixed(float v) { return 1.0F == v; }
bool is_neg_half(double v) { return v == -0.5; }
bool is_giant(double v) { return v == 1e9; }
bool is_cap(double v) { return 2'000.5 == v; }
