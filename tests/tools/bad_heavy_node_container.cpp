// gorilla_lint self-test fixture: must trip exactly [heavy-node-container].
// Not compiled into any target — scanned by `gorilla_lint --self-test`.
#include <cstdint>
#include <map>
#include <vector>

struct PerClientState {  // LINT-COMPACT
  std::vector<std::uint32_t> flat_index;            // fine: contiguous
  std::map<std::uint32_t, std::uint64_t> counts;    // LINT-EXPECT[heavy-node-container]
};
