#include "scan/prober.h"

#include <gtest/gtest.h>

#include <set>

#include "core/monlist_analysis.h"
#include "sim/attack.h"

namespace gorilla::scan {
namespace {

sim::WorldConfig tiny_config() {
  sim::WorldConfig cfg;
  cfg.scale = 200;
  cfg.registry.num_ases = 2000;
  return cfg;
}

const net::Ipv4Address kProbeSource{net::Ipv4Address(198, 51, 100, 7)};

class ProberTest : public ::testing::Test {
 protected:
  ProberTest() : world_(tiny_config()), prober_(world_, kProbeSource) {}

  sim::World world_;
  Prober prober_;
};

TEST_F(ProberTest, SampleTimeAnchorsToJan10) {
  EXPECT_EQ(util::date_from_sim_time(Prober::sample_time(0)),
            (util::Date{2014, 1, 10}));
  EXPECT_EQ(util::date_from_sim_time(Prober::sample_time(14)),
            (util::Date{2014, 4, 18}));
}

TEST_F(ProberTest, FirstSampleSeesAvailabilityFractionOfPool) {
  std::uint64_t visited = 0;
  const auto summary =
      prober_.run_monlist_sample(0, [&](const AmplifierObservation&) {
        ++visited;
      });
  EXPECT_EQ(summary.responders, visited);
  // ~availability x (1 - other_impl) of the ever-pool answers with tables.
  const double expected =
      static_cast<double>(world_.amplifier_indices().size()) *
      world_.config().availability * (1.0 - world_.config().other_impl_fraction);
  EXPECT_NEAR(static_cast<double>(visited), expected, expected * 0.06);
  // Wrong-implementation servers return tiny errors instead.
  EXPECT_GT(summary.error_replies, 0u);
  EXPECT_NEAR(static_cast<double>(summary.error_replies),
              static_cast<double>(world_.amplifier_indices().size()) *
                  world_.config().availability *
                  world_.config().other_impl_fraction,
              expected * 0.05);
}

TEST_F(ProberTest, ObservationsCarryConsistentAccounting) {
  prober_.run_monlist_sample(0, [&](const AmplifierObservation& obs) {
    EXPECT_GT(obs.response_packets, 0u);
    EXPECT_GT(obs.response_udp_bytes, 0u);
    EXPECT_GT(obs.response_wire_bytes, obs.response_udp_bytes);
    EXPECT_FALSE(obs.table.empty());  // at least the probe entry
    EXPECT_EQ(obs.probe_time, Prober::sample_time(0));
  });
}

TEST_F(ProberTest, ProbeEntryTopmostInTables) {
  std::size_t checked = 0;
  prober_.run_monlist_sample(0, [&](const AmplifierObservation& obs) {
    if (checked >= 50) return;
    ++checked;
    ASSERT_FALSE(obs.table.empty());
    EXPECT_EQ(obs.table.front().address, kProbeSource);
    EXPECT_EQ(obs.table.front().last_seen, 0u);
    EXPECT_EQ(obs.table.front().mode, 7);
  });
  EXPECT_EQ(checked, 50u);
}

TEST_F(ProberTest, WeeklyProbeCountsAccumulateInTables) {
  for (int week = 0; week < 3; ++week) {
    prober_.run_monlist_sample(week, [](const AmplifierObservation&) {});
  }
  // Find an amplifier that answered all three weeks: its probe entry has
  // count 3 and avg interval ~ a week (Table 3a's shape).
  bool found = false;
  prober_.run_monlist_sample(3, [&](const AmplifierObservation& obs) {
    if (found) return;
    const auto& probe = obs.table.front();
    if (probe.address == kProbeSource && probe.count == 4) {
      EXPECT_NEAR(static_cast<double>(probe.avg_interval), 604800.0, 5.0);
      found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST_F(ProberTest, PoolShrinksAcrossWeeks) {
  std::array<std::uint64_t, 4> counts{};
  const int weeks[] = {0, 4, 9, 14};
  for (int i = 0; i < 4; ++i) {
    counts[static_cast<std::size_t>(i)] =
        prober_
            .run_monlist_sample(weeks[i], [](const AmplifierObservation&) {})
            .responders;
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[3]);
  // End-to-end reduction close to the paper's 92%.
  const double reduction = 1.0 - static_cast<double>(counts[3]) /
                                     static_cast<double>(counts[0]);
  EXPECT_GT(reduction, 0.80);
  EXPECT_LT(reduction, 0.97);
}

TEST_F(ProberTest, RemediatedServersStillWitnessProbes) {
  // Probe a server before and after its fix week: afterwards it is silent,
  // but its monitor table keeps recording (§6's witnessing remark).
  prober_.run_monlist_sample(0, [](const AmplifierObservation&) {});
  // Pick an amplifier fixed at week 1+.
  std::optional<std::uint32_t> target;
  for (const auto ai : world_.amplifier_indices()) {
    const auto& t = world_.servers()[ai];
    if (t.monlist_fix_week == 2 && !t.other_impl) {
      target = ai;
      break;
    }
  }
  ASSERT_TRUE(target);
  std::set<std::uint32_t> responders_w3;
  prober_.run_monlist_sample(3, [&](const AmplifierObservation& obs) {
    responders_w3.insert(obs.server_index);
  });
  EXPECT_FALSE(responders_w3.count(*target));
}

TEST_F(ProberTest, VersionSampleCountsPopulation) {
  std::uint64_t visited = 0;
  const auto summary =
      prober_.run_version_sample(0, [&](const VersionObservation&) {
        ++visited;
      });
  EXPECT_EQ(summary.responders_detailed, visited);
  EXPECT_GE(summary.responders_total, summary.responders_detailed);
  EXPECT_GT(summary.responders_total, 0u);
  EXPECT_EQ(util::date_from_sim_time(Prober::sample_time(summary.week + 6)),
            (util::Date{2014, 2, 21}));
}

TEST_F(ProberTest, VersionObservationsParseIdentity) {
  std::size_t checked = 0;
  prober_.run_version_sample(0, [&](const VersionObservation& obs) {
    if (checked >= 100) return;
    ++checked;
    EXPECT_FALSE(obs.system.empty());
    EXPECT_FALSE(obs.version.empty());
    EXPECT_GE(obs.stratum, 1);
    EXPECT_LE(obs.stratum, 16);
    EXPECT_GT(obs.response_wire_bytes, 0u);
  });
  EXPECT_GT(checked, 0u);
}

TEST_F(ProberTest, VersionPoolShrinksSlowly) {
  const auto w0 =
      prober_.run_version_sample(0, [](const VersionObservation&) {});
  const auto w8 =
      prober_.run_version_sample(8, [](const VersionObservation&) {});
  ASSERT_GT(w0.responders_total, 0u);
  const double survival = static_cast<double>(w8.responders_total) /
                          static_cast<double>(w0.responders_total);
  // §3.3: the version pool shrank only ~19% over nine weeks — while the
  // monlist pool collapsed.
  EXPECT_GT(survival, 0.70);
  EXPECT_LT(survival, 0.95);
}

TEST_F(ProberTest, AttackEvidenceVisibleInTables) {
  sim::AttackEngine engine(world_, sim::AttackEngineConfig{}, {});
  for (int day = 95; day < 98; ++day) engine.run_day(day);
  // Week 4 = day 98: probe right after the attacks.
  std::uint64_t victims_witnessed = 0;
  prober_.run_monlist_sample(4, [&](const AmplifierObservation& obs) {
    for (const auto& e : obs.table) {
      if (core::classify_client(e) == core::ClientClass::kVictim) {
        ++victims_witnessed;
      }
    }
  });
  EXPECT_GT(victims_witnessed, 10u);
}

TEST_F(ProberTest, DeterministicAcrossRuns) {
  sim::World w2(tiny_config());
  Prober p2(w2, kProbeSource);
  std::vector<std::uint64_t> a, b;
  prober_.run_monlist_sample(0, [&](const AmplifierObservation& obs) {
    a.push_back(obs.response_wire_bytes);
  });
  p2.run_monlist_sample(0, [&](const AmplifierObservation& obs) {
    b.push_back(obs.response_wire_bytes);
  });
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gorilla::scan
