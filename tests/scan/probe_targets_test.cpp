// Tests for the §3.4 targeted-probe API (arbitrary target sets at
// arbitrary times, as the April-June mega watch used).
#include <gtest/gtest.h>

#include "scan/prober.h"

namespace gorilla::scan {
namespace {

sim::WorldConfig tiny_config() {
  sim::WorldConfig cfg;
  cfg.scale = 200;
  cfg.registry.num_ases = 2000;
  return cfg;
}

class ProbeTargetsTest : public ::testing::Test {
 protected:
  ProbeTargetsTest()
      : world_(tiny_config()),
        prober_(world_, net::Ipv4Address(198, 51, 100, 9)) {}

  sim::World world_;
  Prober prober_;
};

TEST_F(ProbeTargetsTest, ProbesExactlyTheGivenSet) {
  std::vector<std::uint32_t> targets(world_.amplifier_indices().begin(),
                                     world_.amplifier_indices().begin() + 50);
  std::uint64_t visited = 0;
  const auto summary = prober_.probe_targets(
      targets, 0, Prober::sample_time(0),
      [&](const AmplifierObservation& obs) {
        ++visited;
        EXPECT_TRUE(std::find(targets.begin(), targets.end(),
                              obs.server_index) != targets.end());
      });
  EXPECT_EQ(summary.probes_sent, targets.size());
  EXPECT_EQ(summary.responders, visited);
  EXPECT_LE(summary.responders, targets.size());
}

TEST_F(ProbeTargetsTest, EmptyTargetSet) {
  const auto summary = prober_.probe_targets(
      {}, 0, Prober::sample_time(0), [](const AmplifierObservation&) {
        FAIL() << "no observation expected";
      });
  EXPECT_EQ(summary.probes_sent, 0u);
  EXPECT_EQ(summary.responders, 0u);
}

TEST_F(ProbeTargetsTest, ArbitraryProbeTimesStampObservations) {
  const util::SimTime when = 160 * util::kSecondsPerDay + 6 * 3600;
  std::vector<std::uint32_t> targets(world_.amplifier_indices().begin(),
                                     world_.amplifier_indices().begin() + 200);
  prober_.probe_targets(targets, 12, when,
                        [&](const AmplifierObservation& obs) {
                          EXPECT_EQ(obs.probe_time, when);
                        });
}

TEST_F(ProbeTargetsTest, PostStudyWeeksShrinkResponders) {
  std::vector<std::uint32_t> targets = world_.amplifier_indices();
  const auto early = prober_.probe_targets(
      targets, 12, Prober::sample_time(12), [](const AmplifierObservation&) {});
  const auto late = prober_.probe_targets(
      targets, 22, Prober::sample_time(22), [](const AmplifierObservation&) {});
  EXPECT_LT(late.responders, early.responders);
  EXPECT_GT(late.responders, 0u);
}

TEST_F(ProbeTargetsTest, RunMonlistSampleEquivalence) {
  // Probing the full amplifier set by hand equals the weekly sample.
  sim::World other(tiny_config());
  Prober other_prober(other, net::Ipv4Address(198, 51, 100, 9));
  std::uint64_t a = 0, b = 0;
  prober_.run_monlist_sample(0, [&](const AmplifierObservation&) { ++a; });
  other_prober.probe_targets(other.amplifier_indices(), 0,
                             Prober::sample_time(0),
                             [&](const AmplifierObservation&) { ++b; });
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace gorilla::scan
