// Resilient-prober behaviour under the deterministic impairment layer:
// zero config must be byte-identical to the seed prober, lossy configs must
// be bit-for-bit reproducible, retries must recover transient failures, and
// rate-limited servers must stop answering after their window budget.
#include "scan/prober.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "core/amplifiers.h"

namespace gorilla::scan {
namespace {

sim::WorldConfig tiny_config() {
  sim::WorldConfig cfg;
  cfg.scale = 200;
  cfg.registry.num_ases = 2000;
  return cfg;
}

const net::Ipv4Address kProbeSource{net::Ipv4Address(198, 51, 100, 7)};

using ObsKey = std::tuple<std::uint32_t, std::uint64_t, std::uint64_t,
                          std::size_t, int, bool>;

ObsKey key_of(const AmplifierObservation& obs) {
  return {obs.server_index, obs.response_wire_bytes, obs.response_packets,
          obs.table.size(), obs.attempts, obs.table_partial};
}

std::vector<ObsKey> collect_sample(Prober& prober, int week,
                                   MonlistSampleSummary* out = nullptr) {
  std::vector<ObsKey> keys;
  const auto summary = prober.run_monlist_sample(
      week, [&](const AmplifierObservation& obs) { keys.push_back(key_of(obs)); });
  if (out != nullptr) *out = summary;
  return keys;
}

TEST(ProberImpairmentTest, ZeroConfigIsByteIdenticalToSeedProber) {
  sim::World seed_world(tiny_config());
  Prober seed_prober(seed_world, kProbeSource);

  sim::World world(tiny_config());
  ProbePolicy aggressive;  // policy must be inert while impairment is off
  aggressive.max_retries = 9;
  Prober prober(world, kProbeSource, ntp::Implementation::kXntpd,
                sim::ImpairmentConfig{}, aggressive);
  EXPECT_FALSE(prober.impairment().enabled());

  MonlistSampleSummary a, b;
  const auto seed_keys = collect_sample(seed_prober, 0, &a);
  const auto keys = collect_sample(prober, 0, &b);
  EXPECT_EQ(seed_keys, keys);
  EXPECT_EQ(a.responders, b.responders);
  EXPECT_EQ(a.error_replies, b.error_replies);
  EXPECT_EQ(b.probes_lost, 0u);
  EXPECT_EQ(b.retries, 0u);
  EXPECT_EQ(b.truncated_tables, 0u);
  EXPECT_EQ(b.rate_limited, 0u);
  for (const auto& k : keys) {
    EXPECT_EQ(std::get<4>(k), 1);      // single attempt everywhere
    EXPECT_FALSE(std::get<5>(k));      // no partial tables
  }
}

TEST(ProberImpairmentTest, LossyRunsReproduceBitForBit) {
  sim::ImpairmentConfig cfg;
  cfg.seed = 17;
  cfg.request_loss = 0.1;
  cfg.transient_silence_rate = 0.05;
  cfg.response_packet_loss = 0.1;
  cfg.response_garble_rate = 0.02;

  sim::World w1(tiny_config());
  Prober p1(w1, kProbeSource, ntp::Implementation::kXntpd, cfg);
  sim::World w2(tiny_config());
  Prober p2(w2, kProbeSource, ntp::Implementation::kXntpd, cfg);

  MonlistSampleSummary a, b;
  EXPECT_EQ(collect_sample(p1, 0, &a), collect_sample(p2, 0, &b));
  EXPECT_EQ(a.responders, b.responders);
  EXPECT_EQ(a.probes_lost, b.probes_lost);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.truncated_tables, b.truncated_tables);
  EXPECT_GT(a.retries, 0u);
  EXPECT_GT(a.truncated_tables, 0u);
}

TEST(ProberImpairmentTest, RetriesRecoverTransientFailures) {
  sim::World clean_world(tiny_config());
  Prober clean(clean_world, kProbeSource);
  MonlistSampleSummary clean_summary;
  collect_sample(clean, 0, &clean_summary);

  sim::ImpairmentConfig cfg;
  cfg.transient_silence_rate = 0.3;
  ProbePolicy policy;
  policy.max_retries = 5;  // p(six straight losses) = 0.3^6 ~ 7e-4
  sim::World world(tiny_config());
  Prober prober(world, kProbeSource, ntp::Implementation::kXntpd, cfg, policy);

  std::set<std::uint32_t> seen;
  std::uint64_t visits = 0;
  const auto summary =
      prober.run_monlist_sample(0, [&](const AmplifierObservation& obs) {
        ++visits;
        seen.insert(obs.server_index);
        EXPECT_LE(obs.attempts, policy.max_retries + 1);
      });
  EXPECT_EQ(visits, seen.size());  // each recovered probe counted exactly once
  EXPECT_EQ(visits, summary.responders);
  EXPECT_GT(summary.retries, 0u);
  // Nearly every transient failure rides out on a retry.
  EXPECT_GE(summary.responders * 100, clean_summary.responders * 99);
  EXPECT_LE(summary.probes_lost, clean_summary.responders / 50);
}

TEST(ProberImpairmentTest, WithoutRetriesLossThinsThePool) {
  sim::World clean_world(tiny_config());
  Prober clean(clean_world, kProbeSource);
  MonlistSampleSummary clean_summary;
  collect_sample(clean, 0, &clean_summary);

  sim::ImpairmentConfig cfg;
  cfg.request_loss = 0.3;
  ProbePolicy no_retries;
  no_retries.max_retries = 0;
  sim::World world(tiny_config());
  Prober prober(world, kProbeSource, ntp::Implementation::kXntpd, cfg,
                no_retries);
  MonlistSampleSummary summary;
  collect_sample(prober, 0, &summary);

  EXPECT_EQ(summary.retries, 0u);
  EXPECT_GT(summary.probes_lost, 0u);
  EXPECT_LT(summary.responders, clean_summary.responders);
  EXPECT_NEAR(static_cast<double>(summary.responders),
              0.7 * static_cast<double>(clean_summary.responders),
              0.05 * static_cast<double>(clean_summary.responders));
  // Every would-be responder either got through or is accounted as lost.
  EXPECT_GE(summary.responders + summary.error_replies + summary.probes_lost,
            clean_summary.responders + clean_summary.error_replies);
}

class RateLimitTest : public ::testing::Test {
 protected:
  /// A week-0 responder that also survives into week 1 (not remediated,
  /// address stable) — so a week-1 reprobe exercises only the rate-limit
  /// window reset, not pool churn.
  std::uint32_t durable_responder(const sim::World& world) {
    sim::World clean_world(tiny_config());
    Prober clean(clean_world, kProbeSource);
    std::vector<std::uint32_t> responders;
    clean.run_monlist_sample(0, [&](const AmplifierObservation& obs) {
      responders.push_back(obs.server_index);
    });
    for (const auto idx : responders) {
      const auto& t = world.servers()[idx];
      const bool fixed_by_w1 =
          t.monlist_fix_week >= 0 && t.monlist_fix_week <= 1;
      if (!fixed_by_w1 && world.reachable(idx, 1)) return idx;
    }
    ADD_FAILURE() << "no durable responder in the tiny world";
    return 0;
  }
};

TEST_F(RateLimitTest, ServerStopsAfterWindowCapAndKodHaltsRetries) {
  sim::ImpairmentConfig cfg;
  cfg.rate_limiter_fraction = 1.0;  // every server rate limits
  cfg.rate_limit_per_window = 1;
  cfg.rate_limit_kod = true;
  sim::World world(tiny_config());
  const std::uint32_t idx = durable_responder(world);
  Prober prober(world, kProbeSource, ntp::Implementation::kXntpd, cfg);
  ASSERT_TRUE(prober.impairment().is_rate_limiter(idx));

  const util::SimTime t0 = Prober::sample_time(0);
  const std::vector<std::uint32_t> targets{idx};
  // First probe of the window is answered.
  auto s1 = prober.probe_targets(targets, 0, t0, [](const auto&) {});
  EXPECT_EQ(s1.responders, 1u);
  EXPECT_EQ(s1.rate_limited, 0u);
  // Second probe (same window): budget spent; the KoD stops retries cold.
  auto s2 = prober.probe_targets(targets, 0, t0 + 3600, [](const auto&) {});
  EXPECT_EQ(s2.responders, 0u);
  EXPECT_EQ(s2.rate_limited, 1u);
  EXPECT_EQ(s2.retries, 0u);
  EXPECT_EQ(s2.probes_lost, 0u);  // refused, not lost — distinct accounting
  // A new week is a new window: the server answers again.
  auto s3 = prober.probe_targets(targets, 1, Prober::sample_time(1),
                                 [](const auto&) {});
  EXPECT_EQ(s3.responders, 1u);
}

TEST_F(RateLimitTest, SilentLimiterEatsRetriesInsteadOfKod) {
  sim::ImpairmentConfig cfg;
  cfg.rate_limiter_fraction = 1.0;
  cfg.rate_limit_per_window = 1;
  cfg.rate_limit_kod = false;  // drop silently: the client keeps trying
  ProbePolicy policy;
  policy.max_retries = 3;
  sim::World world(tiny_config());
  const std::uint32_t idx = durable_responder(world);
  Prober prober(world, kProbeSource, ntp::Implementation::kXntpd, cfg, policy);

  const util::SimTime t0 = Prober::sample_time(0);
  const std::vector<std::uint32_t> targets{idx};
  prober.probe_targets(targets, 0, t0, [](const auto&) {});
  auto s2 = prober.probe_targets(targets, 0, t0 + 3600, [](const auto&) {});
  EXPECT_EQ(s2.responders, 0u);
  EXPECT_EQ(s2.rate_limited, 1u);
  EXPECT_EQ(s2.retries, static_cast<std::uint64_t>(policy.max_retries));
}

TEST(ProberImpairmentTest, PartialTablesFlowIntoCensus) {
  sim::ImpairmentConfig cfg;
  cfg.response_packet_loss = 0.15;
  sim::World world(tiny_config());
  Prober prober(world, kProbeSource, ntp::Implementation::kXntpd, cfg);
  core::AmplifierCensus census(world.registry(), world.pbl());

  census.begin_sample(0, util::Date{2014, 1, 10});
  const auto summary = prober.run_monlist_sample(
      0, [&](const AmplifierObservation& obs) { census.add(obs); });
  census.end_sample();

  EXPECT_GT(summary.truncated_tables, 0u);
  ASSERT_EQ(census.rows().size(), 1u);
  EXPECT_EQ(census.rows()[0].partial_tables, summary.truncated_tables);
  EXPECT_TRUE(census.missing_weeks(1).empty());
}

TEST(ProberImpairmentTest, CensusReportsMissingWeeks) {
  sim::World world(tiny_config());
  core::AmplifierCensus census(world.registry(), world.pbl());
  census.begin_sample(0, util::Date{2014, 1, 10});
  census.end_sample();
  census.begin_sample(2, util::Date{2014, 1, 24});
  census.end_sample();
  EXPECT_EQ(census.missing_weeks(4), (std::vector<int>{1, 3}));
}

TEST(ProberImpairmentTest, VersionPassCountersReproduceAndCount) {
  sim::ImpairmentConfig cfg;
  cfg.seed = 99;
  cfg.request_loss = 0.15;
  cfg.transient_silence_rate = 0.1;

  auto run = [&] {
    sim::World world(tiny_config());
    Prober prober(world, kProbeSource, ntp::Implementation::kXntpd, cfg);
    std::vector<std::tuple<std::uint32_t, std::uint64_t, int>> keys;
    const auto summary =
        prober.run_version_sample(0, [&](const VersionObservation& obs) {
          keys.emplace_back(obs.server_index, obs.response_wire_bytes,
                            obs.stratum);
        });
    return std::make_pair(keys, summary);
  };
  const auto [k1, s1] = run();
  const auto [k2, s2] = run();
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(s1.responders_detailed, s2.responders_detailed);
  EXPECT_EQ(s1.retries, s2.retries);
  EXPECT_EQ(s1.probes_lost, s2.probes_lost);
  EXPECT_GT(s1.retries, 0u);
  EXPECT_EQ(s1.responders_detailed, k1.size());
}

}  // namespace
}  // namespace gorilla::scan
