#include <gtest/gtest.h>

#include "net/ethernet.h"
#include "ntp/mode7.h"
#include "ntp/server.h"

namespace gorilla::ntp {
namespace {

std::vector<PeerListEntry> make_peers(std::size_t n) {
  std::vector<PeerListEntry> peers;
  for (std::size_t i = 0; i < n; ++i) {
    PeerListEntry e;
    e.address = net::Ipv4Address{0x80000000u + static_cast<std::uint32_t>(i)};
    e.port = 123;
    e.hmode = 3;
    e.flags = static_cast<std::uint8_t>(i & 0xff);
    peers.push_back(e);
  }
  return peers;
}

TEST(PeerListTest, GeometryConstants) {
  EXPECT_EQ(kPeerListItemBytes, 32u);
  EXPECT_EQ(kPeerItemsPerPacket, 15u);
}

TEST(PeerListTest, RequestShape) {
  const auto req = make_peer_list_request();
  EXPECT_EQ(req.request, RequestCode::kPeerList);
  EXPECT_FALSE(req.response);
  EXPECT_EQ(serialize(req).size(), kMode7RequestBytes);
}

TEST(PeerListTest, EmptyPeerSetOneNoDataPacket) {
  const auto packets = make_peer_list_response({}, Implementation::kXntpd);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].error, Mode7Error::kNoData);
  EXPECT_EQ(packets[0].item_count, 0);
}

TEST(PeerListTest, RoundTripThroughWire) {
  const auto peers = make_peers(4);
  const auto packets = make_peer_list_response(peers, Implementation::kXntpd);
  ASSERT_EQ(packets.size(), 1u);
  const auto parsed = parse_mode7_packet(serialize(packets[0]));
  ASSERT_TRUE(parsed);
  const auto decoded = decode_peer_items(*parsed);
  ASSERT_EQ(decoded.size(), peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    EXPECT_EQ(decoded[i].address, peers[i].address);
    EXPECT_EQ(decoded[i].port, peers[i].port);
    EXPECT_EQ(decoded[i].hmode, peers[i].hmode);
    EXPECT_EQ(decoded[i].flags, peers[i].flags);
  }
}

TEST(PeerListTest, SixteenPeersSpillToSecondPacket) {
  const auto packets = make_peer_list_response(make_peers(16),
                                               Implementation::kXntpd);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].item_count, 15);
  EXPECT_TRUE(packets[0].more);
  EXPECT_EQ(packets[1].item_count, 1);
  EXPECT_FALSE(packets[1].more);
}

class ServerPeerListTest : public ::testing::Test {
 protected:
  NtpServer make_server(std::vector<PeerListEntry> peers) {
    NtpServerConfig cfg;
    cfg.address = net::Ipv4Address(10, 0, 0, 1);
    cfg.sysvars.system = "linux";
    cfg.peers = std::move(peers);
    return NtpServer(cfg);
  }

  net::UdpPacket request() {
    net::UdpPacket p;
    p.src = net::Ipv4Address(20, 0, 0, 2);
    p.dst = net::Ipv4Address(10, 0, 0, 1);
    p.src_port = 40000;
    p.dst_port = net::kNtpPort;
    p.payload = serialize(make_peer_list_request());
    return p;
  }
};

TEST_F(ServerPeerListTest, ServerAnswersShowpeers) {
  auto server = make_server(make_peers(4));
  const auto resp = server.handle(request(), 1000);
  ASSERT_EQ(resp.packets.size(), 1u);
  const auto parsed = parse_mode7_packet(resp.packets[0].payload);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(decode_peer_items(*parsed).size(), 4u);
}

TEST_F(ServerPeerListTest, ShowpeersBafIsLow) {
  // §3.3: non-monlist commands have much lower amplification — a 4-peer
  // showpeers reply is a single small datagram.
  auto server = make_server(make_peers(4));
  const auto resp = server.handle(request(), 1000);
  const double baf =
      static_cast<double>(resp.total_on_wire_bytes) / 84.0;
  EXPECT_LT(baf, 3.0);
}

TEST_F(ServerPeerListTest, NoQuerySilencesShowpeersToo) {
  auto server = make_server(make_peers(4));
  server.set_monlist_enabled(false);
  EXPECT_EQ(server.handle(request(), 1000).total_packets, 0u);
}

TEST(ServerRateLimitTest, LimitsMode7ResponsesPerMinute) {
  NtpServerConfig cfg;
  cfg.address = net::Ipv4Address(10, 0, 0, 1);
  cfg.sysvars.system = "linux";
  cfg.mode7_responses_per_minute = 3;
  NtpServer server(cfg);
  net::UdpPacket probe;
  probe.src = net::Ipv4Address(20, 0, 0, 2);
  probe.dst = cfg.address;
  probe.src_port = 40000;
  probe.dst_port = net::kNtpPort;
  probe.payload = serialize(make_monlist_request());

  int answered = 0;
  for (int i = 0; i < 10; ++i) {
    if (server.handle(probe, 120 + i).total_packets > 0) ++answered;
  }
  EXPECT_EQ(answered, 3);
  // The silenced requests were still monitored (witnessing continues).
  EXPECT_EQ(server.monitor().find(probe.src)->count, 10u);
  // A fresh minute refills the budget.
  EXPECT_GT(server.handle(probe, 300).total_packets, 0u);
}

TEST(ServerRateLimitTest, ZeroMeansUnlimited) {
  NtpServerConfig cfg;
  cfg.address = net::Ipv4Address(10, 0, 0, 1);
  cfg.sysvars.system = "linux";
  NtpServer server(cfg);
  net::UdpPacket probe;
  probe.src = net::Ipv4Address(20, 0, 0, 2);
  probe.dst = cfg.address;
  probe.src_port = 40000;
  probe.dst_port = net::kNtpPort;
  probe.payload = serialize(make_monlist_request());
  for (int i = 0; i < 50; ++i) {
    EXPECT_GT(server.handle(probe, 100 + i).total_packets, 0u);
  }
}

TEST(ServerRateLimitTest, RateLimitCutsAttackVolume) {
  // The mitigation the paper credits at Merit: rate limits blunt the
  // amplification without fully disabling the service.
  NtpServerConfig cfg;
  cfg.address = net::Ipv4Address(10, 0, 0, 1);
  cfg.sysvars.system = "linux";
  NtpServer open_server(cfg);
  cfg.mode7_responses_per_minute = 10;
  NtpServer limited_server(cfg);

  net::UdpPacket probe;
  probe.src = net::Ipv4Address(66, 0, 0, 1);  // spoofed victim
  probe.dst = cfg.address;
  probe.src_port = 80;
  probe.dst_port = net::kNtpPort;
  probe.payload = serialize(make_monlist_request());

  std::uint64_t open_bytes = 0, limited_bytes = 0;
  for (int i = 0; i < 600; ++i) {  // one minute at 10 pps
    open_bytes += open_server.handle(probe, 60 + i / 10).total_on_wire_bytes;
    limited_bytes +=
        limited_server.handle(probe, 60 + i / 10).total_on_wire_bytes;
  }
  EXPECT_LT(limited_bytes, open_bytes / 5);
  EXPECT_GT(limited_bytes, 0u);
}

}  // namespace
}  // namespace gorilla::ntp
