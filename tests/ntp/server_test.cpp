#include "ntp/server.h"

#include <gtest/gtest.h>

#include "net/ethernet.h"

namespace gorilla::ntp {
namespace {

constexpr net::Ipv4Address kServerAddr{0x0a000001};
constexpr net::Ipv4Address kClientAddr{0x14000002};

NtpServerConfig base_config() {
  NtpServerConfig cfg;
  cfg.address = kServerAddr;
  cfg.sysvars.version = "ntpd 4.2.6p5@1.2349-o Tue May 10 2011";
  cfg.sysvars.system = "Linux/2.6.32";
  cfg.sysvars.stratum = 2;
  return cfg;
}

net::UdpPacket make_packet(std::vector<std::uint8_t> payload,
                           std::uint16_t sport = 40000) {
  net::UdpPacket p;
  p.src = kClientAddr;
  p.dst = kServerAddr;
  p.src_port = sport;
  p.dst_port = net::kNtpPort;
  p.timestamp = 1000;
  p.payload = std::move(payload);
  return p;
}

net::UdpPacket monlist_probe(Implementation impl = Implementation::kXntpd) {
  return make_packet(serialize(make_monlist_request(impl)));
}

net::UdpPacket version_probe() {
  return make_packet(serialize(make_version_request(1)));
}

net::UdpPacket time_query() {
  TimePacket q;
  q.mode = Mode::kClient;
  q.transmit_ts = 0xabcdef;
  return make_packet(serialize(q));
}

TEST(NtpServerTest, AnswersTimeQueryWithMode4) {
  NtpServer server(base_config());
  const auto resp = server.handle(time_query(), 1000);
  ASSERT_EQ(resp.packets.size(), 1u);
  EXPECT_EQ(resp.total_packets, 1u);
  const auto reply = parse_time_packet(resp.packets[0].payload);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->mode, Mode::kServer);
  EXPECT_EQ(reply->stratum, 2);
  EXPECT_EQ(reply->origin_ts, 0xabcdefu);  // echoes client transmit
  EXPECT_EQ(resp.packets[0].src, kServerAddr);
  EXPECT_EQ(resp.packets[0].dst, kClientAddr);
  EXPECT_EQ(resp.packets[0].src_port, net::kNtpPort);
  EXPECT_EQ(resp.packets[0].dst_port, 40000);
}

TEST(NtpServerTest, UnsynchronizedServerReportsLeapAndStratum16) {
  auto cfg = base_config();
  cfg.sysvars.stratum = kStratumUnsynchronized;
  NtpServer server(cfg);
  const auto resp = server.handle(time_query(), 1000);
  const auto reply = parse_time_packet(resp.packets[0].payload);
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->stratum, 16);
  EXPECT_EQ(reply->leap, 3);
}

TEST(NtpServerTest, TimeQueryIsMonitored) {
  NtpServer server(base_config());
  server.handle(time_query(), 1000);
  const auto slot = server.monitor().find(kClientAddr);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->mode, 3);
}

TEST(NtpServerTest, MonlistOnEmptyTableReturnsNoData) {
  NtpServer server(base_config());
  const auto resp = server.handle(monlist_probe(), 1000);
  // The probe itself is recorded first, so the dump carries one entry:
  // the prober (exactly the paper's Table 3a shape).
  ASSERT_EQ(resp.packets.size(), 1u);
  const auto parsed = parse_mode7_packet(resp.packets[0].payload);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->item_count, 1);
  const auto items = decode_items(*parsed);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].address, kClientAddr);
  EXPECT_EQ(items[0].mode, 7);
  EXPECT_EQ(items[0].last_seen, 0u);
}

TEST(NtpServerTest, MonlistDumpsPriorClients) {
  NtpServer server(base_config());
  for (std::uint32_t i = 0; i < 10; ++i) {
    server.monitor().observe(net::Ipv4Address{0x15000000u + i}, 123, 3, 4,
                             500 + i);
  }
  const auto resp = server.handle(monlist_probe(), 1000);
  std::vector<Mode7Packet> parsed;
  for (const auto& pkt : resp.packets) {
    parsed.push_back(*parse_mode7_packet(pkt.payload));
  }
  const auto table = reassemble_monlist(parsed);
  ASSERT_TRUE(table);
  EXPECT_EQ(table->size(), 11u);  // 10 clients + the probe
}

TEST(NtpServerTest, NoQueryServerStaysSilentButRecords) {
  auto cfg = base_config();
  cfg.monlist_enabled = false;
  NtpServer server(cfg);
  const auto resp = server.handle(monlist_probe(), 1000);
  EXPECT_EQ(resp.total_packets, 0u);
  EXPECT_TRUE(resp.packets.empty());
  // But the probe was still monitored — remediated servers keep witnessing.
  EXPECT_TRUE(server.monitor().find(kClientAddr).has_value());
}

TEST(NtpServerTest, ImplementationMismatchGetsTinyError) {
  auto cfg = base_config();
  cfg.accepted_impl = Implementation::kXntpdOld;
  NtpServer server(cfg);
  const auto resp = server.handle(monlist_probe(Implementation::kXntpd), 1000);
  ASSERT_EQ(resp.packets.size(), 1u);
  const auto parsed = parse_mode7_packet(resp.packets[0].payload);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->error, Mode7Error::kImplMismatch);
  EXPECT_EQ(parsed->item_count, 0);
  EXPECT_EQ(resp.total_on_wire_bytes, net::kMinOnWireBytes);  // no amplification
}

TEST(NtpServerTest, UnivImplementationAccepted) {
  NtpServer server(base_config());
  const auto resp = server.handle(monlist_probe(Implementation::kUniv), 1000);
  ASSERT_GE(resp.packets.size(), 1u);
  const auto parsed = parse_mode7_packet(resp.packets[0].payload);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->error, Mode7Error::kOk);
}

TEST(NtpServerTest, VersionProbeReturnsSystemVariables) {
  NtpServer server(base_config());
  const auto resp = server.handle(version_probe(), 1000);
  ASSERT_GE(resp.packets.size(), 1u);
  std::vector<ControlPacket> fragments;
  for (const auto& pkt : resp.packets) {
    fragments.push_back(*parse_control_packet(pkt.payload));
  }
  const auto text = reassemble_readvar(fragments);
  ASSERT_TRUE(text);
  const auto vars = parse_variable_list(*text);
  EXPECT_EQ(vars.at("system"), "Linux/2.6.32");
  EXPECT_EQ(vars.at("stratum"), "2");
}

TEST(NtpServerTest, Mode6DisabledStaysSilent) {
  auto cfg = base_config();
  cfg.mode6_enabled = false;
  NtpServer server(cfg);
  const auto resp = server.handle(version_probe(), 1000);
  EXPECT_EQ(resp.total_packets, 0u);
}

TEST(NtpServerTest, ResponsesNeverAnswered) {
  // A mode 7 *response* packet must not trigger a reply (loop protection).
  NtpServer server(base_config());
  auto resp_pkt = make_monlist_request();
  resp_pkt.response = true;
  const auto resp = server.handle(make_packet(serialize(resp_pkt)), 1000);
  EXPECT_EQ(resp.total_packets, 0u);
}

TEST(NtpServerTest, EmptyPayloadIgnored) {
  NtpServer server(base_config());
  const auto resp = server.handle(make_packet({}), 1000);
  EXPECT_EQ(resp.total_packets, 0u);
}

TEST(NtpServerTest, AmplificationFactorForPrimedTable) {
  // A primed (600-entry) table must amplify a 48-byte query by hundreds
  // on the wire — the §3.2 headline behaviour.
  NtpServer server(base_config());
  for (std::uint32_t i = 0; i < 700; ++i) {
    server.monitor().observe(net::Ipv4Address{0x20000000u + i}, 123, 3, 4,
                             900);
  }
  const auto resp = server.handle(monlist_probe(), 1000);
  EXPECT_EQ(resp.total_packets, 100u);
  const double baf = static_cast<double>(resp.total_on_wire_bytes) / 84.0;
  EXPECT_GT(baf, 400.0);
  EXPECT_LT(baf, 700.0);
}

TEST(NtpServerTest, MegaLoopMultipliesTotalsExactly) {
  auto cfg = base_config();
  cfg.loop_repeat = 4;  // dump sent 5 times
  NtpServer server(cfg);
  const auto resp = server.handle(monlist_probe(), 1000);
  // Each dump: one packet (just the probe entry), repeated 5 times.
  EXPECT_EQ(resp.total_packets, 5u);
  EXPECT_EQ(resp.packets.size(), 5u);
  EXPECT_FALSE(resp.truncated);
  // The probe's count reflects all loop deliveries.
  EXPECT_EQ(server.monitor().find(kClientAddr)->count, 5u);
}

TEST(NtpServerTest, HugeLoopTruncatesMaterializationButNotTotals) {
  auto cfg = base_config();
  cfg.loop_repeat = 1'000'000;
  NtpServer server(cfg);
  const auto resp = server.handle(monlist_probe(), 1000, /*cap=*/100);
  EXPECT_EQ(resp.total_packets, 1'000'001u);
  EXPECT_LE(resp.packets.size(), 100u);
  EXPECT_TRUE(resp.truncated);
  // A single small probe elicits >100MB on the wire: the mega jackpot.
  EXPECT_GT(resp.total_on_wire_bytes, 100'000'000u);
}

TEST(NtpServerTest, LoopAppliesToVersionResponsesToo) {
  auto cfg = base_config();
  cfg.loop_repeat = 2;
  NtpServer server(cfg);
  const auto resp = server.handle(version_probe(), 1000);
  EXPECT_EQ(resp.total_packets, 3u);
}

TEST(NtpServerTest, RemediationHooksTakeEffect) {
  NtpServer server(base_config());
  EXPECT_GT(server.handle(monlist_probe(), 1000).total_packets, 0u);
  server.set_monlist_enabled(false);
  EXPECT_EQ(server.handle(monlist_probe(), 2000).total_packets, 0u);
  server.set_mode6_enabled(false);
  EXPECT_EQ(server.handle(version_probe(), 3000).total_packets, 0u);
}

TEST(NtpServerTest, ReplyTtlMatchesConfig) {
  auto cfg = base_config();
  cfg.initial_ttl = 255;
  NtpServer server(cfg);
  const auto resp = server.handle(time_query(), 1000);
  EXPECT_EQ(resp.packets[0].ttl, 255);
}

TEST(NtpServerTest, SpoofedSourceGetsReflectedTraffic) {
  // The essence of the attack: replies go to the packet's (spoofed) source.
  NtpServer server(base_config());
  auto probe = monlist_probe();
  probe.src = net::Ipv4Address(66, 66, 66, 66);  // the victim
  const auto resp = server.handle(probe, 1000);
  for (const auto& pkt : resp.packets) {
    EXPECT_EQ(pkt.dst, net::Ipv4Address(66, 66, 66, 66));
  }
}

}  // namespace
}  // namespace gorilla::ntp
