#include "ntp/ntp_packet.h"

#include <gtest/gtest.h>

namespace gorilla::ntp {
namespace {

TEST(LiVnModeTest, BitPacking) {
  EXPECT_EQ(make_li_vn_mode(0, 4, Mode::kClient), 0x23);   // 00 100 011
  EXPECT_EQ(make_li_vn_mode(0, 2, Mode::kPrivate), 0x17);  // 00 010 111
  EXPECT_EQ(make_li_vn_mode(3, 4, Mode::kServer), 0xe4);   // 11 100 100
}

TEST(PeekTest, ModeAndVersion) {
  const std::vector<std::uint8_t> pkt = {make_li_vn_mode(0, 3, Mode::kControl)};
  EXPECT_EQ(peek_mode(pkt), Mode::kControl);
  EXPECT_EQ(peek_version(pkt), 3);
}

TEST(PeekTest, EmptyBuffer) {
  EXPECT_FALSE(peek_mode({}));
  EXPECT_FALSE(peek_version({}));
}

TEST(TimePacketTest, SerializesTo48Bytes) {
  TimePacket p;
  EXPECT_EQ(serialize(p).size(), kTimePacketBytes);
}

TEST(TimePacketTest, RoundTrip) {
  TimePacket p;
  p.leap = 3;
  p.version = 4;
  p.mode = Mode::kServer;
  p.stratum = 2;
  p.poll = 10;
  p.precision = -23;
  p.root_delay = 0x12345678;
  p.root_dispersion = 0x9abcdef0;
  p.reference_id = 0x7f000001;
  p.reference_ts = 0x0123456789abcdefULL;
  p.origin_ts = 1;
  p.receive_ts = 2;
  p.transmit_ts = 3;
  const auto wire = serialize(p);
  const auto parsed = parse_time_packet(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->leap, p.leap);
  EXPECT_EQ(parsed->version, p.version);
  EXPECT_EQ(parsed->mode, p.mode);
  EXPECT_EQ(parsed->stratum, p.stratum);
  EXPECT_EQ(parsed->poll, p.poll);
  EXPECT_EQ(parsed->precision, p.precision);
  EXPECT_EQ(parsed->root_delay, p.root_delay);
  EXPECT_EQ(parsed->root_dispersion, p.root_dispersion);
  EXPECT_EQ(parsed->reference_id, p.reference_id);
  EXPECT_EQ(parsed->reference_ts, p.reference_ts);
  EXPECT_EQ(parsed->origin_ts, p.origin_ts);
  EXPECT_EQ(parsed->receive_ts, p.receive_ts);
  EXPECT_EQ(parsed->transmit_ts, p.transmit_ts);
}

TEST(TimePacketTest, RejectsShortBuffer) {
  const auto wire = serialize(TimePacket{});
  EXPECT_FALSE(parse_time_packet(
      std::span<const std::uint8_t>(wire).subspan(0, 47)));
}

TEST(TimePacketTest, RejectsControlAndPrivateModes) {
  std::vector<std::uint8_t> wire = serialize(TimePacket{});
  wire[0] = make_li_vn_mode(0, 2, Mode::kControl);
  EXPECT_FALSE(parse_time_packet(wire));
  wire[0] = make_li_vn_mode(0, 2, Mode::kPrivate);
  EXPECT_FALSE(parse_time_packet(wire));
}

TEST(TimePacketTest, NegativePollAndPrecisionSurvive) {
  TimePacket p;
  p.poll = -6;
  p.precision = -29;
  const auto parsed = parse_time_packet(serialize(p));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->poll, -6);
  EXPECT_EQ(parsed->precision, -29);
}

TEST(ConstantsTest, StratumUnsynchronized) {
  EXPECT_EQ(kStratumUnsynchronized, 16);
}

}  // namespace
}  // namespace gorilla::ntp
