#include "ntp/mode6.h"

#include <gtest/gtest.h>

namespace gorilla::ntp {
namespace {

SystemVariables sample_vars() {
  SystemVariables v;
  v.version = "ntpd 4.2.6p5@1.2349-o Tue May 10 2011";
  v.system = "Linux/2.6.32";
  v.processor = "x86_64";
  v.stratum = 3;
  v.leap = 0;
  v.rootdelay_ms = 1.5;
  v.rootdisp_ms = 10.25;
  return v;
}

TEST(ControlPacketTest, VersionRequestShape) {
  const auto req = make_version_request(7);
  EXPECT_FALSE(req.response);
  EXPECT_EQ(req.opcode, ControlOp::kReadVariables);
  EXPECT_EQ(req.sequence, 7);
  EXPECT_TRUE(req.data.empty());
  EXPECT_EQ(serialize(req).size(), kControlHeaderBytes);
}

TEST(ControlPacketTest, RoundTrip) {
  ControlPacket p;
  p.response = true;
  p.error = false;
  p.more = true;
  p.opcode = ControlOp::kReadVariables;
  p.sequence = 0x1234;
  p.status = 0x0615;
  p.association_id = 42;
  p.offset = 468;
  p.data = {'a', 'b', 'c'};
  const auto parsed = parse_control_packet(serialize(p));
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->response);
  EXPECT_TRUE(parsed->more);
  EXPECT_FALSE(parsed->error);
  EXPECT_EQ(parsed->opcode, ControlOp::kReadVariables);
  EXPECT_EQ(parsed->sequence, 0x1234);
  EXPECT_EQ(parsed->status, 0x0615);
  EXPECT_EQ(parsed->association_id, 42);
  EXPECT_EQ(parsed->offset, 468);
  EXPECT_EQ(parsed->data, (std::vector<std::uint8_t>{'a', 'b', 'c'}));
}

TEST(ControlPacketTest, SerializePadsToFourBytes) {
  ControlPacket p;
  p.data = {'x'};
  EXPECT_EQ(serialize(p).size() % 4, 0u);
  EXPECT_EQ(p.total_bytes(), kControlHeaderBytes + 4);
}

TEST(ControlPacketTest, RejectsNonControlMode) {
  auto wire = serialize(make_version_request());
  wire[0] = make_li_vn_mode(0, 2, Mode::kPrivate);
  EXPECT_FALSE(parse_control_packet(wire));
}

TEST(ControlPacketTest, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> wire(kControlHeaderBytes - 1, 0x06);
  EXPECT_FALSE(parse_control_packet(wire));
}

TEST(ControlPacketTest, RejectsCountBeyondBuffer) {
  ControlPacket p;
  p.data = {'a', 'b', 'c', 'd'};
  auto wire = serialize(p);
  wire[11] = 200;  // declared count >> actual
  EXPECT_FALSE(parse_control_packet(wire));
}

TEST(SystemVariablesTest, RenderContainsAllFields) {
  const auto text = sample_vars().render();
  EXPECT_NE(text.find("version=\"ntpd 4.2.6p5"), std::string::npos);
  EXPECT_NE(text.find("system=\"Linux/2.6.32\""), std::string::npos);
  EXPECT_NE(text.find("stratum=3"), std::string::npos);
  EXPECT_NE(text.find("leap=0"), std::string::npos);
}

TEST(VariableListTest, ParsesQuotedAndBare) {
  const auto vars = parse_variable_list(
      "version=\"ntpd 4.2.6\", system=\"UNIX\", leap=0, stratum=16");
  EXPECT_EQ(vars.at("version"), "ntpd 4.2.6");
  EXPECT_EQ(vars.at("system"), "UNIX");
  EXPECT_EQ(vars.at("leap"), "0");
  EXPECT_EQ(vars.at("stratum"), "16");
}

TEST(VariableListTest, RenderParseRoundTrip) {
  const auto vars = parse_variable_list(sample_vars().render());
  EXPECT_EQ(vars.at("system"), "Linux/2.6.32");
  EXPECT_EQ(vars.at("stratum"), "3");
  EXPECT_EQ(vars.at("version"), "ntpd 4.2.6p5@1.2349-o Tue May 10 2011");
}

TEST(VariableListTest, ToleratesEmptyAndGarbage) {
  EXPECT_TRUE(parse_variable_list("").empty());
  EXPECT_TRUE(parse_variable_list("no equals here").empty());
}

TEST(ReadvarResponseTest, SingleFragmentForShortText) {
  const auto frags = make_readvar_response(sample_vars(), 9);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_TRUE(frags[0].response);
  EXPECT_FALSE(frags[0].more);
  EXPECT_EQ(frags[0].sequence, 9);
  EXPECT_EQ(frags[0].offset, 0);
}

TEST(ReadvarResponseTest, FragmentsLongText) {
  SystemVariables v = sample_vars();
  v.version.assign(600, 'x');  // force > 468 bytes of rendered text
  const auto frags = make_readvar_response(v, 1);
  ASSERT_GE(frags.size(), 2u);
  EXPECT_TRUE(frags.front().more);
  EXPECT_FALSE(frags.back().more);
  for (const auto& f : frags) {
    EXPECT_LE(f.data.size(), kControlMaxDataBytes);
  }
}

TEST(ReadvarResponseTest, ReassemblyRoundTrip) {
  SystemVariables v = sample_vars();
  v.version.assign(1200, 'y');
  const auto frags = make_readvar_response(v, 1);
  const auto text = reassemble_readvar(frags);
  ASSERT_TRUE(text);
  EXPECT_EQ(*text, v.render());
}

TEST(ReadvarResponseTest, ReassemblyHandlesOutOfOrder) {
  SystemVariables v = sample_vars();
  v.version.assign(1200, 'z');
  auto frags = make_readvar_response(v, 1);
  ASSERT_GE(frags.size(), 3u);
  std::swap(frags[0], frags[2]);
  const auto text = reassemble_readvar(frags);
  ASSERT_TRUE(text);
  EXPECT_EQ(*text, v.render());
}

TEST(ReadvarResponseTest, ReassemblyDetectsGaps) {
  SystemVariables v = sample_vars();
  v.version.assign(1200, 'w');
  auto frags = make_readvar_response(v, 1);
  ASSERT_GE(frags.size(), 3u);
  frags.erase(frags.begin() + 1);
  EXPECT_FALSE(reassemble_readvar(frags));
}

TEST(ReadvarResponseTest, ReassemblyDetectsMissingTail) {
  SystemVariables v = sample_vars();
  v.version.assign(1200, 'q');
  auto frags = make_readvar_response(v, 1);
  frags.pop_back();
  EXPECT_FALSE(reassemble_readvar(frags));
}

TEST(ReadvarResponseTest, WireRoundTripThroughSerialization) {
  const auto frags = make_readvar_response(sample_vars(), 3);
  std::vector<ControlPacket> reparsed;
  for (const auto& f : frags) {
    const auto p = parse_control_packet(serialize(f));
    ASSERT_TRUE(p);
    reparsed.push_back(*p);
  }
  const auto text = reassemble_readvar(reparsed);
  ASSERT_TRUE(text);
  const auto vars = parse_variable_list(*text);
  EXPECT_EQ(vars.at("system"), "Linux/2.6.32");
}

}  // namespace
}  // namespace gorilla::ntp
