#include "ntp/ntpdc.h"

#include <gtest/gtest.h>

namespace gorilla::ntp {
namespace {

MonitorEntry entry(std::uint32_t ip, std::uint16_t port, std::uint32_t count,
                   std::uint8_t mode, std::uint32_t avgint,
                   std::uint32_t lstint) {
  MonitorEntry e;
  e.address = net::Ipv4Address{ip};
  e.local_address = net::Ipv4Address(10, 1, 2, 3);
  e.port = port;
  e.mode = mode;
  e.version = 2;
  e.count = count;
  e.avg_interval = avgint;
  e.last_seen = lstint;
  return e;
}

TEST(NtpdcRenderTest, HeaderAndSeparator) {
  const auto text = render_monlist({});
  EXPECT_NE(text.find("remote address"), std::string::npos);
  EXPECT_NE(text.find("avgint"), std::string::npos);
  EXPECT_NE(text.find("====="), std::string::npos);
}

TEST(NtpdcRenderTest, RowContainsAllFields) {
  const auto row = render_monlist_row(
      entry(0xc6336407, 57915, 7, 7, 526929, 0));
  EXPECT_NE(row.find("198.51.100.7"), std::string::npos);
  EXPECT_NE(row.find("57915"), std::string::npos);
  EXPECT_NE(row.find("10.1.2.3"), std::string::npos);
  EXPECT_NE(row.find("526929"), std::string::npos);
}

TEST(NtpdcRenderTest, TextRoundTrip) {
  std::vector<MonitorEntry> table = {
      entry(0xc6336407, 57915, 7, 7, 526929, 0),
      entry(0x42424201, 59436, 3358227026u, 7, 0, 0),
      entry(0x0a030303, 123, 20, 3, 941, 120),
  };
  const auto text = render_monlist(table);
  const auto parsed = parse_monlist_text(text);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ((*parsed)[i].address, table[i].address);
    EXPECT_EQ((*parsed)[i].port, table[i].port);
    EXPECT_EQ((*parsed)[i].count, table[i].count);
    EXPECT_EQ((*parsed)[i].mode, table[i].mode);
    EXPECT_EQ((*parsed)[i].avg_interval, table[i].avg_interval);
    EXPECT_EQ((*parsed)[i].last_seen, table[i].last_seen);
    EXPECT_EQ((*parsed)[i].local_address, table[i].local_address);
  }
}

TEST(NtpdcParseTest, SkipsBlankAndHeaderLines) {
  const std::string text =
      "\nremote address          port local address      count m ver rstr "
      "avgint  lstint\n"
      "==========================================\n\n" +
      render_monlist_row(entry(0x01020304, 80, 5, 7, 10, 20)) + "\n\n";
  const auto parsed = parse_monlist_text(text);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].address, net::Ipv4Address(1, 2, 3, 4));
}

TEST(NtpdcParseTest, EmptyTextYieldsEmptyTable) {
  const auto parsed = parse_monlist_text("");
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->empty());
}

TEST(NtpdcParseTest, RejectsMalformedRow) {
  EXPECT_FALSE(parse_monlist_text("1.2.3.4 not-a-port garbage\n"));
  EXPECT_FALSE(parse_monlist_text("not-an-ip 80 10.0.0.1 5 7 2 0 10 20\n"));
  EXPECT_FALSE(parse_monlist_text("1.2.3.4 99999 10.0.0.1 5 7 2 0 10 20\n"));
  EXPECT_FALSE(parse_monlist_text("1.2.3.4 80 10.0.0.1 5 9 2 0 10 20\n"));
}

TEST(NtpdcParseTest, TruncatedRowRejected) {
  EXPECT_FALSE(parse_monlist_text("1.2.3.4 80 10.0.0.1 5 7\n"));
}

}  // namespace
}  // namespace gorilla::ntp
