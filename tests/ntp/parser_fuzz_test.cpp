// Deterministic fuzz: the wire-format parsers must never crash, loop, or
// over-read on adversarial input — amplifier responses come from the open
// Internet (often from "mis-managed devices", §4.3.3), so every parser is
// an attack surface. Truncations, bit flips, and random garbage must yield
// nullopt/empty, never UB.
#include <gtest/gtest.h>

#include "ntp/mode6.h"
#include "ntp/mode7.h"
#include "ntp/ntp_packet.h"
#include "ntp/ntpdc.h"
#include "util/rng.h"

namespace gorilla::ntp {
namespace {

std::vector<std::uint8_t> sample_mode7_wire() {
  std::vector<MonitorEntry> entries(9);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = net::Ipv4Address{static_cast<std::uint32_t>(i + 1)};
    entries[i].count = static_cast<std::uint32_t>(i);
  }
  const auto packets = make_monlist_response(entries,
                                             Implementation::kXntpd);
  return serialize(packets[0]);
}

std::vector<std::uint8_t> sample_mode6_wire() {
  SystemVariables vars;
  vars.version = "ntpd 4.2.6p5@1.2349-o Tue May 10 2011";
  vars.system = "Linux/2.6.32";
  return serialize(make_readvar_response(vars, 1)[0]);
}

TEST(ParserFuzzTest, Mode7SurvivesAllTruncations) {
  const auto wire = sample_mode7_wire();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto parsed = parse_mode7_packet(
        std::span<const std::uint8_t>(wire).subspan(0, len));
    // Shorter than the declared items -> must reject; a shorter prefix that
    // happens to still look valid must not over-read.
    if (parsed) {
      EXPECT_LE(kMode7HeaderBytes +
                    static_cast<std::size_t>(parsed->item_count) *
                        parsed->item_size,
                len);
    }
  }
}

TEST(ParserFuzzTest, Mode6SurvivesAllTruncations) {
  const auto wire = sample_mode6_wire();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto parsed = parse_control_packet(
        std::span<const std::uint8_t>(wire).subspan(0, len));
    if (parsed) {
      EXPECT_LE(kControlHeaderBytes + parsed->data.size(), len);
    }
  }
}

TEST(ParserFuzzTest, TimePacketSurvivesAllTruncations) {
  const auto wire = serialize(TimePacket{});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(parse_time_packet(
        std::span<const std::uint8_t>(wire).subspan(0, len)));
  }
}

TEST(ParserFuzzTest, Mode7SurvivesBitFlips) {
  const auto wire = sample_mode7_wire();
  util::Rng rng(0xf122);
  for (int trial = 0; trial < 5000; ++trial) {
    auto mutated = wire;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    }
    const auto parsed = parse_mode7_packet(mutated);  // must not crash
    if (parsed) {
      // If accepted, declared geometry must fit the buffer.
      EXPECT_LE(kMode7HeaderBytes +
                    static_cast<std::size_t>(parsed->item_count) *
                        parsed->item_size,
                mutated.size());
      // Decoding accepted items must stay in bounds too.
      const auto items = decode_items(*parsed);
      EXPECT_LE(items.size(), parsed->item_count);
    }
  }
}

TEST(ParserFuzzTest, Mode6SurvivesBitFlips) {
  const auto wire = sample_mode6_wire();
  util::Rng rng(0xf123);
  for (int trial = 0; trial < 5000; ++trial) {
    auto mutated = wire;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    const auto parsed = parse_control_packet(mutated);
    if (parsed) {
      EXPECT_LE(kControlHeaderBytes + parsed->data.size(), mutated.size());
    }
  }
}

TEST(ParserFuzzTest, RandomGarbageNeverParsesAsTable) {
  util::Rng rng(0xf124);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform(600));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    // None of these calls may crash; results are unconstrained except for
    // basic geometry when something parses.
    (void)parse_mode7_packet(garbage);
    (void)parse_control_packet(garbage);
    (void)parse_time_packet(garbage);
  }
}

TEST(ParserFuzzTest, ReassembleMonlistSurvivesShuffledDuplicates) {
  std::vector<MonitorEntry> entries(30);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = net::Ipv4Address{static_cast<std::uint32_t>(i + 1)};
  }
  auto packets = make_monlist_response(entries, Implementation::kXntpd);
  util::Rng rng(0xf125);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Mode7Packet> pile;
    const int copies = static_cast<int>(rng.uniform_int(1, 4));
    for (int c = 0; c < copies; ++c) {
      for (const auto& p : packets) pile.push_back(p);
    }
    // Drop a random suffix and shuffle lightly.
    pile.resize(1 + rng.uniform(pile.size()));
    for (std::size_t i = pile.size(); i > 1; --i) {
      std::swap(pile[i - 1], pile[rng.uniform(i)]);
    }
    const auto table = reassemble_monlist(pile);  // must not crash
    if (table) {
      EXPECT_LE(table->size(), kMonlistMaxEntries);
    }
  }
}

TEST(ParserFuzzTest, Mode7RejectsOversizeDeclaredData) {
  // A datagram that actually carries more than the protocol's 500-byte data
  // area and declares it honestly must still be rejected — mode 7 data areas
  // never exceed kMode7MaxDataBytes, so a bigger claim is an attack or
  // corruption, not a big table.
  Mode7Packet lying;
  lying.response = true;
  lying.item_count = 8;   // 8 * 72 = 576 > 500
  lying.item_size = 72;
  lying.data.assign(8 * 72, 0xab);
  const auto wire = serialize(lying);
  ASSERT_GT(wire.size(), kMode7HeaderBytes + kMode7MaxDataBytes);
  EXPECT_FALSE(parse_mode7_packet(wire));
}

TEST(ParserFuzzTest, DecodersClampLyingItemCounts) {
  // Packets can arrive truncated after parse (the impairment layer cuts
  // payloads mid-item); decoders must bound themselves by the bytes that are
  // actually present, never the header's claim.
  Mode7Packet p;
  p.response = true;
  p.item_count = 100;
  p.item_size = static_cast<std::uint16_t>(kMonitorItemBytes);
  p.data.assign(2 * kMonitorItemBytes + 17, 0x5c);  // 2 whole items + a stub
  EXPECT_EQ(decode_items(p).size(), 2u);

  p.item_size = static_cast<std::uint16_t>(kLegacyMonitorItemBytes);
  p.data.assign(3 * kLegacyMonitorItemBytes + 5, 0x5c);
  EXPECT_EQ(decode_legacy_items(p).size(), 3u);

  p.item_size = static_cast<std::uint16_t>(kPeerListItemBytes);
  p.data.assign(kPeerListItemBytes - 1, 0x5c);  // not even one whole item
  EXPECT_TRUE(decode_peer_items(p).empty());

  p.item_count = 0;
  p.data.assign(5 * kMonitorItemBytes, 0x5c);
  p.item_size = static_cast<std::uint16_t>(kMonitorItemBytes);
  EXPECT_TRUE(decode_items(p).empty());  // count bounds too, not just bytes
}

TEST(ParserFuzzTest, TruncatedResponseChainsReassembleSafely) {
  // Impairment-style damage: cut each datagram of a response chain at every
  // possible point, reparse what survives, and reassemble. Must never crash,
  // and whatever comes back must respect the table cap.
  std::vector<MonitorEntry> entries(20);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = net::Ipv4Address{static_cast<std::uint32_t>(i + 1)};
  }
  const auto packets = make_monlist_response(entries, Implementation::kXntpd);
  util::Rng rng(0xf127);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Mode7Packet> surviving;
    for (const auto& p : packets) {
      auto wire = serialize(p);
      wire.resize(rng.uniform(wire.size() + 1));  // truncate in flight
      if (auto parsed = parse_mode7_packet(wire)) {
        surviving.push_back(std::move(*parsed));
      }
    }
    const auto table = reassemble_monlist(surviving);
    if (table) {
      EXPECT_LE(table->size(), entries.size());
    }
  }
}

TEST(ParserFuzzTest, GarbledResponseChainsReassembleSafely) {
  std::vector<MonitorEntry> entries(20);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = net::Ipv4Address{static_cast<std::uint32_t>(i + 1)};
  }
  const auto packets = make_monlist_response(entries, Implementation::kXntpd);
  util::Rng rng(0xf128);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Mode7Packet> surviving;
    for (const auto& p : packets) {
      auto wire = serialize(p);
      const int flips = static_cast<int>(rng.uniform_int(1, 6));
      for (int f = 0; f < flips; ++f) {
        wire[rng.uniform(wire.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform(8));
      }
      if (auto parsed = parse_mode7_packet(wire)) {
        surviving.push_back(std::move(*parsed));
      }
    }
    const auto table = reassemble_monlist(surviving);  // must not crash
    if (table) {
      EXPECT_LE(table->size(), kMonlistMaxEntries);
    }
  }
}

TEST(ParserFuzzTest, ReassembleClampsOversizeTables) {
  // A malicious (or corrupt) chain claiming more than the 600-entry protocol
  // cap is clamped, not trusted.
  std::vector<MonitorEntry> entries(650);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = net::Ipv4Address{static_cast<std::uint32_t>(i + 1)};
  }
  const auto packets = make_monlist_response(entries, Implementation::kXntpd);
  const auto table = reassemble_monlist(packets);
  ASSERT_TRUE(table);
  EXPECT_EQ(table->size(), kMonlistMaxEntries);
}

TEST(ParserFuzzTest, NtpdcTextSurvivesMutations) {
  std::vector<MonitorEntry> entries(5);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].address = net::Ipv4Address{static_cast<std::uint32_t>(i + 1)};
    entries[i].local_address = net::Ipv4Address(10, 0, 0, 1);
  }
  const auto text = render_monlist(entries);
  util::Rng rng(0xf126);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = text;
    const auto pos = rng.uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    (void)parse_monlist_text(mutated);  // must not crash or hang
  }
}

}  // namespace
}  // namespace gorilla::ntp
