#include "ntp/client.h"

#include <gtest/gtest.h>

#include "net/packet.h"
#include "ntp/server.h"

namespace gorilla::ntp {
namespace {

constexpr net::Ipv4Address kServerAddr{0x0a000001};
constexpr net::Ipv4Address kClientAddr{0x14000002};

NtpServer make_server(int stratum = 2) {
  NtpServerConfig cfg;
  cfg.address = kServerAddr;
  cfg.sysvars.system = "linux";
  cfg.sysvars.stratum = stratum;
  return NtpServer(cfg);
}

/// Runs one full client<->server exchange. The client clock is
/// `client_skew` seconds ahead of true time; network delay is one-way
/// `owd` seconds each direction.
std::optional<ClockSample> exchange(NtpClient& client, NtpServer& server,
                                    util::SimTime true_now,
                                    util::SimTime client_skew,
                                    util::SimTime owd = 0) {
  const util::SimTime local_send = true_now + client_skew;
  net::UdpPacket request;
  request.src = kClientAddr;
  request.dst = kServerAddr;
  request.src_port = 40000;
  request.dst_port = net::kNtpPort;
  request.payload = serialize(client.make_request(local_send));
  const auto response = server.handle(request, true_now + owd);
  if (response.packets.empty()) return std::nullopt;
  const auto reply = parse_time_packet(response.packets[0].payload);
  if (!reply) return std::nullopt;
  const util::SimTime local_recv = true_now + 2 * owd + client_skew;
  return client.process_reply(*reply, local_recv);
}

TEST(NtpTimestampTest, RoundTrip) {
  EXPECT_EQ(from_ntp_timestamp(to_ntp_timestamp(0)), 0.0);
  EXPECT_EQ(from_ntp_timestamp(to_ntp_timestamp(12345)), 12345.0);
  // Fractional part decodes.
  const std::uint64_t half = to_ntp_timestamp(10) | 0x80000000u;
  EXPECT_DOUBLE_EQ(from_ntp_timestamp(half), 10.5);
}

TEST(NtpClientTest, SynchronizedClientMeasuresZeroOffset) {
  auto server = make_server();
  NtpClient client;
  const auto sample = exchange(client, server, 1000, /*skew=*/0);
  ASSERT_TRUE(sample);
  EXPECT_DOUBLE_EQ(sample->offset, 0.0);
  EXPECT_DOUBLE_EQ(sample->delay, 0.0);
  EXPECT_EQ(sample->stratum, 2);
}

TEST(NtpClientTest, MeasuresClockSkew) {
  auto server = make_server();
  NtpClient client;
  // Client clock is 25 seconds fast: offset should be -25.
  const auto sample = exchange(client, server, 5000, /*skew=*/25);
  ASSERT_TRUE(sample);
  EXPECT_NEAR(sample->offset, -25.0, 1e-9);
}

TEST(NtpClientTest, SymmetricDelayDoesNotBiasOffset) {
  auto server = make_server();
  NtpClient client;
  const auto sample = exchange(client, server, 5000, /*skew=*/-40,
                               /*owd=*/3);
  ASSERT_TRUE(sample);
  EXPECT_NEAR(sample->offset, 40.0, 1e-9);
  EXPECT_NEAR(sample->delay, 6.0, 1e-9);
}

TEST(NtpClientTest, RejectsUnsynchronizedServer) {
  // §3.3: a fifth of the NTP population reports stratum 16 — useless to
  // clients even though it happily answers.
  auto server = make_server(kStratumUnsynchronized);
  NtpClient client;
  const auto sample = exchange(client, server, 1000, 0);
  EXPECT_FALSE(sample);
  EXPECT_EQ(client.last_error(), ReplyError::kUnsynchronized);
  EXPECT_EQ(client.samples_recorded(), 0u);
}

TEST(NtpClientTest, RejectsBogusOrigin) {
  NtpClient client;
  (void)client.make_request(100);
  TimePacket forged;
  forged.mode = Mode::kServer;
  forged.stratum = 2;
  forged.origin_ts = to_ntp_timestamp(99);  // not our transmit time
  forged.receive_ts = to_ntp_timestamp(100);
  forged.transmit_ts = to_ntp_timestamp(100);
  EXPECT_FALSE(client.process_reply(forged, 101));
  EXPECT_EQ(client.last_error(), ReplyError::kBogusOrigin);
}

TEST(NtpClientTest, RejectsReplayOfConsumedReply) {
  auto server = make_server();
  NtpClient client;
  const util::SimTime local_send = 1000;
  const auto request_pkt = client.make_request(local_send);
  net::UdpPacket request;
  request.src = kClientAddr;
  request.dst = kServerAddr;
  request.src_port = 40000;
  request.dst_port = net::kNtpPort;
  request.payload = serialize(request_pkt);
  const auto response = server.handle(request, 1000);
  const auto reply = parse_time_packet(response.packets[0].payload);
  ASSERT_TRUE(client.process_reply(*reply, 1001));
  // Replaying the same reply must fail — the origin was consumed.
  EXPECT_FALSE(client.process_reply(*reply, 1002));
  EXPECT_EQ(client.last_error(), ReplyError::kBogusOrigin);
}

TEST(NtpClientTest, RejectsNonServerModes) {
  NtpClient client;
  (void)client.make_request(100);
  TimePacket broadcast;
  broadcast.mode = Mode::kBroadcast;
  EXPECT_FALSE(client.process_reply(broadcast, 101));
  EXPECT_EQ(client.last_error(), ReplyError::kNotServerMode);
}

TEST(NtpClientTest, ClockFilterPrefersMinimumDelay) {
  auto server = make_server();
  NtpClient client;
  // Several exchanges with varying (symmetric) delay; the best sample is
  // the minimum-delay one, whose offset estimate is also the cleanest.
  for (util::SimTime owd : {5, 1, 9, 3}) {
    ASSERT_TRUE(exchange(client, server, 1000 + owd * 100, /*skew=*/7, owd));
  }
  const auto best = client.best_sample();
  ASSERT_TRUE(best);
  EXPECT_NEAR(best->delay, 2.0, 1e-9);  // owd=1 round trip
  EXPECT_NEAR(best->offset, -7.0, 1e-9);
}

TEST(NtpClientTest, FilterHoldsEightSamples) {
  auto server = make_server();
  NtpClient client;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(exchange(client, server, 1000 + i * 64, 0));
  }
  EXPECT_EQ(client.samples_recorded(), 8u);
}

}  // namespace
}  // namespace gorilla::ntp
