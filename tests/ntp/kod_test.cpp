// Kiss-of-Death behaviour: rate-limited servers can answer with a 48-byte
// "RATE" packet; clients recognize it and never mistake it for time.
#include <gtest/gtest.h>

#include "net/ethernet.h"
#include "ntp/client.h"
#include "ntp/server.h"

namespace gorilla::ntp {
namespace {

NtpServerConfig kod_config() {
  NtpServerConfig cfg;
  cfg.address = net::Ipv4Address(10, 0, 0, 1);
  cfg.sysvars.system = "linux";
  cfg.mode7_responses_per_minute = 1;
  cfg.kod_on_rate_limit = true;
  return cfg;
}

net::UdpPacket monlist_probe(const NtpServerConfig& cfg) {
  net::UdpPacket probe;
  probe.src = net::Ipv4Address(20, 0, 0, 2);
  probe.dst = cfg.address;
  probe.src_port = 40000;
  probe.dst_port = net::kNtpPort;
  probe.payload = serialize(make_monlist_request());
  return probe;
}

TEST(KodTest, RateLimitedServerSendsRatePacket) {
  auto cfg = kod_config();
  NtpServer server(cfg);
  const auto probe = monlist_probe(cfg);
  // First request within the minute is answered normally.
  const auto first = server.handle(probe, 60);
  ASSERT_GT(first.total_packets, 0u);
  EXPECT_TRUE(parse_mode7_packet(first.packets[0].payload).has_value());
  // Second is rate-limited: a single 48-byte KoD, not a dump.
  const auto second = server.handle(probe, 61);
  ASSERT_EQ(second.packets.size(), 1u);
  const auto kod = parse_time_packet(second.packets[0].payload);
  ASSERT_TRUE(kod);
  EXPECT_EQ(kod->stratum, 0);
  EXPECT_EQ(kod->reference_id, kKissRate);
  EXPECT_EQ(second.packets[0].payload.size(), kTimePacketBytes);
}

TEST(KodTest, KodCarriesNoAmplification) {
  auto cfg = kod_config();
  NtpServer server(cfg);
  for (std::uint32_t i = 0; i < 700; ++i) {
    server.monitor().observe(net::Ipv4Address{0x30000000u + i}, 123, 3, 4,
                             50);
  }
  const auto probe = monlist_probe(cfg);
  (void)server.handle(probe, 60);  // consume the budget
  const auto limited = server.handle(probe, 61);
  // 48-byte reply to a 48-byte query: on-wire BAF ~1.
  EXPECT_LE(limited.total_on_wire_bytes, 120u);
}

TEST(KodTest, SilentModeWhenKodDisabled) {
  auto cfg = kod_config();
  cfg.kod_on_rate_limit = false;
  NtpServer server(cfg);
  const auto probe = monlist_probe(cfg);
  (void)server.handle(probe, 60);
  EXPECT_EQ(server.handle(probe, 61).total_packets, 0u);
}

TEST(KodTest, ClientRecognizesRateKiss) {
  NtpClient client;
  (void)client.make_request(100);
  TimePacket kod;
  kod.mode = Mode::kServer;
  kod.stratum = 0;
  kod.leap = 3;
  kod.reference_id = kKissRate;
  kod.origin_ts = to_ntp_timestamp(100);
  EXPECT_FALSE(client.process_reply(kod, 101));
  EXPECT_EQ(client.last_error(), ReplyError::kKissOfDeath);
  EXPECT_EQ(client.samples_recorded(), 0u);
}

TEST(KodTest, ClientRecognizesDenyKiss) {
  NtpClient client;
  (void)client.make_request(200);
  TimePacket kod;
  kod.mode = Mode::kServer;
  kod.stratum = 0;
  kod.reference_id = kKissDeny;
  kod.origin_ts = to_ntp_timestamp(200);
  EXPECT_FALSE(client.process_reply(kod, 201));
  EXPECT_EQ(client.last_error(), ReplyError::kKissOfDeath);
}

TEST(KodTest, PlainStratumZeroIsUnsynchronizedNotKiss) {
  NtpClient client;
  (void)client.make_request(300);
  TimePacket reply;
  reply.mode = Mode::kServer;
  reply.stratum = 0;
  reply.reference_id = 0;
  reply.origin_ts = to_ntp_timestamp(300);
  EXPECT_FALSE(client.process_reply(reply, 301));
  EXPECT_EQ(client.last_error(), ReplyError::kUnsynchronized);
}

}  // namespace
}  // namespace gorilla::ntp
