#include "ntp/mode7.h"

#include <gtest/gtest.h>

#include "net/ethernet.h"

namespace gorilla::ntp {
namespace {

MonitorEntry entry(std::uint32_t ip, std::uint16_t port, std::uint8_t mode,
                   std::uint32_t count, std::uint32_t avg_int,
                   std::uint32_t last_seen) {
  MonitorEntry e;
  e.address = net::Ipv4Address{ip};
  e.local_address = net::Ipv4Address{0x0a000001};
  e.port = port;
  e.mode = mode;
  e.version = 2;
  e.count = count;
  e.avg_interval = avg_int;
  e.last_seen = last_seen;
  return e;
}

std::vector<MonitorEntry> make_entries(std::size_t n) {
  std::vector<MonitorEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    entries.push_back(entry(0x01000000u + static_cast<std::uint32_t>(i),
                            static_cast<std::uint16_t>(1024 + i), 7,
                            static_cast<std::uint32_t>(i + 1), 60, 10));
  }
  return entries;
}

TEST(Mode7GeometryTest, PaperConstants) {
  EXPECT_EQ(kMonitorItemBytes, 72u);        // info_monitor_1
  EXPECT_EQ(kMonitorItemsPerPacket, 6u);    // floor(500/72)
  EXPECT_EQ(kMonlistMaxEntries, 600u);      // table cap
  EXPECT_EQ(kMode7RequestBytes, 48u);
  EXPECT_EQ(kMode7AuthRequestBytes, 192u);
}

TEST(Mode7RequestTest, PlainRequestIs48Bytes) {
  const auto wire = serialize(make_monlist_request());
  EXPECT_EQ(wire.size(), kMode7RequestBytes);
}

TEST(Mode7RequestTest, AuthRequestIs192Bytes) {
  const auto wire = serialize(
      make_monlist_request(Implementation::kXntpd, /*authenticated=*/true));
  EXPECT_EQ(wire.size(), kMode7AuthRequestBytes);
}

TEST(Mode7RequestTest, RoundTrip) {
  const auto req = make_monlist_request(Implementation::kXntpdOld);
  const auto parsed = parse_mode7_packet(serialize(req));
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->response);
  EXPECT_FALSE(parsed->more);
  EXPECT_EQ(parsed->implementation, Implementation::kXntpdOld);
  EXPECT_EQ(parsed->request, RequestCode::kMonGetList1);
  EXPECT_EQ(parsed->error, Mode7Error::kOk);
  EXPECT_EQ(parsed->item_count, 0);
}

TEST(Mode7ParseTest, RejectsNonPrivateMode) {
  auto wire = serialize(make_monlist_request());
  wire[0] = make_li_vn_mode(0, 2, Mode::kControl);
  EXPECT_FALSE(parse_mode7_packet(wire));
}

TEST(Mode7ParseTest, RejectsTruncatedItems) {
  const auto packets = make_monlist_response(make_entries(3),
                                             Implementation::kXntpd);
  auto wire = serialize(packets[0]);
  wire.resize(wire.size() - 10);  // chop into the last item
  EXPECT_FALSE(parse_mode7_packet(wire));
}

TEST(Mode7ParseTest, RejectsShortHeader) {
  const std::vector<std::uint8_t> wire = {0x97, 0x00, 0x03};
  EXPECT_FALSE(parse_mode7_packet(wire));
}

TEST(MonlistResponseTest, EmptyTableOneNoDataPacket) {
  const auto packets = make_monlist_response({}, Implementation::kXntpd);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].error, Mode7Error::kNoData);
  EXPECT_EQ(packets[0].item_count, 0);
  EXPECT_FALSE(packets[0].more);
}

TEST(MonlistResponseTest, SixEntriesFitOnePacket) {
  const auto packets = make_monlist_response(make_entries(6),
                                             Implementation::kXntpd);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].item_count, 6);
  EXPECT_FALSE(packets[0].more);
  EXPECT_EQ(serialize(packets[0]).size(),
            kMode7HeaderBytes + 6 * kMonitorItemBytes);
}

TEST(MonlistResponseTest, SevenEntriesSpillToSecondPacket) {
  const auto packets = make_monlist_response(make_entries(7),
                                             Implementation::kXntpd);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].item_count, 6);
  EXPECT_TRUE(packets[0].more);
  EXPECT_EQ(packets[0].sequence, 0);
  EXPECT_EQ(packets[1].item_count, 1);
  EXPECT_FALSE(packets[1].more);
  EXPECT_EQ(packets[1].sequence, 1);
}

TEST(MonlistResponseTest, FullTableIsHundredPackets) {
  const auto packets = make_monlist_response(make_entries(600),
                                             Implementation::kXntpd);
  EXPECT_EQ(packets.size(), 100u);
  EXPECT_TRUE(packets[98].more);
  EXPECT_FALSE(packets[99].more);
}

TEST(MonlistResponseTest, TableCappedAt600) {
  const auto packets = make_monlist_response(make_entries(900),
                                             Implementation::kXntpd);
  std::size_t total_items = 0;
  for (const auto& p : packets) total_items += p.item_count;
  EXPECT_EQ(total_items, 600u);
}

TEST(MonlistResponseTest, ItemRoundTrip) {
  const auto original = entry(0xc0a80101u, 59436, 7, 3358227026u, 0, 0);
  const auto packets = make_monlist_response(std::vector{original},
                                             Implementation::kXntpd);
  const auto parsed = parse_mode7_packet(serialize(packets[0]));
  ASSERT_TRUE(parsed);
  const auto items = decode_items(*parsed);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].address, original.address);
  EXPECT_EQ(items[0].port, original.port);
  EXPECT_EQ(items[0].mode, original.mode);
  EXPECT_EQ(items[0].count, original.count);  // >3e9 survives (Table 3b)
  EXPECT_EQ(items[0].avg_interval, original.avg_interval);
  EXPECT_EQ(items[0].last_seen, original.last_seen);
}

TEST(MonlistResponseTest, ReassembleAcrossPackets) {
  const auto entries = make_entries(20);
  const auto packets = make_monlist_response(entries, Implementation::kXntpd);
  const auto table = reassemble_monlist(packets);
  ASSERT_TRUE(table);
  ASSERT_EQ(table->size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*table)[i].address, entries[i].address);
  }
}

TEST(MonlistResponseTest, ReassembleKeepsFinalRepeatedRun) {
  // Mega amplifiers resend the table; the analysis keeps the last run.
  const auto run1 = make_monlist_response(make_entries(8),
                                          Implementation::kXntpd);
  auto entries2 = make_entries(8);
  entries2[0].count = 999;  // the final run differs
  const auto run2 = make_monlist_response(entries2, Implementation::kXntpd);
  std::vector<Mode7Packet> combined = run1;
  combined.insert(combined.end(), run2.begin(), run2.end());
  const auto table = reassemble_monlist(combined);
  ASSERT_TRUE(table);
  ASSERT_EQ(table->size(), 8u);
  EXPECT_EQ((*table)[0].count, 999u);
}

TEST(MonlistResponseTest, ReassembleRejectsNonMonlist) {
  std::vector<Mode7Packet> packets = {make_monlist_request()};
  EXPECT_FALSE(reassemble_monlist(packets));
}

TEST(ErrorResponseTest, TinyAndCarriesCode) {
  const auto err = make_mode7_error(Mode7Error::kImplMismatch,
                                    Implementation::kXntpd,
                                    RequestCode::kMonGetList1);
  const auto wire = serialize(err);
  EXPECT_EQ(wire.size(), kMode7HeaderBytes);
  const auto parsed = parse_mode7_packet(wire);
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->response);
  EXPECT_EQ(parsed->error, Mode7Error::kImplMismatch);
}

TEST(DumpSizeTest, PacketsFormula) {
  EXPECT_EQ(monlist_dump_packets(0), 1u);
  EXPECT_EQ(monlist_dump_packets(1), 1u);
  EXPECT_EQ(monlist_dump_packets(6), 1u);
  EXPECT_EQ(monlist_dump_packets(7), 2u);
  EXPECT_EQ(monlist_dump_packets(600), 100u);
  EXPECT_EQ(monlist_dump_packets(10000), 100u);  // capped
}

TEST(DumpSizeTest, UdpBytesFormula) {
  EXPECT_EQ(monlist_dump_udp_bytes(6), 8 + 6 * 72u);
  EXPECT_EQ(monlist_dump_udp_bytes(600), 100 * 8 + 600 * 72u);
}

TEST(DumpSizeTest, WireBytesMatchMaterializedPackets) {
  for (const std::size_t n : {0u, 1u, 5u, 6u, 7u, 13u, 600u}) {
    const auto packets = make_monlist_response(make_entries(n),
                                               Implementation::kXntpd);
    std::uint64_t wire = 0;
    for (const auto& p : packets) {
      wire += net::on_wire_bytes_for_udp(serialize(p).size());
    }
    EXPECT_EQ(monlist_dump_wire_bytes(n), wire) << "n=" << n;
  }
}

TEST(DumpSizeTest, FullDumpUnder50KB) {
  // §3.4: "The expected maximum amount of data returned for a query is
  // under 50K"; the wire-format model must agree.
  EXPECT_LT(monlist_dump_wire_bytes(600), 52'000u);
  EXPECT_GT(monlist_dump_wire_bytes(600), 45'000u);
}

// Parameterized sweep: every table size round-trips through serialize ->
// parse -> reassemble with content intact.
class MonlistSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MonlistSizeSweep, WireRoundTrip) {
  const auto entries = make_entries(GetParam());
  const auto packets = make_monlist_response(entries, Implementation::kXntpd);
  std::vector<Mode7Packet> reparsed;
  for (const auto& p : packets) {
    const auto q = parse_mode7_packet(serialize(p));
    ASSERT_TRUE(q);
    reparsed.push_back(*q);
  }
  const auto table = reassemble_monlist(reparsed);
  ASSERT_TRUE(table);
  ASSERT_EQ(table->size(), std::min<std::size_t>(GetParam(), 600));
  for (std::size_t i = 0; i < table->size(); ++i) {
    EXPECT_EQ((*table)[i].address, entries[i].address);
    EXPECT_EQ((*table)[i].count, entries[i].count);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MonlistSizeSweep,
                         ::testing::Values(1, 2, 5, 6, 7, 11, 12, 59, 60, 100,
                                           599, 600, 601, 750));

}  // namespace
}  // namespace gorilla::ntp
