// Model-based test: MonitorTable against a trivially-correct reference
// implementation under long random operation sequences. The MRU table is
// the evidentiary heart of the study (every §4 number flows through it),
// so its eviction, ordering, and interval arithmetic get the heavy
// treatment.
#include <gtest/gtest.h>

#include <map>

#include "ntp/monlist.h"
#include "util/rng.h"

namespace gorilla::ntp {
namespace {

/// The obviously-correct reference: a plain map plus linear eviction.
class ReferenceTable {
 public:
  explicit ReferenceTable(std::size_t capacity) : capacity_(capacity) {}

  void observe_many(std::uint32_t addr, std::uint16_t port, std::uint8_t mode,
                    std::uint64_t count, util::SimTime first,
                    util::SimTime last) {
    if (count == 0) return;
    auto it = slots_.find(addr);
    if (it == slots_.end()) {
      if (slots_.size() >= capacity_) {
        auto victim = slots_.begin();
        for (auto cur = slots_.begin(); cur != slots_.end(); ++cur) {
          if (cur->second.last < victim->second.last) victim = cur;
        }
        slots_.erase(victim);
      }
      it = slots_.emplace(addr, Slot{port, mode, 0, first, first}).first;
    }
    it->second.port = port;
    it->second.mode = mode;
    it->second.count += count;
    it->second.first = std::min(it->second.first, first);
    it->second.last = std::max(it->second.last, last);
  }

  struct Slot {
    std::uint16_t port;
    std::uint8_t mode;
    std::uint64_t count;
    util::SimTime first;
    util::SimTime last;
  };

  void expire_before(util::SimTime cutoff) {
    for (auto it = slots_.begin(); it != slots_.end();) {
      it = it->second.last < cutoff ? slots_.erase(it) : std::next(it);
    }
  }

  [[nodiscard]] const std::map<std::uint32_t, Slot>& slots() const {
    return slots_;
  }

 private:
  std::size_t capacity_;
  std::map<std::uint32_t, Slot> slots_;
};

class MonlistModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonlistModelTest, AgreesWithReferenceUnderRandomOps) {
  util::Rng rng(GetParam());
  const std::size_t capacity = 1 + rng.uniform(40);
  MonitorTable table(capacity);
  ReferenceTable reference(capacity);

  util::SimTime clock = 0;
  for (int op = 0; op < 3000; ++op) {
    // Strictly increasing clock so every slot's last-seen is unique and
    // eviction has a deterministic victim in both implementations.
    clock += 1 + static_cast<util::SimTime>(rng.uniform(50));
    // Address space small enough to force collisions AND evictions.
    const auto addr = static_cast<std::uint32_t>(1 + rng.uniform(capacity * 3));
    const auto port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    const auto mode = static_cast<std::uint8_t>(rng.uniform_int(1, 7));
    const std::uint64_t count = rng.chance(0.2) ? rng.uniform(100000) : 1;
    const util::SimTime first =
        clock - static_cast<util::SimTime>(rng.uniform(30));
    table.observe_many(net::Ipv4Address{addr}, port, mode, 2, count, first,
                       clock);
    reference.observe_many(addr, port, mode, count, first, clock);

    if (op % 97 == 0) {
      // Periodic deep compare via dump.
      const auto entries = table.dump(clock, net::Ipv4Address{0x0a000001});
      ASSERT_EQ(entries.size(), reference.slots().size()) << "op " << op;
      for (const auto& e : entries) {
        const auto it = reference.slots().find(e.address.value());
        ASSERT_NE(it, reference.slots().end());
        EXPECT_EQ(e.port, it->second.port);
        EXPECT_EQ(e.mode, it->second.mode);
        EXPECT_EQ(e.count,
                  std::min<std::uint64_t>(it->second.count, 0xffffffffu));
        const std::uint64_t span =
            static_cast<std::uint64_t>(it->second.last - it->second.first);
        const std::uint32_t expected_interval =
            it->second.count > 1
                ? static_cast<std::uint32_t>(span / (it->second.count - 1))
                : 0;
        EXPECT_EQ(e.avg_interval, expected_interval);
        EXPECT_EQ(e.last_seen,
                  static_cast<std::uint32_t>(clock - it->second.last));
      }
      // Dump order: most recently seen first (ties by address).
      for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_LE(entries[i - 1].last_seen, entries[i].last_seen);
      }
    }
    if (op % 501 == 0 && op > 0) {
      // Occasional restart, mirrored on both sides.
      const util::SimTime cutoff =
          clock - static_cast<util::SimTime>(rng.uniform(2000));
      table.expire_before(cutoff);
      reference.expire_before(cutoff);
    }
  }
  // Final invariant: never above capacity.
  EXPECT_LE(table.size(), capacity);
  EXPECT_EQ(table.size(), reference.slots().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonlistModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace gorilla::ntp
