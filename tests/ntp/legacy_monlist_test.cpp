// Tests for the legacy MON_GETLIST (code 20) path — the pre-info_monitor_1
// layout older ntpd builds answer with (§3's implementation-variant
// discussion).
#include <gtest/gtest.h>

#include "net/ethernet.h"
#include "ntp/mode7.h"
#include "ntp/server.h"

namespace gorilla::ntp {
namespace {

std::vector<MonitorEntry> make_entries(std::size_t n) {
  std::vector<MonitorEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    MonitorEntry e;
    e.address = net::Ipv4Address{0x01000000u + static_cast<std::uint32_t>(i)};
    e.count = static_cast<std::uint32_t>(i * 3 + 1);
    e.avg_interval = static_cast<std::uint32_t>(i);
    e.last_seen = static_cast<std::uint32_t>(i * 2);
    e.mode = 7;
    e.version = 2;
    entries.push_back(e);
  }
  return entries;
}

TEST(LegacyMonlistTest, GeometryConstants) {
  EXPECT_EQ(kLegacyMonitorItemBytes, 32u);
  EXPECT_EQ(kLegacyMonitorItemsPerPacket, 15u);
}

TEST(LegacyMonlistTest, FifteenItemsPerPacket) {
  const auto packets = make_legacy_monlist_response(make_entries(16),
                                                    Implementation::kXntpdOld);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].item_count, 15);
  EXPECT_EQ(packets[0].item_size, kLegacyMonitorItemBytes);
  EXPECT_EQ(packets[0].request, RequestCode::kMonGetList);
  EXPECT_TRUE(packets[0].more);
  EXPECT_EQ(packets[1].item_count, 1);
}

TEST(LegacyMonlistTest, RoundTripPreservesCoreFields) {
  const auto entries = make_entries(7);
  const auto packets = make_legacy_monlist_response(entries,
                                                    Implementation::kXntpdOld);
  const auto parsed = parse_mode7_packet(serialize(packets[0]));
  ASSERT_TRUE(parsed);
  const auto decoded = decode_legacy_items(*parsed);
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].address, entries[i].address);
    EXPECT_EQ(decoded[i].count, entries[i].count);
    EXPECT_EQ(decoded[i].avg_interval, entries[i].avg_interval);
    EXPECT_EQ(decoded[i].last_seen, entries[i].last_seen);
    EXPECT_EQ(decoded[i].mode, entries[i].mode);
    // The legacy layout carries no source port.
    EXPECT_EQ(decoded[i].port, 0);
  }
}

TEST(LegacyMonlistTest, LowerAmplificationThanModern) {
  // 600 entries: modern = 100 datagrams of 440B data; legacy = 40 datagrams
  // of 480B — the legacy command amplifies noticeably less.
  const auto entries = make_entries(600);
  const auto modern = make_monlist_response(entries, Implementation::kXntpd);
  const auto legacy = make_legacy_monlist_response(entries,
                                                   Implementation::kXntpd);
  EXPECT_EQ(modern.size(), 100u);
  EXPECT_EQ(legacy.size(), 40u);
  std::uint64_t modern_bytes = 0, legacy_bytes = 0;
  for (const auto& p : modern) modern_bytes += serialize(p).size();
  for (const auto& p : legacy) legacy_bytes += serialize(p).size();
  EXPECT_LT(legacy_bytes, modern_bytes / 2);
}

TEST(LegacyMonlistTest, ServerAnswersLegacyRequestCode) {
  NtpServerConfig cfg;
  cfg.address = net::Ipv4Address(10, 0, 0, 1);
  cfg.sysvars.system = "linux";
  NtpServer server(cfg);
  for (std::uint32_t i = 0; i < 20; ++i) {
    server.monitor().observe(net::Ipv4Address{0x20000000u + i}, 123, 3, 4,
                             100 + i);
  }
  auto request = make_monlist_request();
  request.request = RequestCode::kMonGetList;
  net::UdpPacket probe;
  probe.src = net::Ipv4Address(20, 0, 0, 2);
  probe.dst = cfg.address;
  probe.src_port = 40000;
  probe.dst_port = net::kNtpPort;
  probe.payload = serialize(request);
  const auto response = server.handle(probe, 1000);
  ASSERT_FALSE(response.packets.empty());
  const auto parsed = parse_mode7_packet(response.packets[0].payload);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->request, RequestCode::kMonGetList);
  EXPECT_EQ(parsed->item_size, kLegacyMonitorItemBytes);
  const auto items = decode_legacy_items(*parsed);
  ASSERT_FALSE(items.empty());
  EXPECT_EQ(items[0].address, probe.src);  // the probe itself, most recent
}

TEST(LegacyMonlistTest, EmptyTableNoDataReply) {
  const auto packets =
      make_legacy_monlist_response({}, Implementation::kXntpdOld);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].error, Mode7Error::kNoData);
}

}  // namespace
}  // namespace gorilla::ntp
