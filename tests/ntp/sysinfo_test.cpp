#include "ntp/sysinfo.h"

#include <gtest/gtest.h>

#include <map>

namespace gorilla::ntp {
namespace {

TEST(SystemDistributionTest, PoolsHaveDistinctLeaders) {
  // Table 2: the overall NTP pool is cisco-led; amplifiers are linux-led;
  // megas are linux/junos.
  EXPECT_EQ(system_string_distribution(SystemPool::kAllNtp)[0].first, "cisco");
  EXPECT_EQ(system_string_distribution(SystemPool::kAllAmplifiers)[0].first,
            "linux");
  EXPECT_EQ(system_string_distribution(SystemPool::kMega)[0].first, "linux");
  EXPECT_EQ(system_string_distribution(SystemPool::kMega)[1].first, "junos");
}

TEST(SystemDistributionTest, SamplingTracksWeights) {
  util::Rng rng(1);
  std::map<std::string, int> counts;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[sample_system_string(SystemPool::kAllNtp, rng)];
  }
  EXPECT_NEAR(counts["cisco"] / double(n), 0.484, 0.02);
  EXPECT_NEAR(counts["unix"] / double(n), 0.306, 0.02);
  EXPECT_NEAR(counts["linux"] / double(n), 0.19, 0.02);
}

TEST(SystemDistributionTest, AmplifierPoolLinuxDominates) {
  util::Rng rng(2);
  int linux_count = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sample_system_string(SystemPool::kAllAmplifiers, rng) == "linux") {
      ++linux_count;
    }
  }
  EXPECT_NEAR(linux_count / double(n), 0.80, 0.02);
}

TEST(CompileYearTest, CumulativeFractionsMatchPaper) {
  util::Rng rng(3);
  constexpr int n = 100000;
  int before2004 = 0, before2010 = 0, before2012 = 0, recent = 0;
  for (int i = 0; i < n; ++i) {
    const int y = sample_compile_year(rng);
    EXPECT_GE(y, 1998);
    EXPECT_LE(y, 2014);
    if (y < 2004) ++before2004;
    if (y < 2010) ++before2010;
    if (y < 2012) ++before2012;
    if (y >= 2013) ++recent;
  }
  EXPECT_NEAR(before2004 / double(n), 0.13, 0.01);   // §3.3: 13% before 2004
  EXPECT_NEAR(before2010 / double(n), 0.23, 0.01);   // 23% before 2010
  EXPECT_NEAR(before2012 / double(n), 0.59, 0.01);   // 59% before 2012
  EXPECT_NEAR(recent / double(n), 0.21, 0.01);       // 21% in 2013-14
}

TEST(StratumTest, NineteenPercentUnsynchronized) {
  util::Rng rng(4);
  constexpr int n = 100000;
  int stratum16 = 0;
  for (int i = 0; i < n; ++i) {
    const int s = sample_stratum(rng);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 16);
    if (s == kStratumUnsynchronized) ++stratum16;
  }
  EXPECT_NEAR(stratum16 / double(n), 0.19, 0.01);
}

TEST(MakeSystemVariablesTest, EmbedsIdentity) {
  util::Rng rng(5);
  const auto vars = make_system_variables("junos", 2009, 16, rng);
  EXPECT_EQ(vars.system, "junos");
  EXPECT_EQ(vars.stratum, 16);
  EXPECT_EQ(vars.leap, 3);
  EXPECT_NE(vars.version.find("2009"), std::string::npos);
  EXPECT_NE(vars.version.find("ntpd "), std::string::npos);
}

TEST(ExtractCompileYearTest, FindsTrailingYear) {
  EXPECT_EQ(extract_compile_year("ntpd 4.2.6p5@1.2349-o Tue May 10 2011"),
            2011);
  EXPECT_EQ(extract_compile_year("ntpd 4.1.1@1.786 Mon Feb  3 2003"), 2003);
}

TEST(ExtractCompileYearTest, IgnoresNonYearDigits) {
  EXPECT_EQ(extract_compile_year("ntpd 4.2.8p15"), 0);
  EXPECT_EQ(extract_compile_year(""), 0);
  // 2349 in the build number is a plausible year token; the last valid year
  // wins, which is the date's.
  EXPECT_EQ(extract_compile_year("ntpd 4.2.6@1.2349-o Jan 5 2012"), 2012);
}

TEST(ExtractCompileYearTest, RoundTripsWithGenerator) {
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const int year = sample_compile_year(rng);
    const auto vars = make_system_variables("linux", year, 2, rng);
    EXPECT_EQ(extract_compile_year(vars.version), year) << vars.version;
  }
}

TEST(NormalizeOsLabelTest, MapsVariants) {
  EXPECT_EQ(normalize_os_label("Linux/2.6.32"), "linux");
  EXPECT_EQ(normalize_os_label("Linux2.4.20"), "linux");
  EXPECT_EQ(normalize_os_label("cisco IOS"), "cisco");
  EXPECT_EQ(normalize_os_label("JUNOS 10.4"), "junos");
  EXPECT_EQ(normalize_os_label("FreeBSD/9.1 bsd"), "bsd");
  EXPECT_EQ(normalize_os_label("UNIX"), "unix");
  EXPECT_EQ(normalize_os_label("Windows"), "windows");
  EXPECT_EQ(normalize_os_label("SomethingElse OS"), "OTHER");
}

TEST(NormalizeOsLabelTest, CiscoBeforeUnixForIosXr) {
  // Some Cisco IOS-XR devices report "UNIX" — the label logic checks cisco
  // first so explicit cisco strings stay cisco.
  EXPECT_EQ(normalize_os_label("cisco-UNIX"), "cisco");
}

}  // namespace
}  // namespace gorilla::ntp
