#include "ntp/monlist.h"

#include <gtest/gtest.h>

namespace gorilla::ntp {
namespace {

constexpr net::Ipv4Address kLocal{0x0a000001};

TEST(MonitorTableTest, StartsEmpty) {
  MonitorTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), kMonlistMaxEntries);
  EXPECT_TRUE(table.dump(100, kLocal).empty());
}

TEST(MonitorTableTest, ObserveCreatesSlot) {
  MonitorTable table;
  table.observe(net::Ipv4Address(1, 2, 3, 4), 123, 3, 4, 50);
  EXPECT_EQ(table.size(), 1u);
  const auto slot = table.find(net::Ipv4Address(1, 2, 3, 4));
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->count, 1u);
  EXPECT_EQ(slot->first_seen, 50);
  EXPECT_EQ(slot->last_seen, 50);
}

TEST(MonitorTableTest, RepeatObservationsUpdateInPlace) {
  MonitorTable table;
  const net::Ipv4Address client(1, 2, 3, 4);
  table.observe(client, 1000, 3, 4, 10);
  table.observe(client, 2000, 7, 2, 70);
  EXPECT_EQ(table.size(), 1u);
  const auto slot = table.find(client);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->count, 2u);
  EXPECT_EQ(slot->port, 2000);   // last packet wins
  EXPECT_EQ(slot->mode, 7);
  EXPECT_EQ(slot->first_seen, 10);
  EXPECT_EQ(slot->last_seen, 70);
}

TEST(MonitorTableTest, DumpComputesAvgIntervalAndLastSeen) {
  MonitorTable table;
  const net::Ipv4Address client(1, 2, 3, 4);
  // 7 packets spread over 6 weeks: avg interval ~ 604800.
  table.observe_many(client, 123, 7, 2, 7, 0, 6 * 604800);
  const auto entries = table.dump(6 * 604800 + 100, kLocal);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].avg_interval, 604800u);
  EXPECT_EQ(entries[0].last_seen, 100u);
  EXPECT_EQ(entries[0].count, 7u);
  EXPECT_EQ(entries[0].local_address, kLocal);
}

TEST(MonitorTableTest, SinglePacketHasZeroInterval) {
  MonitorTable table;
  table.observe(net::Ipv4Address(1, 2, 3, 4), 123, 3, 4, 500);
  const auto entries = table.dump(500, kLocal);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].avg_interval, 0u);
  EXPECT_EQ(entries[0].last_seen, 0u);
}

TEST(MonitorTableTest, DumpOrdersMostRecentFirst) {
  MonitorTable table;
  table.observe(net::Ipv4Address(1, 0, 0, 1), 1, 3, 4, 100);
  table.observe(net::Ipv4Address(1, 0, 0, 2), 2, 3, 4, 300);
  table.observe(net::Ipv4Address(1, 0, 0, 3), 3, 3, 4, 200);
  const auto entries = table.dump(400, kLocal);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].address, net::Ipv4Address(1, 0, 0, 2));
  EXPECT_EQ(entries[1].address, net::Ipv4Address(1, 0, 0, 3));
  EXPECT_EQ(entries[2].address, net::Ipv4Address(1, 0, 0, 1));
}

TEST(MonitorTableTest, ProbeAppearsTopmostAfterProbing) {
  // Table 3a: the ONP probe is typically the topmost entry with last
  // seen 0 — the most recent client is the prober itself.
  MonitorTable table;
  table.observe(net::Ipv4Address(9, 9, 9, 9), 1234, 3, 4, 50);
  table.observe(net::Ipv4Address(8, 8, 8, 8), 57915, 7, 2, 100);
  const auto entries = table.dump(100, kLocal);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].address, net::Ipv4Address(8, 8, 8, 8));
  EXPECT_EQ(entries[0].last_seen, 0u);
  EXPECT_EQ(entries[0].mode, 7);
}

TEST(MonitorTableTest, EvictsLeastRecentlySeenAtCapacity) {
  MonitorTable table(3);
  table.observe(net::Ipv4Address(1, 0, 0, 1), 1, 3, 4, 10);
  table.observe(net::Ipv4Address(1, 0, 0, 2), 2, 3, 4, 20);
  table.observe(net::Ipv4Address(1, 0, 0, 3), 3, 3, 4, 30);
  table.observe(net::Ipv4Address(1, 0, 0, 4), 4, 3, 4, 40);  // evicts .1
  EXPECT_EQ(table.size(), 3u);
  EXPECT_FALSE(table.find(net::Ipv4Address(1, 0, 0, 1)).has_value());
  EXPECT_TRUE(table.find(net::Ipv4Address(1, 0, 0, 4)).has_value());
}

TEST(MonitorTableTest, ReobservationRefreshesEvictionOrder) {
  MonitorTable table(2);
  table.observe(net::Ipv4Address(1, 0, 0, 1), 1, 3, 4, 10);
  table.observe(net::Ipv4Address(1, 0, 0, 2), 2, 3, 4, 20);
  table.observe(net::Ipv4Address(1, 0, 0, 1), 1, 3, 4, 30);  // refresh .1
  table.observe(net::Ipv4Address(1, 0, 0, 3), 3, 3, 4, 40);  // evicts .2
  EXPECT_TRUE(table.find(net::Ipv4Address(1, 0, 0, 1)).has_value());
  EXPECT_FALSE(table.find(net::Ipv4Address(1, 0, 0, 2)).has_value());
}

TEST(MonitorTableTest, CapacityIs600ByDefault) {
  MonitorTable table;
  for (std::uint32_t i = 0; i < 700; ++i) {
    table.observe(net::Ipv4Address{0x01000000u + i}, 1, 3, 4,
                  static_cast<util::SimTime>(i));
  }
  EXPECT_EQ(table.size(), 600u);
  // The earliest 100 clients were recycled.
  EXPECT_FALSE(table.find(net::Ipv4Address{0x01000000u}).has_value());
  EXPECT_TRUE(table.find(net::Ipv4Address{0x01000000u + 699}).has_value());
}

TEST(MonitorTableTest, ObserveManyMatchesRepeatedObserve) {
  MonitorTable bulk, loop;
  const net::Ipv4Address client(5, 5, 5, 5);
  bulk.observe_many(client, 80, 7, 2, 100, 1000, 1990);
  for (int i = 0; i < 100; ++i) {
    loop.observe(client, 80, 7, 2, 1000 + i * 10);
  }
  const auto be = bulk.dump(2000, kLocal);
  const auto le = loop.dump(2000, kLocal);
  ASSERT_EQ(be.size(), 1u);
  ASSERT_EQ(le.size(), 1u);
  EXPECT_EQ(be[0].count, le[0].count);
  EXPECT_EQ(be[0].avg_interval, le[0].avg_interval);
  EXPECT_EQ(be[0].last_seen, le[0].last_seen);
}

TEST(MonitorTableTest, ObserveManyZeroPacketsIsNoop) {
  MonitorTable table;
  table.observe_many(net::Ipv4Address(1, 1, 1, 1), 80, 7, 2, 0, 0, 100);
  EXPECT_EQ(table.size(), 0u);
}

TEST(MonitorTableTest, CountSaturatesAt32BitsOnDump) {
  MonitorTable table;
  const net::Ipv4Address client(6, 6, 6, 6);
  table.observe_many(client, 80, 7, 2, 10'000'000'000ULL, 0, 100);
  const auto entries = table.dump(100, kLocal);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].count, 0xffffffffu);
  // Internally the full count survives.
  EXPECT_EQ(table.find(client)->count, 10'000'000'000ULL);
}

TEST(MonitorTableTest, DumpNeverReportsNegativeLastSeen) {
  MonitorTable table;
  table.observe(net::Ipv4Address(1, 1, 1, 1), 80, 7, 2, 1000);
  // Dump taken "before" the observation (clock skew): clamps to 0.
  const auto entries = table.dump(500, kLocal);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].last_seen, 0u);
}

TEST(MonitorTableTest, ClearEmptiesTable) {
  MonitorTable table;
  table.observe(net::Ipv4Address(1, 1, 1, 1), 80, 7, 2, 10);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
}

TEST(MonitorTableTest, DeterministicTieBreakOnEqualLastSeen) {
  MonitorTable table;
  table.observe(net::Ipv4Address(2, 0, 0, 2), 1, 3, 4, 100);
  table.observe(net::Ipv4Address(2, 0, 0, 1), 2, 3, 4, 100);
  const auto entries = table.dump(100, kLocal);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].address, entries[1].address);
}

}  // namespace
}  // namespace gorilla::ntp
