// Randomized differential suite for the flat monitor table.
//
// Drives MonitorTable and a deliberately naive reference model (a std::map
// plus an insertion-stamp clock) through the same long mixed operation
// stream — observe / observe_many / eviction pressure / dump /
// expire_before / find — and requires exact agreement after every probe
// point. The reference encodes the documented recency contract directly:
// eviction removes the minimum (last_seen, stamp); dump orders by
// last_seen descending then address ascending.
#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "ntp/monlist.h"
#include "util/arena.h"
#include "util/rng.h"

namespace gorilla::ntp {
namespace {

struct RefSlot {
  MonitorSlot slot;
  std::uint64_t stamp = 0;  ///< bumped whenever last_seen is (re)set
};

/// The executable specification of the table's semantics.
class ReferenceTable {
 public:
  explicit ReferenceTable(std::size_t capacity) : capacity_(capacity) {}

  void observe_many(net::Ipv4Address address, std::uint16_t port,
                    std::uint8_t mode, std::uint8_t version,
                    std::uint64_t packet_count, util::SimTime first,
                    util::SimTime last) {
    if (packet_count == 0 || capacity_ == 0) return;
    auto it = slots_.find(address.value());
    if (it == slots_.end()) {
      if (slots_.size() >= capacity_) evict_one();
      RefSlot fresh;
      fresh.slot.address = address;
      fresh.slot.first_seen = first;
      fresh.slot.last_seen = first;
      it = slots_.emplace(address.value(), fresh).first;
      it->second.stamp = ++clock_;
    }
    RefSlot& ref = it->second;
    const util::SimTime before = ref.slot.last_seen;
    ref.slot.port = port;
    ref.slot.mode = mode;
    ref.slot.version = version;
    ref.slot.count += packet_count;
    ref.slot.first_seen = std::min(ref.slot.first_seen, first);
    ref.slot.last_seen = std::max(ref.slot.last_seen, last);
    if (ref.slot.last_seen != before) ref.stamp = ++clock_;
  }

  void expire_before(util::SimTime cutoff) {
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (it->second.slot.last_seen < cutoff) {
        it = slots_.erase(it);
      } else {
        ++it;
      }
    }
  }

  [[nodiscard]] const MonitorSlot* find(net::Ipv4Address address) const {
    const auto it = slots_.find(address.value());
    return it == slots_.end() ? nullptr : &it->second.slot;
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Slots in dump order: last_seen descending, address ascending.
  [[nodiscard]] std::vector<MonitorSlot> ordered_slots() const {
    std::vector<MonitorSlot> out;
    out.reserve(slots_.size());
    for (const auto& [addr, ref] : slots_) out.push_back(ref.slot);
    std::sort(out.begin(), out.end(),
              [](const MonitorSlot& a, const MonitorSlot& b) {
                if (a.last_seen != b.last_seen) {
                  return a.last_seen > b.last_seen;
                }
                return a.address < b.address;
              });
    return out;
  }

  void clear() { slots_.clear(); }

 private:
  void evict_one() {
    auto victim = slots_.begin();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      const bool older =
          it->second.slot.last_seen < victim->second.slot.last_seen ||
          (it->second.slot.last_seen == victim->second.slot.last_seen &&
           it->second.stamp < victim->second.stamp);
      if (older) victim = it;
    }
    slots_.erase(victim);
  }

  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::map<std::uint32_t, RefSlot> slots_;
};

void expect_same_dump(const MonitorTable& table, const ReferenceTable& ref,
                      util::SimTime now, std::size_t step) {
  const net::Ipv4Address local(10, 0, 0, 1);
  const auto got = table.dump(now, local);
  const auto want = ref.ordered_slots();
  ASSERT_EQ(got.size(), want.size()) << "step " << step;
  constexpr std::uint64_t u32max = 0xffffffffull;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const MonitorSlot& w = want[i];
    ASSERT_EQ(got[i].address, w.address) << "step " << step << " row " << i;
    EXPECT_EQ(got[i].count, static_cast<std::uint32_t>(
                                std::min(w.count, u32max)));
    const std::uint64_t span =
        static_cast<std::uint64_t>(w.last_seen - w.first_seen);
    const std::uint32_t want_avg =
        w.count > 1
            ? static_cast<std::uint32_t>(std::min(span / (w.count - 1), u32max))
            : 0;
    EXPECT_EQ(got[i].avg_interval, want_avg);
    EXPECT_EQ(got[i].last_seen,
              static_cast<std::uint32_t>(std::min<std::uint64_t>(
                  static_cast<std::uint64_t>(
                      std::max<util::SimTime>(0, now - w.last_seen)),
                  u32max)));
    EXPECT_EQ(got[i].port, w.port);
    EXPECT_EQ(got[i].mode, w.mode);
    EXPECT_EQ(got[i].version, w.version);
  }
}

/// 10k+ mixed operations against a small-capacity table (so eviction fires
/// constantly) with periodic full-dump comparison.
void run_differential(MonitorTable& table, std::uint64_t seed) {
  constexpr std::size_t kCapacity = 48;
  constexpr std::size_t kSteps = 12000;
  // A pool barely larger than capacity maximizes collision/eviction churn.
  constexpr std::uint32_t kAddressPool = 96;
  ReferenceTable ref(kCapacity);
  util::Rng rng(seed);
  util::SimTime now = 1000;
  for (std::size_t step = 0; step < kSteps; ++step) {
    // Time mostly advances, sometimes stalls (equal-last_seen ties),
    // sometimes jumps (expiry-sized gaps).
    const std::int64_t tick = rng.uniform_int(0, 9);
    if (tick >= 4) now += static_cast<util::SimTime>(tick - 3);
    const net::Ipv4Address addr{0x0a000000u + static_cast<std::uint32_t>(
                                                  rng.uniform_int(
                                                      0, kAddressPool - 1))};
    const auto port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    const auto mode = static_cast<std::uint8_t>(rng.uniform_int(3, 7));
    const auto version = static_cast<std::uint8_t>(rng.uniform_int(2, 4));
    switch (rng.uniform_int(0, 9)) {
      case 0: {  // bulk observation over a backward-reaching window
        const auto span = static_cast<util::SimTime>(rng.uniform_int(0, 500));
        const auto count = static_cast<std::uint64_t>(
            rng.uniform_int(0, 1 << 20));  // 0 = must be noop
        table.observe_many(addr, port, mode, version, count, now - span, now);
        ref.observe_many(addr, port, mode, version, count, now - span, now);
        break;
      }
      case 1: {  // expiry sweep, ntpd-restart style
        const auto back = static_cast<util::SimTime>(rng.uniform_int(0, 2000));
        table.expire_before(now - back);
        ref.expire_before(now - back);
        break;
      }
      default:  // plain single-packet observation (the dominant op)
        table.observe(addr, port, mode, version, now);
        ref.observe_many(addr, port, mode, version, 1, now, now);
        break;
    }
    ASSERT_EQ(table.size(), ref.size()) << "step " << step;
    // Spot-check lookups every step, full dump comparison periodically.
    const net::Ipv4Address peek{0x0a000000u + static_cast<std::uint32_t>(
                                                  rng.uniform_int(
                                                      0, kAddressPool - 1))};
    const std::optional<MonitorSlot> got = table.find(peek);
    const MonitorSlot* want = ref.find(peek);
    ASSERT_EQ(got.has_value(), want != nullptr) << "step " << step;
    if (got.has_value()) {
      ASSERT_EQ(got->count, want->count) << "step " << step;
      ASSERT_EQ(got->last_seen, want->last_seen) << "step " << step;
    }
    if (step % 250 == 0) {
      expect_same_dump(table, ref, now + 10, step);
    }
  }
  expect_same_dump(table, ref, now + 10, kSteps);
}

TEST(MonlistDifferentialTest, HeapBackedAgreesWithReference) {
  MonitorTable table(48);
  run_differential(table, 0xd1ff001ull);
}

TEST(MonlistDifferentialTest, ArenaBackedAgreesWithReference) {
  util::Arena arena;
  MonitorTable table(48, &arena);
  run_differential(table, 0xd1ff002ull);
}

TEST(MonlistDifferentialTest, SurvivesClearAndReuse) {
  util::Arena arena;
  MonitorTable table(48, &arena);
  run_differential(table, 0xd1ff003ull);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.find(net::Ipv4Address{0x0a000000u}).has_value());
  run_differential(table, 0xd1ff004ull);
}

TEST(MonlistDifferentialTest, MoveTransfersStateExactly) {
  MonitorTable table(48);
  ReferenceTable ref(48);
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const net::Ipv4Address addr{
        0x0a000000u + static_cast<std::uint32_t>(rng.uniform_int(0, 79))};
    const auto now = static_cast<util::SimTime>(1000 + i);
    table.observe(addr, 123, 7, 2, now);
    ref.observe_many(addr, 123, 7, 2, 1, now, now);
  }
  MonitorTable moved(std::move(table));
  expect_same_dump(moved, ref, 2000, 0);
  MonitorTable assigned(8);
  assigned = std::move(moved);
  expect_same_dump(assigned, ref, 2000, 1);
}

}  // namespace
}  // namespace gorilla::ntp
