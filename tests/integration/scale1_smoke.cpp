// Full-population (--scale 1) smoke test for the memory spine.
//
// Builds the paper-scale world — every NTP server, every detailed monitor
// table — seeds week 0's scanner entries into the tables, and spot-checks
// the result. This is the ROADMAP's "scale=1" memory ceiling in miniature:
// it proves the arena-backed monitor spine actually holds the full
// population, without paying for a full 15-week study in CI.
//
// Exits 2 (ctest SKIP) with a clear message when the host lacks the
// memory headroom; exits 1 on real failures.
#include <cstdio>
#include <cstring>

#include "ntp/server.h"
#include "sim/scanner.h"
#include "sim/world.h"
#include "util/mem_stats.h"

namespace {

/// MemAvailable from /proc/meminfo in bytes (0 when unreadable).
std::uint64_t available_bytes() {
  std::FILE* f = std::fopen("/proc/meminfo", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "MemAvailable:", 13) == 0) {
      std::sscanf(line + 13, "%lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

int main() {
  // Empirical peak RSS of this test is ~10 GB (dominated by the detailed
  // tier; the monitor arena itself is a fraction of that); require a
  // margin over that so the run can't push the host into swap.
  constexpr std::uint64_t kRequiredBytes = std::uint64_t{12} << 30;
  const std::uint64_t avail = available_bytes();
  if (avail != 0 && avail < kRequiredBytes) {
    std::fprintf(stderr,
                 "SKIP: scale-1 smoke needs ~%lu GB of available memory, "
                 "host has %.1f GB free (MemAvailable). Run it on a larger "
                 "machine: this test is the ROADMAP's full-population "
                 "memory-ceiling check.\n",
                 kRequiredBytes >> 30,
                 static_cast<double>(avail) / (1024.0 * 1024.0 * 1024.0));
    return 2;
  }

  gorilla::sim::WorldConfig cfg;
  cfg.scale = 1;
  gorilla::sim::World world(cfg);
  std::fprintf(stderr, "[smoke] world built: %zu servers, %zu amplifiers\n",
               world.servers().size(), world.amplifier_indices().size());
  if (world.amplifier_indices().empty()) {
    std::fprintf(stderr, "FAIL: scale-1 world has no amplifiers\n");
    return 1;
  }

  gorilla::sim::ScanTraffic scans(world, {});
  scans.seed_monitor_tables(0);

  // The seeding must have left scanner probe entries in detailed tables.
  std::size_t detailed = 0;
  std::size_t with_entries = 0;
  for (const std::uint32_t idx : world.amplifier_indices()) {
    const auto* server = world.detailed(idx);
    if (server == nullptr) continue;
    ++detailed;
    if (server->monitor().size() > 0) ++with_entries;
  }
  std::fprintf(stderr,
               "[smoke] week 0 seeded: %zu detailed amplifiers, %zu with "
               "monitor entries\n",
               detailed, with_entries);
  gorilla::util::MemStats::instance().report(stderr);
  if (detailed == 0 || with_entries == 0) {
    std::fprintf(stderr, "FAIL: seeding left no monitor entries\n");
    return 1;
  }
  std::fprintf(stderr, "[smoke] scale-1 monitor spine OK\n");
  return 0;
}
