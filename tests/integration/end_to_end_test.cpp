// End-to-end integration: a small world lives through the study — scanning
// rises, attacks ramp to a February peak, the ONP prober samples weekly,
// and every §3/§4/§6 analysis recovers the paper's shapes from the
// protocol-level artifacts alone.
#include <gtest/gtest.h>

#include "core/amplifiers.h"
#include "core/remediation_analysis.h"
#include "core/victims.h"
#include "scan/prober.h"
#include "sim/attack.h"
#include "sim/scanner.h"
#include "sim/world.h"

namespace gorilla {
namespace {

sim::WorldConfig world_config() {
  sim::WorldConfig cfg;
  cfg.scale = 400;  // small but statistically meaningful
  cfg.registry.num_ases = 2500;
  return cfg;
}

// One shared pipeline run for the whole suite (expensive to build).
class EndToEndTest : public ::testing::Test {
 protected:
  struct Pipeline {
    sim::World world;
    core::AmplifierCensus census;
    core::VictimAnalysis victims;
    std::vector<scan::MonlistSampleSummary> summaries;
    std::uint64_t attack_days_run = 0;

    Pipeline()
        : world(world_config()),
          census(world.registry(), world.pbl()),
          victims(world.registry(), world.pbl()) {
      sim::AttackEngine attacks(world, sim::AttackEngineConfig{}, {});
      sim::ScanTraffic scans(world, sim::ScanTrafficConfig{});
      scan::Prober prober(world, net::Ipv4Address(198, 51, 100, 7));
      int day = 40;
      for (int week = 0; week < 15; ++week) {
        const int sample_day = 70 + week * 7;
        for (; day <= sample_day; ++day) {
          attacks.run_day(day);
          ++attack_days_run;
        }
        scans.seed_monitor_tables(week);
        const auto date = util::onp_sample_dates()[static_cast<std::size_t>(week)];
        census.begin_sample(week, date);
        victims.begin_sample(week, date);
        summaries.push_back(prober.run_monlist_sample(
            week, [&](const scan::AmplifierObservation& obs) {
              census.add(obs);
              victims.add(obs);
            }));
        census.end_sample();
        victims.end_sample();
      }
    }
  };

  static Pipeline& pipeline() {
    static Pipeline p;
    return p;
  }
};

TEST_F(EndToEndTest, FifteenSamplesCollected) {
  ASSERT_EQ(pipeline().census.rows().size(), 15u);
  ASSERT_EQ(pipeline().victims.rows().size(), 15u);
}

TEST_F(EndToEndTest, AmplifierPoolCollapsesLikePaper) {
  const auto& rows = pipeline().census.rows();
  const double reduction = 1.0 - static_cast<double>(rows.back().ips) /
                                     static_cast<double>(rows.front().ips);
  EXPECT_GT(reduction, 0.80);  // paper: 92%
  EXPECT_LT(reduction, 0.97);
}

TEST_F(EndToEndTest, AggregationLevelsRemediateSlower) {
  // §6.1: IP-level reduction > /24 > routed block > AS.
  const auto r = core::level_reduction(pipeline().census);
  EXPECT_GT(r.ips_pct, r.slash24_pct);
  EXPECT_GT(r.slash24_pct, r.blocks_pct);
  EXPECT_GE(r.blocks_pct, r.asns_pct * 0.9);  // allow small-scale noise
}

TEST_F(EndToEndTest, EndHostShareRoughlyDoubles) {
  const auto& rows = pipeline().census.rows();
  EXPECT_GT(rows.back().end_host_pct, rows.front().end_host_pct * 1.4);
}

TEST_F(EndToEndTest, IpsPerBlockDecline) {
  const auto& rows = pipeline().census.rows();
  EXPECT_GT(rows.front().ips_per_block, rows.back().ips_per_block);
}

TEST_F(EndToEndTest, MedianBafNearPaper) {
  // §3.2: median on-wire BAF ~4, Q3 ~15 (ours tracks table sizes, so allow
  // a generous band — the order of magnitude and the skew are the claim).
  const auto& rows = pipeline().census.rows();
  const auto& last = rows.back();
  EXPECT_GT(last.baf.median, 1.5);
  EXPECT_LT(last.baf.median, 40.0);
  EXPECT_GT(last.baf.q3, last.baf.median);
  EXPECT_GT(last.baf.max, 1000.0);  // megas
}

TEST_F(EndToEndTest, MegaAmplifiersDetected) {
  const auto roster = pipeline().census.mega_roster();
  EXPECT_FALSE(roster.empty());
  // The largest mega returned far beyond the 50KB command maximum.
  EXPECT_GT(roster.front().second, 10'000'000u);
}

TEST_F(EndToEndTest, ChurnMatchesPaperShape) {
  // §3.1: first sample sees ~60% of all unique IPs; about half are seen
  // only once.
  const double first = pipeline().census.first_sample_fraction();
  EXPECT_GT(first, 0.35);
  EXPECT_LT(first, 0.75);
  const double once = pipeline().census.seen_once_fraction();
  EXPECT_GT(once, 0.25);
  EXPECT_LT(once, 0.75);
}

TEST_F(EndToEndTest, VictimPopulationGrowsThenFades) {
  const auto& rows = pipeline().victims.rows();
  // Victims per sample peak mid-study (paper: ~50K -> ~170K -> ~107K).
  std::size_t peak_week = 0;
  std::uint64_t peak = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].ips > peak) {
      peak = rows[i].ips;
      peak_week = i;
    }
  }
  EXPECT_GT(peak_week, 2u);
  EXPECT_GT(peak, rows.front().ips);
}

TEST_F(EndToEndTest, PortEightyTopsTheTable) {
  const auto ports = pipeline().victims.top_ports(20);
  ASSERT_GE(ports.size(), 5u);
  EXPECT_EQ(ports[0].first, 80);
  // NTP's own port in the top few (paper rank 2 at 0.238).
  bool saw_123 = false;
  for (std::size_t i = 0; i < 4 && i < ports.size(); ++i) {
    if (ports[i].first == 123) saw_123 = true;
  }
  EXPECT_TRUE(saw_123);
}

TEST_F(EndToEndTest, VictimAsConcentration) {
  // Figure 5: top-100 victim ASes carry ~75% of packets; amplifier ASes
  // ~60%. At reduced scale there are fewer ASes, so we check concentration
  // ordering and a strong top-share.
  const auto vshare = core::top_k_share(pipeline().victims.victim_as_packets(),
                                        100);
  const auto ashare = core::top_k_share(
      pipeline().victims.amplifier_as_packets(), 100);
  EXPECT_GT(vshare, 0.5);
  EXPECT_GE(vshare, ashare * 0.9);
}

TEST_F(EndToEndTest, OvhAnalogueIsTopVictimAs) {
  const auto top = pipeline().victims.top_victim_ases(10);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, pipeline().world.registry().named().ovh_analogue);
}

TEST_F(EndToEndTest, AttackTimeSeriesPeaksMidFebruary) {
  const auto& per_hour = pipeline().victims.attacks_per_hour();
  ASSERT_FALSE(per_hour.empty());
  // Aggregate to days and find the peak.
  std::map<std::int64_t, std::uint64_t> per_day;
  for (const auto& [hour, count] : per_hour) {
    per_day[hour / 24] += count;
  }
  std::int64_t peak_day = 0;
  std::uint64_t peak = 0;
  for (const auto& [day, count] : per_day) {
    if (count > peak) {
      peak = count;
      peak_day = day;
    }
  }
  // Paper peak: Feb 12 (day 103). Allow the window Feb 01 - Mar 01.
  EXPECT_GT(peak_day, 92);
  EXPECT_LT(peak_day, 120);
}

TEST_F(EndToEndTest, RemediationEffectPacketsPerAmplifierRises) {
  const auto effect = core::remediation_effect(pipeline().census,
                                               pipeline().victims);
  ASSERT_EQ(effect.size(), 15u);
  // §6.3: remaining amplifiers get used harder.
  double early = 0, late = 0;
  for (int i = 0; i < 3; ++i) early += effect[static_cast<std::size_t>(i)].packets_per_amplifier;
  for (int i = 12; i < 15; ++i) late += effect[static_cast<std::size_t>(i)].packets_per_amplifier;
  EXPECT_GT(late, early);
}

TEST_F(EndToEndTest, AmplifiersPerVictimFalls) {
  const auto effect = core::remediation_effect(pipeline().census,
                                               pipeline().victims);
  double early = 0, late = 0;
  for (int i = 0; i < 3; ++i) early += effect[static_cast<std::size_t>(i)].amplifiers_per_victim;
  for (int i = 12; i < 15; ++i) late += effect[static_cast<std::size_t>(i)].amplifiers_per_victim;
  EXPECT_LT(late, early);
}

TEST_F(EndToEndTest, ObservationWindowNearTwoDays) {
  // §4.2: the median largest last-seen is ~44 hours. Our tables evict
  // with the same dynamics; accept 4h..10d at small scale.
  const auto& rows = pipeline().victims.rows();
  const double mid = rows[7].median_window_seconds;
  EXPECT_GT(mid, 4.0 * 3600);
  EXPECT_LT(mid, 240.0 * 3600);
}

TEST_F(EndToEndTest, TotalPacketsSubstantial) {
  // 2.92T at full scale; at 1/400 scale with fewer weeks of growth we
  // still expect billions of witnessed packets.
  EXPECT_GT(pipeline().victims.total_packets(), 100'000'000u);
}

}  // namespace
}  // namespace gorilla
