// ShardedExecutor unit contract (fixed shard boundaries, ordered merge,
// inline fallback) plus the determinism-merge acceptance test: a full
// StudyPipeline run is bit-identical for K ∈ {1, 2, 7} worker threads and
// across two consecutive runs at the same K.
#include "sim/sharded_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.h"
#include "telemetry/flow.h"
#include "util/thread_pool.h"
#include "util/time.h"

namespace gorilla::sim {
namespace {

TEST(ShardedExecutorTest, NullPoolMeansOneJob) {
  ShardedExecutor inline_exec(nullptr);
  EXPECT_EQ(inline_exec.jobs(), 1);
  util::ThreadPool pool(3);
  ShardedExecutor exec(&pool);
  EXPECT_EQ(exec.jobs(), 3);
}

TEST(ShardedExecutorTest, ShardBoundariesDependOnlyOnSizeAndChunk) {
  // Record the (begin, end) ranges produce() sees; they must tile [0, n)
  // in fixed chunks regardless of worker count.
  const auto ranges_for = [](ShardedExecutor& exec) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    std::mutex mu;
    exec.run_ordered(
        10, 3,
        [&mu, &ranges](std::size_t b, std::size_t e) {
          const std::lock_guard<std::mutex> lock(mu);
          ranges.emplace_back(b, e);
          return b;
        },
        [](std::size_t) {});
    return ranges;
  };

  ShardedExecutor inline_exec(nullptr);
  auto inline_ranges = ranges_for(inline_exec);
  const std::vector<std::pair<std::size_t, std::size_t>> want = {
      {0, 3}, {3, 6}, {6, 9}, {9, 10}};
  EXPECT_EQ(inline_ranges, want);

  util::ThreadPool pool(4);
  ShardedExecutor exec(&pool);
  auto pooled = ranges_for(exec);
  std::sort(pooled.begin(), pooled.end());  // workers race; set must match
  EXPECT_EQ(pooled, want);
}

TEST(ShardedExecutorTest, ConsumeSeesAscendingShardOrder) {
  util::ThreadPool pool(4);
  ShardedExecutor exec(&pool);
  std::vector<std::size_t> consumed;
  exec.run_ordered(
      1000, 7, [](std::size_t b, std::size_t e) { return std::make_pair(b, e); },
      [&consumed](std::pair<std::size_t, std::size_t> r) {
        consumed.push_back(r.first);
        consumed.push_back(r.second);
      });
  // Consumed boundaries must be the canonical ascending tiling.
  ASSERT_FALSE(consumed.empty());
  EXPECT_EQ(consumed.front(), 0u);
  EXPECT_EQ(consumed.back(), 1000u);
  for (std::size_t i = 2; i + 1 < consumed.size(); i += 2) {
    EXPECT_EQ(consumed[i], consumed[i - 1]);  // contiguous
    EXPECT_LT(consumed[i], consumed[i + 1]);  // ascending
  }
}

TEST(ShardedExecutorTest, ProduceRunsOnWorkersConsumeOnCaller) {
  util::ThreadPool pool(4);
  ShardedExecutor exec(&pool);
  std::mutex mu;
  std::set<std::thread::id> producer_threads;
  std::set<std::thread::id> consumer_threads;
  exec.run_ordered(
      64, 4,
      [&mu, &producer_threads](std::size_t b, std::size_t) {
        const std::lock_guard<std::mutex> lock(mu);
        producer_threads.insert(std::this_thread::get_id());
        return b;
      },
      [&mu, &consumer_threads](std::size_t) {
        const std::lock_guard<std::mutex> lock(mu);
        consumer_threads.insert(std::this_thread::get_id());
      });
  EXPECT_EQ(producer_threads.count(std::this_thread::get_id()), 0u);
  EXPECT_EQ(consumer_threads.size(), 1u);
  EXPECT_EQ(consumer_threads.count(std::this_thread::get_id()), 1u);
}

TEST(ShardedExecutorTest, ZeroChunkSizeMeansSingletonShards) {
  ShardedExecutor exec(nullptr);
  int produced = 0;
  exec.run_ordered(
      5, 0, [&produced](std::size_t b, std::size_t e) {
        ++produced;
        EXPECT_EQ(e, b + 1);
        return 0;
      },
      [](int) {});
  EXPECT_EQ(produced, 5);
}

TEST(ShardedExecutorTest, EmptyRangeProducesNothing) {
  util::ThreadPool pool(2);
  ShardedExecutor exec(&pool);
  int calls = 0;
  exec.run_ordered(
      0, 16, [&calls](std::size_t, std::size_t) { return ++calls; },
      [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ShardedExecutorTest, ProduceExceptionRethrowsOnCaller) {
  util::ThreadPool pool(3);
  ShardedExecutor exec(&pool);
  EXPECT_THROW(
      exec.run_ordered(
          100, 10,
          [](std::size_t b, std::size_t) -> int {
            if (b == 50) throw std::runtime_error("shard 5 failed");
            return 0;
          },
          [](int) {}),
      std::runtime_error);
}

TEST(ShardedExecutorTest, ExceptionDrainsInFlightShardsBeforeRethrow) {
  // Regression: run_ordered must wait for every in-flight produce before
  // rethrowing. If it rethrew immediately, still-running workers would keep
  // touching this frame's counters (and, at real call sites, the produce
  // lambda's captures) after the caller's stack unwound — a use-after-scope
  // the TSan/ASan presets in scripts/check.sh would flag here.
  util::ThreadPool pool(4);
  ShardedExecutor exec(&pool);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  EXPECT_THROW(
      exec.run_ordered(
          64, 1,
          [&started, &finished](std::size_t b, std::size_t) -> int {
            started.fetch_add(1);
            if (b == 0) {
              finished.fetch_add(1);
              throw std::runtime_error("shard 0 failed");
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            finished.fetch_add(1);
            return 0;
          },
          [](int) {}),
      std::runtime_error);
  // By the time the exception reached us, every shard that started had
  // finished — nothing still runs against a dead stack frame.
  EXPECT_EQ(started.load(), finished.load());
  EXPECT_GE(started.load(), 1);
}

TEST(ShardedExecutorTest, ParallelForCoversDisjointShards) {
  const std::size_t n = 10'000;
  const auto run_with = [n](ShardedExecutor& exec) {
    std::vector<std::uint32_t> out(n, 0);
    exec.parallel_for(n, 64, [&out](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        out[i] = static_cast<std::uint32_t>(i * 2654435761u);
      }
    });
    return out;
  };
  ShardedExecutor inline_exec(nullptr);
  util::ThreadPool pool(7);
  ShardedExecutor exec(&pool);
  EXPECT_EQ(run_with(inline_exec), run_with(exec));
}

TEST(ShardedExecutorTest, ParallelForExceptionRethrows) {
  util::ThreadPool pool(2);
  ShardedExecutor exec(&pool);
  EXPECT_THROW(exec.parallel_for(10, 1,
                                 [](std::size_t b, std::size_t) {
                                   if (b == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

// --- Full-pipeline determinism: the acceptance test for the engine. ---

/// FNV-1a over every observable the pipeline's sinks accumulate. Two runs
/// with identical streams hash identically; any reordering, dropped event,
/// or float-accumulation divergence changes it.
struct Fingerprint {
  std::uint64_t hash = 1469598103934665603ULL;
  std::uint64_t items = 0;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ULL;
    }
    ++items;
  }
  void mix_double(double d) { mix(std::bit_cast<std::uint64_t>(d)); }

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

void mix_flows(Fingerprint& fp, const telemetry::FlowCollector& vantage) {
  fp.mix(vantage.flows().size());
  for (const auto& f : vantage.flows()) {
    fp.mix(f.src.value());
    fp.mix(f.dst.value());
    fp.mix(f.src_port);
    fp.mix(f.dst_port);
    fp.mix(f.protocol);
    fp.mix(f.ttl);
    fp.mix(f.packets);
    fp.mix(f.bytes);
    fp.mix(f.payload_bytes);
    fp.mix(static_cast<std::uint64_t>(f.first));
    fp.mix(static_cast<std::uint64_t>(f.last));
  }
}

Fingerprint run_pipeline(int jobs) {
  bench::Options opt;
  opt.scale = 400;
  opt.quick = true;
  opt.jobs = jobs;
  bench::StudyPipeline pipeline(opt, /*with_vantages=*/true,
                                /*with_darknet=*/true);
  pipeline.run();

  Fingerprint fp;
  fp.mix(pipeline.summaries.size());
  for (const auto& s : pipeline.summaries) {
    fp.mix(static_cast<std::uint64_t>(s.week));
    fp.mix(static_cast<std::uint64_t>(util::days_from_civil(s.date)));
    fp.mix(s.probes_sent);
    fp.mix(s.responders);
    fp.mix(s.error_replies);
    fp.mix(s.probes_lost);
    fp.mix(s.retries);
    fp.mix(s.truncated_tables);
    fp.mix(s.rate_limited);
  }
  for (int day = 0; day < pipeline.global->horizon_days(); ++day) {
    for (int p = 0; p < 5; ++p) {
      fp.mix_double(pipeline.global->bytes(
          day, static_cast<telemetry::ProtocolClass>(p)));
    }
  }
  fp.mix(pipeline.labels->attacks().size());
  for (const auto& a : pipeline.labels->attacks()) {
    fp.mix(static_cast<std::uint64_t>(a.start));
    fp.mix(static_cast<std::uint64_t>(a.vector));
    fp.mix_double(a.peak_bps);
  }
  mix_flows(fp, *pipeline.merit);
  mix_flows(fp, *pipeline.frgp);
  mix_flows(fp, *pipeline.csu);
  fp.mix(pipeline.darknet->total_packets());
  for (const auto& [day, scanners] : pipeline.darknet->unique_scanners_per_day()) {
    fp.mix(static_cast<std::uint64_t>(day));
    fp.mix(scanners);
  }
  return fp;
}

TEST(ShardedPipelineTest, ByteIdenticalAcrossShardCounts) {
  const Fingerprint k1 = run_pipeline(1);
  EXPECT_GT(k1.items, 0u);
  const Fingerprint k2 = run_pipeline(2);
  const Fingerprint k7 = run_pipeline(7);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1, k7);
}

TEST(ShardedPipelineTest, RepeatedRunsAtSameShardCountAgree) {
  EXPECT_EQ(run_pipeline(7), run_pipeline(7));
}

// --- Attack-day shards: the §3d pin for AttackEngine::run_days. ---

/// Runs the peak-fortnight attack window (attacks + scans, darknet and all
/// three vantages) through AttackEngine::run_days on a K-job executor and
/// fingerprints every downstream observable. RegionalRun is a thin harness
/// over AttackEngine + ScanTraffic — no prober, so any divergence here is
/// the day-shard path itself.
Fingerprint run_attack_window(int jobs) {
  bench::Options opt;
  opt.scale = 400;
  opt.jobs = jobs;
  bench::RegionalRun run(opt, /*with_darknet=*/true);
  run.run(95, 109);

  Fingerprint fp;
  for (int day = 0; day < run.global->horizon_days(); ++day) {
    for (int p = 0; p < 5; ++p) {
      fp.mix_double(
          run.global->bytes(day, static_cast<telemetry::ProtocolClass>(p)));
    }
  }
  fp.mix(run.labels->attacks().size());
  for (const auto& a : run.labels->attacks()) {
    fp.mix(static_cast<std::uint64_t>(a.start));
    fp.mix(static_cast<std::uint64_t>(a.vector));
    fp.mix_double(a.peak_bps);
  }
  mix_flows(fp, *run.merit);
  mix_flows(fp, *run.frgp);
  mix_flows(fp, *run.csu);
  fp.mix(run.darknet->total_packets());
  for (const auto& [day, scanners] : run.darknet->unique_scanners_per_day()) {
    fp.mix(static_cast<std::uint64_t>(day));
    fp.mix(scanners);
  }
  return fp;
}

TEST(ShardedPipelineTest, AttackDayShardsByteIdenticalAcrossJobCounts) {
  const Fingerprint k1 = run_attack_window(1);
  EXPECT_GT(k1.items, 0u);
  EXPECT_EQ(k1, run_attack_window(2));
  EXPECT_EQ(k1, run_attack_window(7));
}

TEST(ShardedPipelineTest, AttackDayShardsStableAcrossRepeatRuns) {
  EXPECT_EQ(run_attack_window(7), run_attack_window(7));
}

}  // namespace
}  // namespace gorilla::sim
