// Retry/quarantine contract: a transient shard failure heals invisibly
// (produce is pure in its range, so the re-run merges bit-identically for
// any worker count), a poison shard exhausts its budget into the
// quarantine list and still aborts the run, and the FaultPlan shard hook
// drives both paths from a deterministic plan.
//
// Suites are named ShardedExecutorRetry* so the TSan preset's test filter
// (^ShardedExecutor...) picks them up.
#include "sim/sharded_executor.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/fault.h"
#include "util/thread_pool.h"

namespace gorilla::sim {
namespace {

struct ScopedPlan {
  explicit ScopedPlan(const util::FaultPlan& plan) {
    util::FaultPlan::install(plan);
  }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
  ~ScopedPlan() { util::FaultPlan::clear(); }
};

/// Sums [begin, end) — the pure produce() all retry tests merge.
std::size_t range_sum(std::size_t begin, std::size_t end) {
  std::size_t sum = 0;
  for (std::size_t i = begin; i < end; ++i) sum += i;
  return sum;
}

/// The canonical merged output of run_ordered(n, chunk, range_sum, append).
std::vector<std::size_t> expected_sums(std::size_t n, std::size_t chunk) {
  std::vector<std::size_t> out;
  for (std::size_t b = 0; b < n; b += chunk) {
    out.push_back(range_sum(b, std::min(n, b + chunk)));
  }
  return out;
}

TEST(ShardedExecutorRetryTest, TransientFailureHealsBitIdentical) {
  const auto run_with_one_transient_failure = [](ShardedExecutor& exec) {
    std::mutex mu;
    bool failed_once = false;
    std::vector<std::size_t> sums;
    exec.run_ordered(
        10, 3,
        [&mu, &failed_once](std::size_t b, std::size_t e) {
          {
            const std::lock_guard<std::mutex> lock(mu);
            if (b == 3 && !failed_once) {
              failed_once = true;
              throw std::runtime_error("transient");
            }
          }
          return range_sum(b, e);
        },
        [&sums](std::size_t s) { sums.push_back(s); });
    return sums;
  };

  ShardedExecutor inline_exec(nullptr);
  EXPECT_EQ(run_with_one_transient_failure(inline_exec), expected_sums(10, 3));
  EXPECT_TRUE(inline_exec.quarantined().empty());

  util::ThreadPool pool(3);
  ShardedExecutor pooled(&pool);
  EXPECT_EQ(run_with_one_transient_failure(pooled), expected_sums(10, 3));
  EXPECT_TRUE(pooled.quarantined().empty());
}

TEST(ShardedExecutorRetryTest, PoisonShardQuarantinedAndRethrown) {
  const auto poison_run = [](ShardedExecutor& exec) {
    exec.run_ordered(
        10, 2,
        [](std::size_t b, std::size_t e) -> std::size_t {
          if (b == 6) throw std::runtime_error("poison cell");
          return range_sum(b, e);
        },
        [](std::size_t) {});
  };

  ShardedExecutor inline_exec(nullptr);
  EXPECT_THROW(poison_run(inline_exec), std::runtime_error);
  auto quarantined = inline_exec.quarantined();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].index, 3u);
  EXPECT_EQ(quarantined[0].begin, 6u);
  EXPECT_EQ(quarantined[0].end, 8u);
  EXPECT_EQ(quarantined[0].attempts, inline_exec.max_attempts());
  EXPECT_NE(quarantined[0].error.find("poison cell"), std::string::npos);
  inline_exec.clear_quarantine();
  EXPECT_TRUE(inline_exec.quarantined().empty());

  util::ThreadPool pool(3);
  ShardedExecutor pooled(&pool);
  EXPECT_THROW(poison_run(pooled), std::runtime_error);
  quarantined = pooled.quarantined();
  ASSERT_GE(quarantined.size(), 1u);  // later in-flight shards drain cleanly
  EXPECT_EQ(quarantined[0].begin, 6u);
}

TEST(ShardedExecutorRetryTest, MaxAttemptsClampsToOne) {
  ShardedExecutor exec(nullptr);
  exec.set_max_attempts(0);
  EXPECT_EQ(exec.max_attempts(), 1);

  int calls = 0;
  EXPECT_THROW(exec.run_ordered(
                   2, 2,
                   [&calls](std::size_t, std::size_t) -> int {
                     ++calls;
                     throw std::runtime_error("always");
                   },
                   [](int) {}),
               std::runtime_error);
  EXPECT_EQ(calls, 1);  // no retry at max_attempts() == 1
  ASSERT_EQ(exec.quarantined().size(), 1u);
  EXPECT_EQ(exec.quarantined()[0].attempts, 1);
}

TEST(ShardedExecutorRetryTest, InjectedTransientFaultIsInvisible) {
  // Inline executor: attempt ordinals are sequential, so shard 2's first
  // attempt is ordinal 2. One injected throw there retries into ordinal 3
  // and the merged output is unchanged.
  util::FaultPlan plan;
  plan.shard_throw_at = 2;
  const ScopedPlan guard(plan);

  ShardedExecutor exec(nullptr);
  std::vector<std::size_t> sums;
  exec.run_ordered(
      10, 2, [](std::size_t b, std::size_t e) { return range_sum(b, e); },
      [&sums](std::size_t s) { sums.push_back(s); });
  EXPECT_EQ(sums, expected_sums(10, 2));
  EXPECT_TRUE(exec.quarantined().empty());
}

TEST(ShardedExecutorRetryTest, InjectedPoisonWindowExhaustsTheBudget) {
  // A wide throw window swallows every retry: the shard burns its whole
  // budget on consecutive ordinals and lands in quarantine.
  util::FaultPlan plan;
  plan.shard_throw_at = 2;
  plan.shard_throw_count = 100;
  const ScopedPlan guard(plan);

  ShardedExecutor exec(nullptr);
  EXPECT_THROW(exec.run_ordered(
                   10, 2,
                   [](std::size_t b, std::size_t e) { return range_sum(b, e); },
                   [](std::size_t) {}),
               util::FaultInjected);
  const auto quarantined = exec.quarantined();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].index, 2u);
  EXPECT_EQ(quarantined[0].attempts, exec.max_attempts());
  EXPECT_NE(quarantined[0].error.find("injected shard fault"),
            std::string::npos);
}

TEST(ShardedExecutorRetryTest, ParallelForRetriesTransientFailures) {
  std::mutex mu;
  bool failed_once = false;
  std::vector<int> hits(10, 0);
  util::ThreadPool pool(2);
  ShardedExecutor exec(&pool);
  exec.parallel_for(10, 5, [&mu, &failed_once, &hits](std::size_t b,
                                                      std::size_t e) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (b == 5 && !failed_once) {
        failed_once = true;
        throw std::runtime_error("transient");
      }
    }
    const std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  // Every index ran exactly once despite the mid-run failure.
  EXPECT_EQ(hits, std::vector<int>(10, 1));
  EXPECT_TRUE(exec.quarantined().empty());
}

}  // namespace
}  // namespace gorilla::sim
