#include "sim/remediation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gorilla::sim {
namespace {

TEST(MonlistSurvivalTest, AnchorsToPaperCounts) {
  EXPECT_DOUBLE_EQ(monlist_survival(0), 1.0);
  EXPECT_NEAR(monlist_survival(2), 677112.0 / 1405186.0, 1e-9);
  EXPECT_NEAR(monlist_survival(14), 106445.0 / 1405186.0, 1e-9);
}

TEST(MonlistSurvivalTest, PreStudyIsFull) {
  EXPECT_DOUBLE_EQ(monlist_survival(-3), 1.0);
}

TEST(MonlistSurvivalTest, BeyondHorizonHoldsSteady) {
  EXPECT_DOUBLE_EQ(monlist_survival(20), monlist_survival(14));
}

TEST(MonlistSurvivalTest, NinetyTwoPercentReduction) {
  // §6: "a reduction of 92%" from first to last sample.
  EXPECT_NEAR(1.0 - monlist_survival(14), 0.92, 0.005);
}

TEST(ContinentHazardTest, OrderingMatchesPaper) {
  // §6.1 remediated%: NA 97 > OC 93 > EU 89 > AS 84 > AF 77 > SA 63.
  EXPECT_GT(continent_hazard(net::Continent::kNorthAmerica),
            continent_hazard(net::Continent::kOceania));
  EXPECT_GT(continent_hazard(net::Continent::kOceania),
            continent_hazard(net::Continent::kEurope));
  EXPECT_GT(continent_hazard(net::Continent::kEurope),
            continent_hazard(net::Continent::kAsia));
  EXPECT_GT(continent_hazard(net::Continent::kAsia),
            continent_hazard(net::Continent::kAfrica));
  EXPECT_GT(continent_hazard(net::Continent::kAfrica),
            continent_hazard(net::Continent::kSouthAmerica));
}

TEST(ContinentHazardTest, ImpliedSurvivalMatchesPaper) {
  const double base = monlist_survival(14);
  // survival^hazard should land near 1 - remediated%.
  EXPECT_NEAR(std::pow(base, continent_hazard(net::Continent::kNorthAmerica)),
              0.03, 0.01);
  EXPECT_NEAR(std::pow(base, continent_hazard(net::Continent::kSouthAmerica)),
              0.37, 0.02);
}

TEST(HostTypeHazardTest, EndHostsSlower) {
  EXPECT_LT(host_type_hazard(true), host_type_hazard(false));
}

TEST(SampleFixWeekTest, ZeroDrawNeverFixes) {
  // u -> 0 means the server survives everything.
  EXPECT_EQ(sample_monlist_fix_week(1.0, 1e-12), -1);
}

TEST(SampleFixWeekTest, DrawNearOneFixesImmediately) {
  EXPECT_EQ(sample_monlist_fix_week(1.0, 0.999999), 1);
}

TEST(SampleFixWeekTest, PopulationTracksSurvivalCurve) {
  util::Rng rng(77);
  constexpr int n = 200000;
  std::array<int, 15> alive{};
  for (int i = 0; i < n; ++i) {
    const int fix = sample_monlist_fix_week(1.0, rng.uniform01());
    for (int w = 0; w < 15; ++w) {
      if (fix < 0 || w < fix) ++alive[static_cast<std::size_t>(w)];
    }
  }
  for (int w : {0, 2, 7, 14}) {
    EXPECT_NEAR(alive[static_cast<std::size_t>(w)] / double(n),
                monlist_survival(w), 0.01)
        << "week " << w;
  }
}

TEST(SampleFixWeekTest, HigherHazardFixesFaster) {
  util::Rng rng(78);
  constexpr int n = 50000;
  int fast_alive = 0, slow_alive = 0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    const int fast = sample_monlist_fix_week(1.4, u);
    const int slow = sample_monlist_fix_week(0.5, u);
    if (fast < 0) ++fast_alive;
    if (slow < 0) ++slow_alive;
    // Coupled draws: a higher hazard can never fix *later*.
    if (fast >= 0 && slow >= 0) {
      EXPECT_LE(fast, slow);
    }
    if (slow >= 0) {
      EXPECT_GE(fast, 0);
    }
  }
  EXPECT_LT(fast_alive, slow_alive);
}

TEST(VersionSurvivalTest, NineteenPercentOverNineWeeks) {
  EXPECT_DOUBLE_EQ(version_survival(0), 1.0);
  EXPECT_NEAR(version_survival(9), 0.81, 0.005);
}

TEST(VersionSurvivalTest, MonotoneDecline) {
  for (int w = 1; w < 40; ++w) {
    EXPECT_LT(version_survival(w), version_survival(w - 1));
  }
}

TEST(VersionFixWeekTest, MostSurviveHorizon) {
  util::Rng rng(79);
  constexpr int n = 50000;
  int survived = 0;
  for (int i = 0; i < n; ++i) {
    if (sample_version_fix_week(1.0, rng.uniform01(), 9) < 0) ++survived;
  }
  EXPECT_NEAR(survived / double(n), 0.81, 0.01);
}

TEST(PaperConstantsTest, TableOneCounts) {
  EXPECT_EQ(kPaperAmplifierCounts.front(), 1405186u);
  EXPECT_EQ(kPaperAmplifierCounts.back(), 106445u);
  EXPECT_EQ(kPaperVictimCounts.front(), 49979u);
  EXPECT_EQ(kPaperVictimCounts[5], 94125u);
}

}  // namespace
}  // namespace gorilla::sim
