#include "sim/scanner.h"

#include <gtest/gtest.h>

#include "study/events.h"
#include "telemetry/darknet.h"
#include "telemetry/flow.h"

namespace gorilla::sim {
namespace {

WorldConfig tiny_config() {
  WorldConfig cfg;
  cfg.scale = 200;
  cfg.registry.num_ases = 2000;
  return cfg;
}

ScanTrafficConfig scan_config() {
  ScanTrafficConfig cfg;
  return cfg;
}

class ScanTrafficTest : public ::testing::Test {
 protected:
  ScanTrafficTest() : world_(tiny_config()), scans_(world_, scan_config()) {}

  telemetry::DarknetTelescope make_telescope() {
    telemetry::DarknetConfig cfg;
    cfg.telescope = world_.registry().named().darknet;
    return telemetry::DarknetTelescope(cfg);
  }

  World world_;
  ScanTraffic scans_;
};

TEST_F(ScanTrafficTest, ActorsIncludeResearchAndMalicious) {
  std::size_t benign = 0, malicious = 0;
  for (const auto& a : scans_.actors()) {
    (a.benign ? benign : malicious)++;
  }
  EXPECT_EQ(benign, 6u);
  EXPECT_GT(malicious, 10u);
}

TEST_F(ScanTrafficTest, MaliciousOnsetMidDecember) {
  for (const auto& a : scans_.actors()) {
    if (!a.benign) {
      EXPECT_GE(a.first_day, scan_config().malicious_onset_day);
      EXPECT_LT(a.first_day, scan_config().malicious_onset_day +
                                 scan_config().malicious_ramp_days);
    }
  }
}

TEST_F(ScanTrafficTest, DarknetQuietBeforeOnsetBusyAfter) {
  auto telescope = make_telescope();
  for (int day = 0; day < 140; ++day) {
    scans_.run_day(day, &telescope, {});
  }
  const auto per_day = telescope.unique_scanners_per_day();
  auto scanners_on = [&](int day) {
    const auto it = per_day.find(day);
    return it == per_day.end() ? std::uint64_t{0} : it->second;
  };
  // Average scanners/day in November vs February.
  double nov = 0, feb = 0;
  for (int d = 0; d < 30; ++d) nov += static_cast<double>(scanners_on(d));
  for (int d = 100; d < 130; ++d) feb += static_cast<double>(scanners_on(d));
  EXPECT_GT(feb, nov * 5 + 10);
}

TEST_F(ScanTrafficTest, ScanningContinuesThroughRemediation) {
  // §5.1: scanning stays high even as the vulnerable pool collapses.
  auto telescope = make_telescope();
  for (int day = 0; day < 170; ++day) {
    scans_.run_day(day, &telescope, {});
  }
  const auto per_day = telescope.unique_scanners_per_day();
  double march = 0, april = 0;
  for (int d = 120; d < 150; ++d) {
    const auto it = per_day.find(d);
    if (it != per_day.end()) march += static_cast<double>(it->second);
  }
  for (int d = 150; d < 170; ++d) {
    const auto it = per_day.find(d);
    if (it != per_day.end()) april += static_cast<double>(it->second);
  }
  EXPECT_GT(april / 20.0, march / 30.0 * 0.5);
}

TEST_F(ScanTrafficTest, BenignFractionIdentifiable) {
  auto telescope = make_telescope();
  for (int day = 0; day < 60; ++day) {
    scans_.run_day(day, &telescope, {});
  }
  const auto monthly = telescope.monthly_volumes();
  ASSERT_FALSE(monthly.empty());
  // Before the malicious onset (first month), research dominates.
  EXPECT_GT(monthly.front().benign_fraction(), 0.5);
}

TEST_F(ScanTrafficTest, VantageSeesScanFlowsWithLinuxTtl) {
  const auto& named = world_.registry().named();
  telemetry::FlowCollector merit("merit", {named.merit_space});
  for (int day = 50; day < 80; ++day) {
    scans_.run_day(day, nullptr, {&merit});
  }
  ASSERT_FALSE(merit.flows().empty());
  for (const auto& f : merit.flows()) {
    EXPECT_EQ(f.dst_port, net::kNtpPort);
    EXPECT_EQ(f.ttl, kScanTtl);
  }
}

TEST_F(ScanTrafficTest, SeedMonitorTablesLeavesScannerEntries) {
  scans_.seed_monitor_tables(0);
  std::size_t with_entries = 0;
  for (const auto ai : world_.amplifier_indices()) {
    const auto* server = world_.detailed(ai);
    if (server != nullptr && server->monitor().size() > 0) ++with_entries;
  }
  // Research scanners sweep everything: every amplifier has entries.
  EXPECT_GT(with_entries, world_.amplifier_indices().size() * 9 / 10);
}

TEST_F(ScanTrafficTest, SeededEntriesClassifyAsScanners) {
  scans_.seed_monitor_tables(0);
  const auto ai = world_.amplifier_indices().front();
  const auto* server = world_.detailed(ai);
  ASSERT_NE(server, nullptr);
  const auto entries = server->monitor().dump(
      70 * util::kSecondsPerDay, server->config().address);
  ASSERT_FALSE(entries.empty());
  for (const auto& e : entries) {
    // Probe entries: mode 6 or 7, tiny counts — the §4.2 scanner class.
    EXPECT_GE(e.mode, 6);
    EXPECT_LT(e.count, 3u);
  }
}

TEST_F(ScanTrafficTest, DeterministicGivenSeed) {
  World w2(tiny_config());
  ScanTraffic s2(w2, scan_config());
  ASSERT_EQ(scans_.actors().size(), s2.actors().size());
  for (std::size_t i = 0; i < scans_.actors().size(); ++i) {
    EXPECT_EQ(scans_.actors()[i].address, s2.actors()[i].address);
    EXPECT_EQ(scans_.actors()[i].first_day, s2.actors()[i].first_day);
  }
}

}  // namespace
}  // namespace gorilla::sim
