#include "sim/impairment.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace gorilla::sim {
namespace {

std::vector<net::UdpPacket> sample_packets(std::size_t n,
                                           std::size_t payload_bytes) {
  std::vector<net::UdpPacket> packets(n);
  for (std::size_t i = 0; i < n; ++i) {
    packets[i].payload.assign(payload_bytes,
                              static_cast<std::uint8_t>(i * 7 + 1));
  }
  return packets;
}

TEST(ImpairmentTest, DefaultConfigIsProvablyInert) {
  const ImpairmentConfig cfg;
  EXPECT_FALSE(cfg.any());
  const ImpairmentLayer layer(cfg);
  EXPECT_FALSE(layer.enabled());
  for (std::uint32_t s = 0; s < 200; ++s) {
    EXPECT_EQ(layer.request_fate(s, 0, 0), ImpairmentLayer::Fate::kDelivered);
    EXPECT_FALSE(layer.is_rate_limiter(s));
    EXPECT_FALSE(layer.rate_limited(s, 1'000'000));
    EXPECT_EQ(layer.delivered_requests(s, 3, 12345), 12345u);
    EXPECT_EQ(layer.delivered_responses(s, 3, 12345), 12345u);
  }
  EXPECT_EQ(layer.response_delivery_fraction(), 1.0);

  auto packets = sample_packets(8, 440);
  const auto before = packets;
  const auto damage = layer.degrade_response(7, 2, 0, packets);
  EXPECT_FALSE(damage.degraded());
  ASSERT_EQ(packets.size(), before.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].payload, before[i].payload);
  }
}

TEST(ImpairmentTest, FatesAreDeterministicAndSeedSensitive) {
  ImpairmentConfig cfg;
  cfg.request_loss = 0.2;
  cfg.transient_silence_rate = 0.1;
  const ImpairmentLayer a(cfg);
  const ImpairmentLayer b(cfg);
  cfg.seed = 0xdecafULL;
  const ImpairmentLayer other_seed(cfg);

  int differs = 0;
  for (std::uint32_t s = 0; s < 500; ++s) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(a.request_fate(s, 4, attempt), b.request_fate(s, 4, attempt));
      if (a.request_fate(s, 4, attempt) !=
          other_seed.request_fate(s, 4, attempt)) {
        ++differs;
      }
    }
  }
  EXPECT_GT(differs, 0);
}

TEST(ImpairmentTest, FateRatesMatchConfiguredProbabilities) {
  ImpairmentConfig cfg;
  cfg.request_loss = 0.15;
  cfg.icmp_unreachable_rate = 0.05;
  cfg.transient_silence_rate = 0.10;
  const ImpairmentLayer layer(cfg);
  int lost = 0, unreachable = 0, silent = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    switch (layer.request_fate(static_cast<std::uint32_t>(t), t % 15, t % 3)) {
      case ImpairmentLayer::Fate::kRequestLost: ++lost; break;
      case ImpairmentLayer::Fate::kUnreachable: ++unreachable; break;
      case ImpairmentLayer::Fate::kSilent: ++silent; break;
      case ImpairmentLayer::Fate::kDelivered: break;
    }
  }
  const double n = trials;
  EXPECT_NEAR(lost / n, 0.15, 0.01);
  // Later channels only see draws that survived the earlier ones.
  EXPECT_NEAR(unreachable / n, 0.05 * 0.85, 0.01);
  EXPECT_NEAR(silent / n, 0.10 * 0.85 * 0.95, 0.01);
}

TEST(ImpairmentTest, AttemptsDrawIndependentFates) {
  ImpairmentConfig cfg;
  cfg.request_loss = 0.5;
  const ImpairmentLayer layer(cfg);
  // A server whose first attempt is lost must (with overwhelming frequency
  // across servers) recover on some later attempt — retries work.
  int first_lost = 0, recovered = 0;
  for (std::uint32_t s = 0; s < 2000; ++s) {
    if (layer.request_fate(s, 0, 0) == ImpairmentLayer::Fate::kDelivered) {
      continue;
    }
    ++first_lost;
    for (int attempt = 1; attempt < 6; ++attempt) {
      if (layer.request_fate(s, 0, attempt) ==
          ImpairmentLayer::Fate::kDelivered) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GT(first_lost, 700);
  EXPECT_GT(recovered, first_lost * 9 / 10);
}

TEST(ImpairmentTest, DegradeAccountsBytesExactly) {
  ImpairmentConfig cfg;
  cfg.response_packet_loss = 0.3;
  cfg.response_truncate_rate = 0.2;
  const ImpairmentLayer layer(cfg);

  auto packets = sample_packets(40, 440);
  std::uint64_t udp_before = 0, wire_before = 0;
  for (const auto& p : packets) {
    udp_before += p.payload.size();
    wire_before += p.on_wire_bytes();
  }
  const auto damage = layer.degrade_response(11, 3, 0, packets);
  EXPECT_TRUE(damage.degraded());
  EXPECT_GT(damage.packets_dropped, 0u);
  EXPECT_GT(damage.packets_truncated, 0u);
  EXPECT_EQ(packets.size(), 40 - damage.packets_dropped);

  std::uint64_t udp_after = 0, wire_after = 0;
  for (const auto& p : packets) {
    udp_after += p.payload.size();
    wire_after += p.on_wire_bytes();
  }
  EXPECT_EQ(udp_after + damage.udp_bytes_lost, udp_before);
  EXPECT_EQ(wire_after + damage.wire_bytes_lost, wire_before);
}

TEST(ImpairmentTest, DegradeIsReplayableAndGarbleKeepsLength) {
  ImpairmentConfig cfg;
  cfg.response_garble_rate = 0.5;
  const ImpairmentLayer layer(cfg);

  auto run = [&] {
    auto packets = sample_packets(20, 80);
    layer.degrade_response(5, 2, 1, packets);
    return packets;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), 20u);  // garbling never removes packets
  ASSERT_EQ(second.size(), 20u);
  bool changed = false;
  const auto pristine = sample_packets(20, 80);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].payload, second[i].payload);  // bit-for-bit replay
    EXPECT_EQ(first[i].payload.size(), pristine[i].payload.size());
    if (first[i].payload != pristine[i].payload) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(ImpairmentTest, RateLimiterTraitIsStableAndFractional) {
  ImpairmentConfig cfg;
  cfg.rate_limiter_fraction = 0.25;
  cfg.rate_limit_per_window = 2;
  EXPECT_TRUE(cfg.any());
  const ImpairmentLayer layer(cfg);
  int limiters = 0;
  for (std::uint32_t s = 0; s < 8000; ++s) {
    const bool is = layer.is_rate_limiter(s);
    EXPECT_EQ(is, layer.is_rate_limiter(s));  // stable trait
    if (is) {
      ++limiters;
      EXPECT_FALSE(layer.rate_limited(s, 0));
      EXPECT_FALSE(layer.rate_limited(s, 1));
      EXPECT_TRUE(layer.rate_limited(s, 2));
      EXPECT_TRUE(layer.rate_limited(s, 99));
    } else {
      EXPECT_FALSE(layer.rate_limited(s, 99));
    }
  }
  EXPECT_NEAR(limiters / 8000.0, 0.25, 0.02);
}

TEST(ImpairmentTest, AggregateThinningIsExactDeterministicAndBounded) {
  ImpairmentConfig cfg;
  cfg.request_loss = 0.1;
  cfg.icmp_unreachable_rate = 0.1;
  cfg.response_packet_loss = 0.25;
  const ImpairmentLayer layer(cfg);

  const std::uint64_t offered = 1'000'000;
  const auto req = layer.delivered_requests(42, 7, offered);
  EXPECT_EQ(req, layer.delivered_requests(42, 7, offered));
  // Survival composes the two independent request-path losses.
  EXPECT_NEAR(static_cast<double>(req), 0.9 * 0.9 * offered, 1.0);
  const auto resp = layer.delivered_responses(42, 7, offered);
  EXPECT_NEAR(static_cast<double>(resp), 0.75 * offered, 1.0);
  EXPECT_NEAR(layer.response_delivery_fraction(), 0.75, 1e-12);

  EXPECT_EQ(layer.delivered_requests(42, 7, 0), 0u);
  for (std::uint64_t n = 1; n < 40; ++n) {
    EXPECT_LE(layer.delivered_requests(42, 7, n), n);
  }
}

}  // namespace
}  // namespace gorilla::sim
