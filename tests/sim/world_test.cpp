#include "sim/world.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/remediation.h"

namespace gorilla::sim {
namespace {

WorldConfig tiny_config() {
  WorldConfig cfg;
  cfg.scale = 200;  // ~11K amplifiers, ~32K servers: fast enough for tests
  cfg.registry.num_ases = 2000;
  return cfg;
}

class WorldTest : public ::testing::Test {
 protected:
  World world_{tiny_config()};
};

TEST_F(WorldTest, PopulationSizesScale) {
  const auto& cfg = world_.config();
  const double expected_amps =
      static_cast<double>(cfg.ever_amplifiers / cfg.scale) /
      (1.0 - cfg.other_impl_fraction);
  EXPECT_NEAR(static_cast<double>(world_.amplifier_indices().size()),
              expected_amps + cfg.merit_amplifiers + cfg.csu_amplifiers +
                  cfg.frgp_amplifiers,
              expected_amps * 0.02);
  EXPECT_GE(world_.servers().size(),
            cfg.total_ntp_servers / cfg.scale);
}

TEST_F(WorldTest, AmplifierIndicesPointAtAmplifiers) {
  for (const auto ai : world_.amplifier_indices()) {
    EXPECT_TRUE(world_.servers()[ai].ever_amplifier);
  }
}

TEST_F(WorldTest, EveryAmplifierHasDetailedServer) {
  for (const auto ai : world_.amplifier_indices()) {
    ASSERT_NE(world_.detailed(ai), nullptr);
    EXPECT_EQ(world_.detailed(ai)->config().address,
              world_.servers()[ai].home_address);
  }
}

TEST_F(WorldTest, EndHostFractionNearConfigured) {
  std::size_t end_hosts = 0;
  for (const auto ai : world_.amplifier_indices()) {
    if (world_.servers()[ai].end_host) ++end_hosts;
  }
  const double frac = static_cast<double>(end_hosts) /
                      static_cast<double>(world_.amplifier_indices().size());
  EXPECT_NEAR(frac, world_.config().amplifier_end_host_fraction, 0.05);
}

TEST_F(WorldTest, LivePoolDecaysLikePaperCurve) {
  const auto initial = world_.live_amplifier_count(0);
  const auto mid = world_.live_amplifier_count(7);
  const auto final_count = world_.live_amplifier_count(14);
  EXPECT_GT(initial, mid);
  EXPECT_GT(mid, final_count);
  // The end-to-start ratio should be within a factor ~2 of the paper's
  // (survival is hazard-modulated per subgroup, so exact match isn't
  // expected at tiny scale).
  const double ratio = static_cast<double>(final_count) /
                       static_cast<double>(initial);
  EXPECT_GT(ratio, 0.04);
  EXPECT_LT(ratio, 0.20);
}

TEST_F(WorldTest, RespondsMonlistHonorsFixWeek) {
  for (const auto ai : world_.amplifier_indices()) {
    const auto& t = world_.servers()[ai];
    if (t.monlist_fix_week >= 0) {
      EXPECT_FALSE(world_.responds_monlist(ai, t.monlist_fix_week));
      EXPECT_FALSE(world_.responds_monlist(ai, t.monlist_fix_week + 3));
    }
  }
}

TEST_F(WorldTest, AvailabilityGatesResponses) {
  // Roughly config.availability of live amplifiers answer in any week.
  std::size_t live = 0, responding = 0;
  for (const auto ai : world_.amplifier_indices()) {
    const auto& t = world_.servers()[ai];
    if (t.monlist_fix_week != 0) {
      ++live;
      if (world_.responds_monlist(ai, 0)) ++responding;
    }
  }
  ASSERT_GT(live, 0u);
  EXPECT_NEAR(static_cast<double>(responding) / static_cast<double>(live),
              world_.config().availability, 0.03);
}

TEST_F(WorldTest, ReachabilityIsDeterministic) {
  const auto ai = world_.amplifier_indices().front();
  for (int week = 0; week < 5; ++week) {
    EXPECT_EQ(world_.reachable(ai, week), world_.reachable(ai, week));
  }
}

TEST_F(WorldTest, AddressChurnOnlyForDhcpHosts) {
  for (const auto ai : world_.amplifier_indices()) {
    const auto& t = world_.servers()[ai];
    if (!t.dhcp_churn) {
      for (int w : {0, 3, 10}) {
        EXPECT_EQ(world_.address_at(ai, w), t.home_address);
      }
    }
  }
}

TEST_F(WorldTest, ChurnedAddressStaysInHomeBlock) {
  std::size_t churned = 0;
  for (const auto ai : world_.amplifier_indices()) {
    const auto& t = world_.servers()[ai];
    if (!t.dhcp_churn) continue;
    const auto home_block = world_.registry().block_index_of(t.home_address);
    for (int w : {1, 5, 12}) {
      const auto addr = world_.address_at(ai, w);
      EXPECT_EQ(world_.registry().block_index_of(addr), home_block);
      if (addr != t.home_address) ++churned;
    }
  }
  EXPECT_GT(churned, 0u);  // DHCP churn actually happens
}

TEST_F(WorldTest, MegaAmplifiersExistAndLoop) {
  std::size_t megas = 0, looping = 0;
  for (const auto ai : world_.amplifier_indices()) {
    if (!world_.servers()[ai].mega) continue;
    ++megas;
    if (world_.detailed(ai)->config().loop_repeat >= 2) ++looping;
  }
  EXPECT_GE(megas, world_.config().mega_amplifiers / world_.config().scale);
  EXPECT_GT(looping, 0u);
}

TEST_F(WorldTest, MegasPredominantlyInAsia) {
  std::size_t megas = 0, asia = 0;
  for (const auto ai : world_.amplifier_indices()) {
    const auto& t = world_.servers()[ai];
    if (!t.mega) continue;
    ++megas;
    if (world_.registry().continent_of(t.home_address) ==
        net::Continent::kAsia) {
      ++asia;
    }
  }
  ASSERT_GT(megas, 0u);
  EXPECT_GT(static_cast<double>(asia) / static_cast<double>(megas), 0.9);
}

TEST_F(WorldTest, RegionalCastPlaced) {
  const auto& cfg = world_.config();
  EXPECT_EQ(world_.merit_amplifiers().size(), cfg.merit_amplifiers);
  EXPECT_EQ(world_.csu_amplifiers().size(), cfg.csu_amplifiers);
  EXPECT_EQ(world_.frgp_amplifiers().size(), cfg.frgp_amplifiers);
  const auto& named = world_.registry().named();
  for (const auto ai : world_.merit_amplifiers()) {
    EXPECT_TRUE(named.merit_space.contains(world_.servers()[ai].home_address));
  }
  for (const auto ai : world_.csu_amplifiers()) {
    EXPECT_TRUE(named.csu_space.contains(world_.servers()[ai].home_address));
  }
  for (const auto ai : world_.frgp_amplifiers()) {
    EXPECT_TRUE(named.frgp_space.contains(world_.servers()[ai].home_address));
  }
}

TEST_F(WorldTest, CsuSecuredAtWeekTwo) {
  for (const auto ai : world_.csu_amplifiers()) {
    EXPECT_EQ(world_.servers()[ai].monlist_fix_week, 2);
  }
}

TEST_F(WorldTest, DarknetIsDark) {
  const auto& darknet = world_.registry().named().darknet;
  EXPECT_TRUE(world_.in_darknet(darknet.base()));
  EXPECT_TRUE(world_.in_darknet(darknet.at(darknet.size() - 1)));
  for (const auto ai : world_.amplifier_indices()) {
    EXPECT_FALSE(world_.in_darknet(world_.servers()[ai].home_address));
  }
}

TEST_F(WorldTest, OtherImplAmplifiersNearConfiguredFraction) {
  std::size_t other = 0;
  for (const auto ai : world_.amplifier_indices()) {
    if (world_.servers()[ai].other_impl) ++other;
  }
  const double frac = static_cast<double>(other) /
                      static_cast<double>(world_.amplifier_indices().size());
  EXPECT_NEAR(frac, world_.config().other_impl_fraction, 0.03);
}

TEST_F(WorldTest, DeterministicAcrossConstructions) {
  World other{tiny_config()};
  ASSERT_EQ(other.servers().size(), world_.servers().size());
  for (std::size_t i = 0; i < 1000 && i < other.servers().size(); ++i) {
    EXPECT_EQ(other.servers()[i].home_address,
              world_.servers()[i].home_address);
    EXPECT_EQ(other.servers()[i].monlist_fix_week,
              world_.servers()[i].monlist_fix_week);
  }
}

TEST_F(WorldTest, EndHostShareOfLivePoolGrows) {
  // §6.1: infrastructure remediates faster, so the end-host share of the
  // surviving pool roughly doubles.
  auto share_at = [&](int week) {
    std::size_t live = 0, end_hosts = 0;
    for (const auto ai : world_.amplifier_indices()) {
      const auto& t = world_.servers()[ai];
      if (t.monlist_fix_week < 0 || week < t.monlist_fix_week) {
        ++live;
        if (t.end_host) ++end_hosts;
      }
    }
    return live ? static_cast<double>(end_hosts) / static_cast<double>(live)
                : 0.0;
  };
  EXPECT_GT(share_at(14), share_at(0) * 1.4);
}

}  // namespace
}  // namespace gorilla::sim
