// Tests for the §5.2 booter-ecosystem model, the §6.4 remediation-speed
// ablation knob, the §3.4 post-study decay, and the engine's handling of
// rate-limited amplifiers.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/attack.h"
#include "sim/remediation.h"
#include "sim/world.h"

namespace gorilla::sim {
namespace {

WorldConfig tiny_config() {
  WorldConfig cfg;
  cfg.scale = 200;
  cfg.registry.num_ases = 2000;
  return cfg;
}

TEST(BooterModelTest, PopulationScalesWithWorld) {
  World world(tiny_config());
  AttackEngine engine(world, AttackEngineConfig{}, {});
  // 400 booters at full scale / 200 = 2, floored at 4.
  EXPECT_EQ(engine.booters().size(), 4u);
  EXPECT_EQ(engine.attacks_per_booter().size(), engine.booters().size());
}

TEST(BooterModelTest, AttacksCarryProvenance) {
  World world(tiny_config());
  AttackEngine engine(world, AttackEngineConfig{}, {});
  for (int day = 98; day < 101; ++day) {
    for (const auto& rec : engine.run_day(day)) {
      EXPECT_LT(rec.booter_id, engine.booters().size());
    }
  }
  const auto& per_booter = engine.attacks_per_booter();
  const auto total = std::accumulate(per_booter.begin(), per_booter.end(),
                                     std::uint64_t{0});
  EXPECT_EQ(total, engine.totals().ntp_attacks);
}

TEST(BooterModelTest, MarketShareIsConcentrated) {
  WorldConfig wcfg = tiny_config();
  wcfg.scale = 40;  // more booters (10) for a meaningful ranking
  World world(wcfg);
  AttackEngine engine(world, AttackEngineConfig{}, {});
  for (int day = 95; day < 103; ++day) engine.run_day(day);
  auto shares = engine.attacks_per_booter();
  std::sort(shares.begin(), shares.end(), std::greater<>());
  ASSERT_GE(shares.size(), 4u);
  // Zipf market: the top service clearly outsells the median one.
  EXPECT_GT(shares[0], shares[shares.size() / 2] * 2);
}

TEST(BooterModelTest, OnlyPrimingBootersPrime) {
  World world(tiny_config());
  AttackEngine engine(world, AttackEngineConfig{}, {});
  for (int day = 98; day < 103; ++day) {
    for (const auto& rec : engine.run_day(day)) {
      if (rec.primed) {
        EXPECT_TRUE(engine.booters()[rec.booter_id].primes_amplifiers);
      }
    }
  }
}

TEST(BooterModelTest, CustomerTargetsAreSticky) {
  World world(tiny_config());
  AttackEngine engine(world, AttackEngineConfig{}, {});
  std::map<std::uint32_t, std::map<std::uint32_t, int>> victim_hits;
  for (int day = 95; day < 105; ++day) {
    for (const auto& rec : engine.run_day(day)) {
      ++victim_hits[rec.booter_id][rec.victim.value()];
    }
  }
  // Some booter re-attacks some victim across the window.
  bool repeat = false;
  for (const auto& [_, victims] : victim_hits) {
    for (const auto& [__, hits] : victims) {
      if (hits >= 3) repeat = true;
    }
  }
  EXPECT_TRUE(repeat);
}

TEST(ScriptedEventTest, OvhEventRecordedOnEventDays) {
  World world(tiny_config());
  AttackEngine engine(world, AttackEngineConfig{}, {});
  for (int day = 100; day <= 104; ++day) engine.run_day(day);
  const auto& events = engine.scripted_events();
  ASSERT_EQ(events.size(), 3u);  // Feb 10, 11, 12
  for (const auto& event : events) {
    EXPECT_TRUE(event.primed);
    EXPECT_EQ(event.victim_port, 80);
    EXPECT_GE(event.end - event.start, 8 * 3600);  // hours-long
    EXPECT_GE(event.amplifiers.size(), 8u);
    // The victim lives in the OVH analogue.
    EXPECT_EQ(world.registry().asn_of(event.victim),
              world.registry().named().ovh_analogue);
  }
}

TEST(ScriptedEventTest, DisabledByConfig) {
  World world(tiny_config());
  AttackEngineConfig cfg;
  cfg.scripted_ovh_event = false;
  AttackEngine engine(world, cfg, {});
  for (int day = 100; day <= 104; ++day) engine.run_day(day);
  EXPECT_TRUE(engine.scripted_events().empty());
}

TEST(RemediationSpeedTest, ZeroSpeedMeansNobodyPatches) {
  WorldConfig cfg = tiny_config();
  cfg.remediation_speed = 0.0;
  cfg.merit_amplifiers = 0;  // regional cast has scripted fix weeks
  cfg.csu_amplifiers = 0;
  cfg.frgp_amplifiers = 0;
  World world(cfg);
  EXPECT_EQ(world.live_amplifier_count(14),
            world.live_amplifier_count(0));
  for (const auto ai : world.amplifier_indices()) {
    EXPECT_EQ(world.servers()[ai].monlist_fix_week, -1);
  }
}

TEST(RemediationSpeedTest, SlowerSpeedKeepsLargerPool) {
  WorldConfig fast = tiny_config();
  WorldConfig slow = tiny_config();
  slow.remediation_speed = 0.4;
  World fast_world(fast), slow_world(slow);
  EXPECT_GT(slow_world.live_amplifier_count(14),
            fast_world.live_amplifier_count(14) * 2);
  // Initial pools are the same size.
  EXPECT_EQ(slow_world.amplifier_indices().size(),
            fast_world.amplifier_indices().size());
}

TEST(PostStudyDecayTest, SurvivorsKeepGettingFixed) {
  // §3.4: the April-June watch saw the remnant shrink ~13%/week.
  World world(tiny_config());
  const auto at_study_end = world.live_amplifier_count(14);
  const auto eight_weeks_later = world.live_amplifier_count(22);
  EXPECT_LT(eight_weeks_later, at_study_end);
  const double survival = static_cast<double>(eight_weeks_later) /
                          static_cast<double>(at_study_end);
  EXPECT_NEAR(survival, std::pow(0.87, 8), 0.12);
}

TEST(PostStudyDecayTest, SampleFunctionMatchesHazard) {
  util::Rng rng(99);
  constexpr int n = 100000;
  int alive_at_25 = 0;
  for (int i = 0; i < n; ++i) {
    const int fix = sample_post_study_fix_week(rng.uniform01());
    EXPECT_TRUE(fix == -1 || fix >= 15);
    if (fix < 0 || fix > 25) ++alive_at_25;
  }
  EXPECT_NEAR(alive_at_25 / double(n), std::pow(0.87, 11), 0.01);
}

TEST(RateLimitedAmplifierTest, EngineRespectsServerLimit) {
  // Two identical worlds; one rate-limits every amplifier. Emitted attack
  // volume collapses while witnessed trigger counts stay identical.
  WorldConfig cfg = tiny_config();
  World open_world(cfg), limited_world(cfg);
  for (const auto ai : limited_world.amplifier_indices()) {
    if (auto* server = limited_world.detailed(ai)) {
      server->set_mode7_rate_limit(60);
    }
  }
  AttackEngine open_engine(open_world, AttackEngineConfig{}, {});
  AttackEngine limited_engine(limited_world, AttackEngineConfig{}, {});
  for (int day = 98; day < 102; ++day) {
    open_engine.run_day(day);
    limited_engine.run_day(day);
  }
  EXPECT_LT(limited_engine.totals().response_bytes,
            open_engine.totals().response_bytes / 5);
  // The spoofed triggers still arrive and are still witnessed.
  EXPECT_EQ(limited_engine.totals().ntp_attacks,
            open_engine.totals().ntp_attacks);
}

}  // namespace
}  // namespace gorilla::sim
