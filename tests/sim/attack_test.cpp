#include "sim/attack.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gorilla::sim {
namespace {

WorldConfig tiny_config() {
  WorldConfig cfg;
  cfg.scale = 200;
  cfg.registry.num_ases = 2000;
  return cfg;
}

TEST(AttackIntensityTest, FollowsPaperArc) {
  // Trickle in November, explosive growth through mid-February, decline.
  EXPECT_LT(AttackEngine::ntp_attacks_per_day(10), 100.0);
  EXPECT_LT(AttackEngine::ntp_attacks_per_day(10),
            AttackEngine::ntp_attacks_per_day(60));
  EXPECT_LT(AttackEngine::ntp_attacks_per_day(60),
            AttackEngine::ntp_attacks_per_day(102));
  // Peak lands around Feb 11-12 (days 102-103).
  const double peak = AttackEngine::ntp_attacks_per_day(103);
  EXPECT_GT(peak, AttackEngine::ntp_attacks_per_day(140));
  EXPECT_GE(peak, 15000.0);
  // April level is well below peak but far above November.
  EXPECT_LT(AttackEngine::ntp_attacks_per_day(170), peak / 2);
  EXPECT_GT(AttackEngine::ntp_attacks_per_day(170),
            AttackEngine::ntp_attacks_per_day(10) * 50);
}

TEST(AttackWeekTest, Mapping) {
  EXPECT_EQ(AttackEngine::week_of_day(70), 0);   // 2014-01-10
  EXPECT_EQ(AttackEngine::week_of_day(76), 0);
  EXPECT_EQ(AttackEngine::week_of_day(77), 1);
  EXPECT_EQ(AttackEngine::week_of_day(69), -1);
  EXPECT_EQ(AttackEngine::week_of_day(0), -10);
}

TEST(PortMixTest, MatchesTableFour) {
  const auto& mix = attacked_port_mix();
  EXPECT_EQ(mix[0].first, 80);
  EXPECT_NEAR(mix[0].second, 0.362, 1e-9);
  EXPECT_EQ(mix[1].first, 123);
  EXPECT_NEAR(mix[1].second, 0.238, 1e-9);
  double total = 0.0;
  for (const auto& [_, f] : mix) total += f;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

class AttackEngineTest : public ::testing::Test {
 protected:
  AttackEngineTest() : world_(tiny_config()) {}

  AttackEngineConfig engine_config() {
    AttackEngineConfig cfg;
    return cfg;
  }

  World world_;
};

TEST_F(AttackEngineTest, QuietBeforeOnset) {
  AttackEngine engine(world_, engine_config(), {});
  const auto records = engine.run_day(10);
  EXPECT_LT(records.size(), 3u);  // 20/day at scale 200
}

TEST_F(AttackEngineTest, BusyAtPeak) {
  AttackEngine engine(world_, engine_config(), {});
  const auto records = engine.run_day(103);
  EXPECT_GT(records.size(), 50u);  // 28000/day at scale 200 -> ~140
}

TEST_F(AttackEngineTest, RecordsAreWellFormed) {
  AttackEngine engine(world_, engine_config(), {});
  const auto records = engine.run_day(100);
  ASSERT_FALSE(records.empty());
  for (const auto& rec : records) {
    EXPECT_FALSE(rec.amplifiers.empty());
    EXPECT_GT(rec.triggers_per_amplifier, 0u);
    EXPECT_GE(rec.end, rec.start);
    EXPECT_GT(rec.response_bytes, 0u);
    EXPECT_GT(rec.peak_bps, 0.0);
    // Start lands within the requested day.
    EXPECT_GE(rec.start, 100 * util::kSecondsPerDay);
    EXPECT_LT(rec.start, 101 * util::kSecondsPerDay);
  }
}

TEST_F(AttackEngineTest, AttacksLeaveMonitorTableEvidence) {
  AttackEngine engine(world_, engine_config(), {});
  const auto records = engine.run_day(100);
  ASSERT_FALSE(records.empty());
  std::size_t witnessed = 0;
  for (const auto& rec : records) {
    for (const auto amp : rec.amplifiers) {
      const auto* server = world_.detailed(amp);
      ASSERT_NE(server, nullptr);
      const auto slot = server->monitor().find(rec.victim);
      if (slot.has_value()) {
        EXPECT_EQ(slot->mode, 7);
        EXPECT_GE(slot->count, rec.triggers_per_amplifier);
        ++witnessed;
      }
    }
  }
  // Most (amplifier, victim) pairs must be witnessed; a few may have been
  // recycled out of a 600-entry table by later attacks.
  EXPECT_GT(witnessed, 0u);
}

TEST_F(AttackEngineTest, OnlyLiveAmplifiersUsed) {
  AttackEngine engine(world_, engine_config(), {});
  const int day = 150;  // late: much of the pool is remediated
  const int week = AttackEngine::week_of_day(day);
  const auto records = engine.run_day(day);
  for (const auto& rec : records) {
    for (const auto amp : rec.amplifiers) {
      const auto& t = world_.servers()[amp];
      EXPECT_TRUE(t.monlist_fix_week < 0 || week < t.monlist_fix_week);
    }
  }
}

TEST_F(AttackEngineTest, GlobalSinkAccumulatesNtpBytes) {
  telemetry::GlobalTrafficCollector global(181, 7.15e12);
  AttackSinks sinks;
  sinks.global = &global;
  AttackEngine engine(world_, engine_config(), sinks);
  engine.run_day(100);
  EXPECT_GT(global.bytes(100, telemetry::ProtocolClass::kNtp), 0.0);
  EXPECT_EQ(global.bytes(99, telemetry::ProtocolClass::kNtp), 0.0);
}

TEST_F(AttackEngineTest, LabelsIncludeNtpAndBackground) {
  telemetry::AttackLabelStore labels;
  AttackSinks sinks;
  sinks.labels = &labels;
  AttackEngine engine(world_, engine_config(), sinks);
  engine.run_day(100);
  bool saw_ntp = false, saw_other = false;
  for (const auto& a : labels.attacks()) {
    if (a.vector == telemetry::AttackVector::kNtp) saw_ntp = true;
    else saw_other = true;
  }
  EXPECT_TRUE(saw_ntp);
  EXPECT_TRUE(saw_other);
}

TEST_F(AttackEngineTest, VantageSeesRegionalAttackFlows) {
  const auto& named = world_.registry().named();
  telemetry::FlowCollector merit("merit", {named.merit_space});
  AttackSinks sinks;
  sinks.vantages = {&merit};
  AttackEngine engine(world_, engine_config(), sinks);
  // Run several peak days so regional reflection fires.
  for (int day = 95; day < 105; ++day) engine.run_day(day);
  EXPECT_FALSE(merit.flows().empty());
  bool saw_egress_ntp = false;
  for (const auto& f : merit.flows()) {
    if (f.src_port == net::kNtpPort &&
        merit.direction(f) == telemetry::Direction::kEgress) {
      saw_egress_ntp = true;
      break;
    }
  }
  EXPECT_TRUE(saw_egress_ntp);
}

TEST_F(AttackEngineTest, TotalsAccumulate) {
  AttackEngine engine(world_, engine_config(), {});
  engine.run_day(100);
  const auto after_one = engine.totals();
  engine.run_day(101);
  const auto after_two = engine.totals();
  EXPECT_GT(after_two.ntp_attacks, after_one.ntp_attacks);
  EXPECT_GT(after_two.response_packets, after_one.response_packets);
  EXPECT_GE(engine.unique_victims(), 1u);
  EXPECT_LE(engine.unique_victims(), after_two.ntp_attacks);
}

TEST_F(AttackEngineTest, DeterministicGivenSeed) {
  World w1(tiny_config()), w2(tiny_config());
  AttackEngine e1(w1, AttackEngineConfig{}, {});
  AttackEngine e2(w2, AttackEngineConfig{}, {});
  const auto r1 = e1.run_day(100);
  const auto r2 = e2.run_day(100);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].victim, r2[i].victim);
    EXPECT_EQ(r1[i].victim_port, r2[i].victim_port);
    EXPECT_EQ(r1[i].start, r2[i].start);
    EXPECT_EQ(r1[i].response_bytes, r2[i].response_bytes);
  }
}

TEST_F(AttackEngineTest, RunDaysMatchesPerDayLoop) {
  // A window is nothing but its days: every draw comes from a (seed, day)
  // substream, so run_days() over [95, 109) launches exactly the attacks of
  // fourteen run_day() calls — same counts, same victims. Response volumes
  // may drift within a fraction of a percent: non-primed dump sizes are
  // estimated from the *window-start* monitor snapshot plus each shard's
  // own same-day additions (DESIGN.md §3d), and the per-day loop
  // re-snapshots daily.
  World w1(tiny_config()), w2(tiny_config());
  AttackEngine e1(w1, AttackEngineConfig{}, {});
  AttackEngine e2(w2, AttackEngineConfig{}, {});
  e1.run_days(95, 109);
  for (int day = 95; day < 109; ++day) (void)e2.run_day(day);
  EXPECT_EQ(e1.totals().ntp_attacks, e2.totals().ntp_attacks);
  EXPECT_EQ(e1.unique_victims(), e2.unique_victims());
  const double window_bytes = static_cast<double>(e1.totals().response_bytes);
  const double daily_bytes = static_cast<double>(e2.totals().response_bytes);
  EXPECT_NEAR(window_bytes / daily_bytes, 1.0, 0.01);
}

TEST_F(AttackEngineTest, OvhVictimsStayInsideTheAnalogueBlocks) {
  // Regression for the OVH-campaign draw: the concentrated-victim index is
  // clamped to the block size, so a small-world block (scale 200 shrinks
  // routed blocks well below the full-scale /16s) can never be overrun —
  // every OVH-branch victim must fall inside the analogue AS's space.
  AttackEngineConfig cfg;
  cfg.ovh_victim_rate = 1.0;
  cfg.common_victim_rate = 0.0;
  cfg.merit_victim_rate = 0.0;
  cfg.frgp_victim_rate = 0.0;
  cfg.scripted_ovh_event = false;
  AttackEngine engine(world_, cfg, {});
  const auto& registry = world_.registry();
  const auto& info = registry.as_info(registry.named().ovh_analogue);
  std::size_t checked = 0;
  for (int day = 98; day < 102; ++day) {
    for (const auto& rec : engine.run_day(day)) {
      bool inside = false;
      for (const auto bi : info.block_indices) {
        if (registry.blocks()[bi].prefix.contains(rec.victim)) {
          inside = true;
          break;
        }
      }
      EXPECT_TRUE(inside) << "victim " << rec.victim.value()
                          << " outside the OVH analogue on day " << day;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(AttackEngineTest, PortEightyMostCommon) {
  AttackEngine engine(world_, engine_config(), {});
  std::map<std::uint16_t, int> ports;
  for (int day = 98; day < 104; ++day) {
    for (const auto& rec : engine.run_day(day)) ++ports[rec.victim_port];
  }
  int max_count = 0;
  std::uint16_t max_port = 0;
  for (const auto& [port, count] : ports) {
    if (count > max_count) {
      max_count = count;
      max_port = port;
    }
  }
  EXPECT_EQ(max_port, 80);
}

TEST_F(AttackEngineTest, MegaCapBoundsPerAmplifierRate) {
  // No amplifier may contribute more than ~500 Mbps sustained.
  AttackEngine engine(world_, engine_config(), {});
  for (int day = 100; day < 103; ++day) {
    for (const auto& rec : engine.run_day(day)) {
      const double duration =
          static_cast<double>(std::max<util::SimTime>(1, rec.end - rec.start));
      const double per_amp_bps =
          static_cast<double>(rec.response_bytes) * 8.0 /
          duration / static_cast<double>(rec.amplifiers.size());
      // Normal amplifiers are bounded by pps_cap x full-dump size
      // (~1.2 Gbps); looping megas are clamped to ~500 Mbps sustained.
      EXPECT_LT(per_amp_bps, 1.3e9);
    }
  }
}

}  // namespace
}  // namespace gorilla::sim
