#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace gorilla::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.now(), 0);
}

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(21, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, NowAdvancesToEventTimes) {
  EventQueue q;
  util::SimTime seen = -1;
  q.schedule_at(42, [&] { seen = q.now(); });
  q.run();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, ScheduleInIsRelative) {
  EventQueue q;
  util::SimTime seen = -1;
  q.schedule_at(100, [&] {
    q.schedule_in(5, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 105);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> recur = [&] {
    if (++count < 5) q.schedule_in(10, recur);
  };
  q.schedule_at(0, recur);
  q.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 40);
}

TEST(EventQueueTest, RunUntilAdvancesClockEvenWithoutEvents) {
  EventQueue q;
  EXPECT_EQ(q.run_until(1000), 0u);
  EXPECT_EQ(q.now(), 1000);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  util::SimTime last = -1;
  bool ordered = true;
  for (int i = 0; i < 10000; ++i) {
    const util::SimTime when = (i * 7919) % 10007;
    q.schedule_at(when, [&, when] {
      if (when < last) ordered = false;
      last = when;
    });
  }
  q.run();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace gorilla::sim
