#include "telemetry/flow.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace gorilla::telemetry {
namespace {

const net::Prefix kLocalNet{net::Ipv4Address(10, 0, 0, 0), 16};
const net::Ipv4Address kLocalHost{net::Ipv4Address(10, 0, 1, 1)};
const net::Ipv4Address kRemoteHost{net::Ipv4Address(99, 0, 0, 1)};

FlowRecord flow(net::Ipv4Address src, net::Ipv4Address dst,
                std::uint16_t sport, std::uint16_t dport,
                std::uint64_t bytes, util::SimTime first, util::SimTime last) {
  FlowRecord f;
  f.src = src;
  f.dst = dst;
  f.src_port = sport;
  f.dst_port = dport;
  f.packets = bytes / 500 + 1;
  f.bytes = bytes;
  f.payload_bytes = bytes * 9 / 10;
  f.first = first;
  f.last = last;
  return f;
}

TEST(FlowRecordTest, DurationClampsNegative) {
  FlowRecord f;
  f.first = 100;
  f.last = 50;
  EXPECT_EQ(f.duration(), 0);
  f.last = 160;
  EXPECT_EQ(f.duration(), 60);
}

TEST(FlowCollectorTest, DirectionClassification) {
  FlowCollector c("test", {kLocalNet});
  EXPECT_EQ(c.direction(flow(kLocalHost, kRemoteHost, 123, 80, 1, 0, 0)),
            Direction::kEgress);
  EXPECT_EQ(c.direction(flow(kRemoteHost, kLocalHost, 80, 123, 1, 0, 0)),
            Direction::kIngress);
  EXPECT_EQ(c.direction(flow(kLocalHost, net::Ipv4Address(10, 0, 2, 2), 1, 2,
                             1, 0, 0)),
            Direction::kInternal);
  EXPECT_EQ(c.direction(flow(kRemoteHost, net::Ipv4Address(98, 0, 0, 1), 1, 2,
                             1, 0, 0)),
            Direction::kTransit);
}

TEST(FlowCollectorTest, DropsTransitFlows) {
  FlowCollector c("test", {kLocalNet});
  c.add(flow(kRemoteHost, net::Ipv4Address(98, 0, 0, 1), 1, 2, 100, 0, 10));
  EXPECT_TRUE(c.flows().empty());
  c.add(flow(kLocalHost, kRemoteHost, 1, 2, 100, 0, 10));
  EXPECT_EQ(c.flows().size(), 1u);
}

TEST(FlowCollectorTest, MultiplePrefixes) {
  FlowCollector c("test", {kLocalNet,
                           net::Prefix{net::Ipv4Address(172, 16, 0, 0), 12}});
  EXPECT_TRUE(c.is_local(net::Ipv4Address(172, 20, 1, 1)));
  EXPECT_TRUE(c.is_local(kLocalHost));
  EXPECT_FALSE(c.is_local(kRemoteHost));
}

TEST(VolumeSeriesTest, SpreadsBytesAcrossBuckets) {
  FlowCollector c("test", {kLocalNet});
  // 1000 bytes over [0, 99] -> 10 bytes/sec; buckets of 50s get 500 each.
  c.add(flow(kLocalHost, kRemoteHost, 123, 80, 1000, 0, 99));
  const auto series = c.volume_series(0, 100, 50,
                                      [](const FlowRecord&) { return true; });
  ASSERT_EQ(series.bytes.size(), 2u);
  EXPECT_NEAR(series.bytes[0], 500.0, 1.0);
  EXPECT_NEAR(series.bytes[1], 500.0, 1.0);
}

TEST(VolumeSeriesTest, TotalMassPreserved) {
  FlowCollector c("test", {kLocalNet});
  c.add(flow(kLocalHost, kRemoteHost, 123, 80, 7777, 13, 371));
  const auto series = c.volume_series(0, 400, 25,
                                      [](const FlowRecord&) { return true; });
  double total = 0;
  for (const double b : series.bytes) total += b;
  EXPECT_NEAR(total, 7777.0, 1.0);
}

TEST(VolumeSeriesTest, InstantFlowLandsInOneBucket) {
  FlowCollector c("test", {kLocalNet});
  c.add(flow(kLocalHost, kRemoteHost, 123, 80, 640, 75, 75));
  const auto series = c.volume_series(0, 100, 50,
                                      [](const FlowRecord&) { return true; });
  EXPECT_NEAR(series.bytes[0], 0.0, 1e-9);
  EXPECT_NEAR(series.bytes[1], 640.0, 1e-6);
}

TEST(VolumeSeriesTest, FilterApplies) {
  FlowCollector c("test", {kLocalNet});
  c.add(flow(kLocalHost, kRemoteHost, 123, 80, 1000, 0, 9));
  c.add(flow(kLocalHost, kRemoteHost, 9999, 80, 5000, 0, 9));
  const auto series = c.volume_series(0, 10, 10, is_ntp_source);
  EXPECT_NEAR(series.bytes[0], 1000.0, 1e-6);
}

TEST(VolumeSeriesTest, FlowsOutsideWindowIgnored) {
  FlowCollector c("test", {kLocalNet});
  c.add(flow(kLocalHost, kRemoteHost, 123, 80, 1000, 500, 600));
  const auto series = c.volume_series(0, 100, 10,
                                      [](const FlowRecord&) { return true; });
  for (const double b : series.bytes) EXPECT_EQ(b, 0.0);
}

TEST(VolumeSeriesTest, PartialOverlapProportional) {
  FlowCollector c("test", {kLocalNet});
  // 1000 bytes over [50, 149] (100s); window [0,100) catches half.
  c.add(flow(kLocalHost, kRemoteHost, 123, 80, 1000, 50, 149));
  const auto series = c.volume_series(0, 100, 100,
                                      [](const FlowRecord&) { return true; });
  EXPECT_NEAR(series.bytes[0], 500.0, 1.0);
}

TEST(VolumeSeriesTest, RateBps) {
  VolumeSeries s;
  s.bucket_seconds = 10;
  s.bytes = {1000.0};
  EXPECT_NEAR(s.rate_bps(0), 800.0, 1e-9);
}

TEST(VolumeSeriesTest, DegenerateWindows) {
  FlowCollector c("test", {kLocalNet});
  EXPECT_TRUE(c.volume_series(100, 100, 10, [](const FlowRecord&) {
                 return true;
               }).bytes.empty());
  EXPECT_TRUE(c.volume_series(0, 100, 0, [](const FlowRecord&) {
                 return true;
               }).bytes.empty());
}

TEST(TotalBytesTest, SumsMatchingFlows) {
  FlowCollector c("test", {kLocalNet});
  c.add(flow(kLocalHost, kRemoteHost, 123, 80, 100, 0, 1));
  c.add(flow(kLocalHost, kRemoteHost, 123, 80, 200, 0, 1));
  c.add(flow(kRemoteHost, kLocalHost, 44, 123, 1000, 0, 1));
  EXPECT_EQ(c.total_bytes(is_ntp_source), 300u);
  EXPECT_EQ(c.total_bytes(is_ntp_dest), 1000u);
}

TEST(FilterHelpersTest, PortAndProtocol) {
  FlowRecord f;
  f.protocol = 17;
  f.src_port = 123;
  EXPECT_TRUE(is_ntp_source(f));
  EXPECT_FALSE(is_ntp_dest(f));
  f.protocol = 6;
  EXPECT_FALSE(is_ntp_source(f));  // TCP/123 is not NTP service traffic
}

TEST(FlowCollectorTest, ClearEmpties) {
  FlowCollector c("test", {kLocalNet});
  c.add(flow(kLocalHost, kRemoteHost, 1, 2, 100, 0, 1));
  c.clear();
  EXPECT_TRUE(c.flows().empty());
}

}  // namespace
}  // namespace gorilla::telemetry
