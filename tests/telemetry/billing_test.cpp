#include "telemetry/billing.h"

#include <gtest/gtest.h>

namespace gorilla::telemetry {
namespace {

VolumeSeries series_of(std::vector<double> bytes,
                       util::SimTime bucket = 300) {
  VolumeSeries s;
  s.bucket_seconds = bucket;
  s.bytes = std::move(bytes);
  return s;
}

TEST(BillingTest, EmptySeries) {
  const auto r = percentile_billing(series_of({}));
  EXPECT_EQ(r.samples, 0u);
  EXPECT_EQ(r.billed_bps, 0.0);
}

TEST(BillingTest, ConstantSeries) {
  const auto r = percentile_billing(series_of(std::vector<double>(100, 300.0)));
  // 300 bytes per 300s = 8 bps.
  EXPECT_NEAR(r.billed_bps, 8.0, 1e-9);
  EXPECT_NEAR(r.peak_bps, 8.0, 1e-9);
  EXPECT_NEAR(r.mean_bps, 8.0, 1e-9);
}

TEST(BillingTest, DiscardsTopFivePercent) {
  // 100 samples: 95 at 300 bytes, 5 enormous spikes. The 95th-percentile
  // rate must ignore the spikes.
  std::vector<double> bytes(95, 300.0);
  bytes.insert(bytes.end(), 5, 3e9);
  const auto r = percentile_billing(series_of(std::move(bytes)));
  EXPECT_NEAR(r.billed_bps, 8.0, 1e-6);
  EXPECT_GT(r.peak_bps, 1e6);
}

TEST(BillingTest, SustainedAttackRaisesBill) {
  // An attack occupying 10% of samples does move the 95th percentile.
  std::vector<double> bytes(90, 300.0);
  bytes.insert(bytes.end(), 10, 3000.0);
  const auto r = percentile_billing(series_of(std::move(bytes)));
  EXPECT_NEAR(r.billed_bps, 80.0, 1e-6);
}

TEST(BillingIncreaseTest, ZeroOverlayZeroIncrease) {
  const auto base = series_of(std::vector<double>(100, 300.0));
  const auto overlay = series_of(std::vector<double>(100, 0.0));
  EXPECT_NEAR(billing_increase(base, overlay), 0.0, 1e-12);
}

TEST(BillingIncreaseTest, ProportionalOverlay) {
  const auto base = series_of(std::vector<double>(100, 1000.0));
  const auto overlay = series_of(std::vector<double>(100, 20.0));
  // +2% everywhere -> +2% billed.
  EXPECT_NEAR(billing_increase(base, overlay), 0.02, 1e-9);
}

TEST(BillingIncreaseTest, BriefSpikeIsFree) {
  // The paper's point about the 95th-percentile model: a spike shorter
  // than 5% of the month costs nothing.
  std::vector<double> overlay_bytes(100, 0.0);
  overlay_bytes[50] = 1e9;
  const auto base = series_of(std::vector<double>(100, 1000.0));
  const auto overlay = series_of(std::move(overlay_bytes));
  EXPECT_NEAR(billing_increase(base, overlay), 0.0, 1e-12);
}

TEST(BillingIncreaseTest, RejectsMisalignedSeries) {
  const auto base = series_of(std::vector<double>(100, 1.0));
  const auto overlay = series_of(std::vector<double>(99, 1.0));
  EXPECT_THROW(static_cast<void>(billing_increase(base, overlay)),
               std::invalid_argument);
  const auto other_bucket = series_of(std::vector<double>(100, 1.0), 600);
  EXPECT_THROW(static_cast<void>(billing_increase(base, other_bucket)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gorilla::telemetry
