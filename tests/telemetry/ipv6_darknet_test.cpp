#include <gtest/gtest.h>

#include "telemetry/darknet.h"
#include "util/rng.h"

namespace gorilla::telemetry {
namespace {

net::Ipv6Address v6(const char* text) { return *net::parse_ipv6(text); }

TEST(Ipv6DarknetTest, RirCoveringPrefixesAreDisjoint) {
  const auto prefixes = rir_covering_prefixes();
  ASSERT_EQ(prefixes.size(), 4u);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    for (std::size_t j = 0; j < prefixes.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(prefixes[i].contains(prefixes[j].base()))
          << to_string(prefixes[i]) << " overlaps " << to_string(prefixes[j]);
    }
  }
}

TEST(Ipv6DarknetTest, IgnoresTrafficOutsideCoveringSpace) {
  Ipv6DarknetTelescope t(rir_covering_prefixes());
  t.observe(v6("2001:db8::1"), v6("2001:db8::2"), 123, 0, 10);
  EXPECT_EQ(t.total_packets(), 0u);
}

TEST(Ipv6DarknetTest, RecordsDarkSideNtp) {
  Ipv6DarknetTelescope t(rir_covering_prefixes());
  t.observe(v6("2001:db8::1"), v6("2600:1234::9"), 123, 0, 3);
  t.observe(v6("2001:db8::1"), v6("2600:1234::9"), 80, 0, 5);
  EXPECT_EQ(t.total_packets(), 8u);
  EXPECT_EQ(t.ntp_packets(), 3u);
  EXPECT_EQ(t.unique_ntp_sources(), 1u);
}

TEST(Ipv6DarknetTest, ErrantPointToPointIsNotScanning) {
  // §5.1's actual finding: a handful of misconfigured hosts chirping NTP
  // at dark space does not constitute broad scanning.
  Ipv6DarknetTelescope t(rir_covering_prefixes());
  util::Rng rng(6);
  for (int day = 0; day < 90; ++day) {
    // Three misconfigured associations, a few packets a day each.
    t.observe(v6("2400:aaaa::1"), v6("2400:dead::1"), 123, day,
              rng.uniform(3));
    t.observe(v6("2800:bbbb::7"), v6("2800:beef::2"), 123, day, 1);
  }
  EXPECT_GT(t.ntp_packets(), 0u);
  EXPECT_TRUE(t.no_broad_scanning());
}

TEST(Ipv6DarknetTest, ActualSweepWouldBeDetected) {
  // Falsifiability: if someone HAD swept v6 space, the telescope flags it.
  Ipv6DarknetTelescope t(rir_covering_prefixes());
  for (int i = 0; i < 1000; ++i) {
    std::array<std::uint8_t, 16> dst_bytes{};
    dst_bytes[0] = 0x26;
    dst_bytes[15] = static_cast<std::uint8_t>(i);
    dst_bytes[14] = static_cast<std::uint8_t>(i >> 8);
    t.observe(v6("2400:bad::1"), net::Ipv6Address{dst_bytes}, 123, 1, 1);
  }
  EXPECT_FALSE(t.no_broad_scanning());
  const auto suspects = t.scanning_suspects();
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], v6("2400:bad::1"));
}

TEST(Ipv6DarknetTest, ZeroPacketObservationsIgnored) {
  Ipv6DarknetTelescope t(rir_covering_prefixes());
  t.observe(v6("2400::1"), v6("2600::2"), 123, 0, 0);
  EXPECT_EQ(t.total_packets(), 0u);
}

}  // namespace
}  // namespace gorilla::telemetry
