#include "telemetry/traffic.h"

#include <gtest/gtest.h>

namespace gorilla::telemetry {
namespace {

TEST(GlobalTrafficTest, RejectsNonPositiveHorizon) {
  EXPECT_THROW(GlobalTrafficCollector(0, 1.0), std::invalid_argument);
}

TEST(GlobalTrafficTest, LedgerAccumulates) {
  GlobalTrafficCollector c(10, 1e12);
  c.add_bytes(3, ProtocolClass::kNtp, 1000.0);
  c.add_bytes(3, ProtocolClass::kNtp, 500.0);
  EXPECT_EQ(c.bytes(3, ProtocolClass::kNtp), 1500.0);
  EXPECT_EQ(c.bytes(3, ProtocolClass::kDns), 0.0);
  EXPECT_EQ(c.bytes(4, ProtocolClass::kNtp), 0.0);
}

TEST(GlobalTrafficTest, OutOfWindowIgnored) {
  GlobalTrafficCollector c(10, 1e12);
  c.add_bytes(-1, ProtocolClass::kNtp, 1000.0);
  c.add_bytes(10, ProtocolClass::kNtp, 1000.0);
  for (int d = 0; d < 10; ++d) {
    EXPECT_EQ(c.bytes(d, ProtocolClass::kNtp), 0.0);
  }
}

TEST(GlobalTrafficTest, ProtocolBpsConversion) {
  GlobalTrafficCollector c(5, 1e12);
  // 86400 bytes over a day = 8 bits/sec.
  c.add_bytes(0, ProtocolClass::kDns, 86400.0);
  EXPECT_NEAR(c.protocol_bps(0, ProtocolClass::kDns), 8.0, 1e-9);
}

TEST(GlobalTrafficTest, FractionOfInternet) {
  GlobalTrafficCollector c(5, 1e9);  // 1 Gbps baseline
  // Add NTP worth exactly 1 Gbps daily average.
  c.add_bytes(0, ProtocolClass::kNtp, 1e9 / 8.0 * 86400.0);
  // Fraction = 1 / (1 + 1) = 0.5.
  EXPECT_NEAR(c.fraction_of_internet(0, ProtocolClass::kNtp), 0.5, 1e-9);
  EXPECT_NEAR(c.fraction_of_internet(1, ProtocolClass::kNtp), 0.0, 1e-12);
}

TEST(SizeClassTest, PaperBins) {
  EXPECT_EQ(classify_size(1e6), SizeClass::kSmall);
  EXPECT_EQ(classify_size(1.99e9), SizeClass::kSmall);
  EXPECT_EQ(classify_size(2e9), SizeClass::kMedium);
  EXPECT_EQ(classify_size(20e9), SizeClass::kMedium);
  EXPECT_EQ(classify_size(20.1e9), SizeClass::kLarge);
  EXPECT_EQ(classify_size(400e9), SizeClass::kLarge);
}

TEST(AttackLabelStoreTest, MonthlyRollupBinsCorrectly) {
  AttackLabelStore store;
  const util::SimTime nov_day =
      util::sim_time_from_date(util::Date{2013, 11, 5});
  const util::SimTime feb_day =
      util::sim_time_from_date(util::Date{2014, 2, 12});
  store.add({nov_day, AttackVector::kDns, 1e9});       // Nov small DNS
  store.add({feb_day, AttackVector::kNtp, 30e9});      // Feb large NTP
  store.add({feb_day + 100, AttackVector::kNtp, 5e9}); // Feb medium NTP
  store.add({feb_day + 200, AttackVector::kSynFlood, 1e8});
  const auto rollup = store.monthly_rollup();
  ASSERT_EQ(rollup.size(), 2u);
  EXPECT_EQ(rollup[0].year, 2013);
  EXPECT_EQ(rollup[0].month, 11);
  EXPECT_EQ(rollup[0].total, 1u);
  EXPECT_EQ(rollup[0].ntp_total, 0u);
  EXPECT_EQ(rollup[1].month, 2);
  EXPECT_EQ(rollup[1].total, 3u);
  EXPECT_EQ(rollup[1].ntp_total, 2u);
  EXPECT_DOUBLE_EQ(rollup[1].ntp_fraction(SizeClass::kLarge), 1.0);
  EXPECT_DOUBLE_EQ(rollup[1].ntp_fraction(SizeClass::kMedium), 1.0);
  EXPECT_DOUBLE_EQ(rollup[1].ntp_fraction(SizeClass::kSmall), 0.0);
  EXPECT_NEAR(rollup[1].ntp_fraction_all(), 2.0 / 3.0, 1e-9);
}

TEST(AttackLabelStoreTest, EmptyBinsYieldZeroFractions) {
  AttackLabelStore store;
  store.add({0, AttackVector::kDns, 1e6});
  const auto rollup = store.monthly_rollup();
  ASSERT_EQ(rollup.size(), 1u);
  EXPECT_EQ(rollup[0].ntp_fraction(SizeClass::kLarge), 0.0);
}

TEST(ToStringTest, Labels) {
  EXPECT_STREQ(to_string(ProtocolClass::kNtp), "ntp");
  EXPECT_STREQ(to_string(AttackVector::kSynFlood), "syn");
  EXPECT_STREQ(to_string(SizeClass::kLarge), "Large (>20 Gbps)");
}

}  // namespace
}  // namespace gorilla::telemetry
