#include "telemetry/detector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gorilla::telemetry {
namespace {

VolumeSeries series_of(std::vector<double> bytes,
                       util::SimTime bucket = 300,
                       util::SimTime start = 0) {
  VolumeSeries s;
  s.start = start;
  s.bucket_seconds = bucket;
  s.bytes = std::move(bytes);
  return s;
}

DetectorConfig quiet_config() {
  DetectorConfig cfg;
  cfg.floor_bps = 100.0;  // tests use small synthetic rates
  return cfg;
}

TEST(DetectorTest, EmptySeriesNoDetections) {
  EXPECT_TRUE(detect_attacks(series_of({}), quiet_config()).empty());
}

TEST(DetectorTest, FlatBaselineNoDetections) {
  const auto detections =
      detect_attacks(series_of(std::vector<double>(200, 1000.0)),
                     quiet_config());
  EXPECT_TRUE(detections.empty());
}

TEST(DetectorTest, DetectsObviousSpike) {
  std::vector<double> bytes(100, 1000.0);
  for (std::size_t b = 40; b < 50; ++b) bytes[b] = 1'000'000.0;
  const auto detections = detect_attacks(series_of(bytes), quiet_config());
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].start, 40 * 300);
  EXPECT_EQ(detections[0].end, 50 * 300);
  EXPECT_NEAR(detections[0].peak_bps, 1'000'000.0 * 8 / 300, 1.0);
  EXPECT_NEAR(detections[0].volume_bytes, 10'000'000.0, 1.0);
}

TEST(DetectorTest, HysteresisBridgesSingleQuietBucket) {
  std::vector<double> bytes(100, 1000.0);
  for (std::size_t b = 40; b < 44; ++b) bytes[b] = 1'000'000.0;
  bytes[44] = 1000.0;  // one quiet bucket inside the attack
  for (std::size_t b = 45; b < 50; ++b) bytes[b] = 1'000'000.0;
  const auto detections = detect_attacks(series_of(bytes), quiet_config());
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].end, 50 * 300);
}

TEST(DetectorTest, SeparatesDistinctAttacks) {
  std::vector<double> bytes(200, 1000.0);
  for (std::size_t b = 40; b < 45; ++b) bytes[b] = 1'000'000.0;
  for (std::size_t b = 120; b < 130; ++b) bytes[b] = 2'000'000.0;
  const auto detections = detect_attacks(series_of(bytes), quiet_config());
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_LT(detections[0].end, detections[1].start);
}

TEST(DetectorTest, MinDurationGateDropsBlips) {
  std::vector<double> bytes(100, 1000.0);
  bytes[40] = 1'000'000.0;  // one-bucket blip
  DetectorConfig cfg = quiet_config();
  cfg.min_duration = 600;  // two buckets
  EXPECT_TRUE(detect_attacks(series_of(bytes), cfg).empty());
  cfg.min_duration = 0;
  EXPECT_EQ(detect_attacks(series_of(bytes), cfg).size(), 1u);
}

TEST(DetectorTest, MinVolumeGate) {
  std::vector<double> bytes(100, 1000.0);
  for (std::size_t b = 40; b < 43; ++b) bytes[b] = 500'000.0;
  DetectorConfig cfg = quiet_config();
  cfg.min_volume_bytes = 10'000'000.0;
  EXPECT_TRUE(detect_attacks(series_of(bytes), cfg).empty());
}

TEST(DetectorTest, BaselineDoesNotLearnFromAttack) {
  // A long attack must not be absorbed into the baseline: the detector
  // should report ONE long episode, not quit midway.
  std::vector<double> bytes(300, 1000.0);
  for (std::size_t b = 50; b < 250; ++b) bytes[b] = 1'000'000.0;
  const auto detections = detect_attacks(series_of(bytes), quiet_config());
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].start, 50 * 300);
  EXPECT_EQ(detections[0].end, 250 * 300);
}

TEST(DetectorTest, SlowGrowthIsEventuallyAbsorbed) {
  // A gradual organic ramp (2% per bucket) is baseline growth, not attack.
  std::vector<double> bytes;
  double v = 1000.0;
  for (int i = 0; i < 300; ++i) {
    bytes.push_back(v);
    v *= 1.02;
  }
  DetectorConfig cfg = quiet_config();
  cfg.floor_bps = 0.0;
  EXPECT_TRUE(detect_attacks(series_of(bytes), cfg).empty());
}

TEST(DetectorTest, AttackRunningToEndOfSeriesIsFinalized) {
  std::vector<double> bytes(100, 1000.0);
  for (std::size_t b = 90; b < 100; ++b) bytes[b] = 1'000'000.0;
  const auto detections = detect_attacks(series_of(bytes), quiet_config());
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].end, 100 * 300);
}

TEST(StreamingDetectorTest, PushByPushMatchesBatchBitForBit) {
  // detect_attacks is a wrapper over StreamingDetector; feeding buckets one
  // at a time must produce bit-identical episodes — the property the
  // replay DetectorSink's live-vs-replay byte identity rests on.
  util::Rng rng(0xd37ec7);
  std::vector<double> bytes;
  bytes.reserve(500);
  for (int i = 0; i < 500; ++i) {
    double v = rng.uniform01() * 2000.0;
    if (i % 97 < 5) v += 1e6;                   // bursts
    if (i > 300 && i < 320) v += 5e5 * rng.uniform01();  // ragged attack
    bytes.push_back(v);
  }
  const auto series = series_of(bytes, 300, 86400);
  DetectorConfig cfg = quiet_config();
  cfg.min_duration = 600;

  const auto batch = detect_attacks(series, cfg);
  StreamingDetector streaming(series.start, series.bucket_seconds, cfg);
  for (const double b : bytes) streaming.push(b);
  streaming.finish();

  ASSERT_EQ(streaming.attacks().size(), batch.size());
  EXPECT_FALSE(batch.empty());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streaming.attacks()[i].start, batch[i].start) << i;
    EXPECT_EQ(streaming.attacks()[i].end, batch[i].end) << i;
    EXPECT_EQ(streaming.attacks()[i].peak_bps, batch[i].peak_bps) << i;
    EXPECT_EQ(streaming.attacks()[i].volume_bytes, batch[i].volume_bytes)
        << i;
  }
  EXPECT_EQ(streaming.buckets_seen(), bytes.size());
}

TEST(StreamingDetectorTest, FinishIsIdempotentAndClosesOpenAttack) {
  StreamingDetector detector(0, 300, quiet_config());
  for (int i = 0; i < 20; ++i) detector.push(100.0);
  detector.push(1e9);
  detector.push(1e9);
  detector.finish();
  ASSERT_EQ(detector.attacks().size(), 1u);
  EXPECT_EQ(detector.attacks()[0].end, 22 * 300);
  detector.finish();                // idempotent
  detector.push(1e9);               // pushes after finish are ignored
  EXPECT_EQ(detector.attacks().size(), 1u);
  EXPECT_EQ(detector.buckets_seen(), 22u);
}

TEST(ScoreDetectionsTest, PerfectMatch) {
  std::vector<DetectedAttack> detections = {{100, 200, 1.0, 1.0}};
  const auto q = score_detections(detections, {{150, 180}});
  EXPECT_EQ(q.recall(), 1.0);
  EXPECT_EQ(q.precision(), 1.0);
}

TEST(ScoreDetectionsTest, MissAndFalsePositive) {
  std::vector<DetectedAttack> detections = {{100, 200, 1.0, 1.0},
                                            {900, 950, 1.0, 1.0}};
  const auto q = score_detections(detections, {{150, 180}, {400, 500}});
  EXPECT_NEAR(q.recall(), 0.5, 1e-12);     // second truth missed
  EXPECT_NEAR(q.precision(), 0.5, 1e-12);  // second detection spurious
}

TEST(ScoreDetectionsTest, EmptyInputs) {
  const auto q = score_detections({}, {});
  EXPECT_EQ(q.recall(), 0.0);
  EXPECT_EQ(q.precision(), 0.0);
}

}  // namespace
}  // namespace gorilla::telemetry
