#include "telemetry/darknet.h"

#include <gtest/gtest.h>

namespace gorilla::telemetry {
namespace {

DarknetConfig config() {
  DarknetConfig cfg;
  cfg.telescope = net::Prefix{net::Ipv4Address(50, 0, 0, 0), 8};
  cfg.effective_coverage = 0.75;
  return cfg;
}

TEST(DarknetTest, EffectiveDarkSlash24s) {
  DarknetTelescope t(config());
  // A /8 holds 65536 /24s; 75% are effectively dark.
  EXPECT_NEAR(t.effective_dark_slash24s(), 49152.0, 1e-6);
}

TEST(DarknetTest, ObserveScanAggregates) {
  DarknetTelescope t(config());
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 0, 1000, false);
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 0, 500, false);
  t.observe_scan(net::Ipv4Address(2, 2, 2, 2), 0, 100, true);
  EXPECT_EQ(t.total_packets(), 1600u);
  const auto per_day = t.unique_scanners_per_day();
  EXPECT_EQ(per_day.at(0), 2u);
}

TEST(DarknetTest, ZeroPacketScansIgnored) {
  DarknetTelescope t(config());
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 0, 0, false);
  EXPECT_EQ(t.total_packets(), 0u);
  EXPECT_TRUE(t.unique_scanners_per_day().empty());
}

TEST(DarknetTest, PacketEntryPointFiltersByPrefix) {
  DarknetTelescope t(config());
  net::UdpPacket inside;
  inside.src = net::Ipv4Address(9, 9, 9, 9);
  inside.dst = net::Ipv4Address(50, 1, 2, 3);
  inside.timestamp = 3 * util::kSecondsPerDay + 5;
  net::UdpPacket outside = inside;
  outside.dst = net::Ipv4Address(51, 1, 2, 3);
  t.observe_packet(inside, false);
  t.observe_packet(outside, false);
  EXPECT_EQ(t.total_packets(), 1u);
  EXPECT_EQ(t.unique_scanners_per_day().begin()->first, 3);
}

TEST(DarknetTest, MonthlyVolumesNormalizePerSlash24) {
  DarknetTelescope t(config());
  // 49152 dark /24s; 49152000 packets -> 1000 packets per /24.
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 5, 49152000, false);
  const auto monthly = t.monthly_volumes();
  ASSERT_EQ(monthly.size(), 1u);
  EXPECT_EQ(monthly[0].year, 2013);
  EXPECT_EQ(monthly[0].month, 11);
  EXPECT_NEAR(monthly[0].other_packets_per_24, 1000.0, 1e-6);
  EXPECT_NEAR(monthly[0].benign_packets_per_24, 0.0, 1e-9);
}

TEST(DarknetTest, BenignFraction) {
  DarknetTelescope t(config());
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 0, 600, true);
  t.observe_scan(net::Ipv4Address(2, 2, 2, 2), 0, 400, false);
  const auto monthly = t.monthly_volumes();
  ASSERT_EQ(monthly.size(), 1u);
  EXPECT_NEAR(monthly[0].benign_fraction(), 0.6, 1e-9);
  EXPECT_NEAR(monthly[0].total(),
              1000.0 / t.effective_dark_slash24s(), 1e-9);
}

TEST(DarknetTest, MonthBoundariesRespected) {
  DarknetTelescope t(config());
  // Day 29 is 2013-11-30; day 30 is 2013-12-01.
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 29, 100, false);
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 30, 100, false);
  const auto monthly = t.monthly_volumes();
  ASSERT_EQ(monthly.size(), 2u);
  EXPECT_EQ(monthly[0].month, 11);
  EXPECT_EQ(monthly[1].month, 12);
}

TEST(DarknetTest, ScannersCollectIdentity) {
  DarknetTelescope t(config());
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 0, 10, false);
  t.observe_scan(net::Ipv4Address(1, 1, 1, 1), 5, 10, true);  // later benign
  t.observe_scan(net::Ipv4Address(2, 2, 2, 2), 1, 10, false);
  const auto scanners = t.scanners();
  ASSERT_EQ(scanners.size(), 2u);
  // Benign sticks once seen.
  for (const auto& s : scanners) {
    if (s.address == net::Ipv4Address(1, 1, 1, 1)) {
      EXPECT_TRUE(s.benign);
    }
    if (s.address == net::Ipv4Address(2, 2, 2, 2)) {
      EXPECT_FALSE(s.benign);
    }
  }
}

}  // namespace
}  // namespace gorilla::telemetry
