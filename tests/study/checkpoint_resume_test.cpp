// In-process kill-test for the checkpoint/resume path: a mid-run
// checkpoint is a whole, loadable artifact holding exactly the complete
// weeks recorded so far; a torn artifact replays as the longest
// week-aligned prefix and never leaks a partial week into the sink.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "scan/prober.h"
#include "study/events.h"
#include "study/recorder.h"
#include "util/columnar.h"

namespace gorilla::study {
namespace {

StudyHeader test_header() {
  StudyHeader h;
  h.kind = 0;
  h.scale = 55;
  h.seed = 0x800'1b;
  h.quick = true;
  h.param_a = 3;
  return h;
}

/// One synthetic sample week: every event type fires, payloads vary by
/// week so a misaligned replay cannot accidentally match.
void emit_week(EventSink& sink, int week) {
  sink.on_global_bytes(week * 7, telemetry::ProtocolClass::kNtp,
                       1.5e9 * (week + 1));

  telemetry::FlowRecord flow;
  flow.src = net::Ipv4Address(192, 0, 2, static_cast<std::uint8_t>(week + 1));
  flow.dst = net::Ipv4Address(198, 51, 100, 7);
  flow.src_port = 123;
  flow.dst_port = static_cast<std::uint16_t>(40000 + week);
  flow.packets = 10u + static_cast<std::uint64_t>(week);
  flow.bytes = 4000u + static_cast<std::uint64_t>(week) * 100;
  sink.on_flow(flow, kAllVantages);

  sink.on_darknet_scan(net::Ipv4Address(203, 0, 113, 9), week * 7,
                       256 + static_cast<std::uint64_t>(week), week % 2 == 0);

  sink.on_sample_begin(week, util::Date{2013, 11, 1 + week});
  scan::AmplifierObservation obs;
  obs.server_index = 100 + week;
  obs.address = net::Ipv4Address(203, 0, 113, static_cast<std::uint8_t>(week));
  obs.response_packets = 7u + static_cast<std::uint64_t>(week);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ntp::MonitorEntry entry;
    entry.address = net::Ipv4Address((10u << 24) | (week * 8u + i));
    entry.local_address = obs.address;
    entry.count = 100u * (i + 1) + static_cast<std::uint32_t>(week);
    entry.port = static_cast<std::uint16_t>(1024 + i);
    entry.mode = 3;
    entry.version = 4;
    obs.table.push_back(entry);
  }
  sink.on_probe_observation(week, obs);

  scan::MonlistSampleSummary summary;
  summary.week = week;
  summary.date = util::Date{2013, 11, 1 + week};
  summary.probes_sent = 500 + week;
  summary.responders = 42 + week;
  sink.on_monlist_summary(summary);
  sink.on_sample_end(week);
}

/// Journals every delivered event as one line for order/payload equality.
struct JournalSink final : EventSink {
  std::vector<std::string> lines;
  [[nodiscard]] bool wants_flows() const override { return true; }
  [[nodiscard]] bool wants_labels() const override { return true; }
  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override {
    lines.push_back("global " + std::to_string(day) + " " +
                    std::to_string(static_cast<int>(p)) + " " +
                    std::to_string(bytes));
  }
  void on_flow(const telemetry::FlowRecord& flow, int vantage) override {
    lines.push_back("flow " + std::to_string(vantage) + " " +
                    std::to_string(flow.src.value()) + " " +
                    std::to_string(flow.bytes));
  }
  void on_darknet_scan(net::Ipv4Address scanner, int day,
                       std::uint64_t packets, bool benign) override {
    lines.push_back("dark " + std::to_string(scanner.value()) + " " +
                    std::to_string(day) + " " + std::to_string(packets) + " " +
                    std::to_string(benign ? 1 : 0));
  }
  void on_sample_begin(int week, const util::Date& date) override {
    lines.push_back("begin " + std::to_string(week) + " " +
                    std::to_string(date.day));
  }
  void on_probe_observation(int week,
                            const scan::AmplifierObservation& obs) override {
    std::string line = "obs " + std::to_string(week) + " " +
                       std::to_string(obs.server_index);
    for (const auto& e : obs.table) {
      line += ' ';
      line += std::to_string(e.address.value());
      line += ':';
      line += std::to_string(e.count);
    }
    lines.push_back(line);
  }
  void on_monlist_summary(const scan::MonlistSampleSummary& summary) override {
    lines.push_back("sum " + std::to_string(summary.week) + " " +
                    std::to_string(summary.responders));
  }
  void on_sample_end(int week) override {
    lines.push_back("end " + std::to_string(week));
  }
};

std::vector<std::string> direct_journal(int weeks) {
  JournalSink sink;
  for (int w = 0; w < weeks; ++w) emit_week(sink, w);
  return sink.lines;
}

TEST(RecorderCheckpointTest, CheckpointCapturesCompleteWeeksMidRun) {
  const std::string path = testing::TempDir() + "checkpoint_midrun.study";
  Recorder recorder(test_header());
  emit_week(recorder, 0);
  emit_week(recorder, 1);
  ASSERT_TRUE(recorder.checkpoint(path));

  // The "crash": week 2 starts but never completes, and no final save runs.
  recorder.on_sample_begin(2, util::Date{2013, 11, 3});
  recorder.on_global_bytes(14, telemetry::ProtocolClass::kNtp, 9e9);

  Replayer replayer;
  ReplayReport report;
  ASSERT_TRUE(replayer.load_prefix(path, report));
  EXPECT_TRUE(report.clean);  // a checkpoint is a whole artifact
  EXPECT_EQ(replayer.header(), test_header());
  EXPECT_EQ(replayer.complete_weeks(), 2);

  JournalSink sink;
  ASSERT_TRUE(replayer.replay_prefix(sink, -1, report));
  EXPECT_EQ(report.weeks_complete, 2);
  EXPECT_EQ(sink.lines, direct_journal(2));
  std::remove(path.c_str());
}

TEST(RecorderCheckpointTest, SnapshotDoesNotDisturbRecording) {
  Recorder with_snapshot(test_header());
  Recorder plain(test_header());
  for (int w = 0; w < 3; ++w) {
    emit_week(with_snapshot, w);
    emit_week(plain, w);
    (void)with_snapshot.snapshot_archive();  // snapshot every week boundary
  }
  const util::ColumnArchive a = with_snapshot.to_archive();
  const util::ColumnArchive b = plain.to_archive();
  EXPECT_EQ(a.header, b.header);
  EXPECT_EQ(a.sections, b.sections);
}

TEST(RecorderCheckpointTest, SnapshotAtEndMatchesFinalArchive) {
  Recorder recorder(test_header());
  for (int w = 0; w < 2; ++w) emit_week(recorder, w);
  const util::ColumnArchive snap = recorder.snapshot_archive();
  const util::ColumnArchive final_archive = recorder.to_archive();
  EXPECT_EQ(snap.header, final_archive.header);
  EXPECT_EQ(snap.sections, final_archive.sections);
}

TEST(ReplayerPrefixTest, TruncatedArtifactReplaysOnlyWholeWeeks) {
  const std::string path = testing::TempDir() + "prefix_truncated.study";
  Recorder recorder(test_header());
  for (int w = 0; w < 3; ++w) emit_week(recorder, w);
  ASSERT_TRUE(recorder.save(path));
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  for (const double frac : {0.35, 0.55, 0.75, 0.95}) {
    const auto len =
        static_cast<std::size_t>(static_cast<double>(full.size()) * frac);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(len));
    }
    Replayer replayer;
    ReplayReport report;
    if (!replayer.load_prefix(path, report)) continue;  // header zone cut
    EXPECT_FALSE(report.clean) << "frac " << frac;

    JournalSink sink;
    ASSERT_TRUE(replayer.replay_prefix(sink, -1, report)) << "frac " << frac;
    ASSERT_LE(report.weeks_complete, 3) << "frac " << frac;
    // The sink saw exactly the first weeks_complete weeks — never a torn
    // week, never a stray event past the last on_sample_end.
    EXPECT_EQ(sink.lines, direct_journal(report.weeks_complete))
        << "frac " << frac;
  }
  std::remove(path.c_str());
}

/// Fails the test on ANY delivered event — for proving a sink is never
/// invoked.
struct MustNotDeliverSink final : EventSink {
  [[nodiscard]] bool wants_flows() const override { return true; }
  [[nodiscard]] bool wants_labels() const override { return true; }
  void on_global_bytes(int, telemetry::ProtocolClass, double) override {
    ADD_FAILURE() << "on_global_bytes delivered";
  }
  void on_attack_label(const telemetry::LabeledAttack&) override {
    ADD_FAILURE() << "on_attack_label delivered";
  }
  void on_flow(const telemetry::FlowRecord&, int) override {
    ADD_FAILURE() << "on_flow delivered";
  }
  void on_darknet_scan(net::Ipv4Address, int, std::uint64_t, bool) override {
    ADD_FAILURE() << "on_darknet_scan delivered";
  }
  void on_sample_begin(int, const util::Date&) override {
    ADD_FAILURE() << "on_sample_begin delivered";
  }
  void on_probe_observation(int, const scan::AmplifierObservation&) override {
    ADD_FAILURE() << "on_probe_observation delivered";
  }
  void on_monlist_summary(const scan::MonlistSampleSummary&) override {
    ADD_FAILURE() << "on_monlist_summary delivered";
  }
  void on_sample_end(int) override { ADD_FAILURE() << "on_sample_end"; }
};

TEST(ReplayerPrefixTest, ZeroCompleteWeeksNeverInvokesTheSink) {
  // The torn-at-week-0 edge: the artifact holds events but no
  // on_sample_end marker, so there is no week-aligned prefix to deliver.
  // replay_prefix must return a clean empty report without a single sink
  // call.
  Recorder recorder(test_header());
  recorder.on_sample_begin(0, util::Date{2013, 11, 1});
  recorder.on_global_bytes(0, telemetry::ProtocolClass::kNtp, 1e9);
  telemetry::FlowRecord flow;
  flow.src = net::Ipv4Address(192, 0, 2, 1);
  flow.bytes = 1234;
  recorder.on_flow(flow, kAllVantages);
  const std::string path = testing::TempDir() + "prefix_week0.study";
  ASSERT_TRUE(recorder.save(path));

  Replayer replayer;
  ReplayReport report;
  ASSERT_TRUE(replayer.load_prefix(path, report));
  EXPECT_EQ(replayer.complete_weeks(), 0);

  MustNotDeliverSink sink;
  EXPECT_TRUE(replayer.replay_prefix(sink, -1, report));
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(report.weeks_complete, 0);
  std::remove(path.c_str());
}

TEST(ReplayerPrefixTest, HeaderOnlyFileLoadsAndReplaysEmpty) {
  // A file torn before (or inside) the section count still carries a whole
  // verified study header; load_prefix accepts it and replay_prefix yields
  // a clean empty report without touching the sink.
  Recorder recorder(test_header());
  emit_week(recorder, 0);
  const std::string path = testing::TempDir() + "prefix_headeronly.study";
  ASSERT_TRUE(recorder.save(path));
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  // v2 layout: magic(8) + u32 header len + header + u32 CRC + u32 count.
  const std::uint32_t header_len =
      static_cast<std::uint32_t>(static_cast<unsigned char>(full[8])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(full[9])) << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(full[10])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(full[11])) << 24);
  const std::size_t crc_end = 12 + header_len + 4;
  for (const std::size_t len : {crc_end, crc_end + 2, crc_end + 4}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(len));
    }
    Replayer replayer;
    ReplayReport report;
    ASSERT_TRUE(replayer.load_prefix(path, report)) << "len " << len;
    EXPECT_FALSE(report.clean) << "len " << len;
    EXPECT_EQ(replayer.header(), test_header()) << "len " << len;
    EXPECT_EQ(replayer.complete_weeks(), 0) << "len " << len;

    MustNotDeliverSink sink;
    EXPECT_TRUE(replayer.replay_prefix(sink, -1, report)) << "len " << len;
    EXPECT_EQ(report.events, 0u) << "len " << len;
    EXPECT_EQ(report.weeks_complete, 0) << "len " << len;
  }
  std::remove(path.c_str());
}

TEST(ReplayerPrefixTest, ReplayPrefixHonorsWeekCap) {
  Recorder recorder(test_header());
  for (int w = 0; w < 3; ++w) emit_week(recorder, w);
  const std::string path = testing::TempDir() + "prefix_cap.study";
  ASSERT_TRUE(recorder.save(path));

  Replayer replayer;
  ReplayReport report;
  ASSERT_TRUE(replayer.load_prefix(path, report));
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(replayer.complete_weeks(), 3);

  JournalSink sink;
  ASSERT_TRUE(replayer.replay_prefix(sink, 1, report));
  EXPECT_EQ(report.weeks_complete, 1);
  EXPECT_EQ(sink.lines, direct_journal(1));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gorilla::study
