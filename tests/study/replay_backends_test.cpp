// Replay-backend equivalence suite (ROADMAP "Multi-backend replay"):
// a DetectorSink fed by the live EventBus renders byte-identically to one
// fed by a replayed artifact (for any --jobs), the bus fans the full
// ordered stream out to every subscriber, and a PcapExportSink capture
// round-trips through net::PcapReader + ntp::reassemble_monlist back to
// the exact monitor table it witnessed.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "core/monlist_analysis.h"
#include "net/pcap.h"
#include "ntp/mode7.h"
#include "scan/prober.h"
#include "study/bus.h"
#include "study/detector_sink.h"
#include "study/pcap_export_sink.h"
#include "study/recorder.h"
#include "util/time.h"

namespace gorilla::study {
namespace {

/// The detector configuration gorilla_replay derives from a quick
/// StudyPipeline header (horizon 8 weeks, sample days 70 + 7*week): a pure
/// function of the header, so live and replay configure identical sinks.
DetectorSinkConfig quick_study_config() {
  DetectorSinkConfig cfg;
  cfg.window_start = 0;
  cfg.window_end =
      static_cast<util::SimTime>(70 + 7 * 7 + 1) * util::kSecondsPerDay;
  cfg.bucket_seconds = 300;
  cfg.detector.floor_bps = 5e6;
  return cfg;
}

TEST(ReplayBackendsTest, LiveBusAndReplayedArtifactRenderByteIdentically) {
  const std::string path = testing::TempDir() + "replay_backends_live.study";

  bench::Options opt;
  opt.scale = 400;
  opt.quick = true;
  opt.record = path;

  DetectorSink live(quick_study_config());
  {
    bench::StudyPipeline pipeline(opt);
    pipeline.extra_sinks.push_back(&live);
    pipeline.run();
  }
  live.finish();
  const std::string live_render = live.render();
  // The quick study at this scale must actually exercise the detector —
  // an empty report would make byte-equality vacuous.
  EXPECT_GT(live.flows_binned(), 0u);
  EXPECT_NE(live_render.find("attack "), std::string::npos);

  Replayer replayer;
  ASSERT_TRUE(replayer.load(path));
  DetectorSink replayed(quick_study_config());
  ASSERT_TRUE(replayer.replay(replayed));
  replayed.finish();
  EXPECT_EQ(replayed.render(), live_render);

  // The identity holds under the sharded engine too: a --jobs 3 live run
  // drives the same event order through the bus.
  bench::Options sharded = opt;
  sharded.record.clear();
  sharded.jobs = 3;
  DetectorSink live_sharded(quick_study_config());
  {
    bench::StudyPipeline pipeline(sharded);
    pipeline.extra_sinks.push_back(&live_sharded);
    pipeline.run();
  }
  live_sharded.finish();
  EXPECT_EQ(live_sharded.render(), live_render);

  std::remove(path.c_str());
}

/// Journals every delivered event as one line, for order equality across
/// fan-out subscribers.
struct JournalSink final : EventSink {
  std::vector<std::string> lines;
  [[nodiscard]] bool wants_flows() const override { return true; }
  [[nodiscard]] bool wants_labels() const override { return true; }
  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override {
    lines.push_back("global " + std::to_string(day) + " " +
                    std::to_string(static_cast<int>(p)) + " " +
                    std::to_string(bytes));
  }
  void on_attack_label(const telemetry::LabeledAttack& label) override {
    lines.push_back("label " + std::to_string(label.start) + " " +
                    std::to_string(label.peak_bps));
  }
  void on_flow(const telemetry::FlowRecord& flow, int vantage) override {
    lines.push_back("flow " + std::to_string(vantage) + " " +
                    std::to_string(flow.src.value()) + " " +
                    std::to_string(flow.bytes));
  }
  void on_sample_begin(int week, const util::Date& date) override {
    lines.push_back("begin " + std::to_string(week) + " " +
                    std::to_string(date.day));
  }
  void on_probe_observation(int week,
                            const scan::AmplifierObservation& obs) override {
    lines.push_back("obs " + std::to_string(week) + " " +
                    std::to_string(obs.server_index) + " " +
                    std::to_string(obs.table.size()));
  }
  void on_monlist_summary(const scan::MonlistSampleSummary& summary) override {
    lines.push_back("sum " + std::to_string(summary.week));
  }
  void on_sample_end(int week) override {
    lines.push_back("end " + std::to_string(week));
  }
};

void emit_synthetic_week(EventSink& sink, int week) {
  sink.on_global_bytes(week * 7, telemetry::ProtocolClass::kNtp,
                       2.5e9 * (week + 1));
  telemetry::LabeledAttack label;
  label.start = static_cast<util::SimTime>(week) * util::kSecondsPerDay;
  label.vector = telemetry::AttackVector::kNtp;
  label.peak_bps = 1e9 + week;
  sink.on_attack_label(label);

  telemetry::FlowRecord flow;
  flow.src = net::Ipv4Address(192, 0, 2, static_cast<std::uint8_t>(week + 1));
  flow.dst = net::Ipv4Address(198, 51, 100, 9);
  flow.src_port = 123;
  flow.bytes = 9000u + static_cast<std::uint64_t>(week);
  sink.on_flow(flow, kAllVantages);

  sink.on_sample_begin(week, util::Date{2013, 11, 1 + week});
  scan::AmplifierObservation obs;
  obs.server_index = 7u + static_cast<std::uint32_t>(week);
  obs.address = net::Ipv4Address(203, 0, 113, static_cast<std::uint8_t>(week));
  sink.on_probe_observation(week, obs);
  scan::MonlistSampleSummary summary;
  summary.week = week;
  sink.on_monlist_summary(summary);
  sink.on_sample_end(week);
}

TEST(ReplayBackendsTest, BusFansFullOrderedStreamToEverySubscriber) {
  // N heterogeneous subscribers (journals + a recorder) each see the whole
  // stream in emission order; replaying the recorder's artifact into a
  // fresh journal reproduces the same lines — so any sink mix behind the
  // bus can be re-driven from the artifact with no fidelity loss.
  EventBus bus;
  JournalSink first, second, third;
  StudyHeader header;
  header.kind = 0;
  header.scale = 77;
  header.quick = true;
  header.param_a = 4;
  Recorder recorder(header);
  bus.subscribe(&first);
  bus.subscribe(&recorder);
  bus.subscribe(&second);
  bus.subscribe(&third);

  for (int w = 0; w < 4; ++w) emit_synthetic_week(bus, w);

  ASSERT_FALSE(first.lines.empty());
  EXPECT_EQ(first.lines.size(), 4u * 7u);
  EXPECT_EQ(second.lines, first.lines);
  EXPECT_EQ(third.lines, first.lines);

  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(recorder.to_archive()));
  JournalSink from_artifact;
  ASSERT_TRUE(replayer.replay(from_artifact));
  EXPECT_EQ(from_artifact.lines, first.lines);
}

scan::AmplifierObservation victim_observation() {
  scan::AmplifierObservation obs;
  obs.address = net::Ipv4Address(203, 0, 113, 50);
  obs.probe_time = 1'000'000;
  for (std::uint32_t i = 0; i < 8; ++i) {
    ntp::MonitorEntry entry;  // §4.2 victim: mode 7, count >= 3, <= 1h gaps
    entry.address = net::Ipv4Address(198, 51, 100, static_cast<std::uint8_t>(i));
    entry.local_address = obs.address;
    entry.count = 50 + i;
    entry.avg_interval = 60;
    entry.last_seen = 100;
    entry.port = static_cast<std::uint16_t>(4000 + i);
    entry.mode = 7;
    entry.version = 2;
    obs.table.push_back(entry);
  }
  ntp::MonitorEntry bystander;  // ordinary client: never drives an exchange
  bystander.address = net::Ipv4Address(198, 51, 100, 200);
  bystander.count = 1000;
  bystander.mode = 3;
  obs.table.push_back(bystander);
  return obs;
}

TEST(ReplayBackendsTest, PcapExportRoundTripsThroughReaderAndReassembly) {
  std::ostringstream bytes;
  PcapExportSinkConfig cfg;
  cfg.windows = {{0, 2'000'000}};
  PcapExportSink sink(bytes, cfg);

  const auto obs = victim_observation();
  sink.on_probe_observation(0, obs);
  ASSERT_TRUE(sink.ok());
  // 8 victims -> 8 exchanges; the 9-entry table chains into 2 response
  // datagrams (<=6 items each), so each exchange is 1 request + 2 responses.
  EXPECT_EQ(sink.exchanges_written(), 8u);
  EXPECT_EQ(sink.packets_written(), 8u * 3u);

  std::istringstream in(bytes.str());
  net::PcapReader reader(in);
  ASSERT_TRUE(reader.valid());
  std::size_t requests = 0;
  std::vector<ntp::Mode7Packet> responses;
  while (const auto packet = reader.next()) {
    const auto parsed = ntp::parse_mode7_packet(packet->payload);
    ASSERT_TRUE(parsed.has_value());
    if (!parsed->response) {
      // The spoofed trigger: victim -> amplifier:123, MON_GETLIST_1.
      EXPECT_EQ(parsed->request, ntp::RequestCode::kMonGetList1);
      EXPECT_EQ(packet->dst, obs.address);
      EXPECT_EQ(packet->dst_port, net::kNtpPort);
      ++requests;
      responses.clear();  // keep only the final exchange's chain
    } else {
      EXPECT_EQ(packet->src, obs.address);
      EXPECT_EQ(packet->src_port, net::kNtpPort);
      responses.push_back(*parsed);
    }
  }
  EXPECT_EQ(reader.packets_read(), sink.packets_written());
  EXPECT_EQ(requests, 8u);

  // The last exchange's chained response reassembles to the full table —
  // every entry, not just the victims, exactly as a real amplifier dumps it.
  const auto table = ntp::reassemble_monlist(responses);
  ASSERT_TRUE(table.has_value());
  ASSERT_EQ(table->size(), obs.table.size());
  for (std::size_t i = 0; i < table->size(); ++i) {
    EXPECT_EQ((*table)[i].address, obs.table[i].address) << i;
    EXPECT_EQ((*table)[i].count, obs.table[i].count) << i;
    EXPECT_EQ((*table)[i].port, obs.table[i].port) << i;
    EXPECT_EQ((*table)[i].mode, obs.table[i].mode) << i;
    EXPECT_EQ((*table)[i].avg_interval, obs.table[i].avg_interval) << i;
  }
}

TEST(ReplayBackendsTest, PcapExportHonorsExchangeCapAndCountsSkips) {
  std::ostringstream bytes;
  PcapExportSinkConfig cfg;
  cfg.windows = {{0, 2'000'000}};
  cfg.max_exchanges = 3;
  PcapExportSink sink(bytes, cfg);
  sink.on_probe_observation(0, victim_observation());
  EXPECT_EQ(sink.exchanges_written(), 3u);
  EXPECT_EQ(sink.exchanges_skipped(), 5u);
  EXPECT_EQ(sink.packets_written(), 3u * 3u);
  EXPECT_TRUE(sink.ok());
}

}  // namespace
}  // namespace gorilla::study
