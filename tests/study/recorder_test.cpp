// Recorder/Replayer contract: a recorded stream replays bit-for-bit in the
// recorded total order, re-recording a replay reproduces the identical
// artifact, and damaged artifacts are rejected instead of half-replayed.
#include "study/recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "scan/prober.h"
#include "study/events.h"
#include "telemetry/flow.h"
#include "telemetry/traffic.h"
#include "util/columnar.h"

namespace gorilla::study {
namespace {

StudyHeader test_header() {
  StudyHeader h;
  h.kind = 0;
  h.scale = 123;
  h.seed = 0xfeedfacecafeULL;
  h.quick = true;
  h.with_vantages = true;
  h.with_darknet = false;
  h.param_a = 15;
  return h;
}

// Drives every event type through a sink, interleaved so the RLE tag tape
// has to preserve cross-type ordering (not just per-type streams).
void emit_synthetic_stream(EventSink& sink) {
  sink.on_global_bytes(0, telemetry::ProtocolClass::kNtp, 1.5e9);
  sink.on_global_bytes(0, telemetry::ProtocolClass::kDns, 2.25e8);

  telemetry::FlowRecord flow;
  flow.src = net::Ipv4Address(192, 0, 2, 1);
  flow.dst = net::Ipv4Address(198, 51, 100, 200);
  flow.src_port = 123;
  flow.dst_port = 57915;
  flow.ttl = 49;
  flow.packets = 101;
  flow.bytes = 46862;
  flow.payload_bytes = 44040;
  flow.first = 86400;
  flow.last = 86525;
  sink.on_flow(flow, kAllVantages);
  sink.on_flow(flow, 2);

  telemetry::LabeledAttack label;
  label.start = 7 * 86400;
  label.vector = telemetry::AttackVector::kNtp;
  label.peak_bps = 3.2e10;
  sink.on_attack_label(label);

  sink.on_darknet_scan(net::Ipv4Address(203, 0, 113, 9), 12, 4096, false);

  sink.on_sample_begin(3, util::Date{2014, 1, 21});
  scan::AmplifierObservation obs;
  obs.server_index = 77;
  obs.address = net::Ipv4Address(203, 0, 113, 77);
  obs.response_packets = 101;
  obs.response_udp_bytes = 44040;
  obs.response_wire_bytes = 46862;
  obs.probe_time = 3 * 7 * 86400;
  obs.table_partial = true;
  obs.attempts = 2;
  for (std::uint32_t i = 0; i < 5; ++i) {
    ntp::MonitorEntry entry;
    entry.address = net::Ipv4Address((10u << 24) | i);
    entry.local_address = obs.address;
    entry.avg_interval = 64 + i;
    entry.last_seen = i;
    entry.restr = 0;
    entry.count = 1000 * (i + 1);
    entry.port = static_cast<std::uint16_t>(1024 + i);
    entry.mode = 3;
    entry.version = 4;
    obs.table.push_back(entry);
  }
  sink.on_probe_observation(3, obs);

  scan::MonlistSampleSummary summary;
  summary.week = 3;
  summary.date = util::Date{2014, 1, 21};
  summary.probes_sent = 5000;
  summary.responders = 1234;
  summary.error_replies = 17;
  summary.probes_lost = 3;
  summary.retries = 9;
  summary.truncated_tables = 1;
  summary.rate_limited = 2;
  sink.on_monlist_summary(summary);
  sink.on_sample_end(3);

  // Another global-bytes run AFTER the sample: the tape must come back to
  // an already-used tag.
  sink.on_global_bytes(1, telemetry::ProtocolClass::kNtp, 9.0e9);
}

// A sink that journals each call as one line; the journal must equal the
// journal of the original emission.
struct JournalSink final : EventSink {
  std::vector<std::string> lines;
  [[nodiscard]] bool wants_flows() const override { return true; }
  [[nodiscard]] bool wants_labels() const override { return true; }
  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override {
    lines.push_back("global " + std::to_string(day) + " " +
                    std::to_string(static_cast<int>(p)) + " " +
                    std::to_string(bytes));
  }
  void on_attack_label(const telemetry::LabeledAttack& label) override {
    lines.push_back("label " + std::to_string(label.start) + " " +
                    std::to_string(label.peak_bps));
  }
  void on_flow(const telemetry::FlowRecord& flow, int vantage) override {
    lines.push_back("flow " + std::to_string(vantage) + " " +
                    std::to_string(flow.src.value()) + " " +
                    std::to_string(flow.bytes) + " " +
                    std::to_string(flow.ttl));
  }
  void on_darknet_scan(net::Ipv4Address scanner, int day,
                       std::uint64_t packets, bool benign) override {
    lines.push_back("dark " + std::to_string(scanner.value()) + " " +
                    std::to_string(day) + " " + std::to_string(packets) +
                    " " + std::to_string(benign ? 1 : 0));
  }
  void on_sample_begin(int week, const util::Date& date) override {
    lines.push_back("begin " + std::to_string(week) + " " +
                    std::to_string(date.year) + "-" +
                    std::to_string(date.month) + "-" +
                    std::to_string(date.day));
  }
  void on_probe_observation(int week,
                            const scan::AmplifierObservation& obs) override {
    std::string line = "obs " + std::to_string(week) + " " +
                       std::to_string(obs.server_index) + " " +
                       std::to_string(obs.table.size());
    for (const auto& e : obs.table) {
      line += ' ';
      line += std::to_string(e.address.value());
      line += ':';
      line += std::to_string(e.count);
      line += ':';
      line += std::to_string(e.port);
    }
    lines.push_back(line);
  }
  void on_monlist_summary(
      const scan::MonlistSampleSummary& summary) override {
    lines.push_back("sum " + std::to_string(summary.week) + " " +
                    std::to_string(summary.responders) + " " +
                    std::to_string(summary.rate_limited));
  }
  void on_sample_end(int week) override {
    lines.push_back("end " + std::to_string(week));
  }
};

TEST(RecorderTest, ConsumesEverything) {
  Recorder recorder(test_header());
  EXPECT_TRUE(recorder.wants_flows());
  EXPECT_TRUE(recorder.wants_labels());
}

TEST(RecorderTest, ReplayedStreamReRecordsToIdenticalArchive) {
  Recorder first(test_header());
  emit_synthetic_stream(first);
  const util::ColumnArchive original = first.to_archive();

  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(original));
  EXPECT_EQ(replayer.header(), test_header());

  // Replay into a second recorder: the event stream it sees must serialize
  // to the byte-identical artifact — order, payloads, run-lengths, all of it.
  Recorder second(test_header());
  ASSERT_TRUE(replayer.replay(second));
  const util::ColumnArchive rerecorded = second.to_archive();

  EXPECT_EQ(rerecorded.header, original.header);
  ASSERT_EQ(rerecorded.sections.size(), original.sections.size());
  for (std::size_t i = 0; i < original.sections.size(); ++i) {
    EXPECT_EQ(rerecorded.sections[i].name, original.sections[i].name);
    EXPECT_EQ(rerecorded.sections[i].bytes, original.sections[i].bytes)
        << "section " << original.sections[i].name;
  }
}

TEST(RecorderTest, ReplayPreservesPayloadsAndTotalOrder) {
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(recorder.to_archive()));

  JournalSink direct;
  emit_synthetic_stream(direct);
  JournalSink replayed;
  ASSERT_TRUE(replayer.replay(replayed));
  EXPECT_EQ(replayed.lines, direct.lines);
}

TEST(RecorderTest, SaveLoadFileRoundTrip) {
  const std::string path = testing::TempDir() + "recorder_roundtrip.study";
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  ASSERT_TRUE(recorder.save(path));

  Replayer replayer;
  ASSERT_TRUE(replayer.load(path));
  EXPECT_EQ(replayer.header(), test_header());
  EventSink null_sink;
  EXPECT_TRUE(replayer.replay(null_sink));
}

TEST(RecorderTest, HeaderDistinguishesStudyShapes) {
  StudyHeader a = test_header();
  StudyHeader b = test_header();
  EXPECT_EQ(a, b);
  b.seed = a.seed + 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.kind = 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.param_a = 8;
  EXPECT_FALSE(a == b);
}

TEST(ReplayerTest, MissingSectionRejectedAtLoad) {
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  util::ColumnArchive archive = recorder.to_archive();
  archive.sections.erase(archive.sections.begin());  // drop the tape
  Replayer replayer;
  EXPECT_FALSE(replayer.load_archive(std::move(archive)));
}

TEST(ReplayerTest, TruncatedPayloadColumnFailsReplay) {
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  util::ColumnArchive archive = recorder.to_archive();
  for (auto& section : archive.sections) {
    if (section.name == "global") section.bytes.pop_back();
  }
  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(std::move(archive)));
  EventSink null_sink;
  EXPECT_FALSE(replayer.replay(null_sink));
}

TEST(ReplayerTest, UnknownTagFailsReplay) {
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  util::ColumnArchive archive = recorder.to_archive();
  for (auto& section : archive.sections) {
    if (section.name == "tape") section.bytes[0] = 0x7f;  // future tag
  }
  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(std::move(archive)));
  EventSink null_sink;
  EXPECT_FALSE(replayer.replay(null_sink));
}

TEST(ReplayerTest, TruncatedFileRejected) {
  const std::string path = testing::TempDir() + "recorder_truncated.study";
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  ASSERT_TRUE(recorder.save(path));

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() / 2);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  Replayer replayer;
  EXPECT_FALSE(replayer.load(path));
}

// ---- GORCOLv3: version matrix, parallel decode, block diagnostics ----

TEST(RecorderTest, V2AndV3ArtifactsReplayIdentically) {
  // The same stream recorded under each container version must replay to
  // the same journal; each file must carry its version's magic.
  JournalSink direct;
  emit_synthetic_stream(direct);
  for (const int version : {2, 3}) {
    Recorder recorder(test_header(), version);
    emit_synthetic_stream(recorder);
    const std::string path = testing::TempDir() + "recorder_cross_v" +
                             std::to_string(version) + ".study";
    ASSERT_TRUE(recorder.save(path));

    std::ifstream in(path, std::ios::binary);
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    EXPECT_EQ(std::string(magic, 8),
              "GORCOLv" + std::to_string(version));
    in.close();

    Replayer replayer;
    ASSERT_TRUE(replayer.load(path));
    EXPECT_EQ(replayer.artifact_version(), version);
    JournalSink replayed;
    ASSERT_TRUE(replayer.replay(replayed));
    EXPECT_EQ(replayed.lines, direct.lines) << "version " << version;
  }
}

TEST(RecorderTest, ParallelDecodeIsByteIdenticalToStreaming) {
  // Big enough that the monitor-table columns block-compress, so --jobs
  // actually exercises the parallel inflate path.
  const std::string path = testing::TempDir() + "recorder_parallel.study";
  Recorder recorder(test_header());
  for (int i = 0; i < 300; ++i) emit_synthetic_stream(recorder);
  ASSERT_TRUE(recorder.save(path));

  const auto archive = util::ColumnArchive::load_file(path);
  ASSERT_TRUE(archive.has_value());
  bool any_compressed = false;
  for (const auto& section : archive->sections) {
    any_compressed |=
        section.storage == util::ColumnArchive::SectionStorage::kBlocks;
  }
  EXPECT_TRUE(any_compressed);

  JournalSink direct;
  for (int i = 0; i < 300; ++i) emit_synthetic_stream(direct);

  for (const int jobs : {1, 3}) {
    Replayer replayer;
    replayer.set_decode_jobs(jobs);
    ASSERT_TRUE(replayer.load(path));
    EXPECT_EQ(replayer.artifact_version(), 3);
    JournalSink replayed;
    ASSERT_TRUE(replayer.replay(replayed));
    EXPECT_EQ(replayed.lines, direct.lines) << "jobs " << jobs;
  }
}

TEST(ReplayerTest, DescribeLoadFailurePinpointsTheDamagedBlock) {
  const std::string path = testing::TempDir() + "recorder_bad_block.study";
  Recorder recorder(test_header());
  for (int i = 0; i < 300; ++i) emit_synthetic_stream(recorder);
  ASSERT_TRUE(recorder.save(path));

  // Find a block-compressed section and flip a byte inside its first
  // block's body.
  const auto archive = util::ColumnArchive::load_file(path);
  ASSERT_TRUE(archive.has_value());
  const util::ColumnArchive::Section* victim = nullptr;
  for (const auto& section : archive->sections) {
    if (section.storage == util::ColumnArchive::SectionStorage::kBlocks &&
        section.bytes.size() > util::kBlockHeaderSize + 8) {
      victim = &section;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::size_t payload_off = bytes.find(
      std::string(victim->bytes.begin(), victim->bytes.end()));
  ASSERT_NE(payload_off, std::string::npos);
  bytes[payload_off + util::kBlockHeaderSize + 3] ^= 0x01;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  Replayer replayer;
  EXPECT_FALSE(replayer.load(path));
  const std::string diagnosis = Replayer::describe_load_failure(path);
  EXPECT_NE(diagnosis.find("'" + victim->name + "'"), std::string::npos)
      << diagnosis;
  EXPECT_NE(diagnosis.find("compressed block 0"), std::string::npos)
      << diagnosis;
  EXPECT_NE(diagnosis.find("failed its checksum"), std::string::npos)
      << diagnosis;
  EXPECT_NE(diagnosis.find(std::to_string(payload_off)), std::string::npos)
      << diagnosis;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gorilla::study
