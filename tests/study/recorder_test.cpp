// Recorder/Replayer contract: a recorded stream replays bit-for-bit in the
// recorded total order, re-recording a replay reproduces the identical
// artifact, and damaged artifacts are rejected instead of half-replayed.
#include "study/recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "scan/prober.h"
#include "study/events.h"
#include "telemetry/flow.h"
#include "telemetry/traffic.h"
#include "util/columnar.h"

namespace gorilla::study {
namespace {

StudyHeader test_header() {
  StudyHeader h;
  h.kind = 0;
  h.scale = 123;
  h.seed = 0xfeedfacecafeULL;
  h.quick = true;
  h.with_vantages = true;
  h.with_darknet = false;
  h.param_a = 15;
  return h;
}

// Drives every event type through a sink, interleaved so the RLE tag tape
// has to preserve cross-type ordering (not just per-type streams).
void emit_synthetic_stream(EventSink& sink) {
  sink.on_global_bytes(0, telemetry::ProtocolClass::kNtp, 1.5e9);
  sink.on_global_bytes(0, telemetry::ProtocolClass::kDns, 2.25e8);

  telemetry::FlowRecord flow;
  flow.src = net::Ipv4Address(192, 0, 2, 1);
  flow.dst = net::Ipv4Address(198, 51, 100, 200);
  flow.src_port = 123;
  flow.dst_port = 57915;
  flow.ttl = 49;
  flow.packets = 101;
  flow.bytes = 46862;
  flow.payload_bytes = 44040;
  flow.first = 86400;
  flow.last = 86525;
  sink.on_flow(flow, kAllVantages);
  sink.on_flow(flow, 2);

  telemetry::LabeledAttack label;
  label.start = 7 * 86400;
  label.vector = telemetry::AttackVector::kNtp;
  label.peak_bps = 3.2e10;
  sink.on_attack_label(label);

  sink.on_darknet_scan(net::Ipv4Address(203, 0, 113, 9), 12, 4096, false);

  sink.on_sample_begin(3, util::Date{2014, 1, 21});
  scan::AmplifierObservation obs;
  obs.server_index = 77;
  obs.address = net::Ipv4Address(203, 0, 113, 77);
  obs.response_packets = 101;
  obs.response_udp_bytes = 44040;
  obs.response_wire_bytes = 46862;
  obs.probe_time = 3 * 7 * 86400;
  obs.table_partial = true;
  obs.attempts = 2;
  for (std::uint32_t i = 0; i < 5; ++i) {
    ntp::MonitorEntry entry;
    entry.address = net::Ipv4Address((10u << 24) | i);
    entry.local_address = obs.address;
    entry.avg_interval = 64 + i;
    entry.last_seen = i;
    entry.restr = 0;
    entry.count = 1000 * (i + 1);
    entry.port = static_cast<std::uint16_t>(1024 + i);
    entry.mode = 3;
    entry.version = 4;
    obs.table.push_back(entry);
  }
  sink.on_probe_observation(3, obs);

  scan::MonlistSampleSummary summary;
  summary.week = 3;
  summary.date = util::Date{2014, 1, 21};
  summary.probes_sent = 5000;
  summary.responders = 1234;
  summary.error_replies = 17;
  summary.probes_lost = 3;
  summary.retries = 9;
  summary.truncated_tables = 1;
  summary.rate_limited = 2;
  sink.on_monlist_summary(summary);
  sink.on_sample_end(3);

  // Another global-bytes run AFTER the sample: the tape must come back to
  // an already-used tag.
  sink.on_global_bytes(1, telemetry::ProtocolClass::kNtp, 9.0e9);
}

TEST(RecorderTest, ConsumesEverything) {
  Recorder recorder(test_header());
  EXPECT_TRUE(recorder.wants_flows());
  EXPECT_TRUE(recorder.wants_labels());
}

TEST(RecorderTest, ReplayedStreamReRecordsToIdenticalArchive) {
  Recorder first(test_header());
  emit_synthetic_stream(first);
  const util::ColumnArchive original = first.to_archive();

  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(original));
  EXPECT_EQ(replayer.header(), test_header());

  // Replay into a second recorder: the event stream it sees must serialize
  // to the byte-identical artifact — order, payloads, run-lengths, all of it.
  Recorder second(test_header());
  ASSERT_TRUE(replayer.replay(second));
  const util::ColumnArchive rerecorded = second.to_archive();

  EXPECT_EQ(rerecorded.header, original.header);
  ASSERT_EQ(rerecorded.sections.size(), original.sections.size());
  for (std::size_t i = 0; i < original.sections.size(); ++i) {
    EXPECT_EQ(rerecorded.sections[i].first, original.sections[i].first);
    EXPECT_EQ(rerecorded.sections[i].second, original.sections[i].second)
        << "section " << original.sections[i].first;
  }
}

TEST(RecorderTest, ReplayPreservesPayloadsAndTotalOrder) {
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(recorder.to_archive()));

  // A sink that journals each call as one line; the journal must equal the
  // journal of the original emission.
  struct JournalSink final : EventSink {
    std::vector<std::string> lines;
    [[nodiscard]] bool wants_flows() const override { return true; }
    [[nodiscard]] bool wants_labels() const override { return true; }
    void on_global_bytes(int day, telemetry::ProtocolClass p,
                         double bytes) override {
      lines.push_back("global " + std::to_string(day) + " " +
                      std::to_string(static_cast<int>(p)) + " " +
                      std::to_string(bytes));
    }
    void on_attack_label(const telemetry::LabeledAttack& label) override {
      lines.push_back("label " + std::to_string(label.start) + " " +
                      std::to_string(label.peak_bps));
    }
    void on_flow(const telemetry::FlowRecord& flow, int vantage) override {
      lines.push_back("flow " + std::to_string(vantage) + " " +
                      std::to_string(flow.src.value()) + " " +
                      std::to_string(flow.bytes) + " " +
                      std::to_string(flow.ttl));
    }
    void on_darknet_scan(net::Ipv4Address scanner, int day,
                         std::uint64_t packets, bool benign) override {
      lines.push_back("dark " + std::to_string(scanner.value()) + " " +
                      std::to_string(day) + " " + std::to_string(packets) +
                      " " + std::to_string(benign ? 1 : 0));
    }
    void on_sample_begin(int week, const util::Date& date) override {
      lines.push_back("begin " + std::to_string(week) + " " +
                      std::to_string(date.year) + "-" +
                      std::to_string(date.month) + "-" +
                      std::to_string(date.day));
    }
    void on_probe_observation(int week,
                              const scan::AmplifierObservation& obs) override {
      std::string line = "obs " + std::to_string(week) + " " +
                         std::to_string(obs.server_index) + " " +
                         std::to_string(obs.table.size());
      for (const auto& e : obs.table) {
        line += ' ';
        line += std::to_string(e.address.value());
        line += ':';
        line += std::to_string(e.count);
        line += ':';
        line += std::to_string(e.port);
      }
      lines.push_back(line);
    }
    void on_monlist_summary(
        const scan::MonlistSampleSummary& summary) override {
      lines.push_back("sum " + std::to_string(summary.week) + " " +
                      std::to_string(summary.responders) + " " +
                      std::to_string(summary.rate_limited));
    }
    void on_sample_end(int week) override {
      lines.push_back("end " + std::to_string(week));
    }
  };

  JournalSink direct;
  emit_synthetic_stream(direct);
  JournalSink replayed;
  ASSERT_TRUE(replayer.replay(replayed));
  EXPECT_EQ(replayed.lines, direct.lines);
}

TEST(RecorderTest, SaveLoadFileRoundTrip) {
  const std::string path = testing::TempDir() + "recorder_roundtrip.study";
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  ASSERT_TRUE(recorder.save(path));

  Replayer replayer;
  ASSERT_TRUE(replayer.load(path));
  EXPECT_EQ(replayer.header(), test_header());
  EventSink null_sink;
  EXPECT_TRUE(replayer.replay(null_sink));
}

TEST(RecorderTest, HeaderDistinguishesStudyShapes) {
  StudyHeader a = test_header();
  StudyHeader b = test_header();
  EXPECT_EQ(a, b);
  b.seed = a.seed + 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.kind = 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.param_a = 8;
  EXPECT_FALSE(a == b);
}

TEST(ReplayerTest, MissingSectionRejectedAtLoad) {
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  util::ColumnArchive archive = recorder.to_archive();
  archive.sections.erase(archive.sections.begin());  // drop the tape
  Replayer replayer;
  EXPECT_FALSE(replayer.load_archive(std::move(archive)));
}

TEST(ReplayerTest, TruncatedPayloadColumnFailsReplay) {
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  util::ColumnArchive archive = recorder.to_archive();
  for (auto& [name, bytes] : archive.sections) {
    if (name == "global") bytes.pop_back();
  }
  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(std::move(archive)));
  EventSink null_sink;
  EXPECT_FALSE(replayer.replay(null_sink));
}

TEST(ReplayerTest, UnknownTagFailsReplay) {
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  util::ColumnArchive archive = recorder.to_archive();
  for (auto& [name, bytes] : archive.sections) {
    if (name == "tape") bytes[0] = 0x7f;  // tag from a future format
  }
  Replayer replayer;
  ASSERT_TRUE(replayer.load_archive(std::move(archive)));
  EventSink null_sink;
  EXPECT_FALSE(replayer.replay(null_sink));
}

TEST(ReplayerTest, TruncatedFileRejected) {
  const std::string path = testing::TempDir() + "recorder_truncated.study";
  Recorder recorder(test_header());
  emit_synthetic_stream(recorder);
  ASSERT_TRUE(recorder.save(path));

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() / 2);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  Replayer replayer;
  EXPECT_FALSE(replayer.load(path));
}

}  // namespace
}  // namespace gorilla::study
