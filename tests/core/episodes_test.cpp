#include "core/episodes.h"

#include <gtest/gtest.h>

namespace gorilla::core {
namespace {

WitnessedAttack witness(std::uint32_t victim, std::uint32_t amplifier,
                        util::SimTime start, util::SimTime end,
                        std::uint64_t packets = 100) {
  WitnessedAttack w;
  w.victim = net::Ipv4Address{victim};
  w.amplifier = net::Ipv4Address{amplifier};
  w.start_time = start;
  w.end_time = end;
  w.packets = packets;
  return w;
}

TEST(EpisodesTest, EmptyInput) {
  EXPECT_TRUE(merge_episodes({}).empty());
  const auto stats = summarize_episodes({});
  EXPECT_EQ(stats.episodes, 0u);
}

TEST(EpisodesTest, SingleWitness) {
  const auto episodes = merge_episodes({witness(1, 10, 100, 200)});
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].victim, net::Ipv4Address{1u});
  EXPECT_EQ(episodes[0].start, 100);
  EXPECT_EQ(episodes[0].end, 200);
  EXPECT_EQ(episodes[0].amplifiers, 1u);
  EXPECT_EQ(episodes[0].packets, 100u);
}

TEST(EpisodesTest, OverlappingWitnessesMerge) {
  // Coordinated reflection: three amplifiers, staggered intervals.
  const auto episodes = merge_episodes({
      witness(1, 10, 100, 200),
      witness(1, 11, 150, 260),
      witness(1, 12, 190, 240),
  });
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].start, 100);
  EXPECT_EQ(episodes[0].end, 260);
  EXPECT_EQ(episodes[0].amplifiers, 3u);
  EXPECT_EQ(episodes[0].packets, 300u);
}

TEST(EpisodesTest, SameAmplifierCountedOnce) {
  const auto episodes = merge_episodes({
      witness(1, 10, 100, 200),
      witness(1, 10, 150, 260),
  });
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].amplifiers, 1u);
  EXPECT_EQ(episodes[0].packets, 200u);
}

TEST(EpisodesTest, GapWithinJoinGapMerges) {
  const auto episodes = merge_episodes(
      {witness(1, 10, 100, 200), witness(1, 11, 200 + 3599, 5000)});
  ASSERT_EQ(episodes.size(), 1u);
}

TEST(EpisodesTest, GapBeyondJoinGapSplits) {
  const auto episodes = merge_episodes(
      {witness(1, 10, 100, 200), witness(1, 11, 200 + 3601, 5000)});
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].end, 200);
  EXPECT_EQ(episodes[1].start, 3801);
}

TEST(EpisodesTest, DistinctVictimsNeverMerge) {
  const auto episodes = merge_episodes(
      {witness(1, 10, 100, 200), witness(2, 10, 150, 250)});
  ASSERT_EQ(episodes.size(), 2u);
}

TEST(EpisodesTest, InputOrderIrrelevant) {
  const std::vector<WitnessedAttack> forward = {
      witness(1, 10, 100, 200), witness(1, 11, 150, 260),
      witness(2, 12, 50, 80)};
  std::vector<WitnessedAttack> reversed(forward.rbegin(), forward.rend());
  const auto a = merge_episodes(forward);
  const auto b = merge_episodes(reversed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].packets, b[i].packets);
  }
}

TEST(EpisodesTest, ChainedOverlapsFormOneEpisode) {
  // a-b overlap, b-c overlap, a-c don't: still one episode (transitivity).
  const auto episodes = merge_episodes({
      witness(1, 10, 0, 100),
      witness(1, 11, 90, 200),
      witness(1, 12, 190, 300),
  });
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].end, 300);
}

TEST(EpisodesTest, ZeroJoinGapRequiresTrueOverlap) {
  const auto episodes = merge_episodes(
      {witness(1, 10, 100, 200), witness(1, 11, 201, 300)}, 0);
  EXPECT_EQ(episodes.size(), 2u);
  const auto touching = merge_episodes(
      {witness(1, 10, 100, 200), witness(1, 11, 200, 300)}, 0);
  EXPECT_EQ(touching.size(), 1u);
}

TEST(EpisodesTest, SummaryStatistics) {
  const auto episodes = merge_episodes({
      witness(1, 10, 0, 100),        // 100 s, 1 amp
      witness(2, 10, 0, 300),        // 300 s episode below
      witness(2, 11, 100, 300),
      witness(3, 12, 0, 1000),       // 1000 s, 1 amp
  });
  const auto stats = summarize_episodes(episodes);
  EXPECT_EQ(stats.episodes, 3u);
  EXPECT_NEAR(stats.median_duration_s, 300.0, 1e-9);
  EXPECT_NEAR(stats.median_amplifiers, 1.0, 1e-9);
  EXPECT_NEAR(stats.max_amplifiers, 2.0, 1e-9);
}

}  // namespace
}  // namespace gorilla::core
