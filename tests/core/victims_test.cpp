#include "core/victims.h"

#include <gtest/gtest.h>

namespace gorilla::core {
namespace {

net::RegistryConfig small_registry() {
  net::RegistryConfig cfg;
  cfg.num_ases = 300;
  return cfg;
}

class VictimAnalysisTest : public ::testing::Test {
 protected:
  VictimAnalysisTest()
      : registry_(small_registry()),
        pbl_(registry_, net::PblConfig{}),
        analysis_(registry_, pbl_) {}

  ntp::MonitorEntry victim_entry(net::Ipv4Address victim, std::uint16_t port,
                                 std::uint32_t count,
                                 std::uint32_t avg_interval = 1,
                                 std::uint32_t last_seen = 10) {
    ntp::MonitorEntry e;
    e.address = victim;
    e.port = port;
    e.mode = 7;
    e.count = count;
    e.avg_interval = avg_interval;
    e.last_seen = last_seen;
    return e;
  }

  ntp::MonitorEntry scanner_entry(net::Ipv4Address who) {
    ntp::MonitorEntry e;
    e.address = who;
    e.port = 50000;
    e.mode = 7;
    e.count = 1;
    e.avg_interval = 0;
    e.last_seen = 0;
    return e;
  }

  scan::AmplifierObservation obs_with(net::Ipv4Address amp,
                                      std::vector<ntp::MonitorEntry> table,
                                      util::SimTime probe_time = 100000) {
    scan::AmplifierObservation o;
    o.address = amp;
    o.response_packets = 1;
    o.response_udp_bytes = 400;
    o.response_wire_bytes = 500;
    o.table = std::move(table);
    o.probe_time = probe_time;
    return o;
  }

  net::Ipv4Address block_addr(std::size_t block, std::uint64_t i) {
    const auto& p = registry_.blocks()[block].prefix;
    return p.at(i % p.size());
  }

  net::Registry registry_;
  net::PolicyBlockList pbl_;
  VictimAnalysis analysis_;
};

TEST_F(VictimAnalysisTest, LifecycleEnforced) {
  EXPECT_THROW(analysis_.end_sample(), std::logic_error);
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  EXPECT_THROW(analysis_.begin_sample(1, util::Date{2014, 1, 17}),
               std::logic_error);
}

TEST_F(VictimAnalysisTest, CountsVictimsNotScanners) {
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(block_addr(1, 5), 80, 1000),
                          scanner_entry(block_addr(2, 9))}));
  analysis_.end_sample();
  const auto& row = analysis_.rows().at(0);
  EXPECT_EQ(row.ips, 1u);
  EXPECT_EQ(analysis_.unique_victims(), 1u);
  EXPECT_EQ(analysis_.total_packets(), 1000u);
}

TEST_F(VictimAnalysisTest, VictimSeenByMultipleAmplifiers) {
  const auto victim = block_addr(1, 5);
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.add(obs_with(block_addr(0, 1), {victim_entry(victim, 80, 100)}));
  analysis_.add(obs_with(block_addr(0, 2), {victim_entry(victim, 80, 200)}));
  analysis_.add(obs_with(block_addr(0, 3), {victim_entry(victim, 80, 300)}));
  analysis_.end_sample();
  const auto& row = analysis_.rows().at(0);
  EXPECT_EQ(row.ips, 1u);
  EXPECT_NEAR(row.amplifiers_per_victim, 3.0, 1e-12);
  EXPECT_NEAR(row.packets_mean, 600.0, 1e-12);  // 100+200+300 to one victim
  EXPECT_EQ(analysis_.total_packets(), 600u);
}

TEST_F(VictimAnalysisTest, PortTallyCountsPairs) {
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(block_addr(1, 5), 80, 10),
                          victim_entry(block_addr(1, 6), 80, 10),
                          victim_entry(block_addr(1, 7), 123, 10),
                          victim_entry(block_addr(1, 8), 3074, 10)}));
  analysis_.end_sample();
  const auto ports = analysis_.top_ports(3);
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_EQ(ports[0].first, 80);
  EXPECT_NEAR(ports[0].second, 0.5, 1e-12);
  EXPECT_NEAR(ports[1].second, 0.25, 1e-12);
}

TEST_F(VictimAnalysisTest, PerAsConcentration) {
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  // Two victims in (likely) different ASes, one amplifier AS.
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(block_addr(1, 5), 80, 900),
                          victim_entry(block_addr(2, 5), 80, 100)}));
  analysis_.end_sample();
  const auto vpackets = analysis_.victim_as_packets();
  double total = 0;
  for (const double p : vpackets) total += p;
  EXPECT_NEAR(total, 1000.0, 1e-12);
  EXPECT_GE(analysis_.victim_as_count(), 1u);
  EXPECT_EQ(analysis_.amplifier_as_count(), 1u);
  const auto apackets = analysis_.amplifier_as_packets();
  ASSERT_EQ(apackets.size(), 1u);
  EXPECT_NEAR(apackets[0], 1000.0, 1e-12);
}

TEST_F(VictimAnalysisTest, TopVictimAses) {
  // Pick two blocks with distinct origin ASes so the ranking separates.
  std::size_t block_a = 0;
  std::size_t block_b = 0;
  for (std::size_t i = 1; i < registry_.blocks().size(); ++i) {
    if (registry_.blocks()[i].asn != registry_.blocks()[block_a].asn) {
      block_b = i;
      break;
    }
  }
  ASSERT_NE(block_a, block_b);
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(block_addr(block_a, 5), 80, 900),
                          victim_entry(block_addr(block_b, 5), 80, 100)}));
  analysis_.end_sample();
  const auto top = analysis_.top_victim_ases(10);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].second, 900u);
  EXPECT_EQ(top[1].second, 100u);
}

TEST_F(VictimAnalysisTest, AttackStartBinning) {
  // Probe at t=100000; victim last seen 10s ago, 100 pkts at 1s spacing:
  // start ~ 99890 -> hour 27.
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(block_addr(1, 5), 80, 100, 1, 10)}));
  analysis_.end_sample();
  const auto& hours = analysis_.attacks_per_hour();
  ASSERT_EQ(hours.size(), 1u);
  EXPECT_EQ(hours.begin()->first, 99890 / 3600);
  EXPECT_EQ(hours.begin()->second, 1u);
}

TEST_F(VictimAnalysisTest, MedianStartAcrossAmplifiers) {
  const auto victim = block_addr(1, 5);
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  // Three witnesses with different derived starts; the median one is kept.
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(victim, 80, 10, 1, 0)}));
  analysis_.add(obs_with(block_addr(0, 2),
                         {victim_entry(victim, 80, 10, 1, 5000)}));
  analysis_.add(obs_with(block_addr(0, 3),
                         {victim_entry(victim, 80, 10, 1, 80000)}));
  analysis_.end_sample();
  const auto& hours = analysis_.attacks_per_hour();
  ASSERT_EQ(hours.size(), 1u);
  // Median start: probe 100000 - 5000 - 10 = 94990 -> hour 26.
  EXPECT_EQ(hours.begin()->first, 94990 / 3600);
}

TEST_F(VictimAnalysisTest, WindowMedianTracksLargestLastSeen) {
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(block_addr(1, 5), 80, 10, 1, 1000),
                          scanner_entry(block_addr(2, 9))}));
  analysis_.add(obs_with(block_addr(0, 2),
                         {victim_entry(block_addr(1, 6), 80, 10, 1, 3000)}));
  analysis_.end_sample();
  EXPECT_NEAR(analysis_.rows().at(0).median_window_seconds, 2000.0, 1e-12);
}

TEST_F(VictimAnalysisTest, ModeSixShares) {
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  auto v6 = victim_entry(block_addr(1, 5), 80, 100);
  v6.mode = 6;
  auto s6 = scanner_entry(block_addr(2, 9));
  s6.mode = 6;
  analysis_.add(obs_with(block_addr(0, 1),
                         {v6, victim_entry(block_addr(1, 6), 80, 100),
                          s6, scanner_entry(block_addr(2, 10))}));
  analysis_.end_sample();
  const auto& row = analysis_.rows().at(0);
  EXPECT_NEAR(row.victim_mode6_share, 0.5, 1e-12);
  EXPECT_NEAR(row.scanner_mode6_share, 0.5, 1e-12);
}

TEST_F(VictimAnalysisTest, DurationsPerSample) {
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(block_addr(1, 5), 80, 40, 1, 0)}));
  analysis_.end_sample();
  const auto& durations = analysis_.duration_median_p95_by_sample();
  ASSERT_EQ(durations.size(), 1u);
  EXPECT_NEAR(durations[0].first, 40.0, 1e-12);  // count x interval
}

TEST_F(VictimAnalysisTest, UniqueVictimsAcrossSamples) {
  const auto v1 = block_addr(1, 5);
  const auto v2 = block_addr(1, 6);
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.add(obs_with(block_addr(0, 1), {victim_entry(v1, 80, 10)}));
  analysis_.end_sample();
  analysis_.begin_sample(1, util::Date{2014, 1, 17});
  analysis_.add(obs_with(block_addr(0, 1),
                         {victim_entry(v1, 80, 10), victim_entry(v2, 80, 10)}));
  analysis_.end_sample();
  EXPECT_EQ(analysis_.unique_victims(), 2u);
  EXPECT_EQ(analysis_.rows().at(0).ips, 1u);
  EXPECT_EQ(analysis_.rows().at(1).ips, 2u);
}

TEST_F(VictimAnalysisTest, EmptySampleProducesZeroRow) {
  analysis_.begin_sample(0, util::Date{2014, 1, 10});
  analysis_.end_sample();
  const auto& row = analysis_.rows().at(0);
  EXPECT_EQ(row.ips, 0u);
  EXPECT_EQ(row.packets_mean, 0.0);
  EXPECT_EQ(row.amplifiers_per_victim, 0.0);
}

}  // namespace
}  // namespace gorilla::core
