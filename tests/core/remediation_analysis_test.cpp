#include "core/remediation_analysis.h"

#include <gtest/gtest.h>

namespace gorilla::core {
namespace {

net::RegistryConfig small_registry() {
  net::RegistryConfig cfg;
  cfg.num_ases = 300;
  return cfg;
}

class RemediationAnalysisTest : public ::testing::Test {
 protected:
  RemediationAnalysisTest()
      : registry_(small_registry()),
        pbl_(registry_, net::PblConfig{}),
        census_(registry_, pbl_),
        victims_(registry_, pbl_) {}

  scan::AmplifierObservation obs(net::Ipv4Address addr,
                                 std::vector<ntp::MonitorEntry> table = {}) {
    scan::AmplifierObservation o;
    o.address = addr;
    o.response_packets = 1;
    o.response_wire_bytes = 500;
    o.response_udp_bytes = 400;
    o.table = std::move(table);
    o.probe_time = 100000;
    return o;
  }

  ntp::MonitorEntry victim_entry(net::Ipv4Address victim,
                                 std::uint32_t count) {
    ntp::MonitorEntry e;
    e.address = victim;
    e.port = 80;
    e.mode = 7;
    e.count = count;
    e.avg_interval = 1;
    e.last_seen = 10;
    return e;
  }

  net::Ipv4Address block_addr(std::size_t block, std::uint64_t i) {
    const auto& p = registry_.blocks()[block].prefix;
    return p.at(i % p.size());
  }

  net::Registry registry_;
  net::PolicyBlockList pbl_;
  AmplifierCensus census_;
  VictimAnalysis victims_;
};

TEST_F(RemediationAnalysisTest, LevelReductionComputesPercentages) {
  // First sample: 4 IPs in 2 blocks; last sample: 1 IP in 1 block.
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(block_addr(0, 1)));
  census_.add(obs(block_addr(0, 2)));
  census_.add(obs(block_addr(1, 1)));
  census_.add(obs(block_addr(1, 2)));
  census_.end_sample();
  census_.begin_sample(1, util::Date{2014, 4, 18});
  census_.add(obs(block_addr(0, 1)));
  census_.end_sample();
  const auto r = level_reduction(census_);
  EXPECT_NEAR(r.ips_pct, 75.0, 1e-12);
  EXPECT_NEAR(r.blocks_pct, 50.0, 1e-12);
}

TEST_F(RemediationAnalysisTest, LevelReductionNeedsTwoSamples) {
  const auto r = level_reduction(census_);
  EXPECT_EQ(r.ips_pct, 0.0);
}

TEST_F(RemediationAnalysisTest, ContinentReductionSorted) {
  census_.begin_sample(0, util::Date{2014, 1, 10});
  for (std::size_t b = 0; b < 40; ++b) census_.add(obs(block_addr(b, 1)));
  census_.end_sample();
  census_.begin_sample(1, util::Date{2014, 4, 18});
  for (std::size_t b = 0; b < 10; ++b) census_.add(obs(block_addr(b, 1)));
  census_.end_sample();
  const auto rows = continent_reduction(census_);
  EXPECT_EQ(rows.size(), static_cast<std::size_t>(net::kContinentCount));
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].remediated_pct, rows[i].remediated_pct);
  }
}

TEST_F(RemediationAnalysisTest, PoolSeriesNormalizesToPeak) {
  const auto s = make_pool_series("test", {100, 400, 200, 100});
  EXPECT_EQ(s.peak, 400u);
  ASSERT_EQ(s.relative_to_peak.size(), 4u);
  EXPECT_NEAR(s.relative_to_peak[0], 0.25, 1e-12);
  EXPECT_NEAR(s.relative_to_peak[1], 1.0, 1e-12);
  EXPECT_NEAR(s.relative_to_peak[3], 0.25, 1e-12);
}

TEST_F(RemediationAnalysisTest, PoolSeriesEmptyInput) {
  const auto s = make_pool_series("empty", {});
  EXPECT_EQ(s.peak, 0u);
  EXPECT_TRUE(s.relative_to_peak.empty());
}

TEST_F(RemediationAnalysisTest, RemediationEffectRows) {
  // Sample 0: 2 amplifiers, 1 victim with 1000 packets from both.
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(block_addr(0, 1)));
  census_.add(obs(block_addr(0, 2)));
  census_.end_sample();
  victims_.begin_sample(0, util::Date{2014, 1, 10});
  victims_.add(obs(block_addr(0, 1), {victim_entry(block_addr(1, 5), 600)}));
  victims_.add(obs(block_addr(0, 2), {victim_entry(block_addr(1, 5), 400)}));
  victims_.end_sample();
  const auto rows = remediation_effect(census_, victims_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NEAR(rows[0].amplifiers_per_victim, 2.0, 1e-12);
  EXPECT_NEAR(rows[0].packets_per_amplifier, 500.0, 1e-12);  // 1000/2
}

TEST_F(RemediationAnalysisTest, CrossDatasetValidation) {
  // Victims witnessed from amplifiers in two different ASes; a "published"
  // list covering one of them plus an AS we never saw.
  victims_.begin_sample(0, util::Date{2014, 1, 10});
  victims_.add(obs(block_addr(0, 1), {victim_entry(block_addr(1, 5), 600)}));
  // Find a block in a different AS for the second amplifier.
  std::size_t other_block = 0;
  for (std::size_t i = 1; i < registry_.blocks().size(); ++i) {
    if (registry_.blocks()[i].asn != registry_.blocks()[0].asn) {
      other_block = i;
      break;
    }
  }
  ASSERT_NE(other_block, 0u);
  victims_.add(obs(block_addr(other_block, 1),
                   {victim_entry(block_addr(1, 5), 400)}));
  victims_.end_sample();

  const auto first_asn = registry_.blocks()[0].asn;
  const auto v = core::validate_published_as_list(
      {first_asn, first_asn, net::Asn{999999}}, victims_);
  EXPECT_EQ(v.published_ases, 2u);  // deduplicated
  EXPECT_EQ(v.overlapping_ases, 1u);
  EXPECT_NEAR(v.overlap_fraction, 0.5, 1e-12);
  EXPECT_NEAR(v.packet_share_of_total, 0.6, 1e-12);  // 600 of 1000
}

TEST_F(RemediationAnalysisTest, CrossDatasetValidationEmptyInputs) {
  const auto v = core::validate_published_as_list({}, victims_);
  EXPECT_EQ(v.published_ases, 0u);
  EXPECT_EQ(v.overlap_fraction, 0.0);
  EXPECT_EQ(v.packet_share_of_total, 0.0);
}

TEST_F(RemediationAnalysisTest, PoolOverlapCountsIntersection) {
  std::vector<net::Ipv4Address> a = {net::Ipv4Address(1, 0, 0, 1),
                                     net::Ipv4Address(1, 0, 0, 2),
                                     net::Ipv4Address(1, 0, 0, 3)};
  std::vector<net::Ipv4Address> b = {net::Ipv4Address(1, 0, 0, 2),
                                     net::Ipv4Address(1, 0, 0, 3),
                                     net::Ipv4Address(1, 0, 0, 4)};
  const auto r = pool_overlap(a, b);
  EXPECT_EQ(r.intersection, 2u);
  EXPECT_NEAR(r.fraction_of_first, 2.0 / 3.0, 1e-12);
}

TEST_F(RemediationAnalysisTest, PoolOverlapDeduplicates) {
  std::vector<net::Ipv4Address> a = {net::Ipv4Address(1, 0, 0, 1),
                                     net::Ipv4Address(1, 0, 0, 1)};
  std::vector<net::Ipv4Address> b = {net::Ipv4Address(1, 0, 0, 1)};
  const auto r = pool_overlap(a, b);
  EXPECT_EQ(r.intersection, 1u);
  EXPECT_NEAR(r.fraction_of_first, 1.0, 1e-12);
}

TEST_F(RemediationAnalysisTest, PoolOverlapEmptyInputs) {
  const auto r = pool_overlap({}, {net::Ipv4Address(1, 0, 0, 1)});
  EXPECT_EQ(r.intersection, 0u);
  EXPECT_EQ(r.fraction_of_first, 0.0);
}

}  // namespace
}  // namespace gorilla::core
