#include "core/amplifiers.h"

#include <gtest/gtest.h>

namespace gorilla::core {
namespace {

net::RegistryConfig small_registry() {
  net::RegistryConfig cfg;
  cfg.num_ases = 300;
  return cfg;
}

class AmplifierCensusTest : public ::testing::Test {
 protected:
  AmplifierCensusTest()
      : registry_(small_registry()),
        pbl_(registry_, net::PblConfig{}),
        census_(registry_, pbl_) {}

  scan::AmplifierObservation obs(net::Ipv4Address addr,
                                 std::uint64_t wire_bytes) {
    scan::AmplifierObservation o;
    o.address = addr;
    o.response_packets = 1;
    o.response_udp_bytes = wire_bytes * 9 / 10;
    o.response_wire_bytes = wire_bytes;
    o.table = {ntp::MonitorEntry{}};
    o.probe_time = 0;
    return o;
  }

  net::Ipv4Address addr_in_block(std::size_t block_index, std::uint64_t i) {
    const auto& p = registry_.blocks()[block_index].prefix;
    return p.at(i % p.size());
  }

  net::Registry registry_;
  net::PolicyBlockList pbl_;
  AmplifierCensus census_;
};

TEST_F(AmplifierCensusTest, RequiresOpenSample) {
  EXPECT_THROW(census_.add(obs(net::Ipv4Address(1, 2, 3, 4), 100)),
               std::logic_error);
  EXPECT_THROW(census_.end_sample(), std::logic_error);
  census_.begin_sample(0, util::Date{2014, 1, 10});
  EXPECT_THROW(census_.begin_sample(1, util::Date{2014, 1, 17}),
               std::logic_error);
}

TEST_F(AmplifierCensusTest, AggregationLevels) {
  census_.begin_sample(0, util::Date{2014, 1, 10});
  // Three IPs in the same /24 of block 0, one in block 1.
  census_.add(obs(addr_in_block(0, 1), 500));
  census_.add(obs(addr_in_block(0, 2), 500));
  census_.add(obs(addr_in_block(0, 3), 500));
  census_.add(obs(addr_in_block(1, 9), 500));
  census_.end_sample();
  const auto& row = census_.rows().at(0);
  EXPECT_EQ(row.ips, 4u);
  EXPECT_EQ(row.slash24s, 2u);
  EXPECT_EQ(row.routed_blocks, 2u);
  // Blocks 0 and 1 may share an AS; asns <= blocks.
  EXPECT_GE(row.asns, 1u);
  EXPECT_LE(row.asns, 2u);
  EXPECT_NEAR(row.ips_per_block, 2.0, 1e-12);
}

TEST_F(AmplifierCensusTest, BafUsesPaperDenominator) {
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(addr_in_block(0, 1), 840));
  census_.end_sample();
  EXPECT_NEAR(census_.rows().at(0).baf.median, 10.0, 1e-12);  // 840/84
}

TEST_F(AmplifierCensusTest, MegaDetection) {
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(addr_in_block(0, 1), 500));
  census_.add(obs(addr_in_block(0, 2), 150'000));  // mega: >100KB
  census_.end_sample();
  EXPECT_EQ(census_.rows().at(0).mega_count, 1u);
  const auto roster = census_.mega_roster();
  ASSERT_EQ(roster.size(), 1u);
  EXPECT_EQ(roster[0].first, addr_in_block(0, 2));
  EXPECT_EQ(roster[0].second, 150'000u);
}

TEST_F(AmplifierCensusTest, ChurnStatistics) {
  const auto a = addr_in_block(0, 1);
  const auto b = addr_in_block(0, 2);
  const auto c = addr_in_block(1, 3);
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(a, 100));
  census_.add(obs(b, 100));
  census_.end_sample();
  census_.begin_sample(1, util::Date{2014, 1, 17});
  census_.add(obs(a, 100));
  census_.add(obs(c, 100));
  census_.end_sample();
  EXPECT_EQ(census_.unique_ips(), 3u);
  EXPECT_NEAR(census_.first_sample_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(census_.seen_once_fraction(), 2.0 / 3.0, 1e-12);  // b and c
}

TEST_F(AmplifierCensusTest, BytesRankCurveAveragesAcrossSamples) {
  const auto a = addr_in_block(0, 1);
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(a, 100));
  census_.end_sample();
  census_.begin_sample(1, util::Date{2014, 1, 17});
  census_.add(obs(a, 300));
  census_.end_sample();
  const auto curve = census_.bytes_rank_curve();
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_NEAR(curve[0], 200.0, 1e-12);  // (100+300)/2
}

TEST_F(AmplifierCensusTest, RankCurveSortedDescending) {
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(addr_in_block(0, 1), 50));
  census_.add(obs(addr_in_block(0, 2), 5000));
  census_.add(obs(addr_in_block(0, 3), 500));
  census_.end_sample();
  const auto curve = census_.bytes_rank_curve();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_GE(curve[0], curve[1]);
  EXPECT_GE(curve[1], curve[2]);
}

TEST_F(AmplifierCensusTest, EndHostPercent) {
  // Find a residential and a non-residential block.
  std::optional<std::size_t> res, infra;
  for (std::size_t i = 0; i < registry_.blocks().size(); ++i) {
    if (registry_.blocks()[i].residential && !res &&
        pbl_.is_end_host(registry_.blocks()[i].prefix.base())) {
      res = i;
    }
    if (!registry_.blocks()[i].residential && !infra &&
        !pbl_.is_end_host(registry_.blocks()[i].prefix.base())) {
      infra = i;
    }
  }
  ASSERT_TRUE(res);
  ASSERT_TRUE(infra);
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(registry_.blocks()[*res].prefix.base(), 100));
  census_.add(obs(registry_.blocks()[*infra].prefix.base(), 100));
  census_.end_sample();
  EXPECT_NEAR(census_.rows().at(0).end_host_pct, 50.0, 1e-12);
}

TEST_F(AmplifierCensusTest, ContinentCounts) {
  census_.begin_sample(0, util::Date{2014, 1, 10});
  census_.add(obs(addr_in_block(0, 1), 100));
  census_.end_sample();
  const auto& row = census_.rows().at(0);
  std::uint64_t total = 0;
  for (const auto c : row.by_continent) total += c;
  EXPECT_EQ(total, 1u);
}

class VersionCensusTest : public ::testing::Test {
 protected:
  scan::VersionObservation vobs(const std::string& system, int stratum,
                                const std::string& version,
                                std::uint64_t bytes = 420) {
    scan::VersionObservation o;
    o.address = net::Ipv4Address(1, 2, 3, 4);
    o.response_packets = 1;
    o.response_wire_bytes = bytes;
    o.system = system;
    o.version = version;
    o.stratum = stratum;
    return o;
  }

  VersionCensus census_;
};

TEST_F(VersionCensusTest, RowsTrackTotals) {
  census_.begin_sample(0, util::Date{2014, 2, 21});
  census_.add(vobs("cisco", 2, "ntpd 4.1.0 Mon Jan 1 2007"));
  census_.add(vobs("UNIX", 3, "ntpd 4.2.6 Tue Feb 2 2010"));
  census_.end_sample(40000);
  const auto& row = census_.rows().at(0);
  EXPECT_EQ(row.responders_total, 40000u);
  EXPECT_EQ(row.responders_detailed, 2u);
  EXPECT_NEAR(row.baf.median, 5.0, 1e-12);  // 420/84
}

TEST_F(VersionCensusTest, OsRankingNormalizes) {
  census_.begin_sample(0, util::Date{2014, 2, 21});
  for (int i = 0; i < 6; ++i) {
    census_.add(vobs("cisco", 2, "x"));
  }
  for (int i = 0; i < 4; ++i) {
    census_.add(vobs("Linux/3.2", 2, "x"));
  }
  census_.end_sample(10);
  const auto ranking = census_.os_ranking();
  ASSERT_GE(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].first, "cisco");
  EXPECT_NEAR(ranking[0].second, 60.0, 1e-12);
  EXPECT_EQ(ranking[1].first, "linux");
  EXPECT_NEAR(ranking[1].second, 40.0, 1e-12);
}

TEST_F(VersionCensusTest, StratumSixteenFraction) {
  census_.begin_sample(0, util::Date{2014, 2, 21});
  census_.add(vobs("linux", 16, "x"));
  census_.add(vobs("linux", 2, "x"));
  census_.add(vobs("linux", 3, "x"));
  census_.add(vobs("linux", 16, "x"));
  census_.end_sample(4);
  EXPECT_NEAR(census_.stratum16_fraction(), 0.5, 1e-12);
}

TEST_F(VersionCensusTest, CompileYearCensus) {
  census_.begin_sample(0, util::Date{2014, 2, 21});
  census_.add(vobs("linux", 2, "ntpd 4.0.0 Fri Mar 3 2000"));
  census_.add(vobs("linux", 2, "ntpd 4.2.0 Sat Apr 4 2010"));
  census_.add(vobs("linux", 2, "ntpd 4.2.8 Sun May 5 2013"));
  census_.add(vobs("linux", 2, "no year here"));
  census_.end_sample(4);
  EXPECT_NEAR(census_.compiled_before_fraction(2004), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(census_.compiled_before_fraction(2012), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(census_.compiled_before_fraction(2020), 1.0, 1e-12);
}

TEST_F(VersionCensusTest, SampleLifecycleEnforced) {
  EXPECT_THROW(census_.add(vobs("x", 2, "y")), std::logic_error);
  EXPECT_THROW(census_.end_sample(0), std::logic_error);
}

}  // namespace
}  // namespace gorilla::core
