#include "core/stats.h"

#include <gtest/gtest.h>

#include <array>

namespace gorilla::core {
namespace {

TEST(QuantileTest, EmptyInputIsZero) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, SingleValue) {
  const std::array<double, 1> v = {7.0};
  EXPECT_EQ(quantile(v, 0.0), 7.0);
  EXPECT_EQ(quantile(v, 0.5), 7.0);
  EXPECT_EQ(quantile(v, 1.0), 7.0);
}

TEST(QuantileTest, LinearInterpolation) {
  const std::array<double, 5> v = {10, 20, 30, 40, 50};
  EXPECT_EQ(quantile(v, 0.0), 10.0);
  EXPECT_EQ(quantile(v, 0.25), 20.0);
  EXPECT_EQ(quantile(v, 0.5), 30.0);
  EXPECT_EQ(quantile(v, 0.875), 45.0);
  EXPECT_EQ(quantile(v, 1.0), 50.0);
}

TEST(QuantileTest, UnsortedInput) {
  const std::array<double, 5> v = {50, 10, 40, 20, 30};
  EXPECT_EQ(quantile(v, 0.5), 30.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  const std::array<double, 3> v = {1, 2, 3};
  EXPECT_EQ(quantile(v, -0.5), 1.0);
  EXPECT_EQ(quantile(v, 1.5), 3.0);
}

TEST(MeanTest, Basic) {
  const std::array<double, 4> v = {1, 2, 3, 4};
  EXPECT_EQ(mean(v), 2.5);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(BoxplotTest, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const auto b = boxplot(v);
  EXPECT_EQ(b.min, 1.0);
  EXPECT_EQ(b.q1, 26.0);
  EXPECT_EQ(b.median, 51.0);
  EXPECT_EQ(b.q3, 76.0);
  EXPECT_EQ(b.max, 101.0);
  EXPECT_EQ(b.count, 101u);
}

TEST(BoxplotTest, EmptyInput) {
  const auto b = boxplot({});
  EXPECT_EQ(b.count, 0u);
  EXPECT_EQ(b.median, 0.0);
}

TEST(ConcentrationCdfTest, UniformContributions) {
  const std::array<double, 4> v = {1, 1, 1, 1};
  const auto cdf = concentration_cdf(v);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_NEAR(cdf[0].cumulative, 0.25, 1e-12);
  EXPECT_NEAR(cdf[3].cumulative, 1.0, 1e-12);
  EXPECT_EQ(cdf[0].rank, 1u);
}

TEST(ConcentrationCdfTest, SkewedContributions) {
  // One giant, many small: rank 1 carries most of the mass (the Figure 5
  // shape: top-100 ASes carry 60-75% of packets).
  std::vector<double> v(99, 1.0);
  v.push_back(901.0);
  const auto cdf = concentration_cdf(v);
  EXPECT_NEAR(cdf[0].cumulative, 0.901, 1e-9);
  EXPECT_NEAR(cdf[99].cumulative, 1.0, 1e-9);
}

TEST(ConcentrationCdfTest, ZeroTotalYieldsEmpty) {
  const std::array<double, 3> v = {0, 0, 0};
  EXPECT_TRUE(concentration_cdf(v).empty());
  EXPECT_TRUE(concentration_cdf({}).empty());
}

TEST(TopKShareTest, Basic) {
  const std::array<double, 5> v = {50, 20, 15, 10, 5};
  EXPECT_NEAR(top_k_share(v, 1), 0.5, 1e-12);
  EXPECT_NEAR(top_k_share(v, 2), 0.7, 1e-12);
  EXPECT_NEAR(top_k_share(v, 5), 1.0, 1e-12);
  EXPECT_NEAR(top_k_share(v, 50), 1.0, 1e-12);  // k beyond size
  EXPECT_EQ(top_k_share(v, 0), 0.0);
}

TEST(SampleAccumulatorTest, Lifecycle) {
  SampleAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  for (int i = 1; i <= 10; ++i) acc.add(static_cast<double>(i));
  EXPECT_EQ(acc.count(), 10u);
  EXPECT_NEAR(acc.mean(), 5.5, 1e-12);
  EXPECT_NEAR(acc.quantile(0.5), 5.5, 1e-12);
  EXPECT_EQ(acc.boxplot().max, 10.0);
  acc.clear();
  EXPECT_EQ(acc.count(), 0u);
}

// Property sweep: quantile is monotone in q for arbitrary data.
class QuantileMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotonic, MonotoneInQ) {
  std::vector<double> v;
  std::uint64_t x = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1;
  for (int i = 0; i < 200; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v.push_back(static_cast<double>(x % 100000));
  }
  double prev = quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotonic,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gorilla::core
