#include "core/local_view.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace gorilla::core {
namespace {

net::RegistryConfig small_registry() {
  net::RegistryConfig cfg;
  cfg.num_ases = 300;
  return cfg;
}

class LocalForensicsTest : public ::testing::Test {
 protected:
  LocalForensicsTest()
      : registry_(small_registry()),
        collector_("merit", {registry_.named().merit_space}) {}

  net::Ipv4Address local_amp(std::uint64_t i = 1) {
    return registry_.named().merit_space.at(i);
  }

  net::Ipv4Address external(std::uint8_t d) {
    // OVH-analogue space: definitely external and AS-attributable.
    const auto& info = registry_.as_info(registry_.named().ovh_analogue);
    return registry_.blocks()[info.block_indices[0]].prefix.at(d);
  }

  /// Emits the canonical attack pair: triggers in, responses out.
  void add_attack(net::Ipv4Address amp, net::Ipv4Address victim,
                  std::uint64_t response_bytes, util::SimTime first,
                  util::SimTime last, std::uint64_t trigger_payload = 4800) {
    telemetry::FlowRecord trigger;
    trigger.src = victim;
    trigger.dst = amp;
    trigger.src_port = 80;
    trigger.dst_port = net::kNtpPort;
    trigger.ttl = 109;
    trigger.packets = 100;
    trigger.bytes = trigger_payload * 114 / 48;
    trigger.payload_bytes = trigger_payload;
    trigger.first = first;
    trigger.last = last;
    collector_.add(trigger);

    telemetry::FlowRecord response;
    response.src = amp;
    response.dst = victim;
    response.src_port = net::kNtpPort;
    response.dst_port = 80;
    response.ttl = 52;
    response.packets = response_bytes / 480;
    response.bytes = response_bytes;
    response.payload_bytes = response_bytes * 9 / 10;
    response.first = first;
    response.last = last;
    collector_.add(response);
  }

  void add_scan(net::Ipv4Address scanner, net::Ipv4Address target) {
    // Scanners recur: two sweeps, days apart (one-shot sources are treated
    // as spoof artifacts by the forensics).
    for (int sweep = 0; sweep < 2; ++sweep) {
      telemetry::FlowRecord f;
      f.src = scanner;
      f.dst = target;
      f.src_port = 40000;
      f.dst_port = net::kNtpPort;
      f.ttl = 54;
      f.packets = 10;
      f.bytes = 1140;
      f.payload_bytes = 480;
      f.first = 100 + sweep * 3 * util::kSecondsPerDay;
      f.last = f.first + 100;
      collector_.add(f);
    }
  }

  net::Registry registry_;
  telemetry::FlowCollector collector_;
};

TEST_F(LocalForensicsTest, QualifiesAmplifiersByVolumeAndRatio) {
  add_attack(local_amp(), external(10), 50'000'000, 0, 3600);
  LocalForensics forensics(collector_, registry_);
  const auto amps = forensics.amplifiers();
  ASSERT_EQ(amps.size(), 1u);
  EXPECT_EQ(amps[0].address, local_amp());
  EXPECT_EQ(amps[0].unique_victims, 1u);
  EXPECT_GT(amps[0].baf, kLocalVictimMinRatio);
  EXPECT_EQ(amps[0].bytes_sent, 50'000'000u);
}

TEST_F(LocalForensicsTest, SmallSendersNotAmplifiers) {
  add_attack(local_amp(), external(10), 5'000'000, 0, 3600);  // < 10MB
  LocalForensics forensics(collector_, registry_);
  EXPECT_TRUE(forensics.amplifiers().empty());
}

TEST_F(LocalForensicsTest, BalancedTrafficNotAmplifier) {
  // A host that sends a lot but receives comparably (ratio <= 5) is just a
  // busy NTP server, not an abused amplifier.
  telemetry::FlowRecord out;
  out.src = local_amp();
  out.dst = external(10);
  out.src_port = net::kNtpPort;
  out.dst_port = 123;
  out.packets = 1000;
  out.bytes = 20'000'000;
  out.payload_bytes = 18'000'000;
  out.first = 0;
  out.last = 100;
  collector_.add(out);
  telemetry::FlowRecord in = out;
  in.src = external(10);
  in.dst = local_amp();
  in.dst_port = net::kNtpPort;
  in.bytes = 10'000'000;
  in.payload_bytes = 9'000'000;
  collector_.add(in);
  LocalForensics forensics(collector_, registry_);
  EXPECT_TRUE(forensics.amplifiers().empty());
}

TEST_F(LocalForensicsTest, VictimsQualifyByBytesAndRatio) {
  add_attack(local_amp(), external(10), 50'000'000, 1000, 4600);
  add_attack(local_amp(), external(11), 50'000, 1000, 4600);  // < 100KB: no
  LocalForensics forensics(collector_, registry_);
  const auto victims = forensics.victims();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].address, external(10));
  EXPECT_EQ(forensics.unique_victim_count(), 1u);
}

TEST_F(LocalForensicsTest, VictimReportFields) {
  add_attack(local_amp(1), external(10), 50'000'000, 0, 3600);
  add_attack(local_amp(2), external(10), 30'000'000, 3600, 36000);
  LocalForensics forensics(collector_, registry_);
  const auto victims = forensics.victims();
  ASSERT_EQ(victims.size(), 1u);
  const auto& v = victims[0];
  EXPECT_EQ(v.amplifiers, 2u);
  EXPECT_EQ(v.bytes, 80'000'000u);
  EXPECT_EQ(v.asn, registry_.named().ovh_analogue);
  EXPECT_EQ(v.region, "Europe");
  EXPECT_NEAR(v.duration_hours, 10.0, 1e-9);  // [0, 36000]
  EXPECT_GT(v.baf, 100.0);
}

TEST_F(LocalForensicsTest, VictimsRankedByBytes) {
  add_attack(local_amp(1), external(10), 10'000'000, 0, 100);
  add_attack(local_amp(1), external(11), 90'000'000, 0, 100);
  LocalForensics forensics(collector_, registry_);
  const auto victims = forensics.victims();
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0].address, external(11));
}

TEST_F(LocalForensicsTest, ScannersExcludeVictims) {
  add_attack(local_amp(1), external(10), 50'000'000, 0, 100);
  add_scan(external(20), local_amp(50));
  add_scan(external(21), local_amp(51));
  LocalForensics forensics(collector_, registry_);
  const auto scanners = forensics.scanners();
  ASSERT_EQ(scanners.size(), 2u);
  for (const auto& s : scanners) {
    EXPECT_NE(s, external(10));  // the victim is not a scanner
  }
}

TEST_F(LocalForensicsTest, TtlProfileSeparatesScannersFromBots) {
  add_attack(local_amp(1), external(10), 50'000'000, 0, 100);
  add_scan(external(20), local_amp(50));
  add_scan(external(21), local_amp(51));
  LocalForensics forensics(collector_, registry_);
  const auto profile = forensics.ttl_profile();
  ASSERT_TRUE(profile.scanner_mode_ttl);
  ASSERT_TRUE(profile.attack_mode_ttl);
  EXPECT_EQ(*profile.scanner_mode_ttl, 54);   // Linux scanning hosts
  EXPECT_EQ(*profile.attack_mode_ttl, 109);   // Windows botnet spoofers
}

TEST_F(LocalForensicsTest, VictimVolumeSeries) {
  add_attack(local_amp(1), external(10), 36'000'000, 0, 3599);
  LocalForensics forensics(collector_, registry_);
  const auto series = forensics.victim_volume(external(10), 0, 3600, 600);
  ASSERT_EQ(series.bytes.size(), 6u);
  double total = 0;
  for (const double b : series.bytes) total += b;
  EXPECT_NEAR(total, 36'000'000.0, 1.0);
}

TEST_F(LocalForensicsTest, CommonVictimsAcrossSites) {
  telemetry::FlowCollector frgp("frgp", {registry_.named().frgp_space});
  // Shared victim hit from both sites; plus one victim per site.
  const auto shared = external(10);
  add_attack(local_amp(1), shared, 50'000'000, 0, 100);
  add_attack(local_amp(1), external(11), 50'000'000, 0, 100);

  auto add_frgp_attack = [&](net::Ipv4Address victim) {
    telemetry::FlowRecord response;
    response.src = registry_.named().frgp_space.at(70000);
    response.dst = victim;
    response.src_port = net::kNtpPort;
    response.dst_port = 80;
    response.packets = 100000;
    response.bytes = 50'000'000;
    response.payload_bytes = 45'000'000;
    response.first = 0;
    response.last = 100;
    frgp.add(response);
    telemetry::FlowRecord trigger;
    trigger.src = victim;
    trigger.dst = response.src;
    trigger.src_port = 80;
    trigger.dst_port = net::kNtpPort;
    trigger.packets = 100;
    trigger.bytes = 11400;
    trigger.payload_bytes = 4800;
    trigger.first = 0;
    trigger.last = 100;
    frgp.add(trigger);
  };
  add_frgp_attack(shared);
  add_frgp_attack(external(12));

  LocalForensics merit_view(collector_, registry_);
  LocalForensics frgp_view(frgp, registry_);
  const auto common = LocalForensics::common_victims(merit_view, frgp_view);
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0], shared);
}

TEST_F(LocalForensicsTest, CommonScannersAcrossSites) {
  telemetry::FlowCollector frgp("frgp", {registry_.named().frgp_space});
  const auto research = external(30);
  add_scan(research, local_amp(50));
  add_scan(external(31), local_amp(51));
  for (int sweep = 0; sweep < 2; ++sweep) {
    telemetry::FlowRecord f;
    f.src = research;
    f.dst = registry_.named().frgp_space.at(5);
    f.src_port = 40000;
    f.dst_port = net::kNtpPort;
    f.ttl = 54;
    f.packets = 10;
    f.bytes = 1140;
    f.payload_bytes = 480;
    f.first = sweep * 3 * util::kSecondsPerDay;
    f.last = f.first + 10;
    frgp.add(f);
  }

  LocalForensics merit_view(collector_, registry_);
  LocalForensics frgp_view(frgp, registry_);
  const auto common = LocalForensics::common_scanners(merit_view, frgp_view);
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0], research);
}

TEST_F(LocalForensicsTest, EmptyCollectorYieldsEmptyReports) {
  LocalForensics forensics(collector_, registry_);
  EXPECT_TRUE(forensics.amplifiers().empty());
  EXPECT_TRUE(forensics.victims().empty());
  EXPECT_TRUE(forensics.scanners().empty());
  EXPECT_FALSE(forensics.ttl_profile().scanner_mode_ttl);
}

}  // namespace
}  // namespace gorilla::core
