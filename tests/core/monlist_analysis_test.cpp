#include "core/monlist_analysis.h"

#include <gtest/gtest.h>

namespace gorilla::core {
namespace {

ntp::MonitorEntry entry(std::uint8_t mode, std::uint32_t count,
                        std::uint32_t avg_interval,
                        std::uint32_t last_seen = 0) {
  ntp::MonitorEntry e;
  e.address = net::Ipv4Address(10, 0, 0, 1);
  e.port = 80;
  e.mode = mode;
  e.count = count;
  e.avg_interval = avg_interval;
  e.last_seen = last_seen;
  return e;
}

TEST(ClassifyClientTest, NormalModesAreNonVictims) {
  // §4.2: modes < 6 provide no amplification, so they are never victims.
  for (int mode : {0, 1, 2, 3, 4, 5}) {
    EXPECT_EQ(classify_client(entry(static_cast<std::uint8_t>(mode), 1000000, 1)),
              ClientClass::kNonVictim)
        << mode;
  }
}

TEST(ClassifyClientTest, LowCountIsScanner) {
  EXPECT_EQ(classify_client(entry(7, 1, 0)),
            ClientClass::kScannerOrLowVolume);
  EXPECT_EQ(classify_client(entry(7, 2, 0)),
            ClientClass::kScannerOrLowVolume);
  EXPECT_EQ(classify_client(entry(6, 2, 10)),
            ClientClass::kScannerOrLowVolume);
}

TEST(ClassifyClientTest, SlowSendersAreScanners) {
  // More than an hour between packets on average.
  EXPECT_EQ(classify_client(entry(7, 100, 3601)),
            ClientClass::kScannerOrLowVolume);
  // The weekly ONP probe itself: interarrival ~ 604800.
  EXPECT_EQ(classify_client(entry(7, 7, 604800)),
            ClientClass::kScannerOrLowVolume);
}

TEST(ClassifyClientTest, BoundaryConditions) {
  // count >= 3 and interarrival <= 3600 exactly: victim.
  EXPECT_EQ(classify_client(entry(7, 3, 3600)), ClientClass::kVictim);
  EXPECT_EQ(classify_client(entry(6, 3, 3600)), ClientClass::kVictim);
  EXPECT_EQ(classify_client(entry(7, 3, 3601)),
            ClientClass::kScannerOrLowVolume);
  EXPECT_EQ(classify_client(entry(7, 2, 3600)),
            ClientClass::kScannerOrLowVolume);
}

TEST(ClassifyClientTest, HeavyFloodIsVictim) {
  // Table 3b's shape: billions of packets, interarrival 0.
  EXPECT_EQ(classify_client(entry(7, 3358227026u, 0)), ClientClass::kVictim);
}

TEST(DeriveAttackTest, RejectsNonVictims) {
  EXPECT_FALSE(derive_attack(entry(3, 100, 1), 1000,
                             net::Ipv4Address(1, 1, 1, 1)));
  EXPECT_FALSE(derive_attack(entry(7, 1, 0), 1000,
                             net::Ipv4Address(1, 1, 1, 1)));
}

TEST(DeriveAttackTest, TimingArithmetic) {
  // Probe at t=100000; victim last seen 400s ago; 100 packets at 10s
  // spacing -> duration 1000s, end 99600, start 98600.
  const auto a = derive_attack(entry(7, 100, 10, 400), 100000,
                               net::Ipv4Address(2, 2, 2, 2));
  ASSERT_TRUE(a);
  EXPECT_EQ(a->end_time, 99600);
  EXPECT_EQ(a->duration, 1000);
  EXPECT_EQ(a->start_time, 98600);
  EXPECT_EQ(a->packets, 100u);
  EXPECT_EQ(a->amplifier, net::Ipv4Address(2, 2, 2, 2));
  EXPECT_EQ(a->victim, net::Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(a->victim_port, 80);
}

TEST(DeriveAttackTest, ZeroIntervalFlood) {
  const auto a = derive_attack(entry(7, 5000, 0, 2), 1000,
                               net::Ipv4Address(2, 2, 2, 2));
  ASSERT_TRUE(a);
  EXPECT_EQ(a->duration, 0);
  EXPECT_EQ(a->start_time, a->end_time);
  EXPECT_EQ(a->end_time, 998);
}

TEST(DeriveAttackTest, StartCanPrecedeObservationWindow) {
  // §4.3.4: derived start times can fall before the first sample — the
  // paper plots attacks predating January 10th this way.
  const auto a = derive_attack(entry(7, 1000000, 3600, 0), 1000,
                               net::Ipv4Address(2, 2, 2, 2));
  ASSERT_TRUE(a);
  EXPECT_LT(a->start_time, 0);
}

}  // namespace
}  // namespace gorilla::core
