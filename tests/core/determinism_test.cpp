// Determinism regression: the ranked / serialized views of the analysis
// layer must not depend on the order observations arrive in (which is the
// only thing a hash-table walk order can leak). Two analyses fed the same
// observations in opposite orders must render byte-identical output.
#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/amplifiers.h"
#include "core/victims.h"

namespace gorilla::core {
namespace {

net::RegistryConfig small_registry() {
  net::RegistryConfig cfg;
  cfg.num_ases = 300;
  return cfg;
}

ntp::MonitorEntry victim_entry(net::Ipv4Address victim, std::uint16_t port,
                               std::uint32_t count) {
  ntp::MonitorEntry e;
  e.address = victim;
  e.port = port;
  e.mode = 7;
  e.count = count;
  e.avg_interval = 1;
  e.last_seen = 10;
  return e;
}

class DeterminismTest : public ::testing::Test {
 protected:
  DeterminismTest() : registry_(small_registry()), pbl_(registry_, net::PblConfig{}) {}

  net::Ipv4Address block_addr(std::size_t block, std::uint64_t i) const {
    const auto& p = registry_.blocks()[block].prefix;
    return p.at(i % p.size());
  }

  /// A spread of observations: many amplifiers across blocks, several
  /// victims (some shared across amplifiers, with count ties to stress
  /// tie-breaking), one mega responder.
  std::vector<scan::AmplifierObservation> observations() const {
    std::vector<scan::AmplifierObservation> obs;
    for (std::uint64_t a = 0; a < 40; ++a) {
      scan::AmplifierObservation o;
      o.address = block_addr(a % 7, 3 + a);
      o.response_packets = 1;
      o.response_udp_bytes = 400 + 10 * a;
      o.response_wire_bytes = a == 13 ? 200'000 : 500 + 10 * a;
      o.probe_time = 100000 + 60 * a;
      for (std::uint64_t v = 0; v < 4; ++v) {
        // Identical counts across many victims → rank ties everywhere.
        o.table.push_back(victim_entry(block_addr((a + v) % 11, 7 + v),
                                       static_cast<std::uint16_t>(80 + v % 2),
                                       5000));
      }
      obs.push_back(std::move(o));
    }
    return obs;
  }

  /// Every ranked / serialized view of the two analyses, rendered to text.
  static std::string render(const VictimAnalysis& va,
                            const AmplifierCensus& ac) {
    std::ostringstream out;
    for (const auto& r : va.rows()) {
      out << r.week << ',' << r.ips << ',' << r.routed_blocks << ',' << r.asns
          << ',' << r.end_hosts << ',' << r.end_host_pct << ','
          << r.ips_per_block << ',' << r.packets_mean << ','
          << r.packets_median << ',' << r.packets_p95 << ','
          << r.amplifiers_per_victim << '\n';
    }
    for (const auto& [port, share] : va.top_ports(10)) {
      out << port << '=' << share << '\n';
    }
    for (const auto& [asn, packets] : va.top_victim_ases(10)) {
      out << asn << ':' << packets << '\n';
    }
    for (const auto& [asn, packets] : va.amplifier_as_breakdown()) {
      out << asn << '~' << packets << '\n';
    }
    for (const double p : va.victim_as_packets()) out << p << ';';
    for (const double p : va.amplifier_as_packets()) out << p << ';';
    out << '\n';
    for (const auto& [addr, bytes] : ac.mega_roster()) {
      out << net::to_string(addr) << '@' << bytes << '\n';
    }
    for (const double b : ac.bytes_rank_curve()) out << b << ';';
    out << '\n'
        << ac.first_sample_fraction() << ',' << ac.seen_once_fraction();
    return out.str();
  }

  std::string run(bool reversed) const {
    VictimAnalysis va(registry_, pbl_);
    AmplifierCensus ac(registry_, pbl_);
    auto obs = observations();
    if (reversed) std::reverse(obs.begin(), obs.end());
    // Two samples so per-sample and cumulative state both get exercised.
    const std::size_t half = obs.size() / 2;
    va.begin_sample(0, util::Date{2014, 1, 10});
    ac.begin_sample(0, util::Date{2014, 1, 10});
    for (std::size_t i = 0; i < half; ++i) {
      va.add(obs[i]);
      ac.add(obs[i]);
    }
    va.end_sample();
    ac.end_sample();
    va.begin_sample(1, util::Date{2014, 1, 17});
    ac.begin_sample(1, util::Date{2014, 1, 17});
    for (std::size_t i = half; i < obs.size(); ++i) {
      va.add(obs[i]);
      ac.add(obs[i]);
    }
    va.end_sample();
    ac.end_sample();
    return render(va, ac);
  }

  net::Registry registry_;
  net::PolicyBlockList pbl_;
};

TEST_F(DeterminismTest, RankedOutputIndependentOfInsertionOrder) {
  const std::string forward = run(false);
  const std::string reverse = run(true);
  EXPECT_FALSE(forward.empty());
  EXPECT_EQ(forward, reverse);  // byte-identical
}

TEST_F(DeterminismTest, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(run(false), run(false));
}

}  // namespace
}  // namespace gorilla::core
