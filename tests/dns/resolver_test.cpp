#include "dns/resolver.h"

#include <gtest/gtest.h>

namespace gorilla::dns {
namespace {

net::RegistryConfig small_registry() {
  net::RegistryConfig cfg;
  cfg.num_ases = 300;
  return cfg;
}

ResolverPoolConfig small_pool() {
  ResolverPoolConfig cfg;
  cfg.peak_size = 20000;
  return cfg;
}

TEST(ResolverPoolTest, PeakSizeAtWeekZero) {
  const net::Registry registry{small_registry()};
  const ResolverPool pool(registry, small_pool(), 52);
  EXPECT_EQ(pool.open_count(0), 20000u);
  EXPECT_EQ(pool.resolvers().size(), 20000u);
}

TEST(ResolverPoolTest, DecaysSlowly) {
  // §6.2: the open-resolver pool "has not decreased much in relative
  // terms" — under a few percent over the measured year.
  const net::Registry registry{small_registry()};
  const ResolverPool pool(registry, small_pool(), 52);
  const double year_survival =
      static_cast<double>(pool.open_count(52)) /
      static_cast<double>(pool.open_count(0));
  EXPECT_GT(year_survival, 0.93);
  EXPECT_LT(year_survival, 1.0);
}

TEST(ResolverPoolTest, MonotoneNonIncreasing) {
  const net::Registry registry{small_registry()};
  const ResolverPool pool(registry, small_pool(), 30);
  for (int w = 1; w <= 30; ++w) {
    EXPECT_LE(pool.open_count(w), pool.open_count(w - 1));
  }
}

TEST(ResolverPoolTest, CpeFractionRoughlyConfigured) {
  const net::Registry registry{small_registry()};
  const ResolverPool pool(registry, small_pool(), 10);
  std::size_t cpe = 0;
  for (const auto& r : pool.resolvers()) {
    if (r.cpe) ++cpe;
  }
  EXPECT_NEAR(static_cast<double>(cpe) /
                  static_cast<double>(pool.resolvers().size()),
              0.85, 0.02);
}

TEST(ResolverPoolTest, CpeResolversLiveInResidentialSpace) {
  const net::Registry registry{small_registry()};
  const ResolverPool pool(registry, small_pool(), 10);
  std::size_t checked = 0, residential = 0;
  for (const auto& r : pool.resolvers()) {
    if (!r.cpe) continue;
    ++checked;
    const auto idx = registry.block_index_of(r.address);
    if (idx && registry.blocks()[*idx].residential) ++residential;
    if (checked >= 2000) break;
  }
  ASSERT_GT(checked, 0u);
  EXPECT_GT(static_cast<double>(residential) / static_cast<double>(checked),
            0.95);
}

TEST(ResolverPoolTest, IsOpenConsistentWithCounts) {
  const net::Registry registry{small_registry()};
  const ResolverPool pool(registry, small_pool(), 20);
  for (int w : {0, 5, 20}) {
    std::uint64_t open = 0;
    for (std::size_t i = 0; i < pool.resolvers().size(); ++i) {
      if (pool.is_open(i, w)) ++open;
    }
    EXPECT_EQ(open, pool.open_count(w));
  }
}

TEST(ResolverPoolTest, NegativeWeekClampsToZero) {
  const net::Registry registry{small_registry()};
  const ResolverPool pool(registry, small_pool(), 10);
  EXPECT_EQ(pool.open_count(-5), pool.open_count(0));
}

TEST(AnyQueryTest, AmplificationIsSubstantial) {
  util::Rng rng(1);
  const double query = static_cast<double>(any_query_bytes());
  double total = 0.0;
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) {
    const auto resp = any_response_bytes(rng);
    EXPECT_GE(resp, 512u);
    EXPECT_LE(resp, 4096u);
    total += static_cast<double>(resp);
  }
  // Mean payload amplification for DNS ANY abuse is tens of x.
  const double mean_amp = total / n / query;
  EXPECT_GT(mean_amp, 20.0);
  EXPECT_LT(mean_amp, 120.0);
}

}  // namespace
}  // namespace gorilla::dns
