#include "util/block_codec.h"

#include <algorithm>
#include <optional>

#include "util/bytes.h"
#include "util/crc32.h"

namespace gorilla::util {

namespace {

constexpr std::size_t kMinMatch = 4;
// 16K-entry last-position table: fixed size + greedy parse keeps the
// encoder deterministic; ratio/speed tuning must never change the format.
constexpr int kHashBits = 14;
constexpr std::uint32_t kHashMul = 2654435761u;  // Knuth multiplicative

[[nodiscard]] std::uint32_t hash4(std::uint32_t v) noexcept {
  return (v * kHashMul) >> (32 - kHashBits);
}

/// Appends a span without a ranged insert (GCC 12's object-size analysis
/// misreads insert-from-span as an overflowing memmove under -Werror).
void append_bytes(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> b) {
  const std::size_t base = out.size();
  out.resize(base + b.size());
  std::copy_n(b.begin(), b.size(), out.begin() + static_cast<std::ptrdiff_t>(base));
}

/// LZ4-style length extension: a run of 255s plus a terminator < 255.
void put_ext_len(std::vector<std::uint8_t>& out, std::size_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(len));
}

/// Reads a length extension at `ip`, adding it into `len`. False on a torn
/// extension or an absurd (malformed) total.
[[nodiscard]] bool read_ext_len(std::span<const std::uint8_t> body,
                                std::size_t& ip, std::size_t& len) {
  std::uint8_t b = 0;
  do {
    if (ip >= body.size()) return false;
    b = body[ip++];
    len += b;
    if (len > 2 * kBlockRawSize) return false;  // cannot fit in one block
  } while (b == 255);
  return true;
}

/// One sequence: token (lit nibble | match nibble), literal run, 16-bit
/// back-reference offset, match length. A literals-only tail is emitted by
/// the caller with no offset — end-of-block is "input exhausted after the
/// literal run".
void emit_sequence(std::vector<std::uint8_t>& out,
                   std::span<const std::uint8_t> lits, std::size_t offset,
                   std::size_t mlen) {
  const std::size_t ml = mlen - kMinMatch;
  out.push_back(static_cast<std::uint8_t>(
      (std::min<std::size_t>(lits.size(), 15) << 4) |
      std::min<std::size_t>(ml, 15)));
  if (lits.size() >= 15) put_ext_len(out, lits.size() - 15);
  append_bytes(out, lits);
  ByteWriter(out).u16le(static_cast<std::uint16_t>(offset));
  if (ml >= 15) put_ext_len(out, ml - 15);
}

void emit_final_literals(std::vector<std::uint8_t>& out,
                         std::span<const std::uint8_t> lits) {
  out.push_back(static_cast<std::uint8_t>(
      std::min<std::size_t>(lits.size(), 15) << 4));
  if (lits.size() >= 15) put_ext_len(out, lits.size() - 15);
  append_bytes(out, lits);
}

/// Greedy single-pass parse over one block. Matches reference earlier
/// bytes of the SAME block only, so each block decodes independently.
std::vector<std::uint8_t> lz_compress_block(std::span<const std::uint8_t> in,
                                            std::vector<std::int32_t>& table) {
  std::fill(table.begin(), table.end(), -1);
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 2 + 32);
  const std::size_t n = in.size();
  std::size_t i = 0;
  std::size_t anchor = 0;
  while (i + kMinMatch <= n) {
    const std::uint32_t seq = *load_u32le(in, i);
    const std::uint32_t h = hash4(seq);
    const std::int32_t cand = table[h];
    table[h] = static_cast<std::int32_t>(i);
    if (cand >= 0) {
      const auto cpos = static_cast<std::size_t>(cand);
      if (*load_u32le(in, cpos) == seq) {
        std::size_t mlen = kMinMatch;
        while (i + mlen < n && in[i + mlen] == in[cpos + mlen]) ++mlen;
        emit_sequence(out, in.subspan(anchor, i - anchor), i - cpos, mlen);
        i += mlen;
        anchor = i;
        continue;
      }
    }
    ++i;
  }
  emit_final_literals(out, in.subspan(anchor));
  return out;
}

/// Decodes one LZ block body, appending exactly `raw_len` bytes to `out`.
/// On any inconsistency `out` is restored to its entry size.
[[nodiscard]] bool lz_decompress_block(std::span<const std::uint8_t> body,
                                       std::size_t raw_len,
                                       std::vector<std::uint8_t>& out) {
  const std::size_t base = out.size();
  out.resize(base + raw_len);
  const std::size_t iend = body.size();
  const std::size_t oend = base + raw_len;
  std::size_t ip = 0;
  std::size_t op = base;
  bool ok = false;
  while (ip < iend) {
    const std::uint8_t tok = body[ip++];
    std::size_t lit = tok >> 4;
    if (lit == 15 && !read_ext_len(body, ip, lit)) break;
    if (lit > iend - ip || lit > oend - op) break;
    std::copy_n(body.begin() + static_cast<std::ptrdiff_t>(ip), lit,
                out.begin() + static_cast<std::ptrdiff_t>(op));
    ip += lit;
    op += lit;
    if (ip == iend) {  // literals-only tail: the block ends here
      ok = op == oend;
      break;
    }
    const auto offset = load_u16le(body, ip);
    if (!offset) break;
    ip += 2;
    std::size_t mlen = tok & 0xf;
    if (mlen == 15 && !read_ext_len(body, ip, mlen)) break;
    mlen += kMinMatch;
    const std::size_t off = *offset;
    if (off == 0 || off > op - base || mlen > oend - op) break;
    // Byte-at-a-time on purpose: off < mlen self-referential copies (run
    // extension) must observe the bytes this same loop just produced.
    for (std::size_t k = 0; k < mlen; ++k, ++op) out[op] = out[op - off];
  }
  if (!ok) out.resize(base);
  return ok;
}

struct BlockFrame {
  std::size_t raw_len = 0;
  std::size_t body_len = 0;
  std::uint32_t crc = 0;
  std::uint8_t method = 0;
};

/// Parses + sanity-checks one block header at `off`, including that the
/// declared body fits in the remaining stored bytes. nullopt = torn or
/// malformed frame.
[[nodiscard]] std::optional<BlockFrame> parse_frame(
    std::span<const std::uint8_t> stored, std::size_t off) noexcept {
  ByteReader r(stored.subspan(off));
  BlockFrame f;
  f.raw_len = r.u32le();
  f.body_len = r.u32le();
  f.crc = r.u32le();
  f.method = r.u8();
  if (!r.ok()) return std::nullopt;
  if (f.raw_len == 0 || f.raw_len > kBlockRawSize || f.method > 1) {
    return std::nullopt;
  }
  if (f.body_len > stored.size() - off - kBlockHeaderSize) return std::nullopt;
  if (f.method == 0 && f.body_len != f.raw_len) return std::nullopt;
  return f;
}

}  // namespace

std::vector<std::uint8_t> block_compress(std::span<const std::uint8_t> raw) {
  std::vector<std::uint8_t> out;
  if (raw.empty()) return out;
  std::vector<std::int32_t> table(std::size_t{1} << kHashBits);
  std::vector<std::uint8_t> body;
  for (std::size_t pos = 0; pos < raw.size(); pos += kBlockRawSize) {
    const auto chunk =
        raw.subspan(pos, std::min(kBlockRawSize, raw.size() - pos));
    body = lz_compress_block(chunk, table);
    std::uint8_t method = 1;
    if (body.size() >= chunk.size()) {  // incompressible: store verbatim
      body.clear();
      append_bytes(body, chunk);
      method = 0;
    }
    ByteWriter w(out);
    w.u32le(static_cast<std::uint32_t>(chunk.size()));
    w.u32le(static_cast<std::uint32_t>(body.size()));
    w.u32le(crc32(body));
    w.u8(method);
    append_bytes(out, body);
  }
  return out;
}

bool BlockCursor::next(std::vector<std::uint8_t>& out) {
  if (damaged_ || off_ == stored_.size()) return false;
  const auto frame = parse_frame(stored_, off_);
  if (!frame) {
    damaged_ = true;
    return false;
  }
  const auto body = stored_.subspan(off_ + kBlockHeaderSize, frame->body_len);
  if (crc32(body) != frame->crc) {
    damaged_ = true;
    return false;
  }
  bool ok = true;
  if (frame->method == 0) {
    append_bytes(out, body);
  } else {
    ok = lz_decompress_block(body, frame->raw_len, out);
  }
  if (!ok) {
    damaged_ = true;
    return false;
  }
  off_ += kBlockHeaderSize + frame->body_len;
  return true;
}

bool block_decompress(std::span<const std::uint8_t> stored,
                      std::vector<std::uint8_t>& out) {
  BlockCursor cursor(stored);
  while (cursor.next(out)) {
  }
  return cursor.exhausted();
}

BlockScan scan_blocks(std::span<const std::uint8_t> stored) noexcept {
  // Framing-level validation only: headers consistent, bodies present,
  // CRCs good. A malformed LZ body with a valid CRC (a buggy writer, not
  // disk damage) is still caught later by the bounds-checked decoder.
  BlockScan scan;
  std::size_t off = 0;
  while (off < stored.size()) {
    const auto frame = parse_frame(stored, off);
    if (!frame) return scan;
    const auto body = stored.subspan(off + kBlockHeaderSize, frame->body_len);
    if (crc32(body) != frame->crc) {
      scan.crc_failed = true;
      return scan;
    }
    off += kBlockHeaderSize + frame->body_len;
    ++scan.blocks;
    scan.raw_prefix += frame->raw_len;
    scan.stored_prefix = off;
  }
  scan.complete = true;
  return scan;
}

}  // namespace gorilla::util
