// A fixed-size worker pool for the sharded study engine.
//
// The pool is deliberately dumb: it runs opaque jobs in submission order on
// N OS threads and knows nothing about determinism. All ordering guarantees
// live one layer up in sim::ShardedExecutor, which slices work into
// fixed-size chunks and merges results on the calling thread in canonical
// chunk order — the pool only supplies the concurrency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gorilla::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains nothing: outstanding jobs run to completion, then workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; runs on some worker after all earlier jobs started.
  void submit(std::function<void()> job);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Hardware concurrency with a sane floor (hardware_concurrency() may
  /// legally return 0).
  [[nodiscard]] static int default_threads() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gorilla::util
