// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for artifact
// integrity framing.
//
// GORCOLv2 sections carry a CRC over their payload so a torn write, a
// flipped bit on disk, or a truncated copy is detected at load time instead
// of silently replaying garbage into an analysis. The implementation is the
// classic byte-at-a-time table walk — fast enough that checksumming is
// noise next to the varint codec (see BENCH_engine.json), and constexpr so
// tests can pin golden values at compile time.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace gorilla::util {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental CRC-32 accumulator: feed byte ranges in any chunking, read
/// value() at any point (chunking does not change the result).
class Crc32 {
 public:
  constexpr void update(std::span<const std::uint8_t> data) noexcept {
    std::uint32_t c = state_;
    for (const std::uint8_t b : data) {
      c = detail::kCrc32Table[(c ^ b) & 0xffu] ^ (c >> 8);
    }
    state_ = c;
  }

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return state_ ^ 0xffffffffu;
  }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience over a whole buffer.
[[nodiscard]] constexpr std::uint32_t crc32(
    std::span<const std::uint8_t> data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace gorilla::util
