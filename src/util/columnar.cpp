#include "util/columnar.h"

#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/crc32.h"

namespace gorilla::util {

namespace {

constexpr std::uint8_t kMagicV1[8] = {'G', 'O', 'R', 'C', 'O', 'L', 'v', '1'};
constexpr std::uint8_t kMagicV2[8] = {'G', 'O', 'R', 'C', 'O', 'L', 'v', '2'};
constexpr std::size_t kMaxSections = 4096;

/// Flushes a closed file's (or directory's) pages to stable storage. The
/// ofstream flush only reaches the kernel; without this a rename + crash
/// can still surface an empty file after reboot.
bool fsync_path(const char* path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

void fsync_parent_dir(const std::string& path) {
  // Best effort: syncing the directory makes the rename itself durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  (void)fsync_path(dir.c_str());
}

/// Shared loader. Strict mode reproduces load()'s all-or-nothing contract;
/// prefix mode keeps every section up to the first truncated or CRC-failed
/// one and reports what it saw.
std::optional<ColumnArchive> load_impl(std::istream& in, bool strict,
                                       ArchiveReadReport& report) {
  report = ArchiveReadReport{};
  std::uint64_t offset = 0;

  std::uint8_t fixed[12];
  if (!read_exact(in, fixed)) {
    report.truncated_at = offset;
    return std::nullopt;
  }
  ByteReader fr(fixed);
  int version = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint8_t m = fr.u8();
    if (i < 7) {
      if (m != kMagicV1[i]) return std::nullopt;
    } else if (m == kMagicV1[7]) {
      version = 1;
    } else if (m == kMagicV2[7]) {
      version = 2;
    } else {
      return std::nullopt;
    }
  }
  const std::uint32_t header_len = fr.u32le();
  if (!fr.ok() || header_len > (1u << 20)) return std::nullopt;
  offset += sizeof(fixed);

  ColumnArchive archive;
  archive.header.resize(header_len);
  if (header_len > 0 && !read_exact(in, archive.header)) {
    report.truncated_at = offset;
    return std::nullopt;
  }
  offset += header_len;

  if (version == 2) {
    std::uint8_t crc_raw[4];
    if (!read_exact(in, crc_raw)) {
      report.truncated_at = offset;
      return std::nullopt;
    }
    ByteReader hr(crc_raw);
    if (hr.u32le() != crc32(archive.header)) {
      // A corrupt header poisons everything downstream — fatal even for
      // the prefix loader.
      ++report.crc_failures;
      return std::nullopt;
    }
    offset += sizeof(crc_raw);
  }
  // The header survived (and, for v2, checked out). From here on the prefix
  // loader always has something to return: a file torn at the section count
  // — e.g. a recording killed before week 0 was flushed — yields a valid
  // header-only archive, not a load failure.
  report.header_ok = true;

  std::uint8_t count_raw[4];
  if (!read_exact(in, count_raw)) {
    report.truncated_at = offset;
    if (strict) return std::nullopt;
    return archive;
  }
  ByteReader cr(count_raw);
  const std::uint32_t count = cr.u32le();
  if (count > kMaxSections) {
    if (strict) return std::nullopt;
    report.truncated_at = offset;
    return archive;
  }
  offset += sizeof(count_raw);

  for (std::uint32_t s = 0; s < count; ++s) {
    std::uint8_t name_len_raw[1];
    if (!read_exact(in, name_len_raw)) {
      report.truncated_at = offset;
      if (strict) return std::nullopt;
      return archive;
    }
    const std::size_t name_len = name_len_raw[0];
    offset += 1;
    std::vector<std::uint8_t> name_bytes(name_len);
    if (name_len > 0 && !read_exact(in, name_bytes)) {
      report.truncated_at = offset;
      if (strict) return std::nullopt;
      return archive;
    }
    offset += name_len;

    const std::size_t frame_len = version == 2 ? 12 : 8;
    std::uint8_t frame_raw[12];
    if (!read_exact(in, std::span<std::uint8_t>(frame_raw, frame_len))) {
      report.truncated_at = offset;
      if (strict) return std::nullopt;
      return archive;
    }
    ByteReader sr(std::span<const std::uint8_t>(frame_raw, frame_len));
    const std::uint64_t payload_len = sr.u64be();
    const std::uint32_t payload_crc = version == 2 ? sr.u32le() : 0;
    // A recorded study is bounded by memory anyway; refuse absurd sizes
    // rather than let a corrupt length drive a giant allocation.
    if (payload_len > (1ull << 40)) {
      if (strict) return std::nullopt;
      report.truncated_at = offset;
      return archive;
    }
    offset += frame_len;

    std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_len));
    if (payload_len > 0 && !read_exact(in, payload)) {
      report.truncated_at = offset;
      if (strict) return std::nullopt;
      return archive;
    }
    offset += payload_len;
    if (version == 2 && crc32(payload) != payload_crc) {
      ++report.crc_failures;
      if (strict) return std::nullopt;
      // Framing was intact but the bytes are damaged: the durable prefix
      // ends at the previous section.
      return archive;
    }
    std::string name(name_bytes.begin(), name_bytes.end());
    archive.sections.emplace_back(std::move(name), std::move(payload));
    ++report.sections_ok;
  }
  report.complete = true;
  return archive;
}

}  // namespace

const std::vector<std::uint8_t>* ColumnArchive::find(
    std::string_view name) const noexcept {
  for (const auto& [n, bytes] : sections) {
    if (n == name) return &bytes;
  }
  return nullptr;
}

bool ColumnArchive::save(std::ostream& out) const {
  std::vector<std::uint8_t> scratch;
  ByteWriter w(scratch);
  w.bytes(kMagicV2);
  w.u32le(static_cast<std::uint32_t>(header.size()));
  w.bytes(header);
  w.u32le(crc32(header));
  w.u32le(static_cast<std::uint32_t>(sections.size()));
  if (!write_all(out, scratch)) return false;
  for (const auto& [name, bytes] : sections) {
    scratch.clear();
    ByteWriter sw(scratch);
    sw.u8(static_cast<std::uint8_t>(name.size()));
    for (const char c : name) sw.u8(static_cast<std::uint8_t>(c));
    sw.u64be(bytes.size());
    sw.u32le(crc32(bytes));
    if (!write_all(out, scratch)) return false;
    if (!write_all(out, bytes)) return false;
  }
  return true;
}

std::optional<ColumnArchive> ColumnArchive::load(std::istream& in) {
  ArchiveReadReport report;
  return load_impl(in, /*strict=*/true, report);
}

std::optional<ColumnArchive> ColumnArchive::load_prefix(
    std::istream& in, ArchiveReadReport* report) {
  ArchiveReadReport local;
  return load_impl(in, /*strict=*/false, report != nullptr ? *report : local);
}

bool ColumnArchive::save_file(const std::string& path) const {
  // Temp-file + rename: the destination either keeps its previous contents
  // or atomically becomes the complete new artifact — a crash, ENOSPC, or
  // injected short write can never leave a torn file at `path`.
  const std::string tmp = path + ".tmp";
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    ok = static_cast<bool>(out) && save(out);
    if (ok) {
      out.flush();
      ok = static_cast<bool>(out);
    }
  }
  ok = ok && fsync_path(tmp.c_str());
  ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

std::optional<ColumnArchive> ColumnArchive::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return load(in);
}

std::optional<ColumnArchive> ColumnArchive::load_file_prefix(
    const std::string& path, ArchiveReadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (report != nullptr) *report = ArchiveReadReport{};
    return std::nullopt;
  }
  return load_prefix(in, report);
}

}  // namespace gorilla::util
