#include "util/columnar.h"

#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/crc32.h"
#include "util/thread_pool.h"

namespace gorilla::util {

namespace {

constexpr std::uint8_t kMagicV1[8] = {'G', 'O', 'R', 'C', 'O', 'L', 'v', '1'};
constexpr std::uint8_t kMagicV2[8] = {'G', 'O', 'R', 'C', 'O', 'L', 'v', '2'};
constexpr std::uint8_t kMagicV3[8] = {'G', 'O', 'R', 'C', 'O', 'L', 'v', '3'};
constexpr std::size_t kMaxSections = 4096;
constexpr std::uint64_t kMaxPayload = 1ull << 40;
/// Below this size the block header + section framing overhead outweighs
/// any win; tiny sections are stored raw even in v3.
constexpr std::size_t kCompressMin = 64;

/// Flushes a closed file's (or directory's) pages to stable storage. The
/// ofstream flush only reaches the kernel; without this a rename + crash
/// can still surface an empty file after reboot.
bool fsync_path(const char* path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

void fsync_parent_dir(const std::string& path) {
  // Best effort: syncing the directory makes the rename itself durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  (void)fsync_path(dir.c_str());
}

/// Keeps the longest intact block prefix of a damaged v3 section payload
/// and pinpoints the first bad block in the report. `payload_offset` is
/// the absolute stream offset of the section's stored bytes.
void recover_block_prefix(std::vector<std::uint8_t>&& payload,
                          std::string name, std::uint64_t payload_offset,
                          ColumnArchive& archive, ArchiveReadReport& report) {
  const BlockScan scan = scan_blocks(payload);
  if (scan.crc_failed) ++report.crc_failures;
  report.damaged_section = name;
  report.bad_block = scan.blocks;
  report.bad_block_offset = payload_offset + scan.stored_prefix;
  if (scan.blocks == 0) return;
  payload.resize(scan.stored_prefix);
  ColumnArchive::Section section;
  section.name = std::move(name);
  section.bytes = std::move(payload);
  section.storage = ColumnArchive::SectionStorage::kBlocks;
  section.raw_len = scan.raw_prefix;
  archive.sections.push_back(std::move(section));
  report.partial_section = true;
}

/// Shared loader. Strict mode reproduces load()'s all-or-nothing contract;
/// prefix mode keeps every section up to the first truncated or CRC-failed
/// one — and, for a v3 block-compressed section, every intact block of the
/// damaged one — and reports what it saw.
std::optional<ColumnArchive> load_impl(std::istream& in, bool strict,
                                       ArchiveReadReport& report) {
  report = ArchiveReadReport{};
  std::uint64_t offset = 0;

  std::uint8_t fixed[12];
  if (!read_exact(in, fixed)) {
    report.truncated_at = offset;
    return std::nullopt;
  }
  ByteReader fr(fixed);
  int version = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint8_t m = fr.u8();
    if (i < 7) {
      if (m != kMagicV1[i]) return std::nullopt;
    } else if (m == kMagicV1[7]) {
      version = 1;
    } else if (m == kMagicV2[7]) {
      version = 2;
    } else if (m == kMagicV3[7]) {
      version = 3;
    } else {
      return std::nullopt;
    }
  }
  const std::uint32_t header_len = fr.u32le();
  if (!fr.ok() || header_len > (1u << 20)) return std::nullopt;
  offset += sizeof(fixed);

  ColumnArchive archive;
  archive.version = version;
  archive.header.resize(header_len);
  if (header_len > 0 && !read_exact(in, archive.header)) {
    report.truncated_at = offset;
    return std::nullopt;
  }
  offset += header_len;

  if (version >= 2) {
    std::uint8_t crc_raw[4];
    if (!read_exact(in, crc_raw)) {
      report.truncated_at = offset;
      return std::nullopt;
    }
    ByteReader hr(crc_raw);
    if (hr.u32le() != crc32(archive.header)) {
      // A corrupt header poisons everything downstream — fatal even for
      // the prefix loader.
      ++report.crc_failures;
      return std::nullopt;
    }
    offset += sizeof(crc_raw);
  }
  // The header survived (and, for v2+, checked out). From here on the prefix
  // loader always has something to return: a file torn at the section count
  // — e.g. a recording killed before week 0 was flushed — yields a valid
  // header-only archive, not a load failure.
  report.header_ok = true;

  std::uint8_t count_raw[4];
  if (!read_exact(in, count_raw)) {
    report.truncated_at = offset;
    if (strict) return std::nullopt;
    return archive;
  }
  ByteReader cr(count_raw);
  const std::uint32_t count = cr.u32le();
  if (count > kMaxSections) {
    if (strict) return std::nullopt;
    report.truncated_at = offset;
    return archive;
  }
  offset += sizeof(count_raw);

  for (std::uint32_t s = 0; s < count; ++s) {
    std::uint8_t name_len_raw[1];
    if (!read_exact(in, name_len_raw)) {
      report.truncated_at = offset;
      if (strict) return std::nullopt;
      return archive;
    }
    const std::size_t name_len = name_len_raw[0];
    offset += 1;
    std::vector<std::uint8_t> name_bytes(name_len);
    if (name_len > 0 && !read_exact(in, name_bytes)) {
      report.truncated_at = offset;
      if (strict) return std::nullopt;
      return archive;
    }
    offset += name_len;
    std::string name(name_bytes.begin(), name_bytes.end());

    // Section frame: v1 = u64be length; v2 = + u32le CRC; v3 = u8 storage,
    // u64be stored length, u64be uncompressed length, u32le CRC.
    const std::size_t frame_len = version == 3 ? 21 : (version == 2 ? 12 : 8);
    std::uint8_t frame_raw[21];
    if (!read_exact(in, std::span<std::uint8_t>(frame_raw, frame_len))) {
      report.truncated_at = offset;
      if (strict) return std::nullopt;
      return archive;
    }
    ByteReader sr(std::span<const std::uint8_t>(frame_raw, frame_len));
    const std::uint8_t storage = version == 3 ? sr.u8() : 0;
    const std::uint64_t payload_len = sr.u64be();
    const std::uint64_t raw_len = version == 3 ? sr.u64be() : payload_len;
    const std::uint32_t payload_crc = version >= 2 ? sr.u32le() : 0;
    // A recorded study is bounded by memory anyway; refuse absurd sizes
    // rather than let a corrupt length drive a giant allocation. The rest
    // of the frame must be self-consistent too.
    const bool frame_bad =
        payload_len > kMaxPayload || raw_len > kMaxPayload || storage > 1 ||
        (storage == 0 && raw_len != payload_len);
    if (frame_bad) {
      if (strict) return std::nullopt;
      report.truncated_at = offset;
      return archive;
    }
    offset += frame_len;
    const bool blocks =
        storage == static_cast<std::uint8_t>(
                       ColumnArchive::SectionStorage::kBlocks);

    std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_len));
    const std::size_t got = payload_len > 0 ? read_some(in, payload) : 0;
    if (got < payload_len) {
      report.truncated_at = offset;
      if (strict) return std::nullopt;
      if (blocks) {
        // Torn mid-section: keep the intact leading blocks.
        payload.resize(got);
        recover_block_prefix(std::move(payload), std::move(name), offset,
                             archive, report);
      }
      return archive;
    }
    if (version >= 2 && crc32(payload) != payload_crc) {
      if (strict) {
        ++report.crc_failures;
        return std::nullopt;
      }
      // Framing was intact but the bytes are damaged: the durable prefix
      // ends inside this section — at the previous section for raw
      // payloads, at the first damaged block for compressed ones.
      if (blocks) {
        recover_block_prefix(std::move(payload), std::move(name), offset,
                             archive, report);
      }
      // At least one checksum failed by construction; recover_block_prefix
      // already counted the block-level one when the scan pinned it down.
      if (report.crc_failures == 0) ++report.crc_failures;
      return archive;
    }
    offset += payload_len;
    ColumnArchive::Section section;
    section.name = std::move(name);
    section.bytes = std::move(payload);
    section.storage = blocks ? ColumnArchive::SectionStorage::kBlocks
                             : ColumnArchive::SectionStorage::kRaw;
    section.raw_len = raw_len;
    archive.sections.push_back(std::move(section));
    ++report.sections_ok;
  }
  report.complete = true;
  return archive;
}

void write_section_frame(ByteWriter& w, const std::string& name) {
  w.u8(static_cast<std::uint8_t>(name.size()));
  for (const char c : name) w.u8(static_cast<std::uint8_t>(c));
}

}  // namespace

const ColumnArchive::Section* ColumnArchive::find(
    std::string_view name) const noexcept {
  for (const auto& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

ColumnReader ColumnArchive::column(std::string_view name) const noexcept {
  const Section* section = find(name);
  if (section == nullptr) {
    return ColumnReader(std::span<const std::uint8_t>{});
  }
  if (section->storage == SectionStorage::kBlocks) {
    return {ColumnReader::BlocksTag{}, section->bytes};
  }
  return ColumnReader(std::span<const std::uint8_t>(section->bytes));
}

void ColumnArchive::inflate(ThreadPool* pool) {
  const auto inflate_one = [](Section& s) {
    if (s.storage != SectionStorage::kBlocks) return;
    std::vector<std::uint8_t> raw;
    raw.reserve(static_cast<std::size_t>(s.raw_len));
    // A damaged tail (possible only on a prefix-recovered partial section)
    // simply ends early — exactly where the streaming reader would stop.
    (void)block_decompress(s.bytes, raw);
    s.bytes = std::move(raw);
    s.storage = SectionStorage::kRaw;
    s.raw_len = s.bytes.size();
  };
  if (pool == nullptr || pool->size() <= 1) {
    for (Section& s : sections) inflate_one(s);
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = 0;
  for (Section& s : sections) {
    if (s.storage != SectionStorage::kBlocks) continue;
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++pending;
    }
    pool->submit([&inflate_one, &s, &mu, &cv, &pending] {
      inflate_one(s);
      const std::lock_guard<std::mutex> lock(mu);
      --pending;  // NOLINT(shard-mutation): completion counter, held under mu
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&pending] { return pending == 0; });
}

bool ColumnArchive::save(std::ostream& out) const {
  const bool v3 = version != 2;
  std::vector<std::uint8_t> scratch;
  ByteWriter w(scratch);
  w.bytes(v3 ? kMagicV3 : kMagicV2);
  w.u32le(static_cast<std::uint32_t>(header.size()));
  w.bytes(header);
  w.u32le(crc32(header));
  w.u32le(static_cast<std::uint32_t>(sections.size()));
  if (!write_all(out, scratch)) return false;
  std::vector<std::uint8_t> stored;
  for (const Section& section : sections) {
    // Pick the stored representation. Compression happens here, at save
    // time: in-memory sections stay raw so ColumnWriter appends stay O(1).
    const std::vector<std::uint8_t>* payload = &section.bytes;
    auto storage = section.storage;
    std::uint64_t raw_len = section.raw_len;
    stored.clear();
    if (v3) {
      if (storage == SectionStorage::kRaw &&
          section.bytes.size() >= kCompressMin) {
        stored = block_compress(section.bytes);
        payload = &stored;
        storage = SectionStorage::kBlocks;
        raw_len = section.bytes.size();
      }
    } else if (storage == SectionStorage::kBlocks) {
      // Legacy target but compressed in memory (a re-saved v3 load):
      // inflate this section into the v2 frame.
      if (!block_decompress(section.bytes, stored)) return false;
      payload = &stored;
      storage = SectionStorage::kRaw;
    }
    // Raw payloads carry their own length; never trust a stale raw_len
    // from a caller that mutated `bytes` after construction.
    if (storage == SectionStorage::kRaw) raw_len = payload->size();
    scratch.clear();
    ByteWriter sw(scratch);
    write_section_frame(sw, section.name);
    if (v3) {
      sw.u8(static_cast<std::uint8_t>(storage));
      sw.u64be(payload->size());
      sw.u64be(raw_len);
      sw.u32le(crc32(*payload));
    } else {
      sw.u64be(payload->size());
      sw.u32le(crc32(*payload));
    }
    if (!write_all(out, scratch)) return false;
    if (!write_all(out, *payload)) return false;
  }
  return true;
}

std::optional<ColumnArchive> ColumnArchive::load(std::istream& in) {
  ArchiveReadReport report;
  return load_impl(in, /*strict=*/true, report);
}

std::optional<ColumnArchive> ColumnArchive::load_prefix(
    std::istream& in, ArchiveReadReport* report) {
  ArchiveReadReport local;
  return load_impl(in, /*strict=*/false, report != nullptr ? *report : local);
}

bool ColumnArchive::save_file(const std::string& path) const {
  // Temp-file + rename: the destination either keeps its previous contents
  // or atomically becomes the complete new artifact — a crash, ENOSPC, or
  // injected short write can never leave a torn file at `path`.
  const std::string tmp = path + ".tmp";
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    ok = static_cast<bool>(out) && save(out);
    if (ok) {
      out.flush();
      ok = static_cast<bool>(out);
    }
  }
  ok = ok && fsync_path(tmp.c_str());
  ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  fsync_parent_dir(path);
  return true;
}

std::optional<ColumnArchive> ColumnArchive::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return load(in);
}

std::optional<ColumnArchive> ColumnArchive::load_file_prefix(
    const std::string& path, ArchiveReadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (report != nullptr) *report = ArchiveReadReport{};
    return std::nullopt;
  }
  return load_prefix(in, report);
}

}  // namespace gorilla::util
