#include "util/columnar.h"

#include <fstream>

namespace gorilla::util {

namespace {

constexpr std::uint8_t kMagic[8] = {'G', 'O', 'R', 'C', 'O', 'L', 'v', '1'};
constexpr std::size_t kMaxSections = 4096;

}  // namespace

const std::vector<std::uint8_t>* ColumnArchive::find(
    std::string_view name) const noexcept {
  for (const auto& [n, bytes] : sections) {
    if (n == name) return &bytes;
  }
  return nullptr;
}

void ColumnArchive::save(std::ostream& out) const {
  std::vector<std::uint8_t> scratch;
  ByteWriter w(scratch);
  w.bytes(kMagic);
  w.u32le(static_cast<std::uint32_t>(header.size()));
  w.bytes(header);
  w.u32le(static_cast<std::uint32_t>(sections.size()));
  write_all(out, scratch);
  for (const auto& [name, bytes] : sections) {
    scratch.clear();
    ByteWriter sw(scratch);
    sw.u8(static_cast<std::uint8_t>(name.size()));
    for (const char c : name) sw.u8(static_cast<std::uint8_t>(c));
    sw.u64be(bytes.size());
    write_all(out, scratch);
    write_all(out, bytes);
  }
}

std::optional<ColumnArchive> ColumnArchive::load(std::istream& in) {
  std::uint8_t fixed[12];
  if (!read_exact(in, fixed)) return std::nullopt;
  ByteReader fr(fixed);
  for (const std::uint8_t m : kMagic) {
    if (fr.u8() != m) return std::nullopt;
  }
  const std::uint32_t header_len = fr.u32le();
  if (!fr.ok() || header_len > (1u << 20)) return std::nullopt;

  ColumnArchive archive;
  archive.header.resize(header_len);
  if (header_len > 0 && !read_exact(in, archive.header)) return std::nullopt;

  std::uint8_t count_raw[4];
  if (!read_exact(in, count_raw)) return std::nullopt;
  ByteReader cr(count_raw);
  const std::uint32_t count = cr.u32le();
  if (count > kMaxSections) return std::nullopt;

  for (std::uint32_t s = 0; s < count; ++s) {
    std::uint8_t name_len_raw[1];
    if (!read_exact(in, name_len_raw)) return std::nullopt;
    const std::size_t name_len = name_len_raw[0];
    std::vector<std::uint8_t> name_bytes(name_len);
    if (name_len > 0 && !read_exact(in, name_bytes)) return std::nullopt;
    std::uint8_t size_raw[8];
    if (!read_exact(in, size_raw)) return std::nullopt;
    ByteReader sr(size_raw);
    const std::uint64_t payload_len = sr.u64be();
    // A recorded study is bounded by memory anyway; refuse absurd sizes
    // rather than let a corrupt length drive a giant allocation.
    if (payload_len > (1ull << 40)) return std::nullopt;
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_len));
    if (payload_len > 0 && !read_exact(in, payload)) return std::nullopt;
    std::string name(name_bytes.begin(), name_bytes.end());
    archive.sections.emplace_back(std::move(name), std::move(payload));
  }
  return archive;
}

bool ColumnArchive::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  save(out);
  out.flush();
  return static_cast<bool>(out);
}

std::optional<ColumnArchive> ColumnArchive::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return load(in);
}

}  // namespace gorilla::util
