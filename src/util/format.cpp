#include "util/format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gorilla::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(width[c] - row[c].size() + (c + 1 < row.size() ? 2 : 0), ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string si_count(double v) {
  char buf[32];
  const double a = std::fabs(v);
  if (a >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.2fT", v / 1e12);
  } else if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fB", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (a >= 1e4) {
    std::snprintf(buf, sizeof buf, "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

std::string bytes_str(double v) {
  static constexpr const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  while (std::fabs(v) >= 1000.0 && u < 5) {
    v /= 1000.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
  return buf;
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string compact(double v) {
  const double a = std::fabs(v);
  char buf[32];
  // Exact zero test on purpose: 0.0 prints as "0", not "0.00e+00".
  if (a != 0.0 && (a < 1e-3 || a >= 1e7)) {  // NOLINT(float-eq)
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else if (a >= 100.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

namespace {

std::string render_sparkline(const std::vector<double>& series, bool log_scale) {
  static constexpr const char* glyphs[] = {"▁", "▂", "▃", "▄",
                                           "▅", "▆", "▇", "█"};
  if (series.empty()) return "";
  std::vector<double> vals = series;
  if (log_scale) {
    // 0.0 is a literal "unset" sentinel here, never a computed value.
    double min_pos = 0.0;
    for (double v : vals)
      if (v > 0.0 && (min_pos == 0.0 || v < min_pos)) min_pos = v;  // NOLINT(float-eq)
    if (min_pos == 0.0) min_pos = 1.0;  // NOLINT(float-eq)
    for (auto& v : vals) v = std::log10(std::max(v, min_pos / 10.0));
  }
  const auto [mn_it, mx_it] = std::minmax_element(vals.begin(), vals.end());
  const double mn = *mn_it, mx = *mx_it;
  std::string out;
  for (double v : vals) {
    int idx = mx > mn ? static_cast<int>((v - mn) / (mx - mn) * 7.999) : 0;
    idx = std::clamp(idx, 0, 7);
    out += glyphs[idx];
  }
  return out;
}

}  // namespace

std::string log_sparkline(const std::vector<double>& series) {
  return render_sparkline(series, /*log_scale=*/true);
}

std::string sparkline(const std::vector<double>& series) {
  return render_sparkline(series, /*log_scale=*/false);
}

std::string banner(const std::string& title) {
  std::string out = "== " + title + " ==";
  return out + "\n" + std::string(out.size(), '=') + "\n";
}

}  // namespace gorilla::util
