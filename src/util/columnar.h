// Compact columnar serialization for recorded event streams.
//
// A ColumnWriter appends varint/zigzag/fixed-width values to one named
// column buffer; a ColumnArchive bundles the columns into a sectioned file
// behind an opaque caller-defined header. All byte-level encoding rides on
// ByteReader/ByteWriter (the tree's one sanctioned byte<->integer seam), so
// the artifact format inherits the same sticky-truncation discipline as the
// wire parsers: a short or corrupt file reads as !ok(), never as garbage.
//
// GORCOLv3 adds an in-repo block codec (util/block_codec.h): section
// payloads are stored as independently framed 64 KiB compressed blocks,
// and ColumnReader decodes them block-by-block from the borrowed stored
// bytes — the archive never inflates a whole file (or section) to a
// vector unless ColumnArchive::inflate() is explicitly asked to trade
// memory for flat-decode speed.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/block_codec.h"
#include "util/bytes.h"

namespace gorilla::util {

class ThreadPool;

/// ZigZag maps signed to unsigned so small-magnitude values varint-encode
/// short regardless of sign.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Append-only typed column. Owns its byte buffer; freely movable.
class ColumnWriter {
 public:
  void put_u8(std::uint8_t v) { ByteWriter(buf_).u8(v); }
  void put_u16(std::uint16_t v) { ByteWriter(buf_).u16le(v); }
  void put_u32(std::uint32_t v) { ByteWriter(buf_).u32le(v); }

  void put_varint(std::uint64_t v) {
    ByteWriter w(buf_);
    while (v >= 0x80) {
      w.u8(static_cast<std::uint8_t>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    w.u8(static_cast<std::uint8_t>(v));
  }

  void put_zigzag(std::int64_t v) { put_varint(zigzag_encode(v)); }

  void put_f64(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    ByteWriter w(buf_);
    w.u32le(static_cast<std::uint32_t>(bits));
    w.u32le(static_cast<std::uint32_t>(bits >> 32));
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buf_;
  }
  /// Moves the encoded bytes out (the writer is empty afterwards).
  [[nodiscard]] std::vector<std::uint8_t> take_buffer() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Forward-only typed reads over one column. Failure is sticky: after any
/// short, overlong, or block-damaged read, ok() stays false and every
/// further get returns 0.
///
/// Two sources: a flat borrowed span (v1/v2 payloads, inflated sections),
/// or a GORCOLv3 block stream decoded one block at a time into an internal
/// scratch window — the streaming path borrows the stored bytes and never
/// materializes the whole section. Values split across a block boundary
/// are handled by carrying the unread tail (at most a few bytes) into the
/// next window.
class ColumnReader {
 public:
  explicit ColumnReader(std::span<const std::uint8_t> data) noexcept
      : win_(data) {}

  struct BlocksTag {};
  /// Streaming reader over block-compressed stored bytes (borrowed).
  ColumnReader(BlocksTag, std::span<const std::uint8_t> stored) noexcept
      : cursor_(stored), streaming_(true) {}

  // The scratch window is self-referential: moving is safe (vector storage
  // is stable across moves), copying would alias another reader's scratch.
  ColumnReader(const ColumnReader&) = delete;
  ColumnReader& operator=(const ColumnReader&) = delete;
  ColumnReader(ColumnReader&&) noexcept = default;
  ColumnReader& operator=(ColumnReader&&) noexcept = default;

  [[nodiscard]] bool ok() const noexcept { return !bad_; }
  [[nodiscard]] bool at_end() const noexcept {
    return win_.size() - pos_ == 0 && (!streaming_ || cursor_.exhausted());
  }

  std::uint8_t get_u8() noexcept {
    if (!ensure(1)) return fail();
    return win_[pos_++];
  }

  std::uint16_t get_u16() noexcept {
    if (!ensure(2)) return fail();
    const std::uint16_t v = *load_u16le(win_, pos_);
    pos_ += 2;
    return v;
  }

  std::uint32_t get_u32() noexcept {
    if (!ensure(4)) return fail();
    const std::uint32_t v = *load_u32le(win_, pos_);
    pos_ += 4;
    return v;
  }

  std::uint64_t get_varint() noexcept {
    if (bad_) return 0;
    std::uint64_t v = 0;
    int n = decode_varint(win_, pos_, v);
    if (n == 0) {
      // Truncated-in-window or genuinely bad: widen to a full 10-byte view
      // (pulling blocks as needed), then the verdict is final.
      while (win_.size() - pos_ < 10 && refill()) {
      }
      n = decode_varint(win_, pos_, v);
      if (n == 0) return fail();
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  std::int64_t get_zigzag() noexcept { return zigzag_decode(get_varint()); }

  double get_f64() noexcept {
    if (!ensure(8)) return 0.0;
    const std::uint64_t lo = *load_u32le(win_, pos_);
    const std::uint64_t hi = *load_u32le(win_, pos_ + 4);
    pos_ += 8;
    return std::bit_cast<double>((hi << 32) | lo);
  }

 private:
  std::uint8_t fail() noexcept {
    bad_ = true;
    return 0;
  }

  [[nodiscard]] bool ensure(std::size_t n) noexcept {
    if (bad_) return false;
    while (win_.size() - pos_ < n) {
      if (!refill()) {
        bad_ = true;
        return false;
      }
    }
    return true;
  }

  /// Carries the unread tail to the front of the scratch buffer and
  /// decodes the next block behind it. False at stream end or damage.
  bool refill() noexcept {
    if (!streaming_ || bad_) return false;
    if (win_.data() == scratch_.data()) {
      scratch_.erase(scratch_.begin(),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(pos_));
    } else {
      // First refill: the window is still the (empty) constructor span.
      scratch_.assign(win_.begin() + static_cast<std::ptrdiff_t>(pos_),
                      win_.end());
    }
    pos_ = 0;
    const std::size_t before = scratch_.size();
    const bool got = cursor_.next(scratch_);
    win_ = scratch_;
    return got && scratch_.size() > before;
  }

  std::span<const std::uint8_t> win_;
  std::size_t pos_ = 0;
  std::vector<std::uint8_t> scratch_;
  BlockCursor cursor_{std::span<const std::uint8_t>{}};
  bool streaming_ = false;
  bool bad_ = false;
};

/// What a prefix-tolerant archive read saw. `sections_ok` sections were
/// recovered intact; reading stopped at the first CRC failure
/// (`crc_failures` = 1) or short read (`truncated_at` = stream offset of
/// the first field that could not be fully read). `complete` means every
/// declared section was present and valid — the file is whole.
///
/// For GORCOLv3 block-compressed sections, damage degrades at block
/// granularity: the longest run of intact blocks is kept as a PARTIAL
/// trailing section (`partial_section`, name in `damaged_section`) and the
/// first bad block is pinpointed by index and absolute file offset.
struct ArchiveReadReport {
  std::size_t sections_ok = 0;
  std::size_t crc_failures = 0;
  std::optional<std::uint64_t> truncated_at;
  bool header_ok = false;
  bool complete = false;
  bool partial_section = false;
  std::string damaged_section;
  std::optional<std::size_t> bad_block;
  std::optional<std::uint64_t> bad_block_offset;
};

/// A named-section container: opaque header + ordered named columns.
///
/// On-disk format GORCOLv3: magic "GORCOLv3", u32le header length, header
/// bytes, u32le header CRC-32, u32le section count, then per section a u8
/// name length, the name, a u8 storage kind (0 = raw, 1 = block stream),
/// a u64be stored length, a u64be uncompressed length, a u32le CRC-32 of
/// the stored bytes, and the stored bytes. Block streams are framed by
/// util/block_codec.h (64 KiB blocks, per-block length + CRC), so a torn
/// tail degrades per BLOCK, not per section. v2 (raw sections + CRCs) and
/// v1 (no CRCs) are still readable; writers emit v3 unless `version` is
/// set to 2 (kept for size-comparison tooling).
struct ColumnArchive {
  enum class SectionStorage : std::uint8_t { kRaw = 0, kBlocks = 1 };

  struct Section {
    std::string name;
    /// Payload for kRaw; block-codec stored bytes for kBlocks.
    std::vector<std::uint8_t> bytes;
    SectionStorage storage = SectionStorage::kRaw;
    /// Uncompressed payload length (== bytes.size() for kRaw).
    std::uint64_t raw_len = 0;

    Section() = default;
    Section(std::string n, std::vector<std::uint8_t> b)
        : name(std::move(n)), bytes(std::move(b)), raw_len(bytes.size()) {}
    friend bool operator==(const Section&, const Section&) = default;
  };

  std::vector<std::uint8_t> header;
  std::vector<Section> sections;
  /// Container version this archive serializes as (after a load: the
  /// version it was read from). Decoders key transform handling off this.
  int version = 3;

  /// Section by name; nullptr when absent.
  [[nodiscard]] const Section* find(std::string_view name) const noexcept;

  /// Typed reader over a section's payload: flat for raw sections,
  /// streaming block-by-block for compressed ones. Absent name reads as an
  /// empty column.
  [[nodiscard]] ColumnReader column(std::string_view name) const noexcept;

  /// Decompresses every block-stored section in place (across `pool` when
  /// given — sections are independent). Purely a speed/memory trade:
  /// reads are byte-identical before and after.
  void inflate(ThreadPool* pool = nullptr);

  /// Serializes as GORCOLv3 (or legacy v2 when version == 2); false when
  /// the sink fails mid-write (the stream then holds an undefined partial
  /// prefix — discard it).
  [[nodiscard]] bool save(std::ostream& out) const;

  /// Strict load (v1/v2/v3): nullopt on bad magic, truncation, any CRC
  /// mismatch, or a malformed section table.
  [[nodiscard]] static std::optional<ColumnArchive> load(std::istream& in);

  /// Prefix-tolerant load (v1/v2/v3): requires a valid magic/header, then
  /// consumes the longest run of intact sections — plus, for a v3
  /// compressed section torn or corrupted mid-stream, the longest run of
  /// intact blocks within it. nullopt only when not even the header
  /// survives. Details of what was recovered land in *report (optional).
  [[nodiscard]] static std::optional<ColumnArchive> load_prefix(
      std::istream& in, ArchiveReadReport* report = nullptr);

  /// Atomic file write: serializes to `path + ".tmp"`, flushes + fsyncs,
  /// then renames over `path`. On any failure the temp file is removed and
  /// the previous contents of `path` are untouched. False on failure.
  [[nodiscard]] bool save_file(const std::string& path) const;
  [[nodiscard]] static std::optional<ColumnArchive> load_file(
      const std::string& path);
  [[nodiscard]] static std::optional<ColumnArchive> load_file_prefix(
      const std::string& path, ArchiveReadReport* report = nullptr);
};

}  // namespace gorilla::util
