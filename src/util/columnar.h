// Compact columnar serialization for recorded event streams.
//
// A ColumnWriter appends varint/zigzag/fixed-width values to one named
// column buffer; a ColumnArchive bundles the columns into a sectioned file
// behind an opaque caller-defined header. All byte-level encoding rides on
// ByteReader/ByteWriter (the tree's one sanctioned byte<->integer seam), so
// the artifact format inherits the same sticky-truncation discipline as the
// wire parsers: a short or corrupt file reads as !ok(), never as garbage.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace gorilla::util {

/// ZigZag maps signed to unsigned so small-magnitude values varint-encode
/// short regardless of sign.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Append-only typed column. Owns its byte buffer; freely movable.
class ColumnWriter {
 public:
  void put_u8(std::uint8_t v) { ByteWriter(buf_).u8(v); }
  void put_u16(std::uint16_t v) { ByteWriter(buf_).u16le(v); }
  void put_u32(std::uint32_t v) { ByteWriter(buf_).u32le(v); }

  void put_varint(std::uint64_t v) {
    ByteWriter w(buf_);
    while (v >= 0x80) {
      w.u8(static_cast<std::uint8_t>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    w.u8(static_cast<std::uint8_t>(v));
  }

  void put_zigzag(std::int64_t v) { put_varint(zigzag_encode(v)); }

  void put_f64(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    ByteWriter w(buf_);
    w.u32le(static_cast<std::uint32_t>(bits));
    w.u32le(static_cast<std::uint32_t>(bits >> 32));
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buf_;
  }
  /// Moves the encoded bytes out (the writer is empty afterwards).
  [[nodiscard]] std::vector<std::uint8_t> take_buffer() noexcept {
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Forward-only typed reads over one column's bytes (borrowed). Failure is
/// sticky: after any short or overlong read, ok() stays false and every
/// further get returns 0.
class ColumnReader {
 public:
  constexpr explicit ColumnReader(std::span<const std::uint8_t> data) noexcept
      : reader_(data) {}

  [[nodiscard]] bool ok() const noexcept { return reader_.ok() && !bad_; }
  [[nodiscard]] bool at_end() const noexcept {
    return reader_.remaining() == 0;
  }

  std::uint8_t get_u8() noexcept { return reader_.u8(); }
  std::uint16_t get_u16() noexcept { return reader_.u16le(); }
  std::uint32_t get_u32() noexcept { return reader_.u32le(); }

  std::uint64_t get_varint() noexcept {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = reader_.u8();
      if (!reader_.ok()) return 0;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    bad_ = true;  // overlong encoding
    return 0;
  }

  std::int64_t get_zigzag() noexcept { return zigzag_decode(get_varint()); }

  double get_f64() noexcept {
    const auto lo = reader_.u32le();
    const auto hi = reader_.u32le();
    return std::bit_cast<double>((static_cast<std::uint64_t>(hi) << 32) | lo);
  }

 private:
  ByteReader reader_;
  bool bad_ = false;
};

/// What a prefix-tolerant archive read saw. `sections_ok` sections were
/// recovered intact; reading stopped at the first CRC failure
/// (`crc_failures` = 1) or short read (`truncated_at` = stream offset of
/// the first field that could not be fully read). `complete` means every
/// declared section was present and valid — the file is whole.
struct ArchiveReadReport {
  std::size_t sections_ok = 0;
  std::size_t crc_failures = 0;
  std::optional<std::uint64_t> truncated_at;
  bool header_ok = false;
  bool complete = false;
};

/// A named-section container: opaque header + ordered (name, bytes) columns.
///
/// On-disk format GORCOLv2: magic "GORCOLv2", u32le header length, header
/// bytes, u32le header CRC-32, u32le section count, then per section a u8
/// name length, the name, a u64be payload length, a u32le payload CRC-32,
/// and the payload. v1 (no CRCs) is still readable; writers emit v2 only.
/// The length+CRC framing makes every section independently validatable,
/// so a torn tail is recoverable as a durable prefix (load_prefix) instead
/// of poisoning the whole artifact.
struct ColumnArchive {
  std::vector<std::uint8_t> header;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections;

  /// Section bytes by name; nullptr when absent.
  [[nodiscard]] const std::vector<std::uint8_t>* find(
      std::string_view name) const noexcept;

  /// Serializes as GORCOLv2; false when the sink fails mid-write (the
  /// stream then holds an undefined partial prefix — discard it).
  [[nodiscard]] bool save(std::ostream& out) const;

  /// Strict load (v1 or v2): nullopt on bad magic, truncation, any CRC
  /// mismatch, or a malformed section table.
  [[nodiscard]] static std::optional<ColumnArchive> load(std::istream& in);

  /// Prefix-tolerant load (v1 or v2): requires a valid magic/header, then
  /// consumes the longest run of intact sections, stopping at the first
  /// truncated or CRC-failed one. nullopt only when not even the header
  /// survives. Details of what was recovered land in *report (optional).
  [[nodiscard]] static std::optional<ColumnArchive> load_prefix(
      std::istream& in, ArchiveReadReport* report = nullptr);

  /// Atomic file write: serializes to `path + ".tmp"`, flushes + fsyncs,
  /// then renames over `path`. On any failure the temp file is removed and
  /// the previous contents of `path` are untouched. False on failure.
  [[nodiscard]] bool save_file(const std::string& path) const;
  [[nodiscard]] static std::optional<ColumnArchive> load_file(
      const std::string& path);
  [[nodiscard]] static std::optional<ColumnArchive> load_file_prefix(
      const std::string& path, ArchiveReadReport* report = nullptr);
};

}  // namespace gorilla::util
