#include "util/bytes.h"

#include "util/fault.h"

namespace gorilla::util {

namespace {

void write_span(std::ostream& out, std::span<const std::uint8_t> buf) {
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

}  // namespace

bool read_exact(std::istream& in, std::span<std::uint8_t> buf) {
  // The single sanctioned byte<->char bridge (see gorilla_lint raw-decode
  // rule); everything around it deals in std::uint8_t spans.
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  return in.gcount() == static_cast<std::streamsize>(buf.size());
}

std::size_t read_some(std::istream& in, std::span<std::uint8_t> buf) {
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  return static_cast<std::size_t>(in.gcount());
}

bool write_all(std::ostream& out, std::span<const std::uint8_t> buf) {
  if (FaultPlan::active() != nullptr) {
    const SinkAction action = FaultPlan::next_sink_action(buf.size());
    std::span<const std::uint8_t> chunk = buf.first(action.write_prefix);
    std::vector<std::uint8_t> scratch;
    if (action.corrupt_index) {
      scratch.assign(chunk.begin(), chunk.end());
      scratch[*action.corrupt_index] ^= 0x5a;
      chunk = scratch;
    }
    write_span(out, chunk);
    if (action.fail_after) {
      out.setstate(std::ios::failbit);
      return false;
    }
    return static_cast<bool>(out);
  }
  write_span(out, buf);
  return static_cast<bool>(out);
}

}  // namespace gorilla::util
