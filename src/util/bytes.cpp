#include "util/bytes.h"

namespace gorilla::util {

bool read_exact(std::istream& in, std::span<std::uint8_t> buf) {
  // The single sanctioned byte<->char bridge (see gorilla_lint raw-decode
  // rule); everything around it deals in std::uint8_t spans.
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  return in.gcount() == static_cast<std::streamsize>(buf.size());
}

void write_all(std::ostream& out, std::span<const std::uint8_t> buf) {
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

}  // namespace gorilla::util
