// CSV emission for bench artifacts.
//
// Every bench prints human-readable tables; passing `--csv DIR` also drops
// machine-readable files so the reproduced series can be re-plotted or
// diffed against the paper's digitized curves. RFC 4180-style quoting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gorilla::util {

/// Escapes one CSV field (quotes when it contains comma/quote/newline).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Renders one CSV row.
[[nodiscard]] std::string csv_row(const std::vector<std::string>& fields);

/// Buffered CSV document: header + rows, written on demand.
class CsvDocument {
 public:
  explicit CsvDocument(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Full document text.
  [[nodiscard]] std::string to_string() const;

  /// Writes to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gorilla::util
