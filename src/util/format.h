// ASCII rendering shared by the bench harnesses.
//
// Every bench regenerates one of the paper's tables or figures; figures are
// rendered as aligned numeric series (one row per x value) plus an optional
// log-scale sparkline so the shape — rise, peak, decline, crossover — is
// visible directly in terminal output.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gorilla::util {

/// Fixed-width text table: set headers, append rows, render aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with single-space-padded columns and a dashed header rule.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Human-readable count: 1405186 -> "1.41M", 942 -> "942".
[[nodiscard]] std::string si_count(double v);

/// Human-readable byte count: 514e9 -> "514.0 GB".
[[nodiscard]] std::string bytes_str(double v);

/// Fixed-precision double without trailing-zero noise ("4.31", "0.001").
[[nodiscard]] std::string fixed(double v, int precision);

/// Scientific-ish compact number for wide-dynamic-range figure columns.
[[nodiscard]] std::string compact(double v);

/// A one-line log-scale sparkline over the series (empty series -> "").
/// Non-positive values render as the lowest glyph.
[[nodiscard]] std::string log_sparkline(const std::vector<double>& series);

/// A one-line linear sparkline over the series.
[[nodiscard]] std::string sparkline(const std::vector<double>& series);

/// Section banner used by benches: "== Figure 3: ... ==".
[[nodiscard]] std::string banner(const std::string& title);

}  // namespace gorilla::util
