#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace gorilla::util {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace gorilla::util
