#include "util/time.h"

#include <cstdio>

namespace gorilla::util {

std::string to_string(const Date& d) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string to_short_string(const Date& d) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "%02d-%02d", d.month, d.day);
  return buf;
}

std::optional<Date> parse_date(const std::string& s) {
  int y = 0, m = 0, dd = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &dd) != 3 || m < 1 || m > 12 ||
      dd < 1 || dd > 31) {
    return std::nullopt;
  }
  return Date{y, m, dd};
}

const std::array<Date, 15>& onp_sample_dates() noexcept {
  static const std::array<Date, 15> dates = [] {
    std::array<Date, 15> a{};
    const std::int64_t first = days_from_civil(Date{2014, 1, 10});
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = civil_from_days(first + static_cast<std::int64_t>(i) * 7);
    }
    return a;
  }();
  return dates;
}

const std::array<Date, 9>& onp_version_sample_dates() noexcept {
  static const std::array<Date, 9> dates = [] {
    std::array<Date, 9> a{};
    const std::int64_t first = days_from_civil(Date{2014, 2, 21});
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = civil_from_days(first + static_cast<std::int64_t>(i) * 7);
    }
    return a;
  }();
  return dates;
}

}  // namespace gorilla::util
