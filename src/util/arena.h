// Slab/arena allocator with size-class recycling for compact structures.
//
// The monitor-table spine allocates hundreds of thousands of small slot
// slabs with world lifetime; giving each its own malloc costs an
// allocation header per slab and scatters them across the heap. An Arena
// carves them out of large blocks instead: allocation is a bump pointer,
// and the whole spine stays dense.
//
// Blocks are never returned to the OS before the arena dies, but callers
// MAY hand storage back with recycle(): freed allocations go on exact-size
// free lists (sizes are canonicalized to 16-byte multiples, and the
// callers draw from small growth ladders, so the class count stays tiny)
// and the next allocate() of that size reuses them. That is what lets one
// monitor table's post-expiry shrink feed another table's growth — the
// cross-table reuse malloc gave the node-based tables — while keeping
// bump-pointer locality for the steady state.
//
// Thread-safe by a mutex around allocate()/recycle(): callers hold
// slab-granular storage, so arena calls are rare (one per slab resize, not
// one per entry), and the §3d parallel seeding path (disjoint servers,
// shared world arena) stays race-free.
//
// Accounting: each block charges one MemStats::Counter::add per block (a
// relaxed atomic), so per-subsystem live/peak bytes are exact at block
// granularity for free. Recycled storage stays "live" — the arena still
// owns it — which is exactly the retained-footprint number the scale-1
// planning needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <vector>

#include "util/mem_stats.h"

namespace gorilla::util {

class Arena {
 public:
  /// `stats` (optional) receives one add() per block allocated and the
  /// matching sub()s on destruction; it must outlive the arena (the
  /// MemStats registry's counters are process-lived, so that is the
  /// normal case). `request_stats` (optional) additionally tracks
  /// *outstanding requests* — allocate() adds the canonical size,
  /// recycle() subtracts it — so its peak is the callers' true live
  /// high-water mark and the gap to the block counter is the arena's
  /// overhead (bump slack + idle free-list storage).
  explicit Arena(MemStats::Counter* stats = nullptr,
                 std::size_t block_bytes = kDefaultBlockBytes,
                 MemStats::Counter* request_stats = nullptr)
      : stats_(stats), request_stats_(request_stats),
        block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    if (stats_ != nullptr) stats_->sub(allocated_bytes_);
    if (request_stats_ != nullptr) request_stats_->sub(outstanding_bytes_);
  }

  static constexpr std::size_t kDefaultBlockBytes = std::size_t{256} * 1024;
  /// Every allocation is rounded up to this granule: recycled storage must
  /// hold a free-list link, and canonical sizes keep the class count small.
  static constexpr std::size_t kGranule = 16;

  /// Bytes of raw storage, 16-byte aligned (`align` must not exceed
  /// kGranule). Never returns nullptr. Reuse order: an exact-size
  /// recycled block, else the smallest larger recycled block (best fit,
  /// remainder split back onto its own free list — during a synchronized
  /// growth wave every table frees rung N while demanding rung N+1, and
  /// splitting keeps that storage in play instead of stranding it), else
  /// the bump pointer advances.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    (void)align;
    const std::size_t size = canonical(bytes);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (request_stats_ != nullptr) {
      request_stats_->add(size);
      outstanding_bytes_ += size;
    }
    FreeList* best = nullptr;
    for (auto& fl : free_lists_) {
      if (fl.head == nullptr || fl.size < size) continue;
      if (fl.size == size) {
        best = &fl;
        break;
      }
      if (best == nullptr || fl.size < best->size) best = &fl;
    }
    if (best != nullptr) {
      void* out = best->head;
      best->head = *static_cast<void**>(out);
      if (best->size > size) {
        push_free(static_cast<std::byte*>(out) + size, best->size - size);
      }
      return out;
    }
    std::size_t offset = (cursor_ + kGranule - 1) & ~(kGranule - 1);
    if (current_ == nullptr || offset + size > current_size_) {
      refill(size + kGranule);
      offset = (cursor_ + kGranule - 1) & ~(kGranule - 1);
    }
    cursor_ = offset + size;
    return current_ + offset;
  }

  /// Returns an allocation of `bytes` (the size passed to allocate()) to
  /// the matching size-class free list for reuse.
  void recycle(void* ptr, std::size_t bytes) noexcept {
    const std::size_t size = canonical(bytes);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (request_stats_ != nullptr) {
      request_stats_->sub(size);
      outstanding_bytes_ -= size;
    }
    push_free(ptr, size);
  }

  /// `count` default-initialized objects of trivially-destructible T (the
  /// arena never runs destructors; recycled storage is re-initialized
  /// here).
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is never destroyed element-wise");
    static_assert(alignof(T) <= kGranule);
    T* out = static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (out + i) T();
    return out;
  }

  /// recycle() for an allocate_array<T>() allocation.
  template <typename T>
  void recycle_array(T* ptr, std::size_t count) noexcept {
    recycle(static_cast<void*>(ptr), sizeof(T) * count);
  }

  /// Total block bytes currently owned (what MemStats sees as live).
  [[nodiscard]] std::size_t allocated_bytes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return allocated_bytes_;
  }

  /// Blocks owned (diagnostic; one malloc each over the arena's lifetime).
  [[nodiscard]] std::size_t block_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return blocks_.size();
  }

 private:
  struct FreeList {
    std::size_t size;
    void* head;
  };

  [[nodiscard]] static constexpr std::size_t canonical(
      std::size_t bytes) noexcept {
    const std::size_t up = (bytes + kGranule - 1) & ~(kGranule - 1);
    return up == 0 ? kGranule : up;
  }

  /// Links `ptr` (a canonical-size block) onto its size class. Called
  /// under mutex_.
  void push_free(void* ptr, std::size_t size) {
    for (auto& fl : free_lists_) {
      if (fl.size == size) {
        *static_cast<void**>(ptr) = fl.head;
        fl.head = ptr;
        return;
      }
    }
    *static_cast<void**>(ptr) = nullptr;
    free_lists_.push_back(FreeList{size, ptr});
  }

  /// Starts a fresh block of at least `min_bytes` (oversize requests get a
  /// dedicated block). Called under mutex_.
  void refill(std::size_t min_bytes) {
    const std::size_t size = min_bytes > block_bytes_ ? min_bytes
                                                      : block_bytes_;
    blocks_.push_back(std::make_unique<std::byte[]>(size));
    current_ = blocks_.back().get();
    current_size_ = size;
    cursor_ = 0;
    allocated_bytes_ += size;
    if (stats_ != nullptr) stats_->add(size);
  }

  MemStats::Counter* stats_;
  MemStats::Counter* request_stats_;
  std::size_t block_bytes_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::vector<FreeList> free_lists_;
  std::byte* current_ = nullptr;
  std::size_t current_size_ = 0;
  std::size_t cursor_ = 0;
  std::size_t allocated_bytes_ = 0;
  std::size_t outstanding_bytes_ = 0;
};

}  // namespace gorilla::util
