// Deterministic fault injection for the robustness test matrix.
//
// A FaultPlan is a small, seeded script of planned failures — short writes,
// byte corruption, worker-shard exceptions — installed globally and
// consulted from exactly two seams: the sanctioned byte sink
// (`util::write_all`, and through it `ColumnArchive::save_file`) and the
// sharded executor's per-shard attempt hook. Because every directive fires
// at a *planned* point (a global sink byte offset or a global shard-attempt
// ordinal), the same plan replays the same failure every run: degradation
// paths are exercised by ordinary deterministic tests instead of being
// trusted.
//
// Plans come from either the `GORILLA_FAULTS` environment variable or the
// bench `--faults` flag; the grammar is `;`-separated directives:
//
//   short-write@OFF       sink fails (failbit) from global byte offset OFF
//   corrupt@OFF           XOR 0x5a into the byte at global sink offset OFF
//   corrupt@rand:SEED:N   same, at a seeded pseudo-random offset in [0, N)
//   shard-throw@AxT       throw FaultInjected on global shard-attempt
//                         ordinals A..A+T-1 (T defaults to 1: a transient
//                         failure that a retry heals; larger T models a
//                         poison shard)
//
// Counters are process-global and mutex-guarded; reset_counters() rewinds
// them so one test can stage several runs under one plan. With no plan
// installed both hooks are a single relaxed-atomic load — the harness
// costs nothing on the production path.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gorilla::util {

/// Thrown by the shard-attempt hook at planned points. A distinct type so
/// tests (and the executor's quarantine report) can tell an injected fault
/// from a genuine defect.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

/// What write_all should do with the next chunk: write `write_prefix` bytes
/// (optionally flipping the byte at `corrupt_index` first), then fail the
/// stream if `fail_after` is set.
struct SinkAction {
  std::size_t write_prefix = 0;
  bool fail_after = false;
  std::optional<std::size_t> corrupt_index;
};

struct FaultPlan {
  std::optional<std::uint64_t> short_write_at;  ///< global sink byte offset
  std::optional<std::uint64_t> corrupt_at;      ///< global sink byte offset
  std::optional<std::uint64_t> shard_throw_at;  ///< global attempt ordinal
  std::uint32_t shard_throw_count = 1;          ///< consecutive throwing attempts

  /// Parses the directive grammar above; nullopt (never a partial plan) on
  /// any syntax error. An empty spec parses to an empty plan.
  [[nodiscard]] static std::optional<FaultPlan> parse(std::string_view spec);

  /// Installs `plan` as the process-global active plan and rewinds the
  /// counters. Replaces any previously installed or env-derived plan.
  static void install(const FaultPlan& plan);

  /// Removes the active plan (env re-read does NOT happen again; cleared
  /// means cleared for the rest of the process).
  static void clear();

  /// The active plan, or nullptr. First call (only) consults the
  /// GORILLA_FAULTS environment variable when nothing was install()ed.
  [[nodiscard]] static const FaultPlan* active();

  /// Rewinds the global sink-offset and shard-attempt counters.
  static void reset_counters();

  /// Sink hook: accounts `chunk_len` bytes against the global sink offset
  /// and returns the action for this chunk. Only call when active() != nullptr.
  [[nodiscard]] static SinkAction next_sink_action(std::size_t chunk_len);

  /// Shard hook: accounts one shard attempt; throws FaultInjected when this
  /// attempt's global ordinal is inside the planned window. Cheap no-op when
  /// no plan is active.
  static void on_shard_attempt();
};

}  // namespace gorilla::util
