#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gorilla::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

WeightedSampler::WeightedSampler(std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("WeightedSampler: weights must be non-empty");
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0)
      throw std::invalid_argument("WeightedSampler: negative weight");
    acc += weights[i];
    cdf_[i] = acc;
  }
  if (acc <= 0.0)
    throw std::invalid_argument("WeightedSampler: weights sum to zero");
  for (auto& v : cdf_) v /= acc;
}

std::size_t WeightedSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace gorilla::util
