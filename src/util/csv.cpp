#include "util/csv.h"

namespace gorilla::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_row(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += csv_escape(fields[i]);
  }
  out += '\n';
  return out;
}

std::string CsvDocument::to_string() const {
  std::string out = csv_row(header_);
  for (const auto& row : rows_) out += csv_row(row);
  return out;
}

bool CsvDocument::write_file(const std::string& path) const {
  // CSV drops are human-facing side artifacts, regenerated on every run —
  // losing one to a crash costs nothing, so the atomic save_file machinery
  // is not warranted here.
  std::ofstream out(path, std::ios::binary);  // NOLINT(raw-ofstream)
  if (!out) return false;
  const std::string text = to_string();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

}  // namespace gorilla::util
