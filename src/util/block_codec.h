// In-repo byte-oriented block codec for GORCOLv3 section payloads.
//
// An LZ4-style greedy match/literal scheme (token + literals + 16-bit
// back-reference), applied independently per fixed-size block. Each block
// carries its own uncompressed length and a CRC-32 over the stored bytes,
// so a torn or corrupt file degrades at BLOCK granularity: the loader keeps
// the longest run of intact blocks instead of discarding a whole section.
// Matches never cross a block boundary — every block decodes on its own,
// which is what makes both the prefix recovery and the streaming cursor
// possible.
//
// The codec is deterministic (fixed hash table, greedy parse, no
// heuristics keyed on timing or addresses): the same input always yields
// the same stored bytes, so recorded artifacts stay byte-comparable across
// runs and hosts. No external compression library is involved.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gorilla::util {

/// Uncompressed bytes per block. 64 KiB keeps the back-reference window in
/// 16 bits and bounds the streaming cursor's scratch memory.
inline constexpr std::size_t kBlockRawSize = 64 * 1024;

/// Per-block frame: u32le raw length, u32le stored-body length, u32le
/// CRC-32 of the stored body, u8 method (0 = stored verbatim, 1 = LZ).
inline constexpr std::size_t kBlockHeaderSize = 13;

/// Compresses `raw` into a self-framed block stream. Empty input yields an
/// empty stream. Output is deterministic; incompressible blocks fall back
/// to stored-verbatim, so expansion is bounded by the per-block header.
[[nodiscard]] std::vector<std::uint8_t> block_compress(
    std::span<const std::uint8_t> raw);

/// Decodes an entire block stream, appending to `out`. False when the
/// stream is torn, CRC-damaged, or malformed — `out` then holds the bytes
/// of every intact leading block (the same prefix scan_blocks reports).
[[nodiscard]] bool block_decompress(std::span<const std::uint8_t> stored,
                                    std::vector<std::uint8_t>& out);

/// What a validation walk over a block stream saw. The stream's longest
/// usable prefix is `stored_prefix` stored bytes = `blocks` whole blocks =
/// `raw_prefix` decodable bytes.
struct BlockScan {
  std::size_t blocks = 0;          ///< intact leading blocks
  std::uint64_t raw_prefix = 0;    ///< uncompressed bytes they decode to
  std::size_t stored_prefix = 0;   ///< stored bytes they occupy
  bool complete = false;           ///< every byte accounted for, all CRCs good
  bool crc_failed = false;         ///< stopped on a checksum mismatch
                                   ///< (false + !complete = torn frame)
};

/// Validates framing + CRCs without decompressing (no allocation).
[[nodiscard]] BlockScan scan_blocks(
    std::span<const std::uint8_t> stored) noexcept;

/// Forward-only one-block-at-a-time decoder over a borrowed stored stream.
/// Drives the zero-copy streaming path: callers pull one block into their
/// scratch buffer as needed instead of inflating the whole section.
class BlockCursor {
 public:
  constexpr explicit BlockCursor(
      std::span<const std::uint8_t> stored) noexcept
      : stored_(stored) {}

  /// Decodes the next block, appending its raw bytes to `out`. False at
  /// the end of the stream or on damage (check damaged() to distinguish).
  bool next(std::vector<std::uint8_t>& out);

  /// True when every stored byte was consumed without damage.
  [[nodiscard]] constexpr bool exhausted() const noexcept {
    return !damaged_ && off_ == stored_.size();
  }
  [[nodiscard]] constexpr bool damaged() const noexcept { return damaged_; }

 private:
  std::span<const std::uint8_t> stored_;
  std::size_t off_ = 0;
  bool damaged_ = false;
};

}  // namespace gorilla::util
