// Per-subsystem memory accounting for the scale-1 push.
//
// The ROADMAP's full-population run is bounded by memory, not CPU, so the
// memory trajectory has to be observable the way the perf trajectory is:
// every subsystem that owns bulk storage (the monitor-table arena, the
// study event buffers, the recorder columns) reports into a named counter
// here, and benches print the registry (plus the process peak RSS) under
// --mem-report. Accounting is cheap by construction — the arena charges
// one relaxed atomic add per *chunk*, not per entry, and gauge-style
// subsystems observe their footprint at natural batch boundaries.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gorilla::util {

class MemStats {
 public:
  /// One subsystem's live/peak byte counters. `add`/`sub` track exact
  /// ownership transfers (allocators); `observe` is the gauge form for
  /// subsystems that re-measure their footprint at batch boundaries.
  /// All updates are relaxed atomics: counters are diagnostics, never
  /// synchronization.
  class Counter {
   public:
    void add(std::uint64_t bytes) noexcept {
      const std::uint64_t now =
          live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
      raise_peak(now);
    }
    void sub(std::uint64_t bytes) noexcept {
      live_.fetch_sub(bytes, std::memory_order_relaxed);
    }
    /// Gauge form: sets the live value and raises the peak.
    void observe(std::uint64_t bytes) noexcept {
      live_.store(bytes, std::memory_order_relaxed);
      raise_peak(bytes);
    }
    [[nodiscard]] std::uint64_t live() const noexcept {
      return live_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t peak() const noexcept {
      return peak_.load(std::memory_order_relaxed);
    }

   private:
    void raise_peak(std::uint64_t now) noexcept {
      std::uint64_t prev = peak_.load(std::memory_order_relaxed);
      while (prev < now &&
             !peak_.compare_exchange_weak(prev, now,
                                          std::memory_order_relaxed)) {
      }
    }
    std::atomic<std::uint64_t> live_{0};
    std::atomic<std::uint64_t> peak_{0};
  };

  /// The process-wide registry. Counters live for the process lifetime, so
  /// a subsystem may cache the reference.
  [[nodiscard]] static MemStats& instance();

  /// The counter registered under `subsystem` (created on first use).
  /// Registration takes a lock; updates through the returned reference are
  /// lock-free.
  [[nodiscard]] Counter& counter(const std::string& subsystem);

  /// Registered (subsystem, live, peak) rows, sorted by subsystem name.
  struct Row {
    std::string subsystem;
    std::uint64_t live_bytes = 0;
    std::uint64_t peak_bytes = 0;
  };
  [[nodiscard]] std::vector<Row> rows() const;

  /// Process peak RSS (VmHWM) in bytes from /proc/self/status; 0 when the
  /// platform does not expose it.
  [[nodiscard]] static std::uint64_t peak_rss_bytes();

  /// Human-readable registry dump (one line per subsystem + peak RSS).
  void report(std::FILE* out) const;

 private:
  MemStats() = default;

  mutable std::mutex mutex_;
  // Deque-like stable storage: counters are handed out by reference, so
  // they must never move. Each entry is a separately owned node.
  struct Entry {
    std::string name;
    Counter counter;
  };
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace gorilla::util
