#include "util/mem_stats.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>

#include "util/format.h"

namespace gorilla::util {

MemStats& MemStats::instance() {
  // Never destroyed: counters are handed out as process-lifetime references
  // and --mem-report registers an atexit hook that may fire after static
  // destructors run. Placement-new into static storage keeps the registry
  // alive through shutdown without a heap allocation.
  alignas(MemStats) static unsigned char storage[sizeof(MemStats)];
  static MemStats* stats = new (storage) MemStats;
  return *stats;
}

MemStats::Counter& MemStats::counter(const std::string& subsystem) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name == subsystem) return entry->counter;
  }
  entries_.push_back(std::make_unique<Entry>());
  entries_.back()->name = subsystem;
  return entries_.back()->counter;
}

std::vector<MemStats::Row> MemStats::rows() const {
  std::vector<Row> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& entry : entries_) {
      out.push_back(Row{entry->name, entry->counter.live(),
                        entry->counter.peak()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return a.subsystem < b.subsystem; });
  return out;
}

std::uint64_t MemStats::peak_rss_bytes() {
  // VmHWM ("high water mark") is the kernel's own peak-RSS accounting; it
  // survives frees, so reading it at report time is exact.
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::uint64_t kb = 0;
    for (const char c : line) {
      if (c >= '0' && c <= '9') {
        kb = kb * 10 + static_cast<std::uint64_t>(c - '0');
      } else if (kb != 0) {
        break;
      }
    }
    return kb * 1024;
  }
  return 0;
}

void MemStats::report(std::FILE* out) const {
  std::fprintf(out, "[mem] %-28s %12s %12s\n", "subsystem", "live", "peak");
  for (const Row& row : rows()) {
    std::fprintf(out, "[mem] %-28s %12s %12s\n", row.subsystem.c_str(),
                 bytes_str(static_cast<double>(row.live_bytes)).c_str(),
                 bytes_str(static_cast<double>(row.peak_bytes)).c_str());
  }
  const std::uint64_t rss = peak_rss_bytes();
  if (rss != 0) {
    std::fprintf(out, "[mem] %-28s %12s %12s\n", "process peak RSS (VmHWM)",
                 "", bytes_str(static_cast<double>(rss)).c_str());
  }
}

}  // namespace gorilla::util
