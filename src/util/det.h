// Deterministic-iteration helpers — the only sanctioned way to walk an
// unordered associative container when the visit order can reach ranked,
// serialized, CSV, or bench output.
//
// libstdc++ iteration order over unordered_map/unordered_set is stable for
// an identical insertion sequence, which makes order bugs invisible in
// same-binary reruns — and then a refactor reorders insertions and every
// "byte-identical" artifact silently shifts. `tools/gorilla_lint` therefore
// rejects range-for over unordered containers outside util/; code that
// needs an order must take it through these helpers (or prove the fold is
// order-independent and carry an unordered-iter waiver).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace gorilla::util {

/// Keys of an associative container, sorted ascending.
template <typename Map>
[[nodiscard]] std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Key/value pairs of an associative container, sorted ascending by key.
/// Feed the result to std::stable_sort for rank-by-value orderings and the
/// key order becomes the deterministic tie-break for free.
template <typename Map>
[[nodiscard]] std::vector<
    std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items(m.begin(), m.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

/// Elements of a set-like container, sorted ascending.
template <typename Set>
[[nodiscard]] std::vector<typename Set::key_type> sorted_values(const Set& s) {
  std::vector<typename Set::key_type> values(s.begin(), s.end());
  std::sort(values.begin(), values.end());
  return values;
}

}  // namespace gorilla::util
