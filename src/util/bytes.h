// Checked byte-cursor API — the only place in the tree allowed to turn
// bytes into multi-byte integers (and back).
//
// Every wire-format parser and serializer (ntp/*, net/*, scan/*) goes
// through ByteReader/ByteWriter instead of hand-rolled index arithmetic:
// reads are bounds-checked, truncation is an explicit, sticky, queryable
// state rather than UB or stale bytes, and `tools/gorilla_lint` statically
// rejects raw decoding (memcpy / reinterpret_cast / shift-combine on
// subscripts) anywhere outside this header. See DESIGN.md, "Static
// analysis & determinism rules".
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

namespace gorilla::util {

/// Checked positional loads. nullopt when [offset, offset+width) does not
/// fit in `in` — never a partial or stale read.
[[nodiscard]] constexpr std::optional<std::uint16_t> load_u16be(
    std::span<const std::uint8_t> in, std::size_t offset) noexcept {
  if (offset > in.size() || in.size() - offset < 2) return std::nullopt;
  return static_cast<std::uint16_t>((std::uint32_t{in[offset]} << 8) |
                                    std::uint32_t{in[offset + 1]});
}

[[nodiscard]] constexpr std::optional<std::uint32_t> load_u32be(
    std::span<const std::uint8_t> in, std::size_t offset) noexcept {
  if (offset > in.size() || in.size() - offset < 4) return std::nullopt;
  return (std::uint32_t{in[offset]} << 24) |
         (std::uint32_t{in[offset + 1]} << 16) |
         (std::uint32_t{in[offset + 2]} << 8) | std::uint32_t{in[offset + 3]};
}

[[nodiscard]] constexpr std::optional<std::uint64_t> load_u64be(
    std::span<const std::uint8_t> in, std::size_t offset) noexcept {
  const auto hi = load_u32be(in, offset);
  if (!hi) return std::nullopt;
  const auto lo = load_u32be(in, offset + 4);
  if (!lo) return std::nullopt;
  return (std::uint64_t{*hi} << 32) | *lo;
}

[[nodiscard]] constexpr std::optional<std::uint16_t> load_u16le(
    std::span<const std::uint8_t> in, std::size_t offset) noexcept {
  if (offset > in.size() || in.size() - offset < 2) return std::nullopt;
  return static_cast<std::uint16_t>(std::uint32_t{in[offset]} |
                                    (std::uint32_t{in[offset + 1]} << 8));
}

[[nodiscard]] constexpr std::optional<std::uint32_t> load_u32le(
    std::span<const std::uint8_t> in, std::size_t offset) noexcept {
  if (offset > in.size() || in.size() - offset < 4) return std::nullopt;
  return std::uint32_t{in[offset]} | (std::uint32_t{in[offset + 1]} << 8) |
         (std::uint32_t{in[offset + 2]} << 16) |
         (std::uint32_t{in[offset + 3]} << 24);
}

/// LEB128 varint decode at `pos`: the one decode kernel shared by every
/// GORCOL container version (v1/v2 flat readers and the v3 streaming
/// decoder). On success stores the value and returns the encoded length
/// (1..10); returns 0 on truncation or an overlong (> 10 byte) encoding.
/// The wide-window path is unrolled with a single up-front bounds check so
/// the per-byte loop carries no branch besides the continuation bit.
[[nodiscard]] constexpr int decode_varint(std::span<const std::uint8_t> in,
                                          std::size_t pos,
                                          std::uint64_t& out) noexcept {
  if (pos >= in.size()) return 0;
  std::uint64_t v = in[pos];
  if ((v & 0x80) == 0) {  // 1-byte fast path: the dominant case
    out = v;
    return 1;
  }
  v &= 0x7f;
  const std::size_t avail = in.size() - pos;
  int n = 1;
  std::uint64_t b = 0x80;
  if (avail >= 10) {
    // Full-width window: no per-byte bounds checks.
    do {
      b = in[pos + static_cast<std::size_t>(n)];
      v |= (b & 0x7f) << (7 * n);
      ++n;
    } while ((b & 0x80) != 0 && n < 10);
  } else {
    while ((b & 0x80) != 0 && n < 10) {
      if (static_cast<std::size_t>(n) >= avail) return 0;  // truncated
      b = in[pos + static_cast<std::size_t>(n)];
      v |= (b & 0x7f) << (7 * n);
      ++n;
    }
  }
  if ((b & 0x80) != 0) return 0;  // overlong encoding
  out = v;
  return n;
}

/// Checked positional store into a fixed buffer (the counterpart of
/// load_u16be for packing into std::array-backed layouts). False when the
/// 2-byte window does not fit; the buffer is untouched then.
constexpr bool store_u16be(std::span<std::uint8_t> out, std::size_t offset,
                           std::uint16_t v) noexcept {
  if (offset > out.size() || out.size() - offset < 2) return false;
  out[offset] = static_cast<std::uint8_t>(v >> 8);
  out[offset + 1] = static_cast<std::uint8_t>(v);
  return true;
}

/// Forward-only bounds-checked read cursor over a borrowed byte span.
///
/// Reads past the end never touch memory: they return 0 (or an empty span)
/// and latch the cursor into a sticky truncated state. Parsers read a whole
/// layout linearly, then ask `ok()` once — short input cannot be confused
/// with a packet of zeros because the failure bit survives to the check.
class ByteReader {
 public:
  constexpr explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  /// True while every read so far was fully inside the buffer.
  [[nodiscard]] constexpr bool ok() const noexcept { return !truncated_; }
  /// True once any read ran past the end (sticky).
  [[nodiscard]] constexpr bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] constexpr std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// Bytes consumed so far (stops advancing once truncated).
  [[nodiscard]] constexpr std::size_t consumed() const noexcept { return pos_; }

  constexpr std::uint8_t u8() noexcept {
    if (remaining() < 1) return fail_u8();
    return data_[pos_++];
  }

  constexpr std::uint16_t u16be() noexcept {
    const auto v = load_u16be(data_, pos_);
    if (!v) return fail_u8();
    pos_ += 2;
    return *v;
  }

  constexpr std::uint32_t u32be() noexcept {
    const auto v = load_u32be(data_, pos_);
    if (!v) return fail_u8();
    pos_ += 4;
    return *v;
  }

  constexpr std::uint64_t u64be() noexcept {
    const auto v = load_u64be(data_, pos_);
    if (!v) return fail_u8();
    pos_ += 8;
    return *v;
  }

  constexpr std::uint16_t u16le() noexcept {
    const auto v = load_u16le(data_, pos_);
    if (!v) return fail_u8();
    pos_ += 2;
    return *v;
  }

  constexpr std::uint32_t u32le() noexcept {
    const auto v = load_u32le(data_, pos_);
    if (!v) return fail_u8();
    pos_ += 4;
    return *v;
  }

  /// Next `n` bytes as a subspan; empty span + truncated state when fewer
  /// than `n` remain (never a short span — all or nothing).
  constexpr std::span<const std::uint8_t> take(std::size_t n) noexcept {
    if (remaining() < n) {
      truncated_ = true;
      return {};
    }
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Advances `n` bytes; false + truncated state when fewer remain.
  constexpr bool skip(std::size_t n) noexcept {
    if (remaining() < n) {
      truncated_ = true;
      return false;
    }
    pos_ += n;
    return true;
  }

  /// First unread byte without consuming it; nullopt at end (not sticky —
  /// peeking is how dispatchers sniff, it is not a failed read).
  [[nodiscard]] constexpr std::optional<std::uint8_t> peek_u8() const noexcept {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_];
  }

 private:
  constexpr std::uint8_t fail_u8() noexcept {
    truncated_ = true;
    return 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

/// Append-only write cursor over a caller-owned byte vector.
///
/// Writers cannot fail; the value of the class is that serializers express
/// a wire layout field-by-field in one vocabulary shared with the reader,
/// and the lint layer can forbid ad-hoc byte poking everywhere else.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) noexcept : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16be(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32be(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void u64be(std::uint64_t v) {
    u32be(static_cast<std::uint32_t>(v >> 32));
    u32be(static_cast<std::uint32_t>(v));
  }

  void u16le(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32le(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
  }

  void bytes(std::span<const std::uint8_t> data) {
    // Element-wise append rather than a ranged insert: GCC 12's -O2/-O3
    // object-size analysis misjudges insert-from-span as an overflowing
    // memmove and fails the strict build (-Werror=stringop-overflow).
    out_.reserve(out_.size() + data.size());
    for (const std::uint8_t b : data) out_.push_back(b);
  }

  void fill(std::size_t n, std::uint8_t value = 0) {
    out_.insert(out_.end(), n, value);
  }

  /// Pads with `value` until the vector length is a multiple of `multiple`.
  void pad_to(std::size_t multiple, std::uint8_t value = 0) {
    while (out_.size() % multiple != 0) out_.push_back(value);
  }

  /// Overwrites 2 bytes at `offset` big-endian (checksum back-patching);
  /// false when the range is not already written.
  bool patch_u16be(std::size_t offset, std::uint16_t v) {
    if (offset > out_.size() || out_.size() - offset < 2) return false;
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> written() const noexcept {
    return out_;
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Reads exactly `buf.size()` bytes from `in`; false on a short read (the
/// buffer contents are unspecified then — callers must not use them).
/// This pair owns the one unavoidable byte<->char reinterpret_cast, so
/// stream I/O elsewhere stays free of it.
[[nodiscard]] bool read_exact(std::istream& in, std::span<std::uint8_t> buf);

/// Reads up to `buf.size()` bytes, returning how many arrived. The partial
/// variant the prefix loaders need: a torn final section is recovered from
/// whatever bytes exist instead of being discarded wholesale.
[[nodiscard]] std::size_t read_some(std::istream& in,
                                    std::span<std::uint8_t> buf);

/// Writes all of `buf` to `out`; false when the stream is failed afterwards
/// (short device writes, closed pipes — and injected faults: this is the
/// seam util::FaultPlan's short-write/corrupt directives act through).
[[nodiscard]] bool write_all(std::ostream& out,
                             std::span<const std::uint8_t> buf);

}  // namespace gorilla::util
