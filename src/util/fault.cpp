#include "util/fault.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/rng.h"

namespace gorilla::util {

namespace {

std::mutex g_mutex;
std::optional<FaultPlan> g_plan;        // guarded by g_mutex
std::atomic<bool> g_plan_active{false}; // fast-path mirror of g_plan
bool g_env_checked = false;             // guarded by g_mutex
std::uint64_t g_sink_offset = 0;        // guarded by g_mutex
std::uint64_t g_shard_attempts = 0;     // guarded by g_mutex

[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, v);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return v;
}

/// One `name@args` directive merged into `plan`; false on syntax error.
[[nodiscard]] bool apply_directive(std::string_view directive, FaultPlan& plan) {
  const std::size_t at = directive.find('@');
  if (at == std::string_view::npos) return false;
  const std::string_view name = directive.substr(0, at);
  const std::string_view args = directive.substr(at + 1);

  if (name == "short-write") {
    const auto off = parse_u64(args);
    if (!off) return false;
    plan.short_write_at = *off;
    return true;
  }
  if (name == "corrupt") {
    if (args.substr(0, 5) == "rand:") {
      // corrupt@rand:SEED:N — a seeded draw picks the offset, so sweeping
      // SEED explores distinct corruption points without hand-listing them.
      const std::string_view rest = args.substr(5);
      const std::size_t colon = rest.find(':');
      if (colon == std::string_view::npos) return false;
      const auto seed = parse_u64(rest.substr(0, colon));
      const auto range = parse_u64(rest.substr(colon + 1));
      if (!seed || !range || *range == 0) return false;
      plan.corrupt_at = Rng(*seed).uniform(*range);
      return true;
    }
    const auto off = parse_u64(args);
    if (!off) return false;
    plan.corrupt_at = *off;
    return true;
  }
  if (name == "shard-throw") {
    // AxT: ordinal and optional repeat count.
    const std::size_t x = args.find('x');
    const std::string_view ord =
        x == std::string_view::npos ? args : args.substr(0, x);
    const auto attempt = parse_u64(ord);
    if (!attempt) return false;
    std::uint64_t count = 1;
    if (x != std::string_view::npos) {
      const auto c = parse_u64(args.substr(x + 1));
      if (!c || *c == 0 || *c > 0xffffffffull) return false;
      count = *c;
    }
    plan.shard_throw_at = *attempt;
    plan.shard_throw_count = static_cast<std::uint32_t>(count);
    return true;
  }
  return false;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t sep = spec.find(';', pos);
    if (sep == std::string_view::npos) sep = spec.size();
    const std::string_view directive = spec.substr(pos, sep - pos);
    if (!directive.empty() && !apply_directive(directive, plan)) {
      return std::nullopt;
    }
    pos = sep + 1;
  }
  return plan;
}

void FaultPlan::install(const FaultPlan& plan) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_plan = plan;
  g_env_checked = true;
  g_sink_offset = 0;
  g_shard_attempts = 0;
  g_plan_active.store(true, std::memory_order_release);
}

void FaultPlan::clear() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_plan.reset();
  g_env_checked = true;
  g_plan_active.store(false, std::memory_order_release);
}

const FaultPlan* FaultPlan::active() {
  if (!g_plan_active.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_env_checked) {
      g_env_checked = true;
      if (const char* env = std::getenv("GORILLA_FAULTS")) {
        if (auto plan = parse(env)) {
          g_plan = *plan;
          g_plan_active.store(true, std::memory_order_release);
        }
        // A malformed env spec is silently inert here; the bench flag path
        // validates loudly, and tests always install() explicitly.
      }
    }
    if (!g_plan) return nullptr;
  }
  // The plan is write-once until the next install()/clear(), both of which
  // happen between runs, so returning a pointer into the global is safe.
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_plan ? &*g_plan : nullptr;
}

void FaultPlan::reset_counters() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink_offset = 0;
  g_shard_attempts = 0;
}

SinkAction FaultPlan::next_sink_action(std::size_t chunk_len) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const std::uint64_t begin = g_sink_offset;
  g_sink_offset += chunk_len;

  SinkAction action;
  action.write_prefix = chunk_len;
  if (!g_plan) return action;

  if (g_plan->short_write_at && *g_plan->short_write_at < g_sink_offset) {
    // The planned failure point lands in (or before) this chunk: write only
    // the bytes up to it, then fail — exactly what a torn write looks like.
    const std::uint64_t cut =
        *g_plan->short_write_at <= begin ? 0 : *g_plan->short_write_at - begin;
    action.write_prefix = static_cast<std::size_t>(cut);
    action.fail_after = true;
  }
  if (g_plan->corrupt_at && *g_plan->corrupt_at >= begin &&
      *g_plan->corrupt_at < begin + action.write_prefix) {
    action.corrupt_index = static_cast<std::size_t>(*g_plan->corrupt_at - begin);
  }
  return action;
}

void FaultPlan::on_shard_attempt() {
  if (!g_plan_active.load(std::memory_order_acquire)) return;
  std::uint64_t ordinal = 0;
  std::optional<std::uint64_t> at;
  std::uint32_t count = 1;
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    ordinal = g_shard_attempts++;
    if (!g_plan) return;
    at = g_plan->shard_throw_at;
    count = g_plan->shard_throw_count;
  }
  if (at && ordinal >= *at && ordinal - *at < count) {
    throw FaultInjected("injected shard fault at attempt " +
                        std::to_string(ordinal));
  }
}

}  // namespace gorilla::util
