// Deterministic random-number generation for the simulation.
//
// Everything in the reproduction is seeded: the same seed must produce the
// same world, the same scans, and byte-identical bench output. We therefore
// avoid std::mt19937 + libstdc++ distributions (whose results are not
// specified across versions) and implement xoshiro256** plus the handful of
// distributions the population models need.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace gorilla::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = kDefaultSeed) noexcept { reseed(seed); }

  /// Default seed shared by tests and benches ("800 lb" in hex-ish homage).
  static constexpr std::uint64_t kDefaultSeed = 0x800'1b;

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    // xoshiro256** state mixing, not wire-format decoding.
    const std::uint64_t t = state_[1] << 17;  // NOLINT(raw-decode)
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Debiased via rejection; n must be > 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t n) noexcept {
    const std::uint64_t threshold = -n % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform01() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and exact
  /// enough for population modelling).
  [[nodiscard]] double normal() noexcept {
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Log-normal with parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * normal());
  }

  /// Exponential with the given mean (mean > 0).
  [[nodiscard]] double exponential(double mean) noexcept {
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return -mean * std::log(u);
  }

  /// Pareto (Lomax-free, classic) with scale xm > 0 and shape alpha > 0.
  /// Heavy-tailed: used for attack sizes and per-amplifier response volume.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept {
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Poisson with small-to-moderate mean (inversion by sequential search for
  /// lambda <= 30, normal approximation above).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept {
    if (lambda <= 0.0) return 0;
    if (lambda > 30.0) {
      const double v = lambda + std::sqrt(lambda) * normal();
      return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double l = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > l);
    return k - 1;
  }

  /// Forks an independent stream for a named sub-component; deterministic in
  /// (parent seed, tag). Lets modules draw without perturbing one another.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept {
    Rng child(state_[0] ^ (tag * 0x9e3779b97f4a7c15ULL) ^ rotl(state_[3], 13));
    return child;
  }

  /// A *pure* substream: deterministic in (seed, tag) alone — unlike
  /// fork(), which depends on the parent's current position. One splitmix64
  /// step folds the tag into the seed (the same stateless idiom
  /// sim::ImpairmentLayer uses for hash draws); reseed() then splitmixes the
  /// result again, so nearby tags land on unrelated streams. Day/week
  /// shards derive their RNG here so each shard is a pure function of
  /// (seed, index) — the keystone of the sharded engine's determinism-merge
  /// contract (DESIGN.md §3d).
  [[nodiscard]] static Rng substream(std::uint64_t seed,
                                     std::uint64_t tag) noexcept {
    std::uint64_t z = seed + (tag + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over ranks 1..n — used for AS popularity, victim targeting
/// concentration, and port selection tails. Precomputes the CDF once.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [0, n).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Weighted discrete sampler (alias-free binary search over a CDF).
class WeightedSampler {
 public:
  explicit WeightedSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gorilla::util
