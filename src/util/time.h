// Civil-date arithmetic and the study's simulation clock.
//
// The paper's measurement window runs from 2013-11-01 through 2014-05-01,
// with fifteen weekly OpenNTPProject samples from 2014-01-10 to 2014-04-18.
// All simulation time is expressed as seconds since the *simulation epoch*,
// 2013-11-01 00:00:00 UTC, so every dataset in the reproduction shares one
// clock and no wall-clock or timezone state leaks in.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace gorilla::util {

/// A civil (proleptic Gregorian) calendar date.
struct Date {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend constexpr bool operator==(const Date&, const Date&) = default;
};

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
[[nodiscard]] constexpr std::int64_t days_from_civil(const Date& d) noexcept {
  const int y = d.year - (d.month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(d.month + (d.month > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d.day) - 1u;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of days_from_civil.
[[nodiscard]] constexpr Date civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return Date{static_cast<int>(y + (m <= 2 ? 1 : 0)), static_cast<int>(m),
              static_cast<int>(d)};
}

/// Seconds since 2013-11-01 00:00:00 UTC — the clock every module shares.
using SimTime = std::int64_t;

inline constexpr Date kSimEpochDate{2013, 11, 1};
inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

/// SimTime (midnight UTC) of a civil date.
[[nodiscard]] constexpr SimTime sim_time_from_date(const Date& d) noexcept {
  return (days_from_civil(d) - days_from_civil(kSimEpochDate)) * kSecondsPerDay;
}

/// Civil date containing a SimTime (negative times land before the epoch).
[[nodiscard]] constexpr Date date_from_sim_time(SimTime t) noexcept {
  std::int64_t days = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --days;
  return civil_from_days(days + days_from_civil(kSimEpochDate));
}

/// Day index (0 = 2013-11-01) of a SimTime; floors negative times.
[[nodiscard]] constexpr std::int64_t day_index(SimTime t) noexcept {
  std::int64_t d = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --d;
  return d;
}

/// "YYYY-MM-DD".
[[nodiscard]] std::string to_string(const Date& d);

/// "MM-DD" (the style used on the paper's figure axes).
[[nodiscard]] std::string to_short_string(const Date& d);

/// Parse "YYYY-MM-DD"; nullopt on malformed input.
[[nodiscard]] std::optional<Date> parse_date(const std::string& s);

/// The fifteen weekly ONP monlist sample dates, 2014-01-10 .. 2014-04-18.
[[nodiscard]] const std::array<Date, 15>& onp_sample_dates() noexcept;

/// The nine weekly ONP version sample dates, 2014-02-21 .. 2014-04-18.
[[nodiscard]] const std::array<Date, 9>& onp_version_sample_dates() noexcept;

}  // namespace gorilla::util
