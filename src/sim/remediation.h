// Remediation (pool decay) models — §6.
//
// The monlist amplifier pool fell 92% in fifteen weeks; the version pool
// only 19% in nine; open DNS resolvers barely moved. We calibrate the
// monlist hazard to the paper's fifteen published weekly counts and apply
// proportional-hazards multipliers for the subgroup axes the paper measures:
// end-host vs infrastructure (§6.1: end-host share of amplifiers doubled,
// 17% -> 34%) and continent (§6.1: NA 97% remediated ... SA 63%).
#pragma once

#include <array>
#include <cstdint>

#include "net/registry.h"
#include "util/rng.h"

namespace gorilla::sim {

/// The paper's fifteen weekly global monlist amplifier counts (Table 1),
/// 2014-01-10 .. 2014-04-18 — the calibration target for the decay model.
inline constexpr std::array<std::uint64_t, 15> kPaperAmplifierCounts = {
    1405186, 1276639, 677112, 438722, 365724, 235370, 176931, 159629,
    123673,  121507,  110565, 108385, 112131, 108636, 106445};

/// Paper victim counts per sample (Table 1, right half) — used as shape
/// targets for the attack model, not consumed by the decay model itself.
inline constexpr std::array<std::uint64_t, 15> kPaperVictimCounts = {
    49979,  59937,  66373,  68319,  81284,  94125,  121362, 156643,
    153541, 169573, 167578, 160191, 143422, 108756, 107459};

/// Fraction of an ONP weekly scan's target pool that actually answers
/// (availability/churn): the first sample saw ~60% of the 2.166M unique
/// amplifier IPs eventually learned (§3.1).
inline constexpr double kScanAvailability = 0.63;

/// Survival fraction of the *live vulnerable pool* at sample week w
/// (counts de-rated by availability and normalized to week 0).
[[nodiscard]] double monlist_survival(int week) noexcept;

/// Hazard multiplier for a continent, calibrated to the §6.1 remediated
/// percentages (NA 97, OC 93, EU 89, AS 84, AF 77, SA 63).
[[nodiscard]] double continent_hazard(net::Continent c) noexcept;

/// Hazard multiplier for host type: infrastructure fixes faster than end
/// hosts; tuned so the end-host share of live amplifiers rises ~18% -> ~34%.
[[nodiscard]] double host_type_hazard(bool end_host) noexcept;

/// Samples the sample-week index (0..14) at which a server with combined
/// hazard h stops answering monlist, or -1 if it survives the horizon.
/// `u` is the server's (possibly farm-shared) uniform draw.
[[nodiscard]] int sample_monlist_fix_week(double hazard, double u) noexcept;

/// Version (mode 6) pool: -19% over the nine measured weeks (§3.3, Fig 10);
/// survival extrapolates linearly-in-log beyond.
[[nodiscard]] double version_survival(int week) noexcept;

/// Samples the week a server stops answering mode 6, or -1.
[[nodiscard]] int sample_version_fix_week(double hazard, double u,
                                          int horizon_weeks) noexcept;

/// Remediation does not stop when the paper's sampling does: the §3.4
/// follow-up probes (April-June) watched the March amplifier subset shrink
/// from ~60K to ~15K responders, roughly 13% per week. Samples a fix week
/// >= 15 for a server that survived the study window, or -1 if it outlives
/// `horizon_weeks` too.
[[nodiscard]] int sample_post_study_fix_week(double u,
                                             int horizon_weeks = 60) noexcept;

}  // namespace gorilla::sim
