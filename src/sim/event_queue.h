// A minimal discrete-event scheduler.
//
// Most of the reproduction advances in weekly strides (scan samples) or
// daily strides (traffic series), but the packet-level examples and the
// local-ISP forensics need sub-second event ordering: probes, responses,
// and attack bursts interleaving at a vantage point. Events at equal times
// fire in insertion order, which keeps runs deterministic.
//
// The heap is managed directly over a vector (std::push_heap/pop_heap)
// rather than through std::priority_queue: priority_queue::top() only
// offers a const reference, which forced a full copy of every event —
// including its std::function action and any captured state — on each pop.
// pop_heap moves the minimum to the back, where it can be moved out.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/time.h"

namespace gorilla::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules an action at an absolute time (>= now()).
  void schedule_at(util::SimTime when, Action action) {
    heap_.push_back(Event{when, next_sequence_++, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Schedules an action `delay` seconds from now().
  void schedule_in(util::SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Runs events until the queue drains or `until` is passed; returns the
  /// number of events executed. now() advances monotonically.
  std::size_t run_until(util::SimTime until) {
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.front().when <= until) {
      Event ev = pop_min();
      now_ = ev.when;
      ev.action();
      ++executed;
    }
    if (now_ < until) now_ = until;
    return executed;
  }

  /// Drains the queue completely; now() ends at the last event's time.
  std::size_t run() {
    std::size_t executed = 0;
    while (!heap_.empty()) {
      Event ev = pop_min();
      now_ = ev.when;
      ev.action();
      ++executed;
    }
    return executed;
  }

  [[nodiscard]] util::SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Event {
    util::SimTime when;
    std::uint64_t sequence;
    Action action;

    bool operator>(const Event& other) const noexcept {
      if (when != other.when) return when > other.when;
      return sequence > other.sequence;
    }
  };

  /// Moves the earliest event out of the heap (no copy of the action —
  /// the event may freely schedule more from inside its own run).
  Event pop_min() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  std::vector<Event> heap_;
  util::SimTime now_ = 0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace gorilla::sim
