#include "sim/scanner.h"

#include <algorithm>
#include <cmath>

#include "net/ethernet.h"
#include "ntp/mode7.h"
// Published downward interface (DESIGN.md §3f): sim emits into the study
// event vocabulary and consults collector geometry; the types cross the
// layer boundary by design, so the upward includes live here, waived, not
// in scanner.h.
#include "study/collector_sink.h"  // NOLINT(layer-break)
#include "study/events.h"          // NOLINT(layer-break)
#include "telemetry/darknet.h"     // NOLINT(layer-break)
#include "telemetry/flow.h"        // NOLINT(layer-break)

namespace gorilla::sim {

namespace {

constexpr std::uint64_t kProbeWireBytes =
    net::on_wire_bytes_for_udp(ntp::kMode7RequestBytes);

}  // namespace

ScanTraffic::ScanTraffic(World& world, const ScanTrafficConfig& config)
    : world_(world),
      config_(config),
      impairment_(config.impairment),
      rng_(config.seed) {
  const auto& registry = world_.registry();
  // Research scanners: stable, whole-space, weekly, from well-known hosts.
  for (int i = 0; i < config_.research_scanners; ++i) {
    ScanActor a;
    a.address = registry.random_address(rng_);
    a.benign = true;
    a.first_day = i < 2 ? 0 : 30 + i * 8;  // projects joined over time
    a.ipv4_coverage = 1.0;
    a.passes_per_week = 1.0;
    a.mode6_share = i % 2 == 0 ? 0.5 : 0.0;  // some also run version scans
    actors_.push_back(a);
  }
  // Malicious swarm: scaled with the world, ramping in from mid-December.
  const std::uint64_t scale = std::max<std::uint32_t>(1, world_.config().scale);
  const int n_malicious = static_cast<int>(
      std::max<std::uint64_t>(8, static_cast<std::uint64_t>(
                                     config_.malicious_scanners) /
                                     scale));
  for (int i = 0; i < n_malicious; ++i) {
    ScanActor a;
    a.address = registry.random_address(rng_);
    a.benign = false;
    a.first_day = config_.malicious_onset_day +
                  static_cast<int>(rng_.uniform(
                      static_cast<std::uint64_t>(config_.malicious_ramp_days)));
    // Most keep scanning through the horizon (scanning stayed high even as
    // the pool shrank, §5.1); some churn out.
    a.last_day = rng_.chance(0.3)
                     ? a.first_day + static_cast<int>(rng_.uniform_int(7, 60))
                     : 1 << 30;
    a.ipv4_coverage = config_.malicious_coverage * rng_.lognormal(0.0, 0.8);
    a.passes_per_week = rng_.uniform_real(1.0, 7.0);
    // Interest in the version command grows; sampled per actor.
    a.mode6_share = rng_.chance(0.2) ? rng_.uniform_real(0.1, 0.5) : 0.0;
    actors_.push_back(a);
  }
}

std::uint64_t ScanTraffic::darknet_packets_per_pass(
    const ScanActor& actor, const telemetry::DarknetTelescope& t) const {
  // A pass covering fraction c of IPv4 hits c * (dark /24s * 256) addresses.
  const double dark_addresses = t.effective_dark_slash24s() * 256.0;
  return static_cast<std::uint64_t>(dark_addresses * actor.ipv4_coverage);
}

void ScanTraffic::run_day(
    int day, telemetry::DarknetTelescope* darknet,
    const std::vector<telemetry::FlowCollector*>& vantages) const {
  study::CollectorSink sink;
  sink.darknet = darknet;
  sink.vantages = vantages;
  run_day(day, sink, darknet, vantages);
}

void ScanTraffic::run_day(
    int day, study::EventSink& sink,
    const telemetry::DarknetTelescope* darknet_geometry,
    const std::vector<telemetry::FlowCollector*>& vantage_geometry) const {
  // A pure (seed, day) substream: the day's scan traffic is independent of
  // every other day, so attack-day shards can simulate it on workers.
  util::Rng rng = util::Rng::substream(
      config_.seed, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                        day)));
  const util::SimTime day_start =
      static_cast<util::SimTime>(day) * util::kSecondsPerDay;
  for (const auto& actor : actors_) {
    if (day < actor.first_day || day > actor.last_day) continue;
    const double passes_today = actor.passes_per_week / 7.0;
    const bool scans_today =
        actor.benign ? rng.chance(passes_today)
                     : (rng.chance(config_.malicious_duty_cycle) &&
                        rng.chance(std::min(1.0, passes_today * 4)));
    if (!scans_today) continue;

    if (darknet_geometry != nullptr) {
      std::uint64_t pkts = darknet_packets_per_pass(actor, *darknet_geometry);
      if (impairment_.enabled()) {
        // Scan packets die in flight before the telescope like anywhere
        // else; key on the scanner so each actor thins reproducibly.
        pkts = impairment_.delivered_requests(actor.address.value(), day / 7,
                                              pkts);
      }
      if (pkts > 0) {
        sink.on_darknet_scan(actor.address, day, pkts, actor.benign);
      }
    }
    // Flows at regional vantages: malicious scanners sweep contiguous
    // slices, so a pass covering fraction c of IPv4 only intersects a
    // given regional prefix with probability ~c — which is why two distinct
    // sites almost never see the same malicious scanner (§7.2, Fig 16).
    // Research sweeps cover everything and are seen everywhere. The flow is
    // emitted *targeted* at this vantage's index: each vantage gets its own
    // destination draw, and broadcasting would let one vantage's slice leak
    // into another's space.
    for (std::size_t vi = 0; vi < vantage_geometry.size(); ++vi) {
      const auto* vantage = vantage_geometry[vi];
      if (!actor.benign &&
          !rng.chance(std::min(1.0, actor.ipv4_coverage * 0.5))) {
        continue;
      }
      if (vantage->prefixes().empty()) continue;
      telemetry::FlowRecord f;
      f.src = actor.address;
      // The flow represents the slice of this pass that landed inside this
      // vantage's space, so pick a destination there.
      const auto& prefix = vantage->prefixes()[rng.uniform(
          vantage->prefixes().size())];
      f.dst = prefix.at(rng.uniform(prefix.size()));
      f.src_port = static_cast<std::uint16_t>(rng.uniform_int(32768, 61000));
      f.dst_port = net::kNtpPort;
      f.ttl = kScanTtl;
      // Flow-exporter granularity: a sweep shows up as per-destination
      // flows of a packet or two. The representative flow carries the
      // per-destination view (what the §7.2 forensics keys on), not the
      // whole pass volume — scanning is a negligible share of NTP bytes at
      // a vantage either way.
      f.packets = actor.benign ? 2 : 1;
      if (impairment_.enabled()) {
        f.packets = impairment_.delivered_requests(
            actor.address.value() ^ f.dst.value(), day / 7, f.packets);
        if (f.packets == 0) continue;  // the whole slice died in flight
      }
      f.bytes = f.packets * kProbeWireBytes;
      f.payload_bytes = f.packets * ntp::kMode7RequestBytes;
      f.first = day_start + static_cast<util::SimTime>(
                                rng.uniform(util::kSecondsPerDay / 2));
      f.last = f.first + 3600;
      sink.on_flow(f, static_cast<int>(vi));
    }
  }
}

template <typename BeginServer, typename Emit>
void ScanTraffic::plan_seed_observations(int week, util::Rng& rng,
                                         BeginServer&& begin_server,
                                         Emit&& emit) {
  // Research scanners sweep everything weekly: every responding server's
  // monitor table gains (or refreshes) one probe entry per active scanner.
  // Malicious scanners cover random slices: approximated per server as a
  // Poisson number of distinct one-shot probes.
  const int day = 70 + week * 7;  // sample weeks anchor at 2014-01-10
  const util::SimTime when =
      static_cast<util::SimTime>(day) * util::kSecondsPerDay;
  const double malicious_rate_per_server = [&] {
    double r = 0.0;
    for (const auto& a : actors_) {
      if (a.benign || day < a.first_day || day > a.last_day) continue;
      r += a.ipv4_coverage * a.passes_per_week;
    }
    return r;
  }();

  for (const auto ai : world_.amplifier_indices()) {
    begin_server();
    auto* server = world_.detailed(ai);
    if (server == nullptr) continue;
    int actor_index = 0;
    for (const auto& a : actors_) {
      ++actor_index;
      if (!a.benign || day < a.first_day || day > a.last_day) continue;
      const bool mode6 = rng.chance(a.mode6_share);
      // Fates are hash draws, not RNG stream draws: checking them cannot
      // shift the clean stream, and the burned draws below keep an enabled
      // run's stream aligned whether or not this probe got through.
      if (impairment_.enabled() &&
          impairment_.request_fate(ai, week, 0x200 + actor_index) !=
              ImpairmentLayer::Fate::kDelivered) {
        (void)rng.uniform_int(1024, 65535);
        (void)rng.uniform(3600);
        continue;  // this scanner's probe never reached the server
      }
      emit(server, a.address,
           static_cast<std::uint16_t>(rng.uniform_int(1024, 65535)),
           static_cast<std::uint8_t>(mode6 ? ntp::Mode::kControl
                                           : ntp::Mode::kPrivate),
           when - static_cast<util::SimTime>(rng.uniform(3600)));
    }
    const std::uint64_t hits = rng.poisson(malicious_rate_per_server);
    for (std::uint64_t h = 0; h < hits && h < 16; ++h) {
      const auto& a = actors_[rng.uniform(actors_.size())];
      if (a.benign) continue;
      const bool mode6 = rng.chance(a.mode6_share);
      if (impairment_.enabled() &&
          impairment_.request_fate(ai, week, 0x300 + static_cast<int>(h)) !=
              ImpairmentLayer::Fate::kDelivered) {
        (void)rng.uniform_int(1024, 65535);
        (void)rng.uniform(3 * util::kSecondsPerDay);
        continue;
      }
      emit(server, a.address,
           static_cast<std::uint16_t>(rng.uniform_int(1024, 65535)),
           static_cast<std::uint8_t>(mode6 ? ntp::Mode::kControl
                                           : ntp::Mode::kPrivate),
           when - static_cast<util::SimTime>(
                      rng.uniform(3 * util::kSecondsPerDay)));
    }
  }
}

void ScanTraffic::seed_monitor_tables(int week, ShardedExecutor* executor) {
  // A pure (seed, week) substream, tag-disjoint from the per-day streams:
  // the weekly seeding plan no longer depends on how many days ran first.
  util::Rng rng = util::Rng::substream(
      config_.seed, (std::uint64_t{1} << 32) +
                        static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(week)));
  if (executor == nullptr || executor->jobs() <= 1) {
    plan_seed_observations(
        week, rng, [] {},
        [](ntp::NtpServer* server, net::Ipv4Address address,
           std::uint16_t port, std::uint8_t mode, util::SimTime when) {
          server->monitor().observe(address, port, mode, ntp::kNtpVersion,
                                    when);
        });
    return;
  }

  // Plan/apply split: the RNG plan is drawn sequentially above (identical
  // draw order to the inline path); only the monitor-table writes fan out.
  // Each server's entries live in one contiguous slice and each chunk owns
  // whole servers, so no two workers ever touch the same monitor table and
  // the per-server observe order matches the sequential engine exactly.
  struct Planned {
    ntp::NtpServer* server = nullptr;
    net::Ipv4Address address;
    std::uint16_t port = 0;
    std::uint8_t mode = 0;
    util::SimTime when = 0;
  };
  std::vector<Planned> plan;
  std::vector<std::size_t> offsets;
  offsets.reserve(world_.amplifier_indices().size() + 1);
  plan_seed_observations(
      week, rng, [&plan, &offsets] { offsets.push_back(plan.size()); },
      [&plan](ntp::NtpServer* server, net::Ipv4Address address,
              std::uint16_t port, std::uint8_t mode, util::SimTime when) {
        plan.push_back(Planned{server, address, port, mode, when});
      });
  offsets.push_back(plan.size());

  executor->parallel_for(
      offsets.size() - 1, /*chunk_size=*/256,
      [&plan, &offsets](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = offsets[i]; j < offsets[i + 1]; ++j) {
            const auto& p = plan[j];
            p.server->monitor().observe(p.address, p.port, p.mode,
                                        ntp::kNtpVersion, p.when);
          }
        }
      });
}

}  // namespace gorilla::sim
