#include "sim/scanner.h"

#include <algorithm>
#include <cmath>

#include "net/ethernet.h"
#include "ntp/mode7.h"

namespace gorilla::sim {

namespace {

constexpr std::uint64_t kProbeWireBytes =
    net::on_wire_bytes_for_udp(ntp::kMode7RequestBytes);

}  // namespace

ScanTraffic::ScanTraffic(World& world, const ScanTrafficConfig& config)
    : world_(world),
      config_(config),
      impairment_(config.impairment),
      rng_(config.seed) {
  const auto& registry = world_.registry();
  // Research scanners: stable, whole-space, weekly, from well-known hosts.
  for (int i = 0; i < config_.research_scanners; ++i) {
    ScanActor a;
    a.address = registry.random_address(rng_);
    a.benign = true;
    a.first_day = i < 2 ? 0 : 30 + i * 8;  // projects joined over time
    a.ipv4_coverage = 1.0;
    a.passes_per_week = 1.0;
    a.mode6_share = i % 2 == 0 ? 0.5 : 0.0;  // some also run version scans
    actors_.push_back(a);
  }
  // Malicious swarm: scaled with the world, ramping in from mid-December.
  const std::uint64_t scale = std::max<std::uint32_t>(1, world_.config().scale);
  const int n_malicious = static_cast<int>(
      std::max<std::uint64_t>(8, static_cast<std::uint64_t>(
                                     config_.malicious_scanners) /
                                     scale));
  for (int i = 0; i < n_malicious; ++i) {
    ScanActor a;
    a.address = registry.random_address(rng_);
    a.benign = false;
    a.first_day = config_.malicious_onset_day +
                  static_cast<int>(rng_.uniform(
                      static_cast<std::uint64_t>(config_.malicious_ramp_days)));
    // Most keep scanning through the horizon (scanning stayed high even as
    // the pool shrank, §5.1); some churn out.
    a.last_day = rng_.chance(0.3)
                     ? a.first_day + static_cast<int>(rng_.uniform_int(7, 60))
                     : 1 << 30;
    a.ipv4_coverage = config_.malicious_coverage * rng_.lognormal(0.0, 0.8);
    a.passes_per_week = rng_.uniform_real(1.0, 7.0);
    // Interest in the version command grows; sampled per actor.
    a.mode6_share = rng_.chance(0.2) ? rng_.uniform_real(0.1, 0.5) : 0.0;
    actors_.push_back(a);
  }
}

std::uint64_t ScanTraffic::darknet_packets_per_pass(
    const ScanActor& actor, const telemetry::DarknetTelescope& t) const {
  // A pass covering fraction c of IPv4 hits c * (dark /24s * 256) addresses.
  const double dark_addresses = t.effective_dark_slash24s() * 256.0;
  return static_cast<std::uint64_t>(dark_addresses * actor.ipv4_coverage);
}

void ScanTraffic::run_day(
    int day, telemetry::DarknetTelescope* darknet,
    const std::vector<telemetry::FlowCollector*>& vantages) {
  const util::SimTime day_start =
      static_cast<util::SimTime>(day) * util::kSecondsPerDay;
  for (const auto& actor : actors_) {
    if (day < actor.first_day || day > actor.last_day) continue;
    const double passes_today = actor.passes_per_week / 7.0;
    const bool scans_today =
        actor.benign ? rng_.chance(passes_today)
                     : (rng_.chance(config_.malicious_duty_cycle) &&
                        rng_.chance(std::min(1.0, passes_today * 4)));
    if (!scans_today) continue;

    if (darknet != nullptr) {
      std::uint64_t pkts = darknet_packets_per_pass(actor, *darknet);
      if (impairment_.enabled()) {
        // Scan packets die in flight before the telescope like anywhere
        // else; key on the scanner so each actor thins reproducibly.
        pkts = impairment_.delivered_requests(actor.address.value(), day / 7,
                                              pkts);
      }
      if (pkts > 0) {
        darknet->observe_scan(actor.address, day, pkts, actor.benign);
      }
    }
    // Flows at regional vantages: malicious scanners sweep contiguous
    // slices, so a pass covering fraction c of IPv4 only intersects a
    // given regional prefix with probability ~c — which is why two distinct
    // sites almost never see the same malicious scanner (§7.2, Fig 16).
    // Research sweeps cover everything and are seen everywhere.
    for (auto* vantage : vantages) {
      if (!actor.benign &&
          !rng_.chance(std::min(1.0, actor.ipv4_coverage * 0.5))) {
        continue;
      }
      if (vantage->prefixes().empty()) continue;
      telemetry::FlowRecord f;
      f.src = actor.address;
      // The flow represents the slice of this pass that landed inside this
      // vantage's space, so pick a destination there.
      const auto& prefix = vantage->prefixes()[rng_.uniform(
          vantage->prefixes().size())];
      f.dst = prefix.at(rng_.uniform(prefix.size()));
      f.src_port = static_cast<std::uint16_t>(rng_.uniform_int(32768, 61000));
      f.dst_port = net::kNtpPort;
      f.ttl = kScanTtl;
      // Flow-exporter granularity: a sweep shows up as per-destination
      // flows of a packet or two. The representative flow carries the
      // per-destination view (what the §7.2 forensics keys on), not the
      // whole pass volume — scanning is a negligible share of NTP bytes at
      // a vantage either way.
      f.packets = actor.benign ? 2 : 1;
      if (impairment_.enabled()) {
        f.packets = impairment_.delivered_requests(
            actor.address.value() ^ f.dst.value(), day / 7, f.packets);
        if (f.packets == 0) continue;  // the whole slice died in flight
      }
      f.bytes = f.packets * kProbeWireBytes;
      f.payload_bytes = f.packets * ntp::kMode7RequestBytes;
      f.first = day_start + static_cast<util::SimTime>(
                                rng_.uniform(util::kSecondsPerDay / 2));
      f.last = f.first + 3600;
      vantage->add(f);
    }
  }
}

void ScanTraffic::seed_monitor_tables(int week) {
  // Research scanners sweep everything weekly: every responding server's
  // monitor table gains (or refreshes) one probe entry per active scanner.
  // Malicious scanners cover random slices: approximated per server as a
  // Poisson number of distinct one-shot probes.
  const int day = 70 + week * 7;  // sample weeks anchor at 2014-01-10
  const util::SimTime when =
      static_cast<util::SimTime>(day) * util::kSecondsPerDay;
  const double malicious_rate_per_server = [&] {
    double r = 0.0;
    for (const auto& a : actors_) {
      if (a.benign || day < a.first_day || day > a.last_day) continue;
      r += a.ipv4_coverage * a.passes_per_week;
    }
    return r;
  }();

  for (const auto ai : world_.amplifier_indices()) {
    auto* server = world_.detailed(ai);
    if (server == nullptr) continue;
    int actor_index = 0;
    for (const auto& a : actors_) {
      ++actor_index;
      if (!a.benign || day < a.first_day || day > a.last_day) continue;
      const bool mode6 = rng_.chance(a.mode6_share);
      // Fates are hash draws, not RNG stream draws: checking them cannot
      // shift the clean stream, and the burned draws below keep an enabled
      // run's stream aligned whether or not this probe got through.
      if (impairment_.enabled() &&
          impairment_.request_fate(ai, week, 0x200 + actor_index) !=
              ImpairmentLayer::Fate::kDelivered) {
        (void)rng_.uniform_int(1024, 65535);
        (void)rng_.uniform(3600);
        continue;  // this scanner's probe never reached the server
      }
      server->monitor().observe(
          a.address, static_cast<std::uint16_t>(rng_.uniform_int(1024, 65535)),
          static_cast<std::uint8_t>(mode6 ? ntp::Mode::kControl
                                          : ntp::Mode::kPrivate),
          ntp::kNtpVersion,
          when - static_cast<util::SimTime>(rng_.uniform(3600)));
    }
    const std::uint64_t hits = rng_.poisson(malicious_rate_per_server);
    for (std::uint64_t h = 0; h < hits && h < 16; ++h) {
      const auto& a = actors_[rng_.uniform(actors_.size())];
      if (a.benign) continue;
      const bool mode6 = rng_.chance(a.mode6_share);
      if (impairment_.enabled() &&
          impairment_.request_fate(ai, week, 0x300 + static_cast<int>(h)) !=
              ImpairmentLayer::Fate::kDelivered) {
        (void)rng_.uniform_int(1024, 65535);
        (void)rng_.uniform(3 * util::kSecondsPerDay);
        continue;
      }
      server->monitor().observe(
          a.address, static_cast<std::uint16_t>(rng_.uniform_int(1024, 65535)),
          static_cast<std::uint8_t>(mode6 ? ntp::Mode::kControl
                                          : ntp::Mode::kPrivate),
          ntp::kNtpVersion,
          when - static_cast<util::SimTime>(
                     rng_.uniform(3 * util::kSecondsPerDay)));
    }
  }
}

}  // namespace gorilla::sim
