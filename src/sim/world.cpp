#include "sim/world.h"

#include <algorithm>
#include <cmath>

#include "ntp/sysinfo.h"
#include "sim/remediation.h"
#include "util/mem_stats.h"

namespace gorilla::sim {

namespace {

constexpr std::uint64_t kSaltAvailability = 0xa11;
constexpr std::uint64_t kSaltRehomeRoll = 0xd4c9;
constexpr std::uint64_t kSaltRehomeAddr = 0xadd6;

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint8_t initial_ttl_for_system(const std::string& system) noexcept {
  if (system == "cisco") return 255;
  if (system == "windows" || system == "cygwin") return 128;
  return 64;
}

}  // namespace

namespace {

net::RegistryConfig scaled_registry_config(const WorldConfig& config) {
  net::RegistryConfig reg = config.registry;
  const net::RegistryConfig defaults;
  if (config.auto_scale_registry && reg.num_ases == defaults.num_ases &&
      config.scale > 1) {
    reg.num_ases = std::max<std::uint32_t>(
        500, static_cast<std::uint32_t>(
                 static_cast<double>(reg.num_ases) /
                 std::sqrt(static_cast<double>(config.scale))));
  }
  if (reg.seed == util::Rng::kDefaultSeed) reg.seed = config.seed;
  return reg;
}

}  // namespace

World::World(const WorldConfig& config)
    : config_(config),
      registry_(scaled_registry_config(config)),
      pbl_(registry_),
      monitor_arena_(&util::MemStats::instance().counter("ntp.monitor"),
                     util::Arena::kDefaultBlockBytes,
                     &util::MemStats::instance().counter("ntp.monitor.live")) {
  util::Rng rng(config_.seed ^ 0x3017ULL);
  build_population(rng);
  assign_detail_tier(rng);
}

void World::build_population(util::Rng& rng) {
  const std::uint64_t scale = std::max<std::uint32_t>(1, config_.scale);
  // Visible pool target is config_.ever_amplifiers; servers answering only
  // the other implementation number ride on top (invisible to the scan).
  const std::uint64_t n_amp = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(config_.ever_amplifiers / scale) /
                   (1.0 - config_.other_impl_fraction)));
  const std::uint64_t n_total =
      std::max(config_.total_ntp_servers / scale, n_amp + 1);

  traits_.reserve(n_total);

  // Partition registry blocks once for placement draws.
  std::vector<std::uint32_t> residential_blocks;
  std::vector<std::uint32_t> infra_blocks;
  const auto& blocks = registry_.blocks();
  for (std::uint32_t i = 0; i < blocks.size(); ++i) {
    (blocks[i].residential ? residential_blocks : infra_blocks).push_back(i);
  }

  auto block_hazard = [&](std::uint32_t block_index) {
    const auto& as_info = registry_.as_info(blocks[block_index].asn);
    return continent_hazard(as_info.continent);
  };

  auto add_amplifier = [&](net::Ipv4Address addr, bool end_host, double u,
                           double hazard) {
    ServerTraits t;
    t.home_address = addr;
    t.ever_amplifier = true;
    t.end_host = end_host;
    t.dhcp_churn = end_host;
    t.other_impl = rng.chance(config_.other_impl_fraction);
    t.mode6_responder = rng.chance(0.55);
    int fix = -1;
    if (config_.remediation_speed > 0.0) {
      fix = sample_monlist_fix_week(hazard * config_.remediation_speed, u);
      if (fix < 0) {
        // Survivors of the study window keep getting fixed slowly (§3.4's
        // April-June follow-up saw the remnant shrink ~13%/week).
        fix = sample_post_study_fix_week(rng.uniform01());
      }
    }
    t.monlist_fix_week = static_cast<std::int16_t>(fix);
    if (t.mode6_responder) {
      t.version_fix_week = static_cast<std::int16_t>(
          sample_version_fix_week(1.0, rng.uniform01(), 40));
    }
    amplifier_indices_.push_back(static_cast<std::uint32_t>(traits_.size()));
    traits_.push_back(t);
  };

  // --- Amplifier pool: farms (co-addressed, co-managed) and solo hosts. ---
  const double solo_end_host_p =
      std::min(1.0, config_.amplifier_end_host_fraction /
                        std::max(1e-9, 1.0 - config_.farm_fraction));
  // farm_fraction is the fraction of *amplifiers* living in farms, so track
  // a farm quota rather than flipping a coin per placement (farms place
  // ~mean_farm_size hosts at once).
  const auto farm_quota = static_cast<std::uint64_t>(
      static_cast<double>(n_amp) * config_.farm_fraction);
  std::uint64_t farm_placed = 0;
  std::uint64_t placed = 0;
  while (placed < n_amp) {
    if (farm_placed < farm_quota && !infra_blocks.empty()) {
      // A managed farm: geometric size, consecutive addresses, one shared
      // remediation draw (the whole farm is patched together).
      const std::uint32_t bi =
          infra_blocks[rng.uniform(infra_blocks.size())];
      const auto& prefix = blocks[bi].prefix;
      std::uint64_t size =
          1 + rng.poisson(config_.mean_farm_size - 1.0);
      size = std::min<std::uint64_t>({size, n_amp - placed, prefix.size()});
      const std::uint64_t start = rng.uniform(prefix.size() - size + 1);
      const double shared_u = rng.uniform01();
      const double hazard =
          block_hazard(bi) * host_type_hazard(/*end_host=*/false);
      for (std::uint64_t k = 0; k < size; ++k) {
        add_amplifier(prefix.at(start + k), /*end_host=*/false, shared_u,
                      hazard);
      }
      placed += size;
      farm_placed += size;
    } else {
      const bool end_host = rng.chance(solo_end_host_p);
      const auto& pool = end_host && !residential_blocks.empty()
                             ? residential_blocks
                             : infra_blocks;
      const std::uint32_t bi = pool[rng.uniform(pool.size())];
      const auto& prefix = blocks[bi].prefix;
      const double hazard = block_hazard(bi) * host_type_hazard(end_host);
      add_amplifier(prefix.at(rng.uniform(prefix.size())), end_host,
                    rng.uniform01(), hazard);
      ++placed;
    }
  }

  // --- Regional cast for the §7 local views: amplifiers force-placed in
  // Merit, CSU, and FRGP space with the remediation timelines the paper
  // reports (CSU patched within a day on Jan 24 = week 2; Merit tracked
  // tickets over weeks; parts of FRGP lagged or never fixed). ---
  const auto& named = registry_.named();
  auto place_regional = [&](const net::Prefix& space, std::uint32_t count,
                            std::vector<std::uint32_t>& out,
                            auto&& fix_week_for) {
    for (std::uint32_t k = 0; k < count; ++k) {
      const net::Ipv4Address addr = space.at(rng.uniform(space.size()));
      out.push_back(static_cast<std::uint32_t>(traits_.size()));
      add_amplifier(addr, /*end_host=*/false, rng.uniform01(), 1.0);
      traits_.back().monlist_fix_week =
          static_cast<std::int16_t>(fix_week_for(k));
      traits_.back().other_impl = false;  // all locally visible
    }
  };
  place_regional(named.merit_space, config_.merit_amplifiers,
                 merit_amplifiers_, [&](std::uint32_t) {
                   return static_cast<int>(rng.uniform_int(2, 10));
                 });
  place_regional(named.csu_space, config_.csu_amplifiers, csu_amplifiers_,
                 [](std::uint32_t) { return 2; });  // secured Jan 24
  place_regional(
      net::Prefix{named.frgp_space.at(std::uint64_t{1} << 16), 16},
      config_.frgp_amplifiers, frgp_amplifiers_, [&](std::uint32_t) {
        return rng.chance(0.3) ? -1
                               : static_cast<int>(rng.uniform_int(4, 14));
      });

  // --- Mega amplifiers: prefer Asia (the paper's nine giants were all in
  // one country there), drawn from the amplifier pool. ---
  const std::uint64_t n_mega =
      std::max<std::uint64_t>(1, config_.mega_amplifiers / scale);
  std::vector<std::uint32_t> asia;
  for (const auto ai : amplifier_indices_) {
    const auto cont = registry_.continent_of(traits_[ai].home_address);
    if (cont == net::Continent::kAsia) asia.push_back(ai);
  }
  std::uint64_t assigned = 0;
  while (assigned < n_mega && !asia.empty()) {
    const auto pick = rng.uniform(asia.size());
    if (!traits_[asia[pick]].mega) {
      traits_[asia[pick]].mega = true;
      ++assigned;
    }
    if (assigned >= asia.size()) break;  // pool exhausted
  }
  for (std::uint64_t i = 0; assigned < n_mega && i < amplifier_indices_.size();
       ++i) {
    auto& t = traits_[amplifier_indices_[i]];
    if (!t.mega) {
      t.mega = true;
      ++assigned;
    }
  }
  // Megas are systematically misconfigured boxes that lingered for months:
  // the paper was still triggering them in June, and they only went quiet
  // weeks after JPCERT notified the operators (§3.4).
  for (const auto ai : amplifier_indices_) {
    if (traits_[ai].mega && rng.chance(0.85)) {
      // The JPCERT notification is part of the community response; in the
      // no-response counterfactual the megas never go quiet either.
      traits_[ai].monlist_fix_week =
          config_.remediation_speed > 0.0
              ? static_cast<std::int16_t>(rng.uniform_int(32, 40))  // ~June
              : std::int16_t{-1};
    }
  }

  // --- The rest of the NTP population: version responders and quiet
  // servers; never monlist amplifiers. ---
  const std::uint64_t n_versioners = config_.version_responders / scale;
  std::uint64_t amp_mode6 = 0;
  for (const auto ai : amplifier_indices_) {
    if (traits_[ai].mode6_responder) ++amp_mode6;
  }
  const std::uint64_t n_rest = n_total - traits_.size();
  const double rest_mode6_p =
      n_rest == 0 ? 0.0
                  : std::clamp(static_cast<double>(
                                   n_versioners > amp_mode6
                                       ? n_versioners - amp_mode6
                                       : 0) /
                                   static_cast<double>(n_rest),
                               0.0, 1.0);
  for (std::uint64_t i = 0; i < n_rest; ++i) {
    ServerTraits t;
    t.end_host = rng.chance(0.10);
    t.dhcp_churn = t.end_host;
    const auto& pool = t.end_host && !residential_blocks.empty()
                           ? residential_blocks
                           : infra_blocks;
    const std::uint32_t bi = pool[rng.uniform(pool.size())];
    t.home_address = blocks[bi].prefix.at(rng.uniform(blocks[bi].prefix.size()));
    t.mode6_responder = rng.chance(rest_mode6_p);
    if (t.mode6_responder) {
      t.version_fix_week = static_cast<std::int16_t>(
          sample_version_fix_week(1.0, rng.uniform01(), 40));
    }
    traits_.push_back(t);
  }
}

void World::assign_detail_tier(util::Rng& rng) {
  const std::uint64_t scale = std::max<std::uint32_t>(1, config_.scale);
  util::Rng detail_rng = rng.fork(0xde7a11);

  std::vector<std::uint32_t> detail_members = amplifier_indices_;
  // Plus a subsample of version-only responders for census experiments.
  const std::uint64_t want_versioners =
      config_.detailed_version_subsample / scale;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < traits_.size() && seen < want_versioners; ++i) {
    if (!traits_[i].ever_amplifier && traits_[i].mode6_responder) {
      detail_members.push_back(i);
      ++seen;
    }
  }

  detailed_.reserve(detail_members.size());
  std::size_t mega_rank = 0;
  for (const auto idx : detail_members) {
    ServerTraits& t = traits_[idx];
    ntp::NtpServerConfig cfg;
    cfg.address = t.home_address;
    cfg.accepted_impl = t.other_impl ? ntp::Implementation::kXntpdOld
                                     : ntp::Implementation::kXntpd;
    const auto pool = t.mega ? ntp::SystemPool::kMega
                     : t.ever_amplifier ? ntp::SystemPool::kAllAmplifiers
                                        : ntp::SystemPool::kNonAmplifier;
    const std::string system = ntp::sample_system_string(pool, detail_rng);
    cfg.sysvars = ntp::make_system_variables(
        system, ntp::sample_compile_year(detail_rng),
        ntp::sample_stratum(detail_rng), detail_rng);
    cfg.initial_ttl = initial_ttl_for_system(system);
    if (t.mega) {
      // §3.4's giants are specific boxes: the worst returned ~136 GB to one
      // probe, six exceeded 1 GB. The first few megas get that deterministic
      // ladder (so the roster's top survives any world scale); the rest draw
      // a Pareto(xm=2, alpha=0.5) tail capped at the same order.
      static constexpr std::uint32_t kGiantLadder[] = {
          270'000'000, 50'000'000, 20'000'000, 8'000'000, 4'000'000,
          2'500'000};
      if (mega_rank < sizeof(kGiantLadder) / sizeof(kGiantLadder[0])) {
        cfg.loop_repeat = kGiantLadder[mega_rank];
      } else {
        const double repeat = detail_rng.pareto(2.0, 0.5);
        cfg.loop_repeat =
            static_cast<std::uint32_t>(std::min(repeat, 3.0e8));
      }
      ++mega_rank;
    }
    t.detailed_index = static_cast<std::uint32_t>(detailed_.size());
    detailed_.emplace_back(std::move(cfg), &monitor_arena_);
  }
}

ntp::NtpServer* World::detailed(std::uint32_t server_index) {
  const auto di = traits_[server_index].detailed_index;
  return di == ServerTraits::kNoDetail ? nullptr : &detailed_[di];
}

const ntp::NtpServer* World::detailed(std::uint32_t server_index) const {
  const auto di = traits_[server_index].detailed_index;
  return di == ServerTraits::kNoDetail ? nullptr : &detailed_[di];
}

double World::stable_uniform(std::uint32_t server_index, int week,
                             std::uint64_t salt) const noexcept {
  const std::uint64_t h =
      mix64(config_.seed ^ mix64(server_index * 0x9e3779b97f4a7c15ULL ^
                                 mix64(static_cast<std::uint64_t>(week + 64) ^
                                       mix64(salt))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

util::SimTime World::last_restart_before(std::uint32_t server_index, int week,
                                         util::SimTime now) const {
  // Characteristic mean uptime: lognormal, median ~2.6 days, heavy tail
  // (infrastructure boxes run for months). Drawn once per server.
  const double u_uptime =
      stable_uniform(server_index, /*week=*/-1, 0x0b7131ULL);
  const double z = [&] {
    // Inverse-normal via Box-Muller with a second stable draw.
    const double u2 = stable_uniform(server_index, -1, 0x0b7132ULL);
    const double r = std::sqrt(-2.0 * std::log(std::max(u_uptime, 1e-12)));
    return r * std::cos(6.283185307179586 * u2);
  }();
  const double mean_uptime_days = std::clamp(2.6 * std::exp(1.4 * z), 0.25,
                                             400.0);
  // Memoryless age since last restart, re-drawn per sample week.
  const double u_age = stable_uniform(server_index, week, 0xa9e5ULL);
  const double age_days =
      -mean_uptime_days * std::log(std::max(1.0 - u_age, 1e-12));
  return now - static_cast<util::SimTime>(age_days * 86400.0);
}

net::Ipv4Address World::address_at(std::uint32_t server_index, int week) const {
  const ServerTraits& t = traits_[server_index];
  if (!t.dhcp_churn || week <= 0) return t.home_address;
  // Latest rehome at or before `week` determines the current lease.
  int lease_epoch = 0;
  for (int w = 1; w <= week; ++w) {
    if (stable_uniform(server_index, w, kSaltRehomeRoll) <
        config_.dhcp_rehome_rate) {
      lease_epoch = w;
    }
  }
  if (lease_epoch == 0) return t.home_address;
  const auto block = registry_.block_index_of(t.home_address);
  if (!block) return t.home_address;
  const auto& prefix = registry_.blocks()[*block].prefix;
  const std::uint64_t offset = mix64(config_.seed ^ (server_index * 0x51ed2701ULL) ^
                                     (static_cast<std::uint64_t>(lease_epoch)
                                      << 32) ^
                                     kSaltRehomeAddr) %
                               prefix.size();
  return prefix.at(offset);
}

bool World::reachable(std::uint32_t server_index, int week) const {
  return stable_uniform(server_index, week, kSaltAvailability) <
         config_.availability;
}

bool World::responds_monlist(std::uint32_t server_index, int week) const {
  const ServerTraits& t = traits_[server_index];
  if (!t.ever_amplifier) return false;
  if (t.monlist_fix_week >= 0 && week >= t.monlist_fix_week) return false;
  return reachable(server_index, week);
}

bool World::responds_version(std::uint32_t server_index, int week) const {
  const ServerTraits& t = traits_[server_index];
  if (!t.mode6_responder) return false;
  if (t.version_fix_week >= 0 && week >= t.version_fix_week) return false;
  return stable_uniform(server_index, week, kSaltAvailability ^ 0x6ULL) <
         config_.availability;
}

std::uint64_t World::live_amplifier_count(int week) const {
  std::uint64_t count = 0;
  for (const auto ai : amplifier_indices_) {
    const auto& t = traits_[ai];
    if (t.monlist_fix_week < 0 || week < t.monlist_fix_week) ++count;
  }
  return count;
}

}  // namespace gorilla::sim
