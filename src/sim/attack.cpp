#include "sim/attack.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "net/ethernet.h"
#include "sim/scanner.h"
#include "sim/sharded_executor.h"
// Published downward interface (DESIGN.md §3f): attack traffic is reported
// in the telemetry vocabulary (flow records, labels, darknet geometry).
#include "telemetry/darknet.h"  // NOLINT(layer-break)
#include "telemetry/flow.h"     // NOLINT(layer-break)
#include "telemetry/traffic.h"  // NOLINT(layer-break)

namespace gorilla::sim {

namespace {

/// One spoofed trigger: the plain 48-byte MON_GETLIST_1 request (the small
/// variant attack scripts use — it maximizes the payload amplification
/// ratios Table 5 reports, ~900-1300x for primed tables).
constexpr std::uint64_t kTriggerPayloadBytes = ntp::kMode7RequestBytes;
constexpr std::uint64_t kTriggerWireBytes =
    net::on_wire_bytes_for_udp(kTriggerPayloadBytes);

/// TTL of spoofed trigger packets as seen ~19 hops from the (typically
/// Windows botnet) sender — §7.2's mode TTL of 109.
constexpr std::uint8_t kAttackTtl = 109;

/// Day-local record ids: day in the high bits, per-day sequence below.
constexpr int kIdSequenceBits = 24;

double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * std::clamp(t, 0.0, 1.0);
}

}  // namespace

/// Mutable worker-side state for one simulated day. Everything here is
/// owned by the shard: its RNG substream, its result buffers, and the
/// bookkeeping that replaces live reads of shared mutable state (monitor
/// sizes, booter target lists).
struct AttackEngine::DayShard {
  util::Rng rng;
  DayShardResult result;
  /// server index -> slot in result.monitor_deltas (first-touch order).
  std::unordered_map<std::uint32_t, std::size_t> delta_slot;
  /// Distinct (server, victim) keys observed this day, and the per-server
  /// count of them — the shard-local overlay on the snapshot size.
  std::unordered_map<std::uint64_t, char> seen_keys;
  std::unordered_map<std::uint32_t, std::uint32_t> new_keys;

  explicit DayShard(util::Rng day_rng) : rng(day_rng) {}

  ntp::MonitorDelta& delta_for(std::uint32_t server_index) {
    const auto [it, inserted] =
        delta_slot.try_emplace(server_index, result.monitor_deltas.size());
    if (inserted) {
      result.monitor_deltas.emplace_back(server_index, ntp::MonitorDelta{});
    }
    return result.monitor_deltas[it->second].second;
  }

  /// Records a victim key on a server; returns the estimated distinct-entry
  /// count (snapshot + this shard's additions, current key included).
  std::uint32_t note_key(std::uint32_t server_index, std::uint32_t victim_key,
                         std::uint32_t snapshot_size) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(server_index) << 32) | victim_key;
    if (seen_keys.try_emplace(key, '\0').second) ++new_keys[server_index];
    return snapshot_size + new_keys[server_index];
  }
};

const std::vector<std::pair<std::uint16_t, double>>& attacked_port_mix() {
  // Table 4 of the paper; the sentinel port 0 stands for "random ephemeral"
  // and absorbs the probability mass beyond the top 20.
  static const std::vector<std::pair<std::uint16_t, double>> kMix = {
      {80, 0.362},   {123, 0.238},  {3074, 0.079}, {50557, 0.062},
      {53, 0.025},   {25565, 0.021}, {19, 0.012},  {22, 0.011},
      {5223, 0.007}, {27015, 0.006}, {43594, 0.004}, {9987, 0.004},
      {8080, 0.004}, {6005, 0.003}, {7777, 0.003}, {2052, 0.003},
      {1025, 0.002}, {1026, 0.002}, {88, 0.002},   {90, 0.002},
      {0, 0.148},
  };
  return kMix;
}

AttackEngine::AttackEngine(World& world, const AttackEngineConfig& config,
                           study::EventSink& sink)
    : AttackEngine(world, config, &sink, SinkPtr{}) {}

AttackEngine::AttackEngine(World& world, const AttackEngineConfig& config,
                           AttackSinks sinks)
    : AttackEngine(world, config, nullptr, SinkPtr{}) {
  legacy_sinks_ = std::move(sinks);
}

AttackEngine::AttackEngine(World& world, const AttackEngineConfig& config,
                           study::EventSink* sink, SinkPtr)
    : world_(world),
      config_(config),
      sink_(sink != nullptr ? sink : &legacy_sinks_),
      impairment_(config.impairment),
      rng_(config.seed),
      booter_zipf_(1, 1.0),
      hosting_zipf_(1, 1.0),
      port_sampler_([] {
        std::vector<double> w;
        for (const auto& [_, frac] : attacked_port_mix()) w.push_back(frac);
        return util::WeightedSampler(w);
      }()) {
  for (const auto& [port, _] : attacked_port_mix()) {
    port_values_.push_back(port);
  }
  // Hosting AS list, OVH analogue first (it is the paper's top victim AS).
  const auto& registry = world_.registry();
  hosting_ases_.push_back(registry.named().ovh_analogue);
  hosting_ases_.push_back(registry.named().cloudflare_analogue);
  for (const auto& as_info : registry.ases()) {
    if (as_info.category == net::AsCategory::kHosting &&
        as_info.asn != registry.named().ovh_analogue &&
        as_info.asn != registry.named().cloudflare_analogue) {
      hosting_ases_.push_back(as_info.asn);
    }
  }
  hosting_zipf_ = util::ZipfSampler(hosting_ases_.size(),
                                    config_.hosting_concentration_zipf);

  // The booter market (§5.2): a Zipf-share population of attack services;
  // roughly half run booter-grade (priming) tooling.
  const std::uint32_t n_booters = std::max<std::uint32_t>(
      4, config_.num_booters / std::max<std::uint32_t>(1,
                                                       world_.config().scale));
  booters_.reserve(n_booters);
  for (std::uint32_t b = 0; b < n_booters; ++b) {
    BooterProfile profile;
    profile.id = b;
    profile.primes_amplifiers = rng_.chance(config_.primed_fraction);
    booters_.push_back(std::move(profile));
  }
  attacks_per_booter_.assign(n_booters, 0);
  booter_zipf_ = util::ZipfSampler(n_booters, config_.booter_market_zipf);

  // Sticky cross-site common-victim pool (Fig 15's 291 common targets,
  // scaled): mostly hosting-provider hosts.
  const std::uint64_t common_pool_size = std::max<std::uint64_t>(
      4, 300 / std::max<std::uint32_t>(1, world_.config().scale));
  for (std::uint64_t i = 0; i < common_pool_size; ++i) {
    const auto asn = hosting_ases_[hosting_zipf_.sample(rng_)];
    const auto& info = registry.as_info(asn);
    const auto& block = registry.blocks()[info.block_indices[rng_.uniform(
        info.block_indices.size())]];
    common_victims_.push_back(block.prefix.at(rng_.uniform(block.prefix.size())));
  }
}

double AttackEngine::ntp_attacks_per_day(int day) noexcept {
  // Calibrated to the paper's arc: near-zero before public attack tooling
  // spread in mid-December 2013, explosive growth into the Feb 11-12 peak
  // (the CloudFlare/OVH 400 Gbps window), then decline as remediation bites.
  auto exp_ramp = [](double from, double to, double t) {
    return from * std::pow(to / from, std::clamp(t, 0.0, 1.0));
  };
  if (day < 45) return 20.0;                       // Nov 1 - Dec 15: trickle
  if (day < 70) return exp_ramp(100.0, 4500.0, (day - 45) / 25.0);
  if (day < 103) return exp_ramp(4500.0, 20000.0, (day - 70) / 33.0);
  if (day < 133) return exp_ramp(20000.0, 7000.0, (day - 103) / 30.0);
  return lerp(7000.0, 4500.0, (day - 133) / 48.0);
}

int AttackEngine::week_of_day(int day) noexcept {
  // Day 70 is 2014-01-10, the first ONP sample date.
  const int delta = day - 70;
  return delta >= 0 ? delta / 7 : (delta - 6) / 7;
}

AttackEngine::DayWindowPlan AttackEngine::make_window_plan(int from,
                                                           int to) const {
  DayWindowPlan plan;
  plan.base_week = week_of_day(from);
  const int last_week = week_of_day(std::max(from, to - 1));
  plan.live_pools.resize(
      static_cast<std::size_t>(last_week - plan.base_week) + 1);
  for (int week = plan.base_week; week <= last_week; ++week) {
    auto& pool =
        plan.live_pools[static_cast<std::size_t>(week - plan.base_week)];
    for (const auto ai : world_.amplifier_indices()) {
      const auto& t = world_.servers()[ai];
      if (t.monlist_fix_week < 0 || week < t.monlist_fix_week) {
        pool.push_back(ai);
      }
    }
  }
  // Snapshot monitor sizes once per window, on the calling thread: shards
  // estimate non-primed dump sizes from snapshot + their own additions, so
  // the estimate depends only on (window start state, seed, day) — never
  // on what sibling shards are concurrently writing.
  plan.monitor_sizes.assign(world_.servers().size(), 0);
  const World& world = world_;
  for (const auto ai : world_.amplifier_indices()) {
    if (const auto* server = world.detailed(ai)) {
      plan.monitor_sizes[ai] =
          static_cast<std::uint32_t>(server->monitor().size());
    }
  }
  plan.wants_flows = sink_->wants_flows();
  plan.wants_labels = sink_->wants_labels();
  return plan;
}

std::uint32_t AttackEngine::pick_booter(util::Rng& rng) const {
  return static_cast<std::uint32_t>(booter_zipf_.sample(rng));
}

net::Ipv4Address AttackEngine::pick_victim(
    int day, util::Rng& rng, std::vector<net::Ipv4Address>& booter_targets,
    bool& end_host, bool& common_pool) const {
  const auto& registry = world_.registry();
  end_host = false;
  common_pool = false;

  const double u = rng.uniform01();
  if (u < config_.common_victim_rate && !common_victims_.empty()) {
    common_pool = true;
    return common_victims_[rng.uniform(common_victims_.size())];
  }
  if (u < config_.common_victim_rate + config_.merit_victim_rate) {
    const auto& space = registry.named().merit_space;
    return space.at(rng.uniform(space.size()));
  }
  if (u < config_.common_victim_rate + config_.merit_victim_rate +
              config_.frgp_victim_rate) {
    const auto& space = registry.named().frgp_space;
    return space.at(rng.uniform(space.size()));
  }
  if (u < config_.common_victim_rate + config_.merit_victim_rate +
              config_.frgp_victim_rate + config_.ovh_victim_rate) {
    // The OVH-analogue campaign: a few thousand IPs hit repeatedly. The
    // concentrated set is capped by the block size so a small-world block
    // can never be overrun.
    const auto& info = registry.as_info(registry.named().ovh_analogue);
    const auto& block = registry.blocks()[info.block_indices[rng.uniform(
        info.block_indices.size())]];
    return block.prefix.at(
        rng.uniform(std::min<std::uint64_t>(4096, block.prefix.size())));
  }
  if (rng.chance(config_.repeat_victim_rate) && !booter_targets.empty()) {
    return booter_targets[rng.uniform(booter_targets.size())];
  }

  const double end_host_p =
      lerp(config_.end_host_victim_initial, config_.end_host_victim_final,
           static_cast<double>(day) /
               static_cast<double>(config_.horizon_days));
  net::Ipv4Address victim;
  if (rng.chance(end_host_p)) {
    end_host = true;
    victim = registry
                 .random_address(rng,
                                 [](const net::RoutedBlock& b) {
                                   return b.residential;
                                 })
                 .value_or(registry.random_address(rng));
  } else {
    const auto asn = hosting_ases_[hosting_zipf_.sample(rng)];
    const auto& info = registry.as_info(asn);
    const auto& block = registry.blocks()[info.block_indices[rng.uniform(
        info.block_indices.size())]];
    victim = block.prefix.at(rng.uniform(block.prefix.size()));
  }
  // The fresh pick joins the booter's customer-target list (bounded; old
  // feuds get displaced).
  if (booter_targets.size() < 16) {
    booter_targets.push_back(victim);
  } else {
    booter_targets[rng.uniform(booter_targets.size())] = victim;
  }
  return victim;
}

std::uint16_t AttackEngine::pick_port(bool /*end_host*/,
                                      util::Rng& rng) const {
  const std::uint16_t port = port_values_[port_sampler_.sample(rng)];
  if (port != 0) return port;
  return static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
}

void AttackEngine::pick_amplifiers(int day, bool common_pool, bool primed,
                                   const std::vector<std::uint32_t>& live_pool,
                                   util::Rng& rng,
                                   std::vector<std::uint32_t>& out) const {
  out.clear();
  const int week = week_of_day(day);
  auto alive = [&](std::uint32_t idx) {
    const auto& t = world_.servers()[idx];
    return t.monlist_fix_week < 0 || week < t.monlist_fix_week;
  };
  auto sample_regional = [&](const std::vector<std::uint32_t>& pool,
                             std::size_t want) {
    std::size_t taken = 0;
    for (const auto idx : pool) {
      if (taken >= want) break;
      if (alive(idx) && rng.chance(0.85)) {
        out.push_back(idx);
        ++taken;
      }
    }
  };

  if (common_pool) {
    // Coordinated cross-site reflection: amplifiers at both Merit and FRGP
    // (what makes the Fig 15 victims visible from both vantage points).
    sample_regional(world_.merit_amplifiers(), 40);
    sample_regional(world_.frgp_amplifiers(), 40);
  } else if (rng.chance(config_.regional_reflection_rate)) {
    if (rng.chance(0.5)) {
      sample_regional(world_.merit_amplifiers(), 40);
    } else {
      // The CSU amplifiers were always used together (§7.1).
      sample_regional(world_.csu_amplifiers(), 9);
      sample_regional(world_.frgp_amplifiers(), 20);
    }
  }
  if (!out.empty()) return;

  if (live_pool.empty()) return;
  // Amplifiers per attack shrinks with the pool (§6.3: amplifiers seen per
  // victim fell an order of magnitude).
  const double pool_fraction =
      static_cast<double>(live_pool.size()) /
      static_cast<double>(std::max<std::size_t>(1,
                                                world_.amplifier_indices()
                                                    .size()));
  const double base_k = (4.0 + 56.0 * pool_fraction) *
                        (primed ? config_.primed_amplifier_boost : 1.0);
  const std::size_t k = std::clamp<std::size_t>(
      static_cast<std::size_t>(base_k * rng.lognormal(0.0, 0.6)), 1,
      std::min<std::size_t>(live_pool.size(), 4000));
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(live_pool[rng.uniform(live_pool.size())]);
  }
}

void AttackEngine::apply(AttackRecord& rec, int day, const DayWindowPlan& plan,
                         DayShard& shard, double min_duration_s) const {
  util::Rng& rng = shard.rng;
  study::EventBuffer& events = shard.result.events;
  // Duration: heavy-tailed lognormal whose median grows (15s -> 40s) while
  // the tail shrinks (95th 6.5h in January -> ~50min by April), §4.3.4.
  const double t = std::clamp((day - 45) / 80.0, 0.0, 1.0);
  const double median = lerp(15.0, 40.0, t);
  const double sigma = lerp(3.6, 2.45, t);
  const double duration = std::max(
      min_duration_s,
      std::clamp(rng.lognormal(std::log(median), sigma), 1.0, 6.5 * 3600.0));

  // Diurnal start: evening-weighted hour (the §7.1 manual-element pattern).
  double hour;
  do {
    hour = rng.uniform_real(0.0, 24.0);
  } while (rng.uniform01() >
           0.5 + 0.45 * std::sin((hour - 14.0) / 24.0 * 6.2831853));
  rec.start = static_cast<util::SimTime>(day) * util::kSecondsPerDay +
              static_cast<util::SimTime>(hour * 3600.0);
  rec.end = rec.start + static_cast<util::SimTime>(duration);

  double pps =
      rec.primed
          ? std::min(config_.trigger_pps_cap,
                     rng.pareto(config_.primed_pps_scale,
                                config_.primed_pps_alpha))
          : std::min(config_.trigger_pps_cap,
                     rng.pareto(config_.trigger_pps_scale,
                                config_.trigger_pps_alpha));
  // Long campaigns run at lower sustained rates (booters time-slice their
  // capacity); this keeps multi-hour attacks from dwarfing the daily total.
  // min_duration_s == 0.0 is the config's literal "no floor" sentinel.
  if (duration > 1200.0 && min_duration_s == 0.0) {  // NOLINT(float-eq)
    pps *= std::sqrt(1200.0 / duration);
  }
  rec.triggers_per_amplifier =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(pps * duration));

  // Pass 1: per-amplifier offered volume (bounded by each amplifier's
  // uplink). Monitor-table evidence is *buffered* as a per-server delta —
  // the spoofed triggers always arrive regardless of what the victim can
  // absorb — and applied on the calling thread during the ordered merge.
  struct AmpEmission {
    const ntp::NtpServer* server = nullptr;
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    std::uint64_t payload = 0;
    std::uint64_t delivered_triggers = 0;
    double rate_bps = 0.0;
  };
  std::vector<AmpEmission> emissions;
  emissions.reserve(rec.amplifiers.size());
  const int week = week_of_day(day);
  const double response_delivery = impairment_.response_delivery_fraction();
  double peak_bps = 0.0;
  std::uint64_t total_delivered_triggers = 0;
  const World& world = world_;  // const view: workers never mutate the world
  for (const auto amp_index : rec.amplifiers) {
    // Spoofed triggers cross a lossy network too: only the delivered ones
    // leave monitor-table evidence or elicit a response.
    const std::uint64_t delivered_triggers =
        impairment_.enabled()
            ? impairment_.delivered_requests(amp_index, week,
                                             rec.triggers_per_amplifier)
            : rec.triggers_per_amplifier;
    total_delivered_triggers += delivered_triggers;
    if (delivered_triggers == 0) continue;
    const auto* server = world.detailed(amp_index);
    if (server == nullptr) continue;
    shard.delta_for(amp_index)
        .push_back(ntp::MonitorObservation{
            rec.victim, rec.victim_port,
            static_cast<std::uint8_t>(ntp::Mode::kPrivate), ntp::kNtpVersion,
            delivered_triggers, rec.start, rec.end});

    // Non-primed dumps return however many entries the table holds; the
    // shard estimates that as the window-start snapshot plus the distinct
    // victims it has itself added to this server today.
    const std::uint32_t estimated_size = shard.note_key(
        amp_index, rec.victim.value(), plan.monitor_sizes[amp_index]);
    const std::size_t entries =
        rec.primed ? ntp::kMonlistMaxEntries
                   : std::min<std::size_t>(ntp::kMonlistMaxEntries,
                                           std::max<std::uint32_t>(
                                               1, estimated_size));
    // A looping mega amplifier cannot emit faster than its uplink; cap its
    // sustained contribution at ~500 Mbps (the paper saw ~50-500 Mbps
    // steady streams from megas, §3.4).
    const std::uint64_t dump_wire = ntp::monlist_dump_wire_bytes(entries);
    const std::uint64_t dump_packets = ntp::monlist_dump_packets(entries);
    std::uint64_t loop = std::uint64_t{server->config().loop_repeat} + 1;
    if (loop > 1) {
      const double duration_s =
          static_cast<double>(std::max<util::SimTime>(1, rec.end - rec.start));
      const double budget_bytes = 500e6 / 8.0 * duration_s;
      const double per_loop_bytes =
          static_cast<double>(dump_wire) *
          static_cast<double>(delivered_triggers);
      loop = std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(
                 loop, static_cast<std::uint64_t>(
                           budget_bytes / std::max(1.0, per_loop_bytes))));
    }
    const std::uint64_t per_trigger_wire = dump_wire * loop;
    const std::uint64_t per_trigger_packets = dump_packets * loop;
    const std::uint64_t per_trigger_payload =
        ntp::monlist_dump_udp_bytes(entries) * loop;

    // A mode 7 rate limit (Merit's interim mitigation) answers only a
    // fraction of the trigger stream.
    const std::uint32_t rate_limit =
        server->config().mode7_responses_per_minute;
    const double answered_fraction =
        rate_limit > 0 && pps > 0.0
            ? std::min(1.0, (static_cast<double>(rate_limit) / 60.0) / pps)
            : 1.0;

    // The amplifier's uplink saturates: responses beyond it are dropped at
    // its access link and never reach the victim.
    const double duration_s =
        static_cast<double>(std::max<util::SimTime>(1, rec.end - rec.start));
    const double uplink_budget_bytes =
        config_.amplifier_uplink_bps / 8.0 * duration_s;
    const double offered_bytes =
        static_cast<double>(per_trigger_wire) *
        static_cast<double>(delivered_triggers);
    const double answered_bytes = offered_bytes * answered_fraction;
    const double uplink_fraction =
        answered_bytes > uplink_budget_bytes && answered_bytes > 0.0
            ? uplink_budget_bytes / answered_bytes
            : 1.0;
    const double emit_fraction = answered_fraction * uplink_fraction;

    // Response packets cross the lossy network back to the victim; a 1.0
    // delivery fraction multiplies exactly, so the clean path is unchanged.
    AmpEmission emission;
    emission.server = server;
    emission.delivered_triggers = delivered_triggers;
    emission.bytes = static_cast<std::uint64_t>(offered_bytes * emit_fraction *
                                                response_delivery);
    emission.packets = static_cast<std::uint64_t>(
        static_cast<double>(per_trigger_packets) *
        static_cast<double>(delivered_triggers) * emit_fraction *
        response_delivery);
    emission.payload = static_cast<std::uint64_t>(
        static_cast<double>(per_trigger_payload) *
        static_cast<double>(delivered_triggers) * emit_fraction *
        response_delivery);
    emission.rate_bps =
        std::min(static_cast<double>(per_trigger_wire) * pps *
                     answered_fraction * 8.0,
                 config_.amplifier_uplink_bps) *
        response_delivery;
    peak_bps += emission.rate_bps;
    emissions.push_back(emission);
  }

  // Victim-side saturation: the target's upstream cannot absorb more than
  // ~450 Gbps (the record NTP attacks peaked near 400 Gbps); traffic beyond
  // that is dropped before the victim and never appears in flow data.
  const double victim_scale =
      peak_bps > config_.victim_saturation_bps && peak_bps > 0.0
          ? config_.victim_saturation_bps / peak_bps
          : 1.0;
  rec.peak_bps = std::min(peak_bps, config_.victim_saturation_bps);

  // Pass 2: totals and vantage flows, scaled by victim saturation.
  for (const auto& emission : emissions) {
    const auto amp_bytes = static_cast<std::uint64_t>(
        static_cast<double>(emission.bytes) * victim_scale);
    const auto amp_packets = static_cast<std::uint64_t>(
        static_cast<double>(emission.packets) * victim_scale);
    const auto amp_payload = static_cast<std::uint64_t>(
        static_cast<double>(emission.payload) * victim_scale);
    rec.response_bytes += amp_bytes;
    rec.response_packets += amp_packets;

    // Flows at any vantage that can see them (collectors drop transit).
    if (events.wants_flows()) {
      const auto amp_addr = emission.server->config().address;
      telemetry::FlowRecord response;
      response.src = amp_addr;
      response.dst = rec.victim;
      response.src_port = net::kNtpPort;
      response.dst_port = rec.victim_port;
      response.ttl = static_cast<std::uint8_t>(
          emission.server->config().initial_ttl > 12
              ? emission.server->config().initial_ttl - 12
              : 1);
      response.packets = amp_packets;
      response.bytes = amp_bytes;
      response.payload_bytes = amp_payload;
      response.first = rec.start;
      response.last = rec.end;

      telemetry::FlowRecord trigger;
      trigger.src = rec.victim;  // spoofed
      trigger.dst = amp_addr;
      trigger.src_port = rec.victim_port;
      trigger.dst_port = net::kNtpPort;
      trigger.ttl = kAttackTtl;
      trigger.packets = emission.delivered_triggers;
      trigger.bytes = kTriggerWireBytes * emission.delivered_triggers;
      trigger.payload_bytes =
          kTriggerPayloadBytes * emission.delivered_triggers;
      trigger.first = rec.start;
      trigger.last = rec.end;

      events.on_flow(response, study::kAllVantages);
      events.on_flow(trigger, study::kAllVantages);
    }
  }

  {
    const double trigger_bytes =
        static_cast<double>(kTriggerWireBytes) *
        static_cast<double>(total_delivered_triggers);
    events.on_global_bytes(day, telemetry::ProtocolClass::kNtp,
                           static_cast<double>(rec.response_bytes) +
                               trigger_bytes);
  }
  if (events.wants_labels() && rec.peak_bps > 0.0) {
    // Arbor-analogue visibility: the vendor feed catches a size-dependent
    // fraction of attack events (small ones are easy to miss, §2.2).
    double visibility = config_.arbor_visibility_small;
    switch (telemetry::classify_size(rec.peak_bps)) {
      case telemetry::SizeClass::kMedium:
        visibility = config_.arbor_visibility_medium;
        break;
      case telemetry::SizeClass::kLarge:
        visibility = config_.arbor_visibility_large;
        break;
      case telemetry::SizeClass::kSmall:
        break;
    }
    if (rng.chance(visibility)) {
      events.on_attack_label(telemetry::LabeledAttack{
          rec.start, telemetry::AttackVector::kNtp, rec.peak_bps});
    }
  }
}

void AttackEngine::emit_background_labels(int day, DayShard& shard) const {
  // Skipping an unwatched label stream also skips its RNG draws — exactly
  // the pre-bus null-pointer behavior, so RNG streams stay aligned.
  if (!shard.result.events.wants_labels()) return;
  util::Rng& rng = shard.rng;
  const std::uint64_t scale = std::max<std::uint32_t>(1, world_.config().scale);
  const std::uint64_t n =
      rng.poisson(config_.background_attacks_per_day /
                  static_cast<double>(scale));
  static constexpr telemetry::AttackVector kVectors[] = {
      telemetry::AttackVector::kDns, telemetry::AttackVector::kSynFlood,
      telemetry::AttackVector::kIcmp, telemetry::AttackVector::kChargen,
      telemetry::AttackVector::kOther};
  static constexpr double kVectorW[] = {0.22, 0.40, 0.13, 0.05, 0.20};
  static const util::WeightedSampler sampler{std::span<const double>(kVectorW)};
  for (std::uint64_t i = 0; i < n; ++i) {
    telemetry::LabeledAttack a;
    a.start = static_cast<util::SimTime>(day) * util::kSecondsPerDay +
              static_cast<util::SimTime>(rng.uniform(util::kSecondsPerDay));
    a.vector = kVectors[sampler.sample(rng)];
    // 90% small / 10% medium / 1% large (§2.2), heavy tail inside each bin.
    const double u = rng.uniform01();
    if (u < 0.89) {
      a.peak_bps = rng.pareto(20e6, 1.2);
      a.peak_bps = std::min(a.peak_bps, 1.9e9);
    } else if (u < 0.99) {
      a.peak_bps = rng.uniform_real(2e9, 20e9);
    } else {
      a.peak_bps = rng.pareto(20e9, 2.0);
      a.peak_bps = std::min(a.peak_bps, 120e9);
    }
    shard.result.events.on_attack_label(a);
  }
}

AttackEngine::DayShardResult AttackEngine::simulate_day(
    int day, const DayWindowPlan& plan) const {
  // The day's RNG is a pure substream of (engine seed, day): days are
  // independent of each other and of how they are batched into windows.
  DayShard shard(util::Rng::substream(config_.seed,
                                      static_cast<std::uint64_t>(
                                          static_cast<std::uint32_t>(day))));
  shard.result.day = day;
  shard.result.events = study::EventBuffer(plan.wants_flows,
                                           plan.wants_labels);
  std::vector<std::vector<net::Ipv4Address>> booter_targets(booters_.size());
  const auto& live_pool = plan.live_pools[static_cast<std::size_t>(
      week_of_day(day) - plan.base_week)];
  util::Rng& rng = shard.rng;

  emit_background_labels(day, shard);

  std::uint64_t seq = 0;
  auto next_record_id = [day, &seq] {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(day))
            << kIdSequenceBits) |
           seq++;
  };

  if (config_.scripted_ovh_event && day >= 101 && day <= 103) {
    // §4.4: the record ~400 Gbps reflection attack on the OVH analogue,
    // February 10-12. Thousands of amplifiers — including, notably, the
    // FRGP ones (§7) — pointed at a small set of hosting IPs for hours.
    AttackRecord rec;
    rec.id = next_record_id();
    const auto& registry = world_.registry();
    const auto& info = registry.as_info(registry.named().ovh_analogue);
    const auto& block = registry.blocks()[info.block_indices[0]];
    rec.victim = block.prefix.at(1 + rng.uniform(64));
    rec.victim_port = 80;
    rec.primed = true;
    // Event magnitude scales with the world so its share of scaled global
    // traffic matches the real event's share of real traffic.
    const std::size_t want = std::min<std::size_t>(
        live_pool.size(),
        std::max<std::size_t>(8, 1200 / std::max<std::uint32_t>(
                                            1, world_.config().scale)));
    for (std::size_t i = 0; i < want; ++i) {
      rec.amplifiers.push_back(live_pool[rng.uniform(live_pool.size())]);
    }
    for (const auto idx : world_.frgp_amplifiers()) {
      const auto& t = world_.servers()[idx];
      if (t.monlist_fix_week < 0 || week_of_day(day) < t.monlist_fix_week) {
        rec.amplifiers.push_back(idx);
      }
    }
    if (!rec.amplifiers.empty()) {
      // Stretch the scripted event into a long-running campaign block.
      apply(rec, day, plan, shard, /*min_duration_s=*/8 * 3600.0);
      shard.result.records.push_back(std::move(rec));
      shard.result.scripted_count = shard.result.records.size();
    }
  }

  const std::uint64_t scale = std::max<std::uint32_t>(1, world_.config().scale);
  const std::uint64_t n = rng.poisson(ntp_attacks_per_day(day) /
                                      static_cast<double>(scale));
  shard.result.records.reserve(shard.result.records.size() + n);
  for (std::uint64_t i = 0; i < n; ++i) {
    AttackRecord rec;
    rec.id = next_record_id();
    rec.booter_id = pick_booter(rng);
    bool end_host = false, common_pool = false;
    rec.victim = pick_victim(day, rng, booter_targets[rec.booter_id],
                             end_host, common_pool);
    rec.victim_end_host = end_host;
    rec.victim_port = pick_port(end_host, rng);
    // Priming requires booter-grade tooling, which only spreads with the
    // mid-December attack-script releases; before that everything is
    // ad-hoc.
    rec.primed = booters_[rec.booter_id].primes_amplifiers &&
                 rng.chance(std::clamp((day - 45) / 25.0, 0.0, 1.0));
    pick_amplifiers(day, common_pool, rec.primed, live_pool, rng,
                    rec.amplifiers);
    if (rec.amplifiers.empty()) continue;
    apply(rec, day, plan, shard);
    shard.result.records.push_back(std::move(rec));
  }

  shard.result.booter_picks = std::move(booter_targets);
  return std::move(shard.result);
}

void AttackEngine::consume_day(DayShardResult& result) {
  // Monitor deltas first, then the buffered bus events: the two touch
  // disjoint state (tables vs. collectors), so only each delta's internal
  // order — per-table chronological — matters for the merge.
  for (auto& [server_index, delta] : result.monitor_deltas) {
    if (auto* server = world_.detailed(server_index)) {
      server->monitor().apply_delta(delta);
    }
  }
  result.events.replay_into(*sink_);
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& rec = result.records[i];
    victim_ever_[rec.victim.value()] = true;
    ++totals_.ntp_attacks;
    totals_.response_packets += rec.response_packets;
    totals_.response_bytes += rec.response_bytes;
    if (i < result.scripted_count) {
      scripted_events_.push_back(rec);
    } else {
      ++attacks_per_booter_[rec.booter_id];
    }
  }
  // Merge each booter's day-local picks into its rolling customer-target
  // list (most recent 16), purely diagnostic state for the §5.2 analyses.
  for (std::size_t b = 0; b < result.booter_picks.size(); ++b) {
    auto& targets = booters_[b].customer_targets;
    for (const auto& victim : result.booter_picks[b]) {
      targets.push_back(victim);
    }
    if (targets.size() > 16) {
      targets.erase(targets.begin(),
                    targets.end() - static_cast<std::ptrdiff_t>(16));
    }
  }
}

std::vector<AttackRecord> AttackEngine::run_day(int day) {
  const DayWindowPlan plan = make_window_plan(day, day + 1);
  DayShardResult result = simulate_day(day, plan);
  std::vector<AttackRecord> records = result.records;
  consume_day(result);
  return records;
}

void AttackEngine::run_days(int from, int to, ShardedExecutor* executor,
                            ScanTraffic* scans,
                            const telemetry::DarknetTelescope* darknet_geometry,
                            const std::vector<telemetry::FlowCollector*>*
                                vantage_geometry) {
  if (to <= from) return;
  const DayWindowPlan plan = make_window_plan(from, to);
  static const std::vector<telemetry::FlowCollector*> kNoVantages;
  const auto& vantages =
      vantage_geometry != nullptr ? *vantage_geometry : kNoVantages;
  // A null executor runs the same produce/consume pair inline (the K=1
  // path IS the sequential engine — DESIGN.md §3d).
  ShardedExecutor inline_executor(nullptr);
  ShardedExecutor& exec = executor != nullptr ? *executor : inline_executor;
  exec.run_ordered(
      static_cast<std::size_t>(to - from), /*chunk_size=*/1,
      [this, from, &plan, scans, darknet_geometry,
       &vantages](std::size_t begin, std::size_t /*end*/) {
        const int day = from + static_cast<int>(begin);
        DayShardResult result = simulate_day(day, plan);
        if (scans != nullptr) {
          // The day's scan traffic joins the shard, ordered after the
          // attack events — the sequential engines' per-day interleave.
          scans->run_day(day, result.events, darknet_geometry, vantages);
        }
        return result;
      },
      [this](DayShardResult result) { consume_day(result); });
}

}  // namespace gorilla::sim
