#include "sim/remediation.h"

#include <algorithm>
#include <cmath>

namespace gorilla::sim {

double monlist_survival(int week) noexcept {
  if (week < 0) return 1.0;
  const std::size_t idx = std::min<std::size_t>(
      static_cast<std::size_t>(week), kPaperAmplifierCounts.size() - 1);
  return static_cast<double>(kPaperAmplifierCounts[idx]) /
         static_cast<double>(kPaperAmplifierCounts[0]);
}

double continent_hazard(net::Continent c) noexcept {
  // h_c = ln(survival_c) / ln(global survival at horizon), where survival_c
  // is 1 - remediated fraction from §6.1 and the global horizon survival is
  // 106445/1405186 ~ 0.0757 (ln ~ -2.581).
  switch (c) {
    case net::Continent::kNorthAmerica: return 1.36;  // 97% remediated
    case net::Continent::kOceania: return 1.03;       // 93%
    case net::Continent::kEurope: return 0.855;       // 89%
    case net::Continent::kAsia: return 0.710;         // 84%
    case net::Continent::kAfrica: return 0.569;       // 77%
    case net::Continent::kSouthAmerica: return 0.385; // 63%
  }
  return 1.0;
}

double host_type_hazard(bool end_host) noexcept {
  // Tuned (see remediation tests) so the live-pool end-host share roughly
  // doubles over the horizon, matching Table 1's 18.5% -> 33.5%.
  return end_host ? 0.72 : 1.08;
}

int sample_monlist_fix_week(double hazard, double u) noexcept {
  for (int w = 1; w < static_cast<int>(kPaperAmplifierCounts.size()); ++w) {
    if (std::pow(monlist_survival(w), hazard) < u) return w;
  }
  return -1;
}

double version_survival(int week) noexcept {
  if (week <= 0) return 1.0;
  // -19% over nine weeks, log-linear: per-week survival factor.
  constexpr double kPerWeek = 0.97689;  // 0.97689^9 ~ 0.81
  return std::pow(kPerWeek, week);
}

int sample_version_fix_week(double hazard, double u,
                            int horizon_weeks) noexcept {
  for (int w = 1; w <= horizon_weeks; ++w) {
    if (std::pow(version_survival(w), hazard) < u) return w;
  }
  return -1;
}

int sample_post_study_fix_week(double u, int horizon_weeks) noexcept {
  constexpr double kPostWeeklySurvival = 0.87;  // 60K -> 15K over ~10 weeks
  double survival = 1.0;
  for (int w = 15; w <= horizon_weeks; ++w) {
    survival *= kPostWeeklySurvival;
    if (survival < u) return w;
  }
  return -1;
}

}  // namespace gorilla::sim
