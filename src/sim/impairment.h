// Deterministic network-impairment layer.
//
// The real measurements survived a hostile data plane: UDP probes vanish,
// monlist dumps arrive with missing 6-entry segments, replies come back
// truncated or garbled, middleboxes return ICMP unreachable, and later ntpd
// builds rate-limit mode 7 responses (silence or a KoD). The seed simulation
// modelled none of this — every probe was answered instantly, completely and
// losslessly — so the prober and the downstream analyses had never seen
// partial data. This layer sits on the packet path between a sender and an
// ntp::NtpServer and injects exactly those impairments.
//
// Every decision is a pure function of (seed, server, week, attempt[, packet])
// via splitmix64-style hashing — no mutable state, no RNG stream to keep in
// sync — so runs are bit-for-bit reproducible and any caller can replay any
// week in isolation. An all-zero ImpairmentConfig (the default) makes the
// layer provably inert: enabled() is false and every query short-circuits to
// "delivered, undamaged", leaving seed behaviour byte-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace gorilla::sim {

/// Knobs for the impairment layer. All-zero defaults are a provable no-op.
struct ImpairmentConfig {
  /// Mixed into every hash draw; keep 0 to inherit pure structural hashing.
  std::uint64_t seed = 0;

  /// Probability a request (probe or spoofed trigger) is lost in flight and
  /// never reaches the server — no monitor-table evidence, no reply.
  double request_loss = 0.0;
  /// Probability an attempt dies to ICMP unreachable (filtered middlebox,
  /// transient routing hole); like request loss, the server never sees it.
  double icmp_unreachable_rate = 0.0;
  /// Probability the server processes the request (monitor table updated)
  /// but the entire reply is lost on the return path.
  double transient_silence_rate = 0.0;

  /// Per-response-datagram drop probability: monlist tables arrive with
  /// missing 6-entry segments.
  double response_packet_loss = 0.0;
  /// Probability a response datagram is truncated mid-payload (its header
  /// then lies about the item geometry — the parsers must reject it).
  double response_truncate_rate = 0.0;
  /// Probability a response datagram has bytes flipped in transit.
  double response_garble_rate = 0.0;

  /// Fraction of servers that deploy response rate limiting (later ntpd's
  /// `limited` restriction, or Merit-style interim filters).
  double rate_limiter_fraction = 0.0;
  /// Responses such a server answers per window (a sample week on the probe
  /// path, one campaign on the attack path) before going quiet. 0 disables.
  std::uint32_t rate_limit_per_window = 0;
  /// When limited, send a 48-byte Kiss-of-Death instead of pure silence
  /// (ntpd's `limited kod`). Well-behaved clients stop retrying on KoD.
  bool rate_limit_kod = false;

  /// True when any knob is set — i.e. the layer can alter behaviour at all.
  [[nodiscard]] bool any() const noexcept {
    return request_loss > 0.0 || icmp_unreachable_rate > 0.0 ||
           transient_silence_rate > 0.0 || response_packet_loss > 0.0 ||
           response_truncate_rate > 0.0 || response_garble_rate > 0.0 ||
           (rate_limiter_fraction > 0.0 && rate_limit_per_window > 0);
  }
};

/// Stateless impairment oracle. Copyable, cheap, safe to share const.
class ImpairmentLayer {
 public:
  /// Inert layer: everything is delivered undamaged.
  ImpairmentLayer() = default;
  explicit ImpairmentLayer(const ImpairmentConfig& config)
      : config_(config), enabled_(config.any()) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const ImpairmentConfig& config() const noexcept {
    return config_;
  }

  /// What happened to one request on one attempt, before any server logic.
  enum class Fate : std::uint8_t {
    kDelivered,    ///< reached the server; reply subject to degrade_response
    kRequestLost,  ///< vanished in flight — server never saw it
    kUnreachable,  ///< ICMP unreachable — server never saw it
    kSilent,       ///< server processed it but the whole reply was lost
  };

  [[nodiscard]] Fate request_fate(std::uint32_t server_index, int week,
                                  int attempt) const noexcept;

  /// True when this server deploys response rate limiting (per-server trait,
  /// stable across weeks).
  [[nodiscard]] bool is_rate_limiter(std::uint32_t server_index) const noexcept;

  /// True when the server's window budget is exhausted: it has already
  /// answered `responses_used` times this window and will drop (or KoD) the
  /// next request. Callers track the per-window response count.
  [[nodiscard]] bool rate_limited(std::uint32_t server_index,
                                  std::uint32_t responses_used) const noexcept {
    return enabled_ && config_.rate_limit_per_window > 0 &&
           responses_used >= config_.rate_limit_per_window &&
           is_rate_limiter(server_index);
  }

  /// What degrade_response did to a materialized reply.
  struct Damage {
    std::uint64_t packets_dropped = 0;
    std::uint64_t packets_truncated = 0;
    std::uint64_t packets_garbled = 0;
    /// Wire/UDP bytes removed by drops and truncation (exact, for accounting).
    std::uint64_t udp_bytes_lost = 0;
    std::uint64_t wire_bytes_lost = 0;

    [[nodiscard]] bool degraded() const noexcept {
      return packets_dropped + packets_truncated + packets_garbled > 0;
    }
  };

  /// Applies per-datagram loss/truncation/garbling to a materialized reply
  /// in place. Pure in (seed, server, week, attempt, packet index): replaying
  /// the same attempt damages the same packets the same way.
  Damage degrade_response(std::uint32_t server_index, int week, int attempt,
                          std::vector<net::UdpPacket>& packets) const;

  /// Aggregate channels (attack trigger streams, scan sweeps): deterministic
  /// count of requests out of `offered` that reach server `key` in `week`.
  /// Expected value is offered * (1 - request_loss - icmp_unreachable_rate);
  /// the fractional remainder is resolved by one hash draw so totals stay
  /// exact across reruns.
  [[nodiscard]] std::uint64_t delivered_requests(
      std::uint32_t key, int week, std::uint64_t offered) const noexcept;

  /// Same for response packets flowing back (victim-bound reflection
  /// traffic, telescope-bound scan backscatter).
  [[nodiscard]] std::uint64_t delivered_responses(
      std::uint32_t key, int week, std::uint64_t offered) const noexcept;

  /// Fraction of response packets that survive the return path; aggregate
  /// byte totals scale by this.
  [[nodiscard]] double response_delivery_fraction() const noexcept {
    return enabled_ ? 1.0 - config_.response_packet_loss : 1.0;
  }

 private:
  /// Deterministic uniform in [0,1) from (seed, a, b, c, salt).
  [[nodiscard]] double draw(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                            std::uint64_t salt) const noexcept;

  [[nodiscard]] std::uint64_t thin(std::uint32_t key, int week,
                                   std::uint64_t offered, double loss,
                                   std::uint64_t salt) const noexcept;

  ImpairmentConfig config_{};
  bool enabled_ = false;
};

}  // namespace gorilla::sim
