#include "sim/impairment.h"

#include <algorithm>
#include <cmath>

namespace gorilla::sim {

namespace {

// Decision salts: one per independent impairment channel so enabling one
// knob never perturbs another's draws.
constexpr std::uint64_t kSaltRequestLoss = 0x10c5;
constexpr std::uint64_t kSaltUnreachable = 0x1c4b;
constexpr std::uint64_t kSaltSilence = 0x51ce;
constexpr std::uint64_t kSaltPacketDrop = 0xd209;
constexpr std::uint64_t kSaltTruncate = 0x7294;
constexpr std::uint64_t kSaltTruncatePoint = 0x7295;
constexpr std::uint64_t kSaltGarble = 0x6a2b;
constexpr std::uint64_t kSaltRateLimiter = 0x2a7e;
constexpr std::uint64_t kSaltAggRequest = 0xa662;
constexpr std::uint64_t kSaltAggResponse = 0xa663;

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double ImpairmentLayer::draw(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                             std::uint64_t salt) const noexcept {
  const std::uint64_t h = mix64(
      config_.seed ^
      mix64(a * 0x9e3779b97f4a7c15ULL ^ mix64(b ^ mix64(c ^ salt))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

ImpairmentLayer::Fate ImpairmentLayer::request_fate(std::uint32_t server_index,
                                                    int week,
                                                    int attempt) const noexcept {
  if (!enabled_) return Fate::kDelivered;
  const auto w = static_cast<std::uint64_t>(week + 64);
  const auto k = static_cast<std::uint64_t>(attempt);
  if (config_.request_loss > 0.0 &&
      draw(server_index, w, k, kSaltRequestLoss) < config_.request_loss) {
    return Fate::kRequestLost;
  }
  if (config_.icmp_unreachable_rate > 0.0 &&
      draw(server_index, w, k, kSaltUnreachable) <
          config_.icmp_unreachable_rate) {
    return Fate::kUnreachable;
  }
  if (config_.transient_silence_rate > 0.0 &&
      draw(server_index, w, k, kSaltSilence) <
          config_.transient_silence_rate) {
    return Fate::kSilent;
  }
  return Fate::kDelivered;
}

bool ImpairmentLayer::is_rate_limiter(std::uint32_t server_index) const noexcept {
  if (!enabled_ || config_.rate_limiter_fraction <= 0.0 ||
      config_.rate_limit_per_window == 0) {
    return false;
  }
  return draw(server_index, 0, 0, kSaltRateLimiter) <
         config_.rate_limiter_fraction;
}

ImpairmentLayer::Damage ImpairmentLayer::degrade_response(
    std::uint32_t server_index, int week, int attempt,
    std::vector<net::UdpPacket>& packets) const {
  Damage damage;
  if (!enabled_ || packets.empty()) return damage;
  if (config_.response_packet_loss <= 0.0 &&
      config_.response_truncate_rate <= 0.0 &&
      config_.response_garble_rate <= 0.0) {
    return damage;
  }

  const auto w = static_cast<std::uint64_t>(week + 64);
  std::vector<net::UdpPacket> kept;
  kept.reserve(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    // Fold (attempt, packet index) into one key; packets keep independent
    // draws across attempts so a retry can recover a previously lost segment.
    const std::uint64_t pk =
        static_cast<std::uint64_t>(attempt) * 0x100000001ULL + i;
    auto& pkt = packets[i];
    if (config_.response_packet_loss > 0.0 &&
        draw(server_index, w, pk, kSaltPacketDrop) <
            config_.response_packet_loss) {
      ++damage.packets_dropped;
      damage.udp_bytes_lost += pkt.payload.size();
      damage.wire_bytes_lost += pkt.on_wire_bytes();
      continue;
    }
    if (config_.response_truncate_rate > 0.0 && !pkt.payload.empty() &&
        draw(server_index, w, pk, kSaltTruncate) <
            config_.response_truncate_rate) {
      const std::uint64_t before_udp = pkt.payload.size();
      const std::uint64_t before_wire = pkt.on_wire_bytes();
      const auto cut = static_cast<std::size_t>(
          draw(server_index, w, pk, kSaltTruncatePoint) *
          static_cast<double>(pkt.payload.size()));
      pkt.payload.resize(cut);
      ++damage.packets_truncated;
      damage.udp_bytes_lost += before_udp - pkt.payload.size();
      damage.wire_bytes_lost += before_wire - pkt.on_wire_bytes();
    } else if (config_.response_garble_rate > 0.0 && !pkt.payload.empty() &&
               draw(server_index, w, pk, kSaltGarble) <
                   config_.response_garble_rate) {
      // Flip a handful of deterministic bits; length is preserved so the
      // damage is semantic (lying headers, corrupt items), not structural.
      const std::uint64_t h = mix64(config_.seed ^ mix64(server_index) ^
                                    mix64(pk ^ kSaltGarble));
      const int flips = 2 + static_cast<int>(h & 0x3);
      for (int f = 0; f < flips; ++f) {
        const std::uint64_t g = mix64(h + static_cast<std::uint64_t>(f));
        pkt.payload[g % pkt.payload.size()] ^=
            static_cast<std::uint8_t>(1u << ((g >> 17) & 0x7));
      }
      ++damage.packets_garbled;
    }
    kept.push_back(std::move(pkt));
  }
  packets = std::move(kept);
  return damage;
}

std::uint64_t ImpairmentLayer::thin(std::uint32_t key, int week,
                                    std::uint64_t offered, double loss,
                                    std::uint64_t salt) const noexcept {
  if (!enabled_ || loss <= 0.0 || offered == 0) return offered;
  if (loss >= 1.0) return 0;
  const double expected = static_cast<double>(offered) * (1.0 - loss);
  const auto base = static_cast<std::uint64_t>(expected);
  const double frac = expected - static_cast<double>(base);
  const std::uint64_t extra =
      draw(key, static_cast<std::uint64_t>(week + 64), offered, salt) < frac
          ? 1
          : 0;
  return std::min(offered, base + extra);
}

std::uint64_t ImpairmentLayer::delivered_requests(
    std::uint32_t key, int week, std::uint64_t offered) const noexcept {
  // Request loss and unreachability are independent per-packet events; the
  // aggregate channel composes their survival probabilities.
  const double loss = 1.0 - (1.0 - config_.request_loss) *
                                (1.0 - config_.icmp_unreachable_rate);
  return thin(key, week, offered, loss, kSaltAggRequest);
}

std::uint64_t ImpairmentLayer::delivered_responses(
    std::uint32_t key, int week, std::uint64_t offered) const noexcept {
  return thin(key, week, offered, config_.response_packet_loss,
              kSaltAggResponse);
}

}  // namespace gorilla::sim
