// Scanning actors — §5's darknet signal and the probe entries amplifiers log.
//
// Two populations scan for NTP amplifiers: research projects (a handful of
// fixed IPs sweeping the whole IPv4 space on a weekly cadence, in the open,
// labeled benign by their hostnames) and malicious scanners (a growing swarm
// that appears in mid-December 2013, each covering partial, randomized
// slices). Both leak packets into the darknet telescope; both leave mode 6/7
// probe entries in amplifier monitor tables (the "scanner/low-volume" class
// of §4.2); and both appear as dport-123 flows at the regional vantages
// (where §7.2 reads their TTLs: research/malicious scanning is Linux-built).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/impairment.h"
#include "sim/sharded_executor.h"
#include "sim/world.h"
#include "util/rng.h"

// The interface only passes collectors by pointer/reference, so the upward
// layers stay out of this header; scanner.cpp includes them (waived).
namespace gorilla::study {
class EventSink;
}  // namespace gorilla::study
namespace gorilla::telemetry {
class DarknetTelescope;
class FlowCollector;
}  // namespace gorilla::telemetry

namespace gorilla::sim {

struct ScanActor {
  net::Ipv4Address address;
  bool benign = false;       ///< research project (hostname-labeled)
  int first_day = 0;         ///< first active sim day
  int last_day = 1 << 30;    ///< last active sim day
  double ipv4_coverage = 1.0;///< fraction of the address space swept per pass
  double passes_per_week = 1.0;
  double mode6_share = 0.0;  ///< fraction of probes using the version command
};

struct ScanTrafficConfig {
  std::uint64_t seed = util::Rng::kDefaultSeed ^ 0x5ca7ULL;
  int research_scanners = 6;
  /// Malicious scanner swarm size at plateau (full scale; scaled by world).
  int malicious_scanners = 9000;
  int malicious_onset_day = 44;   ///< mid-December 2013
  int malicious_ramp_days = 21;
  /// Daily probability an active malicious scanner actually scans.
  double malicious_duty_cycle = 0.6;
  double malicious_coverage = 0.02;  ///< slice of IPv4 per malicious pass

  /// Network impairment on the scan paths: darknet-bound packets, vantage
  /// flows, and monitor-table probe entries all thin consistently with the
  /// probe/attack channels. All-zero = the seed's lossless behaviour.
  ImpairmentConfig impairment;
};

/// Drives all non-ONP scanning for a horizon: darknet packets, amplifier
/// monitor-table probe entries, and vantage flows.
class ScanTraffic {
 public:
  ScanTraffic(World& world, const ScanTrafficConfig& config);

  /// Runs one day of scanning. `darknet`, `vantages` may be empty/null.
  void run_day(int day, telemetry::DarknetTelescope* darknet,
               const std::vector<telemetry::FlowCollector*>& vantages) const;

  /// Event-stream form: darknet packets become on_darknet_scan() events and
  /// vantage flows become on_flow(flow, vantage_index) events. The darknet
  /// and vantage collectors are consulted for *geometry only* (dark-space
  /// size, local prefixes); all observations flow through `sink`. Draws the
  /// exact RNG stream of the direct form above.
  ///
  /// Each day draws from a pure (seed, day) substream, so a day is a pure
  /// function of the day index — AttackEngine::run_days() calls this from
  /// worker threads with a per-shard buffer as `sink` (DESIGN.md §3d).
  void run_day(int day, study::EventSink& sink,
               const telemetry::DarknetTelescope* darknet_geometry,
               const std::vector<telemetry::FlowCollector*>& vantage_geometry)
      const;

  /// Injects this week's research-scanner probe entries into the detailed
  /// servers' monitor tables (called once per sample week by the harness,
  /// cheaper than per-day per-server observation). The plan draws from a
  /// pure (seed, week) substream, independent of the day streams.
  ///
  /// With a (multi-job) executor, the RNG plan is drawn sequentially —
  /// burning exactly the draws of the inline path — and only the per-server
  /// monitor-table writes fan out, each server owned by one chunk; the
  /// result is bit-identical for any job count.
  void seed_monitor_tables(int week, ShardedExecutor* executor = nullptr);

  [[nodiscard]] const std::vector<ScanActor>& actors() const noexcept {
    return actors_;
  }

 private:
  [[nodiscard]] std::uint64_t darknet_packets_per_pass(
      const ScanActor& actor, const telemetry::DarknetTelescope& t) const;

  /// The single source of the seed_monitor_tables() RNG stream: walks every
  /// amplifier slot, calling `begin_server()` once per slot (before any
  /// draws) and `emit(server, address, port, mode, when)` per planned
  /// monitor-table observation. Both the inline and the plan/apply paths
  /// run through here, so their draw order cannot diverge.
  template <typename BeginServer, typename Emit>
  void plan_seed_observations(int week, util::Rng& rng,
                              BeginServer&& begin_server, Emit&& emit);

  World& world_;
  ScanTrafficConfig config_;
  ImpairmentLayer impairment_;
  util::Rng rng_;                  ///< construction-time draws only
  std::vector<ScanActor> actors_;  ///< research first, then malicious
};

/// TTL of scan packets at a ~10-hop vantage: Linux initial 64 -> mode 54
/// (§7.2's scanning-host OS inference).
inline constexpr std::uint8_t kScanTtl = 54;

}  // namespace gorilla::sim
