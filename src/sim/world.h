// The simulated Internet the measurements run against.
//
// A World owns the synthetic registry, the NTP server population, and the
// per-server vulnerability/remediation traits. It is split into two tiers:
//
//   * population tier — compact ServerTraits for EVERY NTP server; enough
//     for count-level analyses (pool sizes, aggregation levels, continents).
//   * detailed tier — full ntp::NtpServer instances (monitor table + wire
//     protocol) for every ever-monlist-amplifier and for a configurable
//     subsample of version-only responders. Packet-level experiments (the
//     ONP prober, victimology, BAF) run against this tier.
//
// Weekly availability, DHCP churn, and remediation are *deterministic
// functions of (seed, server, week)*, so any experiment can query any week
// without global mutable state and runs reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "net/pbl.h"
#include "net/registry.h"
#include "ntp/server.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/time.h"

namespace gorilla::sim {

struct WorldConfig {
  std::uint64_t seed = util::Rng::kDefaultSeed;
  /// Linear divisor applied to the paper's population sizes. 10 keeps every
  /// packet-level experiment under laptop-scale memory; 1 is full scale.
  std::uint32_t scale = 10;

  /// Full-scale population parameters (divided by `scale` at build time).
  std::uint64_t total_ntp_servers = 6500000;   ///< ~6M servers (§3.4)
  std::uint64_t version_responders = 5800000;  ///< version census pool (§3.3)
  std::uint64_t ever_amplifiers = 2250000;     ///< ~2.17M unique IPs (§3.1)
  std::uint64_t mega_amplifiers = 10000;       ///< responded >100KB (§3.4)

  /// Fraction of ever-amplifiers that are end hosts (PBL-listed) — Table 1
  /// starts at 18.5%.
  double amplifier_end_host_fraction = 0.185;
  /// Fraction of amplifiers placed as co-addressed "server farm" clusters
  /// that share one management (and thus one remediation draw) — drives the
  /// 22 -> 4 IPs-per-routed-block decline. The default makes every solo
  /// amplifier an end host, matching Table 1's composition (end hosts are
  /// the scattered remainder; infrastructure comes in managed groups).
  double farm_fraction = 0.815;
  /// Mean farm size (geometric).
  double mean_farm_size = 28.0;
  /// Fraction of servers answering the *other* mode 7 implementation number
  /// (invisible to single-implementation scans; Kührer saw ~9% more).
  double other_impl_fraction = 0.09;
  /// Per-scan response probability (availability/churn, §3.1).
  double availability = 0.63;
  /// Global multiplier on remediation hazards — the §6.4 ablation knob.
  /// 1.0 reproduces the paper's curve; 0.0 means nobody ever patches
  /// (the no-community-response counterfactual); values in between model a
  /// world without the CERT notification campaign.
  double remediation_speed = 1.0;
  /// Weekly probability an end-host amplifier is re-addressed by DHCP.
  double dhcp_rehome_rate = 0.25;
  /// Number of version-only responders materialized in the detailed tier.
  /// Sized so the detailed version pool's system-string mix approximates
  /// the full responder population (the amplifier subset is linux-heavy;
  /// the overall pool is cisco-heavy), which Figure 4c's quartiles and
  /// Table 2's all-NTP column both need.
  std::uint64_t detailed_version_subsample = 3600000;

  /// Amplifiers force-placed inside the named regional networks regardless
  /// of scale, so the §7 local-view experiments always have their cast:
  /// 50 at Merit, 9 at CSU, 48 in the rest of FRGP (paper §7.1). These are
  /// absolute counts, not divided by `scale`.
  std::uint32_t merit_amplifiers = 50;
  std::uint32_t csu_amplifiers = 9;
  std::uint32_t frgp_amplifiers = 48;

  /// When true (and registry.num_ases is left at its default), the number
  /// of generated ASes is shrunk by sqrt(scale) so per-block amplifier
  /// density stays in the paper's regime (Table 1's ~22 IPs per routed
  /// block at peak) while AS-level analyses keep enough distinct networks.
  bool auto_scale_registry = true;

  net::RegistryConfig registry;
};

/// Compact per-server population record.
struct ServerTraits {
  net::Ipv4Address home_address;  ///< address at week 0 (pre-churn)
  std::int16_t monlist_fix_week = -1;  ///< sample week monlist dies; -1 never
  std::int16_t version_fix_week = -1;  ///< sample week mode 6 dies; -1 never
  std::uint32_t detailed_index = kNoDetail;  ///< into detailed tier
  bool ever_amplifier = false;
  bool mode6_responder = false;
  bool end_host = false;
  bool dhcp_churn = false;
  bool mega = false;
  bool other_impl = false;  ///< answers only the impl the scan doesn't send

  static constexpr std::uint32_t kNoDetail = 0xffffffff;
};

class World {
 public:
  explicit World(const WorldConfig& config = {});

  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] const net::Registry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const net::PolicyBlockList& pbl() const noexcept {
    return pbl_;
  }
  [[nodiscard]] const std::vector<ServerTraits>& servers() const noexcept {
    return traits_;
  }
  /// Indices (into servers()) of the ever-amplifier subset.
  [[nodiscard]] const std::vector<std::uint32_t>& amplifier_indices()
      const noexcept {
    return amplifier_indices_;
  }

  /// Detailed ntpd instance for a server, or nullptr outside the tier.
  [[nodiscard]] ntp::NtpServer* detailed(std::uint32_t server_index);
  [[nodiscard]] const ntp::NtpServer* detailed(std::uint32_t server_index) const;

  /// The server's address during sample week `week` (DHCP churn rehomes end
  /// hosts within their routed block).
  [[nodiscard]] net::Ipv4Address address_at(std::uint32_t server_index,
                                            int week) const;

  /// True when the server answers monlist probes in week `week`:
  /// still vulnerable, not churned away mid-scan, and reachable.
  [[nodiscard]] bool responds_monlist(std::uint32_t server_index,
                                      int week) const;

  /// True when the server answers mode 6 version probes in week `week`.
  [[nodiscard]] bool responds_version(std::uint32_t server_index,
                                      int week) const;

  /// True when a probe sent in week `week` reaches the server at all
  /// (it may still refuse to answer if remediated). Same roll as
  /// responds_monlist's availability component.
  [[nodiscard]] bool reachable(std::uint32_t server_index, int week) const;

  /// True when `addr` falls inside the darknet telescope space.
  [[nodiscard]] bool in_darknet(net::Ipv4Address addr) const noexcept {
    return registry_.named().darknet.contains(addr);
  }

  /// Deterministic per-(server, week, salt) uniform draw in [0,1).
  [[nodiscard]] double stable_uniform(std::uint32_t server_index, int week,
                                      std::uint64_t salt) const noexcept;

  /// Time of the server's most recent ntpd restart before `now` in sample
  /// week `week`. Restarts clear the monitor table, which is what bounds
  /// the monlist observation window (§4.2's ~44 h median). Each server has
  /// a characteristic uptime drawn once; the age since restart is sampled
  /// memorylessly per week.
  [[nodiscard]] util::SimTime last_restart_before(std::uint32_t server_index,
                                                  int week,
                                                  util::SimTime now) const;

  /// Live (still-vulnerable, ignoring availability) amplifier count at week.
  [[nodiscard]] std::uint64_t live_amplifier_count(int week) const;

  /// Server indices of the force-placed regional amplifiers (§7).
  [[nodiscard]] const std::vector<std::uint32_t>& merit_amplifiers()
      const noexcept {
    return merit_amplifiers_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& csu_amplifiers()
      const noexcept {
    return csu_amplifiers_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& frgp_amplifiers()
      const noexcept {
    return frgp_amplifiers_;
  }

 private:
  void build_population(util::Rng& rng);
  void assign_detail_tier(util::Rng& rng);

  WorldConfig config_;
  net::Registry registry_;
  net::PolicyBlockList pbl_;
  std::vector<ServerTraits> traits_;
  std::vector<std::uint32_t> amplifier_indices_;
  std::vector<std::uint32_t> merit_amplifiers_;
  std::vector<std::uint32_t> csu_amplifiers_;
  std::vector<std::uint32_t> frgp_amplifiers_;
  /// Backs every detailed server's monitor-table slabs (DESIGN.md §3g).
  /// Declared before detailed_ so the tables die before their storage.
  util::Arena monitor_arena_;
  std::vector<ntp::NtpServer> detailed_;
};

}  // namespace gorilla::sim
