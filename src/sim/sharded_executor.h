// Deterministic sharded execution for the study engine.
//
// The executor partitions an index range into FIXED-SIZE shards (chunks)
// and walks them on a worker pool. The determinism-merge contract
// (DESIGN.md §3d) is what makes the parallel engine bit-for-bit identical
// to the sequential one for any worker count:
//
//   1. the shard boundaries depend only on (n, chunk_size) — never on the
//      number of workers — so every K produces the same shard set;
//   2. produce() must be a pure function of its [begin, end) range: it may
//      read shared immutable state (the World's trait tables, hash-based
//      weekly draws) and mutate only state owned by servers inside the
//      range (their monitor tables);
//   3. results are consumed on the CALLING thread in ascending shard order
//      — the canonical sorted reduction. Order-sensitive reductions
//      (visitor streams, float accumulation) therefore see exactly the
//      sequential order.
//
// With jobs() <= 1 everything runs inline on the calling thread, which IS
// the sequential engine — K=1 reproduces the seed by construction, and the
// shard-invariance tests pin K>1 to that same byte stream.
//
// gorilla_lint's `worker-capture` rule rejects `[&]` capture on the worker
// lambda handed to run_ordered()/parallel_for(): captures must be spelled
// out so a reviewer can check rule 2 at the call site.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "util/thread_pool.h"

namespace gorilla::sim {

class ShardedExecutor {
 public:
  /// A null pool (or a 1-thread pool) selects the inline sequential path.
  explicit ShardedExecutor(util::ThreadPool* pool) noexcept : pool_(pool) {}

  [[nodiscard]] int jobs() const noexcept {
    return pool_ == nullptr ? 1 : pool_->size();
  }

  /// Ordered map/reduce over [0, n): produce(begin, end) runs on workers,
  /// consume(result) runs on the calling thread in ascending shard order.
  /// Exceptions thrown by produce() re-throw here, in shard order, and only
  /// after every in-flight task has finished (they reference `produce` and
  /// its captures, which must outlive them).
  template <typename Produce, typename Consume>
  void run_ordered(std::size_t n, std::size_t chunk_size, Produce produce,
                   Consume consume) {
    using Result = std::invoke_result_t<Produce&, std::size_t, std::size_t>;
    const std::size_t chunk = chunk_size == 0 ? 1 : chunk_size;
    if (jobs() <= 1) {
      for (std::size_t b = 0; b < n; b += chunk) {
        consume(produce(b, std::min(n, b + chunk)));
      }
      return;
    }
    // Bounded in-flight window: keeps every worker busy while capping the
    // buffered results the ordered merge may have to hold.
    const auto window = static_cast<std::size_t>(jobs()) * 3;
    std::deque<std::future<Result>> inflight;
    std::size_t next = 0;
    const auto submit_one = [&] {
      const std::size_t b = next;
      const std::size_t e = std::min(n, b + chunk);
      next = e;
      auto task = std::make_shared<std::packaged_task<Result()>>(
          [&produce, b, e] { return produce(b, e); });
      inflight.push_back(task->get_future());
      pool_->submit([task] { (*task)(); });
    };
    while (next < n && inflight.size() < window) submit_one();
    while (!inflight.empty()) {
      std::optional<Result> result;
      std::exception_ptr error;
      try {
        result.emplace(inflight.front().get());
      } catch (...) {
        error = std::current_exception();
      }
      inflight.pop_front();
      if (error != nullptr) {
        // Drain every in-flight task before unwinding: workers still hold
        // references to `produce` and its captures, which live on this
        // stack frame — rethrowing with tasks in flight is a use-after-
        // scope on the worker threads. The earliest shard's exception wins
        // (shard order); later failures die with their futures.
        for (auto& pending : inflight) pending.wait();
        inflight.clear();
        std::rethrow_exception(error);
      }
      if (next < n) submit_one();  // refill before the (serial) consume
      consume(std::move(*result));
    }
  }

  /// Unordered parallel apply over [0, n): fn(begin, end) per shard, no
  /// result. The caller guarantees shards mutate disjoint state (contract
  /// rule 2); use run_ordered() when anything order-sensitive is reduced.
  /// Blocks until every shard ran; the first exception re-throws here.
  void parallel_for(std::size_t n, std::size_t chunk_size,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  util::ThreadPool* pool_;
};

}  // namespace gorilla::sim
