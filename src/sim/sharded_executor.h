// Deterministic sharded execution for the study engine.
//
// The executor partitions an index range into FIXED-SIZE shards (chunks)
// and walks them on a worker pool. The determinism-merge contract
// (DESIGN.md §3d) is what makes the parallel engine bit-for-bit identical
// to the sequential one for any worker count:
//
//   1. the shard boundaries depend only on (n, chunk_size) — never on the
//      number of workers — so every K produces the same shard set;
//   2. produce() must be a pure function of its [begin, end) range: it may
//      read shared immutable state (the World's trait tables, hash-based
//      weekly draws) and mutate only state owned by servers inside the
//      range (their monitor tables);
//   3. results are consumed on the CALLING thread in ascending shard order
//      — the canonical sorted reduction. Order-sensitive reductions
//      (visitor streams, float accumulation) therefore see exactly the
//      sequential order.
//
// With jobs() <= 1 everything runs inline on the calling thread, which IS
// the sequential engine — K=1 reproduces the seed by construction, and the
// shard-invariance tests pin K>1 to that same byte stream.
//
// gorilla_lint's `worker-capture` rule rejects `[&]` capture on the worker
// lambda handed to run_ordered()/parallel_for(): captures must be spelled
// out so a reviewer can check rule 2 at the call site.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/fault.h"
#include "util/thread_pool.h"

namespace gorilla::sim {

/// One shard that exhausted its retry budget: which index range, how many
/// attempts were burned, and the final error text. Collected in the
/// executor's quarantine list so a long run's operator (or a future
/// distributed scheduler) can see exactly which (seed, range) cell is
/// poison instead of just "the run died".
struct ShardFailure {
  std::size_t index = 0;  ///< shard ordinal within its run_ordered call
  std::size_t begin = 0;
  std::size_t end = 0;
  int attempts = 0;
  std::string error;
};

class ShardedExecutor {
 public:
  /// A null pool (or a 1-thread pool) selects the inline sequential path.
  explicit ShardedExecutor(util::ThreadPool* pool) noexcept : pool_(pool) {}

  [[nodiscard]] int jobs() const noexcept {
    return pool_ == nullptr ? 1 : pool_->size();
  }

  /// Per-shard retry budget (default 3 attempts). Because produce() is pure
  /// in its range (contract rule 2), re-running a failed shard is invisible
  /// in the output: a transient failure heals with bit-identical results
  /// for any worker count. Values < 1 clamp to 1 (no retry).
  void set_max_attempts(int n) noexcept { max_attempts_ = n < 1 ? 1 : n; }
  [[nodiscard]] int max_attempts() const noexcept { return max_attempts_; }

  /// Shards that exhausted every attempt since the last clear_quarantine().
  /// Such a shard still aborts its run (skipping it would change the output
  /// stream); the list exists so the failure is attributable and a resumed
  /// run can be steered around or re-provisioned.
  [[nodiscard]] std::vector<ShardFailure> quarantined() const;
  void clear_quarantine();

  /// Ordered map/reduce over [0, n): produce(begin, end) runs on workers,
  /// consume(result) runs on the calling thread in ascending shard order.
  /// Each shard gets up to max_attempts() tries (transient failures retry
  /// the same pure range and stay invisible); a shard that exhausts them is
  /// quarantined and its LAST exception re-throws here, in shard order, and
  /// only after every in-flight task has finished (they reference `produce`
  /// and its captures, which must outlive them).
  template <typename Produce, typename Consume>
  void run_ordered(std::size_t n, std::size_t chunk_size, Produce produce,
                   Consume consume) {
    using Result = std::invoke_result_t<Produce&, std::size_t, std::size_t>;
    const std::size_t chunk = chunk_size == 0 ? 1 : chunk_size;
    if (jobs() <= 1) {
      for (std::size_t b = 0; b < n; b += chunk) {
        const std::size_t e = std::min(n, b + chunk);
        consume(run_shard_with_retry(produce, b / chunk, b, e));
      }
      return;
    }
    // Bounded in-flight window: keeps every worker busy while capping the
    // buffered results the ordered merge may have to hold.
    const auto window = static_cast<std::size_t>(jobs()) * 3;
    std::deque<std::future<Result>> inflight;
    std::size_t next = 0;
    const auto submit_one = [&] {
      const std::size_t b = next;
      const std::size_t e = std::min(n, b + chunk);
      const std::size_t index = b / chunk;
      next = e;
      auto task = std::make_shared<std::packaged_task<Result()>>(
          [this, &produce, index, b, e] {
            return run_shard_with_retry(produce, index, b, e);
          });
      inflight.push_back(task->get_future());
      pool_->submit([task] { (*task)(); });
    };
    while (next < n && inflight.size() < window) submit_one();
    while (!inflight.empty()) {
      std::optional<Result> result;
      std::exception_ptr error;
      try {
        result.emplace(inflight.front().get());
      } catch (...) {
        error = std::current_exception();
      }
      inflight.pop_front();
      if (error != nullptr) {
        // Drain every in-flight task before unwinding: workers still hold
        // references to `produce` and its captures, which live on this
        // stack frame — rethrowing with tasks in flight is a use-after-
        // scope on the worker threads. The earliest shard's exception wins
        // (shard order); later failures die with their futures.
        for (auto& pending : inflight) pending.wait();
        inflight.clear();
        std::rethrow_exception(error);
      }
      if (next < n) submit_one();  // refill before the (serial) consume
      consume(std::move(*result));
    }
  }

  /// Unordered parallel apply over [0, n): fn(begin, end) per shard, no
  /// result. The caller guarantees shards mutate disjoint state (contract
  /// rule 2); use run_ordered() when anything order-sensitive is reduced.
  /// Blocks until every shard ran; the first exception re-throws here.
  void parallel_for(std::size_t n, std::size_t chunk_size,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  /// Runs one shard with the bounded retry policy. The fault hook fires
  /// before every attempt, so an injected `shard-throw` is indistinguishable
  /// from a produce() failure — exactly what the harness is for.
  template <typename Produce>
  std::invoke_result_t<Produce&, std::size_t, std::size_t> run_shard_with_retry(
      Produce& produce, std::size_t index, std::size_t begin, std::size_t end) {
    const int cap = max_attempts_;
    for (int attempt = 1;; ++attempt) {
      try {
        util::FaultPlan::on_shard_attempt();
        return produce(begin, end);
      } catch (const std::exception& ex) {
        if (attempt >= cap) {
          note_quarantine({index, begin, end, attempt, ex.what()});
          throw;
        }
      } catch (...) {
        if (attempt >= cap) {
          note_quarantine({index, begin, end, attempt, "unknown exception"});
          throw;
        }
      }
    }
  }

  void note_quarantine(ShardFailure failure);

  util::ThreadPool* pool_;
  int max_attempts_ = 3;
  mutable std::mutex quarantine_mutex_;
  std::vector<ShardFailure> quarantined_;
};

}  // namespace gorilla::sim
