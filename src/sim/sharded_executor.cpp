#include "sim/sharded_executor.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace gorilla::sim {

void ShardedExecutor::parallel_for(
    std::size_t n, std::size_t chunk_size,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t chunk = chunk_size == 0 ? 1 : chunk_size;
  if (jobs() <= 1) {
    for (std::size_t b = 0; b < n; b += chunk) {
      run_shard_with_retry(fn, b / chunk, b, std::min(n, b + chunk));
    }
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = (n + chunk - 1) / chunk;
  if (remaining == 0) return;
  std::exception_ptr first_error;
  for (std::size_t b = 0; b < n; b += chunk) {
    const std::size_t e = std::min(n, b + chunk);
    const std::size_t index = b / chunk;
    pool_->submit([this, &fn, &mu, &cv, &remaining, &first_error, index, b, e] {
      try {
        run_shard_with_retry(fn, index, b, e);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        // Executor-internal completion plumbing, held under mu — not shard
        // output. The buffered-output contract applies to the shard fn.
        if (!first_error) first_error = std::current_exception();  // NOLINT(shard-mutation)
      }
      const std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();  // NOLINT(shard-mutation): counter under mu
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ShardFailure> ShardedExecutor::quarantined() const {
  const std::lock_guard<std::mutex> lock(quarantine_mutex_);
  return quarantined_;
}

void ShardedExecutor::clear_quarantine() {
  const std::lock_guard<std::mutex> lock(quarantine_mutex_);
  quarantined_.clear();
}

void ShardedExecutor::note_quarantine(ShardFailure failure) {
  const std::lock_guard<std::mutex> lock(quarantine_mutex_);
  quarantined_.push_back(std::move(failure));
}

}  // namespace gorilla::sim
