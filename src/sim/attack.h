// The attack ecosystem: booters, botnets, and their NTP reflection campaigns.
//
// Every NTP DDoS attack in the study follows one script: an attacker picks a
// victim (very often a gamer, sometimes a hosting provider such as the
// paper's OVH analogue), a port (Table 4's mix), and a set of currently
// vulnerable amplifiers, then streams spoofed MON_GETLIST_1 requests at the
// amplifiers, whose multi-packet dumps flood the victim. This module
// generates those campaigns day by day along the paper's intensity curve
// (trickle before mid-December 2013, peak around February 11-12, decline
// after), applies their evidence to the world (amplifier monitor tables),
// and reports their traffic into the telemetry sinks (global collector,
// attack labels, regional flow collectors).
//
// Parallel execution (DESIGN.md §3d): every day is a pure function of
// (seed, day) — its RNG is a splitmix substream derived from the day index,
// and all its bus emissions and monitor-table mutations are buffered into a
// DayShardResult on the worker, then applied on the calling thread in
// ascending day order. run_days() fans whole days out over a
// ShardedExecutor; output is bit-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ntp/monlist.h"
#include "sim/impairment.h"
#include "sim/world.h"
// Published downward interface (DESIGN.md §3f): the engine buffers typed
// study events and its legacy AttackSinks alias *is* study::CollectorSink,
// so these types cross the layer boundary by value, by design.
#include "study/collector_sink.h"  // NOLINT(layer-break)
#include "study/event_buffer.h"    // NOLINT(layer-break)
#include "study/events.h"          // NOLINT(layer-break)
#include "util/rng.h"

// Geometry collectors are only passed by pointer; attack.cpp includes the
// telemetry headers it reads from (waived).
namespace gorilla::telemetry {
class DarknetTelescope;
class FlowCollector;
}  // namespace gorilla::telemetry

namespace gorilla::sim {

class ScanTraffic;
class ShardedExecutor;

/// One NTP reflection attack (ground truth, kept for validation).
struct AttackRecord {
  /// Unique, deterministic: (day << 24) | sequence-within-day, so ids are
  /// independent of how days are batched across run_day()/run_days() calls.
  std::uint64_t id = 0;
  std::uint32_t booter_id = 0;  ///< which §5.2 actor launched it
  net::Ipv4Address victim;
  std::uint16_t victim_port = 0;
  util::SimTime start = 0;
  util::SimTime end = 0;
  std::vector<std::uint32_t> amplifiers;  ///< server indices in the world
  std::uint64_t triggers_per_amplifier = 0;  ///< spoofed requests each got
  bool primed = false;  ///< amplifier tables pre-filled to 600 entries
  double peak_bps = 0.0;  ///< aggregate victim-side bandwidth at peak
  std::uint64_t response_packets = 0;  ///< total packets sent to the victim
  std::uint64_t response_bytes = 0;    ///< total on-wire bytes to the victim
  bool victim_end_host = false;
};

/// Where attack traffic is reported. Null members are simply skipped.
/// Kept as an alias of the study-layer collector sink so existing call
/// sites keep compiling; the engine itself now speaks study::EventSink.
using AttackSinks = study::CollectorSink;

struct AttackEngineConfig {
  std::uint64_t seed = util::Rng::kDefaultSeed ^ 0xa77acdULL;
  int horizon_days = 181;  ///< 2013-11-01 .. 2014-05-01

  /// Probability an attack's victim is an end host (gamer); §4.3.1 rises
  /// from ~31% to ~50%; we interpolate linearly over the horizon.
  double end_host_victim_initial = 0.31;
  double end_host_victim_final = 0.52;

  /// Probability the victim is drawn from the sticky hosting-provider pool
  /// topped by the OVH analogue when not an end host.
  double hosting_concentration_zipf = 0.9;

  /// Extra targeting weight for victims inside the regional networks so the
  /// §7 analyses see their documented victim populations.
  double merit_victim_rate = 0.030;
  double frgp_victim_rate = 0.013;
  /// Extra weight for the OVH analogue — the paper's top victim AS, hit
  /// with ~6% of all attack packets during a months-long campaign (§4.4).
  double ovh_victim_rate = 0.07;
  /// Probability a regional victim is in the cross-site common pool
  /// (attacked via amplifiers at both Merit and FRGP).
  double common_victim_rate = 0.05;

  /// Probability an attack reflects off a *regional* amplifier set
  /// (coordinated use of the Merit or CSU amplifiers, §7.2).
  double regional_reflection_rate = 0.04;

  /// Spoofed-request rate per amplifier (Pareto), requests/second.
  double trigger_pps_scale = 45.0;
  double trigger_pps_alpha = 1.08;
  double trigger_pps_cap = 5000.0;

  /// Fraction of attacks whose operator "primes" the amplifiers first so
  /// monlist returns the full 600 entries per trigger (§3.2's caution —
  /// this is what turns a 4x pool into 400 Gbps attacks).
  double primed_fraction = 0.45;
  /// Primed (booter-grade) attacks also drive much higher trigger rates
  /// and larger amplifier sets than ad-hoc ones.
  double primed_pps_scale = 150.0;
  double primed_pps_alpha = 1.2;
  double primed_amplifier_boost = 1.8;

  /// An amplifier's uplink bounds what it can actually emit; response
  /// volume saturates at this rate per amplifier.
  double amplifier_uplink_bps = 800e6;

  /// Victim-side ceiling: the largest NTP attacks observed peaked near
  /// 400 Gbps; beyond ~450 Gbps traffic dies upstream of any vantage.
  double victim_saturation_bps = 450e9;

  /// The §4.4 headline event: the ~400 Gbps CloudFlare/OVH attack of
  /// February 10-12 is scripted so the validation anchor always exists.
  bool scripted_ovh_event = true;

  /// Probability an NTP attack of each size class appears in the labeled
  /// (Arbor-analogue) attack feed — the vendor sees a third-to-half of
  /// traffic and its labeler misses small attacks (§2.2).
  double arbor_visibility_small = 0.09;
  double arbor_visibility_medium = 0.28;
  double arbor_visibility_large = 0.45;

  /// Victim re-targeting stickiness: the chance an attack re-hits one of
  /// its booter's customer targets picked earlier the same day (the sticky
  /// hosting/common pools carry concentration across days).
  double repeat_victim_rate = 0.35;

  /// Booter/botmaster population at full scale (§5.2), divided by the
  /// world scale; market share across booters is Zipf-distributed.
  std::uint32_t num_booters = 400;
  double booter_market_zipf = 1.1;

  /// Background (non-NTP) DDoS volume for the Figure 2 denominator:
  /// ~300K/month globally, 90/10/1 small/medium/large.
  double background_attacks_per_day = 10000.0;

  /// Network impairment on the spoofed-trigger and reflection paths: lost
  /// triggers never reach an amplifier (no monitor evidence, no response);
  /// lost response packets never reach the victim. All-zero = perfect
  /// network, bit-identical to the pre-impairment engine.
  ImpairmentConfig impairment;
};

/// A booter ("stresser") service or standalone botmaster — §5.2's attacker
/// ecosystem. Each attack is launched through one of these; the profile
/// shapes its tooling (priming) and clientele (sticky victim list).
struct BooterProfile {
  std::uint32_t id = 0;
  bool primes_amplifiers = false;  ///< booter-grade tooling
  /// The service's recent customer-target list (gamer feuds are sticky).
  /// Repeat-victim draws see the targets picked *earlier the same day* —
  /// day-scoped stickiness keeps each day a pure function of (seed, day)
  /// so days can simulate in parallel; the merged list here (most recent
  /// 16 across days) is diagnostic state for the §5.2 analyses.
  std::vector<net::Ipv4Address> customer_targets;
};

class AttackEngine {
 public:
  /// Primary form: all attack evidence is emitted as typed events into
  /// `sink` (which must outlive the engine).
  AttackEngine(World& world, const AttackEngineConfig& config,
               study::EventSink& sink);

  /// Legacy form: wraps the collector pointers in an owned CollectorSink.
  /// Event-for-event (and RNG-draw-for-draw) identical to passing the same
  /// collectors through the primary constructor.
  AttackEngine(World& world, const AttackEngineConfig& config,
               AttackSinks sinks);

  /// Full-scale NTP attacks-per-day intensity curve (day 0 = 2013-11-01).
  [[nodiscard]] static double ntp_attacks_per_day(int day) noexcept;

  /// ONP sample-week index containing a sim day (<0 before the first).
  [[nodiscard]] static int week_of_day(int day) noexcept;

  /// Generates, applies, and reports all attacks for one day — a one-day
  /// window of run_days(). Days are independent (seed, day) substreams, so
  /// any day order is valid. Returns the day's NTP attack records.
  std::vector<AttackRecord> run_day(int day);

  /// Runs days [from, to) as independent day shards. With a (multi-job)
  /// `executor`, days simulate in parallel on workers — each buffering its
  /// bus emissions and monitor-table deltas — and merge on the calling
  /// thread in ascending day order, bit-identical to the inline path for
  /// any job count. When `scans` is given, each day's scan traffic joins
  /// that day's shard (events ordered after the attack events, matching the
  /// sequential per-day interleave); `darknet_geometry`/`vantage_geometry`
  /// are consulted for geometry only, as in ScanTraffic::run_day.
  void run_days(int from, int to, ShardedExecutor* executor = nullptr,
                ScanTraffic* scans = nullptr,
                const telemetry::DarknetTelescope* darknet_geometry = nullptr,
                const std::vector<telemetry::FlowCollector*>* vantage_geometry =
                    nullptr);

  struct Totals {
    std::uint64_t ntp_attacks = 0;
    std::uint64_t response_packets = 0;
    std::uint64_t response_bytes = 0;
    std::uint64_t unique_victim_count = 0;  ///< filled by unique_victims()
  };
  [[nodiscard]] const Totals& totals() const noexcept { return totals_; }
  [[nodiscard]] std::uint64_t unique_victims() const {
    return victim_ever_.size();
  }
  [[nodiscard]] const std::vector<BooterProfile>& booters() const noexcept {
    return booters_;
  }
  /// Attacks launched per booter so far (index-aligned with booters()).
  [[nodiscard]] const std::vector<std::uint64_t>& attacks_per_booter()
      const noexcept {
    return attacks_per_booter_;
  }
  /// Copies of the scripted §4.4 OVH-event records (one per event day) —
  /// what the victim's CDN "publishes" for cross-dataset validation.
  [[nodiscard]] const std::vector<AttackRecord>& scripted_events()
      const noexcept {
    return scripted_events_;
  }

 private:
  /// Shared constructor body; `sink == nullptr` selects the owned
  /// legacy_sinks_ member (filled in by the legacy public constructor).
  /// The tag keeps `{}` at call sites resolving to the AttackSinks form.
  struct SinkPtr {};
  AttackEngine(World& world, const AttackEngineConfig& config,
               study::EventSink* sink, SinkPtr);

  /// Everything one day shard produced on a worker thread: ground-truth
  /// records (scripted prefix first), buffered bus events, buffered
  /// monitor-table deltas (per amplifier, first-touch order), and the day's
  /// victim picks per booter. consume_day() folds it into the engine and
  /// the world on the calling thread.
  struct DayShardResult {
    int day = 0;
    std::size_t scripted_count = 0;  ///< scripted prefix of `records`
    std::vector<AttackRecord> records;
    study::EventBuffer events;
    std::vector<std::pair<std::uint32_t, ntp::MonitorDelta>> monitor_deltas;
    std::vector<std::vector<net::Ipv4Address>> booter_picks;
  };

  /// Shared inputs every day shard in a window reads; immutable while the
  /// window runs, so workers may read it freely (contract rule 2).
  struct DayWindowPlan {
    int base_week = 0;
    /// Live amplifier pool per week covered by the window.
    std::vector<std::vector<std::uint32_t>> live_pools;
    /// Monitor-table sizes snapshotted at window start (per server index);
    /// day shards estimate non-primed dump sizes from snapshot + their own
    /// same-day additions instead of reading the live tables.
    std::vector<std::uint32_t> monitor_sizes;
    bool wants_flows = false;
    bool wants_labels = false;
  };

  /// Worker-side mutable state for one day (defined in attack.cpp).
  struct DayShard;

  [[nodiscard]] DayWindowPlan make_window_plan(int from, int to) const;
  /// Pure in (seed, day, plan): the worker-side half of a day.
  [[nodiscard]] DayShardResult simulate_day(int day,
                                            const DayWindowPlan& plan) const;
  /// Calling-thread half: applies deltas, replays events, merges state.
  void consume_day(DayShardResult& result);

  std::uint32_t pick_booter(util::Rng& rng) const;
  net::Ipv4Address pick_victim(int day, util::Rng& rng,
                               std::vector<net::Ipv4Address>& booter_targets,
                               bool& end_host, bool& common_pool) const;
  std::uint16_t pick_port(bool end_host, util::Rng& rng) const;
  void pick_amplifiers(int day, bool common_pool, bool primed,
                       const std::vector<std::uint32_t>& live_pool,
                       util::Rng& rng, std::vector<std::uint32_t>& out) const;
  void apply(AttackRecord& rec, int day, const DayWindowPlan& plan,
             DayShard& shard, double min_duration_s = 0.0) const;
  void emit_background_labels(int day, DayShard& shard) const;

  World& world_;
  AttackEngineConfig config_;
  AttackSinks legacy_sinks_;     ///< owned sink backing the legacy ctor
  study::EventSink* sink_;       ///< never null after construction
  ImpairmentLayer impairment_;
  util::Rng rng_;                ///< construction-time draws only
  Totals totals_;

  std::vector<BooterProfile> booters_;
  std::vector<std::uint64_t> attacks_per_booter_;
  std::vector<AttackRecord> scripted_events_;
  util::ZipfSampler booter_zipf_;
  std::vector<net::Ipv4Address> hosting_victims_;  ///< per-hosting-AS picks
  std::vector<net::Ipv4Address> common_victims_;   ///< Merit+FRGP common pool
  std::unordered_map<std::uint32_t, bool> victim_ever_;
  util::ZipfSampler hosting_zipf_;
  std::vector<net::Asn> hosting_ases_;
  util::WeightedSampler port_sampler_;
  std::vector<std::uint16_t> port_values_;
};

/// The Table 4 port mix (port, fraction) the generator draws from.
[[nodiscard]] const std::vector<std::pair<std::uint16_t, double>>&
attacked_port_mix();

}  // namespace gorilla::sim
