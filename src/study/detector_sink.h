// DetectorSink: an AMON-style streaming anomaly detector as a replay
// backend (ROADMAP "Multi-backend replay").
//
// The sink consumes the typed event stream — live from the EventBus or
// replayed from a recorded artifact — and maintains only fixed-size state:
// a preallocated bucket vector over its observation window plus the truth
// labels (one small record per labeled attack). Flow events are folded into
// buckets as they arrive and discarded, so memory is O(window / bucket),
// independent of stream length. finish() runs the incremental
// telemetry::StreamingDetector over the buckets and scores the episodes
// against the recorded ground truth.
//
// Determinism contract: bucket accumulation uses exactly the spreading
// arithmetic of FlowCollector::volume_series, applied in event-stream
// order. Because the artifact preserves the total event order (see
// recorder.h), a replayed stream drives the identical sequence of
// floating-point additions as the live bus — render() output is
// byte-identical between the two (tested).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "study/events.h"
// Published downward interface (DESIGN.md §3f): the sink's outputs are the
// telemetry detector vocabulary (DetectedAttack, DetectionQuality).
#include "telemetry/detector.h"  // NOLINT(layer-break)

namespace gorilla::study {

struct DetectorSinkConfig {
  /// Observation window [window_start, window_end) in sim time.
  util::SimTime window_start = 0;
  util::SimTime window_end = 0;
  util::SimTime bucket_seconds = 300;
  /// Which labeled-attack vectors count as ground truth.
  telemetry::AttackVector truth_vector = telemetry::AttackVector::kNtp;
  telemetry::DetectorConfig detector;
};

class DetectorSink final : public EventSink {
 public:
  explicit DetectorSink(const DetectorSinkConfig& config);

  [[nodiscard]] bool wants_flows() const override { return true; }
  [[nodiscard]] bool wants_labels() const override { return true; }

  void on_flow(const telemetry::FlowRecord& flow, int vantage) override;
  void on_attack_label(const telemetry::LabeledAttack& label) override;

  /// Runs the streaming detector over the accumulated buckets and scores
  /// the result against the collected truth. Idempotent; call after the
  /// stream ends (replay return / bus teardown).
  void finish();

  [[nodiscard]] const std::vector<telemetry::DetectedAttack>& attacks()
      const noexcept {
    return attacks_;
  }
  [[nodiscard]] const telemetry::DetectionQuality& quality() const noexcept {
    return quality_;
  }
  [[nodiscard]] std::uint64_t flows_seen() const noexcept {
    return flows_seen_;
  }
  [[nodiscard]] std::uint64_t flows_binned() const noexcept {
    return flows_binned_;
  }

  /// Deterministic text report (17-significant-digit doubles): the byte
  /// string the live-vs-replay equivalence tests and the check.sh stage
  /// diff. finish() must have run.
  [[nodiscard]] std::string render() const;

 private:
  DetectorSinkConfig config_;
  std::vector<double> buckets_;  ///< fixed size: window / bucket_seconds
  std::vector<telemetry::TruthInterval> truth_;
  std::vector<telemetry::DetectedAttack> attacks_;
  telemetry::DetectionQuality quality_;
  std::uint64_t flows_seen_ = 0;
  std::uint64_t flows_binned_ = 0;
  bool finished_ = false;
};

}  // namespace gorilla::study
