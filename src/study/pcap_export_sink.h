// PcapExportSink: export selected attack windows as standard pcap — a
// replay backend over net::PcapWriter (ROADMAP "Multi-backend replay").
//
// For every monitor-table entry that §4.2's filter classifies as a DDoS
// victim (core::derive_attack), whose witnessed interval overlaps a
// selected window, the sink synthesizes the on-wire exchange the amplifier
// took part in: one spoofed MON_GETLIST_1 request (victim → amplifier:123)
// followed by the full chained monlist response (amplifier:123 → victim) —
// the 48-byte-in / up-to-100-datagram-out geometry every BAF number in §3
// follows from. The capture opens in tcpdump/Wireshark and round-trips
// through net::PcapReader + ntp::reassemble_monlist (tested).
//
// Windows come either from the caller (explicit [start,end) intervals) or
// automatically from the recorded truth: NTP attack labels at or above
// `auto_min_peak_bps`, padded by `auto_pad_seconds`. Labels precede the
// probe observations that witness them on the tape (the stream is in time
// order), so auto windows are always selected before they are needed.
//
// Failure discipline: net::PcapWriter's ok() is sticky, and the sink folds
// the output stream's state into its own ok(). Drivers must propagate
// !ok() to a nonzero process exit.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/monlist_analysis.h"
#include "net/pcap.h"
#include "study/events.h"

namespace gorilla::study {

struct PcapWindow {
  util::SimTime start = 0;
  util::SimTime end = 0;  ///< exclusive
};

struct PcapExportSinkConfig {
  /// Explicit windows; when empty, windows are auto-selected from NTP
  /// attack labels with peak_bps >= auto_min_peak_bps.
  std::vector<PcapWindow> windows;
  double auto_min_peak_bps = 0.0;
  util::SimTime auto_pad_seconds = 3600;
  /// Cap on request/response exchanges written (a full-table response is
  /// up to 100 datagrams; the cap bounds the capture, never the scan).
  std::uint64_t max_exchanges = 4096;
  ntp::Implementation impl = ntp::Implementation::kXntpd;
};

class PcapExportSink final : public EventSink {
 public:
  /// `out` must outlive the sink and be a binary stream.
  PcapExportSink(std::ostream& out, const PcapExportSinkConfig& config);

  [[nodiscard]] bool wants_labels() const override { return true; }

  void on_attack_label(const telemetry::LabeledAttack& label) override;
  void on_probe_observation(int week,
                            const scan::AmplifierObservation& obs) override;

  [[nodiscard]] std::uint64_t windows_selected() const noexcept {
    return windows_.size();
  }
  [[nodiscard]] std::uint64_t exchanges_written() const noexcept {
    return exchanges_;
  }
  [[nodiscard]] std::uint64_t exchanges_skipped() const noexcept {
    return skipped_;
  }
  [[nodiscard]] std::uint64_t packets_written() const noexcept {
    return writer_.packets_written();
  }

  /// Sticky: every pcap byte so far reached the stream intact.
  [[nodiscard]] bool ok() const noexcept {
    return writer_.ok() && out_.good();
  }

 private:
  [[nodiscard]] bool in_window(util::SimTime start, util::SimTime end) const;

  std::ostream& out_;
  net::PcapWriter writer_;
  PcapExportSinkConfig config_;
  std::vector<PcapWindow> windows_;
  std::uint64_t exchanges_ = 0;
  std::uint64_t skipped_ = 0;
  bool auto_windows_ = false;
};

}  // namespace gorilla::study
