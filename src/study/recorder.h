// Recorder/Replayer: serialize one study's event stream to a compact
// columnar artifact and play it back — "simulate once / analyze many".
//
// The artifact preserves the TOTAL order of events across types (an RLE
// tag tape), not just per-type streams: the global traffic collector
// accumulates doubles, and floating-point addition is order-sensitive, so
// replay must hand every consumer the exact sequence the generators
// emitted. Event payloads live in per-type columns (varint/zigzag packed),
// with the monitor-table bulk — millions of entries per study — split into
// true per-field columns. Replaying a recording into the same sinks is
// bit-for-bit identical to re-simulating (tested), at a fraction of the
// cost.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "study/events.h"
#include "util/columnar.h"

namespace gorilla::study {

/// Identity of a recorded study: which harness shape produced it and under
/// which knobs. Replay refuses a mismatched header rather than silently
/// replaying someone else's world.
struct StudyHeader {
  std::uint32_t version = 1;
  std::uint8_t kind = 0;  ///< 0 = StudyPipeline, 1 = RegionalRun
  std::uint32_t scale = 0;
  std::uint64_t seed = 0;
  bool quick = false;
  bool with_vantages = false;
  bool with_darknet = false;
  /// Harness shape parameters: horizon_weeks for a study recording;
  /// from_day / to_day for a regional recording.
  std::int32_t param_a = 0;
  std::int32_t param_b = 0;

  friend bool operator==(const StudyHeader&, const StudyHeader&) = default;
};

/// An EventSink that captures the full stream. Subscribe it to the bus
/// alongside the live consumers, run the study, then save().
///
/// `artifact_version` picks the container the archive serializes as.
/// 3 (default, GORCOLv3) applies per-column transforms before varint —
/// delta-encoded addresses and monotone timestamps, frame-of-reference
/// week ids — and block-compresses sections at save time. 2 reproduces
/// the legacy GORCOLv2 encoding byte-for-byte (kept so tooling can
/// compare artifact sizes across versions).
class Recorder final : public EventSink {
 public:
  explicit Recorder(const StudyHeader& header, int artifact_version = 3)
      : header_(header),
        artifact_version_(artifact_version == 2 ? 2 : 3),
        transform_(artifact_version != 2) {}

  // The recorder consumes everything: with it on the bus, producers build
  // flow/label events even when no live collector wants them. Those events
  // never draw RNG, so recording does not perturb the simulation stream.
  [[nodiscard]] bool wants_flows() const override { return true; }
  [[nodiscard]] bool wants_labels() const override { return true; }

  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override;
  void on_attack_label(const telemetry::LabeledAttack& label) override;
  void on_flow(const telemetry::FlowRecord& flow, int vantage) override;
  void on_darknet_scan(net::Ipv4Address scanner, int day,
                       std::uint64_t packets, bool benign) override;
  void on_sample_begin(int week, const util::Date& date) override;
  void on_probe_observation(int week,
                            const scan::AmplifierObservation& obs) override;
  void on_monlist_summary(const scan::MonlistSampleSummary& summary) override;
  void on_sample_end(int week) override;

  /// Finalizes the stream into an archive (the recorder is spent after).
  [[nodiscard]] util::ColumnArchive to_archive();

  /// to_archive() + write to `path`; false on I/O failure.
  [[nodiscard]] bool save(const std::string& path);

  /// Non-destructive copy of everything recorded so far (the pending RLE
  /// run is materialized into the copy; recording continues unaffected).
  [[nodiscard]] util::ColumnArchive snapshot_archive() const;

  /// snapshot_archive() + atomic save_file: a durable mid-run checkpoint.
  /// Call at week boundaries and an interrupted run can resume from the
  /// last complete week instead of starting over. False on I/O failure
  /// (the previous checkpoint, if any, is left intact).
  [[nodiscard]] bool checkpoint(const std::string& path) const;

 private:
  void tag(std::uint8_t t);
  void flush_run();
  /// Total encoded bytes across every column (the recorder's footprint).
  [[nodiscard]] std::size_t column_bytes() const noexcept;
  /// v3 column transforms (no-ops under v2): delta against the previous
  /// value of the same column, and frame-of-reference week ids (first week
  /// on the tape is the base; later ones store the difference).
  void put_delta(util::ColumnWriter& col, std::int64_t& prev, std::int64_t v);
  void put_week(util::ColumnWriter& col, int week);

  StudyHeader header_;
  int artifact_version_ = 3;
  bool transform_ = true;
  util::ColumnWriter tape_, global_, label_, flow_, dark_, begin_, obs_,
      sum_, end_;
  // Monitor-table entry columns (one per MonitorEntry field).
  util::ColumnWriter tbl_addr_, tbl_local_, tbl_avg_, tbl_seen_, tbl_restr_,
      tbl_count_, tbl_port_, tbl_mode_, tbl_ver_;
  std::uint8_t run_tag_ = 0;
  std::uint64_t run_len_ = 0;
  // Encoder-side transform state, mirrored by the replay decoder.
  std::int64_t prev_global_day_ = 0, prev_label_start_ = 0,
               prev_flow_first_ = 0, prev_dark_day_ = 0, prev_obs_index_ = 0,
               prev_obs_addr_ = 0, prev_obs_time_ = 0, prev_tbl_addr_ = 0,
               prev_tbl_local_ = 0, prev_tbl_seen_ = 0;
  std::int64_t week_base_ = 0;
  bool week_base_set_ = false;
};

/// What a prefix-tolerant load + replay recovered from a damaged (or
/// intact) artifact. Container-level damage first — `sections_ok` archive
/// sections survived, reading stopped at `truncated_at` (stream offset) or
/// after `crc_failures` checksum mismatches — then stream-level totals:
/// how many events the longest valid prefix holds and how many COMPLETE
/// sample weeks (terminated by on_sample_end) they span. `clean` means the
/// artifact was whole: every section present and consistent. For a v3
/// artifact damaged inside a compressed section, the longest run of intact
/// blocks was also kept (`partial_section`) and the first bad block is
/// identified by section name, index, and absolute file offset.
struct ReplayReport {
  std::size_t sections_ok = 0;
  std::size_t crc_failures = 0;
  std::optional<std::uint64_t> truncated_at;
  bool partial_section = false;
  std::string damaged_section;
  std::optional<std::size_t> bad_block;
  std::optional<std::uint64_t> bad_block_offset;
  std::uint64_t events = 0;
  int weeks_complete = 0;
  bool clean = false;
};

/// Loads a recorded study and dispatches it into a sink.
class Replayer {
 public:
  /// False on missing file, bad magic, or malformed header.
  [[nodiscard]] bool load(const std::string& path);
  [[nodiscard]] bool load_archive(util::ColumnArchive archive);

  /// Prefix-tolerant load: accepts a truncated or partially corrupt
  /// artifact, keeping the longest valid section prefix (missing trailing
  /// sections read as empty columns). False only when not even the magic +
  /// study header survive. `report` describes what was recovered;
  /// replay_prefix() later fills in its stream-level fields.
  [[nodiscard]] bool load_prefix(const std::string& path, ReplayReport& report);

  /// One-line diagnosis of why load()/load_prefix() refused `path`:
  /// missing file, foreign or wrong-version container magic, container
  /// damage before the study header, or an unsupported StudyHeader
  /// version. For CLI error messages — never asserts, best-effort re-read.
  [[nodiscard]] static std::string describe_load_failure(
      const std::string& path);

  [[nodiscard]] const StudyHeader& header() const noexcept { return header_; }

  /// Container version of the loaded artifact (1/2/3).
  [[nodiscard]] int artifact_version() const noexcept {
    return archive_.version;
  }

  /// Opt-in parallel per-section decompress: with jobs > 1, the next
  /// successful load inflates every compressed section across `jobs`
  /// worker threads instead of streaming block-by-block during replay.
  /// Purely a speed/memory trade — replay output is byte-identical for
  /// any value. Call before load()/load_prefix().
  void set_decode_jobs(int jobs) noexcept {
    decode_jobs_ = jobs < 1 ? 1 : jobs;
  }

  /// Dispatches the entire stream into `sink` in recorded order.
  /// False when the artifact is truncated or internally inconsistent
  /// (the sink may have received a prefix of the stream by then).
  [[nodiscard]] bool replay(EventSink& sink) const;

  /// Complete weeks (on_sample_end markers) in the longest valid event
  /// prefix — what a resumed run can skip re-simulating.
  [[nodiscard]] int complete_weeks() const;

  /// Dispatches the longest valid prefix, cut at a week boundary: at most
  /// `max_weeks` complete weeks (-1 = all of them), never a partial week.
  /// A validation pass runs first, so `sink` only ever sees events that
  /// are known-good — unlike replay(), damage cannot leak a torn week.
  /// Fills report.events / report.weeks_complete. False when the two
  /// passes disagree (a torn artifact mutating underneath us).
  [[nodiscard]] bool replay_prefix(EventSink& sink, int max_weeks,
                                   ReplayReport& report) const;

 private:
  void apply_decode_policy();

  StudyHeader header_;
  util::ColumnArchive archive_;
  int decode_jobs_ = 1;
};

}  // namespace gorilla::study
