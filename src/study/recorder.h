// Recorder/Replayer: serialize one study's event stream to a compact
// columnar artifact and play it back — "simulate once / analyze many".
//
// The artifact preserves the TOTAL order of events across types (an RLE
// tag tape), not just per-type streams: the global traffic collector
// accumulates doubles, and floating-point addition is order-sensitive, so
// replay must hand every consumer the exact sequence the generators
// emitted. Event payloads live in per-type columns (varint/zigzag packed),
// with the monitor-table bulk — millions of entries per study — split into
// true per-field columns. Replaying a recording into the same sinks is
// bit-for-bit identical to re-simulating (tested), at a fraction of the
// cost.
#pragma once

#include <cstdint>
#include <string>

#include "study/events.h"
#include "util/columnar.h"

namespace gorilla::study {

/// Identity of a recorded study: which harness shape produced it and under
/// which knobs. Replay refuses a mismatched header rather than silently
/// replaying someone else's world.
struct StudyHeader {
  std::uint32_t version = 1;
  std::uint8_t kind = 0;  ///< 0 = StudyPipeline, 1 = RegionalRun
  std::uint32_t scale = 0;
  std::uint64_t seed = 0;
  bool quick = false;
  bool with_vantages = false;
  bool with_darknet = false;
  /// Harness shape parameters: horizon_weeks for a study recording;
  /// from_day / to_day for a regional recording.
  std::int32_t param_a = 0;
  std::int32_t param_b = 0;

  friend bool operator==(const StudyHeader&, const StudyHeader&) = default;
};

/// An EventSink that captures the full stream. Subscribe it to the bus
/// alongside the live consumers, run the study, then save().
class Recorder final : public EventSink {
 public:
  explicit Recorder(const StudyHeader& header) : header_(header) {}

  // The recorder consumes everything: with it on the bus, producers build
  // flow/label events even when no live collector wants them. Those events
  // never draw RNG, so recording does not perturb the simulation stream.
  [[nodiscard]] bool wants_flows() const override { return true; }
  [[nodiscard]] bool wants_labels() const override { return true; }

  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override;
  void on_attack_label(const telemetry::LabeledAttack& label) override;
  void on_flow(const telemetry::FlowRecord& flow, int vantage) override;
  void on_darknet_scan(net::Ipv4Address scanner, int day,
                       std::uint64_t packets, bool benign) override;
  void on_sample_begin(int week, const util::Date& date) override;
  void on_probe_observation(int week,
                            const scan::AmplifierObservation& obs) override;
  void on_monlist_summary(const scan::MonlistSampleSummary& summary) override;
  void on_sample_end(int week) override;

  /// Finalizes the stream into an archive (the recorder is spent after).
  [[nodiscard]] util::ColumnArchive to_archive();

  /// to_archive() + write to `path`; false on I/O failure.
  [[nodiscard]] bool save(const std::string& path);

 private:
  void tag(std::uint8_t t);
  void flush_run();

  StudyHeader header_;
  util::ColumnWriter tape_, global_, label_, flow_, dark_, begin_, obs_,
      sum_, end_;
  // Monitor-table entry columns (one per MonitorEntry field).
  util::ColumnWriter tbl_addr_, tbl_local_, tbl_avg_, tbl_seen_, tbl_restr_,
      tbl_count_, tbl_port_, tbl_mode_, tbl_ver_;
  std::uint8_t run_tag_ = 0;
  std::uint64_t run_len_ = 0;
};

/// Loads a recorded study and dispatches it into a sink.
class Replayer {
 public:
  /// False on missing file, bad magic, or malformed header.
  [[nodiscard]] bool load(const std::string& path);
  [[nodiscard]] bool load_archive(util::ColumnArchive archive);

  [[nodiscard]] const StudyHeader& header() const noexcept { return header_; }

  /// Dispatches the entire stream into `sink` in recorded order.
  /// False when the artifact is truncated or internally inconsistent
  /// (the sink may have received a prefix of the stream by then).
  [[nodiscard]] bool replay(EventSink& sink) const;

 private:
  StudyHeader header_;
  util::ColumnArchive archive_;
};

}  // namespace gorilla::study
