// CsvExportSink: streaming CSV projection of the event stream — the third
// replay backend. Each event becomes at most one row, written immediately
// to the caller's streams; the sink holds no per-event state, so memory is
// O(1) regardless of stream length. Doubles print with 17 significant
// digits, making the files byte-diffable between live and replayed runs.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>

#include "scan/prober.h"
#include "study/events.h"
#include "util/csv.h"

namespace gorilla::study {

class CsvExportSink final : public EventSink {
 public:
  /// Any stream may be null to skip that projection. Streams must outlive
  /// the sink; headers are written immediately.
  CsvExportSink(std::ostream* global, std::ostream* labels,
                std::ostream* summaries)
      : global_(global), labels_(labels), summaries_(summaries) {
    row(global_, {"day", "protocol", "bytes"});
    row(labels_, {"start", "vector", "peak_bps"});
    row(summaries_,
        {"week", "date", "probes_sent", "responders", "error_replies",
         "probes_lost", "retries", "truncated_tables", "rate_limited"});
  }

  [[nodiscard]] bool wants_labels() const override {
    return labels_ != nullptr;
  }

  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override {
    row(global_, {std::to_string(day), telemetry::to_string(p), exact(bytes)});
  }

  void on_attack_label(const telemetry::LabeledAttack& label) override {
    row(labels_, {std::to_string(label.start),
                  telemetry::to_string(label.vector), exact(label.peak_bps)});
  }

  void on_monlist_summary(const scan::MonlistSampleSummary& s) override {
    row(summaries_,
        {std::to_string(s.week),
         std::to_string(s.date.year) + "-" + std::to_string(s.date.month) +
             "-" + std::to_string(s.date.day),
         std::to_string(s.probes_sent), std::to_string(s.responders),
         std::to_string(s.error_replies), std::to_string(s.probes_lost),
         std::to_string(s.retries), std::to_string(s.truncated_tables),
         std::to_string(s.rate_limited)});
  }

  [[nodiscard]] std::uint64_t rows_written() const noexcept { return rows_; }

  /// Sticky: every row so far reached its stream intact.
  [[nodiscard]] bool ok() const noexcept {
    return (global_ == nullptr || global_->good()) &&
           (labels_ == nullptr || labels_->good()) &&
           (summaries_ == nullptr || summaries_->good());
  }

 private:
  static std::string exact(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  void row(std::ostream* out, const std::vector<std::string>& fields) {
    if (out == nullptr) return;
    *out << util::csv_row(fields) << '\n';
    ++rows_;
  }

  std::ostream* global_;
  std::ostream* labels_;
  std::ostream* summaries_;
  std::uint64_t rows_ = 0;
};

}  // namespace gorilla::study
