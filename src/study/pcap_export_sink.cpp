#include "study/pcap_export_sink.h"

#include "scan/prober.h"

namespace gorilla::study {

PcapExportSink::PcapExportSink(std::ostream& out,
                               const PcapExportSinkConfig& config)
    : out_(out),
      writer_(out),
      config_(config),
      windows_(config.windows),
      auto_windows_(config.windows.empty()) {}

void PcapExportSink::on_attack_label(const telemetry::LabeledAttack& label) {
  if (!auto_windows_) return;
  if (label.vector != telemetry::AttackVector::kNtp) return;
  if (label.peak_bps < config_.auto_min_peak_bps) return;
  windows_.push_back({label.start - config_.auto_pad_seconds,
                      label.start + config_.auto_pad_seconds});
}

bool PcapExportSink::in_window(util::SimTime start, util::SimTime end) const {
  for (const auto& w : windows_) {
    if (start < w.end && end >= w.start) return true;
  }
  return false;
}

void PcapExportSink::on_probe_observation(
    int /*week*/, const scan::AmplifierObservation& obs) {
  if (windows_.empty()) return;
  // The full chained response is identical for every victim in this table;
  // serialize it once, lazily, only if some entry actually matches.
  std::vector<std::vector<std::uint8_t>> response_datagrams;
  for (const auto& entry : obs.table) {
    const auto witnessed =
        core::derive_attack(entry, obs.probe_time, obs.address);
    if (!witnessed) continue;
    if (!in_window(witnessed->start_time, witnessed->end_time)) continue;
    if (exchanges_ >= config_.max_exchanges) {
      ++skipped_;
      continue;
    }
    if (response_datagrams.empty()) {
      for (const auto& p : ntp::make_monlist_response(obs.table, config_.impl)) {
        response_datagrams.push_back(ntp::serialize(p));
      }
    }
    const std::uint16_t victim_port =
        witnessed->victim_port != 0 ? witnessed->victim_port : net::kNtpPort;
    net::UdpPacket req;
    req.src = witnessed->victim;
    req.src_port = victim_port;
    req.dst = obs.address;
    req.dst_port = net::kNtpPort;
    req.timestamp = witnessed->start_time;
    req.payload = ntp::serialize(ntp::make_monlist_request(config_.impl));
    writer_.write(req);
    for (const auto& datagram : response_datagrams) {
      net::UdpPacket resp;
      resp.src = obs.address;
      resp.src_port = net::kNtpPort;
      resp.dst = witnessed->victim;
      resp.dst_port = victim_port;
      resp.timestamp = witnessed->start_time;
      resp.payload = datagram;
      writer_.write(resp);
    }
    ++exchanges_;
  }
}

}  // namespace gorilla::study
