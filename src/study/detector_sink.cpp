#include "study/detector_sink.h"

#include <algorithm>
#include <cstdio>

#include "net/packet.h"
#include "util/mem_stats.h"

namespace gorilla::study {

namespace {

/// Shortest round-trippable decimal for a double — render() must be a pure
/// function of the bit pattern, so no locale- or precision-lossy paths.
std::string exact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

DetectorSink::DetectorSink(const DetectorSinkConfig& config)
    : config_(config) {
  const util::SimTime span = config_.window_end - config_.window_start;
  if (span > 0 && config_.bucket_seconds > 0) {
    buckets_.assign(
        static_cast<std::size_t>((span + config_.bucket_seconds - 1) /
                                 config_.bucket_seconds),
        0.0);
  }
  static auto& gauge = util::MemStats::instance().counter("study.detector");
  gauge.observe(buckets_.size() * sizeof(double));
}

void DetectorSink::on_flow(const telemetry::FlowRecord& f, int /*vantage*/) {
  ++flows_seen_;
  if (buckets_.empty()) return;
  // NTP traffic only — the sink detects the paper's NTP attack episodes.
  if (f.protocol != 17 ||
      (f.src_port != net::kNtpPort && f.dst_port != net::kNtpPort)) {
    return;
  }
  // Identical arithmetic to FlowCollector::volume_series so a batch series
  // built from the same flows, in the same order, sums to the same bits.
  const util::SimTime start = config_.window_start;
  const util::SimTime end = config_.window_end;
  const util::SimTime bucket_seconds = config_.bucket_seconds;
  const util::SimTime f_first = std::max(f.first, start);
  const util::SimTime f_last = std::min(std::max(f.last, f.first), end - 1);
  if (f_first > f_last) return;
  const double span =
      static_cast<double>(std::max<util::SimTime>(1, f.last - f.first + 1));
  const double rate = static_cast<double>(f.bytes) / span;  // bytes/sec
  std::size_t b = static_cast<std::size_t>((f_first - start) / bucket_seconds);
  util::SimTime cursor = f_first;
  const std::size_t n = buckets_.size();
  while (cursor <= f_last && b < n) {
    const util::SimTime bucket_end =
        start + static_cast<util::SimTime>(b + 1) * bucket_seconds;
    const util::SimTime seg_end = std::min<util::SimTime>(f_last + 1, bucket_end);
    buckets_[b] += rate * static_cast<double>(seg_end - cursor);
    cursor = seg_end;
    ++b;
  }
  ++flows_binned_;
}

void DetectorSink::on_attack_label(const telemetry::LabeledAttack& label) {
  if (label.vector != config_.truth_vector) return;
  if (label.start < config_.window_start || label.start >= config_.window_end) {
    return;
  }
  // Labels carry only the onset; truth is a point interval, which the
  // overlap scorer treats as "a detection covering the onset counts".
  truth_.push_back({label.start, label.start});
}

void DetectorSink::finish() {
  if (finished_) return;
  finished_ = true;
  telemetry::StreamingDetector detector(
      config_.window_start, config_.bucket_seconds, config_.detector);
  for (const double bucket_bytes : buckets_) detector.push(bucket_bytes);
  detector.finish();
  attacks_ = detector.take_attacks();
  quality_ = telemetry::score_detections(attacks_, truth_);
}

std::string DetectorSink::render() const {
  std::string out;
  out += "detector window=[" + std::to_string(config_.window_start) + "," +
         std::to_string(config_.window_end) + ") bucket_seconds=" +
         std::to_string(config_.bucket_seconds) + " buckets=" +
         std::to_string(buckets_.size()) + " flows_seen=" +
         std::to_string(flows_seen_) + " flows_binned=" +
         std::to_string(flows_binned_) + "\n";
  for (const auto& a : attacks_) {
    out += "attack start=" + std::to_string(a.start) + " end=" +
           std::to_string(a.end) + " peak_bps=" + exact(a.peak_bps) +
           " volume_bytes=" + exact(a.volume_bytes) + "\n";
  }
  out += "quality truth=" + std::to_string(quality_.truth_count) +
         " detected=" + std::to_string(quality_.detected_count) +
         " matched_truth=" + std::to_string(quality_.matched_truth) +
         " matched_detected=" + std::to_string(quality_.matched_detected) +
         " recall=" + exact(quality_.recall()) + " precision=" +
         exact(quality_.precision()) + "\n";
  return out;
}

}  // namespace gorilla::study
