// Routes bus events back into the telemetry collectors — the bridge that
// makes the event-stream engine produce the exact collector state the
// pre-bus engine produced by calling collectors directly.
//
// Header-only on purpose: sim::AttackEngine's legacy sink struct is an
// alias of this type, and sim cannot link the gorilla_study library.
// Null members are simply skipped, mirroring the old AttackSinks contract.
#pragma once

#include <cstddef>
#include <vector>

#include "study/events.h"
// The bridge's whole job is routing events into the telemetry collectors,
// and it is header-only (see above) — the upward includes are its contract.
#include "telemetry/darknet.h"  // NOLINT(layer-break)
#include "telemetry/flow.h"     // NOLINT(layer-break)
#include "telemetry/traffic.h"  // NOLINT(layer-break)

namespace gorilla::study {

struct CollectorSink final : EventSink {
  telemetry::GlobalTrafficCollector* global = nullptr;
  telemetry::AttackLabelStore* labels = nullptr;
  std::vector<telemetry::FlowCollector*> vantages;
  telemetry::DarknetTelescope* darknet = nullptr;

  [[nodiscard]] bool wants_flows() const override { return !vantages.empty(); }
  [[nodiscard]] bool wants_labels() const override {
    return labels != nullptr;
  }

  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override {
    if (global != nullptr) global->add_bytes(day, p, bytes);
  }

  void on_attack_label(const telemetry::LabeledAttack& label) override {
    if (labels != nullptr) labels->add(label);
  }

  void on_flow(const telemetry::FlowRecord& flow, int vantage) override {
    if (vantage == kAllVantages) {
      for (auto* v : vantages) v->add(flow);
    } else if (vantage >= 0 &&
               static_cast<std::size_t>(vantage) < vantages.size()) {
      vantages[static_cast<std::size_t>(vantage)]->add(flow);
    }
  }

  void on_darknet_scan(net::Ipv4Address scanner, int day,
                       std::uint64_t packets, bool benign) override {
    if (darknet != nullptr) darknet->observe_scan(scanner, day, packets, benign);
  }
};

}  // namespace gorilla::study
