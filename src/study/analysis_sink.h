// Streams weekly probe-sample events into the §3/§4 core analyses.
//
// Call order within each event reproduces the pre-bus harness exactly:
// sample begin -> census, victims; each observation -> census, victims,
// extra hook; summary -> summaries vector; sample end -> census, victims.
#pragma once

#include <functional>
#include <vector>

#include "core/amplifiers.h"
#include "core/victims.h"
#include "scan/prober.h"
#include "study/events.h"

namespace gorilla::study {

struct AnalysisSink final : EventSink {
  core::AmplifierCensus* census = nullptr;
  core::VictimAnalysis* victims = nullptr;
  std::vector<scan::MonlistSampleSummary>* summaries = nullptr;
  /// Optional extra per-observation hook (named-subset counting etc.).
  std::function<void(int week, const scan::AmplifierObservation&)> extra;

  void on_sample_begin(int week, const util::Date& date) override {
    if (census != nullptr) census->begin_sample(week, date);
    if (victims != nullptr) victims->begin_sample(week, date);
  }

  void on_probe_observation(int week,
                            const scan::AmplifierObservation& obs) override {
    if (census != nullptr) census->add(obs);
    if (victims != nullptr) victims->add(obs);
    if (extra) extra(week, obs);
  }

  void on_monlist_summary(const scan::MonlistSampleSummary& summary) override {
    if (summaries != nullptr) summaries->push_back(summary);
  }

  void on_sample_end(int /*week*/) override {
    if (census != nullptr) census->end_sample();
    if (victims != nullptr) victims->end_sample();
  }
};

}  // namespace gorilla::study
