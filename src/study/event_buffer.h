// A buffered segment of the typed event stream, for day-sharded producers.
//
// A day shard runs produce() on a worker thread (DESIGN.md §3d), where it
// must not touch the shared bus; instead it records its typed emissions
// here — in emission order, via a tag tape like the Recorder's — and the
// calling thread replays them into the real sink during the ordered
// consume. The buffer mirrors the downstream sink's wants_*() capability
// bits so producers skip exactly the RNG draws they would have skipped
// when emitting directly (stream fidelity, §3d layer 2).
//
// Only the traffic-generation events (global bytes, labels, flows, darknet
// scans) are buffered: day shards never emit the weekly probe bracket,
// which stays on the calling thread.
#pragma once

#include <cstdint>
#include <vector>

#include "study/events.h"
#include "util/mem_stats.h"

namespace gorilla::study {

class EventBuffer final : public EventSink {
 public:
  EventBuffer() = default;
  EventBuffer(bool wants_flows, bool wants_labels)
      : wants_flows_(wants_flows), wants_labels_(wants_labels) {}

  /// A buffer that advertises the capability bits of the sink it will
  /// later be replayed into.
  [[nodiscard]] static EventBuffer mirroring(const EventSink& downstream) {
    return {downstream.wants_flows(), downstream.wants_labels()};
  }

  [[nodiscard]] bool wants_flows() const override { return wants_flows_; }
  [[nodiscard]] bool wants_labels() const override { return wants_labels_; }

  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override {
    tape_.push_back(kGlobalBytes);
    global_.push_back(GlobalBytes{day, p, bytes});
  }
  void on_attack_label(const telemetry::LabeledAttack& label) override {
    tape_.push_back(kAttackLabel);
    labels_.push_back(label);
  }
  void on_flow(const telemetry::FlowRecord& flow, int vantage) override {
    tape_.push_back(kFlow);
    flows_.push_back(Flow{flow, vantage});
  }
  void on_darknet_scan(net::Ipv4Address scanner, int day,
                       std::uint64_t packets, bool benign) override {
    tape_.push_back(kDarknetScan);
    darknet_.push_back(DarknetScan{scanner, day, packets, benign});
  }

  /// Re-emits every buffered event into `sink`, preserving total order.
  /// Replay is the natural batch boundary, so the buffer reports its
  /// footprint into the "study.event_buffer" gauge here (the gauge tracks
  /// the largest single shard buffer, which is what bounds a worker).
  void replay_into(EventSink& sink) const {
    static auto& gauge =
        util::MemStats::instance().counter("study.event_buffer");
    gauge.observe(footprint_bytes());
    std::size_t gi = 0, li = 0, fi = 0, di = 0;
    for (const auto tag : tape_) {
      switch (tag) {
        case kGlobalBytes: {
          const auto& e = global_[gi++];
          sink.on_global_bytes(e.day, e.protocol, e.bytes);
          break;
        }
        case kAttackLabel:
          sink.on_attack_label(labels_[li++]);
          break;
        case kFlow: {
          const auto& e = flows_[fi++];
          sink.on_flow(e.flow, e.vantage);
          break;
        }
        case kDarknetScan:
        default: {
          const auto& e = darknet_[di++];
          sink.on_darknet_scan(e.scanner, e.day, e.packets, e.benign);
          break;
        }
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return tape_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tape_.empty(); }

  /// Bytes of buffered-event storage (capacities, not sizes — what the
  /// allocator actually holds).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return tape_.capacity() * sizeof(std::uint8_t) +
           global_.capacity() * sizeof(GlobalBytes) +
           labels_.capacity() * sizeof(telemetry::LabeledAttack) +
           flows_.capacity() * sizeof(Flow) +
           darknet_.capacity() * sizeof(DarknetScan);
  }

 private:
  enum Tag : std::uint8_t { kGlobalBytes, kAttackLabel, kFlow, kDarknetScan };

  struct GlobalBytes {
    int day;
    telemetry::ProtocolClass protocol;
    double bytes;
  };
  struct Flow {
    telemetry::FlowRecord flow;
    int vantage;
  };
  struct DarknetScan {
    net::Ipv4Address scanner;
    int day;
    std::uint64_t packets;
    bool benign;
  };

  bool wants_flows_ = false;
  bool wants_labels_ = false;
  std::vector<std::uint8_t> tape_;
  std::vector<GlobalBytes> global_;
  std::vector<telemetry::LabeledAttack> labels_;
  std::vector<Flow> flows_;
  std::vector<DarknetScan> darknet_;
};

}  // namespace gorilla::study
