// Fan-out event bus: one sink that forwards to N subscribers in
// subscription order. Dispatch order is part of the determinism contract —
// subscribers see every event in the exact order producers emitted it, and
// within one event in the fixed subscription order, so order-sensitive
// consumers (float accumulators, visitor streams) behave identically
// whether they sit behind the bus, behind a replayed recording, or were
// called directly by the pre-bus engine.
#pragma once

#include <vector>

#include "study/events.h"

namespace gorilla::study {

class EventBus final : public EventSink {
 public:
  /// Adds a subscriber (not owned). Dispatch follows subscription order.
  void subscribe(EventSink* sink) { sinks_.push_back(sink); }

  [[nodiscard]] bool wants_flows() const override {
    for (const auto* s : sinks_) {
      if (s->wants_flows()) return true;
    }
    return false;
  }

  [[nodiscard]] bool wants_labels() const override {
    for (const auto* s : sinks_) {
      if (s->wants_labels()) return true;
    }
    return false;
  }

  void on_global_bytes(int day, telemetry::ProtocolClass p,
                       double bytes) override {
    for (auto* s : sinks_) s->on_global_bytes(day, p, bytes);
  }
  void on_attack_label(const telemetry::LabeledAttack& label) override {
    for (auto* s : sinks_) s->on_attack_label(label);
  }
  void on_flow(const telemetry::FlowRecord& flow, int vantage) override {
    for (auto* s : sinks_) s->on_flow(flow, vantage);
  }
  void on_darknet_scan(net::Ipv4Address scanner, int day,
                       std::uint64_t packets, bool benign) override {
    for (auto* s : sinks_) s->on_darknet_scan(scanner, day, packets, benign);
  }
  void on_sample_begin(int week, const util::Date& date) override {
    for (auto* s : sinks_) s->on_sample_begin(week, date);
  }
  void on_probe_observation(int week,
                            const scan::AmplifierObservation& obs) override {
    for (auto* s : sinks_) s->on_probe_observation(week, obs);
  }
  void on_monlist_summary(const scan::MonlistSampleSummary& summary) override {
    for (auto* s : sinks_) s->on_monlist_summary(summary);
  }
  void on_sample_end(int week) override {
    for (auto* s : sinks_) s->on_sample_end(week);
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace gorilla::study
