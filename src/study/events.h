// The typed event-stream interface of the study engine.
//
// Producers (sim::AttackEngine, sim::ScanTraffic, scan::Prober) emit typed
// events into an EventSink instead of calling telemetry collectors and
// core analyses directly. Consumers subscribe behind a study::EventBus:
// CollectorSink routes events back into the telemetry collectors,
// AnalysisSink streams probe observations into the §3/§4 analyses, and
// study::Recorder serializes the whole stream so one simulated study can be
// replayed into any number of analyses ("simulate once / analyze many").
//
// Everything here is header-only so `sim` can emit events without linking
// against the higher layers; only the Recorder/Replayer live in the
// gorilla_study library.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
// Published downward interface (DESIGN.md §3f): event payloads carry the
// telemetry vocabulary (FlowRecord, ProtocolClass, LabeledAttack) by value.
#include "telemetry/flow.h"     // NOLINT(layer-break)
#include "telemetry/traffic.h"  // NOLINT(layer-break)
#include "util/time.h"

namespace gorilla::scan {
struct AmplifierObservation;
struct MonlistSampleSummary;
}  // namespace gorilla::scan

namespace gorilla::study {

/// on_flow() vantage argument: broadcast to every vantage collector.
/// Targeted flows carry the index of one vantage in the harness's vantage
/// list — the scanner constructs each vantage's slice of a sweep separately
/// and the hint keeps that targeting exact through recording and replay.
inline constexpr int kAllVantages = -1;

/// Receiver of the typed study event stream. Default implementations drop
/// everything, so sinks override only what they consume.
///
/// The wants_*() capabilities exist for stream fidelity, not just speed:
/// producers consult them exactly where the pre-bus engine consulted
/// "is this collector wired?", so a run with an absent collector burns the
/// same RNG draws through the bus as it did before the bus existed.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// True when some subscriber consumes flow records.
  [[nodiscard]] virtual bool wants_flows() const { return false; }
  /// True when some subscriber consumes labeled-attack events.
  [[nodiscard]] virtual bool wants_labels() const { return false; }

  // --- traffic-generation producers (sim) -------------------------------
  virtual void on_global_bytes(int /*day*/, telemetry::ProtocolClass /*p*/,
                               double /*bytes*/) {}
  virtual void on_attack_label(const telemetry::LabeledAttack& /*label*/) {}
  virtual void on_flow(const telemetry::FlowRecord& /*flow*/,
                       int /*vantage*/) {}
  virtual void on_darknet_scan(net::Ipv4Address /*scanner*/, int /*day*/,
                               std::uint64_t /*packets*/, bool /*benign*/) {}

  // --- weekly probe-sample producers (scan) ------------------------------
  virtual void on_sample_begin(int /*week*/, const util::Date& /*date*/) {}
  virtual void on_probe_observation(
      int /*week*/, const scan::AmplifierObservation& /*obs*/) {}
  virtual void on_monlist_summary(
      const scan::MonlistSampleSummary& /*summary*/) {}
  virtual void on_sample_end(int /*week*/) {}
};

/// Elects every capability and discards every event. Subscribing this to a
/// bus reproduces a full consumer's event-construction demand (producers
/// see wants_flows()/wants_labels() true and build the same stream) while
/// keeping nothing — the sink behind resume fast-forward, where weeks that
/// were already replayed from the artifact must still burn identical work
/// on the producer side without double-delivering to the real consumers.
class ConsumeAllSink final : public EventSink {
 public:
  [[nodiscard]] bool wants_flows() const override { return true; }
  [[nodiscard]] bool wants_labels() const override { return true; }
};

}  // namespace gorilla::study
