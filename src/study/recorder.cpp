#include "study/recorder.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "scan/prober.h"
#include "util/mem_stats.h"
#include "util/thread_pool.h"

namespace gorilla::study {

namespace {

// Event tags on the tape. Values are part of the artifact format.
enum : std::uint8_t {
  kTagGlobal = 1,
  kTagLabel = 2,
  kTagFlow = 3,
  kTagDark = 4,
  kTagBegin = 5,
  kTagObs = 6,
  kTagSummary = 7,
  kTagEnd = 8,
};

std::vector<std::uint8_t> encode_header(const StudyHeader& h) {
  util::ColumnWriter w;
  w.put_u32(h.version);
  w.put_u8(h.kind);
  w.put_u32(h.scale);
  w.put_varint(h.seed);
  w.put_u8(h.quick ? 1 : 0);
  w.put_u8(h.with_vantages ? 1 : 0);
  w.put_u8(h.with_darknet ? 1 : 0);
  w.put_zigzag(h.param_a);
  w.put_zigzag(h.param_b);
  return w.take_buffer();
}

bool decode_header(const std::vector<std::uint8_t>& bytes, StudyHeader& h) {
  util::ColumnReader r(bytes);
  h.version = r.get_u32();
  h.kind = r.get_u8();
  h.scale = r.get_u32();
  h.seed = r.get_varint();
  h.quick = r.get_u8() != 0;
  h.with_vantages = r.get_u8() != 0;
  h.with_darknet = r.get_u8() != 0;
  h.param_a = static_cast<std::int32_t>(r.get_zigzag());
  h.param_b = static_cast<std::int32_t>(r.get_zigzag());
  return r.ok() && h.version == 1;
}

void encode_date(util::ColumnWriter& w, const util::Date& d) {
  w.put_zigzag(d.year);
  w.put_u8(static_cast<std::uint8_t>(d.month));
  w.put_u8(static_cast<std::uint8_t>(d.day));
}

util::Date decode_date(util::ColumnReader& r) {
  util::Date d;
  d.year = static_cast<int>(r.get_zigzag());
  d.month = r.get_u8();
  d.day = r.get_u8();
  return d;
}

// Section layout, in write order. Shared by the strict loader (all must be
// present) and the prefix loader (missing trailing ones read as empty).
constexpr const char* kSectionNames[] = {
    "tape", "global", "label", "flow", "dark", "begin", "obs", "sum",
    "end", "tbl.addr", "tbl.local", "tbl.avg", "tbl.seen", "tbl.restr",
    "tbl.count", "tbl.port", "tbl.mode", "tbl.ver"};

/// A do-nothing sink for validation/counting passes over a stream.
struct NullSink final : EventSink {};

/// Decoder-side mirror of the Recorder's v3 transform state.
struct DecodeState {
  std::int64_t global_day = 0, label_start = 0, flow_first = 0, dark_day = 0,
               obs_index = 0, obs_addr = 0, obs_time = 0, tbl_addr = 0,
               tbl_local = 0, tbl_seen = 0;
  std::int64_t week_base = 0;
  bool week_base_set = false;
};

std::int64_t get_delta(util::ColumnReader& r, std::int64_t& prev) {
  prev += r.get_zigzag();
  return prev;
}

int get_week(util::ColumnReader& r, bool transform, DecodeState& st) {
  const std::int64_t v = r.get_zigzag();
  if (!transform) return static_cast<int>(v);
  if (!st.week_base_set) {
    st.week_base = v;
    st.week_base_set = true;
    return static_cast<int>(v);
  }
  return static_cast<int>(st.week_base + v);
}

struct StreamStats {
  std::uint64_t events = 0;
  /// Events up to and including the last on_sample_end — the longest
  /// week-aligned prefix, which is what a resume may safely consume.
  std::uint64_t safe_events = 0;
  int weeks = 0;
  /// Whole tape consumed, every column consistent, no cap hit.
  bool clean = false;
};

}  // namespace

void Recorder::tag(std::uint8_t t) {
  if (t == run_tag_) {
    ++run_len_;
    return;
  }
  flush_run();
  run_tag_ = t;
  run_len_ = 1;
}

void Recorder::flush_run() {
  if (run_len_ == 0) return;
  tape_.put_u8(run_tag_);
  tape_.put_varint(run_len_);
  run_len_ = 0;
}

void Recorder::put_delta(util::ColumnWriter& col, std::int64_t& prev,
                         std::int64_t v) {
  col.put_zigzag(v - prev);
  prev = v;
}

void Recorder::put_week(util::ColumnWriter& col, int week) {
  if (!transform_) {
    col.put_zigzag(week);
    return;
  }
  // Frame of reference: the first week id on the tape anchors the frame;
  // later ones store only the (tiny) difference.
  if (!week_base_set_) {
    week_base_ = week;
    week_base_set_ = true;
    col.put_zigzag(week);
    return;
  }
  col.put_zigzag(week - week_base_);
}

void Recorder::on_global_bytes(int day, telemetry::ProtocolClass p,
                               double bytes) {
  tag(kTagGlobal);
  if (transform_) {
    put_delta(global_, prev_global_day_, day);
  } else {
    global_.put_zigzag(day);
  }
  global_.put_u8(static_cast<std::uint8_t>(p));
  global_.put_f64(bytes);
}

void Recorder::on_attack_label(const telemetry::LabeledAttack& label) {
  tag(kTagLabel);
  if (transform_) {
    put_delta(label_, prev_label_start_, label.start);
  } else {
    label_.put_zigzag(label.start);
  }
  label_.put_u8(static_cast<std::uint8_t>(label.vector));
  label_.put_f64(label.peak_bps);
}

void Recorder::on_flow(const telemetry::FlowRecord& flow, int vantage) {
  tag(kTagFlow);
  flow_.put_zigzag(vantage);
  flow_.put_u32(flow.src.value());
  flow_.put_u32(flow.dst.value());
  flow_.put_u16(flow.src_port);
  flow_.put_u16(flow.dst_port);
  flow_.put_u8(flow.protocol);
  flow_.put_u8(flow.ttl);
  flow_.put_varint(flow.packets);
  flow_.put_varint(flow.bytes);
  flow_.put_varint(flow.payload_bytes);
  if (transform_) {
    put_delta(flow_, prev_flow_first_, flow.first);
    flow_.put_zigzag(flow.last - flow.first);
  } else {
    flow_.put_zigzag(flow.first);
    flow_.put_zigzag(flow.last);
  }
}

void Recorder::on_darknet_scan(net::Ipv4Address scanner, int day,
                               std::uint64_t packets, bool benign) {
  tag(kTagDark);
  dark_.put_u32(scanner.value());
  if (transform_) {
    put_delta(dark_, prev_dark_day_, day);
  } else {
    dark_.put_zigzag(day);
  }
  dark_.put_varint(packets);
  dark_.put_u8(benign ? 1 : 0);
}

void Recorder::on_sample_begin(int week, const util::Date& date) {
  tag(kTagBegin);
  put_week(begin_, week);
  encode_date(begin_, date);
}

void Recorder::on_probe_observation(int week,
                                    const scan::AmplifierObservation& obs) {
  tag(kTagObs);
  put_week(obs_, week);
  if (transform_) {
    // The weekly sweep walks servers in index order and stamps a
    // monotone probe clock: deltas are tiny where absolutes were wide.
    put_delta(obs_, prev_obs_index_, obs.server_index);
    put_delta(obs_, prev_obs_addr_, obs.address.value());
  } else {
    obs_.put_varint(obs.server_index);
    obs_.put_u32(obs.address.value());
  }
  obs_.put_varint(obs.response_packets);
  obs_.put_varint(obs.response_udp_bytes);
  obs_.put_varint(obs.response_wire_bytes);
  if (transform_) {
    put_delta(obs_, prev_obs_time_, obs.probe_time);
  } else {
    obs_.put_zigzag(obs.probe_time);
  }
  obs_.put_u8(obs.table_partial ? 1 : 0);
  obs_.put_zigzag(obs.attempts);
  obs_.put_varint(obs.table.size());
  for (const auto& e : obs.table) {
    if (transform_) {
      // Dumps are sorted by last_seen (monotone within a dump) and the
      // local address repeats for a whole dump — deltas collapse both.
      put_delta(tbl_addr_, prev_tbl_addr_, e.address.value());
      put_delta(tbl_local_, prev_tbl_local_, e.local_address.value());
    } else {
      tbl_addr_.put_u32(e.address.value());
      tbl_local_.put_u32(e.local_address.value());
    }
    tbl_avg_.put_varint(e.avg_interval);
    if (transform_) {
      put_delta(tbl_seen_, prev_tbl_seen_, e.last_seen);
    } else {
      tbl_seen_.put_varint(e.last_seen);
    }
    tbl_restr_.put_varint(e.restr);
    tbl_count_.put_varint(e.count);
    tbl_port_.put_u16(e.port);
    tbl_mode_.put_u8(e.mode);
    tbl_ver_.put_u8(e.version);
  }
}

void Recorder::on_monlist_summary(const scan::MonlistSampleSummary& summary) {
  tag(kTagSummary);
  put_week(sum_, summary.week);
  encode_date(sum_, summary.date);
  sum_.put_varint(summary.probes_sent);
  sum_.put_varint(summary.responders);
  sum_.put_varint(summary.error_replies);
  sum_.put_varint(summary.probes_lost);
  sum_.put_varint(summary.retries);
  sum_.put_varint(summary.truncated_tables);
  sum_.put_varint(summary.rate_limited);
}

void Recorder::on_sample_end(int week) {
  tag(kTagEnd);
  put_week(end_, week);
  // Week boundary: report the accumulated column bytes into the memory
  // registry (gauge — the recorder only ever grows until to_archive()).
  static auto& gauge = util::MemStats::instance().counter("study.recorder");
  gauge.observe(column_bytes());
}

std::size_t Recorder::column_bytes() const noexcept {
  return tape_.size() + global_.size() + label_.size() + flow_.size() +
         dark_.size() + begin_.size() + obs_.size() + sum_.size() +
         end_.size() + tbl_addr_.size() + tbl_local_.size() + tbl_avg_.size() +
         tbl_seen_.size() + tbl_restr_.size() + tbl_count_.size() +
         tbl_port_.size() + tbl_mode_.size() + tbl_ver_.size();
}

util::ColumnArchive Recorder::to_archive() {
  flush_run();
  util::ColumnArchive archive;
  archive.version = artifact_version_;
  archive.header = encode_header(header_);
  archive.sections.emplace_back("tape", tape_.take_buffer());
  archive.sections.emplace_back("global", global_.take_buffer());
  archive.sections.emplace_back("label", label_.take_buffer());
  archive.sections.emplace_back("flow", flow_.take_buffer());
  archive.sections.emplace_back("dark", dark_.take_buffer());
  archive.sections.emplace_back("begin", begin_.take_buffer());
  archive.sections.emplace_back("obs", obs_.take_buffer());
  archive.sections.emplace_back("sum", sum_.take_buffer());
  archive.sections.emplace_back("end", end_.take_buffer());
  archive.sections.emplace_back("tbl.addr", tbl_addr_.take_buffer());
  archive.sections.emplace_back("tbl.local", tbl_local_.take_buffer());
  archive.sections.emplace_back("tbl.avg", tbl_avg_.take_buffer());
  archive.sections.emplace_back("tbl.seen", tbl_seen_.take_buffer());
  archive.sections.emplace_back("tbl.restr", tbl_restr_.take_buffer());
  archive.sections.emplace_back("tbl.count", tbl_count_.take_buffer());
  archive.sections.emplace_back("tbl.port", tbl_port_.take_buffer());
  archive.sections.emplace_back("tbl.mode", tbl_mode_.take_buffer());
  archive.sections.emplace_back("tbl.ver", tbl_ver_.take_buffer());
  return archive;
}

bool Recorder::save(const std::string& path) {
  return to_archive().save_file(path);
}

util::ColumnArchive Recorder::snapshot_archive() const {
  util::ColumnArchive archive;
  archive.version = artifact_version_;
  archive.header = encode_header(header_);
  // Copy the tape and materialize the pending RLE run into the copy so the
  // snapshot ends exactly at the last event seen; the live run keeps
  // accumulating into the original, unperturbed.
  std::vector<std::uint8_t> tape = tape_.buffer();
  if (run_len_ > 0) {
    util::ColumnWriter pending;
    pending.put_u8(run_tag_);
    pending.put_varint(run_len_);
    const auto& extra = pending.buffer();
    tape.insert(tape.end(), extra.begin(), extra.end());
  }
  archive.sections.emplace_back("tape", std::move(tape));
  archive.sections.emplace_back("global", global_.buffer());
  archive.sections.emplace_back("label", label_.buffer());
  archive.sections.emplace_back("flow", flow_.buffer());
  archive.sections.emplace_back("dark", dark_.buffer());
  archive.sections.emplace_back("begin", begin_.buffer());
  archive.sections.emplace_back("obs", obs_.buffer());
  archive.sections.emplace_back("sum", sum_.buffer());
  archive.sections.emplace_back("end", end_.buffer());
  archive.sections.emplace_back("tbl.addr", tbl_addr_.buffer());
  archive.sections.emplace_back("tbl.local", tbl_local_.buffer());
  archive.sections.emplace_back("tbl.avg", tbl_avg_.buffer());
  archive.sections.emplace_back("tbl.seen", tbl_seen_.buffer());
  archive.sections.emplace_back("tbl.restr", tbl_restr_.buffer());
  archive.sections.emplace_back("tbl.count", tbl_count_.buffer());
  archive.sections.emplace_back("tbl.port", tbl_port_.buffer());
  archive.sections.emplace_back("tbl.mode", tbl_mode_.buffer());
  archive.sections.emplace_back("tbl.ver", tbl_ver_.buffer());
  return archive;
}

bool Recorder::checkpoint(const std::string& path) const {
  return snapshot_archive().save_file(path);
}

bool Replayer::load(const std::string& path) {
  auto archive = util::ColumnArchive::load_file(path);
  if (!archive) return false;
  return load_archive(std::move(*archive));
}

bool Replayer::load_archive(util::ColumnArchive archive) {
  if (!decode_header(archive.header, header_)) return false;
  for (const char* name : kSectionNames) {
    if (archive.find(name) == nullptr) return false;
  }
  archive_ = std::move(archive);
  apply_decode_policy();
  return true;
}

bool Replayer::load_prefix(const std::string& path, ReplayReport& report) {
  report = ReplayReport{};
  util::ArchiveReadReport container;
  auto archive = util::ColumnArchive::load_file_prefix(path, &container);
  report.sections_ok = container.sections_ok;
  report.crc_failures = container.crc_failures;
  report.truncated_at = container.truncated_at;
  report.partial_section = container.partial_section;
  report.damaged_section = container.damaged_section;
  report.bad_block = container.bad_block;
  report.bad_block_offset = container.bad_block_offset;
  if (!archive) return false;
  if (!decode_header(archive->header, header_)) return false;
  report.clean = container.complete;
  archive_ = std::move(*archive);
  apply_decode_policy();
  return true;
}

void Replayer::apply_decode_policy() {
  if (decode_jobs_ <= 1) return;
  util::ThreadPool pool(decode_jobs_);
  archive_.inflate(&pool);
}

std::string Replayer::describe_load_failure(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "cannot open '" + path + "'";
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  const std::size_t got = static_cast<std::size_t>(in.gcount());
  const std::string prefix(magic, std::min<std::size_t>(got, 7));
  if (got < sizeof(magic) || prefix != "GORCOLv") {
    return "'" + path + "' is not a GORCOL artifact (bad magic)";
  }
  const char v = magic[7];
  if (v != '1' && v != '2' && v != '3') {
    return "'" + path + "' is container version GORCOLv" + std::string(1, v) +
           "; this build reads GORCOLv1 through GORCOLv3";
  }
  util::ArchiveReadReport container;
  auto archive = util::ColumnArchive::load_file_prefix(path, &container);
  if (!archive) {
    if (container.crc_failures > 0) {
      return "'" + path + "': study header failed its checksum";
    }
    return "'" + path + "': truncated before the study header (offset " +
           std::to_string(container.truncated_at.value_or(0)) + ")";
  }
  StudyHeader h;
  if (!decode_header(archive->header, h)) {
    util::ColumnReader r(archive->header);
    const std::uint32_t version = r.get_u32();
    if (r.ok() && version != 1) {
      return "'" + path + "': study header version " +
             std::to_string(version) + " unsupported (this build reads 1)";
    }
    return "'" + path + "': malformed study header";
  }
  if (container.complete) return "'" + path + "' loads cleanly";
  // The strict load refused a damaged file the prefix loader can still
  // mine — say exactly where the damage sits.
  const std::string intact =
      std::to_string(container.sections_ok) + " intact section(s)";
  if (container.bad_block) {
    // Block-granular verdict: a v3 compressed section damaged mid-stream.
    const std::string kind =
        container.crc_failures > 0 ? "failed its checksum" : "is torn";
    return "'" + path + "': section '" + container.damaged_section +
           "' compressed block " + std::to_string(*container.bad_block) +
           " " + kind + " at offset " +
           std::to_string(container.bad_block_offset.value_or(0)) + " (" +
           intact + " precede it)";
  }
  if (container.crc_failures > 0) {
    return "'" + path + "': a section failed its checksum after " + intact;
  }
  return "'" + path + "': truncated at offset " +
         std::to_string(container.truncated_at.value_or(0)) + " after " +
         intact;
}

namespace {

/// The one dispatch loop behind replay(), complete_weeks(), and
/// replay_prefix(). Walks the tape, decodes each event out of its column,
/// and hands it to `sink`. Stops at `max_events`, after `max_weeks`
/// complete weeks (-1 = unlimited), or at the first inconsistency (short
/// column, unknown tag, absurd table size) — damage ends the walk, it
/// never fabricates an event.
StreamStats dispatch_stream(const util::ColumnArchive& archive, EventSink& sink,
                            std::uint64_t max_events, int max_weeks) {
  util::ColumnReader tape = archive.column("tape");
  util::ColumnReader global = archive.column("global");
  util::ColumnReader label = archive.column("label");
  util::ColumnReader flow = archive.column("flow");
  util::ColumnReader dark = archive.column("dark");
  util::ColumnReader begin = archive.column("begin");
  util::ColumnReader obs_col = archive.column("obs");
  util::ColumnReader sum = archive.column("sum");
  util::ColumnReader end = archive.column("end");
  util::ColumnReader tbl_addr = archive.column("tbl.addr");
  util::ColumnReader tbl_local = archive.column("tbl.local");
  util::ColumnReader tbl_avg = archive.column("tbl.avg");
  util::ColumnReader tbl_seen = archive.column("tbl.seen");
  util::ColumnReader tbl_restr = archive.column("tbl.restr");
  util::ColumnReader tbl_count = archive.column("tbl.count");
  util::ColumnReader tbl_port = archive.column("tbl.port");
  util::ColumnReader tbl_mode = archive.column("tbl.mode");
  util::ColumnReader tbl_ver = archive.column("tbl.ver");

  // v3 columns are transform-encoded (deltas / frame-of-reference); this
  // state mirrors the Recorder's, advanced in the same tape order.
  const bool transform = archive.version >= 3;
  DecodeState st;

  StreamStats stats;
  bool damaged = false;
  bool capped = false;
  scan::AmplifierObservation obs;  // reused across dispatches
  while (!tape.at_end() && !damaged && !capped) {
    const std::uint8_t t = tape.get_u8();
    const std::uint64_t count = tape.get_varint();
    if (!tape.ok()) {
      damaged = true;
      break;
    }
    for (std::uint64_t i = 0; i < count && !damaged; ++i) {
      if (stats.events >= max_events ||
          (max_weeks >= 0 && stats.weeks >= max_weeks)) {
        capped = true;
        break;
      }
      switch (t) {
        case kTagGlobal: {
          const int day = static_cast<int>(
              transform ? get_delta(global, st.global_day)
                        : global.get_zigzag());
          const auto p = static_cast<telemetry::ProtocolClass>(global.get_u8());
          const double bytes = global.get_f64();
          if (!global.ok()) {
            damaged = true;
            break;
          }
          sink.on_global_bytes(day, p, bytes);
          break;
        }
        case kTagLabel: {
          telemetry::LabeledAttack a;
          a.start = transform ? get_delta(label, st.label_start)
                              : label.get_zigzag();
          a.vector = static_cast<telemetry::AttackVector>(label.get_u8());
          a.peak_bps = label.get_f64();
          if (!label.ok()) {
            damaged = true;
            break;
          }
          sink.on_attack_label(a);
          break;
        }
        case kTagFlow: {
          const int vantage = static_cast<int>(flow.get_zigzag());
          telemetry::FlowRecord f;
          f.src = net::Ipv4Address(flow.get_u32());
          f.dst = net::Ipv4Address(flow.get_u32());
          f.src_port = flow.get_u16();
          f.dst_port = flow.get_u16();
          f.protocol = flow.get_u8();
          f.ttl = flow.get_u8();
          f.packets = flow.get_varint();
          f.bytes = flow.get_varint();
          f.payload_bytes = flow.get_varint();
          if (transform) {
            f.first = get_delta(flow, st.flow_first);
            f.last = f.first + flow.get_zigzag();
          } else {
            f.first = flow.get_zigzag();
            f.last = flow.get_zigzag();
          }
          if (!flow.ok()) {
            damaged = true;
            break;
          }
          sink.on_flow(f, vantage);
          break;
        }
        case kTagDark: {
          const net::Ipv4Address scanner(dark.get_u32());
          const int day = static_cast<int>(
              transform ? get_delta(dark, st.dark_day) : dark.get_zigzag());
          const std::uint64_t packets = dark.get_varint();
          const bool benign = dark.get_u8() != 0;
          if (!dark.ok()) {
            damaged = true;
            break;
          }
          sink.on_darknet_scan(scanner, day, packets, benign);
          break;
        }
        case kTagBegin: {
          const int week = get_week(begin, transform, st);
          const util::Date date = decode_date(begin);
          if (!begin.ok()) {
            damaged = true;
            break;
          }
          sink.on_sample_begin(week, date);
          break;
        }
        case kTagObs: {
          const int week = get_week(obs_col, transform, st);
          if (transform) {
            obs.server_index =
                static_cast<std::uint32_t>(get_delta(obs_col, st.obs_index));
            obs.address = net::Ipv4Address(
                static_cast<std::uint32_t>(get_delta(obs_col, st.obs_addr)));
          } else {
            obs.server_index =
                static_cast<std::uint32_t>(obs_col.get_varint());
            obs.address = net::Ipv4Address(obs_col.get_u32());
          }
          obs.response_packets = obs_col.get_varint();
          obs.response_udp_bytes = obs_col.get_varint();
          obs.response_wire_bytes = obs_col.get_varint();
          obs.probe_time = transform ? get_delta(obs_col, st.obs_time)
                                     : obs_col.get_zigzag();
          obs.table_partial = obs_col.get_u8() != 0;
          obs.attempts = static_cast<int>(obs_col.get_zigzag());
          const std::uint64_t n = obs_col.get_varint();
          if (!obs_col.ok() || n > (1u << 24)) {
            damaged = true;
            break;
          }
          obs.table.clear();
          obs.table.reserve(static_cast<std::size_t>(n));
          for (std::uint64_t e = 0; e < n; ++e) {
            ntp::MonitorEntry entry;
            if (transform) {
              entry.address = net::Ipv4Address(static_cast<std::uint32_t>(
                  get_delta(tbl_addr, st.tbl_addr)));
              entry.local_address = net::Ipv4Address(
                  static_cast<std::uint32_t>(
                      get_delta(tbl_local, st.tbl_local)));
            } else {
              entry.address = net::Ipv4Address(tbl_addr.get_u32());
              entry.local_address = net::Ipv4Address(tbl_local.get_u32());
            }
            entry.avg_interval =
                static_cast<std::uint32_t>(tbl_avg.get_varint());
            entry.last_seen = static_cast<std::uint32_t>(
                transform ? get_delta(tbl_seen, st.tbl_seen)
                          : static_cast<std::int64_t>(tbl_seen.get_varint()));
            entry.restr = static_cast<std::uint32_t>(tbl_restr.get_varint());
            entry.count = static_cast<std::uint32_t>(tbl_count.get_varint());
            entry.port = tbl_port.get_u16();
            entry.mode = tbl_mode.get_u8();
            entry.version = tbl_ver.get_u8();
            obs.table.push_back(entry);
          }
          if (!tbl_addr.ok() || !tbl_ver.ok()) {
            damaged = true;
            break;
          }
          sink.on_probe_observation(week, obs);
          break;
        }
        case kTagSummary: {
          scan::MonlistSampleSummary s;
          s.week = get_week(sum, transform, st);
          s.date = decode_date(sum);
          s.probes_sent = sum.get_varint();
          s.responders = sum.get_varint();
          s.error_replies = sum.get_varint();
          s.probes_lost = sum.get_varint();
          s.retries = sum.get_varint();
          s.truncated_tables = sum.get_varint();
          s.rate_limited = sum.get_varint();
          if (!sum.ok()) {
            damaged = true;
            break;
          }
          sink.on_monlist_summary(s);
          break;
        }
        case kTagEnd: {
          const int week = get_week(end, transform, st);
          if (!end.ok()) {
            damaged = true;
            break;
          }
          sink.on_sample_end(week);
          break;
        }
        default:
          damaged = true;  // unknown tag: artifact from a newer format
          break;
      }
      if (damaged) break;
      ++stats.events;
      if (t == kTagEnd) {
        ++stats.weeks;
        stats.safe_events = stats.events;
      }
    }
  }
  stats.clean = !damaged && !capped && tape.at_end() && tape.ok();
  return stats;
}

}  // namespace

bool Replayer::replay(EventSink& sink) const {
  constexpr auto kNoCap = ~std::uint64_t{0};
  return dispatch_stream(archive_, sink, kNoCap, -1).clean;
}

int Replayer::complete_weeks() const {
  NullSink null;
  constexpr auto kNoCap = ~std::uint64_t{0};
  return dispatch_stream(archive_, null, kNoCap, -1).weeks;
}

bool Replayer::replay_prefix(EventSink& sink, int max_weeks,
                             ReplayReport& report) const {
  // Validation pass into a null sink finds the longest week-aligned run of
  // decodable events; the real pass then stops exactly there, so `sink`
  // never observes a torn week even from a damaged artifact.
  NullSink null;
  constexpr auto kNoCap = ~std::uint64_t{0};
  const StreamStats scan = dispatch_stream(archive_, null, kNoCap, max_weeks);
  const StreamStats real =
      dispatch_stream(archive_, sink, scan.safe_events, -1);
  report.events = real.events;
  report.weeks_complete = real.weeks;
  return real.events == scan.safe_events;
}

}  // namespace gorilla::study
