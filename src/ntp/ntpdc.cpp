#include "ntp/ntpdc.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "net/ipv4.h"

namespace gorilla::ntp {

namespace {

constexpr const char* kHeader =
    "remote address          port local address      count m ver rstr "
    "avgint  lstint";

bool is_separator(const std::string& line) {
  if (line.empty()) return false;
  for (const char c : line) {
    if (c != '=' && c != '-') return false;
  }
  return true;
}

}  // namespace

std::string render_monlist_row(const MonitorEntry& entry) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-22s %5u %-18s %5u %u %-3u %4u %6u %7u",
                net::to_string(entry.address).c_str(), entry.port,
                net::to_string(entry.local_address).c_str(), entry.count,
                entry.mode, entry.version, entry.restr, entry.avg_interval,
                entry.last_seen);
  return buf;
}

std::string render_monlist(std::span<const MonitorEntry> table) {
  std::string out = kHeader;
  out += '\n';
  out.append(std::string(out.size() - 1, '='));
  out += '\n';
  for (const auto& entry : table) {
    out += render_monlist_row(entry);
    out += '\n';
  }
  return out;
}

std::optional<std::vector<MonitorEntry>> parse_monlist_text(
    const std::string& text) {
  std::vector<MonitorEntry> entries;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    // Strip trailing whitespace.
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    if (line.empty() || is_separator(line)) continue;
    if (line.find("remote address") != std::string::npos) continue;

    std::istringstream row(line);
    std::string remote, local;
    unsigned port = 0, count = 0, mode = 0, version = 0, restr = 0;
    unsigned avgint = 0, lstint = 0;
    if (!(row >> remote >> port >> local >> count >> mode >> version >>
          restr >> avgint >> lstint)) {
      return std::nullopt;  // malformed data row
    }
    const auto remote_addr = net::parse_ipv4(remote);
    const auto local_addr = net::parse_ipv4(local);
    if (!remote_addr || !local_addr || port > 65535 || mode > 7) {
      return std::nullopt;
    }
    MonitorEntry e;
    e.address = *remote_addr;
    e.local_address = *local_addr;
    e.port = static_cast<std::uint16_t>(port);
    e.count = count;
    e.mode = static_cast<std::uint8_t>(mode);
    e.version = static_cast<std::uint8_t>(version);
    e.restr = restr;
    e.avg_interval = avgint;
    e.last_seen = lstint;
    entries.push_back(e);
  }
  return entries;
}

}  // namespace gorilla::ntp
