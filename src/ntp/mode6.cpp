#include "ntp/mode6.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/bytes.h"

namespace gorilla::ntp {

std::vector<std::uint8_t> serialize(const ControlPacket& p) {
  std::vector<std::uint8_t> out;
  out.reserve(p.total_bytes());
  util::ByteWriter w(out);
  w.u8(make_li_vn_mode(0, p.version, Mode::kControl));
  std::uint8_t rem = static_cast<std::uint8_t>(p.opcode) & 0x1f;
  if (p.response) rem |= 0x80;
  if (p.error) rem |= 0x40;
  if (p.more) rem |= 0x20;
  w.u8(rem);
  w.u16be(p.sequence);
  w.u16be(p.status);
  w.u16be(p.association_id);
  w.u16be(p.offset);
  w.u16be(static_cast<std::uint16_t>(p.data.size()));
  w.bytes(p.data);
  w.pad_to(4);
  return out;
}

std::optional<ControlPacket> parse_control_packet(
    std::span<const std::uint8_t> raw) {
  util::ByteReader r(raw);
  const std::uint8_t b0 = r.u8();
  if (r.truncated() ||
      (b0 & 0x7) != static_cast<std::uint8_t>(Mode::kControl)) {
    return std::nullopt;
  }
  ControlPacket p;
  p.version = (b0 >> 3) & 0x7;
  const std::uint8_t rem = r.u8();
  p.response = rem & 0x80;
  p.error = rem & 0x40;
  p.more = rem & 0x20;
  p.opcode = static_cast<ControlOp>(rem & 0x1f);
  p.sequence = r.u16be();
  p.status = r.u16be();
  p.association_id = r.u16be();
  p.offset = r.u16be();
  const std::uint16_t count = r.u16be();
  const auto data = r.take(count);
  if (!r.ok()) return std::nullopt;  // short header or declared count > body
  p.data.assign(data.begin(), data.end());
  return p;
}

ControlPacket make_version_request(std::uint16_t sequence) {
  ControlPacket p;
  p.opcode = ControlOp::kReadVariables;
  p.sequence = sequence;
  return p;
}

std::string SystemVariables::render() const {
  char num[64];
  std::string out;
  out += "version=\"" + version + "\"";
  out += ", processor=\"" + processor + "\"";
  out += ", system=\"" + system + "\"";
  std::snprintf(num, sizeof num, ", leap=%d, stratum=%d", leap, stratum);
  out += num;
  std::snprintf(num, sizeof num, ", rootdelay=%.3f, rootdisp=%.3f",
                rootdelay_ms, rootdisp_ms);
  out += num;
  for (const auto& [key, value] : extras) {
    out += ", " + key + "=" + value;
  }
  return out;
}

std::map<std::string, std::string> parse_variable_list(const std::string& text) {
  std::map<std::string, std::string> vars;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Skip separators.
    while (pos < text.size() && (text[pos] == ',' || text[pos] == ' ' ||
                                 text[pos] == '\r' || text[pos] == '\n')) {
      ++pos;
    }
    const std::size_t eq = text.find('=', pos);
    if (eq == std::string::npos) break;
    std::string key = text.substr(pos, eq - pos);
    pos = eq + 1;
    std::string value;
    if (pos < text.size() && text[pos] == '"') {
      const std::size_t close = text.find('"', pos + 1);
      if (close == std::string::npos) break;
      value = text.substr(pos + 1, close - pos - 1);
      pos = close + 1;
    } else {
      const std::size_t comma = text.find(',', pos);
      value = text.substr(pos, comma == std::string::npos ? std::string::npos
                                                          : comma - pos);
      pos = comma == std::string::npos ? text.size() : comma;
    }
    if (!key.empty()) vars.emplace(std::move(key), std::move(value));
  }
  return vars;
}

std::vector<ControlPacket> make_readvar_response(
    const SystemVariables& vars, std::uint16_t request_sequence) {
  const std::string text = vars.render();
  std::vector<ControlPacket> fragments;
  std::size_t offset = 0;
  do {
    const std::size_t chunk =
        std::min(kControlMaxDataBytes, text.size() - offset);
    ControlPacket p;
    p.response = true;
    p.opcode = ControlOp::kReadVariables;
    p.sequence = request_sequence;
    p.offset = static_cast<std::uint16_t>(offset);
    p.data.assign(text.begin() + static_cast<std::ptrdiff_t>(offset),
                  text.begin() + static_cast<std::ptrdiff_t>(offset + chunk));
    offset += chunk;
    p.more = offset < text.size();
    fragments.push_back(std::move(p));
  } while (offset < text.size());
  return fragments;
}

std::optional<std::string> reassemble_readvar(
    std::span<const ControlPacket> fragments) {
  // Loop-faulted responders (§3.4 megas) resend the whole fragment chain;
  // deduplicate by offset, keeping the last copy, then require contiguity.
  std::map<std::uint16_t, const ControlPacket*> by_offset;
  for (const auto& f : fragments) by_offset[f.offset] = &f;
  std::string out;
  const ControlPacket* last = nullptr;
  for (const auto& [offset, f] : by_offset) {
    if (offset != out.size()) return std::nullopt;  // gap or overlap
    out.append(f->data.begin(), f->data.end());
    last = f;
  }
  if (last != nullptr && last->more) return std::nullopt;
  return out;
}

}  // namespace gorilla::ntp
