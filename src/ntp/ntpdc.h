// ntpdc-compatible text rendering and parsing of monlist output.
//
// Operators (and the paper's authors) read monlist through the `ntpdc -c
// monlist` tool; forensic artifacts circulate as its text output. This
// module renders reassembled tables in that format and parses such text
// back into entries, so captures and tickets round-trip through the same
// representation humans used in 2014.
//
//   remote address          port local address      count m ver rstr avgint  lstint
//   ===============================================================================
//   198.51.100.7           57915 10.1.2.3               7 7 2      0 526929       0
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ntp/mode7.h"

namespace gorilla::ntp {

/// Renders a reassembled monlist table as ntpdc would print it.
[[nodiscard]] std::string render_monlist(std::span<const MonitorEntry> table);

/// Renders one entry as an ntpdc row (no header).
[[nodiscard]] std::string render_monlist_row(const MonitorEntry& entry);

/// Parses ntpdc monlist text back into entries. Header/separator lines and
/// blank lines are skipped; a malformed data row stops the parse and
/// returns nullopt (truncated pastes should not silently yield partials).
[[nodiscard]] std::optional<std::vector<MonitorEntry>> parse_monlist_text(
    const std::string& text);

}  // namespace gorilla::ntp
