#include "ntp/sysinfo.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace gorilla::ntp {

const std::vector<std::pair<std::string, double>>& system_string_distribution(
    SystemPool pool) {
  // Probabilities are Table 2 of the paper, renormalized over the rows shown.
  static const std::vector<std::pair<std::string, double>> kAllNtp = {
      {"cisco", 48.39},   {"unix", 30.64},   {"linux", 18.97},
      {"bsd", 0.97},      {"junos", 0.33},   {"sun", 0.21},
      {"darwin", 0.13},   {"vmkernel", 0.10}, {"windows", 0.07},
      {"secureos", 0.03}, {"qnx", 0.02},
  };
  static const std::vector<std::pair<std::string, double>> kAmplifiers = {
      {"linux", 80.22},  {"bsd", 11.08},     {"junos", 3.43},
      {"vmkernel", 1.42}, {"darwin", 0.92},  {"windows", 0.84},
      {"unix", 0.56},    {"secureos", 0.49}, {"sun", 0.25},
      {"qnx", 0.22},     {"cisco", 0.17},
  };
  static const std::vector<std::pair<std::string, double>> kMega = {
      {"linux", 44.18},  {"junos", 35.85},  {"bsd", 9.18},
      {"cygwin", 4.82},  {"vmkernel", 2.41}, {"unix", 2.01},
      {"windows", 0.42}, {"sun", 0.37},     {"secureos", 0.25},
      {"isilon", 0.23},  {"cisco", 0.06},
  };
  static const std::vector<std::pair<std::string, double>> kNonAmplifier = {
      {"cisco", 58.0},  {"unix", 36.0},  {"linux", 4.3},
      {"bsd", 0.8},     {"sun", 0.25},   {"darwin", 0.15},
      {"vmkernel", 0.12}, {"windows", 0.08}, {"junos", 0.2},
      {"secureos", 0.04}, {"qnx", 0.03},
  };
  switch (pool) {
    case SystemPool::kAllNtp: return kAllNtp;
    case SystemPool::kAllAmplifiers: return kAmplifiers;
    case SystemPool::kMega: return kMega;
    case SystemPool::kNonAmplifier: return kNonAmplifier;
  }
  return kAllNtp;
}

std::string sample_system_string(SystemPool pool, util::Rng& rng) {
  const auto& dist = system_string_distribution(pool);
  double total = 0.0;
  for (const auto& [_, w] : dist) total += w;
  double u = rng.uniform01() * total;
  for (const auto& [name, w] : dist) {
    u -= w;
    if (u <= 0.0) return name;
  }
  return dist.back().first;
}

int sample_compile_year(util::Rng& rng) {
  // Piecewise-uniform over the paper's cumulative fractions:
  //   13% < 2004, 23% < 2010, 48% < 2011, 59% < 2012, 79% < 2013, 21% >= 2013.
  const double u = rng.uniform01();
  if (u < 0.13) return static_cast<int>(rng.uniform_int(1998, 2003));
  if (u < 0.23) return static_cast<int>(rng.uniform_int(2004, 2009));
  if (u < 0.48) return 2010;
  if (u < 0.59) return 2011;
  if (u < 0.79) return 2012;
  return static_cast<int>(rng.uniform_int(2013, 2014));
}

int sample_stratum(util::Rng& rng) {
  if (rng.chance(0.19)) return kStratumUnsynchronized;  // §3.3: 19% stratum 16
  const double u = rng.uniform01();
  if (u < 0.05) return 1;
  if (u < 0.55) return 2;
  if (u < 0.85) return 3;
  if (u < 0.95) return 4;
  return static_cast<int>(rng.uniform_int(5, 6));
}

SystemVariables make_system_variables(const std::string& system,
                                      int compile_year, int stratum,
                                      util::Rng& rng) {
  SystemVariables v;
  const int maj = 4;
  const int min = compile_year >= 2010 ? 2 : 1;
  const int patch = static_cast<int>(rng.uniform_int(0, 8));
  char buf[128];
  static constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr",
                                            "May", "Jun", "Jul", "Aug",
                                            "Sep", "Oct", "Nov", "Dec"};
  std::snprintf(buf, sizeof buf, "ntpd %d.%d.%dp%d@1.%04d-o %s %2d %d",
                maj, min, static_cast<int>(rng.uniform_int(0, 8)), patch,
                static_cast<int>(rng.uniform_int(1500, 2600)),
                kMonths[rng.uniform(12)],
                static_cast<int>(rng.uniform_int(1, 28)), compile_year);
  v.version = buf;
  v.system = system;
  v.processor = system == "cisco" || system == "junos" ? "" : "x86_64";
  v.stratum = stratum;
  v.leap = stratum == kStratumUnsynchronized ? 3 : 0;
  v.rootdelay_ms = rng.uniform_real(0.1, 60.0);
  v.rootdisp_ms = rng.uniform_real(0.5, 120.0);

  // Daemon variables beyond the core set. Network devices (cisco, junos)
  // report a short list; full ntpd installs return a dozen statistics —
  // the source of the version-response size spread behind Figure 4c's
  // 3.5/4.6/6.9 on-wire BAF quartiles.
  auto num = [&](double lo, double hi, int prec) {
    char b[48];
    std::snprintf(b, sizeof b, "%.*f", prec, rng.uniform_real(lo, hi));
    return std::string(b);
  };
  char refid[32];
  std::snprintf(refid, sizeof refid, "%d.%d.%d.%d",
                static_cast<int>(rng.uniform_int(1, 223)),
                static_cast<int>(rng.uniform_int(0, 255)),
                static_cast<int>(rng.uniform_int(0, 255)),
                static_cast<int>(rng.uniform_int(1, 254)));
  char stamp[64];
  std::snprintf(stamp, sizeof stamp,
                "0x%08x.%08x  Fri, %s %2d 2014 %2d:%02d:%02d.%03d",
                static_cast<unsigned>(rng.next() >> 36) | 0xd6000000u,
                static_cast<unsigned>(rng.next() >> 32),
                kMonths[rng.uniform(4)],
                static_cast<int>(rng.uniform_int(1, 28)),
                static_cast<int>(rng.uniform_int(0, 23)),
                static_cast<int>(rng.uniform_int(0, 59)),
                static_cast<int>(rng.uniform_int(0, 59)),
                static_cast<int>(rng.uniform_int(0, 999)));
  // Three response tiers: network devices are terse; about half of full
  // ntpd installs report the moderate set; the rest dump everything.
  const bool terse = system == "cisco" || system == "junos" ||
                     system == "vmkernel" || system == "qnx";
  v.extras.emplace_back("refid", refid);
  v.extras.emplace_back("reftime", stamp);
  if (!terse) {
    v.extras.emplace_back("clock", stamp);
    v.extras.emplace_back("offset", num(-80.0, 80.0, 3));
    v.extras.emplace_back("sys_jitter", num(0.0, 12.0, 3));
    if (rng.chance(0.5)) {
      v.extras.emplace_back("peer",
                            std::to_string(rng.uniform_int(1000, 65000)));
      v.extras.emplace_back("tc", std::to_string(rng.uniform_int(6, 10)));
      v.extras.emplace_back("mintc", "3");
      v.extras.emplace_back("frequency", num(-120.0, 120.0, 3));
      v.extras.emplace_back("clk_jitter", num(0.0, 8.0, 3));
      v.extras.emplace_back("clk_wander", num(0.0, 1.0, 3));
      // Full installs also dump daemon statistics to READVAR.
      {
        v.extras.emplace_back("ss_uptime",
                              std::to_string(rng.uniform(9000000)));
        v.extras.emplace_back("ss_reset",
                              std::to_string(rng.uniform(900000)));
        v.extras.emplace_back("ss_received",
                              std::to_string(rng.uniform(50000000)));
        v.extras.emplace_back("ss_badformat",
                              std::to_string(rng.uniform(999)));
        v.extras.emplace_back("ss_declined",
                              std::to_string(rng.uniform(9999)));
        v.extras.emplace_back("ss_limited",
                              std::to_string(rng.uniform(999999)));
        v.extras.emplace_back("ss_kodsent",
                              std::to_string(rng.uniform(99999)));
      }
    }
  }
  return v;
}

int extract_compile_year(const std::string& version_string) {
  // The year is the last 4-digit token in ntpd's "... Mon DD YYYY" banner.
  int year = 0;
  for (std::size_t i = 0; i + 4 <= version_string.size(); ++i) {
    const bool boundary_before =
        i == 0 || !std::isdigit(static_cast<unsigned char>(version_string[i - 1]));
    const bool boundary_after =
        i + 4 == version_string.size() ||
        !std::isdigit(static_cast<unsigned char>(version_string[i + 4]));
    if (!boundary_before || !boundary_after) continue;
    bool all_digits = true;
    for (int k = 0; k < 4; ++k) {
      if (!std::isdigit(static_cast<unsigned char>(version_string[i + k]))) {
        all_digits = false;
        break;
      }
    }
    if (!all_digits) continue;
    const int candidate = std::stoi(version_string.substr(i, 4));
    if (candidate >= 1990 && candidate <= 2100) year = candidate;
  }
  return year;
}

std::string normalize_os_label(const std::string& system) {
  std::string lower;
  lower.reserve(system.size());
  for (char c : system) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  static constexpr const char* kLabels[] = {
      "cisco",  "junos",   "linux",    "bsd",   "darwin", "windows",
      "sun",    "vmkernel", "secureos", "qnx",  "cygwin", "isilon",
      "unix",
  };
  for (const char* label : kLabels) {
    if (lower.find(label) != std::string::npos) return label;
  }
  return "OTHER";
}

}  // namespace gorilla::ntp
