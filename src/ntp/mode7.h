// NTP mode 7 (private) packets — the `monlist` vector.
//
// This mirrors ntpd's ntp_request.h wire format:
//   byte 0: R | M | VN(3) | mode(3)=7
//   byte 1: A | sequence(7)
//   byte 2: implementation number (IMPL_XNTPD=3, IMPL_XNTPD_OLD=2)
//   byte 3: request code (MON_GETLIST=20, MON_GETLIST_1=42)
//   bytes 4-5: err(4) | nitems(12)
//   bytes 6-7: mbz(4) | item size(12)
//   data: nitems * item_size bytes (<= 500 per datagram)
// Requests carry a 40-byte zeroed data area plus a 24-byte authentication
// tail (192-byte datagrams in the wild are the authenticated variant; the
// plain ntpdc query is 48+ bytes). Responses chain via the M (more) bit and
// 7-bit sequence numbers. MON_GETLIST_1 items are 72 bytes each, at most 6
// per datagram, and the table is capped at 600 entries — the geometry every
// BAF number in §3 follows from.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "ntp/ntp_packet.h"

namespace gorilla::ntp {

/// Implementation numbers (ntpd ntp_request.h). The ONP scans used a single
/// implementation value; servers answering only the other one are missed —
/// the §3 under-count we also model.
enum class Implementation : std::uint8_t {
  kUniv = 0,
  kXntpdOld = 2,
  kXntpd = 3,
};

/// Request codes (subset relevant to the study).
enum class RequestCode : std::uint8_t {
  kPeerList = 0,       ///< REQ_PEER_LIST — `showpeers`, a low-BAF sibling
  kMonGetList = 20,    ///< legacy 32-byte items
  kMonGetList1 = 42,   ///< 72-byte info_monitor_1 items (what attackers use)
};

/// Mode 7 error codes (err field).
enum class Mode7Error : std::uint8_t {
  kOk = 0,
  kImplMismatch = 1,
  kReqUnknown = 2,
  kFormat = 3,
  kNoData = 4,
  kAuthFail = 7,
};

inline constexpr std::size_t kMode7HeaderBytes = 8;
inline constexpr std::size_t kMode7MaxDataBytes = 500;
inline constexpr std::size_t kMonitorItemBytes = 72;   // info_monitor_1
/// Legacy MON_GETLIST (code 20) items: the pre-info_monitor_1 layout that
/// older ntpd builds answer with — no daddr/v6 fields, 32 bytes each.
inline constexpr std::size_t kLegacyMonitorItemBytes = 32;
inline constexpr std::size_t kLegacyMonitorItemsPerPacket =
    kMode7MaxDataBytes / kLegacyMonitorItemBytes;  // 15
inline constexpr std::size_t kPeerListItemBytes = 32;  // info_peer_list
inline constexpr std::size_t kPeerItemsPerPacket =
    kMode7MaxDataBytes / kPeerListItemBytes;  // 15
/// floor(500 / 72) = 6 items per response datagram.
inline constexpr std::size_t kMonitorItemsPerPacket =
    kMode7MaxDataBytes / kMonitorItemBytes;
/// 600-entry table cap -> 100 datagrams max for a full monlist dump.
inline constexpr std::size_t kMonlistMaxEntries = 600;

/// Size of the plain (unauthenticated) ntpdc request datagram: 8-byte header
/// + 40-byte zero data area.
inline constexpr std::size_t kMode7RequestBytes = 48;
/// Size of the authenticated request variant seen in attack traffic.
inline constexpr std::size_t kMode7AuthRequestBytes = 192;

/// One reassembled monitor-table entry (info_monitor_1). Field names follow
/// ntpdc's monlist column semantics used throughout §4.
struct MonitorEntry {
  net::Ipv4Address address;          ///< remote address (client or victim)
  net::Ipv4Address local_address;    ///< daddr: local side
  std::uint32_t avg_interval = 0;    ///< avg seconds between packets
  std::uint32_t last_seen = 0;       ///< seconds since last packet
  std::uint32_t restr = 0;           ///< restrict flags
  std::uint32_t count = 0;           ///< packets received from this client
  std::uint16_t port = 0;            ///< source port of last packet
  std::uint8_t mode = 0;             ///< NTP mode of last packet
  std::uint8_t version = 0;          ///< NTP version of last packet
};

/// A mode 7 packet (request or response).
struct Mode7Packet {
  bool response = false;
  bool more = false;
  std::uint8_t sequence = 0;  ///< 7-bit
  bool auth = false;
  Implementation implementation = Implementation::kXntpd;
  RequestCode request = RequestCode::kMonGetList1;
  Mode7Error error = Mode7Error::kOk;
  std::uint16_t item_count = 0;
  std::uint16_t item_size = 0;
  std::vector<std::uint8_t> data;
};

[[nodiscard]] std::vector<std::uint8_t> serialize(const Mode7Packet& p);

/// Parses a mode 7 packet; nullopt on non-mode-7 or truncated declared data.
[[nodiscard]] std::optional<Mode7Packet> parse_mode7_packet(
    std::span<const std::uint8_t> raw);

/// Builds the single monlist request datagram exactly as sent by ntpdc (and
/// by the ONP scanner): MON_GETLIST_1 with the chosen implementation value.
[[nodiscard]] Mode7Packet make_monlist_request(
    Implementation impl = Implementation::kXntpd,
    bool authenticated = false);

/// Serializes monitor entries into a chained sequence of response datagrams
/// (<=6 items each, M bit set on all but the last, sequence 0,1,2,...).
[[nodiscard]] std::vector<Mode7Packet> make_monlist_response(
    std::span<const MonitorEntry> entries, Implementation impl);

/// Legacy MON_GETLIST (code 20) response: 32-byte items, <=15 per datagram.
/// Port/version/daddr detail is lost in this layout — which is why the
/// legacy command both amplifies less and witnesses less.
[[nodiscard]] std::vector<Mode7Packet> make_legacy_monlist_response(
    std::span<const MonitorEntry> entries, Implementation impl);

/// Decodes legacy 32-byte items (port defaults to 0, daddr absent).
[[nodiscard]] std::vector<MonitorEntry> decode_legacy_items(
    const Mode7Packet& p);

/// Builds a single error response (e.g. implementation mismatch).
[[nodiscard]] Mode7Packet make_mode7_error(Mode7Error err, Implementation impl,
                                           RequestCode request);

/// One peer association as REQ_PEER_LIST reports it.
struct PeerListEntry {
  net::Ipv4Address address;
  std::uint16_t port = 123;
  std::uint8_t hmode = 3;  ///< association mode
  std::uint8_t flags = 0;
};

/// Builds the `showpeers` request datagram.
[[nodiscard]] Mode7Packet make_peer_list_request(
    Implementation impl = Implementation::kXntpd);

/// Serializes peers into chained response datagrams (<=15 items each).
[[nodiscard]] std::vector<Mode7Packet> make_peer_list_response(
    std::span<const PeerListEntry> peers, Implementation impl);

/// Decodes REQ_PEER_LIST items from one response packet.
[[nodiscard]] std::vector<PeerListEntry> decode_peer_items(
    const Mode7Packet& p);

/// Decodes the items carried by one response packet.
[[nodiscard]] std::vector<MonitorEntry> decode_items(const Mode7Packet& p);

/// Exact UDP payload bytes of a full monlist dump carrying `entries` table
/// entries (ceil(n/6) datagrams of 8-byte header + 72-byte items; an empty
/// table still elicits one 8-byte NoData reply). Used by the attack model to
/// account for response volume without materializing packets.
[[nodiscard]] std::uint64_t monlist_dump_udp_bytes(std::size_t entries) noexcept;

/// Matching on-wire byte count (Ethernet min-frame + preamble + IPG model).
[[nodiscard]] std::uint64_t monlist_dump_wire_bytes(std::size_t entries) noexcept;

/// Number of datagrams in a dump of `entries` entries (>= 1).
[[nodiscard]] std::uint64_t monlist_dump_packets(std::size_t entries) noexcept;

/// Reassembles a full monlist table from response packets (sorts by
/// sequence; tolerates duplicated sequence runs by keeping the *final* run,
/// which is how §3.4 handles mega-amplifier repeats). Returns nullopt when
/// the packets are not a monlist response.
[[nodiscard]] std::optional<std::vector<MonitorEntry>> reassemble_monlist(
    std::span<const Mode7Packet> packets);

}  // namespace gorilla::ntp
