#include "ntp/monlist.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

namespace gorilla::ntp {

namespace {

/// 32-bit finalizer (MurmurHash3): spreads IPv4 keys across the index.
[[nodiscard]] std::uint32_t hash_key(std::uint32_t key) noexcept {
  key ^= key >> 16;
  key *= 0x85ebca6bu;
  key ^= key >> 13;
  key *= 0xc2b2ae35u;
  key ^= key >> 16;
  return key;
}

}  // namespace

// --- chunked slab ----------------------------------------------------------
//
// Slot i lives in the dense chunk sequence 8 + 24 + 32 + 32 + ...; the
// irregular head keeps one-entry scanner-only tables at a 256-byte
// footprint while everything past slot 32 is uniform 1 KB chunks.

MonitorTable::Node& MonitorTable::node(std::uint32_t i) noexcept {
  if (i < kHeadChunkSlots) return chunks_[0][i];
  if (i < kHeadChunkSlots + kSecondChunkSlots) {
    return chunks_[1][i - kHeadChunkSlots];
  }
  const std::uint32_t rest = i - kHeadChunkSlots - kSecondChunkSlots;
  return chunks_[2 + rest / kChunkSlots][rest % kChunkSlots];
}

const MonitorTable::Node& MonitorTable::node(std::uint32_t i) const noexcept {
  return const_cast<MonitorTable*>(this)->node(i);
}

std::uint32_t MonitorTable::index_entries_for(std::uint32_t entries) noexcept {
  std::uint32_t out = kInitialIndexEntries;
  while (entries * 4 > out * 3) out *= 2;
  return out;
}

void MonitorTable::reserve_directory(std::uint32_t want) {
  if (want <= dir_cap_) return;
  // The directory tops out at 20 pointers (600-slot capacity); doubling
  // from 4 keeps it in three tiny arena classes.
  const std::uint32_t max_dir = chunks_for(capacity_);
  std::uint32_t grown_cap = dir_cap_ == 0 ? 4 : dir_cap_ * 2;
  while (grown_cap < want) grown_cap *= 2;
  if (grown_cap > max_dir) grown_cap = max_dir;
  Node** grown = allocate_array<Node*>(grown_cap);
  std::copy_n(chunks_, chunk_count_, grown);
  release_array(chunks_, dir_cap_);
  chunks_ = grown;
  dir_cap_ = grown_cap;
}

void MonitorTable::reserve_one() {
  if (size_ < chunk_capacity(chunk_count_)) return;
  reserve_directory(chunk_count_ + 1);
  chunks_[chunk_count_] = allocate_array<Node>(chunk_slots(chunk_count_));
  ++chunk_count_;
}

void MonitorTable::swap_remove(std::uint32_t at) noexcept {
  const std::uint32_t last = size_ - 1;
  if (at != last) {
    node(at) = node(last);
    index_update(node(at).address, at);
  }
  --size_;
}

void MonitorTable::shrink_to_fit() {
  if (size_ == 0) {
    release_all_storage();
    return;
  }
  while (chunk_count_ > chunks_for(size_)) {
    --chunk_count_;
    release_array(chunks_[chunk_count_], chunk_slots(chunk_count_));
    chunks_[chunk_count_] = nullptr;
  }
  const std::uint32_t want_index = index_entries_for(size_);
  if (index_ != nullptr && want_index * 2 <= index_mask_ + 1) {
    rebuild_index(want_index);
  }
}

void MonitorTable::release_all_storage() noexcept {
  for (std::uint32_t c = 0; c < chunk_count_; ++c) {
    release_array(chunks_[c], chunk_slots(c));
  }
  release_array(chunks_, dir_cap_);
  release_array(index_, index_mask_ == 0 ? 0 : index_mask_ + 1);
  chunks_ = nullptr;
  chunk_count_ = 0;
  dir_cap_ = 0;
  index_ = nullptr;
  index_mask_ = 0;
}

MonitorTable::~MonitorTable() { release_all_storage(); }

MonitorTable::MonitorTable(MonitorTable&& other) noexcept {
  *this = std::move(other);
}

MonitorTable& MonitorTable::operator=(MonitorTable&& other) noexcept {
  if (this == &other) return *this;
  release_all_storage();
  arena_ = other.arena_;
  capacity_ = other.capacity_;
  size_ = other.size_;
  chunk_count_ = other.chunk_count_;
  dir_cap_ = other.dir_cap_;
  stamp_ = other.stamp_;
  chunks_ = other.chunks_;
  index_ = other.index_;
  index_mask_ = other.index_mask_;
  private_bytes_ = other.private_bytes_;
  other.size_ = 0;
  other.chunk_count_ = 0;
  other.dir_cap_ = 0;
  other.chunks_ = nullptr;
  other.index_ = nullptr;
  other.index_mask_ = 0;
  other.private_bytes_ = 0;
  return *this;
}

// --- open-addressing index -------------------------------------------------

std::uint32_t MonitorTable::lookup(std::uint32_t key) const noexcept {
  if (index_ == nullptr) return kNil;
  std::uint32_t at = hash_key(key) & index_mask_;
  while (index_[at] != 0) {
    const std::uint32_t i = index_[at] - 1;
    if (node(i).address == key) return i;
    at = (at + 1) & index_mask_;
  }
  return kNil;
}

void MonitorTable::index_insert(std::uint32_t key, std::uint32_t slot_pos) {
  if (index_ == nullptr) {
    index_ = allocate_array<std::uint32_t>(kInitialIndexEntries);
    index_mask_ = kInitialIndexEntries - 1;
  } else if ((size_ + 1) * 4 > (index_mask_ + 1) * 3) {
    rebuild_index((index_mask_ + 1) * 2);
  }
  std::uint32_t at = hash_key(key) & index_mask_;
  while (index_[at] != 0) at = (at + 1) & index_mask_;
  index_[at] = slot_pos + 1;
}

void MonitorTable::index_update(std::uint32_t key,
                                std::uint32_t slot_pos) noexcept {
  std::uint32_t at = hash_key(key) & index_mask_;
  while (node(index_[at] - 1).address != key) at = (at + 1) & index_mask_;
  index_[at] = slot_pos + 1;
}

void MonitorTable::index_remove(std::uint32_t key) noexcept {
  std::uint32_t at = hash_key(key) & index_mask_;
  while (index_[at] != 0) {
    if (node(index_[at] - 1).address == key) break;
    at = (at + 1) & index_mask_;
  }
  if (index_[at] == 0) return;  // absent (callers never remove a missing key)
  // Backward-shift deletion keeps probe chains tombstone-free.
  std::uint32_t hole = at;
  std::uint32_t scan = (at + 1) & index_mask_;
  while (index_[scan] != 0) {
    const std::uint32_t home =
        hash_key(node(index_[scan] - 1).address) & index_mask_;
    // Move scan into the hole unless its probe path starts after the hole.
    const bool movable =
        ((scan - home) & index_mask_) >= ((scan - hole) & index_mask_);
    if (movable) {
      index_[hole] = index_[scan];
      hole = scan;
    }
    scan = (scan + 1) & index_mask_;
  }
  index_[hole] = 0;
}

void MonitorTable::rebuild_index(std::uint32_t entries) {
  std::uint32_t* old = index_;
  const std::uint32_t old_entries = index_mask_ == 0 ? 0 : index_mask_ + 1;
  index_ = allocate_array<std::uint32_t>(entries);
  index_mask_ = entries - 1;
  for (std::uint32_t i = 0; i < size_; ++i) {
    std::uint32_t at = hash_key(node(i).address) & index_mask_;
    while (index_[at] != 0) at = (at + 1) & index_mask_;
    index_[at] = i + 1;
  }
  release_array(old, old_entries);
}

// --- public semantics ------------------------------------------------------

void MonitorTable::observe(net::Ipv4Address address, std::uint16_t port,
                           std::uint8_t mode, std::uint8_t version,
                           util::SimTime now) {
  observe_many(address, port, mode, version, 1, now, now);
}

void MonitorTable::observe_many(net::Ipv4Address address, std::uint16_t port,
                                std::uint8_t mode, std::uint8_t version,
                                std::uint64_t packet_count, util::SimTime first,
                                util::SimTime last) {
  if (packet_count == 0 || capacity_ == 0) return;
  const std::uint32_t i = lookup(address.value());
  if (i == kNil) {
    if (size_ >= capacity_) {
      // Recycle the least-recently-seen slot (ntpd's mon_getmoremem path):
      // minimum last_seen, oldest recency stamp breaking ties. The scan is
      // linear but only runs once the table is actually full.
      std::uint32_t victim = 0;
      for (std::uint32_t at = 1; at < size_; ++at) {
        const Node& n = node(at);
        const Node& v = node(victim);
        if (n.last < v.last || (n.last == v.last && n.stamp < v.stamp)) {
          victim = at;
        }
      }
      index_remove(node(victim).address);
      swap_remove(victim);
    }
    reserve_one();
    const std::uint32_t pos = size_;
    Node& n = node(pos);
    n.count = packet_count;
    n.address = address.value();
    n.first = static_cast<std::uint32_t>(first);
    n.last = static_cast<std::uint32_t>(std::max(first, last));
    n.stamp = ++stamp_;
    n.port = port;
    n.mode = mode;
    n.version = version;
    index_insert(address.value(), pos);
    ++size_;
    return;
  }
  Node& n = node(i);
  n.port = port;
  n.mode = mode;
  n.version = version;
  n.count += packet_count;
  if (first < static_cast<util::SimTime>(n.first)) {
    n.first = static_cast<std::uint32_t>(first);
  }
  if (last > static_cast<util::SimTime>(n.last)) {
    // Only a raised last_seen changes the slot's recency rank.
    n.last = static_cast<std::uint32_t>(last);
    n.stamp = ++stamp_;
  }
}

std::vector<MonitorEntry> MonitorTable::dump(util::SimTime now,
                                             net::Ipv4Address local) const {
  // Order by the *internal* last_seen (descending, ascending address to
  // break ties), not by the emitted age: future-dated slots all clamp to
  // age 0, but still rank ahead of older slots exactly as the recency-list
  // implementation dumped them.
  std::vector<std::uint32_t> order(size_);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const Node& na = node(a);
              const Node& nb = node(b);
              if (na.last != nb.last) return na.last > nb.last;
              return na.address < nb.address;
            });
  std::vector<MonitorEntry> out;
  out.reserve(size_);
  constexpr std::uint64_t u32max = std::numeric_limits<std::uint32_t>::max();
  for (const std::uint32_t i : order) {
    const Node& n = node(i);
    MonitorEntry e;
    e.address = net::Ipv4Address{n.address};
    e.local_address = local;
    e.count = static_cast<std::uint32_t>(std::min(n.count, u32max));
    const std::uint64_t span = n.last - n.first;
    e.avg_interval =
        n.count > 1
            ? static_cast<std::uint32_t>(std::min(span / (n.count - 1), u32max))
            : 0;
    const util::SimTime age =
        std::max<util::SimTime>(0, now - static_cast<util::SimTime>(n.last));
    e.last_seen = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(age), u32max));
    e.port = n.port;
    e.mode = n.mode;
    e.version = n.version;
    out.push_back(e);
  }
  return out;
}

void MonitorTable::expire_before(util::SimTime cutoff) {
  std::uint32_t at = 0;
  while (at < size_) {
    if (static_cast<util::SimTime>(node(at).last) < cutoff) {
      index_remove(node(at).address);
      swap_remove(at);  // the swapped-in slot is examined next, same `at`
    } else {
      ++at;
    }
  }
  shrink_to_fit();
}

std::optional<MonitorSlot> MonitorTable::find(net::Ipv4Address address) const {
  const std::uint32_t i = lookup(address.value());
  if (i == kNil) return std::nullopt;
  const Node& n = node(i);
  MonitorSlot slot;
  slot.address = net::Ipv4Address{n.address};
  slot.port = n.port;
  slot.mode = n.mode;
  slot.version = n.version;
  slot.count = n.count;
  slot.first_seen = static_cast<util::SimTime>(n.first);
  slot.last_seen = static_cast<util::SimTime>(n.last);
  return slot;
}

void MonitorTable::clear() {
  release_all_storage();
  size_ = 0;
  stamp_ = 0;
}

std::size_t MonitorTable::footprint_bytes() const noexcept {
  std::size_t bytes = static_cast<std::size_t>(dir_cap_) * sizeof(Node*);
  for (std::uint32_t c = 0; c < chunk_count_; ++c) {
    bytes += static_cast<std::size_t>(chunk_slots(c)) * sizeof(Node);
  }
  if (index_ != nullptr) {
    bytes += static_cast<std::size_t>(index_mask_ + 1) * sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace gorilla::ntp
