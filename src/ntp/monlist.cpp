#include "ntp/monlist.h"

#include <algorithm>
#include <limits>

namespace gorilla::ntp {

void MonitorTable::observe(net::Ipv4Address address, std::uint16_t port,
                           std::uint8_t mode, std::uint8_t version,
                           util::SimTime now) {
  observe_many(address, port, mode, version, 1, now, now);
}

void MonitorTable::observe_many(net::Ipv4Address address, std::uint16_t port,
                                std::uint8_t mode, std::uint8_t version,
                                std::uint64_t packet_count, util::SimTime first,
                                util::SimTime last) {
  if (packet_count == 0) return;
  auto it = slots_.find(address.value());
  if (it == slots_.end()) {
    if (slots_.size() >= capacity_) {
      // Recycle the least-recently-seen slot (ntpd's mon_getmoremem path).
      auto victim = slots_.begin();
      for (auto cur = slots_.begin(); cur != slots_.end(); ++cur) {
        if (cur->second.last_seen < victim->second.last_seen) victim = cur;
      }
      slots_.erase(victim);
    }
    MonitorSlot slot;
    slot.address = address;
    slot.first_seen = first;
    slot.last_seen = first;
    slot.count = 0;
    it = slots_.emplace(address.value(), slot).first;
  }
  MonitorSlot& slot = it->second;
  slot.port = port;
  slot.mode = mode;
  slot.version = version;
  slot.count += packet_count;
  slot.first_seen = std::min(slot.first_seen, first);
  slot.last_seen = std::max(slot.last_seen, last);
}

std::vector<MonitorEntry> MonitorTable::dump(util::SimTime now,
                                             net::Ipv4Address local) const {
  std::vector<const MonitorSlot*> ordered;
  ordered.reserve(slots_.size());
  // The tie-broken sort below erases the visit order.
  for (const auto& [_, slot] : slots_) ordered.push_back(&slot);  // NOLINT(unordered-iter)
  std::sort(ordered.begin(), ordered.end(),
            [](const MonitorSlot* a, const MonitorSlot* b) {
              if (a->last_seen != b->last_seen) return a->last_seen > b->last_seen;
              return a->address < b->address;  // deterministic tie-break
            });
  std::vector<MonitorEntry> out;
  out.reserve(ordered.size());
  constexpr std::uint64_t u32max = std::numeric_limits<std::uint32_t>::max();
  for (const MonitorSlot* slot : ordered) {
    MonitorEntry e;
    e.address = slot->address;
    e.local_address = local;
    e.count = static_cast<std::uint32_t>(std::min(slot->count, u32max));
    const std::uint64_t span =
        static_cast<std::uint64_t>(slot->last_seen - slot->first_seen);
    e.avg_interval =
        slot->count > 1
            ? static_cast<std::uint32_t>(std::min(span / (slot->count - 1), u32max))
            : 0;
    e.last_seen = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(
                                    std::max<util::SimTime>(0, now - slot->last_seen)),
                                u32max));
    e.port = slot->port;
    e.mode = slot->mode;
    e.version = slot->version;
    out.push_back(e);
  }
  return out;
}

void MonitorTable::expire_before(util::SimTime cutoff) {
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second.last_seen < cutoff) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
}

const MonitorSlot* MonitorTable::find(net::Ipv4Address address) const {
  const auto it = slots_.find(address.value());
  return it == slots_.end() ? nullptr : &it->second;
}

void MonitorTable::clear() { slots_.clear(); }

}  // namespace gorilla::ntp
