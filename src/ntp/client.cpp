#include "ntp/client.h"

#include <algorithm>

namespace gorilla::ntp {

TimePacket NtpClient::make_request(util::SimTime local_now) {
  TimePacket request;
  request.mode = Mode::kClient;
  request.version = 4;
  request.transmit_ts = to_ntp_timestamp(local_now);
  outstanding_origin_ = request.transmit_ts;
  return request;
}

std::optional<ClockSample> NtpClient::process_reply(
    const TimePacket& reply, util::SimTime local_recv) {
  last_error_.reset();
  if (reply.mode != Mode::kServer) {
    last_error_ = ReplyError::kNotServerMode;
    return std::nullopt;
  }
  // Origin check defeats off-path spoofing: the reply must echo the
  // transmit timestamp of a request we actually sent.
  if (outstanding_origin_ == 0 || reply.origin_ts != outstanding_origin_) {
    last_error_ = ReplyError::kBogusOrigin;
    return std::nullopt;
  }
  outstanding_origin_ = 0;
  // Stratum 0 with a kiss code is an explicit back-off demand.
  if (reply.stratum == 0 && (reply.reference_id == kKissRate ||
                             reply.reference_id == kKissDeny)) {
    last_error_ = ReplyError::kKissOfDeath;
    return std::nullopt;
  }
  // An unsynchronized server (stratum 0/16, leap=3) serves no time; §3.3
  // found a fifth of the population in this state.
  if (reply.stratum == 0 || reply.stratum >= kStratumUnsynchronized ||
      reply.leap == 3) {
    last_error_ = ReplyError::kUnsynchronized;
    return std::nullopt;
  }

  // RFC 5905 §8: theta = ((T2-T1)+(T3-T4))/2, delta = (T4-T1)-(T3-T2).
  const double t1 = from_ntp_timestamp(reply.origin_ts);
  const double t2 = from_ntp_timestamp(reply.receive_ts);
  const double t3 = from_ntp_timestamp(reply.transmit_ts);
  const double t4 = static_cast<double>(local_recv);
  ClockSample sample;
  sample.offset = ((t2 - t1) + (t3 - t4)) / 2.0;
  sample.delay = std::max(0.0, (t4 - t1) - (t3 - t2));
  sample.local_time = local_recv;
  sample.stratum = reply.stratum;

  filter_[next_slot_] = sample;
  next_slot_ = (next_slot_ + 1) % filter_.size();
  count_ = std::min(count_ + 1, filter_.size());
  return sample;
}

std::optional<ClockSample> NtpClient::best_sample() const {
  if (count_ == 0) return std::nullopt;
  const ClockSample* best = nullptr;
  for (std::size_t i = 0; i < count_; ++i) {
    if (best == nullptr || filter_[i].delay < best->delay) {
      best = &filter_[i];
    }
  }
  return *best;
}

}  // namespace gorilla::ntp
